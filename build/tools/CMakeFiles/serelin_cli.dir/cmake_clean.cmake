file(REMOVE_RECURSE
  "CMakeFiles/serelin_cli.dir/serelin_cli.cpp.o"
  "CMakeFiles/serelin_cli.dir/serelin_cli.cpp.o.d"
  "serelin_cli"
  "serelin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serelin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
