# Empty dependencies file for serelin_cli.
# This may be replaced when dependencies are built.
