file(REMOVE_RECURSE
  "libserelin_ser.a"
)
