file(REMOVE_RECURSE
  "CMakeFiles/serelin_ser.dir/ser_analyzer.cpp.o"
  "CMakeFiles/serelin_ser.dir/ser_analyzer.cpp.o.d"
  "libserelin_ser.a"
  "libserelin_ser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serelin_ser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
