# Empty dependencies file for serelin_ser.
# This may be replaced when dependencies are built.
