file(REMOVE_RECURSE
  "CMakeFiles/serelin_support.dir/check.cpp.o"
  "CMakeFiles/serelin_support.dir/check.cpp.o.d"
  "CMakeFiles/serelin_support.dir/rng.cpp.o"
  "CMakeFiles/serelin_support.dir/rng.cpp.o.d"
  "CMakeFiles/serelin_support.dir/strings.cpp.o"
  "CMakeFiles/serelin_support.dir/strings.cpp.o.d"
  "CMakeFiles/serelin_support.dir/table.cpp.o"
  "CMakeFiles/serelin_support.dir/table.cpp.o.d"
  "libserelin_support.a"
  "libserelin_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serelin_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
