# Empty compiler generated dependencies file for serelin_support.
# This may be replaced when dependencies are built.
