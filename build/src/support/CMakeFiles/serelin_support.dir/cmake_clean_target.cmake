file(REMOVE_RECURSE
  "libserelin_support.a"
)
