file(REMOVE_RECURSE
  "libserelin_gen.a"
)
