file(REMOVE_RECURSE
  "CMakeFiles/serelin_gen.dir/paper_examples.cpp.o"
  "CMakeFiles/serelin_gen.dir/paper_examples.cpp.o.d"
  "CMakeFiles/serelin_gen.dir/paper_suite.cpp.o"
  "CMakeFiles/serelin_gen.dir/paper_suite.cpp.o.d"
  "CMakeFiles/serelin_gen.dir/random_circuit.cpp.o"
  "CMakeFiles/serelin_gen.dir/random_circuit.cpp.o.d"
  "libserelin_gen.a"
  "libserelin_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serelin_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
