# Empty compiler generated dependencies file for serelin_gen.
# This may be replaced when dependencies are built.
