
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/paper_examples.cpp" "src/gen/CMakeFiles/serelin_gen.dir/paper_examples.cpp.o" "gcc" "src/gen/CMakeFiles/serelin_gen.dir/paper_examples.cpp.o.d"
  "/root/repo/src/gen/paper_suite.cpp" "src/gen/CMakeFiles/serelin_gen.dir/paper_suite.cpp.o" "gcc" "src/gen/CMakeFiles/serelin_gen.dir/paper_suite.cpp.o.d"
  "/root/repo/src/gen/random_circuit.cpp" "src/gen/CMakeFiles/serelin_gen.dir/random_circuit.cpp.o" "gcc" "src/gen/CMakeFiles/serelin_gen.dir/random_circuit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/serelin_support.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/serelin_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
