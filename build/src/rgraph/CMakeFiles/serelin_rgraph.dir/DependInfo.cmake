
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rgraph/apply.cpp" "src/rgraph/CMakeFiles/serelin_rgraph.dir/apply.cpp.o" "gcc" "src/rgraph/CMakeFiles/serelin_rgraph.dir/apply.cpp.o.d"
  "/root/repo/src/rgraph/retiming_graph.cpp" "src/rgraph/CMakeFiles/serelin_rgraph.dir/retiming_graph.cpp.o" "gcc" "src/rgraph/CMakeFiles/serelin_rgraph.dir/retiming_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/serelin_support.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/serelin_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
