# Empty compiler generated dependencies file for serelin_rgraph.
# This may be replaced when dependencies are built.
