file(REMOVE_RECURSE
  "libserelin_rgraph.a"
)
