file(REMOVE_RECURSE
  "CMakeFiles/serelin_rgraph.dir/apply.cpp.o"
  "CMakeFiles/serelin_rgraph.dir/apply.cpp.o.d"
  "CMakeFiles/serelin_rgraph.dir/retiming_graph.cpp.o"
  "CMakeFiles/serelin_rgraph.dir/retiming_graph.cpp.o.d"
  "libserelin_rgraph.a"
  "libserelin_rgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serelin_rgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
