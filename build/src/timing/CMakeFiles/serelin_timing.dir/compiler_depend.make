# Empty compiler generated dependencies file for serelin_timing.
# This may be replaced when dependencies are built.
