file(REMOVE_RECURSE
  "CMakeFiles/serelin_timing.dir/constraints.cpp.o"
  "CMakeFiles/serelin_timing.dir/constraints.cpp.o.d"
  "CMakeFiles/serelin_timing.dir/elw.cpp.o"
  "CMakeFiles/serelin_timing.dir/elw.cpp.o.d"
  "CMakeFiles/serelin_timing.dir/graph_timing.cpp.o"
  "CMakeFiles/serelin_timing.dir/graph_timing.cpp.o.d"
  "libserelin_timing.a"
  "libserelin_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serelin_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
