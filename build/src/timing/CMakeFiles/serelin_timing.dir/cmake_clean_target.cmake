file(REMOVE_RECURSE
  "libserelin_timing.a"
)
