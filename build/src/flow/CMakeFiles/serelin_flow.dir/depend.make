# Empty dependencies file for serelin_flow.
# This may be replaced when dependencies are built.
