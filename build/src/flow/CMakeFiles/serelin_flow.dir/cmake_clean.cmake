file(REMOVE_RECURSE
  "CMakeFiles/serelin_flow.dir/experiment.cpp.o"
  "CMakeFiles/serelin_flow.dir/experiment.cpp.o.d"
  "libserelin_flow.a"
  "libserelin_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serelin_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
