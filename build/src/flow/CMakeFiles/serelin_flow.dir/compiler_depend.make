# Empty compiler generated dependencies file for serelin_flow.
# This may be replaced when dependencies are built.
