file(REMOVE_RECURSE
  "libserelin_flow.a"
)
