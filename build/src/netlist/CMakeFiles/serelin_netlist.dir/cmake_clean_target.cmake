file(REMOVE_RECURSE
  "libserelin_netlist.a"
)
