# Empty dependencies file for serelin_netlist.
# This may be replaced when dependencies are built.
