file(REMOVE_RECURSE
  "CMakeFiles/serelin_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/serelin_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/serelin_netlist.dir/blif_io.cpp.o"
  "CMakeFiles/serelin_netlist.dir/blif_io.cpp.o.d"
  "CMakeFiles/serelin_netlist.dir/builder.cpp.o"
  "CMakeFiles/serelin_netlist.dir/builder.cpp.o.d"
  "CMakeFiles/serelin_netlist.dir/cell.cpp.o"
  "CMakeFiles/serelin_netlist.dir/cell.cpp.o.d"
  "CMakeFiles/serelin_netlist.dir/cell_library.cpp.o"
  "CMakeFiles/serelin_netlist.dir/cell_library.cpp.o.d"
  "CMakeFiles/serelin_netlist.dir/netlist.cpp.o"
  "CMakeFiles/serelin_netlist.dir/netlist.cpp.o.d"
  "libserelin_netlist.a"
  "libserelin_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serelin_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
