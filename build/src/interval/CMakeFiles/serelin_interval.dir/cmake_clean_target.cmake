file(REMOVE_RECURSE
  "libserelin_interval.a"
)
