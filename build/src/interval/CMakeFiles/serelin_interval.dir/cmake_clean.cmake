file(REMOVE_RECURSE
  "CMakeFiles/serelin_interval.dir/interval_set.cpp.o"
  "CMakeFiles/serelin_interval.dir/interval_set.cpp.o.d"
  "libserelin_interval.a"
  "libserelin_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serelin_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
