# Empty dependencies file for serelin_interval.
# This may be replaced when dependencies are built.
