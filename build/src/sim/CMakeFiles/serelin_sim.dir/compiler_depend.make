# Empty compiler generated dependencies file for serelin_sim.
# This may be replaced when dependencies are built.
