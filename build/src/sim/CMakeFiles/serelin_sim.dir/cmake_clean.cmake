file(REMOVE_RECURSE
  "CMakeFiles/serelin_sim.dir/graph_sim.cpp.o"
  "CMakeFiles/serelin_sim.dir/graph_sim.cpp.o.d"
  "CMakeFiles/serelin_sim.dir/observability.cpp.o"
  "CMakeFiles/serelin_sim.dir/observability.cpp.o.d"
  "CMakeFiles/serelin_sim.dir/simulator.cpp.o"
  "CMakeFiles/serelin_sim.dir/simulator.cpp.o.d"
  "libserelin_sim.a"
  "libserelin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serelin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
