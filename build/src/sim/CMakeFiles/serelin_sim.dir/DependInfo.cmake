
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/graph_sim.cpp" "src/sim/CMakeFiles/serelin_sim.dir/graph_sim.cpp.o" "gcc" "src/sim/CMakeFiles/serelin_sim.dir/graph_sim.cpp.o.d"
  "/root/repo/src/sim/observability.cpp" "src/sim/CMakeFiles/serelin_sim.dir/observability.cpp.o" "gcc" "src/sim/CMakeFiles/serelin_sim.dir/observability.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/serelin_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/serelin_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/serelin_support.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/serelin_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/rgraph/CMakeFiles/serelin_rgraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
