file(REMOVE_RECURSE
  "libserelin_sim.a"
)
