file(REMOVE_RECURSE
  "libserelin_core.a"
)
