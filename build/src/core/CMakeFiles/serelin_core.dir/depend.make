# Empty dependencies file for serelin_core.
# This may be replaced when dependencies are built.
