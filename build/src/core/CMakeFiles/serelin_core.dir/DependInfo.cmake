
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/closure_solver.cpp" "src/core/CMakeFiles/serelin_core.dir/closure_solver.cpp.o" "gcc" "src/core/CMakeFiles/serelin_core.dir/closure_solver.cpp.o.d"
  "/root/repo/src/core/exhaustive.cpp" "src/core/CMakeFiles/serelin_core.dir/exhaustive.cpp.o" "gcc" "src/core/CMakeFiles/serelin_core.dir/exhaustive.cpp.o.d"
  "/root/repo/src/core/initializer.cpp" "src/core/CMakeFiles/serelin_core.dir/initializer.cpp.o" "gcc" "src/core/CMakeFiles/serelin_core.dir/initializer.cpp.o.d"
  "/root/repo/src/core/min_area.cpp" "src/core/CMakeFiles/serelin_core.dir/min_area.cpp.o" "gcc" "src/core/CMakeFiles/serelin_core.dir/min_area.cpp.o.d"
  "/root/repo/src/core/min_period.cpp" "src/core/CMakeFiles/serelin_core.dir/min_period.cpp.o" "gcc" "src/core/CMakeFiles/serelin_core.dir/min_period.cpp.o.d"
  "/root/repo/src/core/objective.cpp" "src/core/CMakeFiles/serelin_core.dir/objective.cpp.o" "gcc" "src/core/CMakeFiles/serelin_core.dir/objective.cpp.o.d"
  "/root/repo/src/core/regular_forest.cpp" "src/core/CMakeFiles/serelin_core.dir/regular_forest.cpp.o" "gcc" "src/core/CMakeFiles/serelin_core.dir/regular_forest.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/serelin_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/serelin_core.dir/solver.cpp.o.d"
  "/root/repo/src/core/wd_matrices.cpp" "src/core/CMakeFiles/serelin_core.dir/wd_matrices.cpp.o" "gcc" "src/core/CMakeFiles/serelin_core.dir/wd_matrices.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/serelin_support.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/serelin_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/rgraph/CMakeFiles/serelin_rgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/serelin_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/serelin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/serelin_interval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
