file(REMOVE_RECURSE
  "CMakeFiles/serelin_core.dir/closure_solver.cpp.o"
  "CMakeFiles/serelin_core.dir/closure_solver.cpp.o.d"
  "CMakeFiles/serelin_core.dir/exhaustive.cpp.o"
  "CMakeFiles/serelin_core.dir/exhaustive.cpp.o.d"
  "CMakeFiles/serelin_core.dir/initializer.cpp.o"
  "CMakeFiles/serelin_core.dir/initializer.cpp.o.d"
  "CMakeFiles/serelin_core.dir/min_area.cpp.o"
  "CMakeFiles/serelin_core.dir/min_area.cpp.o.d"
  "CMakeFiles/serelin_core.dir/min_period.cpp.o"
  "CMakeFiles/serelin_core.dir/min_period.cpp.o.d"
  "CMakeFiles/serelin_core.dir/objective.cpp.o"
  "CMakeFiles/serelin_core.dir/objective.cpp.o.d"
  "CMakeFiles/serelin_core.dir/regular_forest.cpp.o"
  "CMakeFiles/serelin_core.dir/regular_forest.cpp.o.d"
  "CMakeFiles/serelin_core.dir/solver.cpp.o"
  "CMakeFiles/serelin_core.dir/solver.cpp.o.d"
  "CMakeFiles/serelin_core.dir/wd_matrices.cpp.o"
  "CMakeFiles/serelin_core.dir/wd_matrices.cpp.o.d"
  "libserelin_core.a"
  "libserelin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serelin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
