# Empty dependencies file for serelin_tests.
# This may be replaced when dependencies are built.
