
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bench_io.cpp" "tests/CMakeFiles/serelin_tests.dir/test_bench_io.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_bench_io.cpp.o.d"
  "/root/repo/tests/test_blif_io.cpp" "tests/CMakeFiles/serelin_tests.dir/test_blif_io.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_blif_io.cpp.o.d"
  "/root/repo/tests/test_elw.cpp" "tests/CMakeFiles/serelin_tests.dir/test_elw.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_elw.cpp.o.d"
  "/root/repo/tests/test_flow.cpp" "tests/CMakeFiles/serelin_tests.dir/test_flow.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_flow.cpp.o.d"
  "/root/repo/tests/test_forest.cpp" "tests/CMakeFiles/serelin_tests.dir/test_forest.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_forest.cpp.o.d"
  "/root/repo/tests/test_gen.cpp" "tests/CMakeFiles/serelin_tests.dir/test_gen.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_gen.cpp.o.d"
  "/root/repo/tests/test_graph_sim.cpp" "tests/CMakeFiles/serelin_tests.dir/test_graph_sim.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_graph_sim.cpp.o.d"
  "/root/repo/tests/test_initializer.cpp" "tests/CMakeFiles/serelin_tests.dir/test_initializer.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_initializer.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/serelin_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interval.cpp" "tests/CMakeFiles/serelin_tests.dir/test_interval.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_interval.cpp.o.d"
  "/root/repo/tests/test_min_area.cpp" "tests/CMakeFiles/serelin_tests.dir/test_min_area.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_min_area.cpp.o.d"
  "/root/repo/tests/test_min_period.cpp" "tests/CMakeFiles/serelin_tests.dir/test_min_period.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_min_period.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/serelin_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_observability.cpp" "tests/CMakeFiles/serelin_tests.dir/test_observability.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_observability.cpp.o.d"
  "/root/repo/tests/test_optimality.cpp" "tests/CMakeFiles/serelin_tests.dir/test_optimality.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_optimality.cpp.o.d"
  "/root/repo/tests/test_paper_examples.cpp" "tests/CMakeFiles/serelin_tests.dir/test_paper_examples.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_paper_examples.cpp.o.d"
  "/root/repo/tests/test_rgraph.cpp" "tests/CMakeFiles/serelin_tests.dir/test_rgraph.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_rgraph.cpp.o.d"
  "/root/repo/tests/test_ser.cpp" "tests/CMakeFiles/serelin_tests.dir/test_ser.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_ser.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/serelin_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_solver.cpp" "tests/CMakeFiles/serelin_tests.dir/test_solver.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_solver.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/serelin_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_timing.cpp" "tests/CMakeFiles/serelin_tests.dir/test_timing.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_timing.cpp.o.d"
  "/root/repo/tests/test_wd.cpp" "tests/CMakeFiles/serelin_tests.dir/test_wd.cpp.o" "gcc" "tests/CMakeFiles/serelin_tests.dir/test_wd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/serelin_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/ser/CMakeFiles/serelin_ser.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/serelin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/serelin_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/serelin_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/serelin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rgraph/CMakeFiles/serelin_rgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/serelin_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/serelin_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/serelin_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
