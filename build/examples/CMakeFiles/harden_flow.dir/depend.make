# Empty dependencies file for harden_flow.
# This may be replaced when dependencies are built.
