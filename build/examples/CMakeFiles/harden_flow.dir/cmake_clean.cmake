file(REMOVE_RECURSE
  "CMakeFiles/harden_flow.dir/harden_flow.cpp.o"
  "CMakeFiles/harden_flow.dir/harden_flow.cpp.o.d"
  "harden_flow"
  "harden_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harden_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
