# Empty compiler generated dependencies file for compare_retiming.
# This may be replaced when dependencies are built.
