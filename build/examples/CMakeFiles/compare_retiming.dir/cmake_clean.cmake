file(REMOVE_RECURSE
  "CMakeFiles/compare_retiming.dir/compare_retiming.cpp.o"
  "CMakeFiles/compare_retiming.dir/compare_retiming.cpp.o.d"
  "compare_retiming"
  "compare_retiming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_retiming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
