# Empty dependencies file for ser_report.
# This may be replaced when dependencies are built.
