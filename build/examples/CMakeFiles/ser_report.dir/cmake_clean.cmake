file(REMOVE_RECURSE
  "CMakeFiles/ser_report.dir/ser_report.cpp.o"
  "CMakeFiles/ser_report.dir/ser_report.cpp.o.d"
  "ser_report"
  "ser_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ser_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
