file(REMOVE_RECURSE
  "CMakeFiles/genbench.dir/genbench.cpp.o"
  "CMakeFiles/genbench.dir/genbench.cpp.o.d"
  "genbench"
  "genbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
