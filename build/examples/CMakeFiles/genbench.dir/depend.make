# Empty dependencies file for genbench.
# This may be replaced when dependencies are built.
