file(REMOVE_RECURSE
  "../bench/wd_comparison"
  "../bench/wd_comparison.pdb"
  "CMakeFiles/wd_comparison.dir/wd_comparison.cpp.o"
  "CMakeFiles/wd_comparison.dir/wd_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wd_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
