# Empty dependencies file for wd_comparison.
# This may be replaced when dependencies are built.
