file(REMOVE_RECURSE
  "../bench/scaling_runtime"
  "../bench/scaling_runtime.pdb"
  "CMakeFiles/scaling_runtime.dir/scaling_runtime.cpp.o"
  "CMakeFiles/scaling_runtime.dir/scaling_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
