file(REMOVE_RECURSE
  "../bench/ablation_frames"
  "../bench/ablation_frames.pdb"
  "CMakeFiles/ablation_frames.dir/ablation_frames.cpp.o"
  "CMakeFiles/ablation_frames.dir/ablation_frames.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
