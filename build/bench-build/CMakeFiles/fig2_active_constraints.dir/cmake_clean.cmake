file(REMOVE_RECURSE
  "../bench/fig2_active_constraints"
  "../bench/fig2_active_constraints.pdb"
  "CMakeFiles/fig2_active_constraints.dir/fig2_active_constraints.cpp.o"
  "CMakeFiles/fig2_active_constraints.dir/fig2_active_constraints.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_active_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
