# Empty dependencies file for fig2_active_constraints.
# This may be replaced when dependencies are built.
