
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_rmin.cpp" "bench-build/CMakeFiles/ablation_rmin.dir/ablation_rmin.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_rmin.dir/ablation_rmin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/serelin_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/ser/CMakeFiles/serelin_ser.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/serelin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/serelin_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/serelin_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/serelin_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rgraph/CMakeFiles/serelin_rgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/serelin_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/serelin_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/serelin_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
