file(REMOVE_RECURSE
  "../bench/ablation_rmin"
  "../bench/ablation_rmin.pdb"
  "CMakeFiles/ablation_rmin.dir/ablation_rmin.cpp.o"
  "CMakeFiles/ablation_rmin.dir/ablation_rmin.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
