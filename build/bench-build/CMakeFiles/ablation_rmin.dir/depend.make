# Empty dependencies file for ablation_rmin.
# This may be replaced when dependencies are built.
