file(REMOVE_RECURSE
  "../bench/fig3_breaktree"
  "../bench/fig3_breaktree.pdb"
  "CMakeFiles/fig3_breaktree.dir/fig3_breaktree.cpp.o"
  "CMakeFiles/fig3_breaktree.dir/fig3_breaktree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_breaktree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
