# Empty dependencies file for fig3_breaktree.
# This may be replaced when dependencies are built.
