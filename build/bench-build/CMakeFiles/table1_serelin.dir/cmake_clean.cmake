file(REMOVE_RECURSE
  "../bench/table1_serelin"
  "../bench/table1_serelin.pdb"
  "CMakeFiles/table1_serelin.dir/table1_serelin.cpp.o"
  "CMakeFiles/table1_serelin.dir/table1_serelin.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_serelin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
