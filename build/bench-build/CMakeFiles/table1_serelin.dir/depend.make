# Empty dependencies file for table1_serelin.
# This may be replaced when dependencies are built.
