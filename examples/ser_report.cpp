// ser_report: soft-error analysis of a .bench netlist.
//
//   $ ./examples/ser_report [circuit.bench] [period]
//
// Prints the circuit's SER under the paper's Eq. (4) model along with the
// highest-contribution nodes (observability × raw error rate × ELW share)
// — the signals a hardening flow would target first. Without arguments a
// built-in demo circuit is analyzed.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/initializer.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "rgraph/retiming_graph.hpp"
#include "ser/ser_analyzer.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace serelin;
  CellLibrary lib;

  Netlist circuit = [&] {
    if (argc > 1) return read_bench_file(argv[1]);
    RandomCircuitSpec spec;
    spec.name = "demo";
    spec.gates = 400;
    spec.dffs = 90;
    spec.inputs = 12;
    spec.outputs = 12;
    spec.seed = 7;
    return generate_random_circuit(spec);
  }();

  RetimingGraph graph(circuit, lib);
  double period;
  if (argc > 2) {
    period = std::atof(argv[2]);
  } else {
    period = initialize_retiming(graph, {}).timing.period;
    std::printf("(no period given: using the Section-V choice %.1f)\n",
                period);
  }

  SerOptions options;
  options.timing = {period, 0.0, 2.0};
  options.sim.patterns = 2048;
  options.sim.frames = 15;
  const SerReport report = analyze_ser(circuit, lib, options);

  std::printf("\ncircuit %s: %zu gates, %zu flip-flops, %zu POs\n",
              circuit.name().c_str(), circuit.gate_count(),
              circuit.dff_count(), circuit.outputs().size());
  std::printf("SER(C_S, n=%d) = %s   (combinational %s + sequential %s)\n\n",
              options.sim.frames, fmt_sci(report.total).c_str(),
              fmt_sci(report.combinational).c_str(),
              fmt_sci(report.sequential).c_str());

  std::vector<NodeId> order(circuit.node_count());
  for (NodeId id = 0; id < circuit.node_count(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return report.contribution[a] > report.contribution[b];
  });

  TextTable t({"node", "type", "obs", "|ELW|", "|ELW|/Phi", "SER share"});
  for (std::size_t i = 0; i < std::min<std::size_t>(order.size(), 15); ++i) {
    const NodeId id = order[i];
    if (report.contribution[id] <= 0) break;
    const Node& n = circuit.node(id);
    const double window = report.elw.measure(id, period);
    t.add_row({n.name, std::string(cell_type_name(n.type)),
               fmt_fixed(report.obs[id], 3), fmt_fixed(window, 2),
               fmt_fixed(window / period, 3),
               fmt_percent(report.contribution[id] / report.total)});
  }
  std::printf("top soft-error contributors:\n%s\n", t.str().c_str());
  return 0;
}
