// Quickstart: build a small sequential circuit, analyze its soft-error
// rate, retime it with MinObsWin, and verify the improvement.
//
//   $ ./examples/quickstart
//
// This walks the whole public API in ~60 lines: NetlistBuilder,
// RetimingGraph, Section-V initialization, observability gains, the
// MinObsWin solver, retiming materialization and SER re-analysis.
#include <cstdio>

#include "core/initializer.hpp"
#include "core/objective.hpp"
#include "core/solver.hpp"
#include "netlist/builder.hpp"
#include "rgraph/apply.hpp"
#include "ser/ser_analyzer.hpp"
#include "sim/observability.hpp"

int main() {
  using namespace serelin;

  // 1. A toy circuit: two observable operands latched into registers that
  //    feed a masked AND cone — the registers sit at high-observability
  //    spots and MinObsWin will merge them forward across the AND. (Any
  //    ISCAS89-style .bench file works too: read_bench_file.)
  NetlistBuilder builder("quickstart");
  builder.input("a").input("b").input("sel");
  builder.gate("pa", CellType::kBuf, {"a"});
  builder.gate("pb", CellType::kNot, {"b"});
  builder.gate("ta", CellType::kXor, {"pa", "b"});  // XOR taps keep the
  builder.gate("tb", CellType::kXor, {"pb", "a"});  // operands observable
  builder.output("ta").output("tb");
  builder.dff("ra", "pa");
  builder.dff("rb", "pb");
  builder.gate("g", CellType::kAnd, {"ra", "rb"});
  builder.gate("h", CellType::kAnd, {"g", "sel"});
  builder.output("h");
  builder.dff("t", "h");
  builder.gate("tap", CellType::kBuf, {"t"});
  builder.output("tap");
  const Netlist circuit = builder.build();
  const CellLibrary lib;

  // 2. Retiming graph + Section-V initialization (Φ, R_min, feasible r).
  RetimingGraph graph(circuit, lib);
  const InitResult init = initialize_retiming(graph, {});
  std::printf("clock period Phi = %.1f, R_min = %.2f\n", init.timing.period,
              init.rmin);

  // 3. Observability gains from n-time-frame signature simulation.
  SimConfig sim;
  sim.patterns = 2048;
  sim.frames = 15;
  ObservabilityAnalyzer obs_engine(circuit, sim);
  const ObsGains gains =
      compute_gains(graph, obs_engine.run().obs, sim.patterns);

  // 4. MinObsWin: minimum register observability under ELW constraints.
  SolverOptions options;
  options.timing = init.timing;
  options.rmin = init.rmin;
  MinObsWinSolver solver(graph, gains, options);
  const SolverResult result = solver.solve(init.r);
  std::printf("solver: %d commits, K-scaled observability gain %lld\n",
              result.commits,
              static_cast<long long>(result.objective_gain));

  // 5. Materialize and compare SER (Eq. 4: logic + timing masking).
  SerOptions ser;
  ser.timing = init.timing;
  ser.sim = sim;
  const double before = analyze_ser(circuit, lib, ser).total;
  const Netlist retimed = apply_retiming(graph, result.r, "quickstart_rt");
  const double after = analyze_ser(retimed, lib, ser).total;
  std::printf("SER: %.3e -> %.3e (%+.1f%%), flip-flops: %zu -> %zu\n",
              before, after, 100.0 * (after - before) / before,
              circuit.dff_count(), retimed.dff_count());
  return 0;
}
