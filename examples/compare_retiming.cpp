// compare_retiming: Efficient MinObs (logic masking only, the method of
// [17]) versus MinObsWin (logic + timing masking, the paper's algorithm)
// side by side on one circuit — the per-circuit story behind Table I.
//
//   $ ./examples/compare_retiming [circuit.bench]
#include <cstdio>

#include "flow/experiment.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace serelin;
  CellLibrary lib;

  Netlist circuit = [&] {
    if (argc > 1) return read_bench_file(argv[1]);
    RandomCircuitSpec spec;
    spec.name = "demo";
    spec.gates = 2500;
    spec.dffs = 600;
    spec.inputs = 20;
    spec.outputs = 20;
    spec.seed = 2718;
    return generate_random_circuit(spec);
  }();

  FlowConfig config;
  config.sim.patterns = 1024;
  config.sim.frames = 10;
  const ExperimentRow row = run_experiment(circuit, lib, config);

  std::printf("circuit %s: |V|=%zu |E|=%zu #FF=%lld Phi=%.0f R_min=%.2f\n",
              row.name.c_str(), row.vertices, row.edges,
              static_cast<long long>(row.ffs), row.phi, row.rmin);
  std::printf("original SER = %s\n\n", fmt_sci(row.ser_original).c_str());

  TextTable t({"", "Efficient MinObs [17]", "MinObsWin (this paper)"});
  auto pct = [](double v) { return fmt_percent(v); };
  t.add_row({"objective gain (K-scaled)",
             std::to_string(row.minobs.solver.objective_gain),
             std::to_string(row.minobswin.solver.objective_gain)});
  t.add_row({"commits (#J)", std::to_string(row.minobs.solver.commits),
             std::to_string(row.minobswin.solver.commits)});
  t.add_row({"runtime [s]", fmt_fixed(row.minobs.seconds, 3),
             fmt_fixed(row.minobswin.seconds, 3)});
  t.add_row({"delta #FF", pct(row.minobs.dff_change),
             pct(row.minobswin.dff_change)});
  t.add_row({"re-analyzed SER", fmt_sci(row.minobs.ser),
             fmt_sci(row.minobswin.ser)});
  t.add_row({"delta SER", pct(row.minobs.dser), pct(row.minobswin.dser)});
  std::printf("%s\n", t.str().c_str());

  if (row.minobswin.ser > 0.0) {
    std::printf("SER_ref / SER_new = %s (the paper's last column; >100%% "
                "means the ELW constraints paid off)\n",
                fmt_percent(row.minobs.ser / row.minobswin.ser).c_str());
  }
  return 0;
}
