// harden_flow: the full soft-error-hardening retiming flow on a .bench
// netlist, writing the retimed circuit back out.
//
//   $ ./examples/harden_flow input.bench output.bench
//   $ ./examples/harden_flow            # demo circuit, writes /tmp
//
// Flow: parse -> Section-V initialization -> observability analysis ->
// MinObsWin -> materialize -> re-analyze -> write .bench + summary.
#include <cstdio>
#include <string>

#include "flow/experiment.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "rgraph/apply.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace serelin;
  CellLibrary lib;

  Netlist circuit = [&] {
    if (argc > 1) return read_bench_file(argv[1]);
    RandomCircuitSpec spec;
    spec.name = "demo";
    spec.gates = 1200;
    spec.dffs = 300;
    spec.inputs = 16;
    spec.outputs = 16;
    spec.seed = 1234;
    return generate_random_circuit(spec);
  }();
  const std::string out_path =
      argc > 2 ? argv[2] : "/tmp/" + circuit.name() + "_hardened.bench";

  FlowConfig config;
  config.sim.patterns = 1024;
  config.sim.frames = 10;
  config.run_minobs = false;
  const ExperimentRow row = run_experiment(circuit, lib, config);

  // Materialize the MinObsWin result and write it out.
  RetimingGraph graph(circuit, lib);
  const Netlist hardened =
      apply_retiming(graph, row.minobswin.solver.r, circuit.name() + "_h");
  write_bench_file(out_path, hardened);

  std::printf("hardening flow: %s\n", circuit.name().c_str());
  std::printf("  |V| = %zu, |E| = %zu, #FF = %lld, Phi = %.0f, "
              "R_min = %.2f%s\n",
              row.vertices, row.edges, static_cast<long long>(row.ffs),
              row.phi, row.rmin,
              row.setup_hold_ok ? "" : " (hold fallback)");
  std::printf("  solver: %d commits, %lld inner iterations, %.2fs%s\n",
              row.minobswin.solver.commits,
              static_cast<long long>(row.minobswin.solver.iterations),
              row.minobswin.seconds,
              row.minobswin.solver.exited_early ? " [early exit]" : "");
  std::printf("  SER: %s -> %s (%s)\n", fmt_sci(row.ser_original).c_str(),
              fmt_sci(row.minobswin.ser).c_str(),
              fmt_percent(row.minobswin.dser).c_str());
  std::printf("  #FF: %lld -> %lld (%s)\n",
              static_cast<long long>(row.ffs),
              static_cast<long long>(row.minobswin.ffs),
              fmt_percent(row.minobswin.dff_change).c_str());
  std::printf("  wrote %s\n", out_path.c_str());
  return 0;
}
