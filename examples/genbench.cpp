// genbench: generate a synthetic ISCAS-like benchmark as a .bench file —
// either a named row of the paper's Table-I suite or a custom size.
//
//   $ ./examples/genbench b14_1_opt out.bench      # suite stand-in
//   $ ./examples/genbench 5000 1200 out.bench      # gates, flip-flops
//   $ ./examples/genbench                          # list suite rows
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gen/paper_suite.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"

int main(int argc, char** argv) {
  using namespace serelin;
  if (argc < 2) {
    std::printf("usage: genbench <suite-name|gates> [dffs] <out.bench>\n\n"
                "suite rows (Table I of the paper):\n");
    std::printf("  %-12s %8s %8s %8s\n", "name", "|V|", "|E|", "#FF");
    for (const SuiteCircuit& c : paper_suite())
      std::printf("  %-12s %8d %8d %8d\n", c.name.c_str(), c.vertices,
                  c.edges, c.dffs);
    return 0;
  }

  Netlist nl = [&] {
    const std::string first = argv[1];
    const bool numeric =
        first.find_first_not_of("0123456789") == std::string::npos;
    if (!numeric) return generate_suite_circuit(suite_circuit(first));
    RandomCircuitSpec spec;
    spec.gates = std::atoi(argv[1]);
    spec.dffs = argc > 3 ? std::atoi(argv[2]) : spec.gates / 4;
    spec.inputs = 16;
    spec.outputs = 16;
    spec.name = "rand" + std::to_string(spec.gates);
    spec.seed = 1;
    return generate_random_circuit(spec);
  }();

  const std::string out = argv[argc - 1];
  write_bench_file(out, nl);
  std::printf("wrote %s: %zu gates, %zu flip-flops, %zu inputs, %zu "
              "outputs\n",
              out.c_str(), nl.gate_count(), nl.dff_count(),
              nl.inputs().size(), nl.outputs().size());
  return 0;
}
