#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/regular_forest.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace serelin {
namespace {

std::set<VertexId> as_set(const std::vector<VertexId>& v) {
  return {v.begin(), v.end()};
}

RegularForest make(std::vector<std::int64_t> gains,
                   std::vector<char> movable = {}) {
  if (movable.empty()) movable.assign(gains.size(), 1);
  return RegularForest(gains, movable);
}

TEST(RegularForest, InitialPositiveSetIsPositiveGains) {
  auto f = make({5, -2, 0, 7, -1});
  EXPECT_EQ(as_set(f.positive_set()), (std::set<VertexId>{0, 3}));
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_TRUE(f.is_singleton(v));
    EXPECT_EQ(f.weight(v), 1);
  }
  f.check_invariants();
}

TEST(RegularForest, LinkAbsorbsDependency) {
  auto f = make({3, -2, -10});
  f.add_constraint(0, 1, 1);  // 0 forces 1: tree gain 1 > 0
  EXPECT_TRUE(f.same_tree(0, 1));
  EXPECT_EQ(as_set(f.positive_set()), (std::set<VertexId>{0, 1}));
  f.check_invariants();
  f.add_constraint(0, 2, 1);  // tree gain -9: drops out of V_P
  EXPECT_TRUE(f.positive_set().empty());
  f.check_invariants();
}

TEST(RegularForest, ImmovableBlocksTree) {
  auto f = make({5, 0}, {1, 0});
  f.add_constraint(0, 1, 1);
  EXPECT_TRUE(f.same_tree(0, 1));
  EXPECT_TRUE(f.positive_set().empty());  // blocked despite gain 5
  f.check_invariants();
  // Idempotent: re-adding the same blocking constraint is a no-op.
  f.add_constraint(0, 1, 1);
  EXPECT_TRUE(f.positive_set().empty());
}

TEST(RegularForest, Fig3BreakTreeScenario) {
  // The paper's Fig. 3: x bundles y (P0 fix, weight 1); then u needs y
  // with weight 2 (P2' fix): BreakTree(y), weight update, relink under u.
  // Vertices: u=0 (+5), x=1 (+3), y=2 (-2).
  auto f = make({5, 3, -2});
  f.add_constraint(1, 2, 1);  // (x, y) with w(y) = 1
  EXPECT_TRUE(f.same_tree(1, 2));
  EXPECT_EQ(f.weight(2), 1);
  f.add_constraint(0, 2, 2);  // (u, y) with w(y) = 2
  EXPECT_TRUE(f.same_tree(0, 2));
  EXPECT_FALSE(f.same_tree(1, 2));  // y was broken out of x's tree
  EXPECT_EQ(f.weight(2), 2);
  // Tree {u,y}: 5 - 2*2 = 1 > 0; x alone: 3 > 0.
  EXPECT_EQ(as_set(f.positive_set()), (std::set<VertexId>{0, 1, 2}));
  f.check_invariants();
}

TEST(RegularForest, WeightedGainArithmetic) {
  auto f = make({4, -3});
  f.add_constraint(0, 1, 1);  // 4 - 3 = 1 > 0
  EXPECT_EQ(as_set(f.positive_set()), (std::set<VertexId>{0, 1}));
  f.add_constraint(0, 1, 2);  // now needs weight 2: 4 - 6 = -2
  EXPECT_EQ(f.weight(1), 2);
  EXPECT_TRUE(f.positive_set().empty());
  f.check_invariants();
}

TEST(RegularForest, SelfConstraintUpdatesOwnWeight) {
  auto f = make({2});
  f.add_constraint(0, 0, 3);
  EXPECT_EQ(f.weight(0), 3);
  EXPECT_EQ(f.subtree_gain(0), 6);
  EXPECT_EQ(as_set(f.positive_set()), (std::set<VertexId>{0}));
  f.check_invariants();
}

TEST(RegularForest, BreakTreeDetachesChildren) {
  auto f = make({5, -1, -1, -1});
  f.add_constraint(0, 1, 1);
  f.add_constraint(0, 2, 1);
  f.add_constraint(1, 3, 1);
  EXPECT_TRUE(f.same_tree(0, 3));
  f.break_tree(1);
  EXPECT_TRUE(f.is_singleton(1));
  EXPECT_FALSE(f.same_tree(1, 0));
  EXPECT_FALSE(f.same_tree(1, 3));
  f.check_invariants();
}

TEST(RegularForest, RedundantSameTreeLinkIsNoOp) {
  auto f = make({5, -2});
  f.add_constraint(0, 1, 1);
  f.add_constraint(0, 1, 1);  // same weight, same tree
  EXPECT_TRUE(f.same_tree(0, 1));
  EXPECT_EQ(f.weight(1), 1);
  f.check_invariants();
}

TEST(RegularForest, RejectsImmovableSource) {
  auto f = make({1, 1}, {0, 1});
  EXPECT_THROW(f.add_constraint(0, 1, 1), PreconditionError);
}

TEST(RegularForest, PositivePositiveLink) {
  // Linking two positive trees (the paper's Fig. 3 root cause) must keep
  // both decreasing — either merged or as separate positive trees.
  auto f = make({4, 6});
  f.add_constraint(0, 1, 2);  // 1 must move 2 with 0
  const auto set = as_set(f.positive_set());
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(1));
  EXPECT_EQ(f.weight(1), 2);
  f.check_invariants();
}

// Property: arbitrary constraint streams keep the forest structurally
// sound (sums consistent, trees regular, positive set = positive trees).
class ForestProperty : public ::testing::TestWithParam<int> {};

TEST_P(ForestProperty, InvariantsUnderRandomOps) {
  Rng rng(GetParam() * 31337u);
  const int n = 24;
  std::vector<std::int64_t> gains(n);
  std::vector<char> movable(n, 1);
  for (int i = 0; i < n; ++i) {
    gains[i] = rng.range(-8, 8);
    if (rng.chance(0.15)) movable[i] = 0;
  }
  RegularForest f(gains, movable);
  for (int op = 0; op < 120; ++op) {
    VertexId p = static_cast<VertexId>(rng.below(n));
    if (!movable[p]) continue;
    const VertexId q = static_cast<VertexId>(rng.below(n));
    const auto w = static_cast<std::int32_t>(rng.range(1, 3));
    f.add_constraint(p, q, w);
    ASSERT_NO_THROW(f.check_invariants()) << "op " << op;
    // Every member of the positive set is in a positive, unblocked tree.
    for (VertexId v : f.positive_set()) {
      const VertexId root = f.root_of(v);
      EXPECT_GT(f.subtree_gain(root), 0);
      EXPECT_EQ(f.subtree_blocked(root), 0);
      EXPECT_TRUE(movable[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestProperty, ::testing::Range(1, 16));

}  // namespace
}  // namespace serelin
