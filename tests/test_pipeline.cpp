// Tests of the graceful-degradation solver pipeline (src/flow/pipeline):
// convergence at the preferred stage, full degradation to the identity
// safety net, the relaxed-budget retry, and the JSONL run journal.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "flow/pipeline.hpp"
#include "helpers.hpp"
#include "support/atomic_io.hpp"
#include "support/check.hpp"

namespace serelin {
namespace {

PipelineOptions fast_options() {
  PipelineOptions po;
  po.sim.patterns = 128;
  po.sim.frames = 4;
  po.sim.warmup = 8;
  return po;
}

std::vector<std::string> journal_lines(const std::string& path) {
  // Journals are framed (length + CRC per record) since the crash-safety
  // work; read_journal is the one sanctioned reader.
  const JournalRecovery rec = read_journal(path);
  EXPECT_FALSE(rec.torn) << rec.detail;
  return rec.records;
}

bool has_field(const std::string& line, const std::string& key,
               const std::string& value) {
  return line.find('"' + key + "\":\"" + value + '"') != std::string::npos;
}

TEST(Pipeline, ConvergesAtFirstStage) {
  const Netlist nl = test::tiny_reconvergent();
  CellLibrary lib;
  const PipelineResult res = run_pipeline(nl, lib, fast_options());
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.stage, PipelineStage::kMinObsWin);
  EXPECT_FALSE(res.degraded);
  ASSERT_EQ(res.attempts.size(), 1u);
  EXPECT_TRUE(res.attempts[0].accepted);
  EXPECT_TRUE(res.attempts[0].verified);
  EXPECT_TRUE(res.verdict.ok()) << res.verdict.summary();
  EXPECT_TRUE(res.journal_healthy);
  EXPECT_TRUE(res.journal_path.empty());
}

TEST(Pipeline, StartStageSkipsEarlierOnes) {
  const Netlist nl = test::tiny_reconvergent();
  CellLibrary lib;
  PipelineOptions po = fast_options();
  po.start = PipelineStage::kMinObs;
  const PipelineResult res = run_pipeline(nl, lib, po);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.stage, PipelineStage::kMinObs);
  EXPECT_FALSE(res.degraded);
  ASSERT_FALSE(res.attempts.empty());
  EXPECT_EQ(res.attempts.front().stage, PipelineStage::kMinObs);
}

TEST(Pipeline, DegradesThroughEveryStageOnInfeasiblePeriod) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  PipelineOptions po = fast_options();
  // No gate fits in this period, so minobswin and minobs return their
  // (now infeasible) initialization and the oracle rejects it, minperiod's
  // FEAS proves infeasibility, and only the period-relaxing identity stage
  // can produce a verified result.
  po.period = 0.01;
  const std::string journal =
      (std::filesystem::path(::testing::TempDir()) / "degrade.jsonl")
          .string();
  po.journal_path = journal;

  const PipelineResult res = run_pipeline(nl, lib, po);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.stage, PipelineStage::kIdentity);
  EXPECT_TRUE(res.degraded);
  EXPECT_TRUE(res.verdict.ok()) << res.verdict.summary();
  EXPECT_GE(res.timing.period, critical_path(nl, lib));

  ASSERT_EQ(res.attempts.size(), 4u);
  EXPECT_EQ(res.attempts[0].stage, PipelineStage::kMinObsWin);
  EXPECT_EQ(res.attempts[1].stage, PipelineStage::kMinObs);
  EXPECT_EQ(res.attempts[2].stage, PipelineStage::kMinPeriod);
  EXPECT_EQ(res.attempts[3].stage, PipelineStage::kIdentity);
  // The solver stages were verified and rejected on the period invariant;
  // the min-period stage errored out with a FEAS infeasibility.
  for (int i : {0, 1}) {
    EXPECT_TRUE(res.attempts[i].verified);
    EXPECT_FALSE(res.attempts[i].verdict.ok());
    EXPECT_EQ(res.attempts[i].verdict.result(Invariant::kPeriod).status,
              CheckStatus::kFail);
  }
  EXPECT_TRUE(res.attempts[2].errored);
  EXPECT_TRUE(res.attempts[3].accepted);

  // The journal mirrors the whole run: start, setup, one line per
  // attempt, and the final result event.
  EXPECT_TRUE(res.journal_healthy);
  const std::vector<std::string> lines = journal_lines(journal);
  ASSERT_EQ(lines.size(), 7u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_TRUE(has_field(lines[0], "event", "start"));
  EXPECT_TRUE(has_field(lines[1], "event", "setup"));
  for (int i = 2; i <= 5; ++i)
    EXPECT_TRUE(has_field(lines[i], "event", "attempt")) << lines[i];
  EXPECT_TRUE(has_field(lines[2], "stage", "minobswin"));
  EXPECT_TRUE(has_field(lines[5], "stage", "identity"));
  EXPECT_TRUE(has_field(lines[6], "event", "result"));
  EXPECT_TRUE(has_field(lines[6], "stage", "identity"));
}

TEST(Pipeline, RelaxedRetryRecoversFromTinyStageBudget) {
  const Netlist nl = test::tiny_reconvergent();
  CellLibrary lib;
  PipelineOptions po = fast_options();
  // First attempt gets a sub-microsecond slice and is cancelled mid-
  // flight; the overall deadline is unlimited, so the relaxed retry runs
  // unbudgeted and must succeed at the same stage.
  po.stage_budget_s = 1e-9;
  const PipelineResult res = run_pipeline(nl, lib, po);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.stage, PipelineStage::kMinObsWin);
  EXPECT_FALSE(res.degraded);
  ASSERT_EQ(res.attempts.size(), 2u);
  EXPECT_EQ(res.attempts[0].attempt, 0);
  EXPECT_TRUE(res.attempts[0].errored);
  EXPECT_FALSE(res.attempts[0].accepted);
  EXPECT_EQ(res.attempts[1].attempt, 1);
  EXPECT_TRUE(res.attempts[1].accepted);
  EXPECT_TRUE(res.verdict.ok()) << res.verdict.summary();
}

TEST(Pipeline, UnopenableJournalThrows) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  PipelineOptions po = fast_options();
  po.journal_path = "/nonexistent-serelin-dir/journal.jsonl";
  EXPECT_THROW(run_pipeline(nl, lib, po), Error);
}

TEST(Pipeline, VerifyOffStillRecordsAttempts) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  PipelineOptions po = fast_options();
  po.verify = false;
  const PipelineResult res = run_pipeline(nl, lib, po);
  EXPECT_TRUE(res.ok);
  ASSERT_EQ(res.attempts.size(), 1u);
  EXPECT_FALSE(res.attempts[0].verified);
  EXPECT_TRUE(res.attempts[0].accepted);
}

}  // namespace
}  // namespace serelin
