// Tests of the independent result-verification oracle (src/check): every
// solver's output must verify on every bundled example circuit, and each
// class of injected corruption must be rejected with the right
// per-invariant diagnosis.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "check/cross_check.hpp"
#include "check/oracle.hpp"
#include "core/initializer.hpp"
#include "gen/random_circuit.hpp"
#include "core/min_area.hpp"
#include "core/min_period.hpp"
#include "helpers.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "rgraph/apply.hpp"
#include "ser/ser_analyzer.hpp"
#include "support/check.hpp"

namespace serelin {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> example_circuits() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(SERELIN_EXAMPLES_DIR)) {
    const std::string ext = entry.path().extension().string();
    if (ext == ".bench" || ext == ".blif") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

Netlist load(const fs::path& path) {
  return path.extension() == ".blif" ? read_blif_file(path.string())
                                     : read_bench_file(path.string());
}

SimConfig fast_sim() {
  SimConfig sim;
  sim.patterns = 128;
  sim.frames = 4;
  sim.warmup = 8;
  return sim;
}

/// Oracle options matching the context a MinObsWin/MinObs run claims.
OracleOptions oracle_for(const SolverOptions& so, const SolverResult& res) {
  OracleOptions oo;
  oo.timing = so.timing;
  oo.rmin = so.rmin;
  oo.check_elw = so.enforce_elw && so.rmin > 0 && !res.exited_early;
  return oo;
}

TEST(OracleExamples, AcceptsEverySolverOnEveryCircuit) {
  const std::vector<fs::path> files = example_circuits();
  ASSERT_FALSE(files.empty()) << "no circuits under " << SERELIN_EXAMPLES_DIR;
  for (const fs::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    const Netlist nl = load(path);
    CellLibrary lib;
    RetimingGraph g(nl, lib);
    const InitResult init = initialize_retiming(g, {});
    const ObsGains gains = test::gains_for(g, nl, fast_sim());

    SolverOptions so;
    so.timing = init.timing;
    so.rmin = init.rmin;

    // Algorithm 1 with ELW constraints.
    so.enforce_elw = true;
    {
      MinObsWinSolver solver(g, gains, so);
      const SolverResult res = solver.solve(init.r);
      const Verdict v =
          RetimingOracle(g, oracle_for(so, res)).verify(res, init.r, gains);
      EXPECT_TRUE(v.ok()) << "minobswin: " << v.summary();
    }

    // Efficient MinObs baseline (no ELW claim).
    so.enforce_elw = false;
    {
      MinObsWinSolver solver(g, gains, so);
      const SolverResult res = solver.solve(init.r);
      const Verdict v =
          RetimingOracle(g, oracle_for(so, res)).verify(res, init.r, gains);
      EXPECT_TRUE(v.ok()) << "minobs: " << v.summary();
    }

    // Min-period retiming at the initialization period.
    {
      MinPeriodRetimer::Options mo;
      mo.setup = init.timing.setup;
      MinPeriodRetimer retimer(g, mo);
      const auto r = retimer.retime_for_period(init.timing.period, init.r);
      ASSERT_TRUE(r.has_value());
      OracleOptions oo;
      oo.timing = init.timing;
      oo.check_elw = false;
      const Verdict v = RetimingOracle(g, oo).verify(*r);
      EXPECT_TRUE(v.ok()) << "minperiod: " << v.summary();
    }

    // Min-area retiming (uniform gains, no objective/ELW claim).
    {
      const MinAreaResult area = min_area_retime(g, init.timing, init.r);
      OracleOptions oo;
      oo.timing = init.timing;
      oo.check_elw = false;
      const Verdict v = RetimingOracle(g, oo).verify(area.solver.r);
      EXPECT_TRUE(v.ok()) << "minarea: " << v.summary();
    }
  }
}

TEST(Oracle, AcceptsTinyFixturesAndSkipsUnclaimedObjective) {
  for (const Netlist& nl : {test::tiny_pipeline(), test::tiny_ring(),
                            test::tiny_reconvergent()}) {
    SCOPED_TRACE(nl.name());
    CellLibrary lib;
    RetimingGraph g(nl, lib);
    const InitResult init = initialize_retiming(g, {});
    OracleOptions oo;
    oo.timing = init.timing;
    oo.rmin = init.rmin;
    const Verdict v = RetimingOracle(g, oo).verify(init.r);
    EXPECT_TRUE(v.ok()) << v.summary();
    EXPECT_EQ(v.result(Invariant::kObjective).status, CheckStatus::kSkipped);
    EXPECT_NE(v.summary().find("verified"), std::string::npos);
  }
}

TEST(Oracle, RejectsCorruptedGateLabel) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});

  // Bumping one gate label makes some edge weight w + r(v) − r(u) go
  // negative (the gate "borrows" a register that does not exist).
  Retiming bad = g.zero_retiming();
  bad[g.vertex_of(nl.find("a"))] += 1;

  OracleOptions oo;
  oo.timing = init.timing;
  const Verdict v = RetimingOracle(g, oo).verify(bad);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.result(Invariant::kLegality).status, CheckStatus::kFail);
  EXPECT_TRUE(v.diagnostics.has(DiagCode::kOracleLegality))
      << v.diagnostics.summary();
  // Downstream invariants cannot be materialized from an illegal labeling.
  EXPECT_EQ(v.result(Invariant::kPeriod).status, CheckStatus::kSkipped);
  EXPECT_EQ(v.result(Invariant::kElw).status, CheckStatus::kSkipped);
  EXPECT_NE(v.summary().find("REJECTED"), std::string::npos);
}

TEST(Oracle, RejectsMovedBoundaryLabel) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});

  Retiming bad = g.zero_retiming();
  bad[g.vertex_of(nl.find("x"))] = 1;  // boundary labels are pinned to 0

  OracleOptions oo;
  oo.timing = init.timing;
  const Verdict v = RetimingOracle(g, oo).verify(bad);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.result(Invariant::kLegality).status, CheckStatus::kFail);
  EXPECT_TRUE(v.diagnostics.has(DiagCode::kOracleLegality));
}

TEST(Oracle, RejectsPeriodViolation) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);

  OracleOptions oo;
  oo.timing.period = critical_path(nl, lib) / 2.0;  // cannot possibly fit
  oo.timing.setup = 0.0;
  const Verdict v = RetimingOracle(g, oo).verify(g.zero_retiming());
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.result(Invariant::kLegality).status, CheckStatus::kPass);
  EXPECT_EQ(v.result(Invariant::kPeriod).status, CheckStatus::kFail);
  EXPECT_TRUE(v.diagnostics.has(DiagCode::kOraclePeriod))
      << v.diagnostics.summary();
}

TEST(Oracle, RejectsElwViolation) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);

  OracleOptions oo;
  oo.timing.period = critical_path(nl, lib) + 10.0;  // period is generous
  oo.timing.hold = 2.0;
  oo.rmin = 1000.0;  // no short path can clear this bound
  const Verdict v = RetimingOracle(g, oo).verify(g.zero_retiming());
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.result(Invariant::kLegality).status, CheckStatus::kPass);
  EXPECT_EQ(v.result(Invariant::kPeriod).status, CheckStatus::kPass);
  EXPECT_EQ(v.result(Invariant::kElw).status, CheckStatus::kFail);
  EXPECT_TRUE(v.diagnostics.has(DiagCode::kOracleElw))
      << v.diagnostics.summary();
}

TEST(Oracle, RejectsForgedObjectiveGain) {
  const Netlist nl = test::tiny_reconvergent();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});
  const ObsGains gains = test::gains_for(g, nl, fast_sim());

  SolverOptions so;
  so.timing = init.timing;
  so.rmin = init.rmin;
  MinObsWinSolver solver(g, gains, so);
  SolverResult res = solver.solve(init.r);

  const RetimingOracle oracle(g, oracle_for(so, res));
  EXPECT_TRUE(oracle.verify(res, init.r, gains).ok());

  res.objective_gain += 1;  // forge the claim; everything else is intact
  const Verdict v = oracle.verify(res, init.r, gains);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.result(Invariant::kLegality).status, CheckStatus::kPass);
  EXPECT_EQ(v.result(Invariant::kObjective).status, CheckStatus::kFail);
  EXPECT_TRUE(v.diagnostics.has(DiagCode::kOracleObjective))
      << v.diagnostics.summary();
}

TEST(Oracle, SerCrossCheckMatchesReanalysis) {
  const Netlist nl = test::tiny_reconvergent();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});

  SerOptions ser;
  ser.timing = init.timing;
  ser.sim = fast_sim();
  const Netlist retimed = apply_retiming(g, init.r, nl.name() + "_rt");
  const double truth = analyze_ser(retimed, lib, ser).total;

  OracleOptions oo;
  oo.timing = init.timing;
  const RetimingOracle oracle(g, oo);

  Verdict good = oracle.verify(init.r);
  oracle.verify_ser(init.r, truth, ser, good);
  EXPECT_EQ(good.result(Invariant::kObjective).status, CheckStatus::kPass)
      << good.summary();
  EXPECT_TRUE(good.ok());

  Verdict forged = oracle.verify(init.r);
  oracle.verify_ser(init.r, truth * 1.5 + 1.0, ser, forged);
  EXPECT_EQ(forged.result(Invariant::kObjective).status, CheckStatus::kFail);
  EXPECT_TRUE(forged.diagnostics.has(DiagCode::kOracleObjective));
  EXPECT_FALSE(forged.ok());
}

TEST(Oracle, ExpiredDeadlineThrowsInsteadOfHalfVerifying) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  OracleOptions oo;
  oo.timing.period = 100.0;
  oo.deadline = Deadline::after(0.0);
  const RetimingOracle oracle(g, oo);
  EXPECT_THROW(oracle.verify(g.zero_retiming()), CancelledError);
}

TEST(Oracle, CriticalPathMatchesHandComputation) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  // Longest register-to-register / boundary segment: x -> a -> b -> ff.D
  // (two gate delays) versus ff.Q -> c -> PO (one).
  const double expect = std::max(lib.delay(CellType::kBuf) +
                                     lib.delay(CellType::kNot),
                                 lib.delay(CellType::kBuf));
  EXPECT_DOUBLE_EQ(critical_path(nl, lib), expect);
}

TEST(CrossCheck, IncrementalTimingValidatesAfterUpdates) {
  RandomCircuitSpec spec;
  spec.gates = 150;
  spec.dffs = 40;
  spec.seed = 99;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  GraphTiming t(g, {60.0, 0.0, 2.0});
  Retiming r = g.zero_retiming();
  t.compute(r);

  // Advance through a few valid single-vertex moves via update(), then
  // cross-check against the from-scratch recompute.
  Rng rng(4242);
  const auto& gates = g.gate_vertices();
  int applied = 0;
  for (int step = 0; step < 200 && applied < 25; ++step) {
    const VertexId v = gates[rng.next() % gates.size()];
    const bool inc = rng.chance(0.5);
    const auto& edges = inc ? g.out_edges(v) : g.in_edges(v);
    bool ok = true;
    for (EdgeId e : edges)
      if (g.wr(e, r) < 1) { ok = false; break; }
    if (!ok) continue;
    r[v] += inc ? 1 : -1;
    ++applied;
    t.update(r, std::span<const VertexId>(&v, 1));
  }
  ASSERT_GT(applied, 0);
  const CrossCheckResult res = cross_check_incremental_timing(g, t, r);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(CrossCheck, IncrementalTimingCatchesStaleLabels) {
  // Labels computed for the zero retiming, cross-checked against a moved
  // one: the helper must report the divergence, not bless it.
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  GraphTiming t(g, {4.0, 0.0, 1.0});
  Retiming r = g.zero_retiming();
  t.compute(r);

  Retiming moved = r;
  const VertexId inv1 = g.vertex_of(nl.find("inv1"));
  moved[inv1] += 1;  // inv1 -> ff2: the out-edge carries a register
  ASSERT_TRUE(g.valid(moved));
  const CrossCheckResult res = cross_check_incremental_timing(g, t, moved);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.detail.empty());
}

TEST(CrossCheck, LazyWdEngineValidatesAgainstDense) {
  RandomCircuitSpec spec;
  spec.gates = 120;
  spec.dffs = 30;
  spec.seed = 77;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdQueryOptions opt;
  opt.dense_threshold = 0;  // force lazy
  opt.cache_rows = 4;
  auto lazy = make_wd_query(g, opt);
  const CrossCheckResult res = cross_check_wd_engine(g, *lazy);
  EXPECT_TRUE(res.ok) << res.detail;
}

}  // namespace
}  // namespace serelin
