// Unit tests for the analysis substrate under the contract analyzer
// (src/analysis/): source sanitizing, NOLINT parsing, and the structural
// index the flow-aware lint passes are built on. The end-to-end rule
// behavior is pinned by tests/test_lint.cpp against fixture trees; these
// tests pin the substrate invariants those passes assume.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/index.hpp"
#include "analysis/registry.hpp"
#include "analysis/source.hpp"

namespace {

using namespace serelin::analysis;

SourceFile make_file(std::string rel, std::vector<std::string> raw) {
  SourceFile f;
  f.rel = std::move(rel);
  f.raw = std::move(raw);
  f.code = strip_comments_and_strings(f.raw);
  return f;
}

TEST(AnalysisSource, StripPreservesLineLengthsAndBlanksLiterals) {
  const std::vector<std::string> raw = {
      "int a = 1; // trailing comment with rand()",
      "const char* s = \"std::rand() inside a string\";",
      "/* block", "   spanning lines */ int b = 2;",
      "char c = 'x';",
  };
  const std::vector<std::string> code = strip_comments_and_strings(raw);
  ASSERT_EQ(code.size(), raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i)
    EXPECT_EQ(code[i].size(), raw[i].size()) << "line " << i + 1;
  EXPECT_EQ(find_token(code[0], "rand"), std::string::npos);
  EXPECT_EQ(find_token(code[1], "rand"), std::string::npos);
  EXPECT_NE(find_token(code[3], "b"), std::string::npos);
  EXPECT_EQ(find_token(code[2], "block"), std::string::npos);
}

TEST(AnalysisSource, FindTokenMatchesWholeIdentifiersOnly) {
  EXPECT_EQ(find_token("strand(x)", "rand"), std::string::npos);
  EXPECT_EQ(find_token("rand_max", "rand"), std::string::npos);
  EXPECT_NE(find_token("x = rand();", "rand"), std::string::npos);
}

TEST(AnalysisSource, NolintParsingAndSuppression) {
  const NolintMarker named =
      parse_nolint("code();  // NOLINT(serelin-no-wallclock)");
  EXPECT_TRUE(named.present);
  EXPECT_FALSE(named.bare);
  ASSERT_EQ(named.rules.size(), 1u);
  EXPECT_EQ(named.rules[0], "no-wallclock");

  EXPECT_TRUE(parse_nolint("code();  // NOLINT").bare);
  EXPECT_FALSE(parse_nolint("plain line").present);

  EXPECT_TRUE(
      nolint_suppressed("x;  // NOLINT(serelin-no-wallclock)", "no-wallclock"));
  EXPECT_FALSE(nolint_suppressed("x;  // NOLINT(serelin-no-wallclock)",
                                 "no-unseeded-random"));
  EXPECT_TRUE(nolint_suppressed("x;  // NOLINT", "anything"));
}

TEST(AnalysisIndex, ClassifiesScopesFunctionsAndLoops) {
  const SourceFile f = make_file(
      "src/sample.cpp",
      {
          "namespace fx {",
          "struct Gadget {",
          "  int spin() {",
          "    while (hot()) { step(); }",
          "    for (int i = 0; i < n_; ++i) tick(i);",
          "    for (;;) { idle(); }",
          "    return 0;",
          "  }",
          "  int n_ = 0;",
          "};",
          "}  // namespace fx",
      });
  const FileIndex ix = build_index(f);

  ASSERT_EQ(ix.functions.size(), 1u);
  EXPECT_EQ(ix.functions[0].name, "spin");
  EXPECT_EQ(ix.functions[0].record, "src/sample.cpp::Gadget");

  ASSERT_EQ(ix.loops.size(), 3u);
  EXPECT_EQ(ix.loops[0].kind, Loop::Kind::kWhile);
  EXPECT_EQ(ix.loops[0].line, 4);
  EXPECT_EQ(ix.loops[1].kind, Loop::Kind::kCountingFor);
  EXPECT_EQ(ix.loops[2].kind, Loop::Kind::kForever);
  for (const Loop& lp : ix.loops) EXPECT_EQ(lp.function, 0);
}

TEST(AnalysisIndex, MutexIdentityAndLockExtents) {
  const SourceFile f = make_file(
      "src/widget.cpp",
      {
          "namespace fx {",
          "Mutex g_registry;",
          "class Widget {",
          " public:",
          "  void poke() {",
          "    MutexLock lock(mutex_);",
          "    MutexLock outer(g_registry);",
          "  }",
          " private:",
          "  Mutex mutex_;",
          "};",
          "}  // namespace fx",
      });
  const FileIndex ix = build_index(f);

  ASSERT_EQ(ix.mutexes.size(), 2u);
  EXPECT_EQ(ix.mutexes[0].name, "g_registry");
  EXPECT_TRUE(ix.mutexes[0].record.empty());
  EXPECT_EQ(ix.mutexes[1].name, "mutex_");
  EXPECT_EQ(ix.mutexes[1].record, "src/widget.cpp::Widget");
  EXPECT_EQ(ix.mutexes[1].key, "src/widget.cpp::Widget::mutex_");

  ASSERT_EQ(ix.locks.size(), 2u);
  EXPECT_EQ(ix.locks[0].expr, "mutex_");
  EXPECT_EQ(ix.locks[0].line, 6);
  EXPECT_EQ(ix.locks[1].expr, "g_registry");
  // Both RAII extents end at the same enclosing function scope, and the
  // second acquisition happens inside the first's extent — the shape the
  // lock-order pass turns into an edge.
  EXPECT_EQ(ix.locks[0].scope_close, ix.locks[1].scope_close);
  EXPECT_GT(ix.locks[1].off, ix.locks[0].off);
  EXPECT_LT(ix.locks[1].off, ix.locks[0].scope_close);
}

TEST(AnalysisIndex, DeadlineishIdentifiers) {
  EXPECT_TRUE(deadlineish("deadline_"));
  EXPECT_TRUE(deadlineish("CancelToken"));
  EXPECT_TRUE(deadlineish("stop_requested"));
  EXPECT_TRUE(deadlineish("poller"));
  EXPECT_FALSE(deadlineish("stopwatch"));
  EXPECT_FALSE(deadlineish("total"));
}

TEST(AnalysisRegistry, TreeIndexLinksFunctionsAndMembers) {
  std::vector<SourceFile> files;
  files.push_back(make_file("src/a.cpp",
                            {
                                "namespace fx {",
                                "int helper(int x) { return x + 1; }",
                                "int driver() { return helper(2); }",
                                "}",
                            }));
  const TreeIndex tree = build_tree_index(files);
  const auto it = tree.functions_by_name.find("helper");
  ASSERT_NE(it, tree.functions_by_name.end());
  ASSERT_EQ(it->second.size(), 1u);
  const FileIndex& ix = tree.indexes[0];
  bool saw_call = false;
  for (const CallSite& c : ix.calls)
    if (c.callee == "helper") saw_call = true;
  EXPECT_TRUE(saw_call);
}

}  // namespace
