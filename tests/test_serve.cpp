// Tests for the job server (src/serve): wire protocol hardening, cache
// determinism, backpressure, cancellation, graceful drain and event
// streaming. Every server here runs in-process on its own unix socket;
// nothing depends on wall-clock ordering — blocking steps are made
// deterministic with the submit-time `test_delay_ms` hold.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "flow/journal.hpp"
#include "helpers.hpp"
#include "netlist/bench_io.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/sockets.hpp"
#include "support/deadline.hpp"

namespace serelin {
namespace {

std::string tiny_bench() {
  std::ostringstream out;
  write_bench(out, test::tiny_reconvergent());
  return out.str();
}

/// An in-process server on a fresh socket, drained on destruction.
struct TestServer {
  ServerConfig cfg;
  std::unique_ptr<Server> server;
  std::thread thread;
  CancelToken stop;

  explicit TestServer(int workers = 2, int max_queue = 8,
                      std::size_t cache = 16) {
    static std::atomic<int> counter{0};
    cfg.socket_path = "/tmp/serelin_t" +
                      std::to_string(static_cast<long long>(::getpid())) +
                      "_" + std::to_string(counter++) + ".sock";
    cfg.workers = workers;
    cfg.max_queue = max_queue;
    cfg.cache_capacity = cache;
    cfg.max_deadline_s = 30.0;
    server = std::make_unique<Server>(cfg);
    server->start();
    thread = std::thread([this] { server->run(stop); });
  }

  ~TestServer() { drain(); }

  void drain() {
    if (thread.joinable()) {
      stop.cancel();
      thread.join();
    }
  }

  UnixStream connect() { return UnixStream::connect(cfg.socket_path); }
};

/// One request/response exchange with a bounded wait.
Request rpc(UnixStream& stream, const std::string& line) {
  EXPECT_TRUE(stream.write_line(line));
  const Deadline patience = Deadline::after(30.0);
  std::string response;
  for (;;) {
    const UnixStream::ReadStatus st = stream.read_line(response, 200);
    if (st == UnixStream::ReadStatus::kLine) break;
    if (st != UnixStream::ReadStatus::kTimeout || patience.expired()) {
      ADD_FAILURE() << "no response from server";
      return {};
    }
  }
  const ParseOutcome parsed = parse_object(response);
  EXPECT_TRUE(parsed.ok) << parsed.error << " in: " << response;
  return parsed.request;
}

std::string submit_line(const std::string& circuit, int test_delay_ms = 0,
                        int priority = 0, bool use_cache = true,
                        int patterns = 64) {
  JsonObject o;
  o.set("op", "submit")
      .set("circuit", circuit)
      .set("patterns", patterns)
      .set("frames", 2)
      .set("warmup", 2)
      .set("priority", priority);
  if (test_delay_ms > 0) o.set("test_delay_ms", test_delay_ms);
  if (!use_cache) o.set("cache", false);
  return o.str();
}

/// Submits and expects acceptance; returns the job id.
std::string submit_ok(UnixStream& s, const std::string& line,
                      bool* cached = nullptr) {
  const Request r = rpc(s, line);
  EXPECT_EQ(r.get_bool("ok"), true);
  if (cached) *cached = r.get_bool("cached").value_or(false);
  return r.get_string("job").value_or("");
}

/// Blocks (server-side) until the job is terminal; returns the response.
Request await_result(UnixStream& s, const std::string& id) {
  JsonObject o;
  o.set("op", "result").set("job", id).set("wait", true);
  return rpc(s, o.str());
}

std::string job_state(UnixStream& s, const std::string& id) {
  JsonObject o;
  o.set("op", "status").set("job", id);
  return rpc(s, o.str()).get_string("state").value_or("");
}

// ---------------------------------------------------------------------------
// Protocol parser

TEST(ServeProtocol, ParsesFlatRequests) {
  const ParseOutcome p = parse_request(
      R"({"op":"submit","circuit":"INPUT(a)\n","priority":3,)"
      R"("cache":false,"deadline_s":1.5})");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.op, "submit");
  EXPECT_EQ(p.request.get_string("circuit"), "INPUT(a)\n");
  EXPECT_EQ(p.request.get_int("priority"), 3);
  EXPECT_EQ(p.request.get_bool("cache"), false);
  EXPECT_EQ(p.request.get_number("deadline_s"), 1.5);
  EXPECT_FALSE(p.request.get_string("missing").has_value());
  EXPECT_FALSE(p.request.get_int("deadline_s").has_value());  // not integral
}

TEST(ServeProtocol, RejectsDefects) {
  EXPECT_FALSE(parse_request("").ok);
  EXPECT_FALSE(parse_request("not json").ok);
  EXPECT_FALSE(parse_request(R"({"op":"x")").ok);            // unterminated
  EXPECT_FALSE(parse_request(R"({"op":"x"} junk)").ok);      // trailing
  EXPECT_FALSE(parse_request(R"({"a":1})").ok);              // no op
  EXPECT_FALSE(parse_request(R"({"op":1})").ok);             // op not string
  EXPECT_FALSE(parse_request(R"({"op":"x","a":1,"a":2})").ok);  // dup key
  EXPECT_FALSE(parse_request(R"({"op":"x","v":nope})").ok);
  // parse_object accepts op-less objects (responses).
  EXPECT_TRUE(parse_object(R"({"ok":true,"job":"j-000001"})").ok);
}

TEST(ServeProtocol, UnescapesStringsAndSkipsNested) {
  const ParseOutcome p = parse_request(
      "{\"op\":\"x\",\"s\":\"a\\n\\t\\\"b\\\\\\u0041\\u00e9\","
      "\"nest\":{\"deep\":[1,2,{\"x\":\"}\"}]}}");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.get_string("s"), "a\n\t\"b\\A\xc3\xa9");
  const auto it = p.request.fields.find("nest");
  ASSERT_NE(it, p.request.fields.end());
  EXPECT_EQ(it->second.kind, JsonValue::Kind::kNested);
  EXPECT_FALSE(p.request.get_string("nest").has_value());
}

// ---------------------------------------------------------------------------
// Result cache

TEST(ServeCache, LruEvictionAndCounters) {
  ResultCache cache(2);
  EXPECT_FALSE(cache.lookup(1).has_value());
  cache.insert(1, {"one", "minobswin", 10.0, 1.0, 5, true});
  cache.insert(2, {"two", "minobswin", 10.0, 1.0, 5, true});
  EXPECT_EQ(cache.lookup(1)->circuit_text, "one");  // refreshes 1
  cache.insert(3, {"three", "minobswin", 10.0, 1.0, 5, true});  // evicts 2
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_EQ(cache.lookup(1)->circuit_text, "one");
  EXPECT_EQ(cache.lookup(3)->circuit_text, "three");
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ServeCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.insert(1, {"one", "identity", 1.0, 0.0, 0, true});
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
}

// ---------------------------------------------------------------------------
// Protocol over a live server

TEST(ServeServer, MalformedRequestKeepsConnectionAlive) {
  TestServer ts;
  UnixStream s = ts.connect();
  Request r = rpc(s, "this is not json");
  EXPECT_EQ(r.get_bool("ok"), false);
  EXPECT_EQ(r.get_string("error"), "bad-json");
  r = rpc(s, R"({"no_op_field":1})");
  EXPECT_EQ(r.get_string("error"), "bad-json");
  r = rpc(s, R"({"op":"frobnicate"})");
  EXPECT_EQ(r.get_string("error"), "bad-request");
  r = rpc(s, R"json({"op":"submit","circuit":"INPUT(a)","bogus_knob":1})json");
  EXPECT_EQ(r.get_string("error"), "bad-request");
  r = rpc(s, R"({"op":"submit"})");  // missing circuit
  EXPECT_EQ(r.get_string("error"), "bad-request");
  r = rpc(s, R"({"op":"status","job":"j-999999"})");
  EXPECT_EQ(r.get_string("error"), "unknown-job");
  // After five rejected requests the same connection still works.
  r = rpc(s, R"({"op":"ping"})");
  EXPECT_EQ(r.get_bool("ok"), true);
  EXPECT_EQ(r.get_string("event"), "pong");
  const ServerStats stats = ts.server->stats();
  EXPECT_EQ(stats.rejected_bad_request, 5);
}

TEST(ServeServer, SubmitRunsVerifiedAndReportsStatus) {
  TestServer ts;
  UnixStream s = ts.connect();
  const std::string id = submit_ok(s, submit_line(tiny_bench()));
  ASSERT_FALSE(id.empty());
  const Request res = await_result(s, id);
  EXPECT_EQ(res.get_bool("ok"), true);
  EXPECT_EQ(res.get_string("state"), "done");
  EXPECT_EQ(res.get_bool("verified"), true);
  EXPECT_EQ(res.get_bool("degraded"), false);
  const std::string text = res.get_string("circuit").value_or("");
  ASSERT_FALSE(text.empty());
  // The result is a parseable netlist with the same interface.
  std::istringstream in(text);
  const Netlist out = read_bench(in);
  EXPECT_EQ(out.inputs().size(), 2u);
  EXPECT_EQ(out.outputs().size(), 1u);
  EXPECT_EQ(job_state(s, id), "done");
}

TEST(ServeServer, CacheHitIsBitIdenticalAndConfigChangeMisses) {
  TestServer ts;
  UnixStream s = ts.connect();
  const std::string line = submit_line(tiny_bench());
  bool cached = true;
  const std::string first = submit_ok(s, line, &cached);
  EXPECT_FALSE(cached);
  const Request r1 = await_result(s, first);
  ASSERT_EQ(r1.get_string("state"), "done");

  // Same circuit, same config: a counted cache hit, bit-identical text.
  const std::string dup = submit_ok(s, line, &cached);
  EXPECT_TRUE(cached);
  const Request r2 = await_result(s, dup);
  EXPECT_EQ(r2.get_bool("cached"), true);
  EXPECT_EQ(r1.get_string("circuit"), r2.get_string("circuit"));
  EXPECT_EQ(r1.get_number("period"), r2.get_number("period"));
  EXPECT_EQ(ts.server->cache_hits(), 1);

  // Same circuit, different result-affecting config: a miss.
  const std::string other =
      submit_ok(s, submit_line(tiny_bench(), 0, 0, true, 128), &cached);
  EXPECT_FALSE(cached);
  const Request r3 = await_result(s, other);
  EXPECT_EQ(r3.get_string("state"), "done");
  EXPECT_EQ(r3.get_bool("cached"), false);

  // Opting out of the cache also misses, even with an identical line.
  submit_ok(s, submit_line(tiny_bench(), 0, 0, /*use_cache=*/false),
            &cached);
  EXPECT_FALSE(cached);
}

TEST(ServeServer, BackpressureRejectsWhenSaturated) {
  TestServer ts(/*workers=*/1, /*max_queue=*/1);
  UnixStream s = ts.connect();
  // Pin the only worker, then fill the only queue slot. Holds are
  // interruptible 60 s waits — nothing here depends on them elapsing.
  const std::string pinned =
      submit_ok(s, submit_line(tiny_bench(), /*test_delay_ms=*/60000));
  // Wait until the worker picked it up so the next job must queue.
  const Deadline patience = Deadline::after(30.0);
  while (job_state(s, pinned) != "running") {
    ASSERT_FALSE(patience.expired());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::string queued =
      submit_ok(s, submit_line(tiny_bench(), 60000, 0, false));

  const Request rejected = rpc(s, submit_line(tiny_bench(), 60000));
  EXPECT_EQ(rejected.get_bool("ok"), false);
  EXPECT_EQ(rejected.get_string("error"), "backpressure");
  EXPECT_TRUE(rejected.get_number("retry_after_s").has_value());
  EXPECT_EQ(rejected.get_int("queue_depth"), 1);
  EXPECT_EQ(ts.server->stats().rejected_backpressure, 1);

  // Cancelling the queued job frees the slot: the next submit is accepted.
  JsonObject c;
  c.set("op", "cancel").set("job", queued);
  EXPECT_EQ(rpc(s, c.str()).get_string("state"), "cancelled");
  const std::string after = submit_ok(s, submit_line(tiny_bench(), 60000));
  EXPECT_FALSE(after.empty());
}

TEST(ServeServer, CancelMidSolveEndsCancelled) {
  TestServer ts(/*workers=*/1);
  UnixStream s = ts.connect();
  const std::string id =
      submit_ok(s, submit_line(tiny_bench(), /*test_delay_ms=*/60000));
  const Deadline patience = Deadline::after(30.0);
  while (job_state(s, id) != "running") {
    ASSERT_FALSE(patience.expired());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  JsonObject c;
  c.set("op", "cancel").set("job", id);
  EXPECT_EQ(rpc(s, c.str()).get_bool("ok"), true);
  const Request res = await_result(s, id);
  EXPECT_EQ(res.get_string("state"), "cancelled");
  EXPECT_FALSE(res.get_string("circuit").has_value());
  EXPECT_EQ(ts.server->stats().cancelled, 1);
}

TEST(ServeServer, PriorityOrdersTheQueue) {
  TestServer ts(/*workers=*/1);
  UnixStream s = ts.connect();
  const std::string pin =
      submit_ok(s, submit_line(tiny_bench(), 60000, 0, false));
  const Deadline patience = Deadline::after(30.0);
  while (job_state(s, pin) != "running") {
    ASSERT_FALSE(patience.expired());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Low priority submitted first, high priority second; the freed worker
  // must pick the high one. The low job carries its own long hold so it
  // cannot race to done while we look.
  const std::string low =
      submit_ok(s, submit_line(tiny_bench(), 60000, /*priority=*/0, false));
  const std::string high =
      submit_ok(s, submit_line(tiny_bench(), 0, /*priority=*/5, false));
  JsonObject c;
  c.set("op", "cancel").set("job", pin);
  rpc(s, c.str());
  const Request res = await_result(s, high);
  EXPECT_EQ(res.get_string("state"), "done");
  const std::string low_state = job_state(s, low);
  EXPECT_TRUE(low_state == "queued" || low_state == "running")
      << "low-priority job overtook: " << low_state;
  JsonObject c2;
  c2.set("op", "cancel").set("job", low);
  rpc(s, c2.str());
}

TEST(ServeServer, StreamReplaysAndFollowsJournalEvents) {
  TestServer ts;
  UnixStream s = ts.connect();
  const std::string id = submit_ok(s, submit_line(tiny_bench()));
  ASSERT_EQ(await_result(s, id).get_string("state"), "done");
  // Stream after completion: a full replay ending with the end marker.
  JsonObject req;
  req.set("op", "stream").set("job", id);
  ASSERT_TRUE(s.write_line(req.str()));
  int events = 0;
  bool saw_result_event = false;
  for (;;) {
    std::string line;
    ASSERT_EQ(s.read_line(line, 10000), UnixStream::ReadStatus::kLine);
    const ParseOutcome p = parse_object(line);
    ASSERT_TRUE(p.ok) << line;
    if (p.request.get_string("event") == "end") {
      EXPECT_EQ(p.request.get_string("state"), "done");
      break;
    }
    ++events;
    if (p.request.get_string("event") == "result") saw_result_event = true;
    ASSERT_LT(events, 1000);
  }
  EXPECT_GT(events, 0);
  EXPECT_TRUE(saw_result_event);
  // The connection still serves ordinary requests after a stream.
  EXPECT_EQ(rpc(s, R"({"op":"ping"})").get_string("event"), "pong");
}

TEST(ServeServer, DrainFinishesInflightAndCancelsQueued) {
  TestServer ts(/*workers=*/1);
  UnixStream s = ts.connect();
  const std::string running =
      submit_ok(s, submit_line(tiny_bench(), /*test_delay_ms=*/60000));
  const Deadline patience = Deadline::after(30.0);
  while (job_state(s, running) != "running") {
    ASSERT_FALSE(patience.expired());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::string queued =
      submit_ok(s, submit_line(tiny_bench(), 0, 0, false));
  s.close();

  ts.drain();  // SIGTERM path: run() returns only after a full drain

  bool saw_running = false, saw_queued = false;
  for (const Server::JobSnapshot& j : ts.server->jobs()) {
    if (j.id == running) {
      saw_running = true;
      // The in-flight job was not dropped: its pipeline ran under a
      // cancelled deadline and degraded to a legal identity result.
      EXPECT_EQ(j.state, JobState::kDone);
      EXPECT_TRUE(j.degraded);
    }
    if (j.id == queued) {
      saw_queued = true;
      EXPECT_EQ(j.state, JobState::kCancelled);
    }
  }
  EXPECT_TRUE(saw_running);
  EXPECT_TRUE(saw_queued);
  // A fresh connection is refused after drain (socket unlinked).
  EXPECT_THROW(ts.connect(), Error);
}

TEST(ServeServer, ShutdownOpDrainsAndSubmissionsAreRefused) {
  TestServer ts;
  UnixStream s = ts.connect();
  const std::string id = submit_ok(s, submit_line(tiny_bench()));
  ASSERT_EQ(await_result(s, id).get_string("state"), "done");
  EXPECT_EQ(rpc(s, R"({"op":"shutdown"})").get_bool("ok"), true);
  ts.thread.join();  // run() returns on its own — no stop token needed
  const ServerStats stats = ts.server->stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.failed, 0);
}

}  // namespace
}  // namespace serelin
