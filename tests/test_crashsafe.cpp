// Crash-safety contract tests (docs/ROBUSTNESS.md §11): journal framing
// and torn-tail recovery against the committed corpus, checkpoint
// encode/decode bit-exactness and loud rejection of damage, the
// CheckpointSink's deterministic rate limit, every engine's
// progress-snapshot round trip, resume-equals-fresh on real solves, and
// the pipeline fingerprint's sensitivity boundary.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/closure_solver.hpp"
#include "core/initializer.hpp"
#include "core/min_period.hpp"
#include "core/regular_forest.hpp"
#include "core/solver.hpp"
#include "flow/pipeline.hpp"
#include "flow/resume_check.hpp"
#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/cell_library.hpp"
#include "support/atomic_io.hpp"
#include "support/check.hpp"
#include "support/checkpoint.hpp"

namespace serelin {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("serelin-crashsafe-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  static int counter_;
  fs::path dir_;
};
int TempDir::counter_ = 0;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// The medium random instance the engine resume tests solve: big enough
// for several commits / bisection steps, small enough for the fast label.
Netlist resume_circuit(std::uint64_t seed) {
  RandomCircuitSpec spec;
  spec.gates = 120;
  spec.dffs = 30;
  spec.inputs = 6;
  spec.outputs = 6;
  spec.mean_fanin = 2.0;
  spec.seed = seed;
  return generate_random_circuit(spec);
}

}  // namespace

// ---------------------------------------------------------------------------
// Journal framing

TEST(CrashSafeJournal, Crc32MatchesTheZlibVectors) {
  // IEEE 802.3 check values — the framing promises standard tooling can
  // cross-check a journal, so pin the polynomial, not just self-agreement.
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
}

TEST(CrashSafeJournal, FrameLayoutIsLengthCrcPayloadNewline) {
  const std::string payload = "{\"k\":1}";
  const std::string frame = frame_journal_record(payload);
  ASSERT_EQ(frame.size(), 18 + payload.size() + 1);
  char head[20];
  std::snprintf(head, sizeof head, "%08zx %08x ", payload.size(),
                crc32(payload));
  EXPECT_EQ(frame.substr(0, 18), head);
  EXPECT_EQ(frame.substr(18, payload.size()), payload);
  EXPECT_EQ(frame.back(), '\n');
}

TEST(CrashSafeJournal, WriterRoundTripsAndAppendContinues) {
  TempDir tmp;
  const std::string path = tmp.path("j.jsonl");
  {
    JournalWriter w(path, JournalWriter::Mode::kTruncate);
    w.append("{\"i\":0}");
    w.append("{\"i\":1}");
    EXPECT_TRUE(w.healthy());
  }
  JournalRecovery rec = read_journal(path);
  EXPECT_FALSE(rec.torn);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[1], "{\"i\":1}");
  EXPECT_EQ(rec.valid_bytes, fs::file_size(path));
  {
    JournalWriter w(path, JournalWriter::Mode::kAppend);
    w.append("{\"i\":2}");
  }
  rec = read_journal(path);
  EXPECT_FALSE(rec.torn);
  ASSERT_EQ(rec.records.size(), 3u);
  EXPECT_EQ(rec.records[2], "{\"i\":2}");
}

TEST(CrashSafeJournal, MissingJournalReadsEmptyNotTorn) {
  TempDir tmp;
  const JournalRecovery rec = read_journal(tmp.path("absent.jsonl"));
  EXPECT_TRUE(rec.records.empty());
  EXPECT_FALSE(rec.torn);
  EXPECT_EQ(rec.valid_bytes, 0u);
}

// Every committed corpus entry recovers at an exactly predicted byte: the
// corpus is generated from frame_journal_record over these payloads
// (tests/corpus/journals/), so the expected recovery point is derivable,
// not a magic number.
TEST(CrashSafeJournal, TornCorpusRecoversAtExactPoints) {
  const std::string p1 = "{\"event\":\"a\",\"i\":1}";
  const std::string p2 = "{\"event\":\"b\",\"i\":2}";
  const std::string p3 = "{\"event\":\"c\",\"i\":3}";
  const std::uint64_t f = frame_journal_record(p1).size();  // all equal
  ASSERT_EQ(frame_journal_record(p2).size(), f);
  struct Case {
    const char* file;
    std::vector<std::string> records;
    bool torn;
    std::uint64_t valid_bytes;
  };
  const Case cases[] = {
      {"clean.journal", {p1, p2, p3}, false, 3 * f},
      {"torn-half-frame.journal", {p1, p2}, true, 2 * f},
      {"torn-header.journal", {p1}, true, f},
      {"bad-crc.journal", {p1}, true, f},  // damage hides the frames behind it
      {"missing-newline.journal", {p1}, true, f},
      {"empty.journal", {}, false, 0},
      {"garbage.journal", {}, true, 0},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.file);
    const std::string committed =
        std::string(SERELIN_CORPUS_DIR) + "/journals/" + c.file;
    TempDir tmp;
    const std::string path = tmp.path(c.file);
    atomic_write_file(path, slurp(committed));

    JournalRecovery rec = read_journal(path);
    EXPECT_EQ(rec.records, c.records);
    EXPECT_EQ(rec.torn, c.torn) << rec.detail;
    EXPECT_EQ(rec.valid_bytes, c.valid_bytes);

    rec = recover_journal(path);
    EXPECT_EQ(rec.records, c.records);
    EXPECT_EQ(fs::file_size(path), c.valid_bytes);
    rec = read_journal(path);
    EXPECT_FALSE(rec.torn) << rec.detail;
    EXPECT_EQ(rec.records, c.records);

    // The resume path: a kAppend writer continues after the recovery
    // point and the journal stays intact.
    {
      JournalWriter w(path, JournalWriter::Mode::kAppend);
      w.append("{\"event\":\"resumed\"}");
    }
    rec = read_journal(path);
    EXPECT_FALSE(rec.torn) << rec.detail;
    ASSERT_EQ(rec.records.size(), c.records.size() + 1);
    EXPECT_EQ(rec.records.back(), "{\"event\":\"resumed\"}");
  }
}

// ---------------------------------------------------------------------------
// Checkpoint files

namespace {

CheckpointImage sample_image() {
  CheckpointImage image;
  image.kind = "pipeline";
  image.fingerprint = 0x0123456789abcdefULL;
  image.sections.emplace_back("pipeline", std::string("\x01\x00\x02", 3));
  image.sections.emplace_back("solver",
                              std::string("opaque\0blob \xff bytes", 19));
  return image;
}

}  // namespace

TEST(CrashSafeCheckpoint, EncodeDecodeRoundTripIsBitExact) {
  const CheckpointImage image = sample_image();
  const std::string bytes = encode_checkpoint(image);
  const CheckpointImage back = decode_checkpoint(bytes);
  EXPECT_EQ(back.version, image.version);
  EXPECT_EQ(back.kind, image.kind);
  EXPECT_EQ(back.fingerprint, image.fingerprint);
  EXPECT_EQ(back.sections, image.sections);
  // Bit-stable: re-encoding the decoded image reproduces the exact bytes.
  EXPECT_EQ(encode_checkpoint(back), bytes);
  ASSERT_NE(back.find("solver"), nullptr);
  EXPECT_EQ(*back.find("solver"), image.sections[1].second);
  EXPECT_EQ(back.find("no-such-section"), nullptr);
}

TEST(CrashSafeCheckpoint, EverySingleByteFlipIsRejected) {
  const std::string bytes = encode_checkpoint(sample_image());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x40);
    EXPECT_THROW(decode_checkpoint(damaged), ParseError)
        << "flip at byte " << i << " was accepted";
  }
  for (std::size_t n = 0; n < bytes.size(); ++n)
    EXPECT_THROW(decode_checkpoint(std::string_view(bytes).substr(0, n)),
                 ParseError)
        << "truncation to " << n << " bytes was accepted";
}

TEST(CrashSafeCheckpoint, SaveLoadAndMissingFile) {
  TempDir tmp;
  const std::string path = tmp.path("ck.bin");
  CheckpointImage loaded;
  EXPECT_FALSE(load_checkpoint(path, loaded));  // missing: fresh run
  save_checkpoint(path, sample_image());
  ASSERT_TRUE(load_checkpoint(path, loaded));
  EXPECT_EQ(loaded.sections, sample_image().sections);
  // No stray temp from the atomic replace.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  atomic_write_file(path, "damaged beyond the magic");
  EXPECT_THROW(load_checkpoint(path, loaded), ParseError);
}

TEST(CrashSafeCheckpoint, SinkRateLimitIsDeterministic) {
  TempDir tmp;
  CheckpointSink sink(tmp.path("ck.bin"), "test", 7, /*every=*/3);
  int fills = 0;
  const auto fill = [&fills](CheckpointImage& image) {
    image.sections.emplace_back("n", std::to_string(fills));
    ++fills;
  };
  for (int i = 0; i < 7; ++i) sink.offer(fill);
  EXPECT_EQ(fills, 3);  // offers #1, #4, #7: the first, then every 3rd
  sink.force(fill);
  EXPECT_EQ(fills, 4);  // force is unconditional
  EXPECT_TRUE(sink.healthy());
  CheckpointImage image;
  ASSERT_TRUE(load_checkpoint(tmp.path("ck.bin"), image));
  EXPECT_EQ(image.kind, "test");
  EXPECT_EQ(image.fingerprint, 7u);
  ASSERT_NE(image.find("n"), nullptr);
  EXPECT_EQ(*image.find("n"), "3");  // the forced (last) snapshot
}

TEST(CrashSafeCheckpoint, WithSectionPrependsContextAndSharesTheCounter) {
  TempDir tmp;
  CheckpointSink base(tmp.path("ck.bin"), "test", 1, /*every=*/2);
  CheckpointSink staged = base.with_section("pipeline", "stage-blob");
  int fills = 0;
  const auto fill = [&fills](CheckpointImage&) { ++fills; };
  staged.offer(fill);  // offer #1 -> writes
  base.offer(fill);    // offer #2 on the SAME counter -> skipped
  staged.offer(fill);  // offer #3 -> writes
  EXPECT_EQ(fills, 2);
  CheckpointImage image;
  ASSERT_TRUE(load_checkpoint(tmp.path("ck.bin"), image));
  ASSERT_FALSE(image.sections.empty());
  EXPECT_EQ(image.sections.front().first, "pipeline");
  EXPECT_EQ(image.sections.front().second, "stage-blob");
}

TEST(CrashSafeCheckpoint, SinkDegradesToUnhealthyInsteadOfThrowing) {
  TempDir tmp;
  CheckpointSink sink(tmp.path("no-such-dir") + "/ck.bin", "test", 1, 1);
  EXPECT_TRUE(sink.healthy());
  EXPECT_NO_THROW(sink.force([](CheckpointImage&) {}));
  EXPECT_FALSE(sink.healthy());
  EXPECT_NO_THROW(sink.offer([](CheckpointImage&) {}));
}

TEST(CrashSafeCheckpoint, DisarmedCrashPointsOnlyCount) {
  // Tests must never arm the countdown (it SIGKILLs the process); the
  // counting side is the harness's calibration contract.
  TempDir tmp;
  crash_arm(0);
  const std::int64_t before = crash_points_passed();
  atomic_write_file(tmp.path("a.txt"), "x");
  {
    JournalWriter w(tmp.path("j.jsonl"), JournalWriter::Mode::kTruncate);
    w.append("{}");
  }
  EXPECT_GT(crash_points_passed(), before);
  crash_arm(0);  // disarm resets the calibration counter
  EXPECT_EQ(crash_points_passed(), 0);
}

// ---------------------------------------------------------------------------
// Engine progress snapshots

TEST(CrashSafeProgress, SolverProgressRoundTripsBitExactly) {
  SolverProgress p;
  p.r = {0, -2, 3, 1};
  p.commits = 5;
  p.iterations = 123456789012345LL;
  p.objective_gain = -42;
  p.pass_commits = 2;
  p.avoid = {0, 1, 0, 1};
  p.forest.parent = {kNullVertex, 0, 0, kNullVertex};
  p.forest.children = {{1, 2}, {}, {}, {}};
  p.forest.u = {1, 0, 1, 0};
  p.forest.w = {1, 2, 1, 3};
  const std::string bytes = p.encode();
  const SolverProgress q = SolverProgress::decode(bytes);
  EXPECT_EQ(q.r, p.r);
  EXPECT_EQ(q.commits, p.commits);
  EXPECT_EQ(q.iterations, p.iterations);
  EXPECT_EQ(q.objective_gain, p.objective_gain);
  EXPECT_EQ(q.pass_commits, p.pass_commits);
  EXPECT_EQ(q.avoid, p.avoid);
  EXPECT_EQ(q.forest.parent, p.forest.parent);
  EXPECT_EQ(q.forest.children, p.forest.children);
  EXPECT_EQ(q.forest.u, p.forest.u);
  EXPECT_EQ(q.forest.w, p.forest.w);
  EXPECT_EQ(q.encode(), bytes);
  for (std::size_t n = 0; n < bytes.size(); ++n)
    EXPECT_THROW(SolverProgress::decode(std::string_view(bytes).substr(0, n)),
                 ParseError)
        << "truncation to " << n;
  EXPECT_THROW(SolverProgress::decode(bytes + "x"), ParseError);
}

TEST(CrashSafeProgress, ClosureProgressRoundTripsBitExactly) {
  ClosureProgress p;
  p.r = {-1, 0, 7};
  p.commits = 3;
  p.iterations = 99;
  p.objective_gain = 1234;
  const std::string bytes = p.encode();
  const ClosureProgress q = ClosureProgress::decode(bytes);
  EXPECT_EQ(q.r, p.r);
  EXPECT_EQ(q.commits, p.commits);
  EXPECT_EQ(q.iterations, p.iterations);
  EXPECT_EQ(q.objective_gain, p.objective_gain);
  EXPECT_EQ(q.encode(), bytes);
  EXPECT_THROW(ClosureProgress::decode(bytes + "x"), ParseError);
  EXPECT_THROW(
      ClosureProgress::decode(std::string_view(bytes).substr(0, 5)),
      ParseError);
}

TEST(CrashSafeProgress, PeriodProgressPreservesDoubleBitPatterns) {
  PeriodProgress p;
  p.lo = 0.1;  // not exactly representable: the classic round-trip trap
  p.hi = 1e-300;
  p.period = -0.0;  // sign of zero must survive
  p.r = {2, -3};
  const std::string bytes = p.encode();
  const PeriodProgress q = PeriodProgress::decode(bytes);
  EXPECT_EQ(std::memcmp(&q.lo, &p.lo, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&q.hi, &p.hi, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&q.period, &p.period, sizeof(double)), 0);
  EXPECT_EQ(q.r, p.r);
  EXPECT_EQ(q.encode(), bytes);
  EXPECT_THROW(PeriodProgress::decode(bytes + "x"), ParseError);
}

TEST(CrashSafeProgress, ForestStateRestoresBitExactly) {
  const std::vector<std::int64_t> gain = {5, -1, 3, 0, 2};
  const std::vector<char> movable = {1, 1, 1, 0, 1};
  RegularForest forest(gain, movable);
  const ForestState state = forest.state();
  RegularForest restored(gain, movable, state);
  const ForestState back = restored.state();
  EXPECT_EQ(back.parent, state.parent);
  EXPECT_EQ(back.children, state.children);
  EXPECT_EQ(back.u, state.u);
  EXPECT_EQ(back.w, state.w);
  // A structurally damaged snapshot is rejected, not resumed wrong.
  ForestState bad = state;
  bad.parent[0] = 1;  // cycle with 1's parent scan / orphan mismatch
  EXPECT_THROW(RegularForest(gain, movable, bad), Error);
}

// ---------------------------------------------------------------------------
// Resume == fresh, per engine

TEST(CrashSafeResume, MinObsWinFromFirstCommitSnapshotMatchesFresh) {
  const Netlist nl = resume_circuit(0x5eed0001ULL);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});
  SimConfig cfg;
  cfg.patterns = 256;
  cfg.frames = 5;
  const ObsGains gains = test::gains_for(g, nl, cfg);
  SolverOptions opt;
  opt.timing = init.timing;
  opt.rmin = init.rmin;
  const SolverResult fresh = MinObsWinSolver(g, gains, opt).solve(init.r);
  ASSERT_FALSE(fresh.exited_early);
  ASSERT_GT(fresh.commits, 0);

  // `every` is huge, so only the FIRST offer (the first commit) persists:
  // the checkpoint freezes the solve at its earliest interesting point and
  // resume() has real work left to do.
  TempDir tmp;
  SolverOptions ck = opt;
  ck.checkpoint =
      CheckpointSink(tmp.path("ck.bin"), "test", 1, /*every=*/1 << 30);
  (void)MinObsWinSolver(g, gains, ck).solve(init.r);
  CheckpointImage image;
  ASSERT_TRUE(load_checkpoint(tmp.path("ck.bin"), image));
  ASSERT_NE(image.find("solver"), nullptr);
  const SolverProgress progress = SolverProgress::decode(*image.find("solver"));
  EXPECT_EQ(progress.commits, 1);

  const SolverResult resumed = MinObsWinSolver(g, gains, opt).resume(progress);
  EXPECT_EQ(resumed.r, fresh.r);
  EXPECT_EQ(resumed.commits, fresh.commits);
  EXPECT_EQ(resumed.iterations, fresh.iterations);
  EXPECT_EQ(resumed.objective_gain, fresh.objective_gain);
  EXPECT_EQ(resumed.stop_reason, fresh.stop_reason);
}

TEST(CrashSafeResume, ClosureFromFirstCommitSnapshotMatchesFresh) {
  const Netlist nl = resume_circuit(0x5eed0002ULL);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});
  SimConfig cfg;
  cfg.patterns = 256;
  cfg.frames = 5;
  const ObsGains gains = test::gains_for(g, nl, cfg);
  SolverOptions opt;
  opt.timing = init.timing;
  opt.rmin = init.rmin;
  const SolverResult fresh = ClosureSolver(g, gains, opt).solve(init.r);
  ASSERT_FALSE(fresh.exited_early);
  ASSERT_GT(fresh.commits, 0);

  TempDir tmp;
  SolverOptions ck = opt;
  ck.checkpoint =
      CheckpointSink(tmp.path("ck.bin"), "test", 2, /*every=*/1 << 30);
  (void)ClosureSolver(g, gains, ck).solve(init.r);
  CheckpointImage image;
  ASSERT_TRUE(load_checkpoint(tmp.path("ck.bin"), image));
  ASSERT_NE(image.find("closure"), nullptr);
  const ClosureProgress progress =
      ClosureProgress::decode(*image.find("closure"));
  EXPECT_EQ(progress.commits, 1);

  const SolverResult resumed = ClosureSolver(g, gains, opt).resume(progress);
  EXPECT_EQ(resumed.r, fresh.r);
  EXPECT_EQ(resumed.commits, fresh.commits);
  EXPECT_EQ(resumed.iterations, fresh.iterations);
  EXPECT_EQ(resumed.objective_gain, fresh.objective_gain);
}

TEST(CrashSafeResume, MinPeriodFromFirstBisectionSnapshotMatchesFresh) {
  const Netlist nl = resume_circuit(0x5eed0003ULL);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  MinPeriodRetimer::Options opt;
  const MinPeriodRetimer::Result fresh = MinPeriodRetimer(g, opt).minimize();
  ASSERT_EQ(fresh.stop_reason, StopReason::kNone);

  TempDir tmp;
  MinPeriodRetimer::Options ck = opt;
  ck.checkpoint =
      CheckpointSink(tmp.path("ck.bin"), "test", 3, /*every=*/1 << 30);
  (void)MinPeriodRetimer(g, ck).minimize();
  CheckpointImage image;
  ASSERT_TRUE(load_checkpoint(tmp.path("ck.bin"), image));
  ASSERT_NE(image.find("minperiod"), nullptr);
  const PeriodProgress progress =
      PeriodProgress::decode(*image.find("minperiod"));

  const MinPeriodRetimer::Result resumed =
      MinPeriodRetimer(g, opt).resume(progress);
  EXPECT_EQ(std::memcmp(&resumed.period, &fresh.period, sizeof(double)), 0);
  EXPECT_EQ(resumed.r, fresh.r);
  EXPECT_EQ(resumed.stop_reason, fresh.stop_reason);
}

// ---------------------------------------------------------------------------
// Pipeline fingerprint and the cross-checker

TEST(CrashSafePipeline, FingerprintCoversResultsNotBudgets) {
  const Netlist nl = test::tiny_ring();
  PipelineOptions po;
  const std::uint64_t base = pipeline_fingerprint(nl, po);
  EXPECT_EQ(pipeline_fingerprint(nl, po), base);  // deterministic

  PipelineOptions changed = po;
  changed.sim.patterns *= 2;
  EXPECT_NE(pipeline_fingerprint(nl, changed), base);
  changed = po;
  changed.period = 123.0;
  EXPECT_NE(pipeline_fingerprint(nl, changed), base);
  changed = po;
  changed.start = PipelineStage::kMinObs;
  EXPECT_NE(pipeline_fingerprint(nl, changed), base);
  EXPECT_NE(pipeline_fingerprint(test::tiny_pipeline(), po), base);

  // Budgets change when snapshots happen, never what a completed run
  // computes — a resumed run may legally carry different budgets.
  changed = po;
  changed.stage_budget_s = 99.0;
  changed.retry_factor = 5.0;
  changed.checkpoint_every = 1;
  changed.journal_path = "elsewhere.jsonl";
  changed.checkpoint_path = "elsewhere.bin";
  EXPECT_EQ(pipeline_fingerprint(nl, changed), base);
}

TEST(CrashSafePipeline, ResumeMatchesFreshPinsEveryContractField) {
  PipelineResult fresh;
  fresh.ok = true;
  fresh.stage = PipelineStage::kMinObsWin;
  fresh.solver.r = {0, 1, -1};
  fresh.solver.objective_gain = 10;
  fresh.timing.period = 4.25;
  std::string detail;
  EXPECT_TRUE(resume_matches_fresh(fresh, fresh, &detail)) << detail;

  PipelineResult drift = fresh;
  drift.solver.r[2] = 0;
  EXPECT_FALSE(resume_matches_fresh(fresh, drift, &detail));
  EXPECT_NE(detail.find("vertex 2"), std::string::npos) << detail;

  drift = fresh;
  drift.stage = PipelineStage::kMinObs;
  EXPECT_FALSE(resume_matches_fresh(fresh, drift, &detail));

  drift = fresh;
  drift.solver.objective_gain = 11;
  EXPECT_FALSE(resume_matches_fresh(fresh, drift, &detail));

  drift = fresh;
  drift.timing.period = std::nextafter(4.25, 5.0);  // one ulp: still caught
  EXPECT_FALSE(resume_matches_fresh(fresh, drift, &detail));

  // Wall-clock artifacts are excluded: attempts differ legitimately.
  drift = fresh;
  drift.attempts.emplace_back();
  drift.journal_path = "other.jsonl";
  EXPECT_TRUE(resume_matches_fresh(fresh, drift, &detail)) << detail;
}

TEST(CrashSafePipeline, InProcessResumeReachesTheIdenticalResult) {
  const Netlist nl = resume_circuit(0x5eed0004ULL);
  CellLibrary lib;
  TempDir tmp;
  PipelineOptions po;
  po.sim.patterns = 128;
  po.sim.frames = 4;
  po.sim.warmup = 8;
  po.journal_path = tmp.path("journal.jsonl");
  po.checkpoint_path = tmp.path("ck.bin");
  po.checkpoint_every = 1;
  const PipelineResult fresh = run_pipeline(nl, lib, po);
  ASSERT_TRUE(fresh.ok);
  ASSERT_TRUE(fs::exists(po.checkpoint_path));

  // Resume against the completed run's last checkpoint: the resumed run
  // re-enters the final stage/attempt and must land on the same result.
  PipelineOptions rp = po;
  rp.resume_path = po.checkpoint_path;
  const PipelineResult resumed = run_pipeline(nl, lib, rp);
  std::string detail;
  EXPECT_TRUE(resume_matches_fresh(fresh, resumed, &detail)) << detail;

  const JournalRecovery rec = read_journal(po.journal_path);
  EXPECT_FALSE(rec.torn) << rec.detail;
  bool saw_resume = false;
  for (const std::string& line : rec.records)
    if (line.find("\"event\":\"resume\"") != std::string::npos)
      saw_resume = true;
  EXPECT_TRUE(saw_resume);

  // A checkpoint from a different circuit is refused, never replayed.
  const Netlist other = resume_circuit(0x5eed0005ULL);
  EXPECT_THROW(run_pipeline(other, lib, rp), Error);
}

}  // namespace serelin
