#include <gtest/gtest.h>

#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "ser/ser_analyzer.hpp"

namespace serelin {
namespace {

SerOptions options(double period, bool timing_masking = true) {
  SerOptions opt;
  opt.timing = {period, 0.0, 2.0};
  opt.sim.patterns = 512;
  opt.sim.frames = 5;
  opt.sim.warmup = 10;
  opt.timing_masking = timing_masking;
  return opt;
}

TEST(SerAnalyzer, PipelineHandComputation) {
  // tiny_pipeline at Φ = 10: every node fully observable; windows are the
  // 2-unit base everywhere (single paths), so each contributor adds
  // err(type) * 2/10.
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  const SerReport rep = analyze_ser(nl, lib, options(10.0));
  const double w = 2.0 / 10.0;
  const double expect_comb =
      (2 * lib.err(CellType::kBuf) + lib.err(CellType::kNot)) * w;
  const double expect_seq = lib.err(CellType::kDff) * w;
  EXPECT_NEAR(rep.combinational, expect_comb, 1e-12);
  EXPECT_NEAR(rep.sequential, expect_seq, 1e-12);
  EXPECT_NEAR(rep.total, expect_comb + expect_seq, 1e-12);
}

TEST(SerAnalyzer, TimingMaskingReducesSer) {
  const Netlist nl = test::tiny_reconvergent();
  CellLibrary lib;
  const SerReport with = analyze_ser(nl, lib, options(20.0, true));
  const SerReport without = analyze_ser(nl, lib, options(20.0, false));
  EXPECT_LT(with.total, without.total);
  EXPECT_GT(with.total, 0.0);
}

TEST(SerAnalyzer, LongerPeriodShrinksWindowShare) {
  // |ELW|/Φ falls as Φ grows (same windows, longer cycle).
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  const SerReport fast = analyze_ser(nl, lib, options(5.0));
  const SerReport slow = analyze_ser(nl, lib, options(50.0));
  EXPECT_GT(fast.total, slow.total);
}

TEST(SerAnalyzer, ContributionsSumToTotal) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  const SerReport rep = analyze_ser(nl, lib, options(10.0));
  double sum = 0.0;
  for (double c : rep.contribution) sum += c;
  EXPECT_NEAR(sum, rep.total, 1e-15);
}

TEST(SerAnalyzer, MaskedLogicContributesLess) {
  // Two identical buffers, one behind an AND mask: the masked one must
  // contribute less SER.
  NetlistBuilder nb("mask");
  nb.input("x");
  nb.input("m");
  nb.gate("open", CellType::kBuf, {"x"});
  nb.gate("gated", CellType::kBuf, {"x"});
  nb.gate("sq", CellType::kAnd, {"gated", "m"});
  nb.output("open");
  nb.output("sq");
  const Netlist nl = nb.build();
  CellLibrary lib;
  const SerReport rep = analyze_ser(nl, lib, options(10.0));
  EXPECT_LT(rep.contribution[nl.find("gated")],
            rep.contribution[nl.find("open")]);
}

TEST(SerAnalyzer, RequiresPositivePeriod) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  SerOptions bad = options(0.0);
  EXPECT_THROW(analyze_ser(nl, lib, bad), PreconditionError);
}

TEST(SerAnalyzer, DeterministicAcrossRuns) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  const SerReport a = analyze_ser(nl, lib, options(10.0));
  const SerReport b = analyze_ser(nl, lib, options(10.0));
  EXPECT_DOUBLE_EQ(a.total, b.total);
}

TEST(SerAnalyzer, ExactModeAgreesOnSmallCircuits) {
  const Netlist nl = test::tiny_reconvergent();
  CellLibrary lib;
  SerOptions sig = options(10.0);
  SerOptions exa = options(10.0);
  exa.obs_mode = ObservabilityAnalyzer::Mode::kExact;
  const double a = analyze_ser(nl, lib, sig).total;
  const double b = analyze_ser(nl, lib, exa).total;
  // First-order ODC on this reconvergent block is close but not exact.
  EXPECT_NEAR(a, b, 0.15 * b);
}

}  // namespace
}  // namespace serelin
