#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "timing/elw.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {
namespace {

TEST(Elw, PipelineWindows) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  const TimingParams tp{10.0, 0.0, 2.0};
  const ElwResult elw = compute_elw(nl, lib, tp);
  // c drives the PO: base window [10, 12].
  EXPECT_EQ(elw.elw[nl.find("c")], IntervalSet(10.0, 12.0));
  // b drives the register: base window.
  EXPECT_EQ(elw.elw[nl.find("b")], IntervalSet(10.0, 12.0));
  // a's glitches pass through b (delay 1): [9, 11].
  EXPECT_EQ(elw.elw[nl.find("a")], IntervalSet(9.0, 11.0));
  // x through a and b: [8, 10].
  EXPECT_EQ(elw.elw[nl.find("x")], IntervalSet(8.0, 10.0));
  // The register's stored-bit upsets re-latch through c: [9, 11].
  EXPECT_EQ(elw.elw[nl.find("ff")], IntervalSet(9.0, 11.0));
}

TEST(Elw, MixedFanoutUnions) {
  // b drives a register directly AND a 2-gate path to another register:
  // ELW(b) = [Φ,Φ+2] ∪ [Φ-2,Φ] = [Φ-2, Φ+2].
  NetlistBuilder nb("mixed");
  nb.input("x");
  nb.gate("b", CellType::kBuf, {"x"});
  nb.dff("d0", "b");
  nb.gate("p1", CellType::kBuf, {"b"});
  nb.gate("p2", CellType::kBuf, {"p1"});
  nb.dff("d1", "p2");
  nb.gate("o", CellType::kAnd, {"d0", "d1"});
  nb.output("o");
  const Netlist nl = nb.build();
  CellLibrary lib;
  const ElwResult elw = compute_elw(nl, lib, {10.0, 0.0, 2.0});
  EXPECT_EQ(elw.elw[nl.find("b")], IntervalSet(8.0, 12.0));
  EXPECT_DOUBLE_EQ(elw.elw[nl.find("b")].measure(), 4.0);
}

TEST(Elw, DisjointWindows) {
  // A long and a short path whose shifted windows do not touch: the ELW
  // has two intervals (the paper's multi-interval remark under Eq. 2).
  NetlistBuilder nb("disjoint");
  nb.input("x");
  nb.gate("b", CellType::kBuf, {"x"});
  nb.dff("d0", "b");
  std::string prev = "b";
  for (int i = 0; i < 5; ++i) {
    nb.gate("q" + std::to_string(i), CellType::kBuf, {prev});
    prev = "q" + std::to_string(i);
  }
  nb.dff("d1", prev);
  nb.gate("o", CellType::kAnd, {"d0", "d1"});
  nb.output("o");
  const Netlist nl = nb.build();
  CellLibrary lib;
  const ElwResult elw = compute_elw(nl, lib, {20.0, 0.0, 2.0});
  const IntervalSet& w = elw.elw[nl.find("b")];
  // Direct: [20,22]; through 5 buffers: [15,17].
  EXPECT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w.measure(), 4.0);
  EXPECT_DOUBLE_EQ(w.left(), 15.0);
  EXPECT_DOUBLE_EQ(w.right(), 22.0);
}

TEST(Elw, DanglingConeIsEmpty) {
  NetlistBuilder nb("dangle");
  nb.input("x");
  nb.gate("used", CellType::kBuf, {"x"});
  nb.gate("dead", CellType::kNot, {"x"});  // no path to any PO/register
  nb.output("used");
  const Netlist nl = nb.build();
  CellLibrary lib;
  const ElwResult elw = compute_elw(nl, lib, {10.0, 0.0, 2.0});
  EXPECT_TRUE(elw.elw[nl.find("dead")].empty());
  EXPECT_FALSE(elw.elw[nl.find("used")].empty());
}

TEST(Elw, MeasureCapsAtPeriod) {
  ElwResult r;
  r.elw.assign(1, IntervalSet(0.0, 50.0));
  EXPECT_DOUBLE_EQ(r.measure(0, 10.0), 10.0);
}

// Theorem 1 of the paper: the graph labels L(v), R(v) equal the leftmost /
// rightmost boundaries of the exact interval ELW — checked on random
// circuits across seeds.
class Theorem1 : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1, BoundariesMatchIntervalElw) {
  RandomCircuitSpec spec;
  spec.gates = 120;
  spec.dffs = 25;
  spec.inputs = 6;
  spec.outputs = 6;
  spec.mean_fanin = 1.9;
  spec.seed = static_cast<std::uint64_t>(GetParam());
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const TimingParams tp{50.0, 0.0, 2.0};
  const ElwResult elw = compute_elw(nl, lib, tp);
  GraphTiming t(g, tp);
  t.compute(g.zero_retiming());
  int checked = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == CellType::kDff) continue;  // collapsed into edges
    const VertexId v = g.vertex_of(id);
    if (v == kNullVertex || elw.elw[id].empty()) continue;
    EXPECT_NEAR(elw.elw[id].left(), t.L(v), 1e-9) << n.name;
    EXPECT_NEAR(elw.elw[id].right(), t.R(v), 1e-9) << n.name;
    // And R(v) - L(v) bounds the measure (Theorem 1 property 1 corollary).
    EXPECT_LE(elw.elw[id].measure(), t.R(v) - t.L(v) + 1e-9) << n.name;
    EXPECT_GT(t.R(v), t.L(v)) << n.name;
    ++checked;
  }
  EXPECT_GT(checked, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1, ::testing::Range(1, 9));

}  // namespace
}  // namespace serelin
