#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "sim/observability.hpp"

namespace serelin {
namespace {

SimConfig small_cfg(int frames = 4) {
  SimConfig cfg;
  cfg.patterns = 256;
  cfg.frames = frames;
  cfg.warmup = 8;
  return cfg;
}

TEST(Observability, FullyObservableChain) {
  // Every node of a buffer/inverter pipeline is fully observable: a flip
  // anywhere always reaches the PO (within the frame horizon).
  const Netlist nl = test::tiny_pipeline();
  ObservabilityAnalyzer an(nl, small_cfg());
  const auto r = an.run(ObservabilityAnalyzer::Mode::kSignature);
  for (NodeId id = 0; id < nl.node_count(); ++id)
    EXPECT_DOUBLE_EQ(r.obs[id], 1.0) << nl.node(id).name;
}

TEST(Observability, PrimaryOutputDriverIsFullyObservable) {
  const Netlist nl = test::tiny_reconvergent();
  ObservabilityAnalyzer an(nl, small_cfg());
  const auto r = an.run();
  EXPECT_DOUBLE_EQ(r.obs[nl.find("out")], 1.0);
  EXPECT_DOUBLE_EQ(r.obs[nl.find("g3")], 1.0);  // feeds the register, seen
}

TEST(Observability, AndGateMasksSideInput) {
  // z = AND(x, y): a flip on x is visible only when y = 1 (about half the
  // random patterns).
  NetlistBuilder nb("mask");
  nb.input("x");
  nb.input("y");
  nb.gate("z", CellType::kAnd, {"x", "y"});
  nb.output("z");
  const Netlist nl = nb.build();
  SimConfig cfg = small_cfg(1);
  cfg.patterns = 4096;
  ObservabilityAnalyzer an(nl, cfg);
  const auto r = an.run();
  EXPECT_NEAR(r.obs[nl.find("x")], 0.5, 0.05);
  EXPECT_DOUBLE_EQ(r.obs[nl.find("z")], 1.0);
}

TEST(Observability, XorNeverMasks) {
  NetlistBuilder nb("xor");
  nb.input("x");
  nb.input("y");
  nb.gate("z", CellType::kXor, {"x", "y"});
  nb.output("z");
  const Netlist nl = nb.build();
  ObservabilityAnalyzer an(nl, small_cfg(1));
  const auto r = an.run();
  EXPECT_DOUBLE_EQ(r.obs[nl.find("x")], 1.0);
  EXPECT_DOUBLE_EQ(r.obs[nl.find("y")], 1.0);
}

TEST(Observability, DeadConeHasZeroObservability) {
  NetlistBuilder nb("dead");
  nb.input("x");
  nb.gate("live", CellType::kBuf, {"x"});
  nb.gate("dead", CellType::kNot, {"x"});
  nb.output("live");
  const Netlist nl = nb.build();
  ObservabilityAnalyzer an(nl, small_cfg());
  const auto r = an.run();
  EXPECT_DOUBLE_EQ(r.obs[nl.find("dead")], 0.0);
}

TEST(Observability, SignatureMatchesExactOnTrees) {
  // On fanout-free circuits the backward ODC propagation is exact.
  NetlistBuilder nb("tree");
  nb.input("a");
  nb.input("b");
  nb.input("c");
  nb.input("d");
  nb.gate("g1", CellType::kAnd, {"a", "b"});
  nb.gate("g2", CellType::kOr, {"c", "d"});
  nb.gate("g3", CellType::kNand, {"g1", "g2"});
  nb.output("g3");
  const Netlist nl = nb.build();
  ObservabilityAnalyzer an(nl, small_cfg(1));
  const auto approx = an.run(ObservabilityAnalyzer::Mode::kSignature);
  ObservabilityAnalyzer an2(nl, small_cfg(1));
  const auto exact = an2.run(ObservabilityAnalyzer::Mode::kExact);
  for (NodeId id = 0; id < nl.node_count(); ++id)
    EXPECT_DOUBLE_EQ(approx.obs[id], exact.obs[id]) << nl.node(id).name;
}

TEST(Observability, SignatureMatchesExactOnSequentialChain) {
  const Netlist nl = test::tiny_pipeline();
  ObservabilityAnalyzer an(nl, small_cfg(3));
  const auto approx = an.run(ObservabilityAnalyzer::Mode::kSignature);
  ObservabilityAnalyzer an2(nl, small_cfg(3));
  const auto exact = an2.run(ObservabilityAnalyzer::Mode::kExact);
  for (NodeId id = 0; id < nl.node_count(); ++id)
    EXPECT_DOUBLE_EQ(approx.obs[id], exact.obs[id]) << nl.node(id).name;
}

TEST(Observability, FrameHorizonConvergesDownward) {
  // Lossy self-loop: ff' = AND(ff, en2), tap = AND(ff, en) -> PO. A flip
  // of ff at frame 0 is seen with probability .5 per frame and survives
  // with probability .5 per frame. With n frames the expanded-circuit
  // observables are the POs of all frames plus the final register plane,
  // so obs(ff, n) = .5 + .25·obs(ff, n-1): 0.75, 0.6875, ... -> 2/3.
  // The time-frame expansion converges monotonically from above — the
  // "steady operational state" the paper reaches at n = 15.
  NetlistBuilder nb("lossy_ring");
  nb.input("en");
  nb.input("en2");
  nb.dff("ff", "a");
  nb.gate("a", CellType::kAnd, {"ff", "en2"});
  nb.gate("tap", CellType::kAnd, {"ff", "en"});
  nb.output("tap");
  const Netlist nl = nb.build();
  SimConfig one = small_cfg(1);
  SimConfig many = small_cfg(10);
  one.patterns = many.patterns = 4096;
  const auto obs1 = ObservabilityAnalyzer(nl, one).run();
  const auto obs10 = ObservabilityAnalyzer(nl, many).run();
  const NodeId ff = nl.find("ff");
  EXPECT_NEAR(obs1.obs[ff], 0.75, 0.03);
  EXPECT_NEAR(obs10.obs[ff], 2.0 / 3.0, 0.03);
  EXPECT_GT(obs1.obs[ff], obs10.obs[ff] + 0.02);
}

TEST(Observability, DeterministicForConfig) {
  const Netlist nl = test::tiny_reconvergent();
  const auto a = ObservabilityAnalyzer(nl, small_cfg()).run();
  const auto b = ObservabilityAnalyzer(nl, small_cfg()).run();
  EXPECT_EQ(a.obs, b.obs);
}

// Signature vs exact on random reconvergent circuits: the approximation
// must stay within a loose envelope of the exact value (it is a
// first-order method) and be exact for a large share of nodes.
class SigVsExact : public ::testing::TestWithParam<int> {};

TEST_P(SigVsExact, CloseToExact) {
  RandomCircuitSpec spec;
  spec.gates = 40;
  spec.dffs = 8;
  spec.inputs = 5;
  spec.outputs = 4;
  spec.mean_fanin = 2.0;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 7919;
  const Netlist nl = generate_random_circuit(spec);
  SimConfig cfg = small_cfg(3);
  cfg.patterns = 1024;
  const auto approx = ObservabilityAnalyzer(nl, cfg).run(
      ObservabilityAnalyzer::Mode::kSignature);
  const auto exact = ObservabilityAnalyzer(nl, cfg).run(
      ObservabilityAnalyzer::Mode::kExact);
  int close = 0, total = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    ++total;
    if (std::abs(approx.obs[id] - exact.obs[id]) < 0.15) ++close;
  }
  // The vast majority of nodes must be well-approximated.
  EXPECT_GE(close * 10, total * 8)
      << close << " of " << total << " nodes within 0.15";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SigVsExact, ::testing::Range(1, 7));

}  // namespace
}  // namespace serelin
