#include <gtest/gtest.h>

#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "netlist/cell.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "support/check.hpp"

namespace serelin {
namespace {

TEST(Cell, NameRoundTrip) {
  for (int i = 0; i < kNumCellTypes; ++i) {
    const auto t = static_cast<CellType>(i);
    EXPECT_EQ(parse_cell_type(cell_type_name(t)), t);
  }
}

TEST(Cell, ParseIsCaseInsensitiveWithAliases) {
  EXPECT_EQ(parse_cell_type("nand"), CellType::kNand);
  EXPECT_EQ(parse_cell_type("Buf"), CellType::kBuf);
  EXPECT_EQ(parse_cell_type("BUFF"), CellType::kBuf);
  EXPECT_EQ(parse_cell_type("inv"), CellType::kNot);
  EXPECT_EQ(parse_cell_type("vdd"), CellType::kConst1);
  EXPECT_THROW(parse_cell_type("FROB"), ParseError);
}

TEST(Cell, Classification) {
  EXPECT_TRUE(is_combinational_source(CellType::kInput));
  EXPECT_TRUE(is_combinational_source(CellType::kDff));
  EXPECT_TRUE(is_combinational_source(CellType::kConst0));
  EXPECT_FALSE(is_combinational_source(CellType::kNand));
  EXPECT_TRUE(is_gate(CellType::kXor));
  EXPECT_FALSE(is_gate(CellType::kDff));
  EXPECT_FALSE(is_gate(CellType::kConst1));
}

struct EvalCase {
  CellType type;
  std::vector<std::uint64_t> in;
  std::uint64_t expect;
};

class CellEval : public ::testing::TestWithParam<EvalCase> {};

TEST_P(CellEval, TruthTable) {
  const auto& c = GetParam();
  EXPECT_EQ(eval_cell(c.type, c.in), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Gates, CellEval,
    ::testing::Values(
        EvalCase{CellType::kBuf, {0xF0F0}, 0xF0F0},
        EvalCase{CellType::kNot, {0x0F0F}, ~0x0F0FULL},
        EvalCase{CellType::kAnd, {0xFF00, 0xF0F0}, 0xF000},
        EvalCase{CellType::kNand, {0xFF00, 0xF0F0}, ~0xF000ULL},
        EvalCase{CellType::kOr, {0xFF00, 0xF0F0}, 0xFFF0},
        EvalCase{CellType::kNor, {0xFF00, 0xF0F0}, ~0xFFF0ULL},
        EvalCase{CellType::kXor, {0xFF00, 0xF0F0}, 0x0FF0},
        EvalCase{CellType::kXnor, {0xFF00, 0xF0F0}, ~0x0FF0ULL},
        EvalCase{CellType::kAnd, {0xF, 0x3, 0x5}, 0x1},
        EvalCase{CellType::kXor, {0x1, 0x1, 0x1}, 0x1},
        EvalCase{CellType::kConst0, {}, 0},
        EvalCase{CellType::kConst1, {}, ~0ULL},
        EvalCase{CellType::kDff, {0xAB}, 0xAB}));

TEST(CellLibrary, DefaultsArePositiveForLogic) {
  CellLibrary lib;
  EXPECT_GT(lib.delay(CellType::kNand), 0.0);
  EXPECT_GT(lib.err(CellType::kDff), 0.0);
  EXPECT_GT(lib.err(CellType::kXor), lib.err(CellType::kBuf));
  EXPECT_DOUBLE_EQ(lib.delay(CellType::kInput), 0.0);
  EXPECT_DOUBLE_EQ(lib.err(CellType::kInput), 0.0);
}

TEST(CellLibrary, SetParamsOverrides) {
  CellLibrary lib;
  lib.set_params(CellType::kNand, {7.0, 5e-6, 9.0});
  EXPECT_DOUBLE_EQ(lib.delay(CellType::kNand), 7.0);
  EXPECT_DOUBLE_EQ(lib.err(CellType::kNand), 5e-6);
  EXPECT_DOUBLE_EQ(lib.area(CellType::kNand), 9.0);
}

TEST(Netlist, TinyPipelineStructure) {
  const Netlist nl = test::tiny_pipeline();
  EXPECT_EQ(nl.node_count(), 5u);
  EXPECT_EQ(nl.gate_count(), 3u);
  EXPECT_EQ(nl.dff_count(), 1u);
  EXPECT_EQ(nl.inputs().size(), 1u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_TRUE(nl.is_output(nl.find("c")));
  EXPECT_FALSE(nl.is_output(nl.find("a")));
  EXPECT_EQ(nl.find("nope"), kNullNode);
}

TEST(Netlist, GateOrderIsTopological) {
  const Netlist nl = test::tiny_reconvergent();
  const auto& order = nl.gate_order();
  // g3 consumes g1 and g2, so it must come after both.
  auto pos = [&](const char* name) {
    const NodeId id = nl.find(name);
    for (std::size_t i = 0; i < order.size(); ++i)
      if (order[i] == id) return i;
    ADD_FAILURE() << name << " not in gate order";
    return std::size_t{0};
  };
  EXPECT_GT(pos("g3"), pos("g1"));
  EXPECT_GT(pos("g3"), pos("g2"));
}

TEST(Netlist, FanoutsAreDerived) {
  const Netlist nl = test::tiny_ring();
  const NodeId ff1 = nl.find("ff1");
  // ff1 feeds inv1 and tap.
  EXPECT_EQ(nl.node(ff1).fanouts.size(), 2u);
}

TEST(Netlist, RejectsCombinationalCycle) {
  NetlistBuilder b("cyc");
  b.input("x");
  b.gate("a", CellType::kAnd, {"x", "b"});
  b.gate("b", CellType::kBuf, {"a"});
  b.output("b");
  EXPECT_THROW(b.build(), ParseError);
}

TEST(Netlist, AcceptsCycleThroughDff) {
  NetlistBuilder b("seq");
  b.input("x");
  b.dff("s", "a");
  b.gate("a", CellType::kAnd, {"x", "s"});
  b.output("a");
  EXPECT_NO_THROW(b.build());
}

TEST(Netlist, RejectsDuplicateNames) {
  NetlistBuilder b("dup");
  b.input("x");
  b.gate("x", CellType::kBuf, {"x"});
  b.output("x");
  EXPECT_THROW(b.build(), ParseError);
}

TEST(Netlist, RejectsUndefinedSignal) {
  NetlistBuilder b("undef");
  b.input("x");
  b.gate("g", CellType::kAnd, {"x", "ghost"});
  b.output("g");
  EXPECT_THROW(b.build(), ParseError);
}

TEST(Netlist, RejectsBadArity) {
  Netlist nl("arity");
  const NodeId x = nl.add_node("x", CellType::kInput, {});
  nl.add_node("n", CellType::kNot, {x, x});  // NOT with 2 fanins
  EXPECT_THROW(nl.finalize(), ParseError);
}

TEST(Netlist, AddNodeValidation) {
  Netlist nl("v");
  EXPECT_THROW(nl.add_node("", CellType::kInput, {}), PreconditionError);
  nl.add_node("x", CellType::kInput, {});
  EXPECT_THROW(nl.add_node("x", CellType::kInput, {}), PreconditionError);
  EXPECT_THROW(nl.add_node("g", CellType::kBuf, {99}), PreconditionError);
}

TEST(Netlist, FinalizeOnlyOnce) {
  Netlist nl("f");
  const NodeId x = nl.add_node("x", CellType::kInput, {});
  nl.mark_output(x);
  nl.finalize();
  EXPECT_THROW(nl.finalize(), PreconditionError);
  EXPECT_THROW(nl.mark_output(x), PreconditionError);
}

TEST(Netlist, TotalArea) {
  CellLibrary lib;
  const Netlist nl = test::tiny_pipeline();
  // buf + not + buf + dff (+ input: area 0)
  const double expect = 2 * lib.area(CellType::kBuf) +
                        lib.area(CellType::kNot) + lib.area(CellType::kDff);
  EXPECT_DOUBLE_EQ(nl.total_area(lib), expect);
}

TEST(Builder, ConstantsAndMixedFanout) {
  NetlistBuilder b("mix");
  b.input("x");
  b.constant("one", true);
  b.constant("zero", false);
  b.gate("g", CellType::kAnd, {"x", "one"});
  b.gate("h", CellType::kOr, {"g", "zero"});
  b.dff("s", "h");
  b.gate("k", CellType::kXor, {"s", "g"});
  b.output("k");
  b.output("g");  // g is both internal and a PO
  const Netlist nl = b.build();
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_TRUE(nl.is_output(nl.find("g")));
  EXPECT_EQ(nl.gate_count(), 3u);
}

TEST(Builder, DeepChainNoStackOverflow) {
  NetlistBuilder b("deep");
  b.input("x");
  std::string prev = "x";
  for (int i = 0; i < 60000; ++i) {
    const std::string cur = "n" + std::to_string(i);
    b.gate(cur, CellType::kNot, {prev});
    prev = cur;
  }
  b.output(prev);
  const Netlist nl = b.build();
  EXPECT_EQ(nl.gate_count(), 60000u);
}

}  // namespace
}  // namespace serelin
