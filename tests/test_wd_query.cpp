// Tests of the on-demand W/D query engine (src/core/wd_query): the lazy
// engine must agree with the dense matrices on every point query, the
// pruned constraint emission must produce bit-identical retimings, and the
// lazy min-period path must be a sound upper bound on the exact optimum.
#include <gtest/gtest.h>

#include <limits>

#include "core/wd_matrices.hpp"
#include "core/wd_query.hpp"
#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/cell_library.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {
namespace {

WdQueryOptions lazy_options(std::size_t cache_rows = 64) {
  WdQueryOptions opt;
  opt.dense_threshold = 0;  // force the lazy engine regardless of size
  opt.cache_rows = cache_rows;
  return opt;
}

RandomCircuitSpec seeded_spec(int seed) {
  RandomCircuitSpec spec;
  spec.gates = 120;
  spec.dffs = 30;
  spec.inputs = 6;
  spec.outputs = 6;
  spec.mean_fanin = 1.9;
  spec.seed = static_cast<std::uint64_t>(seed) * 9176161ULL + 3;
  return spec;
}

TEST(WdQueryEngine, SelectionFollowsThreshold) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdQueryOptions dense;
  dense.dense_threshold = std::numeric_limits<std::size_t>::max();
  EXPECT_STREQ(make_wd_query(g, dense)->engine(), "dense");
  EXPECT_STREQ(make_wd_query(g, lazy_options())->engine(), "lazy");
  // Default: a tiny circuit sits below the threshold.
  EXPECT_STREQ(make_wd_query(g)->engine(), "dense");
}

TEST(WdQueryEngine, DenseEngineMatchesMatrices) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdMatrices wd(g);
  auto q = make_wd_query(g);
  ASSERT_STREQ(q->engine(), "dense");
  for (VertexId u = 0; u < g.vertex_count(); ++u)
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      EXPECT_EQ(q->w(u, v), wd.w(u, v));
      if (wd.w(u, v) != WdMatrices::kUnreachable) {
        EXPECT_EQ(q->d(u, v), wd.d(u, v));
      }
    }
  EXPECT_EQ(q->candidate_periods(), wd.candidate_periods());
  EXPECT_TRUE(q->exact_candidates());
}

class WdQuerySeeds : public ::testing::TestWithParam<int> {};

TEST_P(WdQuerySeeds, LazyPointQueriesMatchDense) {
  const Netlist nl = generate_random_circuit(seeded_spec(GetParam()));
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdMatrices wd(g);
  auto lazy = make_wd_query(g, lazy_options());
  ASSERT_STREQ(lazy->engine(), "lazy");
  for (VertexId u = 0; u < g.vertex_count(); ++u)
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      ASSERT_EQ(lazy->w(u, v), wd.w(u, v))
          << "W mismatch at (" << u << ", " << v << ")";
      if (wd.w(u, v) != WdMatrices::kUnreachable) {
        ASSERT_EQ(lazy->d(u, v), wd.d(u, v))
            << "D mismatch at (" << u << ", " << v << ")";
      }
    }
}

TEST_P(WdQuerySeeds, TinyRowCacheStillAnswersCorrectly) {
  // Two slots force constant eviction; answers must not depend on what is
  // resident. Column-major iteration maximizes thrash.
  const Netlist nl = generate_random_circuit(seeded_spec(GetParam()));
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdMatrices wd(g);
  auto lazy = make_wd_query(g, lazy_options(/*cache_rows=*/2));
  for (VertexId v = 0; v < g.vertex_count(); v += 7)
    for (VertexId u = 0; u < g.vertex_count(); u += 3)
      ASSERT_EQ(lazy->w(u, v), wd.w(u, v));
}

TEST_P(WdQuerySeeds, PrunedConstraintsGiveBitIdenticalRetimings) {
  // For every candidate period the pruned (lazy) constraint system must
  // have exactly the Bellman-Ford solution of the dense one — the
  // dominance invariant of docs/SPARSE_WD.md, checked end to end.
  const Netlist nl = generate_random_circuit(seeded_spec(GetParam()));
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdMatrices wd(g);
  auto dense = make_wd_query(g);
  auto lazy = make_wd_query(g, lazy_options(/*cache_rows=*/4));

  const auto cands = wd.candidate_periods();
  ASSERT_FALSE(cands.empty());
  // Probe a spread of candidates (every k-th) plus one infeasible period.
  const std::size_t stride = std::max<std::size_t>(1, cands.size() / 8);
  std::vector<double> probes;
  probes.push_back(cands.front() * 0.5);
  for (std::size_t i = 0; i < cands.size(); i += stride)
    probes.push_back(cands[i]);
  probes.push_back(cands.back());

  for (double phi : probes) {
    const auto legacy = wd_retime_for_period(g, wd, phi);
    const auto via_dense = wd_query_retime_for_period(g, *dense, phi);
    const auto via_lazy = wd_query_retime_for_period(g, *lazy, phi);
    ASSERT_EQ(legacy.has_value(), via_dense.has_value()) << "phi=" << phi;
    ASSERT_EQ(legacy.has_value(), via_lazy.has_value()) << "phi=" << phi;
    if (!legacy) continue;
    EXPECT_EQ(*legacy, *via_dense) << "phi=" << phi;
    EXPECT_EQ(*legacy, *via_lazy) << "phi=" << phi;
  }
}

TEST_P(WdQuerySeeds, LazyMinPeriodIsASoundUpperBound) {
  const Netlist nl = generate_random_circuit(seeded_spec(GetParam()));
  CellLibrary lib;
  RetimingGraph g(nl, lib);

  WdMatrices wd(g);
  const auto exact = wd_min_period(g, wd);

  auto lazy = make_wd_query(g, lazy_options());
  const auto approx = wd_query_min_period(g, *lazy);
  EXPECT_FALSE(approx.exact);
  EXPECT_FALSE(approx.partial());

  // Never below the true optimum, and the reported retiming really meets
  // the reported period.
  EXPECT_GE(approx.period, exact.period - 1e-6);
  ASSERT_TRUE(g.valid(approx.r));
  GraphTiming t(g, {approx.period, 0.0, 0.0});
  t.compute(approx.r);
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    EXPECT_LE(t.arrival(v), approx.period + 1e-6);
}

TEST_P(WdQuerySeeds, DenseMinPeriodMatchesClassicalSearch) {
  const Netlist nl = generate_random_circuit(seeded_spec(GetParam()));
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdMatrices wd(g);
  const auto classical = wd_min_period(g, wd);
  auto dense = make_wd_query(g);
  const auto via_query = wd_query_min_period(g, *dense);
  EXPECT_TRUE(via_query.exact);
  EXPECT_DOUBLE_EQ(via_query.period, classical.period);
  EXPECT_EQ(via_query.r, classical.r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WdQuerySeeds, ::testing::Range(1, 7));

TEST(WdQueryEngine, LazyMemoryStaysLinear) {
  RandomCircuitSpec spec = seeded_spec(1);
  spec.gates = 400;
  spec.dffs = 100;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  auto lazy = make_wd_query(g, lazy_options(/*cache_rows=*/8));
  // Touch many rows; the cache holds at most 8.
  for (VertexId u = 0; u < g.vertex_count(); u += 5) lazy->w(u, 0);
  const std::size_t n = g.vertex_count();
  const std::size_t row = n * (sizeof(std::int32_t) + sizeof(double));
  EXPECT_LE(lazy->memory_bytes(), 16 * row + 4096 * 64);
  auto dense = make_wd_query(g);
  EXPECT_GE(dense->memory_bytes(), n * n * sizeof(std::int32_t));
}

}  // namespace
}  // namespace serelin
