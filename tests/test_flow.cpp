// Tests of the packaged Section-VI experiment flow (src/flow).
#include <gtest/gtest.h>

#include "flow/experiment.hpp"
#include "gen/random_circuit.hpp"
#include "helpers.hpp"

namespace serelin {
namespace {

Netlist flow_circuit(std::uint64_t seed = 515) {
  RandomCircuitSpec spec;
  spec.name = "flow";
  spec.gates = 200;
  spec.dffs = 50;
  spec.inputs = 10;
  spec.outputs = 10;
  spec.mean_fanin = 2.0;
  spec.seed = seed;
  return generate_random_circuit(spec);
}

FlowConfig fast_config() {
  FlowConfig config;
  config.sim.patterns = 256;
  config.sim.frames = 4;
  config.sim.warmup = 8;
  return config;
}

TEST(Flow, RowFieldsAreConsistent) {
  const Netlist nl = flow_circuit();
  CellLibrary lib;
  const ExperimentRow row = run_experiment(nl, lib, fast_config());
  EXPECT_EQ(row.name, nl.name());
  EXPECT_EQ(row.vertices, nl.gate_count());
  EXPECT_EQ(row.ffs, static_cast<std::int64_t>(nl.dff_count()));
  EXPECT_GT(row.edges, row.vertices);  // mean fanin 2 plus PO sinks
  EXPECT_GT(row.phi, 0.0);
  EXPECT_GE(row.rmin, 0.0);
  EXPECT_GT(row.ser_original, 0.0);
  EXPECT_GE(row.analysis_seconds, 0.0);
}

TEST(Flow, BothAlgorithmsReportOutcomes) {
  const Netlist nl = flow_circuit();
  CellLibrary lib;
  const ExperimentRow row = run_experiment(nl, lib, fast_config());
  for (const AlgoOutcome* a : {&row.minobs, &row.minobswin}) {
    EXPECT_GE(a->solver.objective_gain, 0);
    EXPECT_GT(a->ffs, 0);
    EXPECT_GT(a->ser, 0.0);
    EXPECT_GE(a->seconds, 0.0);
    EXPECT_NEAR(a->dser, (a->ser - row.ser_original) / row.ser_original,
                1e-12);
    EXPECT_NEAR(a->dff_change,
                static_cast<double>(a->ffs - row.ffs) / row.ffs, 1e-12);
  }
  // MinObsWin solves the more constrained problem.
  EXPECT_LE(row.minobswin.solver.objective_gain,
            row.minobs.solver.objective_gain);
}

TEST(Flow, SkippingMinObsLeavesItEmpty) {
  const Netlist nl = flow_circuit();
  CellLibrary lib;
  FlowConfig config = fast_config();
  config.run_minobs = false;
  const ExperimentRow row = run_experiment(nl, lib, config);
  EXPECT_EQ(row.minobs.solver.commits, 0);
  EXPECT_EQ(row.minobs.ffs, 0);
  EXPECT_GT(row.minobswin.ffs, 0);
}

TEST(Flow, SkippingReanalysisSkipsSer) {
  const Netlist nl = flow_circuit();
  CellLibrary lib;
  FlowConfig config = fast_config();
  config.reanalyze_ser = false;
  const ExperimentRow row = run_experiment(nl, lib, config);
  EXPECT_DOUBLE_EQ(row.ser_original, 0.0);
  EXPECT_DOUBLE_EQ(row.minobswin.ser, 0.0);
  EXPECT_GT(row.minobswin.ffs, 0);  // the solver still ran
}

TEST(Flow, RminOverrideIsHonoured) {
  const Netlist nl = flow_circuit();
  CellLibrary lib;
  FlowConfig config = fast_config();
  config.run_minobs = false;
  config.reanalyze_ser = false;
  config.rmin_override = 0.0;  // P2' disabled
  const ExperimentRow loose = run_experiment(nl, lib, config);
  EXPECT_DOUBLE_EQ(loose.rmin, 0.0);
  config.rmin_override = 1e6;  // absurd: initial retiming infeasible
  const ExperimentRow blocked = run_experiment(nl, lib, config);
  EXPECT_TRUE(blocked.minobswin.solver.exited_early);
  EXPECT_EQ(blocked.minobswin.solver.objective_gain, 0);
  // With P2' off the solver matches the MinObs baseline gain.
  FlowConfig both = fast_config();
  both.reanalyze_ser = false;
  const ExperimentRow b = run_experiment(nl, lib, both);
  EXPECT_EQ(loose.minobswin.solver.objective_gain,
            b.minobs.solver.objective_gain);
}

TEST(Flow, AreaWeightBiasesTowardFewerRegisters) {
  const Netlist nl = flow_circuit(929);
  CellLibrary lib;
  FlowConfig plain = fast_config();
  plain.run_minobs = false;
  plain.reanalyze_ser = false;
  FlowConfig area = plain;
  area.area_weight = 4.0;  // strongly value register positions
  const ExperimentRow p = run_experiment(nl, lib, plain);
  const ExperimentRow a = run_experiment(nl, lib, area);
  EXPECT_LE(a.minobswin.ffs, p.minobswin.ffs);
}

TEST(Flow, VerifyRunsTheOracleOnBothAlgorithms) {
  const Netlist nl = flow_circuit();
  CellLibrary lib;
  FlowConfig config = fast_config();
  config.verify = true;
  config.reanalyze_ser = false;
  const ExperimentRow row = run_experiment(nl, lib, config);
  ASSERT_TRUE(row.minobswin.verified);
  EXPECT_TRUE(row.minobswin.verdict.ok()) << row.minobswin.verdict.summary();
  ASSERT_TRUE(row.minobs.verified);
  EXPECT_TRUE(row.minobs.verdict.ok()) << row.minobs.verdict.summary();

  FlowConfig off = fast_config();
  off.reanalyze_ser = false;
  EXPECT_FALSE(run_experiment(nl, lib, off).minobswin.verified);
}

TEST(Flow, DeterministicAcrossRuns) {
  const Netlist nl = flow_circuit();
  CellLibrary lib;
  const ExperimentRow a = run_experiment(nl, lib, fast_config());
  const ExperimentRow b = run_experiment(nl, lib, fast_config());
  EXPECT_EQ(a.minobswin.solver.r, b.minobswin.solver.r);
  EXPECT_DOUBLE_EQ(a.ser_original, b.ser_original);
  EXPECT_DOUBLE_EQ(a.minobswin.ser, b.minobswin.ser);
}

}  // namespace
}  // namespace serelin
