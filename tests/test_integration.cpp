// End-to-end pipeline tests: generate -> analyze -> initialize -> optimize
// -> materialize -> re-analyze, the exact flow of the Table-I harness.
#include <gtest/gtest.h>

#include "core/initializer.hpp"
#include "core/objective.hpp"
#include "core/solver.hpp"
#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "rgraph/apply.hpp"
#include "ser/ser_analyzer.hpp"

namespace serelin {
namespace {

struct FlowResult {
  double ser_original = 0.0;
  double ser_minobs = 0.0;
  double ser_minobswin = 0.0;
  std::int64_t ff_original = 0;
  std::int64_t ff_minobs = 0;
  std::int64_t ff_minobswin = 0;
  bool win_exited_early = false;
};

FlowResult run_flow(std::uint64_t seed, int gates = 300, int dffs = 80) {
  RandomCircuitSpec spec;
  spec.gates = gates;
  spec.dffs = dffs;
  spec.inputs = 10;
  spec.outputs = 10;
  spec.mean_fanin = 2.0;
  spec.seed = seed;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});

  SimConfig cfg;
  cfg.patterns = 512;
  cfg.frames = 6;
  cfg.warmup = 12;
  const ObsGains gains = test::gains_for(g, nl, cfg);

  SolverOptions opt;
  opt.timing = init.timing;
  opt.rmin = init.rmin;
  const SolverResult win = MinObsWinSolver(g, gains, opt).solve(init.r);
  SolverOptions ref_opt = opt;
  ref_opt.enforce_elw = false;
  const SolverResult ref = MinObsWinSolver(g, gains, ref_opt).solve(init.r);

  SerOptions ser;
  ser.timing = init.timing;
  ser.sim = cfg;

  FlowResult out;
  out.win_exited_early = win.exited_early;
  out.ser_original = analyze_ser(nl, lib, ser).total;
  const Netlist nl_ref = apply_retiming(g, ref.r, nl.name() + "_minobs");
  const Netlist nl_win = apply_retiming(g, win.r, nl.name() + "_minobswin");
  out.ser_minobs = analyze_ser(nl_ref, lib, ser).total;
  out.ser_minobswin = analyze_ser(nl_win, lib, ser).total;
  out.ff_original = static_cast<std::int64_t>(nl.dff_count());
  out.ff_minobs = static_cast<std::int64_t>(nl_ref.dff_count());
  out.ff_minobswin = static_cast<std::int64_t>(nl_win.dff_count());
  return out;
}

TEST(Integration, FullFlowProducesAnalyzableCircuits) {
  const FlowResult res = run_flow(0xF00D);
  EXPECT_GT(res.ser_original, 0.0);
  EXPECT_GT(res.ser_minobs, 0.0);
  EXPECT_GT(res.ser_minobswin, 0.0);
  EXPECT_GT(res.ff_original, 0);
}

TEST(Integration, RegisterCountStaysBounded) {
  // The paper's Δ#FF column is usually negative (merges at multi-fanin
  // gates) but can be positive (s38417: +13.6%) — the Eq. (5) objective
  // weighs observability, not register count, and will split a register
  // across an unbalanced fanout when the driver is much more observable
  // than the consumer. Assert the count stays in a sane band and that a
  // merge-dominated majority of seeds does shrink.
  int not_worse = 0;
  for (std::uint64_t seed : {1001ULL, 1002ULL, 1003ULL}) {
    const FlowResult res = run_flow(seed, 250, 70);
    EXPECT_LE(res.ff_minobswin, res.ff_original * 2);
    EXPECT_GT(res.ff_minobswin, 0);
    if (res.ff_minobswin <= res.ff_original) ++not_worse;
  }
  EXPECT_GE(not_worse, 1);
}

TEST(Integration, MinObsWinControlsSerAtLeastAsWellOnAverage) {
  // Across a small batch, MinObsWin's re-analyzed SER must not lose to
  // MinObs on average (the paper's 15% aggregate edge). Individual seeds
  // may tie (when P2' never binds, both algorithms coincide).
  double ref_sum = 0.0, win_sum = 0.0, orig_sum = 0.0;
  for (std::uint64_t seed : {21ULL, 22ULL, 23ULL, 24ULL}) {
    const FlowResult res = run_flow(seed, 220, 60);
    ref_sum += res.ser_minobs;
    win_sum += res.ser_minobswin;
    orig_sum += res.ser_original;
  }
  EXPECT_LE(win_sum, ref_sum * 1.02);
  // And the optimization should not blow SER up on average.
  EXPECT_LE(win_sum, orig_sum * 1.10);
}

TEST(Integration, AppliedNetlistMatchesGraphPrediction) {
  RandomCircuitSpec spec;
  spec.gates = 150;
  spec.dffs = 40;
  spec.inputs = 8;
  spec.outputs = 8;
  spec.seed = 777;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});
  SimConfig cfg;
  cfg.patterns = 256;
  cfg.frames = 4;
  const ObsGains gains = test::gains_for(g, nl, cfg);
  SolverOptions opt;
  opt.timing = init.timing;
  opt.rmin = init.rmin;
  const SolverResult res = MinObsWinSolver(g, gains, opt).solve(init.r);
  const Netlist out = apply_retiming(g, res.r, "applied");
  EXPECT_EQ(out.dff_count(),
            static_cast<std::size_t>(g.shared_register_count(res.r)));
  EXPECT_EQ(out.gate_count(), nl.gate_count());
  // The rebuilt circuit is itself a legal retiming-graph input whose
  // timing meets the same period.
  RetimingGraph g2(out, lib);
  EXPECT_TRUE(test::feasible(g2, g2.zero_retiming(), init.timing, 0.0));
}

}  // namespace
}  // namespace serelin
