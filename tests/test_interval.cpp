#include <gtest/gtest.h>

#include <sstream>

#include "interval/interval_set.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace serelin {
namespace {

TEST(IntervalSet, EmptyBasics) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_DOUBLE_EQ(s.measure(), 0.0);
  EXPECT_FALSE(s.contains(0.0));
  EXPECT_THROW(s.left(), PreconditionError);
  EXPECT_THROW(s.right(), PreconditionError);
}

TEST(IntervalSet, Singleton) {
  IntervalSet s(1.0, 3.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.measure(), 2.0);
  EXPECT_DOUBLE_EQ(s.left(), 1.0);
  EXPECT_DOUBLE_EQ(s.right(), 3.0);
  EXPECT_TRUE(s.contains(1.0));
  EXPECT_TRUE(s.contains(2.0));
  EXPECT_TRUE(s.contains(3.0));
  EXPECT_FALSE(s.contains(0.999));
  EXPECT_FALSE(s.contains(3.001));
}

TEST(IntervalSet, RejectsInvertedBounds) {
  EXPECT_THROW(IntervalSet(2.0, 1.0), PreconditionError);
  IntervalSet s;
  EXPECT_THROW(s.insert(5.0, 4.0), PreconditionError);
}

TEST(IntervalSet, InsertMergesOverlap) {
  IntervalSet s(0.0, 2.0);
  s.insert(1.0, 4.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.measure(), 4.0);
}

TEST(IntervalSet, InsertMergesTouching) {
  IntervalSet s(0.0, 2.0);
  s.insert(2.0, 3.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.measure(), 3.0);
}

TEST(IntervalSet, InsertKeepsDisjoint) {
  IntervalSet s(0.0, 1.0);
  s.insert(2.0, 3.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.measure(), 2.0);
  EXPECT_FALSE(s.contains(1.5));
}

TEST(IntervalSet, PointIntervals) {
  IntervalSet s(1.0, 1.0);
  EXPECT_DOUBLE_EQ(s.measure(), 0.0);
  EXPECT_TRUE(s.contains(1.0));
  s.insert(1.0, 2.0);
  EXPECT_EQ(s.size(), 1u);
}

TEST(IntervalSet, ConstructorNormalizesArbitraryInput) {
  std::vector<Interval> raw{{3, 4}, {0, 1}, {0.5, 3.5}};
  IntervalSet s(raw);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s.left(), 0.0);
  EXPECT_DOUBLE_EQ(s.right(), 4.0);
}

TEST(IntervalSet, UniteIsUnion) {
  IntervalSet a(0.0, 1.0);
  IntervalSet b(0.5, 2.0);
  b.insert(5.0, 6.0);
  a.unite(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.measure(), 3.0);
}

TEST(IntervalSet, ShiftPreservesMeasure) {
  IntervalSet s(0.0, 1.0);
  s.insert(2.0, 4.0);
  const IntervalSet t = s.shifted(-2.5);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.measure(), s.measure());
  EXPECT_DOUBLE_EQ(t.left(), -2.5);
  EXPECT_DOUBLE_EQ(t.right(), 1.5);
}

TEST(IntervalSet, ClampIntersects) {
  IntervalSet s(0.0, 10.0);
  s.insert(20.0, 30.0);
  const IntervalSet c = s.clamped(5.0, 25.0);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.measure(), 10.0);
  EXPECT_DOUBLE_EQ(c.left(), 5.0);
  EXPECT_DOUBLE_EQ(c.right(), 25.0);
}

TEST(IntervalSet, ClampToEmpty) {
  IntervalSet s(0.0, 1.0);
  EXPECT_TRUE(s.clamped(2.0, 3.0).empty());
}

TEST(IntervalSet, EqualityIsStructural) {
  IntervalSet a(0.0, 1.0);
  a.insert(1.0, 2.0);
  IntervalSet b(0.0, 2.0);
  EXPECT_EQ(a, b);
}

TEST(IntervalSet, StreamFormat) {
  IntervalSet s(0.0, 1.0);
  s.insert(3.0, 4.0);
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "[0,1] U [3,4]");
  std::ostringstream empty;
  empty << IntervalSet{};
  EXPECT_EQ(empty.str(), "{}");
}

// Property sweep: random inserts keep the set sorted, disjoint and with
// measure equal to a brute-force grid count.
class IntervalSetProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSetProperty, NormalizationInvariants) {
  Rng rng(GetParam());
  IntervalSet s;
  for (int i = 0; i < 40; ++i) {
    const double lo = rng.uniform() * 100.0;
    const double len = rng.uniform() * 10.0;
    s.insert(lo, lo + len);
  }
  const auto& parts = s.parts();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_LE(parts[i].lo, parts[i].hi);
    if (i > 0) {
      EXPECT_GT(parts[i].lo, parts[i - 1].hi);  // strictly apart
    }
  }
  // Brute-force measure on a fine grid (interval arithmetic sanity).
  const int kGrid = 22000;
  int inside = 0;
  for (int i = 0; i < kGrid; ++i) {
    const double x = 110.0 * i / kGrid;
    inside += s.contains(x);
  }
  EXPECT_NEAR(inside * 110.0 / kGrid, s.measure(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace serelin
