#include <gtest/gtest.h>

#include <sstream>

#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/blif_io.hpp"
#include "sim/simulator.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace serelin {
namespace {

constexpr const char* kSmallBlif = R"(
# a small sequential BLIF model
.model demo
.inputs a b \
        c
.outputs z q
.latch d q re clk 0
.names a b t1
11 1
.names t1 c t2
1- 1
-1 1
.names t2 z
0 1
.names z q d
01 1
10 1
.end
)";

TEST(BlifIO, ParsesModel) {
  std::istringstream in(kSmallBlif);
  const Netlist nl = read_blif(in);
  EXPECT_EQ(nl.name(), "demo");
  EXPECT_EQ(nl.inputs().size(), 3u);  // continuation line folded
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.dff_count(), 1u);
  EXPECT_EQ(nl.node(nl.find("t1")).type, CellType::kAnd);
  EXPECT_EQ(nl.node(nl.find("t2")).type, CellType::kOr);
  EXPECT_EQ(nl.node(nl.find("z")).type, CellType::kNot);
  EXPECT_EQ(nl.node(nl.find("d")).type, CellType::kXor);
}

TEST(BlifIO, RecognizesOffSetCovers) {
  // NAND expressed as the off-set "11 -> 0".
  std::istringstream in(
      ".model offset\n.inputs a b\n.outputs z\n.names a b z\n11 0\n.end\n");
  const Netlist nl = read_blif(in);
  EXPECT_EQ(nl.node(nl.find("z")).type, CellType::kNand);
}

TEST(BlifIO, RecognizesConstants) {
  std::istringstream in(
      ".model consts\n.inputs a\n.outputs x y z\n"
      ".names one\n1\n.names zero\n"
      ".names a one x\n11 1\n.names a zero y\n1- 1\n-1 1\n"
      ".names a z\n1 1\n.end\n");
  const Netlist nl = read_blif(in);
  EXPECT_EQ(nl.node(nl.find("one")).type, CellType::kConst1);
  EXPECT_EQ(nl.node(nl.find("zero")).type, CellType::kConst0);
  EXPECT_EQ(nl.node(nl.find("z")).type, CellType::kBuf);
}

TEST(BlifIO, RecognizesWideParity) {
  std::istringstream in(
      ".model par\n.inputs a b c\n.outputs z\n.names a b c z\n"
      "100 1\n010 1\n001 1\n111 1\n.end\n");
  const Netlist nl = read_blif(in);
  EXPECT_EQ(nl.node(nl.find("z")).type, CellType::kXor);
}

TEST(BlifIO, RejectsUnmappableCover) {
  // A 2-of-3 majority is none of serelin's gate functions.
  std::istringstream in(
      ".model maj\n.inputs a b c\n.outputs z\n.names a b c z\n"
      "11- 1\n1-1 1\n-11 1\n.end\n");
  EXPECT_THROW(read_blif(in), ParseError);
}

struct BadBlif {
  const char* label;
  const char* text;
};

class BlifErrors : public ::testing::TestWithParam<BadBlif> {};

TEST_P(BlifErrors, Throws) {
  std::istringstream in(GetParam().text);
  EXPECT_THROW(read_blif(in), ParseError) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BlifErrors,
    ::testing::Values(
        BadBlif{"latch_missing_output", ".model m\n.latch a\n.end\n"},
        BadBlif{"names_missing_output", ".model m\n.names\n.end\n"},
        BadBlif{"mixed_polarity",
                ".model m\n.inputs a b\n.outputs z\n.names a b z\n"
                "11 1\n00 0\n.end\n"},
        BadBlif{"bad_plane_char",
                ".model m\n.inputs a\n.outputs z\n.names a z\nx 1\n.end\n"},
        BadBlif{"row_arity_mismatch",
                ".model m\n.inputs a b\n.outputs z\n.names a b z\n1 1\n.end\n"},
        BadBlif{"unknown_construct", ".model m\n.gate nand2 a=x\n.end\n"},
        BadBlif{"undefined_signal",
                ".model m\n.inputs a\n.outputs z\n.names ghost z\n1 1\n.end\n"}));

TEST(BlifIO, RoundTripPreservesStructureAndFunction) {
  RandomCircuitSpec spec;
  spec.gates = 120;
  spec.dffs = 25;
  spec.inputs = 6;
  spec.outputs = 6;
  spec.seed = 77;
  const Netlist nl = generate_random_circuit(spec);
  std::ostringstream os;
  write_blif(os, nl);
  std::istringstream is(os.str());
  const Netlist back = read_blif(is);
  ASSERT_EQ(back.node_count(), nl.node_count());
  EXPECT_EQ(back.gate_count(), nl.gate_count());
  EXPECT_EQ(back.dff_count(), nl.dff_count());
  EXPECT_EQ(back.outputs().size(), nl.outputs().size());
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const NodeId id2 = back.find(nl.node(id).name);
    ASSERT_NE(id2, kNullNode) << nl.node(id).name;
    EXPECT_EQ(back.node(id2).type, nl.node(id).type) << nl.node(id).name;
  }
  // Functional agreement over random stimulus.
  Simulator sa(nl, 2), sb(back, 2);
  sa.reset_state();
  sb.reset_state();
  Rng ra(5), rb(5);
  for (int cycle = 0; cycle < 8; ++cycle) {
    sa.randomize_inputs(ra);
    sb.randomize_inputs(rb);
    sa.eval_frame();
    sb.eval_frame();
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      const NodeId po_a = nl.outputs()[o];
      const NodeId po_b = back.find(nl.node(po_a).name);
      for (int w = 0; w < 2; ++w)
        ASSERT_EQ(sa.value(po_a)[w], sb.value(po_b)[w])
            << nl.node(po_a).name << " cycle " << cycle;
    }
    sa.step();
    sb.step();
  }
}

TEST(BlifIO, FileRoundTrip) {
  const Netlist nl = test::tiny_ring();
  const std::string path = ::testing::TempDir() + "/serelin_ring.blif";
  write_blif_file(path, nl);
  const Netlist back = read_blif_file(path);
  EXPECT_EQ(back.name(), nl.name());
  EXPECT_EQ(back.dff_count(), nl.dff_count());
}

TEST(BlifIO, MissingFileThrows) {
  EXPECT_THROW(read_blif_file("/nonexistent/x.blif"), ParseError);
}

}  // namespace
}  // namespace serelin
