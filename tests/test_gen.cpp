#include <gtest/gtest.h>

#include "gen/paper_suite.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "rgraph/retiming_graph.hpp"
#include "support/check.hpp"

#include <sstream>

namespace serelin {
namespace {

TEST(Generator, HitsRequestedCounts) {
  RandomCircuitSpec spec;
  spec.gates = 500;
  spec.dffs = 120;
  spec.inputs = 12;
  spec.outputs = 10;
  spec.seed = 42;
  const Netlist nl = generate_random_circuit(spec);
  EXPECT_EQ(nl.gate_count(), 500u);
  EXPECT_EQ(nl.dff_count(), 120u);
  EXPECT_EQ(nl.inputs().size(), 12u);
  EXPECT_GE(nl.outputs().size(), 10u);  // repairs may add POs
}

TEST(Generator, DeterministicPerSeed) {
  RandomCircuitSpec spec;
  spec.gates = 80;
  spec.dffs = 15;
  spec.seed = 7;
  const Netlist a = generate_random_circuit(spec);
  const Netlist b = generate_random_circuit(spec);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (NodeId id = 0; id < a.node_count(); ++id) {
    EXPECT_EQ(a.node(id).name, b.node(id).name);
    EXPECT_EQ(a.node(id).type, b.node(id).type);
    EXPECT_EQ(a.node(id).fanins, b.node(id).fanins);
  }
}

TEST(Generator, SeedsDiffer) {
  RandomCircuitSpec spec;
  spec.gates = 80;
  spec.dffs = 15;
  spec.seed = 7;
  const Netlist a = generate_random_circuit(spec);
  spec.seed = 8;
  const Netlist b = generate_random_circuit(spec);
  int diff = 0;
  for (NodeId id = 0; id < a.node_count(); ++id)
    diff += a.node(id).fanins != b.node(id).fanins;
  EXPECT_GT(diff, 10);
}

TEST(Generator, MeanFaninControlsEdges) {
  RandomCircuitSpec spec;
  spec.gates = 2000;
  spec.dffs = 200;
  spec.seed = 3;
  spec.mean_fanin = 1.3;
  const Netlist sparse = generate_random_circuit(spec);
  spec.mean_fanin = 2.6;
  const Netlist dense = generate_random_circuit(spec);
  auto gate_pins = [](const Netlist& nl) {
    std::size_t pins = 0;
    for (NodeId id : nl.gate_order()) pins += nl.node(id).fanins.size();
    return pins;
  };
  EXPECT_NEAR(static_cast<double>(gate_pins(sparse)) / 2000, 1.3, 0.12);
  EXPECT_NEAR(static_cast<double>(gate_pins(dense)) / 2000, 2.6, 0.12);
}

TEST(Generator, NoDanglingLogic) {
  RandomCircuitSpec spec;
  spec.gates = 300;
  spec.dffs = 60;
  spec.seed = 11;
  const Netlist nl = generate_random_circuit(spec);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == CellType::kInput) continue;  // inputs may be unused
    EXPECT_TRUE(!n.fanouts.empty() || nl.is_output(id))
        << n.name << " dangles";
  }
}

TEST(Generator, BuildsLegalRetimingGraph) {
  RandomCircuitSpec spec;
  spec.gates = 400;
  spec.dffs = 90;
  spec.seed = 13;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  EXPECT_NO_THROW({
    RetimingGraph g(nl, lib);
    EXPECT_EQ(g.gate_vertices().size(), 400u);
  });
}

TEST(Generator, BenchRoundTrip) {
  RandomCircuitSpec spec;
  spec.gates = 50;
  spec.dffs = 10;
  spec.seed = 17;
  const Netlist nl = generate_random_circuit(spec);
  std::ostringstream os;
  write_bench(os, nl);
  std::istringstream is(os.str());
  const Netlist back = read_bench(is, nl.name());
  EXPECT_EQ(back.gate_count(), nl.gate_count());
  EXPECT_EQ(back.dff_count(), nl.dff_count());
  EXPECT_EQ(back.outputs().size(), nl.outputs().size());
}

TEST(Generator, RejectsBadSpecs) {
  RandomCircuitSpec spec;
  spec.gates = 0;
  EXPECT_THROW(generate_random_circuit(spec), PreconditionError);
  spec.gates = 10;
  spec.mean_fanin = 0.5;
  EXPECT_THROW(generate_random_circuit(spec), PreconditionError);
}

TEST(PaperSuite, HasAllTableOneRows) {
  const auto& suite = paper_suite();
  ASSERT_EQ(suite.size(), 21u);
  EXPECT_EQ(suite.front().name, "s13207");
  EXPECT_EQ(suite.back().name, "b22_opt");
  // Paper averages: ΔSER_ref ≈ -26.7%, ΔSER_new ≈ -32.7%.
  double ref = 0, nw = 0;
  for (const auto& c : suite) {
    ref += c.paper_dser_ref;
    nw += c.paper_dser_new;
  }
  EXPECT_NEAR(ref / 21, -0.267, 0.005);
  EXPECT_NEAR(nw / 21, -0.327, 0.005);
}

TEST(PaperSuite, LookupByName) {
  EXPECT_EQ(suite_circuit("b19").vertices, 224625);
  EXPECT_EQ(suite_circuit("s38417").dffs, 2806);
  EXPECT_THROW(suite_circuit("nope"), PreconditionError);
}

TEST(PaperSuite, GeneratedStatsMatchRow) {
  const SuiteCircuit& row = suite_circuit("b14_1_opt");
  const Netlist nl = generate_suite_circuit(row);
  EXPECT_EQ(nl.gate_count(), static_cast<std::size_t>(row.vertices));
  EXPECT_EQ(nl.dff_count(), static_cast<std::size_t>(row.dffs));
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  // |E| within 15% of the published count (PO sinks and repairs add a few).
  const double ratio =
      static_cast<double>(g.edge_count()) / static_cast<double>(row.edges);
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

}  // namespace
}  // namespace serelin
