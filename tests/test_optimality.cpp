// Cross-validation of the three solvers on tiny instances.
//
// exhaustive_best enumerates the whole decrease-only search box, so its
// gain is an upper bound for any monotone solver. The regular-forest
// MinObsWin and the independent ClosureSolver must (a) stay feasible,
// (b) never beat the exhaustive bound, and (c) reach the bound on these
// instances — the empirical optimality check behind the paper's Theorem 2.
#include <gtest/gtest.h>

#include "core/closure_solver.hpp"
#include "core/exhaustive.hpp"
#include "core/initializer.hpp"
#include "core/solver.hpp"
#include "gen/random_circuit.hpp"
#include "helpers.hpp"

namespace serelin {
namespace {

struct TinyInstance {
  Netlist nl;
  CellLibrary lib;
  RetimingGraph g;
  ObsGains gains;
  InitResult init;

  explicit TinyInstance(std::uint64_t seed, int gates = 8, int dffs = 5)
      : nl([&] {
          RandomCircuitSpec spec;
          spec.gates = gates;
          spec.dffs = dffs;
          spec.inputs = 3;
          spec.outputs = 2;
          spec.mean_fanin = 1.8;
          spec.window = 4;
          spec.seed = seed;
          return generate_random_circuit(spec);
        }()),
        g(nl, lib),
        gains([&] {
          SimConfig cfg;
          cfg.patterns = 256;
          cfg.frames = 4;
          return test::gains_for(g, nl, cfg);
        }()),
        init(initialize_retiming(g, {})) {}
};

class TinyOptimality : public ::testing::TestWithParam<int> {};

TEST_P(TinyOptimality, SolversReachExhaustiveBound) {
  TinyInstance inst(static_cast<std::uint64_t>(GetParam()) * 2246822519ULL);
  SolverOptions opt;
  opt.timing = inst.init.timing;
  opt.rmin = inst.init.rmin;

  const auto forest = MinObsWinSolver(inst.g, inst.gains, opt)
                          .solve(inst.init.r);
  const auto closure = ClosureSolver(inst.g, inst.gains, opt)
                           .solve(inst.init.r);
  const auto exact =
      exhaustive_best(inst.g, inst.gains, opt, inst.init.r, /*bound=*/4);

  ASSERT_TRUE(inst.g.valid(forest.r));
  ASSERT_TRUE(inst.g.valid(closure.r));
  EXPECT_TRUE(test::feasible(inst.g, forest.r, opt.timing, opt.rmin));
  EXPECT_TRUE(test::feasible(inst.g, closure.r, opt.timing, opt.rmin));

  EXPECT_LE(forest.objective_gain, exact.objective_gain);
  EXPECT_LE(closure.objective_gain, exact.objective_gain);
  EXPECT_EQ(forest.objective_gain, exact.objective_gain)
      << "forest solver missed the optimum";
  // The closure solver is a heuristic cross-check: a lower bound that hits
  // the optimum on most (not all) instances; equality is asserted in
  // aggregate below.
}

INSTANTIATE_TEST_SUITE_P(Seeds, TinyOptimality, ::testing::Range(1, 25));

TEST(TinyOptimality, ClosureHitsOptimumOnMostInstances) {
  int equal = 0;
  const int kSeeds = 24;
  for (int s = 1; s <= kSeeds; ++s) {
    TinyInstance inst(static_cast<std::uint64_t>(s) * 2246822519ULL);
    SolverOptions opt;
    opt.timing = inst.init.timing;
    opt.rmin = inst.init.rmin;
    const auto closure =
        ClosureSolver(inst.g, inst.gains, opt).solve(inst.init.r);
    const auto exact =
        exhaustive_best(inst.g, inst.gains, opt, inst.init.r, 4);
    EXPECT_LE(closure.objective_gain, exact.objective_gain);
    if (closure.objective_gain == exact.objective_gain) ++equal;
  }
  EXPECT_GE(equal, 20) << "closure heuristic regressed";
}

class TinyMinObsOptimality : public ::testing::TestWithParam<int> {};

TEST_P(TinyMinObsOptimality, BaselineReachesItsOwnBound) {
  TinyInstance inst(static_cast<std::uint64_t>(GetParam()) * 2654435769ULL);
  SolverOptions opt;
  opt.timing = inst.init.timing;
  opt.rmin = 0.0;
  opt.enforce_elw = false;  // the Efficient MinObs problem of [17]
  const auto forest = MinObsWinSolver(inst.g, inst.gains, opt)
                          .solve(inst.init.r);
  const auto exact =
      exhaustive_best(inst.g, inst.gains, opt, inst.init.r, /*bound=*/4);
  ASSERT_TRUE(inst.g.valid(forest.r));
  EXPECT_EQ(forest.objective_gain, exact.objective_gain);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TinyMinObsOptimality,
                         ::testing::Range(1, 25));

// Mid-size cross-validation: the ClosureSolver's bundle pruning is a
// heuristic, so it is a *lower bound* on the forest solver's (optimal)
// objective — never above it, and equal on the large majority of
// instances. A closure result above the forest result would prove the
// forest solver suboptimal; systematic shortfall would flag a closure bug.
TEST(MidSizeAgreement, ClosureLowerBoundsForest) {
  int equal = 0;
  const int kSeeds = 12;
  for (int s = 1; s <= kSeeds; ++s) {
    RandomCircuitSpec spec;
    spec.gates = 60;
    spec.dffs = 16;
    spec.inputs = 5;
    spec.outputs = 4;
    spec.mean_fanin = 1.9;
    spec.seed = static_cast<std::uint64_t>(s) * 40503ULL;
    const Netlist nl = generate_random_circuit(spec);
    CellLibrary lib;
    RetimingGraph g(nl, lib);
    const InitResult init = initialize_retiming(g, {});
    SimConfig cfg;
    cfg.patterns = 256;
    cfg.frames = 4;
    const ObsGains gains = test::gains_for(g, nl, cfg);
    SolverOptions opt;
    opt.timing = init.timing;
    opt.rmin = init.rmin;
    const auto forest = MinObsWinSolver(g, gains, opt).solve(init.r);
    const auto closure = ClosureSolver(g, gains, opt).solve(init.r);
    EXPECT_LE(closure.objective_gain, forest.objective_gain)
        << "forest suboptimal on seed " << s;
    ASSERT_TRUE(g.valid(closure.r));
    EXPECT_TRUE(test::feasible(g, closure.r, opt.timing, opt.rmin));
    if (closure.objective_gain == forest.objective_gain) ++equal;
  }
  EXPECT_GE(equal, 6) << "closure heuristic regressed";
}

}  // namespace
}  // namespace serelin
