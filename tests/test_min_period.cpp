#include <gtest/gtest.h>

#include "core/min_period.hpp"
#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {
namespace {

double critical_path(const RetimingGraph& g, const Retiming& r) {
  GraphTiming t(g, {0.0, 0.0, 0.0});
  t.compute(r);
  double worst = 0.0;
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    worst = std::max(worst, t.arrival(v));
  return worst;
}

TEST(MinPeriod, BalancesAPipeline) {
  // Six unit-delay gates, one register at the end of the chain, ring-closed
  // through a register so the register can actually move into the chain:
  //   ff -> g1..g6 -> ff. Optimal period with 1 register in a 6-delay loop
  // is 6; with the second register... build a loop with 2 registers so the
  // optimum is 3.
  NetlistBuilder nb("loop6");
  nb.input("x");
  nb.dff("s1", "g6");
  nb.dff("s2", "s1");
  nb.gate("g1", CellType::kBuf, {"s2"});
  nb.gate("g2", CellType::kBuf, {"g1"});
  nb.gate("g3", CellType::kBuf, {"g2"});
  nb.gate("g4", CellType::kBuf, {"g3"});
  nb.gate("g5", CellType::kBuf, {"g4"});
  nb.gate("g6", CellType::kXor, {"g5", "x"});
  nb.output("s2");  // tap the PO behind the registers so they may migrate
  const Netlist nl = nb.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);

  MinPeriodRetimer retimer(g, {});
  const auto res = retimer.minimize();
  ASSERT_TRUE(g.valid(res.r));
  // 6 units of delay over 2 registers: 3 is the floor; the PO path from
  // the loop tap may force slightly more — accept [3, 4].
  EXPECT_LE(critical_path(g, res.r), res.period + 1e-6);
  EXPECT_GE(res.period, 3.0 - 1e-6);
  EXPECT_LE(res.period, 4.0 + 0.01);  // binary-search tolerance
  // And it must beat the unretimed circuit (period 6 + PO tail).
  EXPECT_LT(res.period, critical_path(g, g.zero_retiming()) - 1.0);
}

TEST(MinPeriod, FeasibilityMonotoneInPeriod) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  MinPeriodRetimer retimer(g, {});
  const auto best = retimer.minimize();
  EXPECT_TRUE(retimer.retime_for_period(best.period, g.zero_retiming())
                  .has_value());
  EXPECT_TRUE(retimer.retime_for_period(best.period * 2, g.zero_retiming())
                  .has_value());
  EXPECT_FALSE(
      retimer.retime_for_period(best.period * 0.49, g.zero_retiming())
          .has_value());
}

TEST(MinPeriod, RespectsSetupTime) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  MinPeriodRetimer::Options opt;
  opt.setup = 1.5;
  MinPeriodRetimer retimer(g, opt);
  const auto res = retimer.minimize();
  // Longest stage delay plus setup bounds the period from below.
  EXPECT_GE(res.period, 1.0 + 1.5 - 1e-6);
  GraphTiming t(g, {res.period, opt.setup, 0.0});
  t.compute(res.r);
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    EXPECT_LE(t.arrival(v), res.period - opt.setup + 1e-6);
}

TEST(MinPeriod, PurePipelineCannotImprove) {
  // x -> a -> b -> ff -> c -> PO: the PI-to-register and register-to-PO
  // paths pin the period at 2 (registers cannot cross the boundary).
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  MinPeriodRetimer retimer(g, {});
  const auto res = retimer.minimize();
  EXPECT_NEAR(res.period, 2.0, 0.01);
}

class MinPeriodProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinPeriodProperty, ResultIsValidAndMeetsPeriod) {
  RandomCircuitSpec spec;
  spec.gates = 150;
  spec.dffs = 35;
  spec.inputs = 6;
  spec.outputs = 6;
  spec.mean_fanin = 1.9;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 2654435761u;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  MinPeriodRetimer retimer(g, {});
  const auto res = retimer.minimize();
  ASSERT_TRUE(g.valid(res.r));
  EXPECT_LE(critical_path(g, res.r), res.period + 1e-6);
  EXPECT_LE(res.period, critical_path(g, g.zero_retiming()) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinPeriodProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace serelin
