#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "sim/graph_sim.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace serelin {
namespace {

// Runs both machines on identical random input streams and compares the
// primary-output words every cycle.
void expect_equivalent(const RetimingGraph& g, const Retiming& ra,
                       const EdgeState& sa, const Retiming& rb,
                       const EdgeState& sb, int cycles, std::uint64_t seed) {
  const int words = 2;
  GraphStateSimulator a(g, ra, sa, words);
  GraphStateSimulator b(g, rb, sb, words);
  Rng rng_a(seed), rng_b(seed);
  for (int c = 0; c < cycles; ++c) {
    a.randomize_sources(rng_a);
    b.randomize_sources(rng_b);
    a.cycle();
    b.cycle();
    ASSERT_EQ(a.sink_values(), b.sink_values()) << "cycle " << c;
  }
}

TEST(GraphSim, MatchesNetlistSimulator) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const Retiming r0 = g.zero_retiming();
  GraphStateSimulator gs(g, r0, zero_edge_state(g, r0, 1), 1);
  Simulator ns(nl, 1);
  ns.reset_state();
  Rng rng(5);
  for (int c = 0; c < 16; ++c) {
    const std::uint64_t word = rng.next();
    gs.set_source(g.vertex_of(nl.find("en")), {word});
    ns.value(nl.find("en"))[0] = word;
    gs.cycle();
    ns.eval_frame();
    EXPECT_EQ(gs.value(g.vertex_of(nl.find("tap")))[0],
              ns.value(nl.find("tap"))[0])
        << "cycle " << c;
    ns.step();
  }
}

TEST(GraphSim, SingleForwardMovePreservesBehaviour) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const Retiming r0 = g.zero_retiming();
  Retiming r1 = r0;
  r1[g.vertex_of(nl.find("c"))] = -1;
  ASSERT_TRUE(g.valid(r1));
  const EdgeState s0 = zero_edge_state(g, r0, 2);
  const EdgeState s1 = decompose_forward(g, r0, r1, s0, 2);
  expect_equivalent(g, r0, s0, r1, s1, 24, 17);
}

TEST(GraphSim, ForwardMoveWithNonZeroState) {
  // The transported initial state must be computed, not zeroed: with an
  // inverter in front of the moved register, zero states are inequivalent.
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const Retiming r0 = g.zero_retiming();
  Retiming r1 = r0;
  r1[g.vertex_of(nl.find("c"))] = -1;
  EdgeState s0 = zero_edge_state(g, r0, 1);
  // b = NOT(a): with x = 0 and register value 0... force a register value.
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    if (!s0[e].empty()) s0[e].front()[0] = 0xF0F0F0F0F0F0F0F0ULL;
  const EdgeState s1 = decompose_forward(g, r0, r1, s0, 1);
  // The moved register holds BUF(old value) = the old value (c is a BUF).
  bool found = false;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    if (!s1[e].empty()) {
      EXPECT_EQ(s1[e].front()[0], 0xF0F0F0F0F0F0F0F0ULL);
      found = true;
    }
  EXPECT_TRUE(found);
  GraphStateSimulator a(g, r0, s0, 1);
  GraphStateSimulator b(g, r1, s1, 1);
  Rng ra(3), rb(3);
  for (int c = 0; c < 10; ++c) {
    a.randomize_sources(ra);
    b.randomize_sources(rb);
    a.cycle();
    b.cycle();
    ASSERT_EQ(a.sink_values(), b.sink_values());
  }
}

TEST(GraphSim, MultiStepDecompositionOnRing) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const Retiming r0 = g.zero_retiming();
  // Rotate both ring registers forward once: inv1 and buf1 each by one.
  Retiming r1 = r0;
  r1[g.vertex_of(nl.find("inv1"))] = -1;
  r1[g.vertex_of(nl.find("buf1"))] = -1;
  ASSERT_TRUE(g.valid(r1));
  const EdgeState s0 = zero_edge_state(g, r0, 2);
  const EdgeState s1 = decompose_forward(g, r0, r1, s0, 2);
  expect_equivalent(g, r0, s0, r1, s1, 32, 23);
}

TEST(GraphSim, DecomposeRejectsBackwardMoves) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const Retiming r0 = g.zero_retiming();
  Retiming r1 = r0;
  r1[g.vertex_of(nl.find("c"))] = 1;
  const EdgeState s0 = zero_edge_state(g, r0, 1);
  EXPECT_THROW(decompose_forward(g, r0, r1, s0, 1), PreconditionError);
}

TEST(GraphSim, StateArityIsChecked) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const Retiming r0 = g.zero_retiming();
  EdgeState wrong = zero_edge_state(g, r0, 1);
  for (auto& q : wrong) q.clear();  // drop all registers
  EXPECT_THROW(GraphStateSimulator(g, r0, wrong, 1), PreconditionError);
}

// Property: random circuits, random valid forward retimings, transported
// state => identical PO streams.
class ForwardEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ForwardEquivalence, RandomForwardRetiming) {
  RandomCircuitSpec spec;
  spec.gates = 60;
  spec.dffs = 14;
  spec.inputs = 5;
  spec.outputs = 5;
  spec.mean_fanin = 1.8;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 104729;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const Retiming r0 = g.zero_retiming();

  // Build a random valid forward retiming by repeated legal unit moves.
  Rng rng(spec.seed ^ 0xabcdef);
  Retiming r1 = r0;
  for (int tries = 0; tries < 300; ++tries) {
    const VertexId v = static_cast<VertexId>(rng.below(g.vertex_count()));
    if (!g.movable(v)) continue;
    --r1[v];
    bool ok = true;
    for (EdgeId e : g.in_edges(v)) ok = ok && g.wr(e, r1) >= 0;
    if (!ok) ++r1[v];
  }
  ASSERT_TRUE(g.valid(r1));
  const EdgeState s0 = zero_edge_state(g, r0, 2);
  const EdgeState s1 = decompose_forward(g, r0, r1, s0, 2);
  expect_equivalent(g, r0, s0, r1, s1, 20, spec.seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForwardEquivalence, ::testing::Range(1, 11));

}  // namespace
}  // namespace serelin
