// Differential harness, shrinker, and committed-corpus regression tests.
//
// Three suites:
//  * StopDetail — every deadline-aware solver must return a Partial result
//    whose stop_detail says *why* it stopped, for both StopReasons. The
//    differential harness relies on this to tell timeouts from wrong
//    answers ("partial-without-detail" is itself a divergence class).
//  * Shrink — the delta-debugging shrinker preserves the predicate, is
//    1-minimal at fixpoint, respects its check budget, and rejects a
//    non-failing start.
//  * CorpusReplay / Differential — every counterexample committed under
//    tests/corpus/found/ still behaves as its sidecar promises, and
//    planted faults are detected (the fuzzer's self-check invariant).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "check/shrink.hpp"
#include "core/closure_solver.hpp"
#include "core/initializer.hpp"
#include "core/min_period.hpp"
#include "core/solver.hpp"
#include "core/wd_query.hpp"
#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"
#include "netlist/validate.hpp"
#include "support/rng.hpp"

#ifndef SERELIN_CORPUS_DIR
#define SERELIN_CORPUS_DIR "tests/corpus"
#endif

namespace serelin {
namespace {

// ---------------------------------------------------------------------------
// StopDetail: Partial results always explain themselves.

/// A circuit big enough that every solver has real work to interrupt.
Netlist stop_circuit() {
  RandomCircuitSpec spec;
  spec.name = "stopdetail";
  spec.gates = 60;
  spec.dffs = 24;
  spec.seed = 42;
  return generate_random_circuit(spec);
}

struct StopFixture {
  StopFixture()
      : nl(stop_circuit()),
        g(nl, lib),
        init(initialize_retiming(g, InitOptions{})),
        gains(test::gains_for(g, nl)) {}

  SolverOptions solver_options(Deadline deadline) const {
    SolverOptions o;
    o.timing = init.timing;
    o.rmin = init.rmin;
    o.deadline = deadline;
    return o;
  }

  CellLibrary lib;
  Netlist nl;
  RetimingGraph g;
  InitResult init;
  ObsGains gains;
};

Deadline cancelled_deadline() {
  CancelToken token;
  token.cancel();
  return Deadline::with_token(token);
}

void expect_partial(StopReason expected, StopReason got,
                    const std::string& detail, const char* engine) {
  EXPECT_EQ(got, expected) << engine;
  EXPECT_FALSE(detail.empty())
      << engine << " returned a Partial result with no stop_detail";
  EXPECT_NE(detail.find(stop_reason_name(expected)), std::string::npos)
      << engine << " detail does not name the reason: " << detail;
}

TEST(StopDetail, MinObsWinDeadline) {
  StopFixture fx;
  MinObsWinSolver solver(fx.g, fx.gains,
                         fx.solver_options(Deadline::after(0.0)));
  const SolverResult res = solver.solve(fx.init.r);
  ASSERT_TRUE(res.partial());
  expect_partial(StopReason::kDeadline, res.stop_reason, res.stop_detail,
                 "forest");
  EXPECT_TRUE(fx.g.valid(res.r));  // best-so-far is still legal
}

TEST(StopDetail, MinObsWinCancelled) {
  StopFixture fx;
  MinObsWinSolver solver(fx.g, fx.gains,
                         fx.solver_options(cancelled_deadline()));
  const SolverResult res = solver.solve(fx.init.r);
  ASSERT_TRUE(res.partial());
  expect_partial(StopReason::kCancelled, res.stop_reason, res.stop_detail,
                 "forest");
}

TEST(StopDetail, ClosureDeadline) {
  StopFixture fx;
  ClosureSolver solver(fx.g, fx.gains,
                       fx.solver_options(Deadline::after(0.0)));
  const SolverResult res = solver.solve(fx.init.r);
  ASSERT_TRUE(res.partial());
  expect_partial(StopReason::kDeadline, res.stop_reason, res.stop_detail,
                 "closure");
  EXPECT_TRUE(fx.g.valid(res.r));
}

TEST(StopDetail, ClosureCancelled) {
  StopFixture fx;
  ClosureSolver solver(fx.g, fx.gains,
                       fx.solver_options(cancelled_deadline()));
  const SolverResult res = solver.solve(fx.init.r);
  ASSERT_TRUE(res.partial());
  expect_partial(StopReason::kCancelled, res.stop_reason, res.stop_detail,
                 "closure");
}

TEST(StopDetail, MinPeriodDeadline) {
  StopFixture fx;
  MinPeriodRetimer::Options o;
  o.deadline = Deadline::after(0.0);
  const auto res = MinPeriodRetimer(fx.g, o).minimize();
  ASSERT_TRUE(res.partial());
  expect_partial(StopReason::kDeadline, res.stop_reason, res.stop_detail,
                 "feas");
}

TEST(StopDetail, MinPeriodCancelled) {
  StopFixture fx;
  MinPeriodRetimer::Options o;
  o.deadline = cancelled_deadline();
  const auto res = MinPeriodRetimer(fx.g, o).minimize();
  ASSERT_TRUE(res.partial());
  expect_partial(StopReason::kCancelled, res.stop_reason, res.stop_detail,
                 "feas");
}

TEST(StopDetail, WdQueryMinPeriodDeadline) {
  StopFixture fx;
  const auto wd = make_wd_query(fx.g);
  const auto res =
      wd_query_min_period(fx.g, *wd, /*setup=*/0.0, Deadline::after(0.0));
  ASSERT_TRUE(res.partial());
  expect_partial(StopReason::kDeadline, res.stop_reason, res.stop_detail,
                 "wd-min-period");
}

TEST(StopDetail, WdQueryMinPeriodCancelled) {
  StopFixture fx;
  const auto wd = make_wd_query(fx.g);
  const auto res =
      wd_query_min_period(fx.g, *wd, /*setup=*/0.0, cancelled_deadline());
  ASSERT_TRUE(res.partial());
  expect_partial(StopReason::kCancelled, res.stop_reason, res.stop_detail,
                 "wd-min-period");
}

TEST(StopDetail, ConvergedRunsCarryNoDetail) {
  StopFixture fx;
  MinObsWinSolver solver(fx.g, fx.gains, fx.solver_options(Deadline()));
  const SolverResult res = solver.solve(fx.init.r);
  EXPECT_FALSE(res.partial());
  EXPECT_EQ(res.stop_reason, StopReason::kNone);
  EXPECT_TRUE(res.stop_detail.empty());
}

// ---------------------------------------------------------------------------
// Shrink: delta-debugging properties.

Netlist shrink_start() {
  RandomCircuitSpec spec;
  spec.name = "shrinkme";
  spec.gates = 30;
  spec.dffs = 10;
  spec.xor_share = 0.4;
  spec.seed = 7;
  return generate_random_circuit(spec);
}

/// Structural predicate cheap enough to shrink against exhaustively.
bool has_xor(const Netlist& nl) {
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const CellType type = nl.node(id).type;
    if (type == CellType::kXor || type == CellType::kXnor) return true;
  }
  return false;
}

TEST(Shrink, PreservesPredicateAtFixpoint) {
  const Netlist start = shrink_start();
  ASSERT_TRUE(has_xor(start));
  const ShrinkResult res = shrink_netlist(start, has_xor);
  EXPECT_TRUE(has_xor(res.netlist));
  EXPECT_TRUE(res.one_minimal);
  EXPECT_GT(res.removed, 0);
  EXPECT_LT(res.netlist.node_count(), start.node_count());
  // The kept netlist is finalized and structurally legal: solvers can run
  // on it without defensive checks (here: it rebuilds through bench I/O).
  std::stringstream io;
  write_bench(io, res.netlist);
  EXPECT_TRUE(structurally_equal(res.netlist, read_bench(io)));
}

TEST(Shrink, BudgetStopsEarlyWithoutMinimality) {
  const Netlist start = shrink_start();
  ShrinkOptions o;
  o.max_checks = 1;
  const ShrinkResult res = shrink_netlist(start, has_xor, o);
  EXPECT_TRUE(has_xor(res.netlist));
  EXPECT_FALSE(res.one_minimal);
  EXPECT_LE(res.checks, 1);
}

TEST(Shrink, RejectsNonFailingStart) {
  const Netlist start = test::tiny_pipeline();  // no XOR anywhere
  ASSERT_FALSE(has_xor(start));
  EXPECT_THROW(shrink_netlist(start, has_xor), PreconditionError);
}

// ---------------------------------------------------------------------------
// Corpus replay: committed counterexamples stay true to their sidecars.

struct CorpusEntry {
  std::string bench_path;
  bool expect_divergent = false;
};

/// The committed entries are exactly the `!name.bench` whitelist lines of
/// tests/corpus/found/.gitignore — scratch findings from local fuzz runs
/// share the directory but are ignored, so the test enumerates the
/// whitelist instead of globbing.
std::vector<CorpusEntry> committed_corpus_entries() {
  const std::string dir = std::string(SERELIN_CORPUS_DIR) + "/found";
  std::ifstream ignore(dir + "/.gitignore");
  EXPECT_TRUE(ignore.is_open()) << dir << "/.gitignore";
  std::vector<CorpusEntry> out;
  std::string line;
  while (std::getline(ignore, line)) {
    if (line.size() < 2 || line[0] != '!') continue;
    const std::string name = line.substr(1);
    if (name.size() < 6 || name.rfind(".bench") != name.size() - 6) continue;
    CorpusEntry entry;
    entry.bench_path = dir + "/" + name;
    std::ifstream sidecar(entry.bench_path + ".repro");
    EXPECT_TRUE(sidecar.is_open()) << entry.bench_path << ".repro";
    std::string sline;
    while (std::getline(sidecar, sline)) {
      if (sline.rfind("expect: ", 0) == 0)
        entry.expect_divergent = sline.substr(8) == "divergent";
    }
    out.push_back(std::move(entry));
  }
  return out;
}

TEST(CorpusReplay, EveryCommittedEntryMatchesExpectation) {
  const std::vector<CorpusEntry> entries = committed_corpus_entries();
  ASSERT_FALSE(entries.empty());
  for (const CorpusEntry& entry : entries) {
    const Netlist nl = read_bench_file(entry.bench_path);
    DiffConfig cfg;
    cfg.engine_seconds = 30.0;
    const DifferentialReport report = run_differential(nl, cfg);
    EXPECT_TRUE(report.ran) << entry.bench_path;
    EXPECT_EQ(report.divergent(), entry.expect_divergent)
        << entry.bench_path << ": " << report.summary();
  }
}

TEST(CorpusReplay, CommittedDivergencesAreOneMinimal) {
  // Shrinking an already-minimal counterexample must remove nothing: the
  // fuzzer promises 1-minimality before persisting, and committed entries
  // must not rot as the solvers evolve.
  for (const CorpusEntry& entry : committed_corpus_entries()) {
    if (!entry.expect_divergent) continue;
    const Netlist nl = read_bench_file(entry.bench_path);
    DiffConfig cfg;
    cfg.engine_seconds = 30.0;
    const DifferentialReport full = run_differential(nl, cfg);
    ASSERT_TRUE(full.divergent()) << entry.bench_path;
    // Mirror the fuzzer's shrink predicate: the candidate must show the
    // SAME divergence kind. Plain divergent() would let the shrinker
    // wander into setup-crash degenerates (a different bug entirely).
    const std::string kind = full.divergences.front().kind;
    const auto diverges = [&cfg, &kind](const Netlist& candidate) {
      const DifferentialReport r = run_differential(candidate, cfg);
      for (const Divergence& d : r.divergences)
        if (d.kind == kind) return true;
      return false;
    };
    const ShrinkResult res = shrink_netlist(nl, diverges);
    EXPECT_TRUE(res.one_minimal) << entry.bench_path;
    EXPECT_EQ(res.removed, 0) << entry.bench_path
                              << " shrank further: re-run the fuzzer's "
                                 "shrinker and refresh the entry";
  }
}

// ---------------------------------------------------------------------------
// Differential harness: clean circuits are clean, planted faults are not.

TEST(Differential, CleanOnTinyKnownCircuits) {
  for (const Netlist& nl : {test::tiny_pipeline(), test::tiny_ring(),
                            test::tiny_reconvergent()}) {
    const DifferentialReport report = run_differential(nl, DiffConfig{});
    EXPECT_TRUE(report.ran) << nl.name();
    EXPECT_FALSE(report.divergent()) << nl.name() << ": " << report.summary();
  }
}

Netlist fault_circuit() {
  RandomCircuitSpec spec;
  spec.name = "fault";
  spec.gates = 12;
  spec.dffs = 10;
  spec.pipeline_prob = 0.8;
  spec.seed = 11;
  return generate_random_circuit(spec);
}

TEST(Differential, PlantedObjectiveSkewIsCaught) {
  DiffConfig cfg;
  cfg.fault = {FaultKind::kObjectiveSkew, /*engine=*/0};
  const DifferentialReport report = run_differential(fault_circuit(), cfg);
  ASSERT_TRUE(report.divergent()) << report.summary();
}

TEST(Differential, PlantedStopDetailDropIsCaught) {
  DiffConfig cfg;
  cfg.fault = {FaultKind::kStopDetailDrop, /*engine=*/0};
  const DifferentialReport report = run_differential(fault_circuit(), cfg);
  ASSERT_TRUE(report.divergent()) << report.summary();
  bool saw_contract_violation = false;
  for (const Divergence& d : report.divergences)
    saw_contract_violation |= d.kind == "partial-without-detail";
  EXPECT_TRUE(saw_contract_violation) << report.summary();
}

TEST(Differential, TimeoutIsNotADivergence) {
  DiffConfig cfg;
  cfg.engine_seconds = 1e-9;  // every engine expires at its first poll
  const DifferentialReport report = run_differential(fault_circuit(), cfg);
  EXPECT_FALSE(report.divergent()) << report.summary();
  bool saw_timeout = false;
  for (const EngineOutcome& e : report.engines)
    saw_timeout |= e.status == EngineStatus::kTimeout;
  EXPECT_TRUE(saw_timeout) << report.summary();
}

}  // namespace
}  // namespace serelin
