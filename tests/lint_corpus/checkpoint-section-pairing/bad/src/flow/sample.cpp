// Fixture: a checkpoint section that is written but never restored —
// dead weight in every snapshot, and a resume path that silently lacks it.
#include "support/checkpoint.hpp"

namespace fx {

void save(Image& img) {
  img.sections.emplace_back("orphan", 0, 0);  // line 8: no consumer
}

}  // namespace fx
