// Fixture: restore half — consumes the section `save` writes.
#include "support/checkpoint.hpp"

namespace fx {

bool load(const Image& img) {
  return img.find("orphan") != nullptr;
}

}  // namespace fx
