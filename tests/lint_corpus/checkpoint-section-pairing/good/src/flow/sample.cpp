// Fixture: writer half of a properly paired checkpoint section.
#include "support/checkpoint.hpp"

namespace fx {

void save(Image& img) {
  img.sections.emplace_back("orphan", 0, 0);
}

}  // namespace fx
