// Fixture: iterating a hash map in a reduction path — the sum is the same
// but anything order-sensitive (tie-breaks, float accumulation) is not.
#include <string>
#include <unordered_map>

double reduce(const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  std::unordered_map<std::string, double> local = weights;
  for (const auto& kv : local) {  // line 9: serelin-no-unordered-range-for
    total += kv.second;
  }
  return total;
}
