// Fixture: ordered iteration is fine, and unordered containers may be
// used for O(1) lookup as long as nothing iterates them by range-for.
#include <map>
#include <string>
#include <unordered_map>

double reduce(const std::map<std::string, double>& weights) {
  std::unordered_map<std::string, double> index(weights.begin(),
                                                weights.end());
  double total = 0.0;
  for (const auto& kv : weights) {
    total += kv.second + index.at(kv.first);
  }
  return total;
}
