// Fixture: the same solve loop, but every iteration polls the deadline,
// so an expiry or cancellation interrupts it promptly.
namespace fx {

int relax_all(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += i;
  return acc;
}

int converge(const Deadline& deadline, int n) {
  int total = 0;
  bool again = true;
  while (again) {
    if (deadline.expired()) break;
    total += relax_all(n);
    again = total < 1000;
  }
  return total;
}

}  // namespace fx
