// Fixture: an open-ended solve loop that does real indexed work through
// its callee but never reaches a Deadline/CancelToken poll — cancellation
// can never land.
namespace fx {

int relax_all(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += i;
  return acc;
}

int converge(int n) {
  int total = 0;
  bool again = true;
  while (again) {  // line 15: unbounded, works, never polls
    total += relax_all(n);
    again = total < 1000;
  }
  return total;
}

}  // namespace fx
