// Fixture: the classic determinism bug — an unseeded library RNG.
#include <cstdlib>

int draw() {
  return std::rand();  // line 5: serelin-no-unseeded-random fires here
}
