// Fixture: randomness through an explicit seeded stream is fine. Comments
// and strings mentioning std::rand or random_device must not trip the rule.
const char* describe() { return "not std::rand, honest"; }

int draw(int seed) { return seed * 2654435761; }
