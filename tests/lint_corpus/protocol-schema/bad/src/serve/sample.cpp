// Fixture: the handler emits a response field the schema tables never
// mention — clients cannot know it exists.
namespace fx {

void handle(const Message& msg, Message& out) {
  const double period = msg.get_number("period");
  out.set("oops", period);  // line 7: undocumented field
}

}  // namespace fx
