// Fixture: every field the handler touches appears in the registry.
namespace fx {

void handle(const Message& msg, Message& out) {
  const double period = msg.get_number("period");
  out.set("oops", period);
}

}  // namespace fx
