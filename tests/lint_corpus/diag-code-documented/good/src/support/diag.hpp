// Fixture: codes named and documented.
#pragma once

namespace serelin {

enum class DiagCode : int {
  kAlpha,  ///< first
  kBeta,   ///< second
};

const char* diag_code_name(DiagCode code);

}  // namespace serelin
