#include "support/diag.hpp"

namespace serelin {

const char* diag_code_name(DiagCode code) {
  switch (code) {
    case DiagCode::kAlpha: return "alpha";
    case DiagCode::kBeta: return "beta";  // line 8: serelin-diag-code-documented
  }
  return "unknown";
}

}  // namespace serelin
