// Fixture: artifact written with a raw ofstream instead of the durable
// path. A crash mid-write leaves a torn file the next run will read.
#include <fstream>
#include <string>

void dump_report(const std::string& path, const std::string& body) {
  std::ofstream out(path);  // line 7: serelin-no-bare-artifact-write fires
  out << body;
}
