// Fixture: durable writes go through atomic_write_file, reads through
// ifstream / fopen("rb"); neither may trip the rule, and neither may
// prose naming ofstream in comments or strings.
#include "support/atomic_io.hpp"

#include <cstdio>
#include <fstream>
#include <string>

const char* write_note() { return "never a bare ofstream here"; }

void dump_report(const std::string& path, const std::string& body) {
  serelin::atomic_write_file(path, body);
}

std::string read_report(const std::string& path) {
  std::ifstream in(path);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f) std::fclose(f);
  return body;
}
