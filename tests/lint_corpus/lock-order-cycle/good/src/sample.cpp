// Fixture: the same two call sites, but both respect one global order
// (g_a before g_b), so the acquisition graph is acyclic.
namespace fx {

Mutex g_a;
Mutex g_b;

void take_ab() {
  MutexLock la(g_a);
  MutexLock lb(g_b);
}

void take_ab_again() {
  MutexLock la(g_a);
  MutexLock lb(g_b);
}

}  // namespace fx
