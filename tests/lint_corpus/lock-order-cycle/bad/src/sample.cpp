// Fixture: inverted lock order. take_ab holds g_a while acquiring g_b;
// take_ba holds g_b while acquiring g_a — the classic AB/BA deadlock.
namespace fx {

Mutex g_a;
Mutex g_b;

void take_ab() {
  MutexLock la(g_a);
  MutexLock lb(g_b);  // line 10: edge g_a -> g_b
}

void take_ba() {
  MutexLock lb(g_b);
  MutexLock la(g_a);  // line 15: edge g_b -> g_a, closing the cycle
}

}  // namespace fx
