// Fixture: every enumerator has a diag_code_name entry in diag.cpp.
#pragma once

namespace serelin {

enum class DiagCode : int {
  kAlpha,  ///< first
  kBeta,   ///< second
};

const char* diag_code_name(DiagCode code);

}  // namespace serelin
