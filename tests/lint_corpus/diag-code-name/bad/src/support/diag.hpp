// Fixture: kGamma is declared but diag.cpp never names it.
#pragma once

namespace serelin {

enum class DiagCode : int {
  kAlpha,  ///< first
  kGamma,  ///< line 8: serelin-diag-code-name fires here
};

const char* diag_code_name(DiagCode code);

}  // namespace serelin
