#include "support/diag.hpp"

namespace serelin {

const char* diag_code_name(DiagCode code) {
  switch (code) {
    case DiagCode::kAlpha: return "alpha";
    default: return "unknown";  // kGamma forgotten — the linter objects
  }
}

}  // namespace serelin
