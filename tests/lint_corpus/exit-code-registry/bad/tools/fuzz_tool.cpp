// Fixture: a second tool whose codes are all documented — only
// serelin_cli.cpp's undocumented 65 may be reported, exactly once.
#include <cstdlib>

int scan(int argc) {
  if (argc < 2) return 64;
  return 0;
}
