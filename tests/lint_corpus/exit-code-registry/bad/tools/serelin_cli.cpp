// Fixture: exits with a code the registry table does not document.
#include <cstdlib>

int run(int argc) {
  if (argc < 2) return 64;
  if (argc > 9) {
    return 65;  // line 7: serelin-exit-code-registry fires here
  }
  return 0;
}
