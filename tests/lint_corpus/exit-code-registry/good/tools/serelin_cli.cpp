// Fixture: every exit code used is documented and vice versa.
#include <cstdlib>

int run(int argc) {
  if (argc < 2) return 64;
  if (argc > 9) return 65;
  return 0;
}
