// Fixture: a second tool — the registry rule unions codes over every
// tools/*.cpp, so 77 here must be documented just like serelin_cli's codes.
#include <cstdlib>

int scan(int divergences) {
  if (divergences > 0) return 77;
  return 0;
}
