// Fixture: NOLINT suppression — both forms must silence the finding, and
// a NOLINT for a *different* rule must not.
#include <cstdlib>

int draws() {
  int a = std::rand();  // NOLINT(serelin-no-unseeded-random) fixture: suppressed
  int b = std::rand();  // NOLINT fixture: bare form suppresses everything
  int c = std::rand();  // NOLINT(serelin-no-wallclock) line 8: wrong rule, still fires
  return a + b + c;
}
