// Fixture: pure arguments — reads, arithmetic, comparisons, even a
// multi-line argument — are all fine.
#define SERELIN_COUNT(counter, n) ((void)(n))
#define SERELIN_SPAN(name) ((void)sizeof(name))

int count(int work, int scale) {
  SERELIN_SPAN(work > 0 ? "solver/hot" : "solver/cold");
  SERELIN_COUNT(kSolverIterations,
                static_cast<long>(work) * (scale == 0 ? 1 : scale));
  return work;
}
