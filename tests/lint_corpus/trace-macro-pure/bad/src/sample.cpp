// Fixture: a side-effecting argument vanishes under SERELIN_TRACE=OFF,
// silently changing program behavior between build configurations.
#define SERELIN_COUNT(counter, n) ((void)(n))

int count_and_bump(int work) {
  SERELIN_COUNT(kSolverIterations, ++work);  // line 6: serelin-trace-macro-pure
  return work;
}
