// Fixture: seeding from the wall clock makes runs irreproducible.
#include <ctime>

long stamp() {
  return time(nullptr);  // line 5: serelin-no-wallclock fires here
}
