// Fixture: steady_clock is allowed (monotonic, used by Stopwatch and
// Deadline); only wall-clock sources are banned. The word system_clock in
// this comment must not trip the rule.
#include <chrono>

long ticks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
