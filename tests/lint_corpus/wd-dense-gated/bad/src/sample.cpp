// Fixture: solver code constructing the dense W/D engine directly instead
// of going through make_wd_query (which gates it by circuit size).
#include "core/wd_matrices.hpp"

void plan(const serelin::RetimingGraph& g) {
  serelin::WdMatrices wd(g);  // line 6: serelin-wd-dense-gated fires here
  (void)wd;
}
