// Fixture: W/D access through the size-gated query interface is fine, and
// comments or strings naming WdMatrices must not trip the rule.
#include "core/wd_query.hpp"

const char* engine_note() { return "WdMatrices stays behind the gate"; }

void plan(const serelin::RetimingGraph& g) {
  auto wd = serelin::make_wd_query(g, {});
  (void)wd;
}
