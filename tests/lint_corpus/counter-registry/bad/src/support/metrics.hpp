// Fixture: two counters; the doc table below documents only one.
namespace fx {

enum class Counter {
  kFoo,
  kBarBaz,
  kCount
};

}  // namespace fx
