// Fixture: name table is complete and kebab-correct; the defect is the
// missing doc row for bar-baz.
namespace fx {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kFoo: return "foo";
    case Counter::kBarBaz: return "bar-baz";  // line 8: not documented
    case Counter::kCount: break;
  }
  return "unknown";
}

}  // namespace fx
