// Fixture: complete name table matching the doc registry.
namespace fx {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kFoo: return "foo";
    case Counter::kBarBaz: return "bar-baz";
    case Counter::kCount: break;
  }
  return "unknown";
}

}  // namespace fx
