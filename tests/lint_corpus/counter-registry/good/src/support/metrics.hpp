// Fixture: two counters, both documented.
namespace fx {

enum class Counter {
  kFoo,
  kBarBaz,
  kCount
};

}  // namespace fx
