// Fixture: self-sufficient header — includes everything it names.
#pragma once

#include <string>

inline std::string greet() { return "hi"; }
