// Fixture: uses std::string but forgets <string> — compiles only when the
// including TU happened to pull the header in first. Line 1 carries the
// finding (the rule anchors whole-header problems there).
#pragma once

inline std::string greet() { return "hi"; }
