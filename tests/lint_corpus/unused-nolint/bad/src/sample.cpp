// Fixture: a stale suppression — nothing on the marked line can trip the
// named rule, so the marker only hides future regressions.
namespace fx {

int width() {
  return 3;  // NOLINT(serelin-no-wallclock) line 6: suppresses nothing
}

}  // namespace fx
