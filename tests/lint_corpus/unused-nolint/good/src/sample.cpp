// Fixture: a live suppression — the marker consumes a real finding, so
// it is not stale.
#include <ctime>

namespace fx {

long stamp() {
  return std::time(nullptr);  // NOLINT(serelin-no-wallclock) deliberate
}

}  // namespace fx
