// serelin_lint contract tests: every rule fires exactly where the fixture
// says it should, suppression works, and the real tree is clean.
//
// The linter is exercised as a subprocess — the same binary, flags and
// exit codes CI's `static` stage uses (tools/verify.sh), so these tests
// pin the *tool contract*, not internal helpers. Fixture trees live under
// tests/lint_corpus/<rule>/{good,bad}/ (docs/STATIC_ANALYSIS.md).
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace {

struct LintRun {
  int code = -1;
  std::string out;  // stdout + stderr merged
};

LintRun run_lint(const std::string& args) {
  const std::string cmd = std::string(SERELIN_LINT_BIN) + " " + args + " 2>&1";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  char buf[4096];
  while (fgets(buf, sizeof buf, pipe) != nullptr) run.out += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) run.code = WEXITSTATUS(status);
  return run;
}

std::string corpus(const std::string& sub) {
  return std::string(SERELIN_LINT_CORPUS_DIR) + "/" + sub;
}

constexpr const char* kAllRules[] = {
    "no-unseeded-random",   "no-wallclock",
    "no-unordered-range-for", "wd-dense-gated",
    "no-bare-artifact-write", "diag-code-name",
    "diag-code-documented", "exit-code-registry",
    "trace-macro-pure",     "header-self-sufficient",
    "lock-order-cycle",     "deadline-poll-coverage",
    "checkpoint-section-pairing", "counter-registry",
    "protocol-schema",      "unused-nolint",
};

}  // namespace

TEST(LintCorpus, ListRulesShowsTheFullCatalogue) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.code, 0);
  for (const char* rule : kAllRules)
    EXPECT_NE(run.out.find(std::string("serelin-") + rule),
              std::string::npos)
        << "missing rule in --list-rules: " << rule;
}

TEST(LintCorpus, EachLexicalRuleFiresExactlyWhereExpected) {
  struct Case {
    const char* rule;
    const char* anchor;  // expected "<file>:<line>" of the one finding
  };
  const Case cases[] = {
      {"no-unseeded-random", "src/sample.cpp:5"},
      {"no-wallclock", "src/sample.cpp:5"},
      {"no-unordered-range-for", "src/core/sample.cpp:9"},
      {"wd-dense-gated", "src/sample.cpp:6"},
      {"no-bare-artifact-write", "src/sample.cpp:7"},
      {"diag-code-name", "src/support/diag.hpp:8"},
      {"diag-code-documented", "src/support/diag.cpp:8"},
      {"exit-code-registry", "tools/serelin_cli.cpp:7"},
      {"trace-macro-pure", "src/sample.cpp:6"},
  };
  for (const Case& c : cases) {
    const LintRun bad = run_lint("--no-compile-checks --root " +
                                 corpus(std::string(c.rule) + "/bad"));
    EXPECT_EQ(bad.code, 1) << c.rule << " bad fixture:\n" << bad.out;
    EXPECT_NE(bad.out.find(std::string(c.anchor) + ": serelin-" + c.rule +
                           ":"),
              std::string::npos)
        << c.rule << " did not fire at " << c.anchor << ":\n" << bad.out;
    EXPECT_NE(bad.out.find("1 finding(s)"), std::string::npos)
        << c.rule << " bad fixture must yield exactly one finding:\n"
        << bad.out;

    const LintRun good = run_lint("--no-compile-checks --root " +
                                  corpus(std::string(c.rule) + "/good"));
    EXPECT_EQ(good.code, 0) << c.rule << " good fixture:\n" << good.out;
    EXPECT_NE(good.out.find("0 finding(s)"), std::string::npos);
  }
}

// The flow-aware and registry-pairing passes: each bad fixture plants one
// contract violation and the finding must land on the planted line; the
// matching good fixture differs only in honoring the contract.
TEST(LintCorpus, EachContractPassFiresExactlyWhereExpected) {
  struct Case {
    const char* rule;
    const char* anchor;  // expected "<file>:<line>" of the one finding
  };
  const Case cases[] = {
      {"lock-order-cycle", "src/sample.cpp:10"},
      {"deadline-poll-coverage", "src/core/sample.cpp:15"},
      {"checkpoint-section-pairing", "src/flow/sample.cpp:8"},
      {"counter-registry", "src/support/metrics.cpp:8"},
      {"protocol-schema", "src/serve/sample.cpp:7"},
      {"unused-nolint", "src/sample.cpp:6"},
  };
  for (const Case& c : cases) {
    const LintRun bad = run_lint("--no-compile-checks --root " +
                                 corpus(std::string(c.rule) + "/bad"));
    EXPECT_EQ(bad.code, 1) << c.rule << " bad fixture:\n" << bad.out;
    EXPECT_NE(bad.out.find(std::string(c.anchor) + ": serelin-" + c.rule +
                           ":"),
              std::string::npos)
        << c.rule << " did not fire at " << c.anchor << ":\n" << bad.out;
    EXPECT_NE(bad.out.find("1 finding(s)"), std::string::npos)
        << c.rule << " bad fixture must yield exactly one finding:\n"
        << bad.out;

    const LintRun good = run_lint("--no-compile-checks --root " +
                                  corpus(std::string(c.rule) + "/good"));
    EXPECT_EQ(good.code, 0) << c.rule << " good fixture:\n" << good.out;
    EXPECT_NE(good.out.find("0 finding(s)"), std::string::npos);
  }
}

// The inverted-cycle witness must name both edges so the report is
// actionable without re-running anything.
TEST(LintCorpus, LockOrderCycleReportNamesBothEdges) {
  const LintRun bad =
      run_lint("--no-compile-checks --root " + corpus("lock-order-cycle/bad"));
  EXPECT_NE(bad.out.find("src/sample.cpp:10"), std::string::npos) << bad.out;
  EXPECT_NE(bad.out.find("src/sample.cpp:15"), std::string::npos) << bad.out;
  EXPECT_NE(bad.out.find("g_a"), std::string::npos) << bad.out;
  EXPECT_NE(bad.out.find("g_b"), std::string::npos) << bad.out;
}

TEST(LintCorpus, OnlyFilterRestrictsReportingToNamedFiles) {
  // The violation is in src/sample.cpp; asking only about another file
  // reports nothing (but analysis still ran whole-tree).
  const LintRun miss =
      run_lint("--no-compile-checks --only src/other.cpp --root " +
               corpus("no-unseeded-random/bad"));
  EXPECT_EQ(miss.code, 0) << miss.out;
  const LintRun hit =
      run_lint("--no-compile-checks --only src/sample.cpp --root " +
               corpus("no-unseeded-random/bad"));
  EXPECT_EQ(hit.code, 1) << hit.out;
  EXPECT_NE(hit.out.find("src/sample.cpp:5"), std::string::npos) << hit.out;
}

TEST(LintCorpus, HeaderSelfSufficiencyCompileCheck) {
  const std::string cxx = std::string(" --cxx \"") + SERELIN_CXX + "\"";
  const LintRun bad =
      run_lint("--root " + corpus("header-self-sufficient/bad") + cxx);
  EXPECT_EQ(bad.code, 1) << bad.out;
  EXPECT_NE(bad.out.find("src/sample.hpp:1: serelin-header-self-sufficient"),
            std::string::npos)
      << bad.out;

  const LintRun good =
      run_lint("--root " + corpus("header-self-sufficient/good") + cxx);
  EXPECT_EQ(good.code, 0) << good.out;
}

TEST(LintCorpus, NolintSuppressesOnlyTheNamedRule) {
  const LintRun run =
      run_lint("--no-compile-checks --root " + corpus("nolint"));
  EXPECT_EQ(run.code, 1) << run.out;
  // Lines 6 (named rule) and 7 (bare NOLINT) are suppressed; line 8 names
  // a different rule, so its finding survives — and because that marker
  // suppressed nothing, it is itself flagged as stale.
  EXPECT_EQ(run.out.find("sample.cpp:6"), std::string::npos) << run.out;
  EXPECT_EQ(run.out.find("sample.cpp:7"), std::string::npos) << run.out;
  EXPECT_NE(run.out.find("src/sample.cpp:8: serelin-no-unseeded-random"),
            std::string::npos)
      << run.out;
  EXPECT_NE(run.out.find("src/sample.cpp:8: serelin-unused-nolint"),
            std::string::npos)
      << run.out;
  EXPECT_NE(run.out.find("2 finding(s)"), std::string::npos) << run.out;
}

TEST(LintCorpus, RuleFilterRestrictsTheRun) {
  const LintRun run =
      run_lint("--no-compile-checks --rule serelin-no-wallclock --root " +
               corpus("no-unseeded-random/bad"));
  EXPECT_EQ(run.code, 0) << run.out;  // the only violation is filtered out
}

TEST(LintCorpus, UsageErrorsExit64) {
  EXPECT_EQ(run_lint("--definitely-not-a-flag").code, 64);
  EXPECT_EQ(run_lint("--rule no-such-rule").code, 64);
  EXPECT_EQ(run_lint("--root /nonexistent-serelin-root").code, 64);
}

// The acceptance gate: the shipped tree has zero findings. Compile checks
// are skipped here (LintHeaders below covers them at slow-label cost).
TEST(LintTree, RealTreeIsCleanUnderAllLexicalRules) {
  const LintRun run = run_lint(std::string("--no-compile-checks --root ") +
                               SERELIN_REPO_ROOT);
  EXPECT_EQ(run.code, 0) << run.out;
  EXPECT_NE(run.out.find("0 finding(s)"), std::string::npos) << run.out;
}

// Slow label (one -fsyntax-only compile per header; see tests/CMakeLists).
TEST(LintHeaders, EveryHeaderCompilesStandalone) {
  const LintRun run = run_lint(
      std::string("--rule header-self-sufficient --cxx \"") + SERELIN_CXX +
      "\" --root " + SERELIN_REPO_ROOT);
  EXPECT_EQ(run.code, 0) << run.out;
}
