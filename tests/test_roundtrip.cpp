// Writer/parser round-trip tests: parse -> write -> reparse must preserve
// name-keyed structure (structurally_equal, src/netlist/validate.hpp) for
// both formats, over the clean example circuits and the deliberately
// broken recovery corpus (whose repaired netlists must serialize to
// strictly valid text).
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/validate.hpp"
#include "support/diag.hpp"

namespace serelin {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> circuits_in(const std::string& dir,
                                  const std::string& ext) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file() && entry.path().extension() == ext)
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

/// Serializes `nl` in its own format and strictly reparses the text; the
/// result must be structurally identical.
void expect_roundtrip(const Netlist& nl, bool use_blif) {
  std::ostringstream out;
  if (use_blif)
    write_blif(out, nl);
  else
    write_bench(out, nl);

  std::istringstream in(out.str());
  DiagnosticSink sink;
  const Netlist back = use_blif ? read_blif(in, nl.name(), sink)
                                : read_bench(in, nl.name(), sink);
  EXPECT_EQ(sink.error_count(), 0u)
      << "written text did not reparse cleanly: " << sink.summary();

  std::string why;
  EXPECT_TRUE(structurally_equal(nl, back, &why)) << why;
}

TEST(RoundTrip, BenchExamples) {
  const auto files = circuits_in(SERELIN_EXAMPLES_DIR, ".bench");
  ASSERT_FALSE(files.empty());
  for (const fs::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    expect_roundtrip(read_bench_file(path.string()), /*use_blif=*/false);
  }
}

TEST(RoundTrip, BlifExamples) {
  const auto files = circuits_in(SERELIN_EXAMPLES_DIR, ".blif");
  ASSERT_FALSE(files.empty());
  for (const fs::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    expect_roundtrip(read_blif_file(path.string()), /*use_blif=*/true);
  }
}

TEST(RoundTrip, RecoveredCorpusSerializesCleanly) {
  for (const char* ext : {".bench", ".blif"}) {
    for (const fs::path& path : circuits_in(SERELIN_CORPUS_DIR, ext)) {
      SCOPED_TRACE(path.filename().string());
      DiagnosticSink sink;
      const Netlist nl =
          ext == std::string(".blif")
              ? read_blif_file(path.string(), sink)
              : read_bench_file(path.string(), sink);
      // Whatever recovery salvaged, the writer must produce text the
      // strict parser accepts and that rebuilds the same structure.
      expect_roundtrip(nl, ext == std::string(".blif"));
    }
  }
}

TEST(RoundTrip, StructuralEqualityIsNameKeyedNotOrderKeyed) {
  std::istringstream a_text(
      "INPUT(x)\nINPUT(y)\nOUTPUT(o)\n"
      "g = AND(x, y)\no = NOT(g)\n");
  std::istringstream b_text(
      "# same circuit, different declaration order\n"
      "OUTPUT(o)\no = NOT(g)\ng = AND(x, y)\n"
      "INPUT(y)\nINPUT(x)\n");
  const Netlist a = read_bench(a_text, "a");
  const Netlist b = read_bench(b_text, "b");
  std::string why;
  EXPECT_TRUE(structurally_equal(a, b, &why)) << why;

  std::istringstream c_text(
      "INPUT(x)\nINPUT(y)\nOUTPUT(o)\n"
      "g = OR(x, y)\no = NOT(g)\n");
  const Netlist c = read_bench(c_text, "c");
  EXPECT_FALSE(structurally_equal(a, c, &why));
  EXPECT_NE(why.find("'g'"), std::string::npos) << why;
}

}  // namespace
}  // namespace serelin
