#include <gtest/gtest.h>

#include <sstream>

#include "helpers.hpp"
#include "netlist/bench_io.hpp"
#include "support/check.hpp"

namespace serelin {
namespace {

constexpr const char* kS27Like = R"(
# A small ISCAS89-style circuit (s27 flavour).
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
)";

TEST(BenchIO, ParsesIscasStyle) {
  std::istringstream in(kS27Like);
  const Netlist nl = read_bench(in, "s27");
  EXPECT_EQ(nl.name(), "s27");
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dff_count(), 3u);
  EXPECT_EQ(nl.gate_count(), 10u);
  EXPECT_EQ(nl.node(nl.find("G9")).type, CellType::kNand);
  EXPECT_EQ(nl.node(nl.find("G9")).fanins.size(), 2u);
}

TEST(BenchIO, RoundTripsExactly) {
  std::istringstream in(kS27Like);
  const Netlist nl = read_bench(in, "s27");
  std::ostringstream out;
  write_bench(out, nl);
  std::istringstream in2(out.str());
  const Netlist nl2 = read_bench(in2, "s27");
  ASSERT_EQ(nl2.node_count(), nl.node_count());
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& a = nl.node(id);
    const NodeId id2 = nl2.find(a.name);
    ASSERT_NE(id2, kNullNode) << a.name;
    const Node& b = nl2.node(id2);
    EXPECT_EQ(a.type, b.type) << a.name;
    ASSERT_EQ(a.fanins.size(), b.fanins.size()) << a.name;
    for (std::size_t k = 0; k < a.fanins.size(); ++k)
      EXPECT_EQ(nl.node(a.fanins[k]).name, nl2.node(b.fanins[k]).name);
  }
  EXPECT_EQ(nl2.outputs().size(), nl.outputs().size());
}

TEST(BenchIO, HandlesWhitespaceAndComments) {
  std::istringstream in(
      "  INPUT( a )\n"
      "# full-line comment\n"
      "OUTPUT(z)   # trailing comment\n"
      "\n"
      "z = NAND( a , a )  // c++-style comment\n");
  const Netlist nl = read_bench(in);
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.node(nl.find("z")).fanins.size(), 2u);
}

TEST(BenchIO, AcceptsForwardReferences) {
  std::istringstream in(
      "INPUT(x)\n"
      "OUTPUT(q)\n"
      "q = DFF(d)\n"      // d defined later
      "d = AND(x, q)\n");  // feedback through the DFF
  EXPECT_NO_THROW(read_bench(in));
}

TEST(BenchIO, Constants) {
  std::istringstream in(
      "INPUT(x)\nOUTPUT(z)\nc1 = CONST1()\nz = AND(x, c1)\n");
  const Netlist nl = read_bench(in);
  EXPECT_EQ(nl.node(nl.find("c1")).type, CellType::kConst1);
}

struct BadInput {
  const char* label;
  const char* text;
};

class BenchIOErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(BenchIOErrors, Throws) {
  std::istringstream in(GetParam().text);
  EXPECT_THROW(read_bench(in), ParseError) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BenchIOErrors,
    ::testing::Values(
        BadInput{"missing_paren", "INPUT x\n"},
        BadInput{"unknown_gate", "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n"},
        BadInput{"input_on_rhs", "INPUT(a)\nOUTPUT(z)\nz = INPUT(a)\n"},
        BadInput{"two_arg_output", "OUTPUT(a, b)\n"},
        BadInput{"dff_two_fanins",
                 "INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n"},
        BadInput{"const_with_fanin",
                 "INPUT(a)\nOUTPUT(z)\nz = CONST0(a)\n"},
        BadInput{"undefined_signal", "INPUT(a)\nOUTPUT(z)\nz = NOT(b)\n"},
        BadInput{"redefined_signal",
                 "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = BUF(a)\n"},
        BadInput{"comb_cycle",
                 "INPUT(a)\nOUTPUT(p)\np = AND(a, q)\nq = BUF(p)\n"},
        BadInput{"missing_name", " = NOT(a)\n"},
        BadInput{"unknown_directive", "WIBBLE(a)\n"}));

TEST(BenchIO, FileRoundTrip) {
  const Netlist nl = test::tiny_ring();
  const std::string path = ::testing::TempDir() + "/serelin_ring.bench";
  write_bench_file(path, nl);
  const Netlist nl2 = read_bench_file(path);
  EXPECT_EQ(nl2.name(), "serelin_ring");
  EXPECT_EQ(nl2.node_count(), nl.node_count());
  EXPECT_EQ(nl2.dff_count(), nl.dff_count());
}

TEST(BenchIO, MissingFileThrows) {
  EXPECT_THROW(read_bench_file("/nonexistent/nope.bench"), ParseError);
}

}  // namespace
}  // namespace serelin
