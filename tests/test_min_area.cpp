// Tests of min-area retiming — the iMinArea problem of [20], instantiated
// from the MinObsWin machinery with unit observability.
#include <gtest/gtest.h>

#include "core/min_area.hpp"
#include "core/exhaustive.hpp"
#include "core/initializer.hpp"
#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "sim/graph_sim.hpp"
#include "support/rng.hpp"

namespace serelin {
namespace {

TEST(MinArea, GainsAreDegreeDifferences) {
  const Netlist nl = test::tiny_reconvergent();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const ObsGains gains = area_gains(g);
  for (VertexId v : g.gate_vertices()) {
    EXPECT_EQ(gains.gain[v],
              static_cast<std::int64_t>(g.in_edges(v).size()) -
                  static_cast<std::int64_t>(g.out_edges(v).size()));
  }
}

TEST(MinArea, MergesParallelRegisters) {
  // Two registers on the fanins of an AND merge into one at its output.
  NetlistBuilder nb("merge");
  nb.input("x");
  nb.input("y");
  nb.dff("ra", "px");
  nb.dff("rb", "py");
  nb.gate("px", CellType::kBuf, {"x"});
  nb.gate("py", CellType::kBuf, {"y"});
  nb.gate("g", CellType::kAnd, {"ra", "rb"});
  nb.gate("h", CellType::kBuf, {"g"});
  nb.output("h");
  const Netlist nl = nb.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const TimingParams tp{20.0, 0.0, 2.0};
  const MinAreaResult res =
      min_area_retime(g, tp, g.zero_retiming(), 0.0);
  EXPECT_EQ(res.positions_before, 2);
  EXPECT_EQ(res.positions_after, 1);
  EXPECT_EQ(res.ffs_after, 1);
  EXPECT_TRUE(test::feasible(g, res.solver.r, tp, 0.0));
}

TEST(MinArea, RespectsPeriodConstraint) {
  // The merge is illegal when removing the input-side registers would
  // expose a combinational prefix longer than the period: after the move
  // the path x -> px1..px3 -> g runs 1+1+1+2 = 5.
  NetlistBuilder nb("tight");
  nb.input("x");
  nb.input("y");
  nb.gate("px1", CellType::kBuf, {"x"});
  nb.gate("px2", CellType::kBuf, {"px1"});
  nb.gate("px3", CellType::kBuf, {"px2"});
  nb.gate("py", CellType::kBuf, {"y"});
  nb.dff("ra", "px3");
  nb.dff("rb", "py");
  nb.gate("g", CellType::kAnd, {"ra", "rb"});
  nb.gate("h", CellType::kAnd, {"g", "x"});
  nb.output("h");
  const Netlist nl = nb.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const MinAreaResult tight =
      min_area_retime(g, {4.0, 0.0, 2.0}, g.zero_retiming());
  EXPECT_EQ(tight.positions_after, tight.positions_before);
  const MinAreaResult loose =
      min_area_retime(g, {7.0, 0.0, 2.0}, g.zero_retiming());
  EXPECT_LT(loose.positions_after, loose.positions_before);
}

TEST(MinArea, MatchesExhaustiveOnTinyCircuits) {
  for (int seed = 1; seed <= 12; ++seed) {
    RandomCircuitSpec spec;
    spec.gates = 8;
    spec.dffs = 5;
    spec.inputs = 3;
    spec.outputs = 2;
    spec.mean_fanin = 1.8;
    spec.window = 4;
    spec.seed = static_cast<std::uint64_t>(seed) * 9176ULL;
    const Netlist nl = generate_random_circuit(spec);
    CellLibrary lib;
    RetimingGraph g(nl, lib);
    const InitResult init = initialize_retiming(g, {});
    const ObsGains gains = area_gains(g);
    SolverOptions opt;
    opt.timing = init.timing;
    opt.rmin = 0.0;
    opt.enforce_elw = false;
    const auto exact = exhaustive_best(g, gains, opt, init.r, 4);
    const MinAreaResult res = min_area_retime(g, init.timing, init.r);
    EXPECT_EQ(res.solver.objective_gain, exact.objective_gain)
        << "seed " << seed;
  }
}

TEST(MinArea, PreservesFunctionality) {
  RandomCircuitSpec spec;
  spec.gates = 100;
  spec.dffs = 30;
  spec.inputs = 6;
  spec.outputs = 6;
  spec.seed = 404;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});
  const MinAreaResult res = min_area_retime(g, init.timing, init.r);
  const EdgeState s0 = zero_edge_state(g, init.r, 1);
  const EdgeState s1 = decompose_forward(g, init.r, res.solver.r, s0, 1);
  GraphStateSimulator a(g, init.r, s0, 1);
  GraphStateSimulator b(g, res.solver.r, s1, 1);
  Rng ra(11), rb(11);
  for (int cycle = 0; cycle < 16; ++cycle) {
    a.randomize_sources(ra);
    b.randomize_sources(rb);
    a.cycle();
    b.cycle();
    ASSERT_EQ(a.sink_values(), b.sink_values()) << "cycle " << cycle;
  }
}

TEST(MinArea, HoldBoundLimitsMerging) {
  // With rmin above the post-merge short path the merge is refused.
  NetlistBuilder nb("hold");
  nb.input("x");
  nb.input("y");
  nb.gate("px", CellType::kBuf, {"x"});
  nb.gate("py", CellType::kBuf, {"y"});
  nb.dff("ra", "px");
  nb.dff("rb", "py");
  nb.gate("g", CellType::kAnd, {"ra", "rb"});
  nb.gate("h", CellType::kBuf, {"g"});
  nb.output("h");
  const Netlist nl = nb.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  // After the merge the register would sit on (g, h): short path d(h)=1.
  const MinAreaResult blocked =
      min_area_retime(g, {20.0, 0.0, 2.0}, g.zero_retiming(), /*rmin=*/2.0);
  EXPECT_EQ(blocked.positions_after, blocked.positions_before);
  const MinAreaResult allowed =
      min_area_retime(g, {20.0, 0.0, 2.0}, g.zero_retiming(), /*rmin=*/1.0);
  EXPECT_LT(allowed.positions_after, allowed.positions_before);
}

}  // namespace
}  // namespace serelin
