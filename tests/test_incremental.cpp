// Tests of incremental timing relabeling (GraphTiming::update) and the
// dirty-set constraint scan: update() must be bit-identical to a fresh
// compute() over arbitrary valid move sequences, must leave labels intact
// on P0-invalid retimings, and the delta-driven find_violations must
// reproduce the full-scan batch whenever the labeled baseline was
// violation-free (the solver invariant).
#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/cell_library.hpp"
#include "support/parallel.hpp"
#include "timing/constraints.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {
namespace {

RandomCircuitSpec seeded_spec(int seed) {
  RandomCircuitSpec spec;
  spec.gates = 150;
  spec.dffs = 40;
  spec.inputs = 6;
  spec.outputs = 6;
  spec.mean_fanin = 1.9;
  spec.seed = static_cast<std::uint64_t>(seed) * 6700417ULL + 11;
  return spec;
}

/// A ±1 move of `v` keeps every incident w_r non-negative?
bool move_valid(const RetimingGraph& g, const Retiming& r, VertexId v,
                bool inc) {
  const auto& edges = inc ? g.out_edges(v) : g.in_edges(v);
  for (EdgeId e : edges)
    if (g.wr(e, r) < 1) return false;
  return true;
}

/// Bit-exact label comparison between two GraphTiming instances.
void expect_labels_equal(const RetimingGraph& g, const GraphTiming& a,
                         const GraphTiming& b, const char* what) {
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    ASSERT_EQ(a.arrival(v), b.arrival(v)) << what << " arrival v=" << v;
    ASSERT_EQ(a.max_after(v), b.max_after(v)) << what << " max_after v=" << v;
    ASSERT_EQ(a.min_after(v), b.min_after(v)) << what << " min_after v=" << v;
    ASSERT_EQ(a.lt(v), b.lt(v)) << what << " lt v=" << v;
    ASSERT_EQ(a.rt(v), b.rt(v)) << what << " rt v=" << v;
    ASSERT_EQ(a.crit_min_edge(v), b.crit_min_edge(v))
        << what << " crit_min_edge v=" << v;
  }
}

TEST(IncrementalTiming, FirstUpdateFallsBackToFullCompute) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  GraphTiming t(g, {4.0, 0.0, 1.0});
  const Retiming r = g.zero_retiming();
  const TimingDelta& d = t.update(r);
  EXPECT_TRUE(d.full);
  GraphTiming ref(g, {4.0, 0.0, 1.0});
  ref.compute(r);
  expect_labels_equal(g, t, ref, "first update");
}

TEST(IncrementalTiming, NoOpUpdateReportsEmptyDelta) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  GraphTiming t(g, {4.0, 0.0, 1.0});
  Retiming r = g.zero_retiming();
  t.compute(r);
  const TimingDelta& d = t.update(r);
  EXPECT_FALSE(d.full);
  EXPECT_FALSE(d.p0_dirty);
  EXPECT_TRUE(d.wr_changed.empty());
  EXPECT_TRUE(d.relabeled.empty());
}

class IncrementalSeeds : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalSeeds, RandomWalkMatchesFreshComputeExactly) {
  const Netlist nl = generate_random_circuit(seeded_spec(GetParam()));
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const TimingParams tp{60.0, 0.0, 2.0};

  GraphTiming incr(g, tp);
  GraphTiming fresh(g, tp);
  Retiming r = g.zero_retiming();
  incr.compute(r);

  Rng rng = stream_rng(seeded_spec(GetParam()).seed, 7);
  const auto& gates = g.gate_vertices();
  int applied = 0;
  for (int step = 0; step < 300; ++step) {
    const VertexId v = gates[rng.next() % gates.size()];
    const bool inc = rng.chance(0.5);
    if (!move_valid(g, r, v, inc)) continue;
    r[v] += inc ? 1 : -1;
    ++applied;
    const TimingDelta& d = incr.update(r, std::span<const VertexId>(&v, 1));
    ASSERT_FALSE(d.full);
    ASSERT_FALSE(d.p0_dirty);
    fresh.compute(r);
    expect_labels_equal(g, incr, fresh, "walk step");
  }
  ASSERT_GT(applied, 10) << "walk never moved — the fixture is degenerate";
}

TEST_P(IncrementalSeeds, HintlessDiffMatchesHintedUpdate) {
  const Netlist nl = generate_random_circuit(seeded_spec(GetParam()));
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const TimingParams tp{60.0, 0.0, 2.0};

  GraphTiming hinted(g, tp);
  GraphTiming hintless(g, tp);
  Retiming r = g.zero_retiming();
  hinted.compute(r);
  hintless.compute(r);

  Rng rng = stream_rng(seeded_spec(GetParam()).seed, 13);
  const auto& gates = g.gate_vertices();
  for (int step = 0; step < 60; ++step) {
    const VertexId v = gates[rng.next() % gates.size()];
    const bool inc = rng.chance(0.5);
    if (!move_valid(g, r, v, inc)) continue;
    r[v] += inc ? 1 : -1;
    const TimingDelta& dh = hinted.update(r, std::span<const VertexId>(&v, 1));
    const std::vector<EdgeId> wr_h = dh.wr_changed;
    const std::vector<VertexId> rel_h = dh.relabeled;
    const TimingDelta& dn = hintless.update(r);
    EXPECT_EQ(wr_h, dn.wr_changed);
    EXPECT_EQ(rel_h, dn.relabeled);
    expect_labels_equal(g, hinted, hintless, "hint vs diff");
  }
}

TEST_P(IncrementalSeeds, P0DirtyLeavesLabelsAtPreviousState) {
  const Netlist nl = generate_random_circuit(seeded_spec(GetParam()));
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const TimingParams tp{60.0, 0.0, 2.0};

  GraphTiming t(g, tp);
  GraphTiming ref(g, tp);
  Retiming r = g.zero_retiming();
  t.compute(r);
  ref.compute(r);

  // Find a gate whose decrement drains an in-edge below zero.
  const auto& gates = g.gate_vertices();
  VertexId bad = kNullVertex;
  for (VertexId v : gates)
    if (!move_valid(g, r, v, /*inc=*/false)) {
      bad = v;
      break;
    }
  ASSERT_NE(bad, kNullVertex);

  Retiming broken = r;
  broken[bad] -= 1;
  ASSERT_FALSE(g.valid(broken));
  const TimingDelta& d = t.update(broken, std::span<const VertexId>(&bad, 1));
  EXPECT_TRUE(d.p0_dirty);
  EXPECT_FALSE(d.wr_changed.empty());
  // Labels still describe the previous (valid) retiming.
  expect_labels_equal(g, t, ref, "after p0_dirty");

  // Rolling back is a no-op diff; labels remain exact for r.
  const TimingDelta& back = t.update(r, std::span<const VertexId>(&bad, 1));
  EXPECT_FALSE(back.p0_dirty);
  EXPECT_TRUE(back.wr_changed.empty());
  expect_labels_equal(g, t, ref, "after rollback");
}

TEST_P(IncrementalSeeds, DirtyViolationScanMatchesFullScan) {
  // Solver-shaped usage: from a violation-free baseline, apply one
  // tentative move and compare the delta-driven batch against the full
  // scan. Params are walked until the zero retiming is clean so the
  // dirty-scan precondition genuinely holds.
  const Netlist nl = generate_random_circuit(seeded_spec(GetParam()));
  CellLibrary lib;
  RetimingGraph g(nl, lib);

  Retiming r = g.zero_retiming();
  TimingParams tp{40.0, 0.0, 2.0};
  double rmin = 0.5;
  GraphTiming t(g, tp);
  t.compute(r);
  // Loosen until feasible: grow the period for P1, shrink rmin for P2.
  for (int i = 0; i < 40; ++i) {
    ConstraintChecker probe(g, tp, rmin);
    if (!probe.find_violation(r, t).has_value()) break;
    tp = TimingParams{tp.period * 1.5, tp.setup, tp.hold};
    rmin *= 0.5;
    t = GraphTiming(g, tp);
    t.compute(r);
  }
  ConstraintChecker checker(g, tp, rmin);
  ASSERT_FALSE(checker.find_violation(r, t).has_value())
      << "could not construct a violation-free baseline";

  Rng rng = stream_rng(seeded_spec(GetParam()).seed, 23);
  const auto& gates = g.gate_vertices();
  std::vector<char> movers(g.vertex_count(), 0);
  int tried = 0;
  for (int step = 0; step < 200 && tried < 40; ++step) {
    const VertexId v = gates[rng.next() % gates.size()];
    const bool inc = rng.chance(0.5);
    if (!move_valid(g, r, v, inc)) continue;
    ++tried;
    Retiming cand = r;
    cand[v] += inc ? 1 : -1;
    std::fill(movers.begin(), movers.end(), 0);
    movers[v] = 1;

    const TimingDelta& d = t.update(cand, std::span<const VertexId>(&v, 1));
    const auto dirty = checker.find_violations(cand, t, d, movers, 16);
    const auto full = checker.find_violations(cand, t, movers, 16);
    ASSERT_EQ(dirty.size(), full.size()) << "step " << step;
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_EQ(dirty[i].kind, full[i].kind) << "step " << step;
      EXPECT_EQ(dirty[i].p, full[i].p) << "step " << step;
      EXPECT_EQ(dirty[i].q, full[i].q) << "step " << step;
      EXPECT_EQ(dirty[i].w, full[i].w) << "step " << step;
    }

    if (full.empty()) {
      r = cand;  // keep the move: baseline stays violation-free
    } else {
      // Revert and roll the labels back so the next delta is measured
      // against the feasible baseline (mirrors MinObsWinSolver).
      t.update(r, std::span<const VertexId>(&v, 1));
    }
  }
  ASSERT_GT(tried, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSeeds, ::testing::Range(1, 7));

}  // namespace
}  // namespace serelin
