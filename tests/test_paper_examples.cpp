// Executable versions of the paper's worked examples.
//
// Fig. 1: a register relocation that *reduces* register observability yet
// *worsens* the circuit SER by enlarging the error-latching windows of the
// upstream cone — the phenomenon motivating the ELW constraints.
//
// §III-B: "the observability of the combinational gates will not change
// after retiming" — checked by re-simulating the retimed netlist.
#include <gtest/gtest.h>

#include "core/initializer.hpp"
#include "gen/paper_examples.hpp"
#include "core/objective.hpp"
#include "core/solver.hpp"
#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "rgraph/apply.hpp"
#include "ser/ser_analyzer.hpp"

namespace serelin {
namespace {

constexpr int kLadder = 10;

struct Fig1 {
  Fig1() : nl(fig1_circuit(kLadder)), g(nl, lib) {
    SimConfig cfg;
    cfg.patterns = 2048;
    cfg.frames = 8;
    gains = test::gains_for(g, nl, cfg);
  }
  SerOptions ser_options() const {
    SerOptions o;
    o.timing = {30.0, 0.0, 2.0};
    o.sim.patterns = 2048;
    o.sim.frames = 8;
    return o;
  }
  CellLibrary lib;
  Netlist nl;
  RetimingGraph g;
  ObsGains gains;
};

TEST(Fig1Example, MoveLowersRegisterObservability) {
  Fig1 fx;
  const VertexId G = fx.g.vertex_of(fx.nl.find("G"));
  ASSERT_NE(G, kNullVertex);
  // The G move has positive logic-masking gain: obs(F) + obs(dm-driver)
  // exceeds obs(G).
  EXPECT_GT(fx.gains.gain[G], 0);
  Retiming moved = fx.g.zero_retiming();
  moved[G] = -1;
  ASSERT_TRUE(fx.g.valid(moved));
  EXPECT_LT(register_observability(fx.g, moved, fx.gains),
            register_observability(fx.g, fx.g.zero_retiming(), fx.gains));
  // And it even saves a register (2 -> 1 on G's pins).
  EXPECT_LT(fx.g.shared_register_count(moved),
            fx.g.shared_register_count(fx.g.zero_retiming()));
}

TEST(Fig1Example, MoveEnlargesUpstreamElws) {
  Fig1 fx;
  Retiming moved = fx.g.zero_retiming();
  moved[fx.g.vertex_of(fx.nl.find("G"))] = -1;
  const Netlist after = apply_retiming(fx.g, moved, "fig1_moved");
  const TimingParams tp{30.0, 0.0, 2.0};
  const ElwResult before_elw = compute_elw(fx.nl, fx.lib, tp);
  const ElwResult after_elw = compute_elw(after, fx.lib, tp);
  for (int i = 1; i <= kLadder; ++i) {
    const std::string a = "a" + std::to_string(i);
    EXPECT_GT(after_elw.elw[after.find(a)].measure(),
              before_elw.elw[fx.nl.find(a)].measure() + 0.5)
        << a;
  }
}

TEST(Fig1Example, MoveWorsensTotalSer) {
  Fig1 fx;
  Retiming moved = fx.g.zero_retiming();
  moved[fx.g.vertex_of(fx.nl.find("G"))] = -1;
  const Netlist after = apply_retiming(fx.g, moved, "fig1_moved");
  const SerReport before = analyze_ser(fx.nl, fx.lib, fx.ser_options());
  const SerReport worse = analyze_ser(after, fx.lib, fx.ser_options());
  // Lower register observability, yet higher SER: the paper's Fig. 1.
  EXPECT_GT(worse.total, before.total);
}

TEST(Fig1Example, MinObsTakesTheBadMoveMinObsWinRefuses) {
  Fig1 fx;
  SolverOptions opt;
  opt.timing = {30.0, 0.0, 2.0};
  opt.rmin = min_short_path(fx.g, fx.g.zero_retiming(), opt.timing);
  EXPECT_NEAR(opt.rmin, 3.0, 1e-9);  // s_i -> z -> z2 -> PO
  MinObsWinSolver win(fx.g, fx.gains, opt);
  const SolverResult win_res = win.solve(fx.g.zero_retiming());
  EXPECT_FALSE(win_res.exited_early);
  EXPECT_EQ(win_res.objective_gain, 0);  // refuses: new short path d(J)=2<3

  SolverOptions ref_opt = opt;
  ref_opt.enforce_elw = false;
  MinObsWinSolver ref(fx.g, fx.gains, ref_opt);
  const SolverResult ref_res = ref.solve(fx.g.zero_retiming());
  EXPECT_GT(ref_res.objective_gain, 0);  // the logic-masking-only move

  // End to end: MinObs worsens the SER, MinObsWin keeps the better one.
  const Netlist ref_nl = apply_retiming(fx.g, ref_res.r, "fig1_minobs");
  const Netlist win_nl = apply_retiming(fx.g, win_res.r, "fig1_minobswin");
  const double ser_ref = analyze_ser(ref_nl, fx.lib, fx.ser_options()).total;
  const double ser_win = analyze_ser(win_nl, fx.lib, fx.ser_options()).total;
  EXPECT_GT(ser_ref, ser_win);  // SER_ref / SER_new > 100%
}

TEST(PaperClaims, RetimingPreservesGateObservability) {
  // §III-B: gate observabilities are invariant under retiming (registers
  // are wires in the expanded circuit). Simulated estimates on the
  // original and the retimed netlist must agree per gate.
  Fig1 fx;
  Retiming moved = fx.g.zero_retiming();
  moved[fx.g.vertex_of(fx.nl.find("G"))] = -1;
  const Netlist after = apply_retiming(fx.g, moved, "fig1_moved");
  SimConfig cfg;
  cfg.patterns = 4096;
  cfg.frames = 8;
  const auto before_obs = ObservabilityAnalyzer(fx.nl, cfg).run().obs;
  const auto after_obs = ObservabilityAnalyzer(after, cfg).run().obs;
  for (NodeId id = 0; id < fx.nl.node_count(); ++id) {
    const Node& n = fx.nl.node(id);
    if (!is_gate(n.type)) continue;
    const NodeId id2 = after.find(n.name);
    ASSERT_NE(id2, kNullNode) << n.name;
    EXPECT_NEAR(after_obs[id2], before_obs[id], 0.06) << n.name;
  }
}

}  // namespace
}  // namespace serelin
