#include <gtest/gtest.h>

#include "core/closure_solver.hpp"
#include "core/initializer.hpp"
#include "core/solver.hpp"
#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "sim/graph_sim.hpp"
#include "support/rng.hpp"

namespace serelin {
namespace {

// Two half-observable registers feed an AND whose output is further masked:
// moving the registers forward across the AND merges them (2 -> 1) and
// almost halves their observability. The canonical positive-gain move.
Netlist merge_circuit() {
  NetlistBuilder nb("merge");
  nb.input("x");
  nb.input("y");
  nb.input("m");
  nb.gate("p", CellType::kBuf, {"x"});
  nb.gate("q", CellType::kBuf, {"y"});
  nb.dff("fa", "p");
  nb.dff("fb", "q");
  nb.gate("g", CellType::kAnd, {"fa", "fb"});
  nb.gate("h", CellType::kAnd, {"g", "m"});
  nb.output("h");
  return nb.build();
}

struct MergeFixture {
  MergeFixture()
      : nl(merge_circuit()), g(nl, lib), gains(test::gains_for(g, nl)) {}
  CellLibrary lib;
  Netlist nl;
  RetimingGraph g;
  ObsGains gains;
};

TEST(Solver, GainsMatchEquationFive) {
  MergeFixture fx;
  // b(v) must equal the finite difference of the Eq. (5) objective under a
  // unit forward move of v.
  const Retiming r0 = fx.g.zero_retiming();
  const std::int64_t base = register_observability(fx.g, r0, fx.gains);
  for (VertexId v : fx.g.gate_vertices()) {
    Retiming r1 = r0;
    r1[v] -= 1;
    const std::int64_t moved = register_observability(fx.g, r1, fx.gains);
    EXPECT_EQ(base - moved, fx.gains.gain[v])
        << fx.nl.node(fx.g.vertex(v).node).name;
  }
}

TEST(Solver, MergesRegistersWhenElwAllows) {
  MergeFixture fx;
  SolverOptions opt;
  opt.timing = {20.0, 0.0, 2.0};
  opt.rmin = 1.0;  // short path after the move: d(h) = 2 >= 1
  opt.enforce_elw = true;
  MinObsWinSolver solver(fx.g, fx.gains, opt);
  const Retiming r0 = fx.g.zero_retiming();
  const SolverResult res = solver.solve(r0);
  EXPECT_FALSE(res.exited_early);
  ASSERT_TRUE(fx.g.valid(res.r));
  EXPECT_GT(res.objective_gain, 0);
  // The register moved across g: g's label dropped.
  EXPECT_LT(res.r[fx.g.vertex_of(fx.nl.find("g"))], 0);
  // Objective accounting is exact.
  EXPECT_EQ(register_observability(fx.g, r0, fx.gains) -
                register_observability(fx.g, res.r, fx.gains),
            res.objective_gain);
  // Register count drops 2 -> 1 (the area by-product the paper reports).
  EXPECT_LT(fx.g.shared_register_count(res.r),
            fx.g.shared_register_count(r0));
  EXPECT_GE(res.commits, 1);
}

TEST(Solver, ElwConstraintBlocksTheMerge) {
  MergeFixture fx;
  SolverOptions opt;
  opt.timing = {20.0, 0.0, 2.0};
  // After the move the registers would sit on (g,h) with short path
  // d(h) + 0 = 2 < 3, and the critical short path ends at the PO sink:
  // unfixable, so MinObsWin must refuse the move entirely.
  opt.rmin = 3.0;
  MinObsWinSolver win(fx.g, fx.gains, opt);
  const Retiming r0 = fx.g.zero_retiming();
  const SolverResult blocked = win.solve(r0);
  EXPECT_FALSE(blocked.exited_early);
  EXPECT_EQ(blocked.objective_gain, 0);
  EXPECT_EQ(blocked.r, r0);
  // The MinObs baseline (no P2') happily takes the gain — this asymmetry
  // is the paper's s38417 story.
  opt.enforce_elw = false;
  MinObsWinSolver ref(fx.g, fx.gains, opt);
  EXPECT_GT(ref.solve(r0).objective_gain, 0);
}

TEST(Solver, TightPeriodBlocksViaP1) {
  MergeFixture fx;
  SolverOptions opt;
  // Period exactly fits the current stages (x->p = 1, g->h->po = 4, with
  // setup 0); after the merge the path p..g or g..h..po would stretch.
  opt.timing = {4.0, 0.0, 2.0};
  opt.rmin = 0.0;
  opt.enforce_elw = true;
  MinObsWinSolver solver(fx.g, fx.gains, opt);
  const SolverResult res = solver.solve(fx.g.zero_retiming());
  // Moving g forward makes path fa->g->h->po = 2+2 = 4 <= 4 still fine,
  // but then the register is on (g,h)... P1 check: p's path p->(reg) fine.
  // With period 4 the move is actually legal; with period 3 it is not.
  SolverOptions tight = opt;
  tight.timing = {3.0, 0.0, 2.0};
  // At period 3 the initial circuit itself is infeasible (g->h->po = 4),
  // so the solver exits early and returns the start unchanged.
  MinObsWinSolver tight_solver(fx.g, fx.gains, tight);
  const SolverResult tr = tight_solver.solve(fx.g.zero_retiming());
  EXPECT_TRUE(tr.exited_early);
  EXPECT_FALSE(res.exited_early);
}

TEST(Solver, ExitsEarlyOnInfeasibleStart) {
  NetlistBuilder nb("regpo");
  nb.input("x");
  nb.gate("gate", CellType::kBuf, {"x"});
  nb.dff("d", "gate");
  nb.output("d");  // registered PO: short path 0
  const Netlist nl = nb.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const ObsGains gains = test::gains_for(g, nl);
  SolverOptions opt;
  opt.timing = {10.0, 0.0, 2.0};
  opt.rmin = 1.0;  // impossible: the register feeds the PO directly
  MinObsWinSolver solver(g, gains, opt);
  const SolverResult res = solver.solve(g.zero_retiming());
  EXPECT_TRUE(res.exited_early);
  EXPECT_EQ(res.r, g.zero_retiming());
}

TEST(Solver, MinObsBaselineNeverWorseThanWin) {
  // MinObsWin solves a more constrained problem, so its gain can never
  // exceed the MinObs gain on the same instance.
  for (int seed = 1; seed <= 6; ++seed) {
    RandomCircuitSpec spec;
    spec.gates = 120;
    spec.dffs = 30;
    spec.inputs = 6;
    spec.outputs = 6;
    spec.mean_fanin = 2.0;
    spec.seed = static_cast<std::uint64_t>(seed) * 6364136223846793005ULL;
    const Netlist nl = generate_random_circuit(spec);
    CellLibrary lib;
    RetimingGraph g(nl, lib);
    const InitResult init = initialize_retiming(g, {});
    SimConfig cfg;
    cfg.patterns = 512;
    cfg.frames = 6;
    const ObsGains gains = test::gains_for(g, nl, cfg);
    SolverOptions opt;
    opt.timing = init.timing;
    opt.rmin = init.rmin;
    const SolverResult win = MinObsWinSolver(g, gains, opt).solve(init.r);
    opt.enforce_elw = false;
    const SolverResult ref = MinObsWinSolver(g, gains, opt).solve(init.r);
    EXPECT_GE(ref.objective_gain, win.objective_gain) << "seed " << seed;
  }
}

class SolverProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolverProperty, ResultIsFeasibleMonotoneAndEquivalent) {
  RandomCircuitSpec spec;
  spec.gates = 80;
  spec.dffs = 20;
  spec.inputs = 6;
  spec.outputs = 6;
  spec.mean_fanin = 1.9;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 1099511628211ULL;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});
  SimConfig cfg;
  cfg.patterns = 512;
  cfg.frames = 5;
  const ObsGains gains = test::gains_for(g, nl, cfg);
  SolverOptions opt;
  opt.timing = init.timing;
  opt.rmin = init.rmin;
  const SolverResult res = MinObsWinSolver(g, gains, opt).solve(init.r);
  if (res.exited_early) {
    EXPECT_EQ(res.r, init.r);
    return;
  }
  ASSERT_TRUE(g.valid(res.r));
  EXPECT_TRUE(test::feasible(g, res.r, opt.timing, opt.rmin));
  // Monotone decrease relative to the start.
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    EXPECT_LE(res.r[v], init.r[v]);
  // Objective accounting matches Eq. (5) exactly.
  EXPECT_EQ(register_observability(g, init.r, gains) -
                register_observability(g, res.r, gains),
            res.objective_gain);
  EXPECT_GE(res.objective_gain, 0);
  // Functional equivalence to the initial circuit via transported state.
  const EdgeState s0 = zero_edge_state(g, init.r, 1);
  const EdgeState s1 = decompose_forward(g, init.r, res.r, s0, 1);
  GraphStateSimulator a(g, init.r, s0, 1);
  GraphStateSimulator b(g, res.r, s1, 1);
  Rng ra(spec.seed), rb(spec.seed);
  for (int c = 0; c < 12; ++c) {
    a.randomize_sources(ra);
    b.randomize_sources(rb);
    a.cycle();
    b.cycle();
    ASSERT_EQ(a.sink_values(), b.sink_values()) << "cycle " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace serelin
