#include <gtest/gtest.h>

#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "rgraph/retiming_graph.hpp"
#include "timing/constraints.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {
namespace {

class PipelineTiming : public ::testing::Test {
 protected:
  PipelineTiming()
      : nl_(test::tiny_pipeline()), g_(nl_, lib_), r_(g_.zero_retiming()) {}

  VertexId v(const char* name) const { return g_.vertex_of(nl_.find(name)); }

  CellLibrary lib_;
  Netlist nl_;
  RetimingGraph g_;
  Retiming r_;
};

TEST_F(PipelineTiming, ArrivalTimes) {
  GraphTiming t(g_, {10.0, 0.0, 2.0});
  t.compute(r_);
  EXPECT_DOUBLE_EQ(t.arrival(v("x")), 0.0);
  EXPECT_DOUBLE_EQ(t.arrival(v("a")), 1.0);
  EXPECT_DOUBLE_EQ(t.arrival(v("b")), 2.0);
  EXPECT_DOUBLE_EQ(t.arrival(v("c")), 1.0);  // register resets the path
}

TEST_F(PipelineTiming, MaxMinAfterAndLabels) {
  GraphTiming t(g_, {10.0, 0.0, 2.0});
  t.compute(r_);
  EXPECT_DOUBLE_EQ(t.max_after(v("c")), 0.0);  // drives the PO directly
  EXPECT_DOUBLE_EQ(t.max_after(v("b")), 0.0);  // register on its out-edge
  EXPECT_DOUBLE_EQ(t.max_after(v("a")), 1.0);  // through b to the register
  EXPECT_DOUBLE_EQ(t.max_after(v("x")), 2.0);
  EXPECT_DOUBLE_EQ(t.min_after(v("a")), 1.0);
  EXPECT_DOUBLE_EQ(t.L(v("a")), 10.0 - 1.0);
  EXPECT_DOUBLE_EQ(t.R(v("a")), 12.0 - 1.0);
}

TEST_F(PipelineTiming, CriticalWitnesses) {
  GraphTiming t(g_, {10.0, 0.0, 2.0});
  t.compute(r_);
  // The critical (only) path from a ends at b, whose out-edge holds the
  // register; from x likewise.
  EXPECT_EQ(t.lt(v("a")), v("b"));
  EXPECT_EQ(t.lt(v("x")), v("b"));
  EXPECT_EQ(t.rt(v("a")), v("b"));
  // b's own boundary is its registered out-edge.
  EXPECT_EQ(t.lt(v("b")), v("b"));
  const EdgeId be = t.crit_min_edge(v("a"));
  ASSERT_NE(be, kNullEdge);
  EXPECT_EQ(g_.edge(be).from, v("b"));
  EXPECT_EQ(g_.edge(be).to, v("c"));
}

TEST_F(PipelineTiming, RetimingChangesLabels) {
  Retiming r = r_;
  r[v("c")] = -1;  // register moves past c
  GraphTiming t(g_, {10.0, 0.0, 2.0});
  t.compute(r);
  EXPECT_DOUBLE_EQ(t.arrival(v("c")), 3.0);  // now fed combinationally
  EXPECT_DOUBLE_EQ(t.max_after(v("b")), 1.0);  // through c to the register
  EXPECT_DOUBLE_EQ(t.max_after(v("a")), 2.0);
}

TEST_F(PipelineTiming, NoViolationsAtRelaxedPeriod) {
  ConstraintChecker checker(g_, {10.0, 0.0, 2.0}, 0.0);
  GraphTiming t(g_, {10.0, 0.0, 2.0});
  EXPECT_TRUE(checker.feasible(r_, t));
}

TEST_F(PipelineTiming, P1ViolationWitness) {
  const TimingParams tp{1.5, 0.0, 2.0};
  ConstraintChecker checker(g_, tp, 0.0);
  GraphTiming t(g_, tp);
  t.compute(r_);
  const auto viol = checker.find_violation(r_, t);
  ASSERT_TRUE(viol.has_value());
  EXPECT_EQ(viol->kind, ConstraintKind::kP1);
  EXPECT_EQ(viol->p, v("b"));  // lt of the violated vertex
  EXPECT_EQ(viol->w, 1);
}

TEST_F(PipelineTiming, P0ViolationWitness) {
  Retiming r = r_;
  r[v("c")] = -2;  // drains b->c below zero
  const TimingParams tp{10.0, 0.0, 2.0};
  ConstraintChecker checker(g_, tp, 0.0);
  GraphTiming t(g_, tp);
  t.compute(r);
  const auto viol = checker.find_violation(r, t);
  ASSERT_TRUE(viol.has_value());
  EXPECT_EQ(viol->kind, ConstraintKind::kP0);
  EXPECT_EQ(viol->p, v("c"));
  EXPECT_EQ(viol->q, v("b"));
  EXPECT_EQ(viol->w, 1);
}

TEST_F(PipelineTiming, P2ViolationBlocksAtSink) {
  // Short path from the register (through c, 1 unit) is below rmin = 2,
  // and the critical short path ends at the primary output: unfixable.
  const TimingParams tp{10.0, 0.0, 2.0};
  ConstraintChecker checker(g_, tp, 2.0);
  GraphTiming t(g_, tp);
  t.compute(r_);
  const auto viol = checker.find_violation(r_, t);
  ASSERT_TRUE(viol.has_value());
  EXPECT_EQ(viol->kind, ConstraintKind::kP2);
  EXPECT_EQ(viol->p, v("b"));
  EXPECT_EQ(g_.vertex(viol->q).kind, VertexKind::kSink);
}

TEST_F(PipelineTiming, P2SatisfiedAtLooseRmin) {
  const TimingParams tp{10.0, 0.0, 2.0};
  ConstraintChecker checker(g_, tp, 1.0);  // short path == 1 >= 1
  GraphTiming t(g_, tp);
  EXPECT_TRUE(checker.feasible(r_, t));
}

TEST(GraphTimingRing, FeedbackCycleLabels) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  GraphTiming t(g, {10.0, 0.0, 2.0});
  t.compute(g.zero_retiming());
  const VertexId inv1 = g.vertex_of(nl.find("inv1"));
  const VertexId buf1 = g.vertex_of(nl.find("buf1"));
  // Every gate in the ring is register-bounded on both sides.
  EXPECT_DOUBLE_EQ(t.max_after(inv1), 0.0);
  EXPECT_DOUBLE_EQ(t.max_after(buf1), 0.0);
  EXPECT_DOUBLE_EQ(t.arrival(inv1), 1.0);
}

TEST(GraphTimingRing, P2FixWitnessMovesRegistersPastHead) {
  // Ring with rmin = 2: inv1 (delay 1) alone between registers is short.
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const TimingParams tp{10.0, 0.0, 2.0};
  ConstraintChecker checker(g, tp, 2.0);
  GraphTiming t(g, tp);
  t.compute(g.zero_retiming());
  const auto viol = checker.find_violation(g.zero_retiming(), t);
  ASSERT_TRUE(viol.has_value());
  EXPECT_EQ(viol->kind, ConstraintKind::kP2);
  EXPECT_TRUE(g.movable(viol->q) ||
              g.vertex(viol->q).kind == VertexKind::kSink);
}

TEST(GraphTimingMulti, ParallelPathsSpread) {
  // b branches: a short hop to a register and a long 3-gate path.
  NetlistBuilder nb("spread");
  nb.input("x");
  nb.gate("b", CellType::kBuf, {"x"});
  nb.dff("d0", "b");
  nb.gate("p1", CellType::kBuf, {"b"});
  nb.gate("p2", CellType::kBuf, {"p1"});
  nb.gate("p3", CellType::kBuf, {"p2"});
  nb.dff("d1", "p3");
  nb.gate("o", CellType::kAnd, {"d0", "d1"});
  nb.output("o");
  const Netlist nl = nb.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  GraphTiming t(g, {10.0, 0.0, 2.0});
  t.compute(g.zero_retiming());
  const VertexId b = g.vertex_of(nl.find("b"));
  EXPECT_DOUBLE_EQ(t.min_after(b), 0.0);  // direct register
  EXPECT_DOUBLE_EQ(t.max_after(b), 3.0);  // p1..p3 then register
  // R - L = (hold + setup) + spread = 2 + 3.
  EXPECT_DOUBLE_EQ(t.R(b) - t.L(b), 5.0);
}

}  // namespace
}  // namespace serelin
