// The tracing/metrics subsystem (src/support/trace, src/support/metrics):
// span nesting, exporter schema validity, and the determinism contract —
// counter totals must be bit-identical for any worker count. Every check
// also passes under `cmake -DSERELIN_TRACE=OFF` (the compiled-out build),
// where spans record nothing and every total is zero.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/wd_matrices.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/cell_library.hpp"
#include "rgraph/retiming_graph.hpp"
#include "ser/ser_analyzer.hpp"
#include "sim/observability.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace serelin {
namespace {

/// Restores the global worker count on scope exit so a failing test cannot
/// leak its thread setting into the rest of the suite.
struct ThreadGuard {
  ~ThreadGuard() { set_execution_threads(0); }
};

/// Stops (and thereby quiesces) the tracer on scope exit.
struct TracerGuard {
  ~TracerGuard() { Tracer::stop(); }
};

// --- a minimal JSON validator ---------------------------------------------
// Recursive descent over the full RFC 8259 grammar, values discarded: the
// exporters promise *valid* JSON, so the test checks exactly that without
// trusting any of the code under test.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i)
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_++])))
              return false;
        } else if (!std::strchr("\"\\/bfnrt", e)) {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (!digits()) return false;
    if (eat('.') && !digits()) return false;
    if (eat('e') || eat('E')) {
      if (!eat('+')) eat('-');
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

Netlist random_circuit(int gates, std::uint64_t seed) {
  RandomCircuitSpec spec;
  spec.name = "trace" + std::to_string(gates);
  spec.gates = gates;
  spec.dffs = gates / 5;
  spec.inputs = 8;
  spec.outputs = 8;
  spec.seed = seed;
  return generate_random_circuit(spec);
}

// --- spans -----------------------------------------------------------------

TEST(Trace, SpansNestByScope) {
  TracerGuard guard;
  Tracer::start();
  {
    SERELIN_SPAN("outer");
    { SERELIN_SPAN("inner-a"); }
    { SERELIN_SPAN("inner-b"); }
  }
  Tracer::stop();
  if (!trace_compiled_in()) {
    EXPECT_EQ(Tracer::event_count(), 0u);
    return;
  }
  EXPECT_EQ(Tracer::event_count(), 3u);
  const std::string json = Tracer::chrome_json();
  // Inner spans carry depth 1, the outer span depth 0; completion order
  // puts the inner events first in the export.
  EXPECT_NE(json.find("\"name\": \"inner-a\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner-b\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"depth\": 1}"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"depth\": 0}"), std::string::npos);
}

TEST(Trace, DormantSpansRecordNothing) {
  TracerGuard guard;
  Tracer::start();
  Tracer::stop();
  { SERELIN_SPAN("never-recorded"); }
  EXPECT_EQ(Tracer::event_count(), 0u);
  EXPECT_EQ(Tracer::chrome_json().find("never-recorded"), std::string::npos);
}

TEST(Trace, StartClearsEarlierSessions) {
  TracerGuard guard;
  Tracer::start();
  { SERELIN_SPAN("first-session"); }
  Tracer::stop();
  Tracer::start();
  Tracer::stop();
  EXPECT_EQ(Tracer::event_count(), 0u);
}

TEST(Trace, ChromeJsonIsValidJson) {
  TracerGuard guard;
  // Empty session first: the exporter's degenerate output must be valid.
  Tracer::start();
  Tracer::stop();
  EXPECT_TRUE(JsonChecker(Tracer::chrome_json()).valid())
      << Tracer::chrome_json();

  Tracer::start();
  {
    SERELIN_SPAN("phase \"quoted\" \\ and controls \n");
    { SERELIN_SPAN("child"); }
  }
  Tracer::stop();
  const std::string json = Tracer::chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(Trace, WriteChromeJsonRoundTrips) {
  TracerGuard guard;
  Tracer::start();
  { SERELIN_SPAN("to-disk"); }
  Tracer::stop();
  const std::string path = testing::TempDir() + "serelin_trace_test.json";
  Tracer::write_chrome_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), Tracer::chrome_json());
  EXPECT_TRUE(JsonChecker(ss.str()).valid());
}

TEST(Trace, SpansInsideParallelLanesAttachToWorkerTids) {
  ThreadGuard threads;
  TracerGuard guard;
  set_execution_threads(2);
  Tracer::start();
  parallel_for(0, std::size_t{8}, 1, [&](std::size_t, int) {
    SERELIN_SPAN("lane-work");
  });
  Tracer::stop();
  if (!trace_compiled_in()) return;
  EXPECT_EQ(Tracer::event_count(), 8u);
  EXPECT_TRUE(JsonChecker(Tracer::chrome_json()).valid());
}

// --- counters --------------------------------------------------------------

TEST(Metrics, JsonHasEveryCounterInOrder) {
  const std::string json = metrics_json(MetricsSnapshot{});
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  std::size_t last = 0;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const std::string key =
        std::string("\"") + counter_name(static_cast<Counter>(i)) + "\"";
    const std::size_t at = json.find(key);
    ASSERT_NE(at, std::string::npos) << key;
    EXPECT_GT(at, last) << "counter keys out of enum order: " << key;
    last = at;
  }
}

TEST(Metrics, SnapshotsSubtractPerCounter) {
  MetricsSnapshot a, b;
  a.values[0] = 10;
  a.values[1] = 7;
  b.values[0] = 4;
  const MetricsSnapshot d = a - b;
  EXPECT_EQ(d.values[0], 6);
  EXPECT_EQ(d.values[1], 7);
  EXPECT_EQ(d[static_cast<Counter>(0)], 6);
}

TEST(Metrics, CountMacroAddsOnTheCallingThread) {
  const MetricsSnapshot before = metrics_snapshot();
  SERELIN_COUNT(kOracleChecks, 3);
  SERELIN_COUNT(kOracleChecks, 2);
  const MetricsSnapshot delta = metrics_snapshot() - before;
  EXPECT_EQ(delta[Counter::kOracleChecks], metrics_compiled_in() ? 5 : 0);
}

TEST(Metrics, WriteMetricsJsonRoundTrips) {
  const std::string path = testing::TempDir() + "serelin_metrics_test.json";
  const MetricsSnapshot before = metrics_snapshot();
  SERELIN_COUNT(kJournalWrites, 1);
  write_metrics_json(metrics_snapshot() - before, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_TRUE(JsonChecker(ss.str()).valid()) << ss.str();
  EXPECT_NE(ss.str().find("\"journal-writes\""), std::string::npos);
}

TEST(Metrics, SimulatorCountsPatternWords) {
  const Netlist nl = random_circuit(60, 11);
  const MetricsSnapshot before = metrics_snapshot();
  SimConfig cfg;
  cfg.patterns = 128;
  cfg.frames = 2;
  cfg.warmup = 1;
  ObservabilityAnalyzer engine(nl, cfg);
  engine.run(ObservabilityAnalyzer::Mode::kSignature);
  const MetricsSnapshot delta = metrics_snapshot() - before;
  if (!metrics_compiled_in()) {
    EXPECT_EQ(delta[Counter::kSimPatternWords], 0);
    return;
  }
  // warmup + record + re-evaluation frames, each gate_count * 2 words.
  EXPECT_GT(delta[Counter::kSimPatternWords], 0);
  EXPECT_EQ(delta[Counter::kSimPatternWords] %
                static_cast<std::int64_t>(nl.gate_count() * 2),
            0);
}

// The determinism contract extended to the instrumentation: the per-kernel
// counter totals must be bit-identical for any worker count, because every
// increment is attached to a unit of work, never to a lane.
TEST(Metrics, CounterTotalsIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const Netlist nl = random_circuit(200, 23);
  CellLibrary lib;
  const RetimingGraph g(nl, lib);

  auto run_kernels = [&] {
    const MetricsSnapshot before = metrics_snapshot();
    WdMatrices wd(g);
    (void)wd.candidate_periods();
    SimConfig cfg;
    cfg.patterns = 128;
    cfg.frames = 2;
    cfg.warmup = 1;
    ObservabilityAnalyzer exact(nl, cfg);
    exact.run(ObservabilityAnalyzer::Mode::kExact);
    SerOptions ser;
    ser.timing = {100.0, 0.0, 2.0};
    ser.sim = cfg;
    analyze_ser(nl, lib, ser);
    return metrics_snapshot() - before;
  };

  set_execution_threads(1);
  const MetricsSnapshot reference = run_kernels();
  if (metrics_compiled_in()) {
    EXPECT_GT(reference[Counter::kWdSources], 0);
    EXPECT_GT(reference[Counter::kObsFlips], 0);
    EXPECT_GT(reference[Counter::kSerTerms], 0);
    EXPECT_GT(reference[Counter::kElwIntervalOps], 0);
  }
  for (int threads : {2, 8}) {
    set_execution_threads(threads);
    const MetricsSnapshot at_n = run_kernels();
    EXPECT_TRUE(at_n == reference)
        << "counter totals differ between 1 and " << threads << " threads: "
        << metrics_json(reference) << " vs " << metrics_json(at_n);
  }
}

}  // namespace
}  // namespace serelin
