// Robustness suite: the fault-tolerant front end (diagnostics engine,
// recovering parsers, structural lint/repair), checked numeric parsing,
// deadline-bounded solving with Partial results, and a seeded mini-fuzz
// loop over the corruption engine. The corpus files under tests/corpus/
// pin the exact diagnostic code each class of damage must produce.
#include <gtest/gtest.h>

#include <istream>
#include <sstream>
#include <streambuf>
#include <string>

#include "core/closure_solver.hpp"
#include "core/initializer.hpp"
#include "core/min_period.hpp"
#include "core/solver.hpp"
#include "core/wd_matrices.hpp"
#include "gen/fault_inject.hpp"
#include "helpers.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/validate.hpp"
#include "support/deadline.hpp"
#include "support/diag.hpp"
#include "support/strings.hpp"

#ifndef SERELIN_CORPUS_DIR
#define SERELIN_CORPUS_DIR "tests/corpus"
#endif

namespace serelin {
namespace {

std::string corpus(const char* name) {
  return std::string(SERELIN_CORPUS_DIR) + "/" + name;
}

// ---- checked numeric parsing -------------------------------------------

TEST(ParseInt, AcceptsWholeIntegers) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_EQ(parse_int("0").value(), 0);
}

TEST(ParseInt, RejectsJunkAndRanges) {
  EXPECT_FALSE(parse_int("banana").has_value());
  EXPECT_FALSE(parse_int("12abc").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int(" 5").has_value());
  EXPECT_FALSE(parse_int("5 ").has_value());
  EXPECT_FALSE(parse_int("99999999999999999999999").has_value());
  EXPECT_FALSE(parse_int("10", 0, 9).has_value());
  EXPECT_TRUE(parse_int("9", 0, 9).has_value());
}

TEST(ParseUintDouble, CheckedVariants) {
  EXPECT_EQ(parse_uint("18446744073709551615").value(), UINT64_MAX);
  EXPECT_FALSE(parse_uint("-1").has_value());
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_FALSE(parse_double("inf").has_value());
  EXPECT_FALSE(parse_double("nan").has_value());
  EXPECT_FALSE(parse_double("1.0x").has_value());
}

// ---- corpus: exact diagnostic codes ------------------------------------

TEST(Corpus, TruncatedBench) {
  DiagnosticSink sink;
  const Netlist nl = read_bench_file(corpus("truncated.bench"), sink);
  EXPECT_TRUE(nl.finalized());
  EXPECT_TRUE(sink.has(DiagCode::kBenchSyntax)) << sink.summary();
  // OUTPUT(y) references the dropped signal: an input is synthesized.
  EXPECT_TRUE(sink.has(DiagCode::kNetUndefined)) << sink.summary();
}

TEST(Corpus, DuplicateDefinition) {
  DiagnosticSink sink;
  const Netlist nl = read_bench_file(corpus("dup_def.bench"), sink);
  EXPECT_TRUE(sink.has(DiagCode::kNetMultiplyDriven)) << sink.summary();
  // First definition wins.
  EXPECT_EQ(nl.node(nl.find("y")).type, CellType::kAnd);
}

TEST(Corpus, CombinationalCycle) {
  DiagnosticSink sink;
  const Netlist nl = read_bench_file(corpus("cyclic.bench"), sink);
  EXPECT_TRUE(sink.has(DiagCode::kNetCombCycle)) << sink.summary();
  EXPECT_TRUE(nl.finalized());  // cycle was cut; netlist is legal
}

TEST(Corpus, UndefinedReference) {
  DiagnosticSink sink;
  const Netlist nl = read_bench_file(corpus("undefined.bench"), sink);
  EXPECT_TRUE(sink.has(DiagCode::kNetUndefined)) << sink.summary();
  // The synthesized input keeps the consumer connected.
  EXPECT_NE(nl.find("ghost"), kNullNode);
  EXPECT_EQ(nl.node(nl.find("ghost")).type, CellType::kInput);
}

TEST(Corpus, DffMissingDriver) {
  DiagnosticSink sink;
  const Netlist nl = read_bench_file(corpus("dangling_dff.bench"), sink);
  EXPECT_TRUE(sink.has(DiagCode::kNetDffMissingDriver)) << sink.summary();
  EXPECT_EQ(nl.node(nl.find("q")).type, CellType::kDff);
}

TEST(Corpus, UnknownGateKeyword) {
  DiagnosticSink sink;
  read_bench_file(corpus("bad_gate.bench"), sink);
  EXPECT_TRUE(sink.has(DiagCode::kBenchUnknownGate)) << sink.summary();
}

TEST(Corpus, NonAsciiBytes) {
  DiagnosticSink sink;
  const Netlist nl = read_bench_file(corpus("nonascii.bench"), sink);
  EXPECT_TRUE(sink.has(DiagCode::kBadByte)) << sink.summary();
  // The clean part of the file still parses.
  EXPECT_NE(nl.find("y"), kNullNode);
}

TEST(Corpus, BlifMissingEnd) {
  DiagnosticSink sink;
  const Netlist nl = read_blif_file(corpus("missing_end.blif"), sink);
  EXPECT_TRUE(sink.has(DiagCode::kBlifMissingEnd)) << sink.summary();
  EXPECT_EQ(sink.error_count(), 0u);  // warning only: still usable
  EXPECT_EQ(nl.node(nl.find("y")).type, CellType::kAnd);
}

TEST(Corpus, StrictModeRaisesDiagnosticError) {
  try {
    read_bench_file(corpus("dup_def.bench"));
    FAIL() << "strict parse should throw";
  } catch (const DiagnosticError& e) {
    EXPECT_FALSE(e.diagnostics().empty());
    EXPECT_NE(std::string(e.what()).find("net-multiply-driven"),
              std::string::npos);
  }
}

TEST(Corpus, FileNotFoundVersusUnreadable) {
  DiagnosticSink sink;
  read_bench_file(corpus("no_such_file.bench"), sink);
  EXPECT_TRUE(sink.has(DiagCode::kIoNotFound)) << sink.summary();
  EXPECT_FALSE(sink.has(DiagCode::kIoUnreadable));
}

TEST(Corpus, RecoveringModeNeverThrows) {
  const char* files[] = {"truncated.bench", "dup_def.bench",
                         "cyclic.bench",    "undefined.bench",
                         "bad_gate.bench",  "nonascii.bench",
                         "dangling_dff.bench"};
  for (const char* f : files) {
    DiagnosticSink sink;
    EXPECT_NO_THROW({
      const Netlist nl = read_bench_file(corpus(f), sink);
      EXPECT_TRUE(nl.finalized()) << f;
    }) << f;
  }
  DiagnosticSink sink;
  EXPECT_NO_THROW(read_blif_file(corpus("missing_end.blif"), sink));
}

// ---- stream-error detection --------------------------------------------

// A streambuf whose underflow throws once some bytes were served: istream
// swallows the exception and sets badbit — exactly a failing disk read.
class FlakyBuf : public std::streambuf {
 public:
  explicit FlakyBuf(std::string head) : head_(std::move(head)) {
    setg(head_.data(), head_.data(), head_.data() + head_.size());
  }

 protected:
  int_type underflow() override { throw std::runtime_error("disk died"); }

 private:
  std::string head_;
};

TEST(StreamError, BadBitBecomesDiagnostic) {
  FlakyBuf buf("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n");
  std::istream in(&buf);
  in.exceptions(std::ios::goodbit);  // stream swallows, sets badbit
  DiagnosticSink sink;
  const Netlist nl = read_bench(in, "flaky", sink);
  EXPECT_TRUE(in.bad());
  EXPECT_TRUE(sink.has(DiagCode::kIoStreamError)) << sink.summary();
  EXPECT_TRUE(nl.finalized());
}

// ---- structural lint + repair ------------------------------------------

TEST(Lint, FindsDeadLogicAndUnusedInputs) {
  NetlistBuilder b("lintme");
  b.input("a");
  b.input("unused");
  b.gate("y", CellType::kBuf, {"a"});
  b.output("y");
  b.gate("dead", CellType::kNot, {"a"});      // no fanout, not a PO
  b.gate("island", CellType::kBuf, {"dead"});  // fans out only to nothing
  const Netlist nl = b.build();

  DiagnosticSink sink;
  const std::size_t findings = lint_netlist(nl, sink);
  EXPECT_GE(findings, 3u);
  EXPECT_TRUE(sink.has(DiagCode::kLintUnusedInput)) << sink.summary();
  EXPECT_TRUE(sink.has(DiagCode::kLintDanglingNet)) << sink.summary();
  EXPECT_TRUE(sink.has(DiagCode::kLintUnreferenced)) << sink.summary();
  EXPECT_EQ(sink.error_count(), 0u);  // all warn-level

  DiagnosticSink rsink;
  const Netlist repaired = repair_netlist(nl, rsink);
  EXPECT_TRUE(repaired.finalized());
  EXPECT_EQ(repaired.find("dead"), kNullNode);
  EXPECT_EQ(repaired.find("island"), kNullNode);
  EXPECT_NE(repaired.find("unused"), kNullNode);  // interface preserved
  EXPECT_NE(repaired.find("y"), kNullNode);

  DiagnosticSink clean;
  lint_netlist(repaired, clean);
  EXPECT_FALSE(clean.has(DiagCode::kLintDanglingNet)) << clean.summary();
  EXPECT_FALSE(clean.has(DiagCode::kLintUnreferenced)) << clean.summary();
}

TEST(Lint, NoOutputsIsAnError) {
  NetlistBuilder b("mute");
  b.input("a");
  b.gate("g", CellType::kBuf, {"a"});
  const Netlist nl = b.build();
  DiagnosticSink sink;
  lint_netlist(nl, sink);
  EXPECT_TRUE(sink.has(DiagCode::kLintNoOutputs)) << sink.summary();
  EXPECT_GT(sink.error_count(), 0u);
}

// ---- deadlines, cancellation, Partial results --------------------------

TEST(Deadline, DefaultNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.status(), StopReason::kNone);
}

TEST(Deadline, ExpiredAndCancelled) {
  EXPECT_EQ(Deadline::after(0.0).status(), StopReason::kDeadline);
  CancelToken token;
  const Deadline d = Deadline::with_token(token);
  EXPECT_FALSE(d.expired());
  token.cancel();
  EXPECT_EQ(d.status(), StopReason::kCancelled);
  EXPECT_THROW(d.check("test"), CancelledError);
}

TEST(Deadline, SolverReturnsFeasiblePartial) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  const RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});
  const ObsGains gains = test::gains_for(g, nl);

  SolverOptions so;
  so.timing = init.timing;
  so.rmin = init.rmin;
  so.deadline = Deadline::after(0.0);  // already expired
  const SolverResult res = MinObsWinSolver(g, gains, so).solve(init.r);
  EXPECT_TRUE(res.partial());
  EXPECT_EQ(res.stop_reason, StopReason::kDeadline);
  EXPECT_FALSE(res.stop_detail.empty());
  EXPECT_TRUE(g.valid(res.r));  // Partial still carries a legal retiming
  EXPECT_EQ(res.r, init.r);     // nothing was committed in zero time
}

TEST(Deadline, ClosureSolverHonoursCancellation) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  const RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});
  const ObsGains gains = test::gains_for(g, nl);

  CancelToken token;
  token.cancel();
  SolverOptions so;
  so.timing = init.timing;
  so.rmin = init.rmin;
  so.deadline = Deadline::with_token(token);
  const SolverResult res = ClosureSolver(g, gains, so).solve(init.r);
  EXPECT_TRUE(res.partial());
  EXPECT_EQ(res.stop_reason, StopReason::kCancelled);
  EXPECT_TRUE(g.valid(res.r));
}

TEST(Deadline, UnlimitedMatchesBaseline) {
  // A never-expiring deadline must not change solver results.
  const Netlist nl = test::tiny_reconvergent();
  CellLibrary lib;
  const RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});
  const ObsGains gains = test::gains_for(g, nl);
  SolverOptions base;
  base.timing = init.timing;
  base.rmin = init.rmin;
  const SolverResult a = MinObsWinSolver(g, gains, base).solve(init.r);
  SolverOptions timed = base;
  timed.deadline = Deadline::after(3600.0);
  const SolverResult b = MinObsWinSolver(g, gains, timed).solve(init.r);
  EXPECT_EQ(a.r, b.r);
  EXPECT_EQ(a.objective_gain, b.objective_gain);
  EXPECT_FALSE(b.partial());
}

TEST(Deadline, MinPeriodPartialStaysLegal) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  const RetimingGraph g(nl, lib);
  MinPeriodRetimer::Options opt;
  opt.deadline = Deadline::after(0.0);
  const auto res = MinPeriodRetimer(g, opt).minimize();
  EXPECT_TRUE(res.partial());
  EXPECT_TRUE(g.valid(res.r));
}

TEST(Deadline, WdMatricesThrowsCancelled) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  const RetimingGraph g(nl, lib);
  EXPECT_THROW(WdMatrices(g, Deadline::after(0.0)), CancelledError);
  // And wd_min_period under an expired deadline still returns a legal
  // feasibility-proven result (the critical-path probe).
  const WdMatrices wd(g);
  const auto res = wd_min_period(g, wd, 0.0, Deadline::after(0.0));
  EXPECT_TRUE(g.valid(res.r));
}

TEST(Deadline, ObservabilityThrowsCancelled) {
  const Netlist nl = test::tiny_ring();
  SimConfig cfg;
  cfg.patterns = 64;
  cfg.frames = 2;
  cfg.warmup = 1;
  cfg.deadline = Deadline::after(0.0);
  ObservabilityAnalyzer sig(nl, cfg);
  EXPECT_THROW(sig.run(ObservabilityAnalyzer::Mode::kSignature),
               CancelledError);
  ObservabilityAnalyzer exact(nl, cfg);
  EXPECT_THROW(exact.run(ObservabilityAnalyzer::Mode::kExact),
               CancelledError);
}

// ---- seeded mini-fuzz over the corruption engine ------------------------

TEST(FaultInject, RecoveringParseSurvivesCorruption) {
  Rng rng(0xfa017ULL);
  for (int iter = 0; iter < 60; ++iter) {
    const Netlist victim = random_victim(rng);
    std::ostringstream os;
    const bool blif = iter % 2 == 0;
    if (blif)
      write_blif(os, victim);
    else
      write_bench(os, victim);
    const std::string text = mutate_text(os.str(), rng);

    DiagnosticSink sink;
    std::istringstream is(text);
    Netlist nl;
    ASSERT_NO_THROW(nl = blif ? read_blif(is, "fuzz", sink)
                              : read_bench(is, "fuzz", sink))
        << "iter " << iter;
    EXPECT_TRUE(nl.finalized()) << "iter " << iter;

    // Strict mode on the same bytes: only ParseError may escape.
    std::istringstream is2(text);
    try {
      if (blif)
        read_blif(is2, "fuzz");
      else
        read_bench(is2, "fuzz");
    } catch (const ParseError&) {
      // designed rejection path
    }
  }
}

}  // namespace
}  // namespace serelin
