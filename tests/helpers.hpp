// Shared fixtures for the serelin test suite: small hand-built circuits and
// feasibility helpers used across test files.
#pragma once

#include <string>
#include <vector>

#include "core/objective.hpp"
#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"
#include "rgraph/retiming_graph.hpp"
#include "sim/observability.hpp"
#include "timing/constraints.hpp"
#include "timing/graph_timing.hpp"

namespace serelin::test {

/// x -> a -> b -> ff -> c -> PO : one register, a 3-gate pipeline.
inline Netlist tiny_pipeline() {
  NetlistBuilder b("tiny_pipeline");
  b.input("x");
  b.gate("a", CellType::kBuf, {"x"});
  b.gate("b", CellType::kNot, {"a"});
  b.dff("ff", "b");
  b.gate("c", CellType::kBuf, {"ff"});
  b.output("c");
  return b.build();
}

/// A two-register ring (modulo counter flavour) exercising feedback:
///   ff1 -> inv -> ff2 -> buf -> ff1, with a tapped PO.
inline Netlist tiny_ring() {
  NetlistBuilder b("tiny_ring");
  b.input("en");
  b.dff("ff1", "buf1");
  b.gate("inv1", CellType::kNot, {"ff1"});
  b.dff("ff2", "inv1");
  b.gate("buf1", CellType::kBuf, {"ff2"});
  b.gate("tap", CellType::kAnd, {"ff1", "en"});
  b.output("tap");
  return b.build();
}

/// Reconvergent combinational block behind a register:
///   x,y -> g1=AND, g2=OR -> g3=XOR -> ff -> PO.
inline Netlist tiny_reconvergent() {
  NetlistBuilder b("tiny_reconvergent");
  b.input("x");
  b.input("y");
  b.gate("g1", CellType::kAnd, {"x", "y"});
  b.gate("g2", CellType::kOr, {"x", "y"});
  b.gate("g3", CellType::kXor, {"g1", "g2"});
  b.dff("ff", "g3");
  b.gate("out", CellType::kBuf, {"ff"});
  b.output("out");
  return b.build();
}

/// True iff `r` satisfies P0 ∧ P1' ∧ P2' on `g`.
inline bool feasible(const RetimingGraph& g, const Retiming& r,
                     const TimingParams& tp, double rmin) {
  ConstraintChecker checker(g, tp, rmin);
  GraphTiming t(g, tp);
  return checker.feasible(r, t);
}

/// Observability gains for a netlist via signature simulation.
inline ObsGains gains_for(const RetimingGraph& g, const Netlist& nl,
                          SimConfig cfg = {}) {
  ObservabilityAnalyzer analyzer(nl, cfg);
  const auto obs = analyzer.run();
  return compute_gains(g, obs.obs, cfg.patterns);
}

}  // namespace serelin::test
