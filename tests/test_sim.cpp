#include <gtest/gtest.h>

#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace serelin {
namespace {

TEST(Simulator, CombinationalEvaluation) {
  const Netlist nl = test::tiny_reconvergent();
  Simulator sim(nl, 1);
  auto x = sim.value(nl.find("x"));
  auto y = sim.value(nl.find("y"));
  x[0] = 0b1100;
  y[0] = 0b1010;
  sim.eval_frame();
  EXPECT_EQ(sim.value(nl.find("g1"))[0], 0b1000ULL);            // AND
  EXPECT_EQ(sim.value(nl.find("g2"))[0], 0b1110ULL);            // OR
  EXPECT_EQ(sim.value(nl.find("g3"))[0], 0b0110ULL);            // XOR
}

TEST(Simulator, RegisterLatchesOnStep) {
  const Netlist nl = test::tiny_pipeline();
  Simulator sim(nl, 1);
  sim.reset_state();
  sim.value(nl.find("x"))[0] = ~0ULL;
  sim.eval_frame();
  // Before the clock edge the register still holds 0.
  EXPECT_EQ(sim.value(nl.find("ff"))[0], 0ULL);
  EXPECT_EQ(sim.value(nl.find("c"))[0], 0ULL);
  sim.step();
  sim.eval_frame();
  // b = NOT(a) = NOT(x) = 0 latched... x=all-ones -> b = 0.
  EXPECT_EQ(sim.value(nl.find("ff"))[0], 0ULL);
  // Drive x low: b = 1, latched next cycle.
  sim.value(nl.find("x"))[0] = 0ULL;
  sim.eval_frame();
  sim.step();
  sim.eval_frame();
  EXPECT_EQ(sim.value(nl.find("ff"))[0], ~0ULL);
  EXPECT_EQ(sim.value(nl.find("c"))[0], ~0ULL);
}

TEST(Simulator, RingOscillatesThroughRegisters) {
  // ff1 -> inv -> ff2 -> buf -> ff1: state cycles with period 2 cycles
  // once the inversion propagates around.
  const Netlist nl = test::tiny_ring();
  Simulator sim(nl, 1);
  sim.reset_state();
  sim.value(nl.find("en"))[0] = ~0ULL;
  std::vector<std::uint64_t> tap_history;
  for (int cyc = 0; cyc < 8; ++cyc) {
    sim.eval_frame();
    tap_history.push_back(sim.value(nl.find("tap"))[0] & 1ULL);
    sim.step();
  }
  // State (ff1,ff2) walks (0,0)->(0,1)->(1,1)->(1,0)->(0,0): ff1 has
  // period 4 with two low then two high cycles.
  const std::vector<std::uint64_t> expect{0, 0, 1, 1, 0, 0, 1, 1};
  EXPECT_EQ(tap_history, expect);
}

TEST(Simulator, LoadAndReadStatePlane) {
  const Netlist nl = test::tiny_ring();
  Simulator sim(nl, 2);
  std::vector<std::uint64_t> st(nl.dff_count() * 2, 0);
  st[0] = 0xDEADULL;  // ff1 word 0
  sim.load_state(st);
  EXPECT_EQ(sim.state(0)[0], 0xDEADULL);
  sim.eval_frame();
  EXPECT_EQ(sim.value(nl.dffs()[0])[0], 0xDEADULL);
}

TEST(Simulator, LoadStateRejectsWrongSize) {
  const Netlist nl = test::tiny_ring();
  Simulator sim(nl, 2);
  std::vector<std::uint64_t> bad(3, 0);
  EXPECT_THROW(sim.load_state(bad), PreconditionError);
}

TEST(Simulator, RandomizeInputsIsDeterministicPerSeed) {
  const Netlist nl = test::tiny_pipeline();
  Simulator a(nl, 4), b(nl, 4);
  Rng ra(99), rb(99);
  a.randomize_inputs(ra);
  b.randomize_inputs(rb);
  for (int w = 0; w < 4; ++w)
    EXPECT_EQ(a.value(nl.find("x"))[w], b.value(nl.find("x"))[w]);
}

TEST(Simulator, ConstantsHoldTheirValue) {
  NetlistBuilder nb("consts");
  nb.input("x");
  nb.constant("one", true);
  nb.constant("zero", false);
  nb.gate("g", CellType::kAnd, {"x", "one"});
  nb.gate("h", CellType::kOr, {"g", "zero"});
  nb.output("h");
  const Netlist nl = nb.build();
  Simulator sim(nl, 1);
  sim.value(nl.find("x"))[0] = 0xF0F0ULL;
  sim.eval_frame();
  EXPECT_EQ(sim.value(nl.find("one"))[0], ~0ULL);
  EXPECT_EQ(sim.value(nl.find("zero"))[0], 0ULL);
  EXPECT_EQ(sim.value(nl.find("h"))[0], 0xF0F0ULL);
}

TEST(Simulator, WordParallelMatchesScalar) {
  // Simulating 2 words must agree with two 1-word runs on the same data.
  const Netlist nl = test::tiny_reconvergent();
  Simulator wide(nl, 2);
  wide.value(nl.find("x"))[0] = 0x1234;
  wide.value(nl.find("x"))[1] = 0xABCD;
  wide.value(nl.find("y"))[0] = 0x0F0F;
  wide.value(nl.find("y"))[1] = 0xFF00;
  wide.eval_frame();
  for (int w = 0; w < 2; ++w) {
    Simulator narrow(nl, 1);
    narrow.value(nl.find("x"))[0] = wide.value(nl.find("x"))[w];
    narrow.value(nl.find("y"))[0] = wide.value(nl.find("y"))[w];
    narrow.eval_frame();
    EXPECT_EQ(narrow.value(nl.find("g3"))[0], wide.value(nl.find("g3"))[w]);
  }
}

}  // namespace
}  // namespace serelin
