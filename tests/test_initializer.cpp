#include <gtest/gtest.h>

#include <cmath>

#include "core/initializer.hpp"
#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/builder.hpp"

namespace serelin {
namespace {

TEST(Initializer, ProducesFeasibleStart) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});
  ASSERT_TRUE(g.valid(init.r));
  EXPECT_GT(init.timing.period, 0.0);
  EXPECT_GE(init.timing.period, init.min_period);
  EXPECT_TRUE(test::feasible(g, init.r, init.timing, init.rmin));
}

TEST(Initializer, PeriodIsRelaxedAndInteger) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  InitOptions opt;
  opt.epsilon = 0.10;
  const InitResult init = initialize_retiming(g, opt);
  EXPECT_NEAR(init.min_period, 2.0, 0.01);
  // ceil(2.0 * 1.1) = 3.
  EXPECT_DOUBLE_EQ(init.timing.period, 3.0);
}

TEST(Initializer, FractionalPeriodWhenRequested) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  InitOptions opt;
  opt.integer_period = false;
  const InitResult init = initialize_retiming(g, opt);
  EXPECT_NEAR(init.timing.period, init.min_period * 1.1, 0.01);
}

TEST(Initializer, RminMatchesShortestPathWhenHoldOk) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  InitOptions opt;
  opt.hold = 0.5;  // every gate (delay >= 1) satisfies hold easily
  const InitResult init = initialize_retiming(g, opt);
  ASSERT_TRUE(init.setup_hold_ok);
  EXPECT_DOUBLE_EQ(init.rmin,
                   min_short_path(g, init.r, init.timing));
}

TEST(Initializer, MinShortPathComputation) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const TimingParams tp{10.0, 0.0, 2.0};
  // Register edge b->c: short path = d(c) + 0 (c drives PO) = 1.
  EXPECT_DOUBLE_EQ(min_short_path(g, g.zero_retiming(), tp), 1.0);
}

TEST(Initializer, MinShortPathZeroForRegisteredPo) {
  NetlistBuilder nb("regpo");
  nb.input("x");
  nb.gate("gate", CellType::kBuf, {"x"});
  nb.dff("d", "gate");
  nb.output("d");
  const Netlist nl = nb.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  EXPECT_DOUBLE_EQ(min_short_path(g, g.zero_retiming(), {10.0, 0.0, 2.0}),
                   0.0);
}

TEST(Initializer, MinShortPathInfiniteWithoutRegisters) {
  NetlistBuilder nb("comb");
  nb.input("x");
  nb.gate("gate", CellType::kNot, {"x"});
  nb.output("gate");
  const Netlist nl = nb.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  EXPECT_TRUE(std::isinf(
      min_short_path(g, g.zero_retiming(), {10.0, 0.0, 2.0})));
}

class InitializerProperty : public ::testing::TestWithParam<int> {};

TEST_P(InitializerProperty, FeasibleOnRandomCircuits) {
  RandomCircuitSpec spec;
  spec.gates = 200;
  spec.dffs = 50;
  spec.inputs = 8;
  spec.outputs = 8;
  spec.mean_fanin = 2.0;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 48271;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const InitResult init = initialize_retiming(g, {});
  ASSERT_TRUE(g.valid(init.r));
  if (init.setup_hold_ok) {
    EXPECT_TRUE(test::feasible(g, init.r, init.timing, init.rmin))
        << "rmin=" << init.rmin << " phi=" << init.timing.period;
  } else {
    // Fallback: setup feasibility must still hold (P1 with rmin = 0).
    EXPECT_TRUE(test::feasible(g, init.r, init.timing, 0.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InitializerProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace serelin
