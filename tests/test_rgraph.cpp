#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>

#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "rgraph/apply.hpp"
#include "rgraph/retiming_graph.hpp"
#include "support/check.hpp"

namespace serelin {
namespace {

using EdgeKey = std::tuple<std::string, std::string, std::int32_t>;

// Multiset of (driver name, consumer name or "<po>", registers) triples —
// a structural fingerprint that survives rebuilding.
std::multiset<EdgeKey> fingerprint(const RetimingGraph& g, const Retiming& r) {
  std::multiset<EdgeKey> out;
  const Netlist& nl = g.netlist();
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const REdge& ed = g.edge(e);
    const std::string from = nl.node(g.vertex(ed.from).node).name;
    const RVertex& to = g.vertex(ed.to);
    const std::string to_name =
        to.kind == VertexKind::kSink ? "<po>" : nl.node(to.node).name;
    out.insert({from, to_name, g.wr(e, r)});
  }
  return out;
}

TEST(RetimingGraph, PipelineShape) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  // Vertices: source x, gates a,b,c, sink for c.
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.gate_vertices().size(), 3u);
  // Edges: x->a (0), a->b (0), b->c (1 register via ff), c->po (0).
  EXPECT_EQ(g.edge_count(), 4u);
  const Retiming r0 = g.zero_retiming();
  std::int32_t registered_edges = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    registered_edges += g.wr(e, r0) > 0;
  EXPECT_EQ(registered_edges, 1);
  EXPECT_EQ(g.total_edge_registers(r0), 1);
  EXPECT_EQ(g.shared_register_count(r0), 1);
}

TEST(RetimingGraph, DffChainCollapsesToWeight) {
  NetlistBuilder b("chain");
  b.input("x");
  b.gate("g", CellType::kBuf, {"x"});
  b.dff("d1", "g");
  b.dff("d2", "d1");
  b.gate("h", CellType::kNot, {"d2"});
  b.output("h");
  const Netlist nl = b.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const Retiming r0 = g.zero_retiming();
  // g -> h must be one edge of weight 2.
  bool found = false;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const REdge& ed = g.edge(e);
    if (g.vertex(ed.from).node == nl.find("g") &&
        g.vertex(ed.to).kind == VertexKind::kGate &&
        g.vertex(ed.to).node == nl.find("h")) {
      EXPECT_EQ(ed.w, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(g.total_edge_registers(r0), 2);
  EXPECT_EQ(g.shared_register_count(r0), 2);
}

TEST(RetimingGraph, DffTreeFansOut) {
  NetlistBuilder b("tree");
  b.input("x");
  b.gate("g", CellType::kBuf, {"x"});
  b.dff("d", "g");
  b.gate("u", CellType::kNot, {"d"});
  b.gate("v", CellType::kBuf, {"d"});
  b.output("u");
  b.output("v");
  const Netlist nl = b.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const Retiming r0 = g.zero_retiming();
  // Two edges g->u and g->v, each of weight 1; the physical DFF is shared.
  EXPECT_EQ(g.total_edge_registers(r0), 2);
  EXPECT_EQ(g.shared_register_count(r0), 1);
}

TEST(RetimingGraph, RegisteredPrimaryOutput) {
  NetlistBuilder b("regpo");
  b.input("x");
  b.gate("g", CellType::kBuf, {"x"});
  b.dff("d", "g");
  b.output("d");  // the flip-flop itself is the PO
  const Netlist nl = b.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  bool found = false;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.vertex(g.edge(e).to).kind == VertexKind::kSink) {
      EXPECT_EQ(g.edge(e).w, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RetimingGraph, RejectsRegisterOnlyCycle) {
  Netlist nl("floaty");
  const NodeId x = nl.add_node("x", CellType::kInput, {});
  const NodeId d1 = nl.add_node("d1", CellType::kDff, {kNullNode});
  const NodeId d2 = nl.add_node("d2", CellType::kDff, {d1});
  nl.set_dff_input(d1, d2);
  const NodeId g = nl.add_node("g", CellType::kAnd, {x, d1});
  nl.mark_output(g);
  nl.finalize();
  CellLibrary lib;
  EXPECT_THROW(RetimingGraph(nl, lib), ParseError);
}

TEST(RetimingGraph, ValidChecksBoundaryAndWeights) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  Retiming r = g.zero_retiming();
  EXPECT_TRUE(g.valid(r));
  // Moving c forward is illegal (no register between b and c to pass...
  // actually c's in-edge b->c has one register; moving c forward is legal).
  const VertexId vc = g.vertex_of(nl.find("c"));
  r[vc] = -1;
  EXPECT_TRUE(g.valid(r));
  r[vc] = -2;  // would need two registers on b->c
  EXPECT_FALSE(g.valid(r));
  r[vc] = 0;
  const VertexId vx = g.vertex_of(nl.find("x"));
  r[vx] = -1;  // boundary labels are pinned
  EXPECT_FALSE(g.valid(r));
  r[vx] = 0;
  Retiming wrong_size(g.vertex_count() + 1, 0);
  EXPECT_FALSE(g.valid(wrong_size));
}

TEST(RetimingGraph, WrArithmetic) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  Retiming r = g.zero_retiming();
  const VertexId vb = g.vertex_of(nl.find("b"));
  const VertexId vc = g.vertex_of(nl.find("c"));
  r[vb] = -1;  // a forward move of b adds a register to its out-edge
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const REdge& ed = g.edge(e);
    if (ed.from == vb && ed.to == vc) {
      EXPECT_EQ(g.wr(e, r), 2);  // w + r(to) - r(from) = 1 + 0 - (-1)
    }
  }
}

TEST(ApplyRetiming, IdentityRoundTrip) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const Retiming r0 = g.zero_retiming();
  const Netlist re = apply_retiming(g, r0, "ring_rt");
  EXPECT_EQ(re.gate_count(), nl.gate_count());
  EXPECT_EQ(re.dff_count(),
            static_cast<std::size_t>(g.shared_register_count(r0)));
  RetimingGraph g2(re, lib);
  EXPECT_EQ(fingerprint(g2, g2.zero_retiming()), fingerprint(g, r0));
}

TEST(ApplyRetiming, ForwardMoveRelocatesRegisters) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  Retiming r = g.zero_retiming();
  r[g.vertex_of(nl.find("c"))] = -1;  // push the register past c
  ASSERT_TRUE(g.valid(r));
  const Netlist re = apply_retiming(g, r, "moved");
  EXPECT_EQ(re.dff_count(), 1u);
  // The register now sits at c's output: c's fanout must be the DFF.
  const NodeId c = re.find("c");
  ASSERT_NE(c, kNullNode);
  ASSERT_EQ(re.node(c).fanouts.size(), 1u);
  EXPECT_EQ(re.node(re.node(c).fanouts[0]).type, CellType::kDff);
  // And the rebuilt graph matches the retimed weights.
  RetimingGraph g2(re, lib);
  EXPECT_EQ(fingerprint(g2, g2.zero_retiming()), fingerprint(g, r));
}

TEST(ApplyRetiming, SharedChainTapping) {
  // One driver, consumers at register depths 0, 1 and 2.
  NetlistBuilder b("taps");
  b.input("x");
  b.gate("g", CellType::kBuf, {"x"});
  b.dff("d1", "g");
  b.dff("d2", "d1");
  b.gate("c0", CellType::kNot, {"g"});
  b.gate("c1", CellType::kNot, {"d1"});
  b.gate("c2", CellType::kNot, {"d2"});
  b.output("c0");
  b.output("c1");
  b.output("c2");
  const Netlist nl = b.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  const Retiming r0 = g.zero_retiming();
  EXPECT_EQ(g.shared_register_count(r0), 2);
  const Netlist re = apply_retiming(g, r0, "taps_rt");
  EXPECT_EQ(re.dff_count(), 2u);
  RetimingGraph g2(re, lib);
  EXPECT_EQ(fingerprint(g2, g2.zero_retiming()), fingerprint(g, r0));
}

TEST(ApplyRetiming, RejectsInvalid) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  Retiming r = g.zero_retiming();
  r[g.vertex_of(nl.find("b"))] = -5;
  EXPECT_THROW(apply_retiming(g, r, "bad"), PreconditionError);
}

}  // namespace
}  // namespace serelin
