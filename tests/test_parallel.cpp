// The determinism contract of the parallel execution substrate
// (docs/PARALLELISM.md): every parallel kernel must produce bit-identical
// results for any worker count. Each check runs the same computation at
// threads ∈ {1, 2, hardware} and compares the raw output bits — not with
// tolerances, with operator== on the doubles.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/wd_matrices.hpp"
#include "gen/paper_examples.hpp"
#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "ser/ser_analyzer.hpp"
#include "sim/observability.hpp"
#include "support/deadline.hpp"
#include "support/diag.hpp"
#include "support/parallel.hpp"
#include "support/sync.hpp"

namespace serelin {
namespace {

/// Restores the global worker count on scope exit so a failing test cannot
/// leak its thread setting into the rest of the suite.
struct ThreadGuard {
  ~ThreadGuard() { set_execution_threads(0); }
};

std::vector<int> thread_ladder() {
  std::vector<int> out = {1, 2};
  if (hardware_threads() > 2) out.push_back(hardware_threads());
  out.push_back(hardware_threads() + 3);  // more lanes than cores
  return out;
}

Netlist random_circuit(int gates, std::uint64_t seed) {
  RandomCircuitSpec spec;
  spec.name = "par" + std::to_string(gates);
  spec.gates = gates;
  spec.dffs = gates / 5;
  spec.inputs = 8;
  spec.outputs = 8;
  spec.seed = seed;
  return generate_random_circuit(spec);
}

// --- parallel_for primitive ------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  for (int threads : thread_ladder()) {
    set_execution_threads(threads);
    // More tasks than threads, deliberately non-divisible by the grain.
    constexpr std::size_t kTasks = 1003;
    std::vector<int> hits(kTasks, 0);
    parallel_for(0, kTasks, 7,
                 [&](std::size_t i, int) { ++hits[i]; });
    for (std::size_t i = 0; i < kTasks; ++i)
      ASSERT_EQ(hits[i], 1) << "index " << i << " at " << threads
                            << " threads";
  }
}

TEST(ParallelFor, LaneIndexStaysBelowWorkerCount) {
  ThreadGuard guard;
  set_execution_threads(3);
  std::atomic<bool> ok{true};
  parallel_for(0, 1000, 1, [&](std::size_t, int lane) {
    if (lane < 0 || lane >= parallel_workers()) ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST(ParallelFor, StreamRngIsThreadCountInvariant) {
  ThreadGuard guard;
  constexpr std::uint64_t kSeed = 42;
  constexpr std::size_t kTasks = 257;
  std::vector<std::uint64_t> reference(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i)
    reference[i] = stream_rng(kSeed, i).next();
  for (int threads : thread_ladder()) {
    set_execution_threads(threads);
    std::vector<std::uint64_t> got(kTasks, 0);
    parallel_for(0, kTasks, 3, [&](std::size_t i, int) {
      got[i] = stream_rng(kSeed, i).next();
    });
    EXPECT_EQ(got, reference) << threads << " threads";
  }
}

TEST(ParallelFor, DistinctIndicesGetDistinctStreams) {
  Rng a = stream_rng(7, 0);
  Rng b = stream_rng(7, 1);
  ASSERT_NE(a.next(), b.next());
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadGuard guard;
  set_execution_threads(2);
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [&](std::size_t i, int) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, NestedRegionsRunInline) {
  ThreadGuard guard;
  set_execution_threads(4);
  std::vector<int> hits(64, 0);
  parallel_for(0, 8, 1, [&](std::size_t outer, int) {
    // A nested parallel_for must not fan out again (per-lane scratch of
    // the outer region would be shared); it runs inline on lane 0.
    parallel_for(0, 8, 1, [&](std::size_t inner, int lane) {
      EXPECT_EQ(lane, 0);
      ++hits[outer * 8 + inner];
    });
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

// --- W/D matrices ----------------------------------------------------------

void expect_wd_identical(const Netlist& nl) {
  ThreadGuard guard;
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  set_execution_threads(1);
  const WdMatrices reference(g);
  const std::vector<double> ref_periods = reference.candidate_periods();
  for (int threads : thread_ladder()) {
    set_execution_threads(threads);
    const WdMatrices wd(g);
    ASSERT_EQ(wd.size(), reference.size());
    for (VertexId u = 0; u < g.vertex_count(); ++u) {
      for (VertexId v = 0; v < g.vertex_count(); ++v) {
        ASSERT_EQ(wd.w(u, v), reference.w(u, v))
            << "W(" << u << "," << v << ") at " << threads << " threads";
        ASSERT_EQ(wd.d(u, v), reference.d(u, v))
            << "D(" << u << "," << v << ") at " << threads << " threads";
      }
    }
    EXPECT_EQ(wd.candidate_periods(), ref_periods);
  }
}

TEST(ParallelWd, BitIdenticalOnPaperExample) {
  expect_wd_identical(fig1_circuit(12));
}

TEST(ParallelWd, BitIdenticalOnRandomCircuits) {
  expect_wd_identical(random_circuit(300, 11));
  expect_wd_identical(random_circuit(500, 12));
}

TEST(ParallelWd, BitIdenticalOnTinyFixtures) {
  // Fewer sources than workers: some lanes receive no chunk at all.
  expect_wd_identical(test::tiny_pipeline());
  expect_wd_identical(test::tiny_ring());
}

TEST(WdCandidatePeriods, ToleranceDedupKeepsDistinctValues) {
  CellLibrary lib;
  const Netlist nl = test::tiny_pipeline();
  RetimingGraph g(nl, lib);
  const WdMatrices wd(g);
  const std::vector<double> periods = wd.candidate_periods();
  ASSERT_FALSE(periods.empty());
  // Strictly increasing with a real gap — no exact duplicates, no
  // near-duplicates within the 1e-9 tolerance.
  for (std::size_t i = 1; i < periods.size(); ++i)
    EXPECT_GT(periods[i], periods[i - 1] + 1e-9);
}

// --- Observability ---------------------------------------------------------

void expect_obs_identical(const Netlist& nl,
                          ObservabilityAnalyzer::Mode mode) {
  ThreadGuard guard;
  SimConfig cfg;
  cfg.patterns = 256;
  cfg.frames = 4;
  cfg.warmup = 6;
  set_execution_threads(1);
  const ObsResult reference = ObservabilityAnalyzer(nl, cfg).run(mode);
  for (int threads : thread_ladder()) {
    set_execution_threads(threads);
    const ObsResult got = ObservabilityAnalyzer(nl, cfg).run(mode);
    ASSERT_EQ(got.obs.size(), reference.obs.size());
    for (std::size_t i = 0; i < got.obs.size(); ++i)
      ASSERT_EQ(got.obs[i], reference.obs[i])
          << "node " << i << " at " << threads << " threads ("
          << (mode == ObservabilityAnalyzer::Mode::kExact ? "exact"
                                                          : "signature")
          << ")";
  }
}

TEST(ParallelObservability, ExactBitIdenticalOnPaperExample) {
  expect_obs_identical(fig1_circuit(10), ObservabilityAnalyzer::Mode::kExact);
}

TEST(ParallelObservability, ExactBitIdenticalOnRandomCircuit) {
  // More flip nodes than any worker count in the ladder.
  expect_obs_identical(random_circuit(200, 21),
                       ObservabilityAnalyzer::Mode::kExact);
}

TEST(ParallelObservability, SignatureBitIdenticalOnPaperExample) {
  expect_obs_identical(fig1_circuit(10),
                       ObservabilityAnalyzer::Mode::kSignature);
}

TEST(ParallelObservability, SignatureBitIdenticalOnRandomCircuit) {
  expect_obs_identical(random_circuit(400, 22),
                       ObservabilityAnalyzer::Mode::kSignature);
}

// --- SER sweep -------------------------------------------------------------

TEST(ParallelSer, TotalsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const Netlist nl = random_circuit(300, 31);
  CellLibrary lib;
  SerOptions opt;
  opt.timing = {40.0, 0.0, 2.0};
  opt.sim.patterns = 256;
  opt.sim.frames = 4;
  opt.sim.warmup = 6;

  set_execution_threads(1);
  const SerReport reference = analyze_ser(nl, lib, opt);
  for (int threads : thread_ladder()) {
    set_execution_threads(threads);
    const SerReport got = analyze_ser(nl, lib, opt);
    EXPECT_EQ(got.total, reference.total) << threads << " threads";
    EXPECT_EQ(got.combinational, reference.combinational);
    EXPECT_EQ(got.sequential, reference.sequential);
    ASSERT_EQ(got.contribution.size(), reference.contribution.size());
    for (std::size_t i = 0; i < got.contribution.size(); ++i)
      ASSERT_EQ(got.contribution[i], reference.contribution[i]) << i;
  }
}

// --- Stress ----------------------------------------------------------------

TEST(ParallelStress, ManyMoreTasksThanThreads) {
  ThreadGuard guard;
  set_execution_threads(4);
  constexpr std::size_t kTasks = 10000;
  std::vector<std::uint64_t> slots(kTasks, 0);
  parallel_for(0, kTasks, 1, [&](std::size_t i, int) {
    Rng rng = stream_rng(99, i);
    std::uint64_t acc = 0;
    for (int k = 0; k < 16; ++k) acc ^= rng.next();
    slots[i] = acc;
  });
  set_execution_threads(1);
  std::vector<std::uint64_t> reference(kTasks, 0);
  parallel_for(0, kTasks, 1, [&](std::size_t i, int) {
    Rng rng = stream_rng(99, i);
    std::uint64_t acc = 0;
    for (int k = 0; k < 16; ++k) acc ^= rng.next();
    reference[i] = acc;
  });
  EXPECT_EQ(slots, reference);
}

// --- Guided scheduling -----------------------------------------------------

TEST(ParallelGuided, ResultsAreThreadCountInvariant) {
  ThreadGuard guard;
  constexpr std::size_t kN = 10000;
  set_execution_threads(1);
  std::vector<std::uint64_t> reference(kN, 0);
  parallel_for_guided(0, kN, 4, [&](std::size_t i, int) {
    reference[i] = i * 2654435761ULL;
  });
  for (int threads : thread_ladder()) {
    set_execution_threads(threads);
    std::vector<std::uint64_t> got(kN, 0);
    parallel_for_guided(0, kN, 4,
                        [&](std::size_t i, int) { got[i] = i * 2654435761ULL; });
    ASSERT_EQ(got, reference) << "at " << threads << " threads";
  }
}

TEST(ParallelGuided, LaneIndexStaysBelowConfiguredWorkers) {
  // Regression: the shared pool keeps the largest worker count ever
  // requested. A guided region configured for fewer workers must not let
  // the pool's surplus lanes participate — callers size per-lane scratch
  // with parallel_workers().
  ThreadGuard guard;
  set_execution_threads(8);
  parallel_for(0, std::size_t{64}, 1, [](std::size_t, int) {});  // grow pool
  set_execution_threads(2);
  std::atomic<int> max_lane{-1};
  parallel_for_guided(0, std::size_t{5000}, 1, [&](std::size_t, int lane) {
    int seen = max_lane.load(std::memory_order_relaxed);
    while (lane > seen &&
           !max_lane.compare_exchange_weak(seen, lane,
                                           std::memory_order_relaxed)) {
    }
  });
  EXPECT_LT(max_lane.load(), parallel_workers());
}

TEST(ParallelGuided, DeadlineExpiryCancelsRegion) {
  ThreadGuard guard;
  set_execution_threads(2);
  const Deadline expired = Deadline::after(0.0);
  EXPECT_THROW(parallel_for_guided(0, std::size_t{1000}, 1, expired,
                                   "test/guided-deadline",
                                   [](std::size_t, int) {}),
               CancelledError);
}

// --- Per-lane diagnostics --------------------------------------------------

/// Runs a deadline-aware parallel region in which every index divisible by
/// seven reports a finding through per-lane sinks, and returns the merged
/// single sink. Used to pin the determinism contract: the merged output
/// must be bit-identical for any worker count (and race-free under TSAN).
DiagnosticSink lane_merged_findings(std::size_t n) {
  const Deadline deadline = Deadline::after(3600.0);
  LaneDiagnostics lanes(parallel_workers());
  parallel_for(0, n, 64, deadline, "test/lane-diag",
               [&](std::size_t i, int lane) {
                 if (i % 7 == 0)
                   lanes.error(lane, i, DiagCode::kOracleLegality,
                               "finding at index " + std::to_string(i));
               });
  DiagnosticSink merged;
  lanes.merge_into(merged);
  return merged;
}

TEST(ParallelDiag, LaneMergeIsThreadCountInvariant) {
  ThreadGuard guard;
  constexpr std::size_t kIndices = 10000;
  set_execution_threads(1);
  const DiagnosticSink reference = lane_merged_findings(kIndices);
  ASSERT_EQ(reference.error_count(), kIndices / 7 + 1);
  for (int threads : thread_ladder()) {
    set_execution_threads(threads);
    const DiagnosticSink got = lane_merged_findings(kIndices);
    ASSERT_EQ(got.error_count(), reference.error_count())
        << "at " << threads << " threads";
    ASSERT_EQ(got.diagnostics().size(), reference.diagnostics().size());
    for (std::size_t i = 0; i < got.diagnostics().size(); ++i) {
      const Diagnostic& a = got.diagnostics()[i];
      const Diagnostic& b = reference.diagnostics()[i];
      ASSERT_EQ(a.message, b.message)
          << "entry " << i << " at " << threads << " threads";
      ASSERT_EQ(a.code, b.code);
      ASSERT_EQ(a.severity, b.severity);
    }
  }
}

TEST(ParallelDiag, LaneCapKeepsCountsExact) {
  ThreadGuard guard;
  set_execution_threads(2);
  LaneDiagnostics lanes(parallel_workers(), /*max_stored=*/4);
  parallel_for(0, 100, 1, [&](std::size_t i, int lane) {
    lanes.error(lane, i, DiagCode::kOracleLegality, "e" + std::to_string(i));
  });
  EXPECT_EQ(lanes.error_count(), 100u);  // capped storage, exact totals
  DiagnosticSink merged;
  lanes.merge_into(merged);
  EXPECT_EQ(merged.error_count(), 100u);
  EXPECT_LE(merged.diagnostics().size(),
            4u * static_cast<std::size_t>(parallel_workers()));
}

// --- CondVar timed waits ---------------------------------------------------
//
// CondVar::wait_for has no predicate parameter and no return value: callers
// MUST loop on their own predicate (sync.hpp documents this). These tests pin
// down the three ways that contract can go wrong — a timed wait that never
// returns, a loop that trusts a wakeup instead of its predicate, and a
// notification that fires before the waiter ever blocks. The suite name
// keeps the Parallel* prefix so the TSan CI stage picks it up.

TEST(ParallelCondVar, WaitForReturnsAfterTimeoutWhenNeverNotified) {
  Mutex m;
  CondVar cv;
  bool flag = false;
  const auto t0 = std::chrono::steady_clock::now();
  const auto budget = std::chrono::milliseconds(60);
  {
    MutexLock lock(m);
    // Nobody ever notifies and nobody ever sets the flag: the only way out
    // of this loop is wait_for's timeout bounding each lap. A plain wait()
    // here would hang forever.
    while (!flag && std::chrono::steady_clock::now() - t0 < budget) {
      cv.wait_for(m, std::chrono::milliseconds(5));
    }
  }
  EXPECT_FALSE(flag);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, budget);
}

TEST(ParallelCondVar, PredicateLoopSurvivesSpuriousWakeups) {
  Mutex m;
  CondVar cv;
  bool flag = false;
  std::atomic<bool> waiter_done{false};
  std::thread waiter([&] {
    MutexLock lock(m);
    while (!flag) cv.wait_for(m, std::chrono::milliseconds(50));
    waiter_done.store(true);
  });
  // Hammer the waiter with wakeups that do NOT establish the predicate —
  // indistinguishable, from its side, from spurious wakeups. A waiter that
  // exits on wakeup rather than on the predicate trips the EXPECT below.
  for (int i = 0; i < 20; ++i) {
    cv.notify_all();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(waiter_done.load());
  {
    MutexLock lock(m);
    flag = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_TRUE(waiter_done.load());
}

TEST(ParallelCondVar, NotifyBeforeWaitStillMakesProgress) {
  Mutex m;
  CondVar cv;
  bool flag = false;
  // Establish the predicate and notify while nobody is waiting. The
  // notification itself is lost (condition variables are not latches), so a
  // correct waiter must check the predicate before blocking — and even if it
  // blocks anyway, the timed wait bounds the damage to one lap.
  {
    MutexLock lock(m);
    flag = true;
  }
  cv.notify_one();
  std::thread waiter([&] {
    MutexLock lock(m);
    while (!flag) cv.wait_for(m, std::chrono::milliseconds(20));
    flag = false;  // consume, proving we held the lock with the flag set
  });
  waiter.join();
  MutexLock lock(m);
  EXPECT_FALSE(flag);
}

}  // namespace
}  // namespace serelin
