// Tests of the classical W/D-matrix formulation (src/core/wd_matrices) and
// its cross-validation against the FEAS-based min-period retimer.
#include <gtest/gtest.h>

#include "core/min_period.hpp"
#include "core/wd_matrices.hpp"
#include "gen/random_circuit.hpp"
#include "helpers.hpp"
#include "netlist/builder.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {
namespace {

TEST(WdMatrices, PipelineHandValues) {
  // x(0) -> a(1) -> b(1) -> [ff] -> c(1) -> PO.
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdMatrices wd(g);
  const VertexId x = g.vertex_of(nl.find("x"));
  const VertexId a = g.vertex_of(nl.find("a"));
  const VertexId b = g.vertex_of(nl.find("b"));
  const VertexId c = g.vertex_of(nl.find("c"));

  EXPECT_EQ(wd.w(a, b), 0);
  EXPECT_DOUBLE_EQ(wd.d(a, b), 2.0);  // d(a) + d(b)
  EXPECT_EQ(wd.w(a, c), 1);           // through the register
  EXPECT_DOUBLE_EQ(wd.d(a, c), 3.0);  // d(a) + d(b) + d(c)
  EXPECT_EQ(wd.w(x, c), 1);
  EXPECT_DOUBLE_EQ(wd.d(x, c), 3.0);  // x has delay 0
  EXPECT_EQ(wd.w(c, a), WdMatrices::kUnreachable);  // no backward path
  // Diagonal: the empty path.
  EXPECT_EQ(wd.w(b, b), 0);
  EXPECT_DOUBLE_EQ(wd.d(b, b), 1.0);
}

TEST(WdMatrices, RingPaths) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdMatrices wd(g);
  const VertexId inv1 = g.vertex_of(nl.find("inv1"));
  const VertexId buf1 = g.vertex_of(nl.find("buf1"));
  // inv1 -> [ff2] -> buf1: one register; the reverse direction goes
  // around through [ff1].
  EXPECT_EQ(wd.w(inv1, buf1), 1);
  EXPECT_EQ(wd.w(buf1, inv1), 1);
  EXPECT_DOUBLE_EQ(wd.d(inv1, buf1), 2.0);
}

TEST(WdMatrices, RegisterMinimalPathWinsEvenIfShorterDelay) {
  // Two routes u -> v: a long register-free chain and a short registered
  // hop. W picks the registered... no: W is the MINIMUM register count, so
  // the register-free chain defines W = 0 and D = its (large) delay.
  NetlistBuilder nb("tworoutes");
  nb.input("x");
  nb.gate("u", CellType::kBuf, {"x"});
  nb.gate("m1", CellType::kBuf, {"u"});
  nb.gate("m2", CellType::kBuf, {"m1"});
  nb.dff("d", "u");
  nb.gate("v", CellType::kAnd, {"m2", "d"});
  nb.output("v");
  const Netlist nl = nb.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdMatrices wd(g);
  const VertexId u = g.vertex_of(nl.find("u"));
  const VertexId v = g.vertex_of(nl.find("v"));
  EXPECT_EQ(wd.w(u, v), 0);
  EXPECT_DOUBLE_EQ(wd.d(u, v), 1 + 1 + 1 + 2);  // u, m1, m2, v(AND)
}

TEST(WdMatrices, CandidatePeriodsSortedUnique) {
  const Netlist nl = test::tiny_ring();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdMatrices wd(g);
  const auto cands = wd.candidate_periods();
  ASSERT_FALSE(cands.empty());
  for (std::size_t i = 1; i < cands.size(); ++i)
    EXPECT_LT(cands[i - 1], cands[i]);
}

TEST(WdMatrices, MemoryIsQuadratic) {
  RandomCircuitSpec spec;
  spec.gates = 100;
  spec.dffs = 25;
  spec.seed = 5;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdMatrices wd(g);
  const std::size_t n = g.vertex_count();
  EXPECT_GE(wd.memory_bytes(), n * n * (sizeof(std::int32_t) + sizeof(double)));
}

TEST(WdRetiming, FeasibilityMatchesDirectCheck) {
  const Netlist nl = test::tiny_pipeline();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdMatrices wd(g);
  // The pipeline's floor is 2 (see MinPeriod.PurePipelineCannotImprove).
  EXPECT_FALSE(wd_retime_for_period(g, wd, 1.9).has_value());
  const auto r = wd_retime_for_period(g, wd, 2.0);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(g.valid(*r));
  GraphTiming t(g, {2.0, 0.0, 0.0});
  t.compute(*r);
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    EXPECT_LE(t.arrival(v), 2.0 + 1e-9);
}

TEST(WdRetiming, MinPeriodOnLoop) {
  // The 2-register 8-delay loop of the min-period tests: optimum 4.
  NetlistBuilder nb("loop");
  nb.input("x");
  nb.dff("s1", "g6");
  nb.dff("s2", "s1");
  nb.gate("g1", CellType::kBuf, {"s2"});
  nb.gate("g2", CellType::kBuf, {"g1"});
  nb.gate("g3", CellType::kBuf, {"g2"});
  nb.gate("g4", CellType::kBuf, {"g3"});
  nb.gate("g5", CellType::kBuf, {"g4"});
  nb.gate("g6", CellType::kXor, {"g5", "x"});
  nb.output("s2");
  const Netlist nl = nb.build();
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  WdMatrices wd(g);
  const auto res = wd_min_period(g, wd);
  EXPECT_DOUBLE_EQ(res.period, 4.0);
  ASSERT_TRUE(g.valid(res.r));
}

class WdCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(WdCrossCheck, FeasUpperBoundsTheExactOptimum) {
  RandomCircuitSpec spec;
  spec.gates = 120;
  spec.dffs = 30;
  spec.inputs = 6;
  spec.outputs = 6;
  spec.mean_fanin = 1.9;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 7368787ULL;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;
  RetimingGraph g(nl, lib);

  WdMatrices wd(g);
  const auto exact = wd_min_period(g, wd);

  MinPeriodRetimer feas(g, {});
  const auto approx = feas.minimize();

  // The W/D result is the exact optimum of serelin's boundary-constrained
  // model. FEAS moves registers only backward, so in cones that need
  // forward moves (registers pushed toward primary outputs) it can settle
  // above the optimum — it is the scalable O(|E|)-memory upper bound, the
  // W/D path the Θ(|V|²) exact reference. Sound invariants: FEAS is never
  // below the optimum, the exact retiming truly meets its period, and the
  // gap stays within the structural factor observed across the suite.
  EXPECT_GE(approx.period, exact.period - 1e-6) << "FEAS beat the optimum?";
  EXPECT_LE(approx.period, 2.0 * exact.period);
  GraphTiming t(g, {exact.period, 0.0, 0.0});
  t.compute(exact.r);
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    EXPECT_LE(t.arrival(v), exact.period + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WdCrossCheck, ::testing::Range(1, 9));

}  // namespace
}  // namespace serelin
