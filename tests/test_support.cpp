#include <gtest/gtest.h>

#include <set>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace serelin {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 4000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 4000, 0.5, 0.03);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, RejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, SplitDropsEmptyPieces) {
  const auto parts = split("a,,b, c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitEmptyInput) { EXPECT_TRUE(split("", ",").empty()); }

TEST(Strings, ToUpper) {
  EXPECT_EQ(to_upper("nAnD"), "NAND");
  EXPECT_EQ(to_upper(""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("INPUT(x)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(Table, AlignsColumns) {
  TextTable t({"name", "v"});
  t.add_row({"x", "10"});
  t.add_row({"longer", "7"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 7  |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_fixed(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_percent(-0.327), "-32.70%");
  EXPECT_EQ(fmt_sci(7.72e-3), "7.72E-03");
}

TEST(Check, AssertAndRequireThrowTypedErrors) {
  EXPECT_THROW(SERELIN_ASSERT(false, "boom"), AssertionError);
  EXPECT_THROW(SERELIN_REQUIRE(false, "bad call"), PreconditionError);
  EXPECT_NO_THROW(SERELIN_ASSERT(true, ""));
  EXPECT_NO_THROW(SERELIN_REQUIRE(true, ""));
}

TEST(Check, MessagesCarryContext) {
  try {
    SERELIN_REQUIRE(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace serelin
