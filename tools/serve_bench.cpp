// serve_bench — closed-loop load generator for the serelin job server
// (docs/SERVING.md, "Bench methodology").
//
//   serve_bench [--out BENCH_serve.json] [--clients N] [--jobs N]
//               [--dup-every K] [--workers N] [--max-queue N]
//               [--socket PATH] [--no-saturation]
//
// Phase 1 (mixed load): N client connections each drive a closed loop of
// J jobs — submit, wait for the oracle-verified result, next — over mixed
// circuit sizes, priorities, start stages and deadlines. Every K-th job of
// a client resubmits that client's first job verbatim; the original has
// already completed (closed loop), so each duplicate MUST be a cache hit
// and its result MUST be byte-identical to the original. Because every
// accounting event is attached to a submission, not to timing, the
// counters in the report are exact constants of the workload shape —
// bench_gate.py gates them against the committed baseline.
//
// Phase 2 (saturation): pins every worker and fills the queue with held
// jobs, then keeps submitting until the server answers with structured
// backpressure rejections; everything held is then cancelled and reaped.
// Proves saturation degrades into explicit rejection, never a hang.
//
// By default the server runs in-process (fresh cache, deterministic);
// --socket drives an already-running external server instead — used by
// the CI smoke stage against a freshly spawned serelin_serve.
//
// Exit codes: 0 pass, 64 usage, 70 internal/expectation failure (dropped
// connection, no rejection under saturation), 77 divergence — a duplicate
// missed the cache or its result was not bit-identical.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "flow/journal.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/atomic_io.hpp"
#include "support/parallel.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"

namespace {

using namespace serelin;

struct BenchConfig {
  std::string out_path = "BENCH_serve.json";
  std::string socket;       ///< empty = in-process server
  int clients = 32;
  int jobs = 4;             ///< per client
  int dup_every = 3;        ///< every K-th job resubmits the client's first
  int workers = 8;
  int max_queue = 64;
  bool saturation = true;
  double job_deadline_s = 30.0;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::fprintf(stderr,
               "usage: serve_bench [--out f.json] [--clients N] [--jobs N]"
               " [--dup-every K] [--workers N] [--max-queue N]"
               " [--socket PATH] [--no-saturation]\n");
  std::exit(64);
}

int parse_count(const char* flag, const char* arg, int lo, int hi) {
  const auto v = parse_int(arg, lo, hi);
  if (!v)
    usage_error(std::string(flag) + " wants an integer in [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "], got '" +
                arg + "'");
  return static_cast<int>(*v);
}

/// One request/response exchange. Throws serelin::Error on a dead
/// connection or a hung server — the bench never waits forever.
Request rpc(UnixStream& stream, const std::string& line,
            double patience_s = 120.0) {
  SERELIN_REQUIRE(stream.write_line(line), "server connection lost on send");
  const Deadline patience = Deadline::after(patience_s);
  std::string response;
  for (;;) {
    const UnixStream::ReadStatus st = stream.read_line(response, 500);
    if (st == UnixStream::ReadStatus::kLine) break;
    SERELIN_REQUIRE(st == UnixStream::ReadStatus::kTimeout,
                    "server closed the connection mid-request");
    SERELIN_REQUIRE(!patience.expired(),
                    "server did not answer within " +
                        std::to_string(patience_s) + "s");
  }
  const ParseOutcome parsed = parse_object(response);
  SERELIN_REQUIRE(parsed.ok, "unparseable response: " + parsed.error);
  return parsed.request;
}

/// The deterministic circuit of (client, job): unique per pair, mixed
/// sizes via the index.
std::string make_circuit(int client, int job) {
  RandomCircuitSpec spec;
  static constexpr int kGateSizes[3] = {24, 40, 64};
  spec.gates = kGateSizes[(client + job) % 3];
  spec.dffs = std::max(4, spec.gates / 4);
  spec.inputs = 6;
  spec.outputs = 6;
  spec.name = "load";
  spec.seed = 9000ULL + static_cast<std::uint64_t>(client) * 16 +
              static_cast<std::uint64_t>(job);
  std::ostringstream text;
  write_bench(text, generate_random_circuit(spec));
  return text.str();
}

std::string submit_line(const std::string& circuit, int priority,
                        const char* start, double deadline_s,
                        int test_delay_ms = 0, bool use_cache = true) {
  JsonObject o;
  o.set("op", "submit")
      .set("circuit", circuit)
      .set("patterns", 128)
      .set("frames", 4)
      .set("warmup", 8)
      .set("priority", priority)
      .set("start", start)
      .set("deadline_s", deadline_s);
  if (test_delay_ms > 0) o.set("test_delay_ms", test_delay_ms);
  if (!use_cache) o.set("cache", false);
  return o.str();
}

struct ClientOutcome {
  int completed = 0;
  int cache_hits = 0;      ///< duplicates answered cached
  int executed = 0;        ///< submissions that ran the pipeline
  int backpressure_retries = 0;
  bool duplicates_identical = true;
  bool duplicates_cached = true;
  std::vector<double> latencies_ms;
  std::string error;  ///< non-empty: the connection/protocol failed
};

void client_main(int client, const BenchConfig& cfg, ClientOutcome& out) {
  try {
    UnixStream stream = UnixStream::connect(cfg.socket);
    std::string first_line;    // first job's exact submission
    std::string first_result;  // its bit-exact result text
    for (int j = 0; j < cfg.jobs; ++j) {
      const bool dup = j > 0 && cfg.dup_every > 0 && (j + 1) % cfg.dup_every == 0;
      std::string line;
      if (dup) {
        line = first_line;  // verbatim resubmission => same fingerprint
      } else {
        line = submit_line(make_circuit(client, j), /*priority=*/j % 3,
                           j % 2 ? "minobs" : "minobswin",
                           cfg.job_deadline_s);
        if (j == 0) first_line = line;
      }

      Stopwatch watch;
      Request accepted;
      for (int attempt = 0;; ++attempt) {
        accepted = rpc(stream, line);
        if (accepted.get_bool("ok").value_or(false)) break;
        const std::string err =
            accepted.get_string("error").value_or("(none)");
        SERELIN_REQUIRE(err == "backpressure",
                        "submit rejected with '" + err + "'");
        SERELIN_REQUIRE(attempt < 400, "starved by backpressure");
        ++out.backpressure_retries;
        const double retry = std::clamp(
            accepted.get_number("retry_after_s").value_or(0.05), 0.01, 0.2);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(static_cast<int>(retry * 1000)));
      }
      const std::string id = accepted.get_string("job").value_or("");
      SERELIN_REQUIRE(!id.empty(), "accept response carried no job id");
      const bool was_cached = accepted.get_bool("cached").value_or(false);

      JsonObject want;
      want.set("op", "result").set("job", id).set("wait", true);
      const Request res = rpc(stream, want.str());
      SERELIN_REQUIRE(res.get_bool("ok").value_or(false),
                      "result failed: " +
                          res.get_string("detail").value_or("(none)"));
      const std::string state = res.get_string("state").value_or("");
      SERELIN_REQUIRE(state == "done", "job " + id + " ended " + state +
                                           ": " +
                                           res.get_string("detail").value_or(""));
      SERELIN_REQUIRE(res.get_bool("verified").value_or(false),
                      "job " + id + " was not oracle-verified");
      SERELIN_REQUIRE(!res.get_bool("degraded").value_or(true),
                      "job " + id + " degraded — deadline too tight for "
                      "this machine, bench counters would be unstable");
      const std::string text = res.get_string("circuit").value_or("");
      SERELIN_REQUIRE(!text.empty(), "done result carried no circuit");

      out.latencies_ms.push_back(watch.seconds() * 1e3);
      ++out.completed;
      if (dup) {
        if (!was_cached) out.duplicates_cached = false;
        else ++out.cache_hits;
        if (text != first_result) out.duplicates_identical = false;
      } else {
        ++out.executed;
        if (j == 0) first_result = text;
      }
    }
  } catch (const std::exception& e) {
    out.error = e.what();
  }
}

/// Phase 2: fill every worker and the whole queue with held jobs, then
/// overflow. Returns the number of structured backpressure rejections
/// observed (must be positive); cancels and reaps everything held.
int saturate(const BenchConfig& cfg) {
  UnixStream stream = UnixStream::connect(cfg.socket);
  std::vector<std::string> held;
  int rejections = 0;
  const int total = cfg.workers + cfg.max_queue + 8;
  for (int i = 0; i < total; ++i) {
    RandomCircuitSpec spec;
    spec.gates = 16;
    spec.dffs = 4;
    spec.inputs = 4;
    spec.outputs = 4;
    spec.seed = 77000ULL + static_cast<std::uint64_t>(i);
    std::ostringstream text;
    write_bench(text, generate_random_circuit(spec));
    const Request r = rpc(
        stream, submit_line(text.str(), /*priority=*/0, "minobs",
                            cfg.job_deadline_s, /*test_delay_ms=*/60000,
                            /*use_cache=*/false));
    if (r.get_bool("ok").value_or(false)) {
      held.push_back(r.get_string("job").value_or(""));
      SERELIN_REQUIRE(!held.back().empty(), "accept carried no job id");
    } else {
      const std::string err = r.get_string("error").value_or("(none)");
      SERELIN_REQUIRE(err == "backpressure",
                      "saturation rejected with '" + err + "'");
      SERELIN_REQUIRE(r.get_number("retry_after_s").has_value(),
                      "backpressure rejection carried no retry_after_s");
      ++rejections;
    }
  }
  for (const std::string& id : held) {
    JsonObject c;
    c.set("op", "cancel").set("job", id);
    const Request r = rpc(stream, c.str());
    SERELIN_REQUIRE(r.get_bool("ok").value_or(false), "cancel failed");
  }
  for (const std::string& id : held) {
    JsonObject w;
    w.set("op", "result").set("job", id).set("wait", true);
    const Request r = rpc(stream, w.str());
    const std::string state = r.get_string("state").value_or("");
    SERELIN_REQUIRE(state == "cancelled",
                    "held job " + id + " ended " + state +
                        ", expected cancelled");
  }
  return rejections;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc)
        usage_error(std::string("missing value for ") + argv[i]);
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--out")) cfg.out_path = value();
    else if (!std::strcmp(argv[i], "--socket")) cfg.socket = value();
    else if (!std::strcmp(argv[i], "--clients"))
      cfg.clients = parse_count("--clients", value(), 1, 1024);
    else if (!std::strcmp(argv[i], "--jobs"))
      cfg.jobs = parse_count("--jobs", value(), 1, 1024);
    else if (!std::strcmp(argv[i], "--dup-every"))
      cfg.dup_every = parse_count("--dup-every", value(), 0, 1024);
    else if (!std::strcmp(argv[i], "--workers"))
      cfg.workers = parse_count("--workers", value(), 1, 256);
    else if (!std::strcmp(argv[i], "--max-queue"))
      cfg.max_queue = parse_count("--max-queue", value(), 1, 100000);
    else if (!std::strcmp(argv[i], "--no-saturation"))
      cfg.saturation = false;
    else
      usage_error(std::string("unknown option ") + argv[i]);
  }

  try {
    // In-process server by default: fresh cache every run, so duplicate
    // accounting is exact. The cache must hold every unique job of the
    // run — eviction order is timing-dependent, and a deterministic
    // counter contract cannot sit on top of it.
    std::unique_ptr<Server> server;
    std::thread server_thread;
    CancelToken server_stop;
    const bool external = !cfg.socket.empty();
    if (!external) {
      cfg.socket = "/tmp/serelin_serve_bench." +
                   std::to_string(static_cast<long long>(::getpid())) +
                   ".sock";
      ServerConfig sc;
      sc.socket_path = cfg.socket;
      sc.workers = cfg.workers;
      sc.max_queue = cfg.max_queue;
      sc.cache_capacity =
          static_cast<std::size_t>(cfg.clients) *
          static_cast<std::size_t>(cfg.jobs) * 2;
      server = std::make_unique<Server>(sc);
      server->start();
      server_thread = std::thread(
          [&server, server_stop] { server->run(server_stop); });
    }

    std::printf("serve_bench: %d clients x %d jobs (dup every %d), "
                "%d workers, queue %d, socket %s\n",
                cfg.clients, cfg.jobs, cfg.dup_every, cfg.workers,
                cfg.max_queue, cfg.socket.c_str());

    // Phase 1: mixed closed-loop load.
    std::vector<ClientOutcome> outcomes(
        static_cast<std::size_t>(cfg.clients));
    Stopwatch phase1;
    {
      std::vector<std::thread> threads;
      threads.reserve(outcomes.size());
      for (int c = 0; c < cfg.clients; ++c)
        threads.emplace_back(client_main, c, std::cref(cfg),
                             std::ref(outcomes[static_cast<std::size_t>(c)]));
      for (std::thread& t : threads) t.join();
    }
    const double phase1_ms = phase1.seconds() * 1e3;

    int completed = 0, hits = 0, executed = 0, retries = 0;
    bool identical = true, all_cached = true;
    std::vector<double> latencies;
    for (const ClientOutcome& o : outcomes) {
      if (!o.error.empty()) {
        std::fprintf(stderr, "error: client failed: %s\n", o.error.c_str());
        return 70;  // a dropped connection is an outright failure
      }
      completed += o.completed;
      hits += o.cache_hits;
      executed += o.executed;
      retries += o.backpressure_retries;
      identical = identical && o.duplicates_identical;
      all_cached = all_cached && o.duplicates_cached;
      latencies.insert(latencies.end(), o.latencies_ms.begin(),
                       o.latencies_ms.end());
    }
    int dups_per_client = 0;  // jobs j>0 with (j+1) % dup_every == 0
    for (int j = 1; cfg.dup_every > 0 && j < cfg.jobs; ++j)
      if ((j + 1) % cfg.dup_every == 0) ++dups_per_client;
    const int expected_hits = cfg.clients * dups_per_client;
    const int expected_total = cfg.clients * cfg.jobs;

    std::sort(latencies.begin(), latencies.end());
    std::printf("serve_bench: phase 1 done in %.0f ms — %d completed, "
                "%d cache hits, %d retries; p50 %.1f / p90 %.1f / p99 %.1f "
                "ms\n",
                phase1_ms, completed, hits, retries,
                percentile(latencies, 50), percentile(latencies, 90),
                percentile(latencies, 99));

    if (!identical) {
      std::fprintf(stderr,
                   "error: a duplicate's result was not bit-identical to "
                   "the original — cache divergence\n");
      return 77;
    }
    if (!all_cached || hits != expected_hits ||
        completed != expected_total) {
      std::fprintf(stderr,
                   "error: accounting mismatch — %d/%d completed, %d/%d "
                   "cache hits\n",
                   completed, expected_total, hits, expected_hits);
      return 77;
    }

    // Phase 2: saturation must answer with structured rejections.
    int rejections = 0;
    if (cfg.saturation) {
      rejections = saturate(cfg);
      std::printf("serve_bench: saturation produced %d explicit "
                  "backpressure rejections\n",
                  rejections);
      if (rejections <= 0) {
        std::fprintf(stderr,
                     "error: saturation produced no backpressure "
                     "rejection\n");
        return 70;
      }
    }

    // Server-side view (non-gated; informational).
    std::int64_t srv_hits = -1, srv_completed = -1;
    {
      UnixStream s = UnixStream::connect(cfg.socket);
      JsonObject q;
      q.set("op", "stats");
      const Request st = rpc(s, q.str());
      srv_hits = st.get_int("cache_hits").value_or(-1);
      srv_completed = st.get_int("completed").value_or(-1);
      if (!external) {
        JsonObject down;
        down.set("op", "shutdown");
        (void)rpc(s, down.str());
      }
    }
    if (!external) {
      server_thread.join();
      server.reset();
    }

    // bench_gate-compatible report. The "counters" are client-side
    // constants of the workload shape (see the header comment): exact-
    // equality gating is sound because nothing in them depends on timing.
    std::string out = "{\n";
    char buf[512];
    auto line = [&](const char* fmt, auto... args) {
      std::snprintf(buf, sizeof(buf), fmt, args...);
      out += buf;
    };
    line("  \"workload\": {\"clients\": %d, \"jobs_per_client\": %d, "
         "\"dup_every\": %d, \"workers\": %d, \"max_queue\": %d},\n",
         cfg.clients, cfg.jobs, cfg.dup_every, cfg.workers, cfg.max_queue);
    out += "  \"kernels\": [\n";
    line("    {\"kernel\": \"serve_mixed\", \"config\": \"%d clients x %d "
         "jobs, dup every %d, %d workers\",\n",
         cfg.clients, cfg.jobs, cfg.dup_every, cfg.workers);
    line("     \"bit_identical_across_threads\": %s,\n",
         identical ? "true" : "false");
    line("     \"counters_identical_across_threads\": %s,\n",
         (all_cached && hits == expected_hits && completed == expected_total)
             ? "true"
             : "false");
    line("     \"counters\": {\"serve-jobs\": %d, \"serve-cache-hits\": %d, "
         "\"serve-cache-misses\": %d},\n",
         executed, hits, executed);
    line("     \"results\": [\n       {\"threads\": %d, \"wall_ms\": %.2f, "
         "\"speedup\": 1.000}\n     ]}\n",
         cfg.workers, phase1_ms);
    out += "  ],\n";
    line("  \"load\": {\"throughput_jobs_per_s\": %.2f,\n",
         completed / (phase1_ms / 1e3));
    line("    \"latency_ms\": {\"p50\": %.2f, \"p90\": %.2f, \"p99\": "
         "%.2f},\n",
         percentile(latencies, 50), percentile(latencies, 90),
         percentile(latencies, 99));
    line("    \"backpressure_retries\": %d,\n", retries);
    line("    \"saturation_rejections\": %d,\n", rejections);
    line("    \"server\": {\"cache_hits\": %lld, \"completed\": %lld}}\n",
         static_cast<long long>(srv_hits),
         static_cast<long long>(srv_completed));
    out += "}\n";
    atomic_write_file(cfg.out_path, out);
    std::printf("wrote %s\n", cfg.out_path.c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 70;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 70;
  }
}
