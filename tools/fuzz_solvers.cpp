// fuzz_solvers — coverage-guided differential fuzzing over the solver
// stack.
//
//   fuzz_solvers [--seed S] [--iters N] [--max-seconds T] [--mode M]
//                [--min-gates A] [--max-gates B] [--patterns K]
//                [--no-elw] [--area-weight W] [--engine-seconds E]
//                [--max-shrink-checks C] [--corpus DIR] [--journal FILE]
//                [--replay DIR] [--self-check] [--verbose]
//
// Every iteration draws a constrained random circuit (gen/random_circuit
// generator modes; --mode picks one, default round-robins all four) and
// hands it to run_differential (src/check/differential.hpp), which runs
// the forest solver, the closure solver, exhaustive search, the dense and
// lazy W/D engines, the FEAS min-period retimer, incremental relabeling
// and netlist materialization against each other and the independent
// RetimingOracle. Any violated agreement is a divergence: the circuit is
// delta-debugged down to a 1-minimal netlist that still shows the same
// divergence kind (src/check/shrink.hpp), persisted to the corpus as
// div-<contenthash16>.bench with a `fuzz_solvers v1` .repro sidecar
// carrying the full DiffConfig, and the tool exits 77 ("divergence
// found", docs/ROBUSTNESS.md exit-code registry).
//
// --replay DIR re-runs every corpus entry whose sidecar starts with the
// `fuzz_solvers v1` marker (fault_harness entries in the same directory
// are skipped) under its recorded config and compares the observed
// verdict with the sidecar's `expect:` line — expect-clean entries that
// diverge are regressions (exit 77); expect-divergent entries that no
// longer reproduce are reported as fixed.
//
// --self-check proves the harness's detection power before trusting a
// clean campaign: a fixed schedule of ten planted faults (fault_inject
// style — skewed gains, corrupted retimings, stripped stop_details, ...)
// runs through the same pipeline, and at least nine must be caught,
// shrunk and persisted with working replay commands. Exits 1 otherwise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "check/shrink.hpp"
#include "flow/fuzz_events.hpp"
#include "flow/journal.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/validate.hpp"
#include "support/corpus.hpp"
#include "support/diag.hpp"
#include "support/rng.hpp"
#include "support/signals.hpp"
#include "support/strings.hpp"

namespace {

namespace fs = std::filesystem;
using namespace serelin;

struct FuzzOptions {
  std::uint64_t seed = 1;
  int iters = 200;
  double max_seconds = 0.0;  // 0 = unbounded
  std::string mode = "all";  // generator mode name, or "all" (round-robin)
  int min_gates = 8;
  int max_gates = 40;
  int patterns = 128;       // simulation K; multiple of 64
  bool enforce_elw = true;
  double area_weight = 0.0;
  double engine_seconds = 5.0;
  int max_shrink_checks = 4000;
  std::string corpus = "tests/corpus/found";
  bool corpus_set = false;  // self-check defaults elsewhere unless given
  std::string journal_path;
  std::string replay;
  bool self_check = false;
  bool verbose = false;
};

[[noreturn]] void usage(const char* msg) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: fuzz_solvers [--seed S] [--iters N] [--max-seconds T]\n"
      "                    [--mode all|uniform|skewed-fanin|register-dense|"
      "near-critical]\n"
      "                    [--min-gates A] [--max-gates B] [--patterns K]\n"
      "                    [--no-elw] [--area-weight W] "
      "[--engine-seconds E]\n"
      "                    [--max-shrink-checks C] [--corpus DIR]\n"
      "                    [--journal FILE] [--replay DIR] [--self-check]\n"
      "                    [--verbose]\n");
  std::exit(64);
}

FuzzOptions parse_args(int argc, char** argv) {
  FuzzOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--seed") {
      const auto v = parse_uint(value());
      if (!v) usage("--seed wants an unsigned integer");
      opt.seed = *v;
    } else if (a == "--iters") {
      const auto v = parse_int(value(), 1, 1000000000);
      if (!v) usage("--iters wants a positive integer");
      opt.iters = static_cast<int>(*v);
    } else if (a == "--max-seconds") {
      const auto v = parse_double(value());
      if (!v || *v < 0) usage("--max-seconds wants a non-negative number");
      opt.max_seconds = *v;
    } else if (a == "--mode") {
      opt.mode = value();
      if (opt.mode != "all" && !parse_generator_mode(opt.mode))
        usage(("unknown generator mode " + opt.mode).c_str());
    } else if (a == "--min-gates") {
      const auto v = parse_int(value(), 1, 100000);
      if (!v) usage("--min-gates wants a positive integer");
      opt.min_gates = static_cast<int>(*v);
    } else if (a == "--max-gates") {
      const auto v = parse_int(value(), 1, 100000);
      if (!v) usage("--max-gates wants a positive integer");
      opt.max_gates = static_cast<int>(*v);
    } else if (a == "--patterns") {
      const auto v = parse_int(value(), 64, 1 << 20);
      if (!v || *v % 64 != 0)
        usage("--patterns wants a positive multiple of 64");
      opt.patterns = static_cast<int>(*v);
    } else if (a == "--no-elw") {
      opt.enforce_elw = false;
    } else if (a == "--area-weight") {
      const auto v = parse_double(value());
      if (!v || *v < 0) usage("--area-weight wants a non-negative number");
      opt.area_weight = *v;
    } else if (a == "--engine-seconds") {
      const auto v = parse_double(value());
      if (!v || *v < 0) usage("--engine-seconds wants a non-negative number");
      opt.engine_seconds = *v;
    } else if (a == "--max-shrink-checks") {
      const auto v = parse_int(value(), 1, 1000000);
      if (!v) usage("--max-shrink-checks wants a positive integer");
      opt.max_shrink_checks = static_cast<int>(*v);
    } else if (a == "--corpus") {
      opt.corpus = value();
      opt.corpus_set = true;
    } else if (a == "--journal") {
      opt.journal_path = value();
    } else if (a == "--replay") {
      opt.replay = value();
    } else if (a == "--self-check") {
      opt.self_check = true;
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else {
      usage(("unknown option " + a).c_str());
    }
  }
  if (opt.min_gates > opt.max_gates)
    usage("--min-gates must not exceed --max-gates");
  return opt;
}

DiffConfig make_config(const FuzzOptions& opt) {
  DiffConfig cfg;
  cfg.patterns = opt.patterns;
  cfg.enforce_elw = opt.enforce_elw;
  cfg.area_weight = opt.area_weight;
  cfg.engine_seconds = opt.engine_seconds;
  return cfg;
}

// ---------------------------------------------------------------------------
// Corpus sidecar format: `fuzz_solvers v1` marker, `expect:` verdict, the
// full DiffConfig as key/value lines, then the repro commands.

constexpr const char* kSidecarMarker = "fuzz_solvers v1";

std::string render_sidecar(const DiffConfig& cfg, bool expect_divergent,
                           const std::string& kind, const std::string& detail,
                           const std::string& reproduce,
                           const std::string& corpus) {
  std::ostringstream os;
  os << kSidecarMarker << "\n";
  os << "expect: " << (expect_divergent ? "divergent" : "clean") << "\n";
  if (!kind.empty()) os << "kind: " << kind << "\n";
  if (!detail.empty()) {
    std::string one_line = detail;
    std::replace(one_line.begin(), one_line.end(), '\n', ' ');
    os << "detail: " << one_line << "\n";
  }
  os << "patterns: " << cfg.patterns << "\n";
  os << "frames: " << cfg.frames << "\n";
  os << "warmup: " << cfg.warmup << "\n";
  os << "sim_seed: " << cfg.sim_seed << "\n";
  os << "enforce_elw: " << (cfg.enforce_elw ? 1 : 0) << "\n";
  os << "area_weight: " << cfg.area_weight << "\n";
  os << "exhaustive_max_gates: " << cfg.exhaustive_max_gates << "\n";
  os << "exhaustive_bound: " << cfg.exhaustive_bound << "\n";
  os << "engine_seconds: " << cfg.engine_seconds << "\n";
  os << "walk_moves: " << cfg.walk_moves << "\n";
  os << "walk_seed: " << cfg.walk_seed << "\n";
  os << "fault_kind: " << fault_kind_name(cfg.fault.kind) << "\n";
  os << "fault_engine: " << cfg.fault.engine << "\n";
  if (!reproduce.empty()) os << "reproduce: " << reproduce << "\n";
  os << "replay: fuzz_solvers --replay " << corpus << "\n";
  return os.str();
}

struct ReplaySpec {
  DiffConfig cfg;
  bool expect_divergent = false;
  bool valid = false;
};

ReplaySpec parse_sidecar(const std::string& text) {
  ReplaySpec spec;
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kSidecarMarker) return spec;
  spec.valid = true;
  while (std::getline(is, line)) {
    const std::size_t colon = line.find(": ");
    if (colon == std::string::npos) continue;
    const std::string key = line.substr(0, colon);
    const std::string val = line.substr(colon + 2);
    if (key == "expect") {
      spec.expect_divergent = val == "divergent";
    } else if (key == "patterns") {
      if (const auto v = parse_int(val, 64, 1 << 20)) {
        spec.cfg.patterns = static_cast<int>(*v);
      }
    } else if (key == "frames") {
      if (const auto v = parse_int(val, 1, 1000))
        spec.cfg.frames = static_cast<int>(*v);
    } else if (key == "warmup") {
      if (const auto v = parse_int(val, 0, 100000))
        spec.cfg.warmup = static_cast<int>(*v);
    } else if (key == "sim_seed") {
      if (const auto v = parse_uint(val)) spec.cfg.sim_seed = *v;
    } else if (key == "enforce_elw") {
      spec.cfg.enforce_elw = val != "0";
    } else if (key == "area_weight") {
      if (const auto v = parse_double(val)) spec.cfg.area_weight = *v;
    } else if (key == "exhaustive_max_gates") {
      if (const auto v = parse_int(val, 0, 64))
        spec.cfg.exhaustive_max_gates = static_cast<std::size_t>(*v);
    } else if (key == "exhaustive_bound") {
      if (const auto v = parse_int(val, 0, 16))
        spec.cfg.exhaustive_bound = static_cast<int>(*v);
    } else if (key == "engine_seconds") {
      if (const auto v = parse_double(val)) spec.cfg.engine_seconds = *v;
    } else if (key == "walk_moves") {
      if (const auto v = parse_int(val, 0, 100000))
        spec.cfg.walk_moves = static_cast<int>(*v);
    } else if (key == "walk_seed") {
      if (const auto v = parse_uint(val)) spec.cfg.walk_seed = *v;
    } else if (key == "fault_kind") {
      for (int k = 0; k < kNumFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        if (val == fault_kind_name(kind)) spec.cfg.fault.kind = kind;
      }
    } else if (key == "fault_engine") {
      if (const auto v = parse_int(val, 0, 1))
        spec.cfg.fault.engine = static_cast<int>(*v);
    }
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Divergence handling: shrink, persist, journal.

struct DivergenceRecord {
  std::string corpus_path;
  int shrunk_nodes = 0;
  int shrunk_gates = 0;
  bool one_minimal = false;
};

DivergenceRecord handle_divergence(const FuzzOptions& opt,
                                   const DiffConfig& cfg, const Netlist& nl,
                                   const DifferentialReport& report,
                                   std::int64_t iteration,
                                   const std::string& reproduce,
                                   RunJournal& journal) {
  DivergenceRecord rec;
  const Divergence& first = report.divergences.front();
  std::fprintf(stderr, "DIVERGENCE at iteration %lld: %s\n  %s\n",
               static_cast<long long>(iteration), first.kind.c_str(),
               first.detail.c_str());

  // Shrink to a 1-minimal netlist that still shows the SAME divergence
  // kind (a shrink that wanders into a different bug would produce a
  // misleading bug report).
  const std::string kind = first.kind;
  const ShrinkPredicate still_fails = [&](const Netlist& cand) {
    const DifferentialReport r = run_differential(cand, cfg);
    for (const Divergence& d : r.divergences)
      if (d.kind == kind) return true;
    return false;
  };
  Netlist minimal = nl;
  ShrinkResult shrink;
  try {
    ShrinkOptions so;
    so.max_checks = opt.max_shrink_checks;
    shrink = shrink_netlist(nl, still_fails, so);
    minimal = std::move(shrink.netlist);
  } catch (const std::exception& e) {
    // A flaky predicate (e.g. a real race) is itself worth keeping; fall
    // back to persisting the unshrunk circuit.
    std::fprintf(stderr, "  shrink failed (%s); keeping full circuit\n",
                 e.what());
  }
  rec.shrunk_nodes = static_cast<int>(minimal.node_count());
  rec.shrunk_gates = static_cast<int>(minimal.gate_count());
  rec.one_minimal = shrink.one_minimal;
  journal_fuzz_shrink(journal, iteration,
                      static_cast<std::int64_t>(nl.node_count()),
                      static_cast<std::int64_t>(minimal.node_count()),
                      shrink.checks, shrink.one_minimal);
  std::fprintf(stderr,
               "  shrunk %zu -> %zu nodes (%d gates, %d checks%s)\n",
               nl.node_count(), minimal.node_count(), rec.shrunk_gates,
               shrink.checks, shrink.one_minimal ? ", 1-minimal" : "");

  std::ostringstream os;
  write_bench(os, minimal);
  const std::string sidecar =
      render_sidecar(cfg, /*expect_divergent=*/true, first.kind, first.detail,
                     reproduce, opt.corpus);
  const PersistResult kept =
      persist_counterexample(opt.corpus, "div", ".bench", os.str(), sidecar);
  rec.corpus_path = kept.path;
  if (kept.path.empty()) {
    std::fprintf(stderr, "  WARNING: could not persist counterexample to %s\n",
                 opt.corpus.c_str());
  } else {
    std::fprintf(stderr, "  counterexample: %s%s\n", kept.path.c_str(),
                 kept.deduplicated ? " (already in corpus)" : "");
  }
  journal_fuzz_divergence(journal, iteration, first, rec.corpus_path);
  return rec;
}

// ---------------------------------------------------------------------------
// Fuzzing campaign.

/// Set by main(); lets the iteration loops stop cleanly on SIGINT/SIGTERM.
const SignalGuard* g_signals = nullptr;

int run_fuzz(const FuzzOptions& opt, RunJournal& journal) {
  const auto t0 = std::chrono::steady_clock::now();
  const DiffConfig base = make_config(opt);
  int done = 0;
  for (int iter = 0; iter < opt.iters; ++iter, ++done) {
    if (opt.max_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - t0;
      if (elapsed.count() >= opt.max_seconds) break;
    }
    if (g_signals && g_signals->interrupted()) {
      std::fprintf(stderr, "fuzz: interrupted after %d iteration(s)\n", done);
      break;
    }

    std::uint64_t stream =
        opt.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(iter + 1);
    Rng rng(splitmix64(stream));
    const GeneratorMode mode =
        opt.mode == "all"
            ? static_cast<GeneratorMode>(iter % kNumGeneratorModes)
            : *parse_generator_mode(opt.mode);
    SpecRanges ranges;
    ranges.min_gates = opt.min_gates;
    ranges.max_gates = opt.max_gates;
    const RandomCircuitSpec spec = random_spec(mode, rng, ranges);
    Netlist nl = generate_random_circuit(spec);

    // The generator promises structurally legal netlists; lint before
    // solving so a generator regression surfaces as its own divergence
    // kind instead of confusing the solver comparisons. Warn-level
    // findings (dead logic) are swept — the engines should only ever see
    // what a real flow would hand them.
    DiagnosticSink lint_sink;
    lint_netlist(nl, lint_sink);
    if (lint_sink.error_count() > 0) {
      DifferentialReport report;
      report.divergences.push_back(
          {"generator-invalid",
           "generated netlist failed lint with " +
               std::to_string(lint_sink.error_count()) + " error(s)"});
      const std::string reproduce =
          "fuzz_solvers --seed " + std::to_string(opt.seed) + " --iters " +
          std::to_string(iter + 1);
      handle_divergence(opt, base, nl, report, iter, reproduce, journal);
      return 77;
    }
    if (lint_sink.warning_count() > 0) nl = repair_netlist(nl, lint_sink);

    const DifferentialReport report = run_differential(nl, base);

    FuzzIterationEvent ev;
    ev.iteration = iter;
    ev.mode = generator_mode_name(mode);
    ev.circuit_seed = spec.seed;
    ev.gates = static_cast<int>(nl.gate_count());
    ev.dffs = static_cast<int>(nl.dff_count());
    ev.verdict = report.summary();
    ev.divergences = static_cast<std::int64_t>(report.divergences.size());
    journal_fuzz_iteration(journal, ev);

    if (opt.verbose && (iter + 1) % 25 == 0)
      std::fprintf(stderr, "  ... %d/%d iterations\n", iter + 1, opt.iters);

    if (report.divergent()) {
      const std::string reproduce =
          "fuzz_solvers --seed " + std::to_string(opt.seed) + " --iters " +
          std::to_string(iter + 1) + " --mode " + generator_mode_name(mode) +
          " --min-gates " + std::to_string(opt.min_gates) + " --max-gates " +
          std::to_string(opt.max_gates) +
          (opt.enforce_elw ? "" : " --no-elw");
      handle_divergence(opt, base, nl, report, iter, reproduce, journal);
      return 77;
    }
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  std::printf(
      "fuzz_solvers: %d iteration(s) clean in %.1fs (seed %llu, mode %s)\n",
      done, elapsed.count(), static_cast<unsigned long long>(opt.seed),
      opt.mode.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Replay: re-run every fuzz_solvers corpus entry under its recorded config.

int run_replay(const FuzzOptions& opt, RunJournal& journal) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opt.replay, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() == ".bench") files.push_back(entry.path());
  }
  if (ec) {
    std::fprintf(stderr, "error: cannot read replay directory %s: %s\n",
                 opt.replay.c_str(), ec.message().c_str());
    return 64;
  }
  std::sort(files.begin(), files.end());

  int replayed = 0, regressions = 0, fixed = 0, unreadable = 0;
  std::int64_t iteration = 0;
  for (const fs::path& path : files) {
    // Only fuzz_solvers entries carry the marker sidecar; fault_harness
    // counterexamples share the directory and are skipped here.
    const fs::path sidecar_path = path.string() + ".repro";
    std::string sidecar_text;
    {
      std::ifstream in(sidecar_path, std::ios::binary);
      if (!in) continue;
      std::ostringstream ss;
      ss << in.rdbuf();
      sidecar_text = ss.str();
    }
    const ReplaySpec spec = parse_sidecar(sidecar_text);
    if (!spec.valid) continue;

    ++replayed;
    Netlist nl;
    try {
      nl = read_bench_file(path.string());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "UNREADABLE %s: %s\n", path.string().c_str(),
                   e.what());
      ++unreadable;
      continue;
    }
    const DifferentialReport report = run_differential(nl, spec.cfg);

    FuzzIterationEvent ev;
    ev.iteration = iteration++;
    ev.mode = "replay:" + path.filename().string();
    ev.gates = static_cast<int>(nl.gate_count());
    ev.dffs = static_cast<int>(nl.dff_count());
    ev.verdict = report.summary();
    ev.divergences = static_cast<std::int64_t>(report.divergences.size());
    journal_fuzz_iteration(journal, ev);

    if (spec.expect_divergent && !report.divergent()) {
      std::fprintf(stderr,
                   "FIXED %s: expected divergent, now clean (entry can be "
                   "retired)\n",
                   path.string().c_str());
      ++fixed;
    } else if (!spec.expect_divergent && report.divergent()) {
      std::fprintf(stderr, "REGRESSION %s: expected clean, got %s\n",
                   path.string().c_str(), report.summary().c_str());
      ++regressions;
    } else if (opt.verbose) {
      std::fprintf(stderr, "ok %s: %s\n", path.string().c_str(),
                   report.summary().c_str());
    }
  }

  std::printf(
      "fuzz_solvers: replayed %d entr%s from %s: %d regression(s), %d "
      "fixed, %d unreadable\n",
      replayed, replayed == 1 ? "y" : "ies", opt.replay.c_str(), regressions,
      fixed, unreadable);
  if (regressions > 0) return 77;
  if (unreadable > 0) return 65;
  return 0;
}

// ---------------------------------------------------------------------------
// Self-check: plant ten faults, demand at least nine catches.

struct SelfCheckEntry {
  FaultKind kind;
  int engine;            // 0 = forest, 1 = closure
  GeneratorMode mode;
  std::uint64_t stream;  // fixed: the schedule ignores --seed
};

int run_self_check(const FuzzOptions& opt, RunJournal& journal) {
  // Result-corrupting faults (objective-skew, retiming-perturb,
  // stop-detail-drop) are caught unconditionally; the input-skew kinds
  // depend on the instance actually exercising the skewed quantity, so
  // their circuits are drawn from the modes that make the corresponding
  // constraint bind (register-dense for R_min, near-critical for the
  // period). The streams are fixed so the schedule is one deterministic
  // regression vector.
  const SelfCheckEntry schedule[10] = {
      {FaultKind::kObjectiveSkew, 0, GeneratorMode::kUniform, 11},
      {FaultKind::kObjectiveSkew, 1, GeneratorMode::kRegisterDense, 12},
      {FaultKind::kRetimingPerturb, 0, GeneratorMode::kSkewedFanin, 13},
      {FaultKind::kRetimingPerturb, 1, GeneratorMode::kNearCritical, 14},
      {FaultKind::kStopDetailDrop, 0, GeneratorMode::kUniform, 15},
      {FaultKind::kStopDetailDrop, 1, GeneratorMode::kRegisterDense, 16},
      {FaultKind::kGainSkew, 0, GeneratorMode::kRegisterDense, 17},
      {FaultKind::kGainSkew, 1, GeneratorMode::kRegisterDense, 18},
      {FaultKind::kRminSkew, 0, GeneratorMode::kRegisterDense, 20},
      {FaultKind::kPeriodSkew, 0, GeneratorMode::kRegisterDense, 10},
  };

  const DiffConfig base = make_config(opt);
  int caught = 0;
  int oversize = 0;
  for (int k = 0; k < 10; ++k) {
    const SelfCheckEntry& entry = schedule[k];
    std::uint64_t stream = 0xFD5BULL + 0x9e3779b97f4a7c15ULL * entry.stream;
    Rng rng(splitmix64(stream));
    SpecRanges ranges;
    ranges.min_gates = 10;
    ranges.max_gates = 14;
    const RandomCircuitSpec spec = random_spec(entry.mode, rng, ranges);
    const Netlist nl = generate_random_circuit(spec);

    DiffConfig cfg = base;
    cfg.enforce_elw = true;  // self-check always exercises P2'
    cfg.fault.kind = entry.kind;
    cfg.fault.engine = entry.engine;

    const DifferentialReport report = run_differential(nl, cfg);
    const char* engine_name = entry.engine == 0 ? "forest" : "closure";
    if (!report.divergent()) {
      std::fprintf(stderr, "self-check %d/10: %s on %s: MISSED (%s)\n", k + 1,
                   fault_kind_name(entry.kind), engine_name,
                   report.summary().c_str());
      continue;
    }
    ++caught;

    const std::string reproduce = "fuzz_solvers --self-check";
    const DivergenceRecord rec =
        handle_divergence(opt, cfg, nl, report, k, reproduce, journal);
    if (rec.shrunk_gates > 12) ++oversize;
    std::fprintf(stderr,
                 "self-check %d/10: %s on %s: caught as %s, shrunk to %d "
                 "gate(s)%s\n",
                 k + 1, fault_kind_name(entry.kind), engine_name,
                 report.divergences.front().kind.c_str(), rec.shrunk_gates,
                 rec.one_minimal ? " (1-minimal)" : "");
  }

  // The persisted counterexamples must reproduce through --replay: run it
  // in-process over the self-check corpus.
  FuzzOptions replay_opt = opt;
  replay_opt.replay = opt.corpus;
  const int replay_rc = run_replay(replay_opt, journal);
  const bool replay_ok = replay_rc == 0;  // all expect-divergent reproduce

  std::printf(
      "fuzz_solvers: self-check caught %d/10 planted fault(s), %d over the "
      "12-gate shrink target, replay %s\n",
      caught, oversize, replay_ok ? "consistent" : "INCONSISTENT");
  return caught >= 9 && replay_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // First SIGINT/SIGTERM: finish the current iteration, finalize the
  // journal, exit 78. Second: die with the conventional signal status.
  CancelToken interrupt;
  SignalGuard guard(interrupt);
  g_signals = &guard;
  FuzzOptions opt = parse_args(argc, argv);
  if (opt.self_check && !opt.corpus_set) {
    // A bare --self-check must not write into the committed regression
    // corpus; its deterministic artifacts live under the build tree.
    opt.corpus = "build/fuzz-selfcheck-corpus";
  }

  RunJournal journal;
  if (!opt.journal_path.empty()) {
    try {
      journal = RunJournal(opt.journal_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: cannot open journal %s: %s\n",
                   opt.journal_path.c_str(), e.what());
      return 70;
    }
  }

  int rc = 0;
  if (opt.self_check) {
    rc = run_self_check(opt, journal);
  } else if (!opt.replay.empty()) {
    rc = run_replay(opt, journal);
  } else {
    rc = run_fuzz(opt, journal);
  }
  if (guard.interrupted()) {
    JsonObject o;
    o.set("event", "interrupted").set("cancelled", true);
    journal.write(o);
    if (rc == 0) rc = SignalGuard::kExitInterrupted;
  }
  if (!journal.healthy())
    std::fprintf(stderr, "warning: journal %s went unhealthy mid-run\n",
                 journal.path().c_str());
  return rc;
}
