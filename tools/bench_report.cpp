// bench_report — runs the parallel hot-path kernels (W/D construction,
// exact and signature observability, the SER sweep) at a ladder of worker
// counts and records wall time + speedup into a JSON file, so the repo's
// perf trajectory is measured and versioned instead of asserted.
//
//   bench_report [--out BENCH_parallel.json] [--gates N] [--dffs N]
//                [--threads 1,2,4,8] [--repeat R]
//                [--kernels wd_construct,wd_query,...]
//
// Each (kernel, threads) cell reports the best of R runs (default 2) and
// the speedup relative to the same kernel at 1 thread. The tool also
// cross-checks that every thread count produced bit-identical results and
// refuses to write the report otherwise — the determinism contract of
// docs/PARALLELISM.md is enforced at measurement time.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <limits>
#include <span>

#include "core/wd_query.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/cell_library.hpp"
#include "rgraph/retiming_graph.hpp"
#include "ser/ser_analyzer.hpp"
#include "sim/observability.hpp"
#include "support/atomic_io.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "timing/graph_timing.hpp"

namespace {

using namespace serelin;

struct Cell {
  int threads = 1;
  double wall_ms = 0.0;
  double speedup = 1.0;
};

struct KernelReport {
  std::string name;
  std::string config;
  std::vector<Cell> cells;
  bool identical = true;  // results bit-identical across thread counts
  /// Named-counter totals of one run (all zero when SERELIN_TRACE=OFF).
  MetricsSnapshot counters;
  /// Counter totals identical for every thread count (the determinism
  /// contract extends to the instrumentation; docs/OBSERVABILITY.md).
  bool counters_identical = true;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::fprintf(stderr,
               "usage: bench_report [--out f.json] [--gates N] [--dffs N]"
               " [--threads 1,2,4,8] [--repeat R]"
               " [--kernels wd_construct,wd_query,...]\n");
  std::exit(64);
}

/// Checked "--gates banana" rejection: whole-string integer in [lo, hi].
int parse_count(const char* flag, const char* arg, int lo, int hi) {
  const auto v = parse_int(arg, lo, hi);
  if (!v)
    usage_error(std::string(flag) + " wants an integer in [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "], got '" +
                arg + "'");
  return static_cast<int>(*v);
}

std::vector<int> parse_threads(const char* arg) {
  std::vector<int> out;
  std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const auto t = parse_int(s.substr(pos, comma - pos), 1, 4096);
    if (!t) usage_error("--threads wants comma-separated counts >= 1");
    out.push_back(static_cast<int>(*t));
    pos = comma + 1;
  }
  if (out.empty()) usage_error("--threads needs at least one count");
  return out;
}

std::vector<std::string> parse_kernels(const char* arg) {
  std::vector<std::string> out;
  std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string name = s.substr(pos, comma - pos);
    if (!name.empty()) out.push_back(std::move(name));
    pos = comma + 1;
  }
  if (out.empty()) usage_error("--kernels needs at least one name");
  return out;
}

/// Times `run` (which returns a fingerprint of its result) at each worker
/// count: best of `repeat` runs per count, bit-identity checked against
/// the 1-thread fingerprint.
template <typename RunFn>
KernelReport measure(const std::string& name, const std::string& config,
                     const std::vector<int>& thread_counts, int repeat,
                     RunFn&& run) {
  KernelReport rep;
  rep.name = name;
  rep.config = config;
  std::vector<std::uint64_t> reference;
  bool have_counters = false;
  double t1_ms = 0.0;
  for (int threads : thread_counts) {
    set_execution_threads(threads);
    double best_ms = 0.0;
    std::vector<std::uint64_t> fingerprint;
    MetricsSnapshot counters;
    for (int r = 0; r < repeat; ++r) {
      const MetricsSnapshot before = metrics_snapshot();
      Stopwatch sw;
      fingerprint = run();
      const double ms = sw.seconds() * 1e3;
      counters = metrics_snapshot() - before;
      if (r == 0 || ms < best_ms) best_ms = ms;
    }
    if (reference.empty())
      reference = fingerprint;
    else if (fingerprint != reference)
      rep.identical = false;
    if (!have_counters) {
      rep.counters = counters;
      have_counters = true;
    } else if (!(counters == rep.counters)) {
      rep.counters_identical = false;
    }
    if (threads == thread_counts.front()) t1_ms = best_ms;
    rep.cells.push_back({threads, best_ms, t1_ms / best_ms});
    std::printf("  %-14s threads=%-2d  %10.1f ms  (x%.2f)%s%s\n",
                name.c_str(), threads, best_ms, t1_ms / best_ms,
                rep.identical ? "" : "  MISMATCH",
                rep.counters_identical ? "" : "  COUNTER-MISMATCH");
  }
  set_execution_threads(0);
  return rep;
}

/// Order-sensitive 64-bit fingerprint (FNV-1a over the byte stream).
template <typename T>
std::uint64_t fingerprint_bytes(const std::vector<T>& data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  for (std::size_t i = 0; i < data.size() * sizeof(T); ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void write_json(const char* path, const RandomCircuitSpec& spec,
                const std::vector<KernelReport>& kernels) {
  std::string out = "{\n";
  char buf[256];
  auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  line(
      "  \"circuit\": {\"gates\": %d, \"dffs\": %d, \"inputs\": %d, "
      "\"outputs\": %d, \"seed\": %llu},\n",
      spec.gates, spec.dffs, spec.inputs, spec.outputs,
      static_cast<unsigned long long>(spec.seed));
  line("  \"hardware_threads\": %d,\n", hardware_threads());
  out += "  \"kernels\": [\n";
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    const KernelReport& rep = kernels[k];
    line("    {\"kernel\": \"%s\", \"config\": \"%s\",\n",
         rep.name.c_str(), rep.config.c_str());
    line("     \"bit_identical_across_threads\": %s,\n",
         rep.identical ? "true" : "false");
    line("     \"counters_identical_across_threads\": %s,\n",
         rep.counters_identical ? "true" : "false");
    line("     \"counters\": %s,\n", metrics_json(rep.counters).c_str());
    out += "     \"results\": [";
    for (std::size_t i = 0; i < rep.cells.size(); ++i) {
      const Cell& c = rep.cells[i];
      line(
          "%s\n       {\"threads\": %d, \"wall_ms\": %.2f, "
          "\"speedup\": %.3f}",
          i ? "," : "", c.threads, c.wall_ms, c.speedup);
    }
    line("\n     ]}%s\n", k + 1 < kernels.size() ? "," : "");
  }
  out += "  ]\n}\n";
  // Atomic replace: a crash or kill mid-report leaves the previous report
  // (or nothing), never half a JSON document for bench_gate.py to choke on.
  atomic_write_file(path, out);
}


}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_parallel.json";
  RandomCircuitSpec spec;
  spec.name = "micro";
  spec.gates = 10000;
  spec.dffs = 2500;
  spec.inputs = 32;
  spec.outputs = 32;
  spec.mean_fanin = 2.0;
  spec.seed = 777;
  std::vector<int> threads = {1, 2, 4, 8};
  int repeat = 2;
  std::vector<std::string> only_kernels;  // empty = run everything

  try {
    for (int i = 1; i < argc; ++i) {
      auto value = [&]() -> const char* {
        if (i + 1 >= argc)
          usage_error(std::string("missing value for ") + argv[i]);
        return argv[++i];
      };
      if (!std::strcmp(argv[i], "--out")) out_path = value();
      else if (!std::strcmp(argv[i], "--gates"))
        spec.gates = parse_count("--gates", value(), 1, 10000000);
      else if (!std::strcmp(argv[i], "--dffs"))
        spec.dffs = parse_count("--dffs", value(), 0, 10000000);
      else if (!std::strcmp(argv[i], "--threads")) threads = parse_threads(value());
      else if (!std::strcmp(argv[i], "--repeat"))
        repeat = parse_count("--repeat", value(), 1, 1000);
      else if (!std::strcmp(argv[i], "--kernels"))
        only_kernels = parse_kernels(value());
      else
        usage_error(std::string("unknown option ") + argv[i]);
    }
    auto want = [&](const char* name) {
      if (only_kernels.empty()) return true;
      for (const std::string& k : only_kernels)
        if (k == name) return true;
      return false;
    };

    std::printf("bench_report: %d-gate circuit, %d hardware thread(s)\n",
                spec.gates, hardware_threads());
    const Netlist nl = generate_random_circuit(spec);
    CellLibrary lib;
    const RetimingGraph g(nl, lib);
    std::vector<KernelReport> kernels;

    if (want("wd_construct")) {
      kernels.push_back(measure(
          "wd_construct", "all-pairs W/D over the retiming graph", threads,
          repeat, [&] {
            // Dense engine forced through the query interface: the
            // threshold check is the only extra work, so this still
            // measures the eager all-pairs construction.
            WdQueryOptions opt;
            opt.dense_threshold = std::numeric_limits<std::size_t>::max();
            auto wd = make_wd_query(g, opt);
            std::vector<std::uint64_t> fp;
            fp.push_back(fingerprint_bytes(wd->candidate_periods()));
            return fp;
          }));
    }

    if (want("wd_query")) {
      kernels.push_back(measure(
          "wd_query", "lazy min-period: ladder + FEAS, no dense W/D",
          threads, repeat, [&] {
            WdQueryOptions opt;
            opt.dense_threshold = 0;  // force the lazy engine at any size
            auto wd = make_wd_query(g, opt);
            const WdQueryMinPeriodResult res = wd_query_min_period(g, *wd);
            std::vector<std::uint64_t> fp;
            std::vector<double> period{res.period};
            fp.push_back(fingerprint_bytes(period));
            fp.push_back(fingerprint_bytes(res.r));
            return fp;
          }));
    }

    if (want("incr_relabel")) {
      kernels.push_back(measure(
          "incr_relabel", "4096 single-vertex moves, cone-incremental",
          threads, repeat, [&] {
            GraphTiming timing(g, TimingParams{100.0, 0.0, 2.0});
            Retiming r = g.zero_retiming();
            timing.compute(r);
            // Deterministic random walk of ±1 moves over the gate
            // vertices; a move is applied only when the O(deg) precheck
            // shows it keeps every incident w_r non-negative, so every
            // update() takes the valid (cone-relabel) path.
            Rng rng = stream_rng(spec.seed, /*index=*/41);
            const auto& gates = g.gate_vertices();
            std::uint64_t applied = 0;
            for (int step = 0; step < 4096; ++step) {
              const VertexId mv = gates[rng.next() % gates.size()];
              const bool inc = rng.chance(0.5);
              const auto& edges = inc ? g.out_edges(mv) : g.in_edges(mv);
              bool ok = true;
              for (EdgeId e : edges)
                if (g.wr(e, r) < 1) { ok = false; break; }
              if (!ok) continue;
              r[mv] += inc ? 1 : -1;
              timing.update(r, std::span<const VertexId>(&mv, 1));
              ++applied;
            }
            std::vector<double> labels;
            labels.reserve(g.vertex_count() * 3);
            for (VertexId v = 0; v < g.vertex_count(); ++v) {
              labels.push_back(timing.arrival(v));
              labels.push_back(timing.max_after(v));
              labels.push_back(timing.min_after(v));
            }
            std::vector<std::uint64_t> fp;
            fp.push_back(fingerprint_bytes(labels));
            fp.push_back(fingerprint_bytes(r));
            fp.push_back(applied);
            return fp;
          }));
    }

    if (want("obs_exact")) {
      SimConfig cfg;
      cfg.patterns = 256;
      cfg.frames = 2;
      cfg.warmup = 4;
      kernels.push_back(measure(
          "obs_exact", "flip-and-resimulate, 256 patterns x 2 frames",
          threads, repeat, [&] {
            ObservabilityAnalyzer engine(nl, cfg);
            const ObsResult r =
                engine.run(ObservabilityAnalyzer::Mode::kExact);
            return std::vector<std::uint64_t>{fingerprint_bytes(r.obs)};
          }));
    }

    if (want("obs_signature")) {
      SimConfig cfg;
      cfg.patterns = 2048;
      cfg.frames = 8;
      cfg.warmup = 8;
      kernels.push_back(measure(
          "obs_signature", "backward ODC, 2048 patterns x 8 frames", threads,
          repeat, [&] {
            ObservabilityAnalyzer engine(nl, cfg);
            const ObsResult r =
                engine.run(ObservabilityAnalyzer::Mode::kSignature);
            return std::vector<std::uint64_t>{fingerprint_bytes(r.obs)};
          }));
    }

    if (want("ser_sweep")) {
      SerOptions opt;
      opt.timing = {100.0, 0.0, 2.0};
      opt.sim.patterns = 512;
      opt.sim.frames = 4;
      opt.sim.warmup = 8;
      kernels.push_back(measure(
          "ser_sweep", "Eq.(4) sweep, signature obs, 512 patterns x 4 frames",
          threads, repeat, [&] {
            const SerReport rep = analyze_ser(nl, lib, opt);
            std::vector<std::uint64_t> fp;
            fp.push_back(fingerprint_bytes(rep.contribution));
            fp.push_back(fingerprint_bytes(std::vector<double>{
                rep.total, rep.combinational, rep.sequential}));
            return fp;
          }));
    }

    if (kernels.empty())
      usage_error("--kernels matched no known kernel (known: wd_construct, "
                  "wd_query, incr_relabel, obs_exact, obs_signature, "
                  "ser_sweep)");

    bool all_identical = true;
    for (const KernelReport& k : kernels)
      all_identical &= k.identical && k.counters_identical;
    SERELIN_REQUIRE(all_identical,
                    "kernel results or counter totals differ across thread "
                    "counts — determinism contract violated, refusing to "
                    "write report");
    write_json(out_path, spec, kernels);
    std::printf("wrote %s\n", out_path);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 70;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 70;
  }
}
