// fault_harness — deterministic fault-injection robustness driver.
//
//   fault_harness [--seed S] [--iters N] [--deadline-ms M]
//                 [--max-seconds T] [--verbose]
//
// Every iteration: generate a small random circuit, serialize it to
// .bench or BLIF text, corrupt the text with seeded random damage
// (byte flips, truncation, line surgery, binary junk — see
// gen/fault_inject.hpp), then drive the full front end and solver stack:
//
//   1. recovering parse  — must NEVER throw; defects become diagnostics
//   2. strict parse      — may throw ParseError (incl. DiagnosticError);
//                          anything else is a bug
//   3. lint + repair     — on the recovered netlist; must not throw
//   4. retime under a deadline — MinObsWin from the Section-V start; an
//      expired deadline must yield a *legal* best-so-far retiming
//      (stop_reason set), a cancelled token likewise
//
// The invariant under test: hostile bytes can produce clean diagnostics,
// typed exceptions, or Partial results — never a crash, hang, assertion
// failure, or illegal retiming. Any violation prints the (seed, iteration)
// pair that reproduces it and exits 1.
#include <chrono>
#include <cstdio>
#include <exception>
#include <sstream>
#include <string>

#include "core/initializer.hpp"
#include "core/objective.hpp"
#include "core/solver.hpp"
#include "gen/fault_inject.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/validate.hpp"
#include "rgraph/retiming_graph.hpp"
#include "sim/observability.hpp"
#include "support/check.hpp"
#include "support/deadline.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace {

using namespace serelin;

struct HarnessOptions {
  std::uint64_t seed = 1;
  int iters = 500;
  double deadline_ms = 5.0;
  double max_seconds = 0.0;  // 0 = unbounded
  bool verbose = false;
};

[[noreturn]] void usage(const char* msg) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: fault_harness [--seed S] [--iters N] "
               "[--deadline-ms M] [--max-seconds T] [--verbose]\n");
  std::exit(64);
}

HarnessOptions parse_args(int argc, char** argv) {
  HarnessOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--seed") {
      const auto v = parse_uint(value());
      if (!v) usage("--seed wants an unsigned integer");
      opt.seed = *v;
    } else if (a == "--iters") {
      const auto v = parse_int(value(), 1, 1000000000);
      if (!v) usage("--iters wants a positive integer");
      opt.iters = static_cast<int>(*v);
    } else if (a == "--deadline-ms") {
      const auto v = parse_double(value());
      if (!v || *v < 0) usage("--deadline-ms wants a non-negative number");
      opt.deadline_ms = *v;
    } else if (a == "--max-seconds") {
      const auto v = parse_double(value());
      if (!v || *v < 0) usage("--max-seconds wants a non-negative number");
      opt.max_seconds = *v;
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else {
      usage(("unknown option " + a).c_str());
    }
  }
  return opt;
}

/// Tallies of how iterations resolved, printed in the final summary.
struct Tally {
  int parsed_clean = 0;    ///< corrupted text still parsed with no errors
  int diagnosed = 0;       ///< recovering parse collected error diagnostics
  int strict_threw = 0;    ///< strict parse raised ParseError
  int solved = 0;          ///< retime ran to convergence
  int partial = 0;         ///< retime stopped on deadline/cancel
  int skipped = 0;         ///< recovered netlist too degenerate to retime
};

/// One iteration. Returns true on success; on failure prints the repro
/// line and returns false.
bool run_iteration(const HarnessOptions& opt, int iter, Tally& tally) {
  std::uint64_t stream = opt.seed + 0x9e3779b97f4a7c15ULL *
                                        static_cast<std::uint64_t>(iter + 1);
  Rng rng(splitmix64(stream));
  const bool use_blif = rng.chance(0.5);

  // Victim circuit -> serialized text -> corrupted text.
  std::string text;
  {
    const Netlist victim = random_victim(rng);
    std::ostringstream os;
    if (use_blif)
      write_blif(os, victim);
    else
      write_bench(os, victim);
    text = mutate_text(os.str(), rng);
  }

  const auto fail = [&](const char* phase, const char* what) {
    std::fprintf(stderr,
                 "FAIL iter %d (--seed %llu): %s: %s\n"
                 "  reproduce: fault_harness --seed %llu --iters %d\n",
                 iter, static_cast<unsigned long long>(opt.seed), phase,
                 what, static_cast<unsigned long long>(opt.seed), iter + 1);
    return false;
  };

  // Phase 1: recovering parse. The contract is unconditional: any throw
  // on any byte sequence is a bug.
  Netlist recovered;
  DiagnosticSink sink;
  try {
    std::istringstream is(text);
    recovered = use_blif ? read_blif(is, "victim", sink)
                         : read_bench(is, "victim", sink);
  } catch (const std::exception& e) {
    return fail("recovering parse threw", e.what());
  }
  if (sink.error_count() > 0)
    ++tally.diagnosed;
  else
    ++tally.parsed_clean;

  // Phase 2: strict parse of the same text. ParseError (which includes
  // DiagnosticError) is the designed rejection path; any other exception
  // type escaping is a bug.
  try {
    std::istringstream is(text);
    if (use_blif)
      read_blif(is, "victim");
    else
      read_bench(is, "victim");
  } catch (const ParseError&) {
    ++tally.strict_threw;
  } catch (const std::exception& e) {
    return fail("strict parse threw non-ParseError", e.what());
  }

  // Phase 3: lint + warn-level repair on the recovered netlist.
  Netlist repaired;
  try {
    DiagnosticSink lint_sink;
    lint_netlist(recovered, lint_sink);
    repaired = repair_netlist(recovered, lint_sink);
  } catch (const std::exception& e) {
    return fail("lint/repair threw", e.what());
  }

  if (repaired.gate_count() == 0 || repaired.outputs().empty()) {
    ++tally.skipped;  // corruption gutted the circuit; nothing to retime
    return true;
  }

  // Phase 4: retime under a deadline. Every third iteration uses an
  // already-expired budget (forcing an immediate Partial), every fifth a
  // pre-cancelled token; the rest race a small real budget.
  try {
    CellLibrary lib;
    RetimingGraph g(repaired, lib);

    Deadline deadline;
    if (iter % 3 == 0) {
      deadline = Deadline::after(0.0);
    } else if (iter % 5 == 0) {
      CancelToken token;
      token.cancel();
      deadline = Deadline::with_token(token);
    } else {
      deadline = Deadline::after(opt.deadline_ms / 1000.0);
    }

    SimConfig sim;
    sim.patterns = 64;
    sim.frames = 3;
    sim.warmup = 4;
    sim.deadline = deadline;
    ObsResult obs;
    try {
      obs = ObservabilityAnalyzer(repaired, sim).run();
    } catch (const CancelledError&) {
      ++tally.partial;  // all-or-nothing kernel stopped cleanly
      return true;
    }

    InitOptions init_opt;
    init_opt.deadline = deadline;
    const InitResult init = initialize_retiming(g, init_opt);

    SolverOptions so;
    so.timing = init.timing;
    so.rmin = init.rmin;
    so.deadline = deadline;
    const ObsGains gains = compute_gains(g, obs.obs, sim.patterns);
    const SolverResult result = MinObsWinSolver(g, gains, so).solve(init.r);

    if (!g.valid(result.r))
      return fail("solver", result.partial()
                                ? "Partial result carries an invalid retiming"
                                : "converged result carries an invalid "
                                  "retiming");
    if (result.partial()) {
      if (result.stop_detail.empty())
        return fail("solver", "Partial result without a structured reason");
      ++tally.partial;
    } else {
      ++tally.solved;
    }
  } catch (const CancelledError&) {
    ++tally.partial;  // deadline fired inside an all-or-nothing stage
  } catch (const std::exception& e) {
    return fail("retime pipeline threw", e.what());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const HarnessOptions opt = parse_args(argc, argv);
  const auto t0 = std::chrono::steady_clock::now();

  Tally tally;
  int done = 0;
  for (int iter = 0; iter < opt.iters; ++iter, ++done) {
    if (opt.max_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - t0;
      if (elapsed.count() >= opt.max_seconds) break;
    }
    if (!run_iteration(opt, iter, tally)) return 1;
    if (opt.verbose && (iter + 1) % 50 == 0)
      std::fprintf(stderr, "  ... %d/%d iterations\n", iter + 1, opt.iters);
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  std::printf(
      "fault_harness: %d iteration(s) clean in %.1fs (seed %llu)\n"
      "  parse: %d with diagnostics, %d unscathed; strict rejects: %d\n"
      "  retime: %d converged, %d partial (deadline/cancel), %d skipped\n",
      done, elapsed.count(), static_cast<unsigned long long>(opt.seed),
      tally.diagnosed, tally.parsed_clean, tally.strict_threw, tally.solved,
      tally.partial, tally.skipped);
  return 0;
}
