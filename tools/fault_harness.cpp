// fault_harness — deterministic fault-injection robustness driver.
//
//   fault_harness [--seed S] [--iters N] [--deadline-ms M]
//                 [--max-seconds T] [--verify] [--corpus DIR]
//                 [--replay DIR] [--verbose]
//
// Every iteration: generate a small random circuit, serialize it to
// .bench or BLIF text, corrupt the text with seeded random damage
// (byte flips, truncation, line surgery, binary junk — see
// gen/fault_inject.hpp), then drive the full front end and solver stack:
//
//   1. recovering parse  — must NEVER throw; defects become diagnostics
//   2. strict parse      — may throw ParseError (incl. DiagnosticError);
//                          anything else is a bug
//   3. lint + repair     — on the recovered netlist; must not throw
//   4. retime under a deadline — MinObsWin from the Section-V start; an
//      expired deadline must yield a *legal* best-so-far retiming
//      (stop_reason set), a cancelled token likewise
//   5. with --verify: the independent RetimingOracle (src/check) must
//      sign off on every solver result — legality, period, ELW, and the
//      reported objective
//
// The invariant under test: hostile bytes can produce clean diagnostics,
// typed exceptions, or Partial results — never a crash, hang, assertion
// failure, illegal retiming, or oracle violation. Any violation prints
// the (seed, iteration) pair that reproduces it and exits 1.
//
// Counterexample persistence: before each iteration's battery runs, the
// corrupted input is written to <corpus>/pending-seed<S>-iter<N>.<ext>
// (default corpus: tests/corpus/found). A clean iteration removes it; a
// detected failure persists it as crash-<contenthash16>.<ext> (so repeated
// CI runs dedupe onto one entry per distinct input) with a .repro sidecar
// carrying the reproduction command; a hard crash or hang leaves the
// pending file itself behind as the artifact. `--replay DIR` re-runs the
// same battery (no mutation) over every .bench/.blif file in DIR, so
// persisted counterexamples double as a regression corpus.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "core/initializer.hpp"
#include "core/objective.hpp"
#include "core/solver.hpp"
#include "gen/fault_inject.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/validate.hpp"
#include "rgraph/retiming_graph.hpp"
#include "sim/observability.hpp"
#include "support/atomic_io.hpp"
#include "support/check.hpp"
#include "support/corpus.hpp"
#include "support/deadline.hpp"
#include "support/rng.hpp"
#include "support/signals.hpp"
#include "support/strings.hpp"

namespace {

namespace fs = std::filesystem;
using namespace serelin;

struct HarnessOptions {
  std::uint64_t seed = 1;
  int iters = 500;
  double deadline_ms = 5.0;
  double max_seconds = 0.0;  // 0 = unbounded
  bool verify = false;       // oracle-check every solver result
  std::string corpus = "tests/corpus/found";
  std::string replay;  // non-empty: replay this directory, no mutation
  bool verbose = false;
};

[[noreturn]] void usage(const char* msg) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: fault_harness [--seed S] [--iters N] "
               "[--deadline-ms M] [--max-seconds T]\n"
               "                     [--verify] [--corpus DIR] "
               "[--replay DIR] [--verbose]\n");
  std::exit(64);
}

HarnessOptions parse_args(int argc, char** argv) {
  HarnessOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--seed") {
      const auto v = parse_uint(value());
      if (!v) usage("--seed wants an unsigned integer");
      opt.seed = *v;
    } else if (a == "--iters") {
      const auto v = parse_int(value(), 1, 1000000000);
      if (!v) usage("--iters wants a positive integer");
      opt.iters = static_cast<int>(*v);
    } else if (a == "--deadline-ms") {
      const auto v = parse_double(value());
      if (!v || *v < 0) usage("--deadline-ms wants a non-negative number");
      opt.deadline_ms = *v;
    } else if (a == "--max-seconds") {
      const auto v = parse_double(value());
      if (!v || *v < 0) usage("--max-seconds wants a non-negative number");
      opt.max_seconds = *v;
    } else if (a == "--verify") {
      opt.verify = true;
    } else if (a == "--corpus") {
      opt.corpus = value();
    } else if (a == "--replay") {
      opt.replay = value();
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else {
      usage(("unknown option " + a).c_str());
    }
  }
  return opt;
}

/// Tallies of how iterations resolved, printed in the final summary.
struct Tally {
  int parsed_clean = 0;    ///< corrupted text still parsed with no errors
  int diagnosed = 0;       ///< recovering parse collected error diagnostics
  int strict_threw = 0;    ///< strict parse raised ParseError
  int solved = 0;          ///< retime ran to convergence
  int partial = 0;         ///< retime stopped on deadline/cancel
  int skipped = 0;         ///< recovered netlist too degenerate to retime
  int verified = 0;        ///< oracle signed a solver result off
};

/// What went wrong in a failed battery, for the repro sidecar.
struct Failure {
  std::string phase;
  std::string what;
};

/// Drives phases 1-5 on one input text. `iter` seeds the deadline
/// schedule; `label` names the input in failure messages. On failure
/// fills `failure` and returns false.
bool run_battery(const HarnessOptions& opt, int iter,
                 const std::string& label, const std::string& text,
                 bool use_blif, Tally& tally, Failure& failure) {
  const auto fail = [&](const char* phase, const std::string& what) {
    failure.phase = phase;
    failure.what = what;
    std::fprintf(stderr, "FAIL %s: %s: %s\n", label.c_str(), phase,
                 what.c_str());
    return false;
  };

  // Phase 1: recovering parse. The contract is unconditional: any throw
  // on any byte sequence is a bug.
  Netlist recovered;
  DiagnosticSink sink;
  try {
    std::istringstream is(text);
    recovered = use_blif ? read_blif(is, "victim", sink)
                         : read_bench(is, "victim", sink);
  } catch (const std::exception& e) {
    return fail("recovering parse threw", e.what());
  }
  if (sink.error_count() > 0)
    ++tally.diagnosed;
  else
    ++tally.parsed_clean;

  // Phase 2: strict parse of the same text. ParseError (which includes
  // DiagnosticError) is the designed rejection path; any other exception
  // type escaping is a bug.
  try {
    std::istringstream is(text);
    if (use_blif)
      read_blif(is, "victim");
    else
      read_bench(is, "victim");
  } catch (const ParseError&) {
    ++tally.strict_threw;
  } catch (const std::exception& e) {
    return fail("strict parse threw non-ParseError", e.what());
  }

  // Phase 3: lint + warn-level repair on the recovered netlist.
  Netlist repaired;
  try {
    DiagnosticSink lint_sink;
    lint_netlist(recovered, lint_sink);
    repaired = repair_netlist(recovered, lint_sink);
  } catch (const std::exception& e) {
    return fail("lint/repair threw", e.what());
  }

  if (repaired.gate_count() == 0 || repaired.outputs().empty()) {
    ++tally.skipped;  // corruption gutted the circuit; nothing to retime
    return true;
  }

  // Phase 4: retime under a deadline. Every third iteration uses an
  // already-expired budget (forcing an immediate Partial), every fifth a
  // pre-cancelled token; the rest race a small real budget.
  try {
    CellLibrary lib;
    RetimingGraph g(repaired, lib);

    Deadline deadline;
    if (iter % 3 == 0) {
      deadline = Deadline::after(0.0);
    } else if (iter % 5 == 0) {
      CancelToken token;
      token.cancel();
      deadline = Deadline::with_token(token);
    } else {
      deadline = Deadline::after(opt.deadline_ms / 1000.0);
    }

    SimConfig sim;
    sim.patterns = 64;
    sim.frames = 3;
    sim.warmup = 4;
    sim.deadline = deadline;
    ObsResult obs;
    try {
      obs = ObservabilityAnalyzer(repaired, sim).run();
    } catch (const CancelledError&) {
      ++tally.partial;  // all-or-nothing kernel stopped cleanly
      return true;
    }

    InitOptions init_opt;
    init_opt.deadline = deadline;
    const InitResult init = initialize_retiming(g, init_opt);

    SolverOptions so;
    so.timing = init.timing;
    so.rmin = init.rmin;
    so.deadline = deadline;
    const ObsGains gains = compute_gains(g, obs.obs, sim.patterns);
    const SolverResult result = MinObsWinSolver(g, gains, so).solve(init.r);

    if (!g.valid(result.r))
      return fail("solver", result.partial()
                                ? "Partial result carries an invalid retiming"
                                : "converged result carries an invalid "
                                  "retiming");
    if (result.partial()) {
      if (result.stop_detail.empty())
        return fail("solver", "Partial result without a structured reason");
      ++tally.partial;
    } else {
      ++tally.solved;
    }

    // Phase 5: independent verification. Even a Partial result claims
    // legality, the clock period and (when P2' was in force) the ELW
    // bound — the oracle must be able to re-derive all of it.
    if (opt.verify) {
      OracleOptions oracle_options;
      oracle_options.timing = init.timing;
      oracle_options.rmin = init.rmin;
      oracle_options.check_elw = init.rmin > 0 && !result.exited_early;
      const RetimingOracle oracle(g, oracle_options);
      const Verdict verdict = oracle.verify(result, init.r, gains);
      if (!verdict.ok()) {
        std::string detail = verdict.summary();
        for (const Diagnostic& d : verdict.diagnostics.diagnostics()) {
          detail += "\n    ";
          detail += d.render();
        }
        return fail("oracle rejected the solver result", detail);
      }
      ++tally.verified;
    }
  } catch (const CancelledError&) {
    ++tally.partial;  // deadline fired inside an all-or-nothing stage
  } catch (const std::exception& e) {
    return fail("retime pipeline threw", e.what());
  }
  return true;
}

/// One generate-corrupt-drive iteration, with counterexample persistence
/// around the battery.
bool run_iteration(const HarnessOptions& opt, int iter, Tally& tally) {
  std::uint64_t stream = opt.seed + 0x9e3779b97f4a7c15ULL *
                                        static_cast<std::uint64_t>(iter + 1);
  Rng rng(splitmix64(stream));
  const bool use_blif = rng.chance(0.5);

  // Victim circuit -> serialized text -> corrupted text.
  std::string text;
  {
    const Netlist victim = random_victim(rng);
    std::ostringstream os;
    if (use_blif)
      write_blif(os, victim);
    else
      write_bench(os, victim);
    text = mutate_text(os.str(), rng);
  }

  // Persist the input *before* running anything: if the battery takes the
  // process down (signal, abort, hang killed from outside), the pending
  // file is the counterexample.
  const std::string stem = "seed" + std::to_string(opt.seed) + "-iter" +
                           std::to_string(iter) +
                           (use_blif ? ".blif" : ".bench");
  std::error_code ec;
  fs::create_directories(opt.corpus, ec);
  const fs::path pending = fs::path(opt.corpus) / ("pending-" + stem);
  try_atomic_write_file(pending.string(), text);

  const std::string label = "iter " + std::to_string(iter) + " (--seed " +
                            std::to_string(opt.seed) + ")";
  Failure failure;
  const bool ok = run_battery(opt, iter, label, text, use_blif, tally,
                              failure);
  if (ok) {
    fs::remove(pending, ec);
    return true;
  }
  // Persist under a content-hash-derived name: the same counterexample
  // re-found by another seed or CI run dedupes onto one corpus entry.
  std::string sidecar;
  sidecar += "phase: " + failure.phase + "\n";
  sidecar += "what: " + failure.what + "\n";
  sidecar += "reproduce: fault_harness --seed " + std::to_string(opt.seed) +
             " --iters " + std::to_string(iter + 1) +
             (opt.verify ? " --verify" : "") + "\n";
  sidecar += std::string("replay: fault_harness --replay ") + opt.corpus +
             (opt.verify ? " --verify" : "") + "\n";
  const PersistResult kept = persist_counterexample(
      opt.corpus, "crash", use_blif ? ".blif" : ".bench", text, sidecar);
  if (!kept.path.empty()) fs::remove(pending, ec);
  std::fprintf(stderr, "  counterexample: %s%s\n",
               kept.path.empty() ? pending.string().c_str()
                                 : kept.path.c_str(),
               kept.deduplicated ? " (already in corpus)" : "");
  return false;
}

/// Replays every .bench/.blif file of a directory through the battery,
/// in sorted order, with no mutation. Returns the number of failures.
int run_replay(const HarnessOptions& opt, Tally& tally) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opt.replay, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".bench" || ext == ".blif") files.push_back(entry.path());
  }
  if (ec) {
    std::fprintf(stderr, "error: cannot read replay directory %s: %s\n",
                 opt.replay.c_str(), ec.message().c_str());
    std::exit(64);
  }
  std::sort(files.begin(), files.end());

  int failures = 0;
  int iter = 0;
  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", path.string().c_str());
      ++failures;
      continue;
    }
    Failure failure;
    if (!run_battery(opt, iter, path.string(), os.str(),
                     path.extension() == ".blif", tally, failure))
      ++failures;
    ++iter;
  }
  std::printf("fault_harness: replayed %zu file(s) from %s, %d failure(s)\n",
              files.size(), opt.replay.c_str(), failures);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  // First SIGINT/SIGTERM: finish the current iteration, print the tally,
  // exit 78. Second: die with the conventional signal status.
  CancelToken interrupt;
  SignalGuard guard(interrupt);
  const HarnessOptions opt = parse_args(argc, argv);
  const auto t0 = std::chrono::steady_clock::now();

  Tally tally;
  if (!opt.replay.empty()) return run_replay(opt, tally) == 0 ? 0 : 1;

  int done = 0;
  for (int iter = 0; iter < opt.iters; ++iter, ++done) {
    if (opt.max_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - t0;
      if (elapsed.count() >= opt.max_seconds) break;
    }
    if (guard.interrupted()) {
      std::fprintf(stderr, "fault_harness: interrupted after %d iteration(s)\n",
                   done);
      break;
    }
    if (!run_iteration(opt, iter, tally)) return 1;
    if (opt.verbose && (iter + 1) % 50 == 0)
      std::fprintf(stderr, "  ... %d/%d iterations\n", iter + 1, opt.iters);
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  std::printf(
      "fault_harness: %d iteration(s) clean in %.1fs (seed %llu)\n"
      "  parse: %d with diagnostics, %d unscathed; strict rejects: %d\n"
      "  retime: %d converged, %d partial (deadline/cancel), %d skipped\n",
      done, elapsed.count(), static_cast<unsigned long long>(opt.seed),
      tally.diagnosed, tally.parsed_clean, tally.strict_threw, tally.solved,
      tally.partial, tally.skipped);
  if (opt.verify)
    std::printf("  oracle: %d result(s) verified, 0 rejected\n",
                tally.verified);
  return guard.interrupted() ? SignalGuard::kExitInterrupted : 0;
}
