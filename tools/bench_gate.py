#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh bench_report JSON to a baseline.

    tools/bench_gate.py --baseline BENCH_ci.json --current bench_ci_run.json
                        [--tolerance 3.0] [--min-ms 5.0]

Two kinds of check, matching what is actually stable across machines:

* Hard determinism gates (always enforced): every kernel of the current
  report must have `bit_identical_across_threads` and
  `counters_identical_across_threads` true, and — when both reports carry
  real counter totals (a SERELIN_TRACE=ON build) — the named-counter
  totals must equal the baseline *exactly*. Counters measure work done,
  not time, so any drift is a real behavioural change (an algorithmic
  regression or an unintended workload change), never noise.

* Soft wall-clock gate: per (kernel, threads) cell, current wall time must
  stay under `tolerance` x the baseline. CI runners are noisy shared
  machines, so the default tolerance is deliberately loose (3x) and cells
  faster than `--min-ms` in the baseline are skipped entirely — they sit
  below scheduler jitter.

Exit codes: 0 pass, 1 regression found, 64 usage/IO error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(64)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=3.0,
                    help="max allowed wall-time ratio current/baseline")
    ap.add_argument("--min-ms", type=float, default=5.0,
                    help="skip cells whose baseline wall time is below this")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    base_kernels = {k["kernel"]: k for k in base.get("kernels", [])}
    cur_kernels = {k["kernel"]: k for k in cur.get("kernels", [])}

    failures = []
    checked = 0

    for name, bk in sorted(base_kernels.items()):
        ck = cur_kernels.get(name)
        if ck is None:
            failures.append(f"{name}: kernel missing from current report")
            continue

        if not ck.get("bit_identical_across_threads", False):
            failures.append(f"{name}: results differ across thread counts")
        if not ck.get("counters_identical_across_threads", False):
            failures.append(f"{name}: counter totals differ across threads")

        bc = bk.get("counters", {})
        cc = ck.get("counters", {})
        # All-zero counters mean a SERELIN_TRACE=OFF build on that side;
        # the exact-equality gate only makes sense when both sides counted.
        if any(bc.values()) and any(cc.values()):
            for key in sorted(set(bc) | set(cc)):
                if bc.get(key, 0) != cc.get(key, 0):
                    failures.append(
                        f"{name}: counter {key} drifted "
                        f"{bc.get(key, 0)} -> {cc.get(key, 0)}")
        elif any(bc.values()) != any(cc.values()):
            print(f"bench_gate: note: {name}: one side has no counters "
                  "(SERELIN_TRACE=OFF build); counter gate skipped")

        base_cells = {c["threads"]: c for c in bk.get("results", [])}
        cur_cells = {c["threads"]: c for c in ck.get("results", [])}
        for threads, bcell in sorted(base_cells.items()):
            ccell = cur_cells.get(threads)
            if ccell is None:
                failures.append(f"{name}@{threads}: cell missing")
                continue
            if bcell["wall_ms"] < args.min_ms:
                continue  # below jitter, not gateable
            ratio = ccell["wall_ms"] / bcell["wall_ms"]
            checked += 1
            status = "ok"
            if ratio > args.tolerance:
                status = "REGRESSION"
                failures.append(
                    f"{name}@{threads}: {ccell['wall_ms']:.1f} ms vs "
                    f"baseline {bcell['wall_ms']:.1f} ms "
                    f"(x{ratio:.2f} > x{args.tolerance:g})")
            print(f"bench_gate: {name}@{threads}: "
                  f"{bcell['wall_ms']:.1f} -> {ccell['wall_ms']:.1f} ms "
                  f"(x{ratio:.2f}) {status}")

    if failures:
        print(f"bench_gate: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"bench_gate: PASS ({len(base_kernels)} kernels, "
          f"{checked} timed cells within x{args.tolerance:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
