// serelin_cli — the command-line front end to the library.
//
//   serelin_cli stats    <circuit>
//   serelin_cli analyze  <circuit> [options]
//   serelin_cli retime   <in> <out> [--algorithm minobswin|minobs|minarea]
//                                   [options]
//   serelin_cli lint     <circuit>
//   serelin_cli convert  <in> <out>
//   serelin_cli generate (<gates> <dffs> | --suite <name>) <out>
//
// Circuit formats are chosen by extension: .bench (ISCAS89) or .blif.
// Common options:
//   --period <phi>     clock period (default: Section-V choice)
//   --rmin <r>         P2' short-path bound (default: Section-V choice)
//   --patterns <K>     simulation patterns (default 2048)
//   --frames <n>       time-frame expansion depth (default 15)
//   --area-weight <w>  §VII area-augmented objective (default 0)
//   --seed <s>         generator seed
//   --threads <N>      worker threads for parallel kernels
//                      (default: hardware concurrency; 1 = serial)
//   --deadline <sec>   wall-clock budget; on expiry `retime` writes the
//                      best feasible retiming found and exits 75
//   --recover          parse inputs in recovering mode: defects become
//                      diagnostics on stderr instead of hard errors
//   --verify           re-check the result with the independent
//                      RetimingOracle (src/check); on failure nothing is
//                      written and the exit code is 76
//   --fallback         run the graceful-degradation pipeline
//                      minobswin -> minobs -> minperiod -> identity
//                      (every stage oracle-verified); implies --verify
//   --journal <path>   JSONL record of every pipeline attempt
//                      (requires --fallback)
//   --checkpoint <path> durable crash-safe progress snapshots
//                      (requires --fallback; docs/ROBUSTNESS.md §11)
//   --resume <path>    continue a killed run from its checkpoint; reaches
//                      the bit-identical result of an uninterrupted run
//                      (requires --fallback)
//   --trace <path>     Chrome trace_event JSON of the whole command
//                      (load in chrome://tracing or ui.perfetto.dev)
//   --metrics <path>   flat JSON of the named solver/kernel counters
//                      (schemas: docs/OBSERVABILITY.md)
//
// SIGINT/SIGTERM: the first signal stops every solver at its next feasible
// checkpoint; the tool writes its best-so-far result (and forces a final
// checkpoint when --checkpoint is on) and exits 78. A second signal kills
// the process with the conventional signal status.
//
// Exit codes (sysexits-style, see docs/ROBUSTNESS.md):
//   0 success, 64 usage, 65 malformed input data, 70 internal error,
//   75 deadline expired / degraded (partial result written),
//   76 result verification failed (nothing written),
//   78 interrupted by SIGINT/SIGTERM (clean partial result written)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "core/min_area.hpp"
#include "flow/experiment.hpp"
#include "flow/pipeline.hpp"
#include "gen/paper_suite.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/validate.hpp"
#include "rgraph/apply.hpp"
#include "ser/ser_analyzer.hpp"
#include "support/check.hpp"
#include "support/deadline.hpp"
#include "support/diag.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/signals.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace {

using namespace serelin;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: serelin_cli <command> ...\n"
               "  stats    <circuit>\n"
               "  analyze  <circuit> [--period P] [--patterns K] "
               "[--frames n] [--threads N]\n"
               "  retime   <in> <out> [--algorithm minobswin|minobs|"
               "minarea]\n"
               "           [--period P] [--rmin R] [--patterns K] "
               "[--frames n] [--area-weight w]\n"
               "           [--deadline sec] [--verify] [--fallback] "
               "[--journal path]\n"
               "           [--checkpoint path] [--resume path]\n"
               "  lint     <circuit>\n"
               "  convert  <in> <out>\n"
               "  generate <gates> <dffs> <out> [--seed s]\n"
               "  generate --suite <name> <out>\n"
               "common: --recover (diagnose-and-continue input parsing), "
               "--threads N,\n"
               "        --trace path (Chrome trace JSON), --metrics path "
               "(counter totals JSON)\n"
               "circuit formats by extension: .bench, .blif\n");
  std::exit(64);
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool g_recover = false;  ///< --recover: diagnose-and-continue parsing

Netlist read_any(const std::string& path) {
  if (!ends_with(path, ".blif") && !ends_with(path, ".bench"))
    usage("unknown circuit extension (want .bench or .blif)");
  const bool blif = ends_with(path, ".blif");
  if (!g_recover)
    return blif ? read_blif_file(path) : read_bench_file(path);
  DiagnosticSink sink;
  Netlist nl = blif ? read_blif_file(path, sink) : read_bench_file(path, sink);
  for (const Diagnostic& d : sink.diagnostics())
    std::fprintf(stderr, "%s\n", d.render().c_str());
  if (sink.error_count() > 0)
    std::fprintf(stderr, "%s\n", sink.summary().c_str());
  return nl;
}

void write_any(const std::string& path, const Netlist& nl) {
  if (ends_with(path, ".blif")) return write_blif_file(path, nl);
  if (ends_with(path, ".bench")) return write_bench_file(path, nl);
  usage("unknown circuit extension (want .bench or .blif)");
}

struct Options {
  double period = 0.0;      // 0 = Section-V choice
  double rmin = -1.0;       // <0 = Section-V choice
  int patterns = 2048;
  int frames = 15;
  double area_weight = 0.0;
  int threads = 0;  // 0 = hardware concurrency
  std::uint64_t seed = 1;
  double deadline_s = 0.0;  // 0 = unbounded
  Deadline deadline;        // derived from deadline_s at parse time
  bool verify = false;      // oracle-check the result before writing it
  bool fallback = false;    // graceful-degradation pipeline
  std::string journal;      // JSONL attempt journal (--fallback only)
  std::string checkpoint;   // durable progress snapshots (--fallback only)
  std::string resume;       // checkpoint to continue from (--fallback only)
  std::string trace;        // Chrome trace_event JSON output path
  std::string metrics;      // counter-totals JSON output path
  std::string algorithm = "minobswin";
  std::string suite;
  std::vector<std::string> positional;
};

// Checked option-value parsing: unlike atoi/atof these reject
// "--threads banana" (and trailing junk, and out-of-range values) with a
// usage error instead of silently reading 0.
int opt_int(const std::string& flag, const char* arg, std::int64_t lo,
            std::int64_t hi) {
  const auto v = parse_int(arg, lo, hi);
  if (!v)
    usage((flag + " wants an integer in [" + std::to_string(lo) + ", " +
           std::to_string(hi) + "], got '" + arg + "'")
              .c_str());
  return static_cast<int>(*v);
}

double opt_double(const std::string& flag, const char* arg) {
  const auto v = parse_double(arg);
  if (!v) usage((flag + " wants a number, got '" + arg + "'").c_str());
  return *v;
}

std::uint64_t opt_uint(const std::string& flag, const char* arg) {
  const auto v = parse_uint(arg);
  if (!v)
    usage((flag + " wants an unsigned integer, got '" + arg + "'").c_str());
  return *v;
}

Options parse(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--period") opt.period = opt_double(a, value());
    else if (a == "--rmin") opt.rmin = opt_double(a, value());
    else if (a == "--patterns")
      opt.patterns = opt_int(a, value(), 64, 1 << 20);
    else if (a == "--frames") opt.frames = opt_int(a, value(), 1, 1 << 16);
    else if (a == "--area-weight") opt.area_weight = opt_double(a, value());
    else if (a == "--threads") opt.threads = opt_int(a, value(), 0, 4096);
    else if (a == "--seed") opt.seed = opt_uint(a, value());
    else if (a == "--deadline") opt.deadline_s = opt_double(a, value());
    else if (a == "--recover") g_recover = true;
    else if (a == "--verify") opt.verify = true;
    else if (a == "--fallback") opt.fallback = true;
    else if (a == "--journal") opt.journal = value();
    else if (a == "--checkpoint") opt.checkpoint = value();
    else if (a == "--resume") opt.resume = value();
    else if (a == "--trace") opt.trace = value();
    else if (a == "--metrics") opt.metrics = value();
    else if (a == "--algorithm") opt.algorithm = value();
    else if (a == "--suite") opt.suite = value();
    else if (a.rfind("--", 0) == 0) usage(("unknown option " + a).c_str());
    else opt.positional.push_back(a);
  }
  if (opt.patterns % 64 != 0)
    usage("--patterns must be a multiple of 64");
  if (opt.deadline_s < 0) usage("--deadline must be >= 0");
  if (opt.deadline_s > 0) opt.deadline = Deadline::after(opt.deadline_s);
  return opt;
}

int cmd_stats(const Options& opt) {
  if (opt.positional.size() != 1) usage("stats needs one circuit");
  const Netlist nl = read_any(opt.positional[0]);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  std::map<CellType, int> by_type;
  for (NodeId id = 0; id < nl.node_count(); ++id) ++by_type[nl.node(id).type];
  std::printf("%s: %zu nodes\n", nl.name().c_str(), nl.node_count());
  std::printf("  gates %zu, flip-flops %zu, inputs %zu, outputs %zu\n",
              nl.gate_count(), nl.dff_count(), nl.inputs().size(),
              nl.outputs().size());
  std::printf("  retiming graph: |V| = %zu, |E| = %zu\n",
              g.vertex_count(), g.edge_count());
  std::printf("  total area: %.1f\n", nl.total_area(lib));
  for (const auto& [type, count] : by_type)
    std::printf("  %-6s %d\n", std::string(cell_type_name(type)).c_str(),
                count);
  return 0;
}

int cmd_analyze(const Options& opt) {
  if (opt.positional.size() != 1) usage("analyze needs one circuit");
  const Netlist nl = read_any(opt.positional[0]);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  double period = opt.period;
  if (period <= 0) {
    period = initialize_retiming(g, {}).timing.period;
    std::printf("(using Section-V period %.1f)\n", period);
  }
  SerOptions ser;
  ser.timing = {period, 0.0, 2.0};
  ser.sim.patterns = opt.patterns;
  ser.sim.frames = opt.frames;
  const SerReport rep = analyze_ser(nl, lib, ser);
  std::printf("SER(C_S, n=%d) = %s (comb %s + seq %s) at Phi = %.1f\n",
              opt.frames, fmt_sci(rep.total).c_str(),
              fmt_sci(rep.combinational).c_str(),
              fmt_sci(rep.sequential).c_str(), period);
  return 0;
}

// Graceful-degradation path of `retime`: the solver-pipeline fallback
// chain, every stage verified by the independent oracle. The retiming
// graph construction is deterministic, so `g` (built by the caller from
// the same netlist) indexes the pipeline's result correctly.
int cmd_retime_fallback(const Options& opt, const Netlist& nl,
                        const RetimingGraph& g) {
  PipelineOptions po;
  po.sim.patterns = opt.patterns;
  po.sim.frames = opt.frames;
  po.period = opt.period;
  po.rmin = opt.rmin;
  po.area_weight = opt.area_weight;
  po.deadline = opt.deadline;
  po.journal_path = opt.journal;
  // A resumed run keeps checkpointing: default the snapshot destination to
  // the file it is resuming from, so repeated kills keep converging.
  po.checkpoint_path = !opt.checkpoint.empty() ? opt.checkpoint : opt.resume;
  po.resume_path = opt.resume;
  po.start = opt.algorithm == "minobs" ? PipelineStage::kMinObs
                                       : PipelineStage::kMinObsWin;
  const PipelineResult res = run_pipeline(nl, g.library(), po);
  for (const StageAttempt& a : res.attempts)
    std::fprintf(stderr, "pipeline: %s attempt %d: %s%s%s\n",
                 pipeline_stage_name(a.stage), a.attempt,
                 a.errored ? a.error.c_str()
                           : (a.verified ? a.verdict.summary().c_str()
                                         : "completed (unverified)"),
                 a.stop_reason != StopReason::kNone ? " [stopped early]" : "",
                 a.accepted ? " [accepted]" : "");
  if (!res.journal_healthy)
    std::fprintf(stderr, "warning: journal writes failed mid-run (%s)\n",
                 res.journal_path.c_str());
  if (!res.ok) {
    std::fprintf(stderr,
                 "pipeline: no stage produced a verified result\n");
    return 76;
  }
  const Netlist out = apply_retiming(g, res.solver.r, nl.name() + "_rt");
  write_any(opt.positional[1], out);
  std::printf("pipeline: accepted stage %s at Phi = %.4g, R_min = %.4g\n",
              pipeline_stage_name(res.stage), res.timing.period, res.rmin);
  std::printf("flip-flops %zu -> %zu; wrote %s\n", nl.dff_count(),
              out.dff_count(), opt.positional[1].c_str());
  if (res.degraded) {
    std::printf("degraded: %s\n", res.solver.stop_detail.empty()
                                      ? "fell back past the first stage"
                                      : res.solver.stop_detail.c_str());
    return 75;
  }
  return 0;
}

int cmd_retime(const Options& opt) {
  if (opt.positional.size() != 2) usage("retime needs <in> <out>");
  if (!opt.journal.empty() && !opt.fallback)
    usage("--journal requires --fallback");
  if ((!opt.checkpoint.empty() || !opt.resume.empty()) && !opt.fallback)
    usage("--checkpoint/--resume require --fallback");
  if (opt.fallback && opt.algorithm == "minarea")
    usage("--fallback starts from minobswin or minobs, not minarea");
  const Netlist nl = read_any(opt.positional[0]);
  CellLibrary lib;
  RetimingGraph g(nl, lib);
  if (opt.fallback) return cmd_retime_fallback(opt, nl, g);
  InitOptions init_opt;
  init_opt.deadline = opt.deadline;
  const InitResult init = initialize_retiming(g, init_opt);
  TimingParams timing = init.timing;
  if (opt.period > 0) timing.period = opt.period;
  const double rmin = opt.rmin >= 0 ? opt.rmin : init.rmin;

  SolverResult result;
  std::optional<ObsGains> gains;
  if (opt.algorithm == "minarea") {
    const MinAreaResult area = min_area_retime(g, timing, init.r, rmin);
    result = area.solver;
    std::printf("min-area: register positions %lld -> %lld\n",
                static_cast<long long>(area.positions_before),
                static_cast<long long>(area.positions_after));
  } else if (opt.algorithm == "minobs" || opt.algorithm == "minobswin") {
    SimConfig sim;
    sim.patterns = opt.patterns;
    sim.frames = opt.frames;
    sim.deadline = opt.deadline;
    ObservabilityAnalyzer obs(nl, sim);
    gains = compute_gains(g, obs.run().obs, sim.patterns, opt.area_weight);
    SolverOptions so;
    so.timing = timing;
    so.rmin = rmin;
    so.enforce_elw = opt.algorithm == "minobswin";
    so.deadline = opt.deadline;
    result = MinObsWinSolver(g, *gains, so).solve(init.r);
    std::printf("%s: K-scaled observability gain %lld, %d commits%s\n",
                opt.algorithm.c_str(),
                static_cast<long long>(result.objective_gain),
                result.commits,
                result.exited_early ? " [early exit]" : "");
  } else {
    usage("unknown --algorithm");
  }

  if (opt.verify) {
    OracleOptions oracle_options;
    oracle_options.timing = timing;
    oracle_options.rmin = rmin;
    oracle_options.check_elw =
        opt.algorithm == "minobswin" && rmin > 0 && !result.exited_early;
    oracle_options.area_weight = opt.area_weight;
    const RetimingOracle oracle(g, oracle_options);
    // min-area claims no Eq. (5) objective, so only invariants 1-3 apply.
    const Verdict verdict = gains ? oracle.verify(result, init.r, *gains)
                                  : oracle.verify(result.r);
    if (!verdict.ok()) {
      for (const Diagnostic& d : verdict.diagnostics.diagnostics())
        std::fprintf(stderr, "%s\n", d.render().c_str());
      std::fprintf(stderr, "%s; nothing written\n",
                   verdict.summary().c_str());
      return 76;
    }
    std::printf("oracle: %s\n", verdict.summary().c_str());
  }

  const Netlist out = apply_retiming(g, result.r, nl.name() + "_rt");
  write_any(opt.positional[1], out);
  std::printf("flip-flops %zu -> %zu; wrote %s\n", nl.dff_count(),
              out.dff_count(), opt.positional[1].c_str());
  if (result.partial()) {
    // The retiming written above is feasible (solvers only stop at legal
    // checkpoints) but may not be converged: signal that distinctly.
    std::printf("partial: %s\n", result.stop_detail.c_str());
    return 75;
  }
  return 0;
}

int cmd_lint(const Options& opt) {
  if (opt.positional.size() != 1) usage("lint needs one circuit");
  const std::string& path = opt.positional[0];
  if (!ends_with(path, ".blif") && !ends_with(path, ".bench"))
    usage("unknown circuit extension (want .bench or .blif)");
  // Lint always parses in recovering mode: the point is to report every
  // defect in one run, not to stop at the first.
  DiagnosticSink sink;
  const Netlist nl = ends_with(path, ".blif") ? read_blif_file(path, sink)
                                              : read_bench_file(path, sink);
  lint_netlist(nl, sink);
  for (const Diagnostic& d : sink.diagnostics())
    std::printf("%s\n", d.render().c_str());
  std::printf("%s: %s\n", path.c_str(), sink.summary().c_str());
  return sink.has_errors() ? 65 : 0;
}

int cmd_convert(const Options& opt) {
  if (opt.positional.size() != 2) usage("convert needs <in> <out>");
  const Netlist nl = read_any(opt.positional[0]);
  write_any(opt.positional[1], nl);
  std::printf("converted %s -> %s (%zu nodes)\n",
              opt.positional[0].c_str(), opt.positional[1].c_str(),
              nl.node_count());
  return 0;
}

int cmd_generate(const Options& opt) {
  if (!opt.suite.empty()) {
    if (opt.positional.size() != 1) usage("generate --suite <name> <out>");
    const Netlist nl = generate_suite_circuit(suite_circuit(opt.suite));
    write_any(opt.positional.back(), nl);
    std::printf("wrote %s (%zu gates, %zu FFs)\n",
                opt.positional.back().c_str(), nl.gate_count(),
                nl.dff_count());
    return 0;
  }
  if (opt.positional.size() != 3) usage("generate <gates> <dffs> <out>");
  RandomCircuitSpec spec;
  spec.gates = std::atoi(opt.positional[0].c_str());
  spec.dffs = std::atoi(opt.positional[1].c_str());
  spec.inputs = 16;
  spec.outputs = 16;
  spec.name = "rand" + opt.positional[0];
  spec.seed = opt.seed;
  const Netlist nl = generate_random_circuit(spec);
  write_any(opt.positional[2], nl);
  std::printf("wrote %s (%zu gates, %zu FFs)\n", opt.positional[2].c_str(),
              nl.gate_count(), nl.dff_count());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  // First SIGINT/SIGTERM: cancel cooperatively — solvers stop at their
  // next feasible checkpoint and the tool exits 78 with a legal partial
  // result. Second signal: die with the conventional signal status.
  CancelToken interrupt;
  SignalGuard guard(interrupt);
  try {
    Options opt = parse(argc, argv, 2);
    if (opt.threads < 0) usage("--threads must be >= 0 (0 = hardware)");
    opt.deadline.attach(interrupt);
    set_execution_threads(opt.threads);
    const bool instrument = !opt.trace.empty() || !opt.metrics.empty();
    if (instrument && !trace_compiled_in())
      std::fprintf(stderr,
                   "note: built with SERELIN_TRACE=OFF; --trace/--metrics "
                   "outputs will be empty\n");
    if (!opt.trace.empty()) Tracer::start();
    const MetricsSnapshot metrics_before = metrics_snapshot();
    int rc = -1;
    if (cmd == "stats") rc = cmd_stats(opt);
    else if (cmd == "analyze") rc = cmd_analyze(opt);
    else if (cmd == "retime") rc = cmd_retime(opt);
    else if (cmd == "lint") rc = cmd_lint(opt);
    else if (cmd == "convert") rc = cmd_convert(opt);
    else if (cmd == "generate") rc = cmd_generate(opt);
    else usage(("unknown command '" + cmd + "'").c_str());
    if (!opt.trace.empty()) {
      Tracer::stop();
      Tracer::write_chrome_json(opt.trace);
    }
    if (!opt.metrics.empty())
      write_metrics_json(metrics_snapshot() - metrics_before, opt.metrics);
    // An operator interrupt outranks "success"/"degraded": whatever was
    // written is a clean best-so-far artifact, and 78 tells the caller
    // the run was cut short by a signal, not by its own budget.
    if (guard.interrupted() && (rc == 0 || rc == 75))
      rc = SignalGuard::kExitInterrupted;
    return rc;
  } catch (const CancelledError& e) {
    if (guard.interrupted()) {
      // The signal's CancelToken cancelled an all-or-nothing kernel
      // before any partial result existed.
      std::fprintf(stderr, "interrupted: %s\n", e.what());
      return SignalGuard::kExitInterrupted;
    }
    // An all-or-nothing kernel hit the --deadline before any partial
    // result existed; there is nothing useful to write.
    std::fprintf(stderr, "deadline: %s\n", e.what());
    return 75;
  } catch (const ParseError& e) {
    // Malformed input data (DiagnosticError renders the full list).
    std::fprintf(stderr, "error: %s\n", e.what());
    return 65;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 70;
  } catch (const std::exception& e) {
    // Last-resort net: standard-library failures (bad_alloc, regex, ...)
    // must not escape main as a terminate/abort.
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 70;
  }
}
