// serelin_serve — the persistent retiming job server (docs/SERVING.md).
//
//   serelin_serve --socket /tmp/serelin.sock [--workers N] [--max-queue N]
//                 [--cache N] [--scratch DIR] [--threads N]
//                 [--max-deadline S] [--no-verify]
//
// Accepts concurrent jobs over a local unix socket (newline-delimited JSON
// protocol: submit / status / result / cancel / stream / stats / ping /
// shutdown), schedules them onto a bounded worker pool with per-job
// deadlines and priorities, rejects submissions with an explicit
// backpressure error when the queue is full, and answers duplicate
// submissions from a result cache keyed by the pipeline fingerprint.
//
// Exit codes (docs/ROBUSTNESS.md §5): 0 clean shutdown (the `shutdown`
// op), 64 usage, 70 internal error, 78 interrupted — SIGTERM/SIGINT
// triggers a graceful drain (running jobs finish degraded or checkpoint
// into --scratch) — and 79 when the socket address is already in use by a
// live server.
#include <cstdio>
#include <cstring>
#include <string>

#include "serve/server.hpp"
#include "support/parallel.hpp"
#include "support/signals.hpp"
#include "support/strings.hpp"

namespace {

using namespace serelin;

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  std::fprintf(stderr,
               "usage: serelin_serve --socket PATH [--workers N]"
               " [--max-queue N] [--cache N] [--scratch DIR] [--threads N]"
               " [--max-deadline S] [--no-verify]\n");
  std::exit(64);
}

int parse_count(const char* flag, const char* arg, int lo, int hi) {
  const auto v = parse_int(arg, lo, hi);
  if (!v)
    usage_error(std::string(flag) + " wants an integer in [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "], got '" +
                arg + "'");
  return static_cast<int>(*v);
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig cfg;
  int kernel_threads = 1;  // jobs are the unit of parallelism (server.hpp)
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc)
        usage_error(std::string("missing value for ") + argv[i]);
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--socket")) cfg.socket_path = value();
    else if (!std::strcmp(argv[i], "--workers"))
      cfg.workers = parse_count("--workers", value(), 1, 256);
    else if (!std::strcmp(argv[i], "--max-queue"))
      cfg.max_queue = parse_count("--max-queue", value(), 1, 100000);
    else if (!std::strcmp(argv[i], "--cache"))
      cfg.cache_capacity = static_cast<std::size_t>(
          parse_count("--cache", value(), 0, 1000000));
    else if (!std::strcmp(argv[i], "--scratch")) cfg.scratch_dir = value();
    else if (!std::strcmp(argv[i], "--threads"))
      kernel_threads = parse_count("--threads", value(), 0, 4096);
    else if (!std::strcmp(argv[i], "--max-deadline")) {
      const auto v = parse_double(value());
      if (!v || *v <= 0)
        usage_error("--max-deadline wants a positive number of seconds");
      cfg.max_deadline_s = *v;
    } else if (!std::strcmp(argv[i], "--no-verify")) {
      cfg.verify = false;
    } else {
      usage_error(std::string("unknown option ") + argv[i]);
    }
  }
  if (cfg.socket_path.empty()) usage_error("--socket is required");

  try {
    set_execution_threads(kernel_threads);
    Server server(cfg);
    CancelToken stop;
    SignalGuard guard(stop);
    server.start();
    std::printf("serelin_serve: listening on %s (%d workers, queue %d, "
                "cache %zu)\n",
                cfg.socket_path.c_str(), cfg.workers, cfg.max_queue,
                cfg.cache_capacity);
    std::fflush(stdout);
    server.run(stop);
    const ServerStats s = server.stats();
    std::printf("serelin_serve: drained; %lld submitted, %lld completed, "
                "%lld cancelled, %lld failed, %lld cache hits, "
                "%lld backpressure rejections\n",
                static_cast<long long>(s.submitted),
                static_cast<long long>(s.completed),
                static_cast<long long>(s.cancelled),
                static_cast<long long>(s.failed),
                static_cast<long long>(s.cache_hits),
                static_cast<long long>(s.rejected_backpressure));
    return guard.interrupted() ? SignalGuard::kExitInterrupted : 0;
  } catch (const BindError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 79;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 70;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 70;
  }
}
