// crash_harness — process-kill torture tests for the crash-safe pipeline
// (docs/ROBUSTNESS.md §11).
//
//   crash_harness [--seed S] [--trials N] [--kills K] [--max-seconds T]
//                 [--out DIR] [--self-check] [--verbose]
//
// Each trial takes one random circuit through four phases:
//
//   1. Reference: run the fallback pipeline uninterrupted (oracle on,
//      no deadline) — the result every killed-and-resumed run must match
//      bit for bit.
//   2. Calibration: run again with checkpointing and journaling into a
//      scratch directory, counting the durability crash points traversed
//      (every journal frame half, fsync and rename carries one).
//   3. Torture: for K kill indices sampled over the calibrated range,
//      fork; the child arms crash_arm(k) and repeats the checkpointed
//      run, so the k-th crash point SIGKILLs it mid-write — including
//      between the two halves of a journal frame and between a temp
//      write and its rename. The parent waits for the SIGKILL.
//   4. Resume: the parent re-runs the pipeline in-process with --resume
//      semantics against the scratch the child left behind, then asserts
//      (a) the result is bit-identical to the reference (the oracle
//      already signed it off inside the pipeline), (b) the recovered
//      journal is intact, (c) no .tmp or unexpected file remains.
//
// Exit codes: 0 clean, 64 usage, 77 a torture case failed (scratch is
// left behind for inspection), 78 interrupted by SIGINT/SIGTERM.
#include <sys/types.h>
#include <sys/wait.h>

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "flow/pipeline.hpp"
#include "flow/resume_check.hpp"
#include "gen/random_circuit.hpp"
#include "netlist/cell_library.hpp"
#include "support/atomic_io.hpp"
#include "support/check.hpp"
#include "support/checkpoint.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/signals.hpp"
#include "support/strings.hpp"

namespace {

using namespace serelin;
namespace fs = std::filesystem;

struct HarnessOptions {
  std::uint64_t seed = 1;
  int trials = 4;
  int kills = 25;         ///< kill points exercised per trial
  double max_seconds = 0;  ///< 0 = no wall-clock cap
  std::string out = "build/crash-harness";
  bool self_check = false;
  bool verbose = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: crash_harness [--seed S] [--trials N] [--kills K]\n"
               "                     [--max-seconds T] [--out DIR]\n"
               "                     [--self-check] [--verbose]\n");
  std::exit(64);
}

HarnessOptions parse_args(int argc, char** argv) {
  HarnessOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--seed") {
      const auto v = parse_uint(value());
      if (!v) usage("--seed wants an unsigned integer");
      opt.seed = *v;
    } else if (a == "--trials") {
      const auto v = parse_int(value(), 1, 1 << 20);
      if (!v) usage("--trials wants a positive integer");
      opt.trials = static_cast<int>(*v);
    } else if (a == "--kills") {
      const auto v = parse_int(value(), 1, 1 << 20);
      if (!v) usage("--kills wants a positive integer");
      opt.kills = static_cast<int>(*v);
    } else if (a == "--max-seconds") {
      const auto v = parse_double(value());
      if (!v || *v < 0) usage("--max-seconds wants a non-negative number");
      opt.max_seconds = *v;
    } else if (a == "--out") {
      opt.out = value();
    } else if (a == "--self-check") {
      opt.self_check = true;
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else {
      usage(("unknown option " + a).c_str());
    }
  }
  return opt;
}

/// Deterministic pipeline configuration for one trial: small simulation,
/// oracle on, no deadline — every run of it computes the exact same thing,
/// which is what makes "resumed == fresh" checkable bitwise.
PipelineOptions trial_options(const std::string& scratch, bool durable) {
  PipelineOptions po;
  po.sim.patterns = 128;
  po.sim.frames = 4;
  po.sim.warmup = 8;
  po.verify = true;
  if (durable) {
    po.journal_path = scratch + "/journal.jsonl";
    po.checkpoint_path = scratch + "/ck.bin";
    // Persist every offer: the densest possible snapshot schedule, hence
    // the most crash points and the sharpest resume granularity.
    po.checkpoint_every = 1;
  }
  return po;
}

Netlist trial_circuit(std::uint64_t seed, int trial) {
  std::uint64_t stream =
      seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(trial + 1);
  Rng rng(splitmix64(stream));
  RandomCircuitSpec spec;
  spec.gates = static_cast<int>(rng.range(60, 180));
  spec.dffs = static_cast<int>(rng.range(12, 40));
  spec.inputs = 12;
  spec.outputs = 12;
  spec.name = "crash" + std::to_string(trial);
  spec.seed = rng.next();
  return generate_random_circuit(spec);
}

void reset_scratch(const std::string& scratch) {
  fs::remove_all(scratch);
  fs::create_directories(scratch);
}

/// Post-resume audit: the scratch directory must hold exactly the journal
/// and the checkpoint, both intact — no torn tails, no rename temps, no
/// orphans a crashed writer forgot.
bool audit_scratch(const std::string& scratch, std::string* detail) {
  bool saw_journal = false;
  bool saw_checkpoint = false;
  for (const fs::directory_entry& e : fs::directory_iterator(scratch)) {
    const std::string name = e.path().filename().string();
    if (name == "journal.jsonl") {
      saw_journal = true;
      continue;
    }
    if (name == "ck.bin") {
      saw_checkpoint = true;
      continue;
    }
    *detail = "unexpected file in scratch: " + name;
    return false;
  }
  if (!saw_journal || !saw_checkpoint) {
    *detail = std::string("missing artifact: ") +
              (saw_journal ? "ck.bin" : "journal.jsonl");
    return false;
  }
  const JournalRecovery rec = read_journal(scratch + "/journal.jsonl");
  if (rec.torn) {
    *detail = "journal still torn after resume: " + rec.detail;
    return false;
  }
  try {
    CheckpointImage image;
    if (!load_checkpoint(scratch + "/ck.bin", image)) {
      *detail = "checkpoint vanished after resume";
      return false;
    }
  } catch (const Error& e) {
    *detail = std::string("checkpoint damaged after resume: ") + e.what();
    return false;
  }
  detail->clear();
  return true;
}

struct Tally {
  int trials = 0;
  int kills = 0;        ///< forked children SIGKILLed mid-write
  int completed = 0;    ///< children that outran their kill index
  int resumes = 0;      ///< resumed runs checked against the reference
  std::int64_t points = 0;  ///< calibrated crash points across trials
};

bool fail(const std::string& scratch, const std::string& what) {
  std::fprintf(stderr, "crash_harness: FAILURE: %s\n  scratch kept at %s\n",
               what.c_str(), scratch.c_str());
  return false;
}

/// One torture case: fork a child that dies at crash point `kill_at`, then
/// resume from whatever it left and compare against `fresh`.
bool torture_once(const Netlist& nl, const CellLibrary& lib,
                  const std::string& scratch, const PipelineResult& fresh,
                  std::int64_t kill_at, Tally& tally, bool verbose) {
  reset_scratch(scratch);
  const pid_t pid = fork();
  if (pid < 0) return fail(scratch, "fork failed");
  if (pid == 0) {
    // Child: same deterministic run, armed to die mid-write. _exit on
    // every path — this address space shares the parent's stdio buffers.
    crash_arm(kill_at);
    int code = 0;
    try {
      const PipelineOptions po = trial_options(scratch, /*durable=*/true);
      const PipelineResult r = run_pipeline(nl, lib, po);
      code = r.ok ? 0 : 3;
    } catch (...) {
      code = 3;
    }
    crash_arm(0);
    _exit(code);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return fail(scratch, "waitpid failed");
  if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
    ++tally.kills;
  } else if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    ++tally.completed;  // kill index beyond the run's crash points
  } else {
    return fail(scratch, "child died abnormally (status " +
                             std::to_string(status) + ", kill index " +
                             std::to_string(kill_at) + ")");
  }

  // Resume against the exact bytes the kill left behind.
  PipelineOptions po = trial_options(scratch, /*durable=*/true);
  po.resume_path = po.checkpoint_path;
  PipelineResult resumed;
  try {
    resumed = run_pipeline(nl, lib, po);
  } catch (const Error& e) {
    return fail(scratch, "resume threw at kill index " +
                             std::to_string(kill_at) + ": " + e.what());
  }
  ++tally.resumes;
  std::string detail;
  if (!resume_matches_fresh(fresh, resumed, &detail))
    return fail(scratch, "resumed result diverges from fresh at kill index " +
                             std::to_string(kill_at) + ": " + detail);
  if (!audit_scratch(scratch, &detail))
    return fail(scratch,
                "audit after kill index " + std::to_string(kill_at) + ": " +
                    detail);
  if (verbose)
    std::fprintf(stderr, "  kill %lld: ok (%s)\n",
                 static_cast<long long>(kill_at),
                 WIFSIGNALED(status) ? "killed" : "completed");
  return true;
}

bool run_trial(const HarnessOptions& opt, int trial, Tally& tally) {
  const Netlist nl = trial_circuit(opt.seed, trial);
  const CellLibrary lib;
  const std::string scratch = opt.out + "/trial" + std::to_string(trial);

  // Phase 1: the uninterrupted reference (no durability, no scratch).
  const PipelineResult fresh =
      run_pipeline(nl, lib, trial_options(scratch, /*durable=*/false));
  if (!fresh.ok) return fail(scratch, "reference run produced no result");

  // Phase 2: calibration — count this configuration's crash points.
  reset_scratch(scratch);
  crash_arm(0);  // disarm and reset the counter
  run_pipeline(nl, lib, trial_options(scratch, /*durable=*/true));
  const std::int64_t points = crash_points_passed();
  if (points <= 0) return fail(scratch, "calibration found no crash points");
  tally.points += points;

  // Phase 3+4: seeded kills across the whole window, always including the
  // first and last point (the arm/rename edges are the classic bugs).
  std::uint64_t kill_stream =
      opt.seed ^ (0xc2b2ae3d27d4eb4fULL * static_cast<std::uint64_t>(trial + 1));
  Rng rng(splitmix64(kill_stream));
  std::vector<std::int64_t> kill_points;
  kill_points.push_back(1);
  if (points > 1) kill_points.push_back(points);
  while (static_cast<int>(kill_points.size()) < opt.kills)
    kill_points.push_back(
        1 + static_cast<std::int64_t>(rng.below(
                static_cast<std::uint64_t>(points))));
  for (const std::int64_t k : kill_points)
    if (!torture_once(nl, lib, scratch, fresh, k, tally, opt.verbose))
      return false;
  ++tally.trials;
  fs::remove_all(scratch);  // clean trials leave nothing behind
  return true;
}

/// Sanity-checks the harness's own failure detection: a damaged checkpoint
/// must be rejected loudly, a torn journal must recover, and a wrong
/// fingerprint must refuse to resume.
bool self_check(const HarnessOptions& opt) {
  const std::string scratch = opt.out + "/self-check";
  reset_scratch(scratch);

  // Torn-journal recovery: append two intact records plus a torn tail.
  const std::string jpath = scratch + "/torn.jsonl";
  {
    JournalWriter w(jpath, JournalWriter::Mode::kTruncate);
    w.append("{\"a\":1}");
    w.append("{\"b\":2}");
  }
  {
    std::string bytes = frame_journal_record("{\"c\":3}");
    bytes.resize(bytes.size() / 2);  // torn mid-frame
    // Deliberate raw append: the whole point is to fabricate a torn tail
    // that atomic_io would refuse to produce.
    FILE* f = std::fopen(  // NOLINT(serelin-no-bare-artifact-write)
        jpath.c_str(), "ab");
    if (!f) return fail(scratch, "self-check: cannot append torn tail");
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
  JournalRecovery rec = read_journal(jpath);
  if (!rec.torn || rec.records.size() != 2)
    return fail(scratch, "self-check: torn tail not detected");
  rec = recover_journal(jpath);
  if (read_journal(jpath).torn)
    return fail(scratch, "self-check: recovery left the journal torn");

  // Damaged checkpoint: flip one byte, expect a loud rejection.
  const std::string ckpath = scratch + "/ck.bin";
  CheckpointImage image;
  image.kind = "pipeline";
  image.fingerprint = 42;
  image.sections.emplace_back("pipeline", std::string("\x01\x02", 2));
  save_checkpoint(ckpath, image);
  std::string bytes;
  {
    FILE* f = std::fopen(ckpath.c_str(), "rb");
    if (!f) return fail(scratch, "self-check: cannot reread checkpoint");
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
    std::fclose(f);
  }
  bytes[bytes.size() / 2] ^= 0x40;
  atomic_write_file(ckpath, bytes);
  try {
    CheckpointImage damaged;
    load_checkpoint(ckpath, damaged);
    return fail(scratch, "self-check: damaged checkpoint was accepted");
  } catch (const ParseError&) {
    // expected
  }

  // One real mini-campaign proves the fork/kill/resume machinery.
  HarnessOptions mini = opt;
  mini.trials = 1;
  mini.kills = 5;
  Tally tally;
  if (!run_trial(mini, 0, tally)) return false;
  if (tally.kills == 0)
    return fail(scratch, "self-check: no child was actually SIGKILLed");
  fs::remove_all(scratch);
  std::printf("crash_harness: self-check ok (%d kill(s), %d resume(s), "
              "%lld crash point(s))\n",
              tally.kills, tally.resumes,
              static_cast<long long>(tally.points));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Forked children must not carry worker threads (they would be lost in
  // the child and any held locks would deadlock it): run serial.
  set_execution_threads(1);
  CancelToken interrupt;
  SignalGuard guard(interrupt);
  const HarnessOptions opt = parse_args(argc, argv);
  fs::create_directories(opt.out);

  if (opt.self_check) return self_check(opt) ? 0 : 77;

  const auto t0 = std::chrono::steady_clock::now();
  Tally tally;
  for (int trial = 0; trial < opt.trials; ++trial) {
    if (opt.max_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - t0;
      if (elapsed.count() >= opt.max_seconds) break;
    }
    if (guard.interrupted()) {
      std::fprintf(stderr, "crash_harness: interrupted after %d trial(s)\n",
                   tally.trials);
      break;
    }
    if (opt.verbose)
      std::fprintf(stderr, "trial %d/%d...\n", trial + 1, opt.trials);
    if (!run_trial(opt, trial, tally)) return 77;
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  std::printf(
      "crash_harness: %d trial(s) clean in %.1fs (seed %llu)\n"
      "  %d SIGKILL(s) landed, %d child run(s) outran their kill index\n"
      "  %d resume(s) bit-identical to fresh; %lld crash point(s) calibrated\n",
      tally.trials, elapsed.count(),
      static_cast<unsigned long long>(opt.seed), tally.kills, tally.completed,
      tally.resumes, static_cast<long long>(tally.points));
  return guard.interrupted() ? SignalGuard::kExitInterrupted : 0;
}
