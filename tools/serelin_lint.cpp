// serelin_lint — the project's whole-program contract analyzer.
//
// This binary is a thin driver: the analysis substrate (source loading,
// per-TU structural indexes, cross-TU registries) and every rule pass live
// in src/analysis/ (docs/STATIC_ANALYSIS.md is the catalogue). The driver
// owns only the CLI, the one rule that shells out to a compiler
// (header-self-sufficient), and output formatting.
//
// Scans `src/` and `tools/` below --root (default: the current directory).
// Cross-TU passes always index the whole tree — `--only FILE` filters
// which findings are *reported*, not what is analyzed, so changed-files
// mode in CI stays sound.
//
// Exit status: 0 clean, 1 findings, 64 usage error, 70 internal error.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/passes.hpp"
#include "analysis/registry.hpp"
#include "analysis/source.hpp"

namespace fs = std::filesystem;

using namespace serelin::analysis;

namespace {

// ---------------------------------------------------------------------------
// Rule: header-self-sufficient (kept in the driver: it shells out)

struct CompileChecker {
  std::string cxx;       // compiler driver; empty disables the rule
  fs::path include_dir;  // <root>/src
  fs::path scratch;      // per-process scratch TU

  bool available = false;

  void probe() {
    if (cxx.empty()) return;
    // Scratch TU, not an artifact: overwritten every probe, never read
    // back after a crash.
    std::ofstream(scratch)  // NOLINT(serelin-no-bare-artifact-write)
        << "int main() { return 0; }\n";
    available = run_on(scratch).empty();
    if (!available)
      std::cerr << "serelin_lint: note: compiler '" << cxx
                << "' unavailable; skipping header-self-sufficient\n";
  }

  /// Empty string on success, first diagnostic line on failure.
  std::string run_on(const fs::path& tu) const {
    const fs::path log = scratch.string() + ".log";
    const std::string cmd = cxx + " -std=c++20 -fsyntax-only -I '" +
                            include_dir.string() +
                            "' -DSERELIN_TRACE_ENABLED=1 '" + tu.string() +
                            "' 2> '" + log.string() + "'";
    const int rc = std::system(cmd.c_str());
    if (rc == 0) return {};
    std::ifstream in(log);
    std::string line;
    while (std::getline(in, line))
      if (line.find("error") != std::string::npos) return line;
    return "compiler exited with a failure";
  }
};

void rule_header_self_sufficient(const SourceFile& f,
                                 const CompileChecker& checker,
                                 Reporter& rep) {
  if (!checker.available) return;
  if (f.rel.rfind("src/", 0) != 0) return;
  if (f.rel.size() < 4 || f.rel.compare(f.rel.size() - 4, 4, ".hpp") != 0)
    return;
  // NOLINT on line 1 (next to #pragma once or the header comment) opts a
  // header out, mirroring the per-line suppression of the lexical rules.
  if (!f.raw.empty() &&
      nolint_suppressed(f.raw[0], "header-self-sufficient")) {
    rep.mark_used(f.rel, 1);
    return;
  }
  std::ofstream(checker.scratch)  // NOLINT(serelin-no-bare-artifact-write)
      << "#include \"" << f.rel.substr(4) << "\"\n"
      << "int main() { return 0; }\n";
  const std::string error = checker.run_on(checker.scratch);
  if (!error.empty())
    rep.report(f.rel, 1, "header-self-sufficient",
               "header does not compile standalone: " + error);
}

int usage(std::ostream& out, int rc) {
  out << "usage: serelin_lint [--root DIR] [--cxx PATH]"
         " [--no-compile-checks]\n"
         "                    [--rule ID]... [--only FILE]..."
         " [--list-rules]\n"
         "  --root DIR           repository root to scan (default: .)\n"
         "  --cxx PATH           compiler for header checks (default: $CXX"
         " or c++)\n"
         "  --no-compile-checks  skip the header-self-sufficient rule\n"
         "  --rule ID            report only the listed rule(s)\n"
         "  --only FILE          report only findings in FILE"
         " (root-relative; repeatable)\n"
         "  --list-rules         print the rule catalogue and exit\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string cxx;
  if (const char* env = std::getenv("CXX")) cxx = env;
  if (cxx.empty()) cxx = "c++";
  bool compile_checks = true;
  std::set<std::string> only_rules;
  std::set<std::string> only_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_catalogue())
        std::cout << "serelin-" << r.id << "\n    " << r.description
                  << "\n";
      return 0;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--cxx" && i + 1 < argc) {
      cxx = argv[++i];
    } else if (arg == "--no-compile-checks") {
      compile_checks = false;
    } else if (arg == "--rule" && i + 1 < argc) {
      std::string id = argv[++i];
      if (id.rfind("serelin-", 0) == 0) id = id.substr(8);
      if (!known_rule(id)) {
        std::cerr << "serelin_lint: unknown rule '" << id << "'\n";
        return 64;
      }
      only_rules.insert(id);
    } else if (arg == "--only" && i + 1 < argc) {
      only_files.insert(fs::path(argv[++i]).generic_string());
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "serelin_lint: unknown argument '" << arg << "'\n";
      return usage(std::cerr, 64);
    }
  }

  try {
    if (!fs::exists(root / "src") && !fs::exists(root / "tools")) {
      std::cerr << "serelin_lint: no src/ or tools/ under '" << root.string()
                << "' (wrong --root?)\n";
      return 64;
    }

    std::vector<SourceFile> files = collect_tree(root);
    const TreeIndex tree = build_tree_index(files);
    Reporter rep(files);

    const auto enabled = [&](const char* id) {
      return only_rules.empty() || only_rules.count(id) > 0;
    };

    CompileChecker checker;
    checker.cxx = compile_checks && enabled("header-self-sufficient")
                      ? cxx
                      : std::string();
    checker.include_dir = root / "src";
    checker.scratch = fs::temp_directory_path() /
                      ("serelin_lint_tu_" +
                       std::to_string(static_cast<unsigned long>(
                           reinterpret_cast<std::uintptr_t>(&checker) >> 4)) +
                       ".cpp");
    checker.probe();

    // Every pass always runs over the whole tree: --rule and --only filter
    // what is *reported*, and the unused-nolint accounting needs complete
    // suppression coverage to judge markers.
    for (const SourceFile& f : files) {
      rule_banned_tokens(f, rep);
      rule_unordered_range_for(f, rep);
      rule_wd_dense_gated(f, rep);
      rule_bare_artifact_write(f, rep);
      rule_trace_macro_pure(f, rep);
      rule_header_self_sufficient(f, checker, rep);
    }
    pass_diag_codes(tree, root, rep);
    pass_exit_codes(tree, root, rep);
    pass_counter_registry(tree, root, rep);
    pass_protocol_schema(tree, root, rep);
    pass_checkpoint_pairing(tree, root, rep);
    pass_lock_order(tree, rep);
    pass_deadline_poll(tree, rep);

    std::set<std::string> ran;
    for (const RuleInfo& r : rule_catalogue()) ran.insert(r.id);
    if (!checker.available) ran.erase("header-self-sufficient");
    rep.flag_unused_nolints(ran);

    std::vector<Finding>& findings = rep.findings();
    if (!only_rules.empty())
      findings.erase(std::remove_if(findings.begin(), findings.end(),
                                    [&](const Finding& f) {
                                      return only_rules.count(f.rule) == 0;
                                    }),
                     findings.end());
    if (!only_files.empty())
      findings.erase(std::remove_if(findings.begin(), findings.end(),
                                    [&](const Finding& f) {
                                      return only_files.count(f.file) == 0;
                                    }),
                     findings.end());

    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
    for (const Finding& f : findings)
      std::cout << f.file << ":" << f.line << ": serelin-" << f.rule << ": "
                << f.message << "\n";
    std::cerr << "serelin_lint: " << findings.size() << " finding(s) in "
              << files.size() << " file(s)\n";
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "serelin_lint: internal error: " << e.what() << "\n";
    return 70;
  }
}
