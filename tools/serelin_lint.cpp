// serelin_lint — the project's own determinism and consistency linter.
//
// Compilers prove memory and type safety; this tool proves the *serelin
// contracts* that no general-purpose checker knows about (the rule
// catalogue lives in docs/STATIC_ANALYSIS.md):
//
//   no-unseeded-random      every random draw flows through support/rng
//   no-wallclock            no wall-clock reads outside the stopwatch
//   no-unordered-range-for  no iteration-order nondeterminism in reductions
//   diag-code-name          DiagCode enumerators <-> diag_code_name entries
//   diag-code-documented    every diag code appears in docs/ROBUSTNESS.md
//   exit-code-registry      CLI exit codes match the documented registry
//   trace-macro-pure        SERELIN_SPAN/SERELIN_COUNT args are side-effect
//                           free (they compile out under SERELIN_TRACE=OFF)
//   header-self-sufficient  every src/**/*.hpp compiles standalone
//
// Scans `src/` and `tools/` below --root (default: the current directory).
// Lexical rules run on comment- and string-stripped text, so prose in
// comments never trips them. A finding on a line carrying
// `// NOLINT(serelin-<rule>)` (or a bare `// NOLINT`) is suppressed.
// Exit status: 0 clean, 1 findings, 64 usage error, 70 internal error.
//
// This is deliberately a lexical checker, not a libTooling plugin: it has
// zero dependencies beyond the standard library, builds everywhere the
// project builds, and the invariants it enforces are all expressible on
// (stripped) source text plus one real compiler invocation per header.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;  // root-relative path
  int line = 0;      // 1-based
  std::string rule;  // bare id, without the "serelin-" prefix
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* description;
};

constexpr RuleInfo kRules[] = {
    {"no-unseeded-random",
     "std::rand/srand/std::random_device are banned outside "
     "src/support/rng.* — all randomness must be seeded through "
     "serelin::Rng (determinism contract, docs/PARALLELISM.md)"},
    {"no-wallclock",
     "system_clock/time(nullptr)/gettimeofday are banned outside "
     "src/support/stopwatch.hpp — wall-clock reads make runs "
     "irreproducible"},
    {"no-unordered-range-for",
     "range-for over std::unordered_map/set in src/{core,sim,ser,check} — "
     "iteration order is nondeterministic, which breaks bit-identical "
     "reductions"},
    {"wd-dense-gated",
     "direct WdMatrices use is confined to src/core/wd_matrices.*, "
     "src/core/wd_query.* and src/check/* — everything else must go "
     "through the make_wd_query interface, which picks the dense engine "
     "only below the size threshold (docs/SPARSE_WD.md)"},
    {"no-bare-artifact-write",
     "std::ofstream and fopen-for-write are banned outside "
     "src/support/atomic_io.* — artifacts must go through "
     "atomic_write_file or JournalWriter so a crash can never leave a "
     "torn or half-written file (docs/ROBUSTNESS.md §11)"},
    {"diag-code-name",
     "every DiagCode enumerator in src/support/diag.hpp must have a "
     "diag_code_name case in src/support/diag.cpp"},
    {"diag-code-documented",
     "every diag_code_name string must appear in docs/ROBUSTNESS.md "
     "(the code taxonomy is a documented contract)"},
    {"exit-code-registry",
     "exit codes used by tools/serelin_cli.cpp and the registry table in "
     "docs/ROBUSTNESS.md must match exactly"},
    {"trace-macro-pure",
     "SERELIN_SPAN/SERELIN_COUNT arguments must be side-effect free: the "
     "macros compile out under SERELIN_TRACE=OFF, so ++/--/assignments "
     "in arguments would change behavior between builds"},
    {"header-self-sufficient",
     "every src/**/*.hpp must compile on its own (include-what-you-use "
     "hygiene); checked with one -fsyntax-only compile per header"},
};

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : kRules)
    if (id == r.id) return true;
  return false;
}

struct SourceFile {
  fs::path abs;
  std::string rel;                // root-relative, '/'-separated
  std::vector<std::string> raw;   // verbatim lines
  std::vector<std::string> code;  // comments and string contents blanked
};

// ---------------------------------------------------------------------------
// Loading and sanitizing

std::vector<std::string> read_lines(const fs::path& p) {
  std::ifstream in(p);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

/// Blanks comment bodies and string/char-literal contents (including raw
/// strings) with spaces, preserving line lengths so columns still line up.
std::vector<std::string> strip_comments_and_strings(
    const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block_comment = false;
  for (const std::string& line : raw) {
    std::string res;
    res.reserve(line.size());
    std::size_t i = 0;
    const std::size_t n = line.size();
    while (i < n) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < n && line[i + 1] == '/') {
          in_block_comment = false;
          res += "  ";
          i += 2;
        } else {
          res += ' ';
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < n && line[i + 1] == '/') {
        res.append(n - i, ' ');
        break;
      }
      if (c == '/' && i + 1 < n && line[i + 1] == '*') {
        in_block_comment = true;
        res += "  ";
        i += 2;
        continue;
      }
      if (c == '"') {
        // Raw string? Look back for an R prefix glued to the quote.
        const bool raw_str = !res.empty() && res.back() == 'R';
        res += ' ';
        ++i;
        if (raw_str) {
          std::string delim;
          while (i < n && line[i] != '(') delim += line[i], res += ' ', ++i;
          const std::string closer = ")" + delim + "\"";
          // Raw strings may span lines; within this tool's corpus they do
          // not, so treat an unterminated one as ending at the line break.
          const std::size_t end = line.find(closer, i);
          const std::size_t stop = end == std::string::npos
                                       ? n
                                       : end + closer.size();
          res.append(stop - i, ' ');
          i = stop;
        } else {
          while (i < n) {
            if (line[i] == '\\' && i + 1 < n) {
              res += "  ";
              i += 2;
              continue;
            }
            const bool close = line[i] == '"';
            res += ' ';
            ++i;
            if (close) break;
          }
        }
        continue;
      }
      if (c == '\'') {
        // Character literal (digit separators like 1'000 have a digit or
        // identifier char immediately before the quote — skip those).
        const bool sep = !res.empty() &&
                         (std::isalnum(static_cast<unsigned char>(
                              res.back())) ||
                          res.back() == '_');
        res += sep ? c : ' ';
        ++i;
        if (!sep) {
          while (i < n) {
            if (line[i] == '\\' && i + 1 < n) {
              res += "  ";
              i += 2;
              continue;
            }
            const bool close = line[i] == '\'';
            res += ' ';
            ++i;
            if (close) break;
          }
        }
        continue;
      }
      res += c;
      ++i;
    }
    out.push_back(std::move(res));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Small text helpers (no <regex>: hand-rolled scanning keeps the matching
// rules exact and the tool fast on the whole tree)

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True if `text` contains `token` as a whole identifier (not embedded in a
/// longer identifier). Returns the position or npos.
std::size_t find_token(const std::string& text, const std::string& token,
                       std::size_t from = 0) {
  std::size_t pos = text.find(token, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos = text.find(token, pos + 1);
  }
  return std::string::npos;
}

std::size_t skip_spaces(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])))
    ++i;
  return i;
}

/// True when line `raw` carries a NOLINT marker suppressing `rule`:
/// either a bare NOLINT or NOLINT(...) whose list names serelin-<rule>.
bool nolint_suppressed(const std::string& raw, const std::string& rule) {
  const std::size_t pos = raw.find("NOLINT");
  if (pos == std::string::npos) return false;
  std::size_t i = pos + 6;
  i = skip_spaces(raw, i);
  if (i >= raw.size() || raw[i] != '(') return true;  // bare NOLINT
  const std::size_t close = raw.find(')', i);
  const std::string list =
      raw.substr(i + 1, close == std::string::npos ? std::string::npos
                                                   : close - i - 1);
  return list.find("serelin-" + rule) != std::string::npos;
}

void report(std::vector<Finding>& out, const SourceFile& f, int line,
            const char* rule, std::string message) {
  const std::string& raw =
      (line >= 1 && line <= static_cast<int>(f.raw.size()))
          ? f.raw[static_cast<std::size_t>(line - 1)]
          : std::string();
  if (nolint_suppressed(raw, rule)) return;
  out.push_back({f.rel, line, rule, std::move(message)});
}

// ---------------------------------------------------------------------------
// Rule: no-unseeded-random / no-wallclock

bool random_exempt(const std::string& rel) {
  return rel == "src/support/rng.hpp" || rel == "src/support/rng.cpp";
}

bool wallclock_exempt(const std::string& rel) {
  return rel == "src/support/stopwatch.hpp" || random_exempt(rel);
}

void rule_banned_tokens(const SourceFile& f, std::vector<Finding>& out) {
  static const struct {
    const char* token;
    bool call_only;  // require a '(' after the token
  } kRandom[] = {
      {"rand", true},          // std::rand() / ::rand()
      {"srand", false},        //
      {"random_device", false} // std::random_device
  };
  static const char* const kWallclock[] = {
      "system_clock", "high_resolution_clock", "gettimeofday", "mktime"};

  if (!random_exempt(f.rel)) {
    for (std::size_t li = 0; li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      for (const auto& t : kRandom) {
        std::size_t pos = find_token(line, t.token);
        if (pos == std::string::npos) continue;
        if (t.call_only) {
          const std::size_t after =
              skip_spaces(line, pos + std::string(t.token).size());
          if (after >= line.size() || line[after] != '(') continue;
        }
        report(out, f, static_cast<int>(li + 1), "no-unseeded-random",
               std::string("'") + t.token +
                   "' bypasses serelin::Rng; draw from an explicit "
                   "stream_rng(seed, index) instead");
      }
    }
  }
  if (!wallclock_exempt(f.rel)) {
    for (std::size_t li = 0; li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      for (const char* token : kWallclock) {
        if (find_token(line, token) == std::string::npos) continue;
        report(out, f, static_cast<int>(li + 1), "no-wallclock",
               std::string("'") + token +
                   "' reads the wall clock; use Stopwatch "
                   "(src/support/stopwatch.hpp) or a Deadline");
      }
      // time(nullptr) / time(NULL) / time(0): the classic seed source.
      std::size_t pos = find_token(line, "time");
      while (pos != std::string::npos) {
        std::size_t i = skip_spaces(line, pos + 4);
        if (i < line.size() && line[i] == '(') {
          i = skip_spaces(line, i + 1);
          if (line.compare(i, 7, "nullptr") == 0 ||
              line.compare(i, 4, "NULL") == 0 ||
              (i < line.size() && line[i] == '0')) {
            report(out, f, static_cast<int>(li + 1), "no-wallclock",
                   "'time(...)' reads the wall clock; seeds must be "
                   "explicit (determinism contract)");
          }
        }
        pos = find_token(line, "time", pos + 1);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: wd-dense-gated

/// The dense engine's own implementation, the query interface that wraps
/// it, and the oracle-side cross-checks (which exist to compare engines)
/// may name WdMatrices; nothing else in src/ or tools/ may.
bool wd_dense_exempt(const std::string& rel) {
  return rel == "src/core/wd_matrices.hpp" ||
         rel == "src/core/wd_matrices.cpp" ||
         rel == "src/core/wd_query.hpp" || rel == "src/core/wd_query.cpp" ||
         rel.rfind("src/check/", 0) == 0;
}

void rule_wd_dense_gated(const SourceFile& f, std::vector<Finding>& out) {
  if (wd_dense_exempt(f.rel)) return;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    if (find_token(f.code[li], "WdMatrices") == std::string::npos) continue;
    report(out, f, static_cast<int>(li + 1), "wd-dense-gated",
           "'WdMatrices' is the Θ(|V|²) dense engine; construct W/D "
           "access through make_wd_query so large circuits take the "
           "lazy path (docs/SPARSE_WD.md)");
  }
}

// ---------------------------------------------------------------------------
// Rule: no-bare-artifact-write

/// Only the durable-write substrate itself may open files for writing;
/// everything else goes through atomic_write_file / JournalWriter.
bool artifact_write_exempt(const std::string& rel) {
  return rel == "src/support/atomic_io.cpp" ||
         rel == "src/support/atomic_io.hpp";
}

void rule_bare_artifact_write(const SourceFile& f,
                              std::vector<Finding>& out) {
  if (artifact_write_exempt(f.rel)) return;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    bool hit = find_token(line, "ofstream") != std::string::npos;
    if (!hit && find_token(line, "fopen") != std::string::npos) {
      // Mode literals are blanked in the stripped text; consult the raw
      // line. Read-side fopen ("r", "rb") stays legal — only a write or
      // append mode can tear an artifact.
      const std::string& raw = f.raw[li];
      hit = raw.find("\"w") != std::string::npos ||
            raw.find("\"a") != std::string::npos;
    }
    if (hit)
      report(out, f, static_cast<int>(li + 1), "no-bare-artifact-write",
             "bare file write; route artifacts through atomic_write_file "
             "or JournalWriter (support/atomic_io.hpp) so a crash cannot "
             "leave a torn file (docs/ROBUSTNESS.md §11)");
  }
}

// ---------------------------------------------------------------------------
// Rule: no-unordered-range-for

bool in_reduction_dirs(const std::string& rel) {
  return rel.rfind("src/core/", 0) == 0 || rel.rfind("src/sim/", 0) == 0 ||
         rel.rfind("src/ser/", 0) == 0 || rel.rfind("src/check/", 0) == 0;
}

/// Collects identifiers declared in this file with an unordered_* type.
/// Heuristic and file-local by design (documented in STATIC_ANALYSIS.md):
/// cross-file aliasing is out of scope, but the guarded directories keep
/// their containers local, so this catches the real hazard.
std::set<std::string> unordered_names(const SourceFile& f) {
  std::set<std::string> names;
  for (const std::string& line : f.code) {
    std::size_t pos = line.find("unordered_");
    while (pos != std::string::npos) {
      std::size_t i = line.find('<', pos);
      if (i == std::string::npos) break;
      int depth = 0;
      for (; i < line.size(); ++i) {
        if (line[i] == '<') ++depth;
        if (line[i] == '>' && --depth == 0) break;
      }
      if (i >= line.size()) break;  // declaration continues on next line
      std::size_t j = skip_spaces(line, i + 1);
      while (j < line.size() && (line[j] == '&' || line[j] == '*')) ++j;
      j = skip_spaces(line, j);
      if (line.compare(j, 5, "const") == 0 && !ident_char(line[j + 5]))
        j = skip_spaces(line, j + 5);
      std::string name;
      while (j < line.size() && ident_char(line[j])) name += line[j++];
      if (!name.empty()) names.insert(name);
      pos = line.find("unordered_", i);
    }
  }
  return names;
}

void rule_unordered_range_for(const SourceFile& f,
                              std::vector<Finding>& out) {
  if (!in_reduction_dirs(f.rel)) return;
  const std::set<std::string> names = unordered_names(f);
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    const std::size_t fpos = find_token(line, "for");
    if (fpos == std::string::npos) continue;
    const std::size_t open = skip_spaces(line, fpos + 3);
    if (open >= line.size() || line[open] != '(') continue;
    // A range-for has a single ':' that is not part of '::'.
    std::size_t colon = std::string::npos;
    for (std::size_t i = open; i < line.size(); ++i) {
      if (line[i] != ':') continue;
      if (i + 1 < line.size() && line[i + 1] == ':') { ++i; continue; }
      if (i > 0 && line[i - 1] == ':') continue;
      colon = i;
      break;
    }
    if (colon == std::string::npos) continue;
    const std::size_t close = line.rfind(')');
    if (close == std::string::npos || close <= colon) continue;
    const std::string range = line.substr(colon + 1, close - colon - 1);
    bool hit = range.find("unordered_") != std::string::npos;
    for (const std::string& name : names)
      if (find_token(range, name) != std::string::npos) hit = true;
    if (hit)
      report(out, f, static_cast<int>(li + 1), "no-unordered-range-for",
             "range-for over an unordered container: iteration order is "
             "nondeterministic; iterate a sorted view or index order "
             "instead (docs/PARALLELISM.md)");
  }
}

// ---------------------------------------------------------------------------
// Rules: diag-code-name / diag-code-documented  (tree-level cross-checks)

const SourceFile* find_file(const std::vector<SourceFile>& files,
                            const std::string& rel) {
  for (const SourceFile& f : files)
    if (f.rel == rel) return &f;
  return nullptr;
}

void rules_diag_codes(const std::vector<SourceFile>& files,
                      const fs::path& root, std::vector<Finding>& out) {
  const SourceFile* hpp = find_file(files, "src/support/diag.hpp");
  const SourceFile* cpp = find_file(files, "src/support/diag.cpp");
  if (!hpp || !cpp) return;  // fixture trees without a diag layer

  // Enumerators of `enum class DiagCode`, with their declaration lines.
  std::map<std::string, int> enumerators;
  bool in_enum = false;
  for (std::size_t li = 0; li < hpp->code.size(); ++li) {
    const std::string& line = hpp->code[li];
    if (!in_enum) {
      if (line.find("enum class DiagCode") != std::string::npos)
        in_enum = true;
      continue;
    }
    if (line.find("};") != std::string::npos) break;
    std::size_t i = skip_spaces(line, 0);
    if (i >= line.size() || line[i] != 'k') continue;
    std::string name;
    while (i < line.size() && ident_char(line[i])) name += line[i++];
    i = skip_spaces(line, i);
    if (i < line.size() && (line[i] == ',' || line[i] == '=' ||
                            line.find_first_not_of(' ', i) ==
                                std::string::npos))
      enumerators.emplace(name, static_cast<int>(li + 1));
  }

  // `case DiagCode::kX:` ... `return "name";` pairs in diag.cpp (raw lines:
  // the sanitizer blanks the string contents we need).
  std::map<std::string, std::pair<std::string, int>> name_of;  // enum -> name
  for (std::size_t li = 0; li < cpp->raw.size(); ++li) {
    const std::string& line = cpp->raw[li];
    const std::size_t cpos = line.find("case DiagCode::");
    if (cpos == std::string::npos) continue;
    std::size_t i = cpos + std::string("case DiagCode::").size();
    std::string enumerator;
    while (i < line.size() && ident_char(line[i])) enumerator += line[i++];
    for (std::size_t lj = li; lj < cpp->raw.size() && lj < li + 3; ++lj) {
      const std::string& rline = cpp->raw[lj];
      const std::size_t rpos = rline.find("return \"");
      if (rpos == std::string::npos) continue;
      const std::size_t beg = rpos + 8;
      const std::size_t end = rline.find('"', beg);
      if (end != std::string::npos)
        name_of[enumerator] = {rline.substr(beg, end - beg),
                               static_cast<int>(lj + 1)};
      break;
    }
  }

  for (const auto& [enumerator, line] : enumerators) {
    if (name_of.count(enumerator)) continue;
    report(out, *hpp, line, "diag-code-name",
           "DiagCode::" + enumerator +
               " has no diag_code_name case in src/support/diag.cpp");
  }

  const fs::path doc_path = root / "docs" / "ROBUSTNESS.md";
  if (!fs::exists(doc_path)) return;
  std::string doc;
  {
    std::ifstream in(doc_path);
    std::ostringstream ss;
    ss << in.rdbuf();
    doc = ss.str();
  }
  for (const auto& [enumerator, entry] : name_of) {
    const auto& [name, line] = entry;
    // The taxonomy table backticks every code; a prose mention without
    // backticks does not count as documentation.
    if (doc.find("`" + name + "`") != std::string::npos) continue;
    report(out, *cpp, line, "diag-code-documented",
           "diag code '" + name +
               "' is not documented (backticked) in docs/ROBUSTNESS.md");
  }
}

// ---------------------------------------------------------------------------
// Rule: exit-code-registry

void rule_exit_codes(const std::vector<SourceFile>& files,
                     const fs::path& root, std::vector<Finding>& out) {
  const fs::path doc_path = root / "docs" / "ROBUSTNESS.md";
  if (!fs::exists(doc_path)) return;

  // Exit codes any tool actually uses: literal `return NN;` / `exit(NN)`
  // with NN in the sysexits-style band the registry documents. Every
  // tools/*.cpp participates — the registry is one shared namespace, so a
  // new tool inventing an undocumented code (or reusing a documented one
  // for a different meaning) is exactly what this rule must catch.
  struct Use {
    const SourceFile* file;
    int line;
  };
  std::map<int, Use> used;  // code -> first use
  bool any_tool = false;
  for (const SourceFile& f : files) {
    if (f.rel.rfind("tools/", 0) != 0 || !f.rel.ends_with(".cpp")) continue;
    any_tool = true;
    for (std::size_t li = 0; li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      for (const char* kw : {"return", "exit"}) {
        std::size_t pos = find_token(line, kw);
        while (pos != std::string::npos) {
          std::size_t i = skip_spaces(line, pos + std::string(kw).size());
          if (i < line.size() && line[i] == '(') i = skip_spaces(line, i + 1);
          std::string digits;
          while (i < line.size() &&
                 std::isdigit(static_cast<unsigned char>(line[i])))
            digits += line[i++];
          if (digits.size() == 2) {
            const int code = std::stoi(digits);
            if (code >= 64 && code <= 79)
              used.emplace(code, Use{&f, static_cast<int>(li + 1)});
          }
          pos = find_token(line, kw, pos + 1);
        }
      }
      // The interrupted exit travels as a named constant, not a literal
      // (SignalGuard::kExitInterrupted == 78): count it as a use so the
      // registry row for 78 is not flagged as dead.
      if (find_token(line, "kExitInterrupted") != std::string::npos &&
          find_token(line, "constexpr") == std::string::npos)
        used.emplace(78, Use{&f, static_cast<int>(li + 1)});
    }
  }
  if (!any_tool) return;

  // Documented codes: `| NN |` table rows in ROBUSTNESS.md.
  std::map<int, int> documented;  // code -> line
  std::ifstream in(doc_path);
  std::string line;
  int li = 0;
  while (std::getline(in, line)) {
    ++li;
    std::size_t i = skip_spaces(line, 0);
    if (i >= line.size() || line[i] != '|') continue;
    i = skip_spaces(line, i + 1);
    std::string digits;
    while (i < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i])))
      digits += line[i++];
    i = skip_spaces(line, i);
    if (digits.size() == 2 && i < line.size() && line[i] == '|') {
      const int code = std::stoi(digits);
      if (code >= 64 && code <= 79) documented.emplace(code, li);
    }
  }

  for (const auto& [code, use] : used) {
    if (documented.count(code)) continue;
    report(out, *use.file, use.line, "exit-code-registry",
           "exit code " + std::to_string(code) +
               " is not in the docs/ROBUSTNESS.md registry table");
  }
  for (const auto& [code, dline] : documented) {
    if (used.count(code)) continue;
    out.push_back({"docs/ROBUSTNESS.md", dline, "exit-code-registry",
                   "documented exit code " + std::to_string(code) +
                       " is never produced by any tools/*.cpp"});
  }
}

// ---------------------------------------------------------------------------
// Rule: trace-macro-pure

void rule_trace_macro_pure(const SourceFile& f, std::vector<Finding>& out) {
  if (f.rel == "src/support/trace.hpp" || f.rel == "src/support/metrics.hpp")
    return;  // the macro definitions themselves
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    for (const char* macro : {"SERELIN_SPAN", "SERELIN_COUNT"}) {
      const std::size_t pos = find_token(f.code[li], macro);
      if (pos == std::string::npos) continue;
      // Accumulate the argument text across lines until parens balance.
      std::string args;
      int depth = 0;
      bool started = false, done = false;
      for (std::size_t lj = li; lj < f.code.size() && lj < li + 6 && !done;
           ++lj) {
        const std::string& line = f.code[lj];
        for (std::size_t i = lj == li ? pos : 0; i < line.size(); ++i) {
          if (line[i] == '(') {
            ++depth;
            started = true;
            if (depth == 1) continue;
          }
          if (line[i] == ')' && started && --depth == 0) {
            done = true;
            break;
          }
          if (started && depth >= 1) args += line[i];
        }
        args += ' ';
      }
      bool impure = false;
      std::string why;
      for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        const char a = args[i], b = args[i + 1];
        if ((a == '+' && b == '+') || (a == '-' && b == '-')) {
          impure = true;
          why = "increment/decrement";
          break;
        }
        if (b == '=' && (a == '+' || a == '-' || a == '*' || a == '/' ||
                         a == '%' || a == '^' || a == '|' || a == '&')) {
          impure = true;
          why = "compound assignment";
          break;
        }
        if (a == '=' && b != '=' &&
            (i == 0 || (args[i - 1] != '=' && args[i - 1] != '!' &&
                        args[i - 1] != '<' && args[i - 1] != '>'))) {
          impure = true;
          why = "assignment";
          break;
        }
      }
      if (impure)
        report(out, f, static_cast<int>(li + 1), "trace-macro-pure",
               std::string(macro) + " argument contains " + why +
                   "; instrumentation compiles out under "
                   "SERELIN_TRACE=OFF, so arguments must be pure");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: header-self-sufficient

struct CompileChecker {
  std::string cxx;       // compiler driver; empty disables the rule
  fs::path include_dir;  // <root>/src
  fs::path scratch;      // per-process scratch TU

  bool available = false;

  void probe() {
    if (cxx.empty()) return;
    // Scratch TU, not an artifact: overwritten every probe, never read
    // back after a crash.
    std::ofstream(scratch)  // NOLINT(serelin-no-bare-artifact-write)
        << "int main() { return 0; }\n";
    available = run_on(scratch).empty();
    if (!available)
      std::cerr << "serelin_lint: note: compiler '" << cxx
                << "' unavailable; skipping header-self-sufficient\n";
  }

  /// Empty string on success, first diagnostic line on failure.
  std::string run_on(const fs::path& tu) const {
    const fs::path log = scratch.string() + ".log";
    const std::string cmd = cxx + " -std=c++20 -fsyntax-only -I '" +
                            include_dir.string() +
                            "' -DSERELIN_TRACE_ENABLED=1 '" + tu.string() +
                            "' 2> '" + log.string() + "'";
    const int rc = std::system(cmd.c_str());
    if (rc == 0) return {};
    std::ifstream in(log);
    std::string line;
    while (std::getline(in, line))
      if (line.find("error") != std::string::npos) return line;
    return "compiler exited with a failure";
  }
};

void rule_header_self_sufficient(const SourceFile& f,
                                 const CompileChecker& checker,
                                 std::vector<Finding>& out) {
  if (!checker.available) return;
  if (f.rel.rfind("src/", 0) != 0) return;
  if (f.rel.size() < 4 || f.rel.compare(f.rel.size() - 4, 4, ".hpp") != 0)
    return;
  // NOLINT on line 1 (next to #pragma once or the header comment) opts a
  // header out, mirroring the per-line suppression of the lexical rules.
  if (!f.raw.empty() && nolint_suppressed(f.raw[0], "header-self-sufficient"))
    return;
  std::ofstream(checker.scratch)  // NOLINT(serelin-no-bare-artifact-write)
      << "#include \"" << f.rel.substr(4) << "\"\n"
      << "int main() { return 0; }\n";
  const std::string error = checker.run_on(checker.scratch);
  if (!error.empty())
    out.push_back({f.rel, 1, "header-self-sufficient",
                   "header does not compile standalone: " + error});
}

// ---------------------------------------------------------------------------
// Driver

void collect_files(const fs::path& root, std::vector<SourceFile>& files) {
  std::vector<fs::path> paths;
  for (const char* top : {"src", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h")
        paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    SourceFile f;
    f.abs = p;
    f.rel = p.lexically_relative(root).generic_string();
    f.raw = read_lines(p);
    f.code = strip_comments_and_strings(f.raw);
    files.push_back(std::move(f));
  }
}

int usage(std::ostream& out, int rc) {
  out << "usage: serelin_lint [--root DIR] [--cxx PATH]"
         " [--no-compile-checks]\n"
         "                    [--rule ID]... [--list-rules]\n"
         "  --root DIR           repository root to scan (default: .)\n"
         "  --cxx PATH           compiler for header checks (default: $CXX"
         " or c++)\n"
         "  --no-compile-checks  skip the header-self-sufficient rule\n"
         "  --rule ID            run only the listed rule(s)\n"
         "  --list-rules         print the rule catalogue and exit\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string cxx;
  if (const char* env = std::getenv("CXX")) cxx = env;
  if (cxx.empty()) cxx = "c++";
  bool compile_checks = true;
  std::set<std::string> only_rules;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules)
        std::cout << "serelin-" << r.id << "\n    " << r.description
                  << "\n";
      return 0;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--cxx" && i + 1 < argc) {
      cxx = argv[++i];
    } else if (arg == "--no-compile-checks") {
      compile_checks = false;
    } else if (arg == "--rule" && i + 1 < argc) {
      std::string id = argv[++i];
      if (id.rfind("serelin-", 0) == 0) id = id.substr(8);
      if (!known_rule(id)) {
        std::cerr << "serelin_lint: unknown rule '" << id << "'\n";
        return 64;
      }
      only_rules.insert(id);
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "serelin_lint: unknown argument '" << arg << "'\n";
      return usage(std::cerr, 64);
    }
  }

  try {
    if (!fs::exists(root / "src") && !fs::exists(root / "tools")) {
      std::cerr << "serelin_lint: no src/ or tools/ under '" << root.string()
                << "' (wrong --root?)\n";
      return 64;
    }

    std::vector<SourceFile> files;
    collect_files(root, files);

    const auto enabled = [&](const char* id) {
      return only_rules.empty() || only_rules.count(id) > 0;
    };

    CompileChecker checker;
    checker.cxx = compile_checks && enabled("header-self-sufficient")
                      ? cxx
                      : std::string();
    checker.include_dir = root / "src";
    checker.scratch = fs::temp_directory_path() /
                      ("serelin_lint_tu_" +
                       std::to_string(static_cast<unsigned long>(
                           reinterpret_cast<std::uintptr_t>(&checker) >> 4)) +
                       ".cpp");
    checker.probe();

    std::vector<Finding> findings;
    for (const SourceFile& f : files) {
      if (enabled("no-unseeded-random") || enabled("no-wallclock"))
        rule_banned_tokens(f, findings);
      if (enabled("no-unordered-range-for"))
        rule_unordered_range_for(f, findings);
      if (enabled("wd-dense-gated")) rule_wd_dense_gated(f, findings);
      if (enabled("no-bare-artifact-write"))
        rule_bare_artifact_write(f, findings);
      if (enabled("trace-macro-pure")) rule_trace_macro_pure(f, findings);
      if (enabled("header-self-sufficient"))
        rule_header_self_sufficient(f, checker, findings);
    }
    if (enabled("diag-code-name") || enabled("diag-code-documented"))
      rules_diag_codes(files, root, findings);
    if (enabled("exit-code-registry"))
      rule_exit_codes(files, root, findings);

    // Drop findings from rules excluded by --rule (the banned-token and
    // diag passes share an implementation and may emit both ids).
    if (!only_rules.empty())
      findings.erase(std::remove_if(findings.begin(), findings.end(),
                                    [&](const Finding& f) {
                                      return only_rules.count(f.rule) == 0;
                                    }),
                     findings.end());

    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
    for (const Finding& f : findings)
      std::cout << f.file << ":" << f.line << ": serelin-" << f.rule << ": "
                << f.message << "\n";
    std::cerr << "serelin_lint: " << findings.size() << " finding(s) in "
              << files.size() << " file(s)\n";
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "serelin_lint: internal error: " << e.what() << "\n";
    return 70;
  }
}
