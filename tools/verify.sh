#!/usr/bin/env bash
# Tier-1 verification: the regular build + full test suite, then the
# parallel determinism suite under ThreadSanitizer (gating on zero races),
# then the full suite + a seeded fault-injection smoke run under
# ASan+UBSan (gating on zero memory-safety / UB findings).
#
#   tools/verify.sh [--skip-tsan] [--skip-asan]
#
# Run from the repository root. Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
SKIP_TSAN=0
SKIP_ASAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    *) echo "usage: tools/verify.sh [--skip-tsan] [--skip-asan]" >&2; exit 64 ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

if [[ "$SKIP_TSAN" == 1 ]]; then
  echo "== tsan: skipped =="
else
  echo "== tsan: parallel suite under ThreadSanitizer =="
  cmake -B build-tsan -S . -DSERELIN_TSAN=ON > /dev/null
  cmake --build build-tsan -j"$(nproc)" --target serelin_tests
  # TSAN aborts with a non-zero exit on any data race (halt_on_error not
  # needed: the default exit code 66 on detected races fails the script).
  TSAN_OPTIONS="exitcode=66" \
    ./build-tsan/tests/serelin_tests --gtest_filter='Parallel*'
fi

if [[ "$SKIP_ASAN" == 1 ]]; then
  echo "== asan: skipped =="
else
  echo "== asan: full suite + fault-injection smoke under ASan+UBSan =="
  cmake -B build-asan -S . -DSERELIN_ASAN=ON > /dev/null
  cmake --build build-asan -j"$(nproc)"
  (cd build-asan && ctest --output-on-failure -j"$(nproc)")
  # Seeded fuzz loop through parse -> validate -> deadline-bounded retime
  # (docs/ROBUSTNESS.md). -fno-sanitize-recover=all means any UB aborts,
  # so a clean exit certifies the no-crash/no-UB invariant.
  ./build-asan/tools/fault_harness --seed 1 --iters 2000 --max-seconds 30
fi
echo "verify: OK"
