#!/usr/bin/env bash
# Tier-1 verification: the regular build + full test suite, then an
# oracle-verified fallback retime over every bundled example circuit,
# then the parallel determinism suite under ThreadSanitizer (gating on
# zero races), then the full suite + a seeded fault-injection smoke run
# with the result oracle under ASan+UBSan (gating on zero memory-safety /
# UB findings and zero oracle violations).
#
#   tools/verify.sh [--fast] [--skip-tsan] [--skip-asan]
#
# --fast restricts ctest to the `fast` label (the exhaustive-optimality
# and end-to-end suites are labelled `slow`; see tests/CMakeLists.txt).
# Run from the repository root. Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
SKIP_TSAN=0
SKIP_ASAN=0
CTEST_ARGS=()
for arg in "$@"; do
  case "$arg" in
    --fast) CTEST_ARGS=(-L fast) ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    *) echo "usage: tools/verify.sh [--fast] [--skip-tsan] [--skip-asan]" >&2
       exit 64 ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)" "${CTEST_ARGS[@]}")

echo "== oracle: verified fallback retime over the examples =="
# Every bundled circuit must come back oracle-verified through the
# graceful-degradation pipeline: exit 0 (converged) and 75 (degraded but
# verified) are fine, anything else — in particular 76, verification
# failure — fails the script. Journals land in build/journals/.
mkdir -p build/journals
for circuit in examples/circuits/*.bench examples/circuits/*.blif; do
  [[ -e "$circuit" ]] || continue
  stem="$(basename "${circuit%.*}")"
  status=0
  ./build/tools/serelin_cli retime "$circuit" "build/journals/$stem.out.${circuit##*.}" \
      --fallback --verify --deadline 60 \
      --journal "build/journals/$stem.jsonl" > /dev/null || status=$?
  if [[ "$status" != 0 && "$status" != 75 ]]; then
    echo "verify: $circuit failed the oracle pipeline (exit $status)" >&2
    exit 1
  fi
  echo "  $stem: ok (exit $status)"
done

if [[ "$SKIP_TSAN" == 1 ]]; then
  echo "== tsan: skipped =="
else
  echo "== tsan: parallel suite under ThreadSanitizer =="
  cmake -B build-tsan -S . -DSERELIN_TSAN=ON > /dev/null
  cmake --build build-tsan -j"$(nproc)" --target serelin_tests
  # TSAN aborts with a non-zero exit on any data race (halt_on_error not
  # needed: the default exit code 66 on detected races fails the script).
  TSAN_OPTIONS="exitcode=66" \
    ./build-tsan/tests/serelin_tests --gtest_filter='Parallel*'
fi

if [[ "$SKIP_ASAN" == 1 ]]; then
  echo "== asan: skipped =="
else
  echo "== asan: full suite + fault-injection smoke under ASan+UBSan =="
  cmake -B build-asan -S . -DSERELIN_ASAN=ON > /dev/null
  cmake --build build-asan -j"$(nproc)"
  (cd build-asan && ctest --output-on-failure -j"$(nproc)")
  # Seeded fuzz loop through parse -> validate -> deadline-bounded retime
  # -> independent result oracle (docs/ROBUSTNESS.md).
  # -fno-sanitize-recover=all means any UB aborts, so a clean exit
  # certifies the no-crash/no-UB/no-oracle-violation invariant; inputs
  # that do fail are persisted under tests/corpus/found/ for replay.
  ./build-asan/tools/fault_harness --verify --seed 1 --iters 2000 \
      --max-seconds 30
fi
echo "verify: OK"
