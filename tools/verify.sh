#!/usr/bin/env bash
# Tier-1 verification: the regular build + full test suite, then the
# parallel determinism suite under ThreadSanitizer (gating on zero races).
#
#   tools/verify.sh [--skip-tsan]
#
# Run from the repository root. Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "== tier-1: build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

if [[ "$SKIP_TSAN" == 1 ]]; then
  echo "== tsan: skipped =="
  exit 0
fi

echo "== tsan: parallel suite under ThreadSanitizer =="
cmake -B build-tsan -S . -DSERELIN_TSAN=ON > /dev/null
cmake --build build-tsan -j"$(nproc)" --target serelin_tests
# TSAN aborts with a non-zero exit on any data race (halt_on_error not
# needed: the default exit code 66 on detected races fails the script).
TSAN_OPTIONS="exitcode=66" \
  ./build-tsan/tests/serelin_tests --gtest_filter='Parallel*'
echo "verify: OK"
