#!/usr/bin/env bash
# Tier-1 verification, split into named stages so CI jobs can run each
# in isolation while `tools/verify.sh` with no arguments still runs the
# whole ladder locally:
#
#   static    serelin_lint + clang -Wthread-safety build + clang-tidy
#   tier1     regular build + full test suite
#   examples  oracle-verified fallback retime over every bundled circuit
#   tsan      parallel determinism + tracer suites under ThreadSanitizer
#   asan      full suite under ASan+UBSan
#   fault     seeded fault-injection smoke + corpus replay under ASan+UBSan
#   fuzzdiff  differential solver fuzzing: self-check, fixed-seed sweep,
#             committed-corpus replay under ASan+UBSan
#   crash     process-kill torture: SIGKILL at seeded points mid-write,
#             resume, assert bit-identical results and untorn artifacts
#   serve     job-server protocol smoke under ASan+UBSan: Serve* suites,
#             then a live daemon driven by serve_bench (mixed concurrent
#             jobs, duplicate cache hits, saturation backpressure),
#             SIGTERM drain (exit 78) and double-bind rejection (exit 79)
#
#   tools/verify.sh [--fast] [--skip-static] [--skip-tsan] [--skip-asan]
#                   [--stage NAME]...
#
# --stage may repeat; without it every stage runs (minus the --skip-*
# ones; --skip-asan also skips the fault and fuzzdiff stages, which need
# the ASan build). --fast restricts ctest to the `fast` label (the
# exhaustive-optimality and end-to-end suites are labelled `slow`; see
# tests/CMakeLists.txt). Run from the repository root. Exits non-zero on
# the first failure.
#
# The static stage (docs/STATIC_ANALYSIS.md) degrades gracefully: the
# serelin_lint pass always runs, the -Wthread-safety build and clang-tidy
# run only when clang++/clang-tidy are installed (CI installs both; a
# gcc-only box still gets the contract analyzer). --fast keeps the
# analyzer in the loop but skips its per-header compile sweep. Set
# SERELIN_TIDY_BASE to a git ref to tidy only the files changed since
# that ref, and SERELIN_LINT_BASE to restrict the analyzer's *reported*
# findings to those files (--only; analysis stays whole-tree) — the PR
# mode of the `static` CI job. SERELIN_LINT_SKIP=1 skips the analyzer
# inside the stage (the CI job times it as its own budgeted step).
set -euo pipefail

cd "$(dirname "$0")/.."
SKIP_STATIC=0
SKIP_TSAN=0
SKIP_ASAN=0
STAGES=()
CTEST_ARGS=()
LINT_ARGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) CTEST_ARGS=(-L fast); LINT_ARGS=(--no-compile-checks) ;;
    --skip-static) SKIP_STATIC=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    --stage)
      [[ $# -ge 2 ]] || { echo "--stage needs a name" >&2; exit 64; }
      STAGES+=("$2")
      shift ;;
    *) echo "usage: tools/verify.sh [--fast] [--skip-static] [--skip-tsan]" \
            "[--skip-asan]" \
            "[--stage static|tier1|examples|tsan|asan|fault|fuzzdiff|crash|serve]..." >&2
       exit 64 ;;
  esac
  shift
done

if [[ ${#STAGES[@]} -eq 0 ]]; then
  STAGES=()
  [[ "$SKIP_STATIC" == 1 ]] || STAGES+=(static)
  STAGES+=(tier1 examples crash)
  [[ "$SKIP_TSAN" == 1 ]] || STAGES+=(tsan)
  [[ "$SKIP_ASAN" == 1 ]] || STAGES+=(asan fault fuzzdiff serve)
fi

stage_static() {
  echo "== static: serelin_lint + thread-safety + clang-tidy =="
  cmake -B build -S . > /dev/null
  cmake --build build -j"$(nproc)" --target serelin_lint
  # 1/3 — the contract analyzer: determinism, registry and flow contracts
  # over the whole tree, including the header self-sufficiency compile
  # checks (skipped under --fast). SERELIN_LINT_BASE narrows the *reported*
  # findings to a PR's changed files; the analysis itself is always
  # whole-tree, since lock cycles and registry pairings span TUs.
  if [[ "${SERELIN_LINT_SKIP:-0}" == 1 ]]; then
    echo "static: SERELIN_LINT_SKIP=1; analyzer runs in its own CI step" >&2
  else
    local lint_args=(--root . --cxx "${CXX:-c++}")
    [[ ${#LINT_ARGS[@]} -gt 0 ]] && lint_args+=("${LINT_ARGS[@]}")
    if [[ -n "${SERELIN_LINT_BASE:-}" ]]; then
      local f
      while read -r f; do
        [[ -f "$f" ]] && lint_args+=(--only "$f")
      done < <(git diff --name-only "$SERELIN_LINT_BASE" -- src tools docs)
    fi
    ./build/tools/serelin_lint "${lint_args[@]}"
  fi

  # 2/3 — compile-time race checking: serelin_warnings promotes
  # -Wthread-safety to an error under clang, so a clean clang build *is*
  # the proof that all annotated lock discipline holds.
  if command -v clang++ > /dev/null 2>&1; then
    cmake -B build-clang -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DSERELIN_WERROR=ON > /dev/null
    cmake --build build-clang -j"$(nproc)"
  else
    echo "static: clang++ not installed; skipping the -Wthread-safety build" >&2
  fi

  # 3/3 — clang-tidy over the compile database (.clang-tidy pins the
  # profile; WarningsAsErrors makes any finding fatal). SERELIN_TIDY_BASE
  # narrows the file set to a PR's changed files.
  if command -v clang-tidy > /dev/null 2>&1; then
    local db=build
    [[ -f build-clang/compile_commands.json ]] && db=build-clang
    local files
    if [[ -n "${SERELIN_TIDY_BASE:-}" ]]; then
      files=$(git diff --name-only "$SERELIN_TIDY_BASE" -- \
                'src/*.cpp' 'tools/*.cpp' | while read -r f; do
                [[ -f "$f" ]] && echo "$f"; done)
    else
      files=$(ls src/*/*.cpp tools/*.cpp)
    fi
    if [[ -z "$files" ]]; then
      echo "static: no files to tidy"
    else
      echo "$files" | xargs -P "$(nproc)" -n 4 clang-tidy -p "$db" --quiet
    fi
  else
    echo "static: clang-tidy not installed; skipping" >&2
  fi
}

stage_tier1() {
  echo "== tier1: build + ctest =="
  cmake -B build -S . > /dev/null
  cmake --build build -j"$(nproc)"
  (cd build && ctest --output-on-failure -j"$(nproc)" "${CTEST_ARGS[@]}")
}

stage_examples() {
  echo "== examples: verified fallback retime over the bundled circuits =="
  # Every bundled circuit must come back oracle-verified through the
  # graceful-degradation pipeline: exit 0 (converged) and 75 (degraded but
  # verified) are fine, anything else — in particular 76, verification
  # failure — fails the script. Journals land in build/journals/.
  cmake -B build -S . > /dev/null
  cmake --build build -j"$(nproc)" --target serelin_cli
  mkdir -p build/journals
  for circuit in examples/circuits/*.bench examples/circuits/*.blif; do
    [[ -e "$circuit" ]] || continue
    stem="$(basename "${circuit%.*}")"
    status=0
    ./build/tools/serelin_cli retime "$circuit" \
        "build/journals/$stem.out.${circuit##*.}" \
        --fallback --verify --deadline 60 \
        --journal "build/journals/$stem.jsonl" > /dev/null || status=$?
    if [[ "$status" != 0 && "$status" != 75 ]]; then
      echo "verify: $circuit failed the oracle pipeline (exit $status)" >&2
      exit 1
    fi
    echo "  $stem: ok (exit $status)"
  done
}

stage_tsan() {
  echo "== tsan: parallel + tracer suites under ThreadSanitizer =="
  cmake -B build-tsan -S . -DSERELIN_TSAN=ON > /dev/null
  cmake --build build-tsan -j"$(nproc)" --target serelin_tests
  # TSAN aborts with a non-zero exit on any data race (halt_on_error not
  # needed: the default exit code 66 on detected races fails the script).
  TSAN_OPTIONS="exitcode=66" \
    ./build-tsan/tests/serelin_tests --gtest_filter='Parallel*:Trace*:Metrics*'
}

stage_asan() {
  echo "== asan: full suite under ASan+UBSan =="
  cmake -B build-asan -S . -DSERELIN_ASAN=ON > /dev/null
  cmake --build build-asan -j"$(nproc)"
  (cd build-asan && ctest --output-on-failure -j"$(nproc)" "${CTEST_ARGS[@]}")
}

stage_fault() {
  echo "== fault: fault-injection smoke + corpus replay under ASan+UBSan =="
  cmake -B build-asan -S . -DSERELIN_ASAN=ON > /dev/null
  cmake --build build-asan -j"$(nproc)" --target fault_harness
  # Seeded fuzz loop through parse -> validate -> deadline-bounded retime
  # -> independent result oracle (docs/ROBUSTNESS.md).
  # -fno-sanitize-recover=all means any UB aborts, so a clean exit
  # certifies the no-crash/no-UB/no-oracle-violation invariant; inputs
  # that do fail are persisted under tests/corpus/found/ for replay.
  ./build-asan/tools/fault_harness --verify --seed 1 --iters 2000 \
      --max-seconds 30
  # Re-run every previously-found counterexample (empty directory = no-op).
  ./build-asan/tools/fault_harness --verify --replay tests/corpus/found/
}

stage_fuzzdiff() {
  echo "== fuzzdiff: differential solver fuzzing under ASan+UBSan =="
  cmake -B build-asan -S . -DSERELIN_ASAN=ON > /dev/null
  cmake --build build-asan -j"$(nproc)" --target fuzz_solvers
  # 1/3 — self-check: plant ten known faults and demand >= 9 catches, each
  # shrunk to a small counterexample; proves the harness's detection power
  # before a clean sweep is allowed to mean anything (docs/ROBUSTNESS.md §10).
  ./build-asan/tools/fuzz_solvers --self-check \
      --corpus build-asan/fuzz-selfcheck-corpus
  # 2/3 — fixed-seed clean sweep: every solver engine must agree on every
  # generated circuit. Deterministic in the seed; SERELIN_FUZZ_* lets the
  # nightly job scale the campaign up without editing this script. A
  # divergence exits 77 and persists its shrunk repro in tests/corpus/found/.
  ./build-asan/tools/fuzz_solvers \
      --seed "${SERELIN_FUZZ_SEED:-1}" \
      --iters "${SERELIN_FUZZ_ITERS:-400}" \
      --max-seconds "${SERELIN_FUZZ_SECONDS:-90}" \
      --corpus tests/corpus/found
  # 3/3 — committed-corpus replay: every promoted counterexample must still
  # match its sidecar's expect: line (a fixed divergence prints FIXED and
  # stays green; an expected-clean entry that diverges again exits 77).
  ./build-asan/tools/fuzz_solvers --replay tests/corpus/found
}

stage_crash() {
  echo "== crash: process-kill torture of checkpoint/resume =="
  cmake -B build -S . > /dev/null
  cmake --build build -j"$(nproc)" --target crash_harness
  # 1/2 — self-check: a hand-torn journal must be detected and recovered,
  # a byte-flipped checkpoint rejected, a mini campaign must land kills —
  # detection power first, as with the fuzzers (docs/ROBUSTNESS.md §11).
  ./build/tools/crash_harness --self-check --out build/crash-selfcheck
  # 2/2 — the campaign: fork the solve, SIGKILL it at seeded crash points
  # (including inside atomic write windows and between journal frame
  # halves), resume from the scratch the kill left behind, and demand a
  # bit-identical, oracle-verified result with zero torn artifacts. The
  # SERELIN_CRASH_* knobs let the nightly job rotate seeds and scale up.
  ./build/tools/crash_harness \
      --seed "${SERELIN_CRASH_SEED:-1}" \
      --trials "${SERELIN_CRASH_TRIALS:-4}" \
      --kills "${SERELIN_CRASH_KILLS:-40}" \
      --max-seconds "${SERELIN_CRASH_SECONDS:-90}" \
      --out build/crash-harness
}

stage_serve() {
  echo "== serve: job-server protocol smoke under ASan+UBSan =="
  cmake -B build-asan -S . -DSERELIN_ASAN=ON > /dev/null
  cmake --build build-asan -j"$(nproc)" \
      --target serelin_tests serelin_serve serve_bench
  # 1/3 — the Serve* suites: wire-protocol hardening, cache determinism,
  # backpressure, cancel, drain — all in-process, all under the sanitizer.
  (cd build-asan && ctest --output-on-failure -R '^Serve' -j"$(nproc)")

  # 2/3 — a live daemon driven end-to-end: mixed concurrent jobs, verbatim
  # duplicate resubmissions answered from the cache (counter-checked by
  # serve_bench, exit 77 on any mismatch), saturation producing explicit
  # backpressure rejections. Then SIGTERM must drain gracefully (exit 78)
  # and unlink the socket. Workers/queue sizes are passed to both sides so
  # the bench's saturation arithmetic matches the server's actual bounds.
  local sock="build-asan/serve-smoke.sock"
  rm -f "$sock"
  ./build-asan/tools/serelin_serve --socket "$sock" --workers 4 \
      --max-queue 32 --cache 256 --scratch build-asan &
  local server_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "$sock" ]] && break
    sleep 0.1
  done
  [[ -S "$sock" ]] || { echo "serve: daemon never bound $sock" >&2; exit 1; }

  # 3/3 folded in while the daemon is live: a second bind of the same
  # socket must be rejected with the registered exit code 79.
  local bind_status=0
  ./build-asan/tools/serelin_serve --socket "$sock" --workers 1 \
      2> /dev/null || bind_status=$?
  if [[ "$bind_status" != 79 ]]; then
    echo "serve: double bind exited $bind_status, want 79" >&2
    kill "$server_pid" 2> /dev/null || true
    exit 1
  fi

  ./build-asan/tools/serve_bench --socket "$sock" --clients 8 --jobs 4 \
      --dup-every 3 --workers 4 --max-queue 32 \
      --out build-asan/BENCH_serve_smoke.json

  kill -TERM "$server_pid"
  local drain_status=0
  wait "$server_pid" || drain_status=$?
  if [[ "$drain_status" != 78 ]]; then
    echo "serve: SIGTERM drain exited $drain_status, want 78" >&2
    exit 1
  fi
  if [[ -S "$sock" ]]; then
    echo "serve: drained server left its socket behind" >&2
    exit 1
  fi
}

for stage in "${STAGES[@]}"; do
  case "$stage" in
    static) stage_static ;;
    tier1) stage_tier1 ;;
    examples) stage_examples ;;
    tsan) stage_tsan ;;
    asan) stage_asan ;;
    fault) stage_fault ;;
    fuzzdiff) stage_fuzzdiff ;;
    crash) stage_crash ;;
    serve) stage_serve ;;
    *) echo "verify: unknown stage '$stage'" >&2; exit 64 ;;
  esac
done
echo "verify: OK (${STAGES[*]})"
