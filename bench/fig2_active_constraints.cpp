// Fig. 2 of the paper as a runnable artifact: the three types of active
// constraints that violations of P0, P1' and P2' induce. For each type a
// minimal circuit is built, the triggering move is applied tentatively,
// and the constraint the checker reports is printed with its witnesses.
#include <cstdio>

#include "netlist/builder.hpp"
#include "rgraph/retiming_graph.hpp"
#include "timing/constraints.hpp"
#include "timing/graph_timing.hpp"

namespace {

using namespace serelin;

const char* kind_name(ConstraintKind k) {
  switch (k) {
    case ConstraintKind::kP0: return "P0 (register count)";
    case ConstraintKind::kP1: return "P1' (long path / setup)";
    case ConstraintKind::kP2: return "P2' (short path / ELW)";
  }
  return "?";
}

void report(const char* title, const RetimingGraph& g, const Retiming& r,
            const TimingParams& tp, double rmin) {
  ConstraintChecker checker(g, tp, rmin);
  GraphTiming t(g, tp);
  t.compute(r);
  const auto viol = checker.find_violation(r, t);
  std::printf("%s\n", title);
  if (!viol) {
    std::printf("  no violation (unexpected)\n\n");
    return;
  }
  const Netlist& nl = g.netlist();
  auto name = [&](VertexId v) -> std::string {
    const RVertex& vx = g.vertex(v);
    if (vx.kind == VertexKind::kSink) return "<po>";
    return nl.node(vx.node).name;
  };
  std::printf("  violation: %s\n", kind_name(viol->kind));
  std::printf("  active constraint (p, q) = (%s, %s), required move w = %d\n",
              name(viol->p).c_str(), name(viol->q).c_str(), viol->w);
  std::printf("  meaning: whenever r(%s) decreases, r(%s) must decrease "
              "by %d with it\n\n",
              name(viol->p).c_str(), name(viol->q).c_str(), viol->w);
}

}  // namespace

int main() {
  using namespace serelin;
  CellLibrary lib;
  std::printf("Fig. 2 — the three active-constraint types\n\n");

  {
    // (a) P0: moving v forward drains the register-free edge (u, v).
    NetlistBuilder nb("fig2a");
    nb.input("x");
    nb.gate("u", CellType::kBuf, {"x"});
    nb.gate("v", CellType::kBuf, {"u"});
    nb.dff("d", "v");
    nb.gate("o", CellType::kBuf, {"d"});
    nb.output("o");
    const Netlist nl = nb.build();
    RetimingGraph g(nl, lib);
    Retiming r = g.zero_retiming();
    r[g.vertex_of(nl.find("v"))] = -1;  // w_r(u,v) = -1
    report("(a) P0: tentative r(v) -= 1 with w_r(u,v) = 0", g, r,
           {20.0, 0.0, 2.0}, 0.0);
  }
  {
    // (b) P1': moving z forward extends a combinational path beyond Φ-Ts.
    NetlistBuilder nb("fig2b");
    nb.input("x");
    nb.dff("din", "x");  // keeps the (immovable) input off the long path
    nb.gate("u", CellType::kBuf, {"din"});
    nb.gate("m1", CellType::kBuf, {"u"});
    nb.gate("m2", CellType::kBuf, {"m1"});
    nb.dff("d", "m2");
    nb.gate("z", CellType::kBuf, {"d"});
    nb.dff("d2", "z");
    nb.gate("o", CellType::kBuf, {"d2"});
    nb.output("o");
    const Netlist nl = nb.build();
    RetimingGraph g(nl, lib);
    Retiming r = g.zero_retiming();
    r[g.vertex_of(nl.find("z"))] = -1;  // path u..m2 now runs through z
    report("(b) P1': tentative r(z) -= 1 creates critical path u ~> z "
           "(phi = 3.5)",
           g, r, {3.5, 0.0, 2.0}, 0.0);
  }
  {
    // (c) P2': moving u forward delivers a register onto a short path
    //     u -> v ~> z whose boundary registers on (z, y) must then move.
    NetlistBuilder nb("fig2c");
    nb.input("x");
    nb.gate("u", CellType::kBuf, {"x"});
    nb.dff("d0", "u");
    nb.gate("v", CellType::kBuf, {"d0"});
    nb.gate("z", CellType::kBuf, {"v"});
    nb.dff("d1", "z");
    nb.gate("y", CellType::kBuf, {"d1"});
    nb.gate("tail", CellType::kBuf, {"y"});
    nb.gate("tail2", CellType::kBuf, {"tail"});
    nb.dff("d2", "tail2");
    nb.gate("o", CellType::kAnd, {"d2", "d2"});  // d(AND)=2 keeps the PO
    nb.output("o");                              // short path at R_min
    const Netlist nl = nb.build();
    RetimingGraph g(nl, lib);
    Retiming r = g.zero_retiming();
    r[g.vertex_of(nl.find("v"))] = -1;  // register moves to (v, z): path
                                        // z alone is shorter than R_min
    report("(c) P2': tentative r(v) -= 1 shrinks the short path below "
           "R_min = 2 — fix moves the (z, y) registers past y",
           g, r, {20.0, 0.0, 2.0}, 2.0);
  }
  return 0;
}
