// Fig. 1 of the paper as a runnable artifact: a register relocation that
// *reduces* total register observability yet *worsens* the circuit SER by
// enlarging the error-latching windows of the upstream cone.
//
// The harness prints the before/after numbers the figure annotates —
// per-signal observability and ELW sizes, the Eq. (5) register
// observability, and the Eq. (4) SER — and then shows that Efficient
// MinObs takes the move while MinObsWin (under the Section-V R_min)
// refuses it.
#include <cstdio>

#include "core/initializer.hpp"
#include "core/objective.hpp"
#include "core/solver.hpp"
#include "gen/paper_examples.hpp"
#include "rgraph/apply.hpp"
#include "ser/ser_analyzer.hpp"
#include "sim/observability.hpp"
#include "support/table.hpp"

int main() {
  using namespace serelin;
  const int kLadder = 10;
  const Netlist nl = fig1_circuit(kLadder);
  CellLibrary lib;
  RetimingGraph g(nl, lib);

  SimConfig cfg;
  cfg.patterns = 4096;
  cfg.frames = 8;
  ObservabilityAnalyzer obs_engine(nl, cfg);
  const ObsResult obs = obs_engine.run();
  const ObsGains gains = compute_gains(g, obs.obs, cfg.patterns);

  const TimingParams tp{30.0, 0.0, 2.0};
  Retiming moved = g.zero_retiming();
  moved[g.vertex_of(nl.find("G"))] = -1;
  const Netlist after = apply_retiming(g, moved, "fig1_moved");

  SerOptions ser;
  ser.timing = tp;
  ser.sim = cfg;
  const SerReport rep_before = analyze_ser(nl, lib, ser);
  const SerReport rep_after = analyze_ser(after, lib, ser);

  std::printf("Fig. 1 — the register move that lowers observability but "
              "worsens SER\n\n");
  std::printf("circuit: %d-rung ladder -> F -> [fd] -> G -> J -> PO "
              "(see src/gen/paper_examples.hpp)\n", kLadder);
  std::printf("move:    r(G) -= 1  (registers fd and dm relocate past G)\n\n");

  TextTable t({"signal", "obs", "|ELW| before", "|ELW| after"});
  auto add = [&](const std::string& name) {
    const NodeId id = nl.find(name);
    const NodeId id2 = after.find(name);
    t.add_row({name, fmt_fixed(rep_before.obs[id], 3),
               fmt_fixed(rep_before.elw.elw[id].measure(), 2),
               id2 == kNullNode
                   ? std::string("-")
                   : fmt_fixed(rep_after.elw.elw[id2].measure(), 2)});
  };
  for (int i = 1; i <= kLadder; ++i) add("a" + std::to_string(i));
  add("F");
  add("G");
  add("J");
  std::printf("%s\n", t.str().c_str());

  std::printf("register observability (Eq. 5, K-scaled): %lld -> %lld\n",
              static_cast<long long>(
                  register_observability(g, g.zero_retiming(), gains)),
              static_cast<long long>(
                  register_observability(g, moved, gains)));
  std::printf("flip-flop count: %lld -> %lld\n",
              static_cast<long long>(
                  g.shared_register_count(g.zero_retiming())),
              static_cast<long long>(g.shared_register_count(moved)));
  std::printf("SER (Eq. 4): %s -> %s  (%s)\n\n",
              fmt_sci(rep_before.total).c_str(),
              fmt_sci(rep_after.total).c_str(),
              fmt_percent(rep_after.total / rep_before.total - 1.0).c_str());

  SolverOptions opt;
  opt.timing = tp;
  opt.rmin = min_short_path(g, g.zero_retiming(), tp);
  const SolverResult win = MinObsWinSolver(g, gains, opt).solve(
      g.zero_retiming());
  SolverOptions ref_opt = opt;
  ref_opt.enforce_elw = false;
  const SolverResult ref = MinObsWinSolver(g, gains, ref_opt).solve(
      g.zero_retiming());
  std::printf("MinObs   (no ELW constraint): gain %lld — takes the move\n",
              static_cast<long long>(ref.objective_gain));
  std::printf("MinObsWin (R_min = %.1f):      gain %lld — refuses it\n",
              opt.rmin, static_cast<long long>(win.objective_gain));
  return 0;
}
