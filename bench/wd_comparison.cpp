// The paper's §IV-A complexity argument, measured: "the bottleneck of this
// class of algorithms lies in the Θ(|V|²) memory space to construct W and
// D". This harness builds the classical W/D matrices and runs the exact
// W/D min-period retiming next to the O(|E|)-memory FEAS retimer across
// growing circuits, reporting memory and wall clock for each.
//
// (The observability solvers never touch W/D; this is the measured reason
// why — the same reason [20] and the paper abandon the matrices.)
#include <cstdio>

#include "core/min_period.hpp"
#include "core/wd_matrices.hpp"
#include "gen/random_circuit.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

int main() {
  using namespace serelin;
  TextTable t({"|V|", "|E|", "W/D bytes", "W/D build [s]", "exact period",
               "exact solve [s]", "FEAS period", "FEAS [s]",
               "FEAS memory"});
  for (int gates : {250, 500, 1000, 2000, 4000}) {
    RandomCircuitSpec spec;
    spec.name = "wd" + std::to_string(gates);
    spec.gates = gates;
    spec.dffs = gates / 4;
    spec.inputs = 12;
    spec.outputs = 12;
    spec.mean_fanin = 2.0;
    spec.seed = 1000 + static_cast<std::uint64_t>(gates);
    const Netlist nl = generate_random_circuit(spec);
    CellLibrary lib;
    RetimingGraph g(nl, lib);

    Stopwatch build;
    WdMatrices wd(g);
    const double build_s = build.seconds();

    Stopwatch solve;
    const auto exact = wd_min_period(g, wd);
    const double solve_s = solve.seconds();

    Stopwatch feas_watch;
    MinPeriodRetimer feas(g, {});
    const auto approx = feas.minimize();
    const double feas_s = feas_watch.seconds();
    // FEAS state: one retiming label and one timing plane.
    const std::size_t feas_bytes =
        g.vertex_count() * (sizeof(std::int32_t) + 4 * sizeof(double)) +
        g.edge_count() * sizeof(REdge);

    t.add_row({std::to_string(g.vertex_count()),
               std::to_string(g.edge_count()),
               std::to_string(wd.memory_bytes()), fmt_fixed(build_s, 3),
               fmt_fixed(exact.period, 1), fmt_fixed(solve_s, 3),
               fmt_fixed(approx.period, 1), fmt_fixed(feas_s, 3),
               std::to_string(feas_bytes)});
  }
  std::printf("Classical W/D matrices vs the O(|E|)-memory path "
              "(paper §IV-A)\n\n%s\n", t.str().c_str());
  std::printf("W/D memory grows quadratically and dominates beyond a few "
              "thousand gates — the reason the regular-forest algorithms "
              "exist. FEAS upper-bounds the exact period (it never moves "
              "registers forward into output cones).\n");
  return 0;
}
