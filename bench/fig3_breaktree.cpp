// Fig. 3 of the paper as a runnable artifact: the positive-tree-to-
// positive-tree link that forces BreakTree and a weight update in the
// weighted regular forest.
//
//   (a) x (b=+3) bundles y (b=-2) with weight 1 to fix a P0 violation;
//   (b) u (b=+5) then needs y with weight 2 to fix a P2' violation — y
//       already sits in x's positive tree with the wrong weight;
//   (c) BreakTree(y) detaches y, its weight becomes 2, and it relinks
//       under u; x remains its own positive tree.
#include <cstdio>

#include "core/regular_forest.hpp"

int main() {
  using namespace serelin;
  // Vertices: 0 = u (+5), 1 = x (+3), 2 = y (-2).
  const std::int64_t gains[] = {5, 3, -2};
  const char movable[] = {1, 1, 1};
  const char* names[] = {"u", "x", "y"};
  RegularForest f({gains, 3}, {movable, 3});

  auto dump = [&](const char* stage) {
    std::printf("%s\n", stage);
    for (VertexId v = 0; v < 3; ++v) {
      const VertexId root = f.root_of(v);
      std::printf("  %s: b=%+lld w=%d tree-root=%s B(tree)=%+lld%s\n",
                  names[v], static_cast<long long>(f.gain(v)), f.weight(v),
                  names[root], static_cast<long long>(f.subtree_gain(root)),
                  f.in_positive_tree(v) ? "  [in V_P]" : "");
    }
    std::printf("\n");
  };

  dump("(a) initial forest: three singleton trees");

  f.add_constraint(1, 2, 1);  // (x, y) with w(y) = 1 — the P0 fix
  dump("(b) after UpdateForest(F, x, y, 1): y bundled into x's tree");

  f.add_constraint(0, 2, 2);  // (u, y) with w(y) = 2 — the P2' fix
  dump("(c) after BreakTree(y) + UpdateForest(F, u, y, 2):");

  std::printf("y now moves 2 registers with u (tree gain %+lld), while x "
              "keeps its own positive tree — the paper's Fig. 3(c).\n",
              static_cast<long long>(f.subtree_gain(f.root_of(0))));
  f.check_invariants();
  std::printf("forest invariants: OK\n");
  return 0;
}
