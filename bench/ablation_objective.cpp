// Ablation: the paper's §VII extension — augmenting the observability
// objective with an area weight ("the objective function in Problem 1 can
// be augmented to include area/power weight. The algorithm itself remains
// the same."). Sweeping the weight trades SER optimization against
// register count.
#include <cstdio>

#include "flow/experiment.hpp"
#include "gen/random_circuit.hpp"
#include "support/table.hpp"

int main() {
  using namespace serelin;
  RandomCircuitSpec spec;
  spec.name = "ablation_objective";
  spec.gates = 3000;
  spec.dffs = 800;
  spec.inputs = 20;
  spec.outputs = 20;
  spec.mean_fanin = 2.0;
  spec.seed = 31415;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;

  TextTable t({"area weight", "dFF (MinObsWin)", "dSER (MinObsWin)", "#J"});
  for (double w : {0.0, 0.02, 0.1, 0.5, 2.0}) {
    FlowConfig config;
    config.sim.patterns = 1024;
    config.sim.frames = 10;
    config.area_weight = w;
    config.run_minobs = false;
    const ExperimentRow row = run_experiment(nl, lib, config);
    t.add_row({fmt_fixed(w, 2), fmt_percent(row.minobswin.dff_change),
               fmt_percent(row.minobswin.dser),
               std::to_string(row.minobswin.solver.commits)});
  }
  std::printf("Objective extension (paper §VII): observability + area\n\n"
              "%s\n", t.str().c_str());
  std::printf("weight 0 is the paper's pure Eq. (5) objective; growing "
              "weights bias the solver toward register merges (area/power) "
              "at some cost in SER.\n");
  return 0;
}
