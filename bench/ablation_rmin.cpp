// Ablation: how the short-path bound R_min trades logic-masking gain
// against ELW control (the paper's §VI discussion: a stringent R_min makes
// MinObsWin degenerate to MinObs-like behaviour or exit early; a loose one
// risks SER regressions).
//
// One mid-size circuit; R_min swept as a multiple of the Section-V value.
#include <cstdio>

#include "flow/experiment.hpp"
#include "gen/random_circuit.hpp"
#include "support/table.hpp"

int main() {
  using namespace serelin;
  RandomCircuitSpec spec;
  spec.name = "ablation_rmin";
  spec.gates = 3000;
  spec.dffs = 800;
  spec.inputs = 20;
  spec.outputs = 20;
  spec.mean_fanin = 2.0;
  spec.seed = 2024;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;

  // Baseline flow once to learn the Section-V R_min.
  FlowConfig probe;
  probe.sim.patterns = 1024;
  probe.sim.frames = 10;
  probe.run_minobs = false;
  probe.reanalyze_ser = false;
  const ExperimentRow base = run_experiment(nl, lib, probe);
  std::printf("circuit: |V|=%zu |E|=%zu #FF=%lld  Phi=%.0f  "
              "Section-V R_min=%.2f\n\n",
              base.vertices, base.edges, static_cast<long long>(base.ffs),
              base.phi, base.rmin);

  TextTable t({"R_min", "factor", "gain (Eq.5)", "#J", "dFF", "dSER",
               "early-exit"});
  for (double factor : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    FlowConfig config = probe;
    config.reanalyze_ser = true;
    config.rmin_override = base.rmin * factor;
    const ExperimentRow row = run_experiment(nl, lib, config);
    t.add_row({fmt_fixed(row.rmin, 2), fmt_fixed(factor, 1),
               std::to_string(row.minobswin.solver.objective_gain),
               std::to_string(row.minobswin.solver.commits),
               fmt_percent(row.minobswin.dff_change),
               fmt_percent(row.minobswin.dser),
               row.minobswin.solver.exited_early ? "yes" : "no"});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("R_min = 0 disables P2' (the MinObs problem of [17]); larger "
              "bounds constrain the solver until the initial retiming "
              "itself violates P2' and the solver exits early — the "
              "paper's b18/b19 behaviour.\n");
  return 0;
}
