// Reproduction of the paper's Table I: "Comparison of SER on ISCAS89 and
// ITC99 circuits".
//
// For every suite row (synthetic stand-ins matched to the published |V|,
// |E|, #FF — see DESIGN.md) the harness runs the full Section-VI flow and
// prints the same columns the paper reports:
//   Statistics:      |V|  |E|  #FF  Φ  SER
//   Efficient MinObs: Δ#FF_ref  t_ref  ΔSER_ref
//   MinObsWin:        Δ#FF_new  t_new  #J  ΔSER_new  SER_ref/SER_new
// plus the paper's published ΔSER columns for side-by-side comparison.
//
// Simulation fidelity is scaled by circuit size so the whole table runs on
// one core in minutes (the paper's K=2048/n=15 on the small rows; reduced
// K/n on the 60k+-gate rows). Set SERELIN_TABLE1_FULL=1 for paper-fidelity
// everywhere, or SERELIN_TABLE1_MAXV=<n> to limit the rows attempted.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "flow/experiment.hpp"
#include "gen/paper_suite.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

}  // namespace

int main() {
  using namespace serelin;
  const bool full = env_int("SERELIN_TABLE1_FULL", 0) != 0;
  const int max_v = env_int("SERELIN_TABLE1_MAXV", 250000);

  TextTable table({"Circuit", "|V|", "|E|", "#FF", "Phi", "SER",
                   "dFF_ref", "t_ref", "dSER_ref", "(paper)", "dFF_new",
                   "t_new", "#J", "dSER_new", "(paper)", "ref/new"});

  double sum_dser_ref = 0, sum_dser_new = 0, sum_ratio = 0;
  double sum_dff_ref = 0, sum_dff_new = 0;
  double sum_t_ref = 0, sum_t_new = 0;
  int rows = 0, timed_rows = 0;

  Stopwatch total;
  for (const SuiteCircuit& sc : paper_suite()) {
    if (sc.vertices > max_v) {
      std::printf("-- skipping %s (|V|=%d > SERELIN_TABLE1_MAXV=%d)\n",
                  sc.name.c_str(), sc.vertices, max_v);
      continue;
    }
    FlowConfig config;
    if (full || sc.vertices <= 25000) {
      config.sim.patterns = 2048;  // the paper's K and n = 15 frames
      config.sim.frames = 15;
    } else if (sc.vertices <= 80000) {
      config.sim.patterns = 1024;
      config.sim.frames = 10;
    } else {
      config.sim.patterns = 256;
      config.sim.frames = 6;
    }
    config.sim.warmup = 2 * config.sim.frames;
    config.init.feas_passes = sc.vertices > 50000 ? 120 : 0;

    Stopwatch row_watch;
    const Netlist nl = generate_suite_circuit(sc);
    const ExperimentRow row = run_experiment(nl, CellLibrary{}, config);

    const double ratio =
        row.minobswin.ser > 0 ? row.minobs.ser / row.minobswin.ser : 1.0;
    table.add_row({row.name, std::to_string(row.vertices),
                   std::to_string(row.edges), std::to_string(row.ffs),
                   fmt_fixed(row.phi, 0), fmt_sci(row.ser_original),
                   fmt_percent(row.minobs.dff_change),
                   fmt_fixed(row.minobs.seconds, 2),
                   fmt_percent(row.minobs.dser),
                   fmt_percent(sc.paper_dser_ref),
                   fmt_percent(row.minobswin.dff_change),
                   fmt_fixed(row.minobswin.seconds, 2),
                   std::to_string(row.minobswin.solver.commits),
                   fmt_percent(row.minobswin.dser),
                   fmt_percent(sc.paper_dser_new), fmt_percent(ratio - 1.0)});
    std::printf("-- %-10s done in %.1fs (analysis %.1fs, K=%d, n=%d)%s%s\n",
                row.name.c_str(), row_watch.seconds(), row.analysis_seconds,
                config.sim.patterns, config.sim.frames,
                row.minobswin.solver.exited_early ? " [early exit]" : "",
                row.setup_hold_ok ? "" : " [hold fallback]");

    sum_dser_ref += row.minobs.dser;
    sum_dser_new += row.minobswin.dser;
    sum_dff_ref += row.minobs.dff_change;
    sum_dff_new += row.minobswin.dff_change;
    sum_ratio += ratio;
    ++rows;
    // The paper excludes the b18/b19 early-exit rows from run-time means.
    if (!row.minobswin.solver.exited_early &&
        row.name.find("b19") == std::string::npos &&
        row.name.find("b18") == std::string::npos) {
      sum_t_ref += row.minobs.seconds;
      sum_t_new += row.minobswin.seconds;
      ++timed_rows;
    }
  }

  if (rows == 0) {
    std::printf("no rows ran\n");
    return 1;
  }
  table.add_row({"AVG.", "", "", "", "", "", fmt_percent(sum_dff_ref / rows),
                 fmt_fixed(sum_t_ref / std::max(timed_rows, 1), 2) + "*",
                 fmt_percent(sum_dser_ref / rows), "(-26.70%)",
                 fmt_percent(sum_dff_new / rows),
                 fmt_fixed(sum_t_new / std::max(timed_rows, 1), 2) + "*",
                 "", fmt_percent(sum_dser_new / rows), "(-32.70%)",
                 fmt_percent(sum_ratio / rows - 1.0)});

  std::printf("\nTable I — serelin reproduction "
              "(paper's published averages in parentheses)\n\n%s\n",
              table.str().c_str());
  std::printf("total wall clock: %.1fs over %d rows "
              "(* run-time averages exclude b18/b19, as in the paper)\n",
              total.seconds(), rows);
  return 0;
}
