// Runtime scaling of the two solvers (the paper's t_ref / t_new columns):
// Efficient MinObs vs MinObsWin on growing circuits. The paper reports
// MinObsWin ≈ 2.5× slower on average (the extra P2' detection work) with
// both inheriting O(|E|) memory from the regular forest.
#include <benchmark/benchmark.h>

#include <map>

#include "core/initializer.hpp"
#include "core/objective.hpp"
#include "core/solver.hpp"
#include "gen/random_circuit.hpp"
#include "sim/observability.hpp"
#include "support/parallel.hpp"

namespace {

using namespace serelin;

struct Instance {
  Netlist nl;
  CellLibrary lib;
  RetimingGraph graph;
  InitResult init;
  ObsGains gains;

  explicit Instance(int gates)
      : nl(make_netlist(gates)), graph(nl, lib) {
    init = initialize_retiming(graph, {});
    SimConfig cfg;
    cfg.patterns = 512;
    cfg.frames = 6;
    ObservabilityAnalyzer engine(nl, cfg);
    gains = compute_gains(graph, engine.run().obs, cfg.patterns);
  }

  static Netlist make_netlist(int gates) {
    RandomCircuitSpec spec;
    spec.name = "scale" + std::to_string(gates);
    spec.gates = gates;
    spec.dffs = gates / 4;
    spec.inputs = 16;
    spec.outputs = 16;
    spec.mean_fanin = 2.0;
    spec.seed = 4242 + static_cast<std::uint64_t>(gates);
    return generate_random_circuit(spec);
  }
};

Instance& instance(int gates) {
  static std::map<int, Instance> cache;
  auto it = cache.find(gates);
  if (it == cache.end()) it = cache.try_emplace(gates, gates).first;
  return it->second;
}

void BM_MinObs(benchmark::State& state) {
  Instance& inst = instance(static_cast<int>(state.range(0)));
  SolverOptions opt;
  opt.timing = inst.init.timing;
  opt.rmin = inst.init.rmin;
  opt.enforce_elw = false;
  MinObsWinSolver solver(inst.graph, inst.gains, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(inst.init.r));
  }
  state.counters["|V|"] = static_cast<double>(inst.graph.gate_vertices().size());
  state.counters["|E|"] = static_cast<double>(inst.graph.edge_count());
}

void BM_MinObsWin(benchmark::State& state) {
  Instance& inst = instance(static_cast<int>(state.range(0)));
  SolverOptions opt;
  opt.timing = inst.init.timing;
  opt.rmin = inst.init.rmin;
  opt.enforce_elw = true;
  MinObsWinSolver solver(inst.graph, inst.gains, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(inst.init.r));
  }
  state.counters["|V|"] = static_cast<double>(inst.graph.gate_vertices().size());
}

void BM_Initialization(benchmark::State& state) {
  Instance& inst = instance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(initialize_retiming(inst.graph, {}));
  }
}

// The observability prep that feeds the solvers (the dominant fixed cost of
// an end-to-end retiming run) at varying worker counts: args are
// {gates, threads}.
void BM_ObsPrepThreaded(benchmark::State& state) {
  Instance& inst = instance(static_cast<int>(state.range(0)));
  SimConfig cfg;
  cfg.patterns = 2048;
  cfg.frames = 6;
  set_execution_threads(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    ObservabilityAnalyzer engine(inst.nl, cfg);
    benchmark::DoNotOptimize(
        compute_gains(inst.graph, engine.run().obs, cfg.patterns));
  }
  set_execution_threads(0);
  state.counters["threads"] = static_cast<double>(state.range(1));
}

}  // namespace

BENCHMARK(BM_MinObs)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MinObsWin)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Initialization)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ObsPrepThreaded)
    ->Args({4000, 1})->Args({4000, 2})->Args({4000, 8})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
