// Microbenchmarks of the substrate kernels: word-parallel simulation, the
// backward ODC pass, graph timing recomputation (the inner loop of the
// solvers), exact interval-ELW computation, and interval-set arithmetic.
// The *Threaded variants take the worker count as the benchmark argument
// so the parallel substrate's speedup is measured, not asserted
// (tools/bench_report records the same kernels into BENCH_parallel.json).
#include <benchmark/benchmark.h>

#include "core/wd_matrices.hpp"
#include "gen/random_circuit.hpp"
#include "interval/interval_set.hpp"
#include "rgraph/retiming_graph.hpp"
#include "ser/ser_analyzer.hpp"
#include "sim/observability.hpp"
#include "sim/simulator.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "timing/elw.hpp"
#include "timing/graph_timing.hpp"

namespace {

using namespace serelin;

const Netlist& bench_netlist() {
  static const Netlist nl = [] {
    RandomCircuitSpec spec;
    spec.name = "micro";
    spec.gates = 10000;
    spec.dffs = 2500;
    spec.inputs = 32;
    spec.outputs = 32;
    spec.mean_fanin = 2.0;
    spec.seed = 777;
    return generate_random_circuit(spec);
  }();
  return nl;
}

void BM_SimFrame(benchmark::State& state) {
  const Netlist& nl = bench_netlist();
  Simulator sim(nl, static_cast<int>(state.range(0)));
  Rng rng(1);
  sim.randomize_inputs(rng);
  for (auto _ : state) {
    sim.eval_frame();
    sim.step();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nl.gate_count()) * 64 *
                          state.range(0));
}

void BM_ObservabilityRun(benchmark::State& state) {
  const Netlist& nl = bench_netlist();
  SimConfig cfg;
  cfg.patterns = 512;
  cfg.frames = static_cast<int>(state.range(0));
  cfg.warmup = 8;
  for (auto _ : state) {
    ObservabilityAnalyzer engine(nl, cfg);
    benchmark::DoNotOptimize(engine.run());
  }
}

void BM_WdConstructThreaded(benchmark::State& state) {
  const Netlist& nl = bench_netlist();
  static CellLibrary lib;
  static RetimingGraph g(nl, lib);
  set_execution_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    WdMatrices wd(g);
    benchmark::DoNotOptimize(wd.memory_bytes());
  }
  set_execution_threads(0);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_ObservabilitySignatureThreaded(benchmark::State& state) {
  const Netlist& nl = bench_netlist();
  SimConfig cfg;
  cfg.patterns = 2048;
  cfg.frames = 8;
  cfg.warmup = 8;
  set_execution_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ObservabilityAnalyzer engine(nl, cfg);
    benchmark::DoNotOptimize(engine.run(ObservabilityAnalyzer::Mode::kSignature));
  }
  set_execution_threads(0);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_ObservabilityExactThreaded(benchmark::State& state) {
  const Netlist& nl = bench_netlist();
  SimConfig cfg;
  cfg.patterns = 256;
  cfg.frames = 2;
  cfg.warmup = 4;
  set_execution_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ObservabilityAnalyzer engine(nl, cfg);
    benchmark::DoNotOptimize(engine.run(ObservabilityAnalyzer::Mode::kExact));
  }
  set_execution_threads(0);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_SerSweepThreaded(benchmark::State& state) {
  const Netlist& nl = bench_netlist();
  CellLibrary lib;
  SerOptions opt;
  opt.timing = {100.0, 0.0, 2.0};
  opt.sim.patterns = 512;
  opt.sim.frames = 4;
  opt.sim.warmup = 8;
  set_execution_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_ser(nl, lib, opt));
  }
  set_execution_threads(0);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_GraphTimingCompute(benchmark::State& state) {
  const Netlist& nl = bench_netlist();
  static CellLibrary lib;
  static RetimingGraph g(nl, lib);
  GraphTiming timing(g, {100.0, 0.0, 2.0});
  const Retiming r = g.zero_retiming();
  for (auto _ : state) {
    timing.compute(r);
    benchmark::DoNotOptimize(timing.max_after(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.edge_count()));
}

void BM_ExactElw(benchmark::State& state) {
  const Netlist& nl = bench_netlist();
  CellLibrary lib;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_elw(nl, lib, {100.0, 0.0, 2.0}));
  }
}

void BM_IntervalUnion(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    IntervalSet s;
    for (int i = 0; i < 64; ++i) {
      const double lo = rng.uniform() * 100.0;
      s.insert(lo, lo + 2.0);
    }
    benchmark::DoNotOptimize(s.measure());
  }
}

}  // namespace

BENCHMARK(BM_SimFrame)->Arg(8)->Arg(32);
BENCHMARK(BM_ObservabilityRun)->Arg(4)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WdConstructThreaded)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ObservabilitySignatureThreaded)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ObservabilityExactThreaded)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_SerSweepThreaded)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_GraphTimingCompute);
BENCHMARK(BM_ExactElw)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IntervalUnion);

BENCHMARK_MAIN();
