// Microbenchmarks of the substrate kernels: word-parallel simulation, the
// backward ODC pass, graph timing recomputation (the inner loop of the
// solvers), exact interval-ELW computation, and interval-set arithmetic.
#include <benchmark/benchmark.h>

#include "gen/random_circuit.hpp"
#include "interval/interval_set.hpp"
#include "rgraph/retiming_graph.hpp"
#include "sim/observability.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "timing/elw.hpp"
#include "timing/graph_timing.hpp"

namespace {

using namespace serelin;

const Netlist& bench_netlist() {
  static const Netlist nl = [] {
    RandomCircuitSpec spec;
    spec.name = "micro";
    spec.gates = 10000;
    spec.dffs = 2500;
    spec.inputs = 32;
    spec.outputs = 32;
    spec.mean_fanin = 2.0;
    spec.seed = 777;
    return generate_random_circuit(spec);
  }();
  return nl;
}

void BM_SimFrame(benchmark::State& state) {
  const Netlist& nl = bench_netlist();
  Simulator sim(nl, static_cast<int>(state.range(0)));
  Rng rng(1);
  sim.randomize_inputs(rng);
  for (auto _ : state) {
    sim.eval_frame();
    sim.step();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nl.gate_count()) * 64 *
                          state.range(0));
}

void BM_ObservabilityRun(benchmark::State& state) {
  const Netlist& nl = bench_netlist();
  SimConfig cfg;
  cfg.patterns = 512;
  cfg.frames = static_cast<int>(state.range(0));
  cfg.warmup = 8;
  for (auto _ : state) {
    ObservabilityAnalyzer engine(nl, cfg);
    benchmark::DoNotOptimize(engine.run());
  }
}

void BM_GraphTimingCompute(benchmark::State& state) {
  const Netlist& nl = bench_netlist();
  static CellLibrary lib;
  static RetimingGraph g(nl, lib);
  GraphTiming timing(g, {100.0, 0.0, 2.0});
  const Retiming r = g.zero_retiming();
  for (auto _ : state) {
    timing.compute(r);
    benchmark::DoNotOptimize(timing.max_after(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.edge_count()));
}

void BM_ExactElw(benchmark::State& state) {
  const Netlist& nl = bench_netlist();
  CellLibrary lib;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_elw(nl, lib, {100.0, 0.0, 2.0}));
  }
}

void BM_IntervalUnion(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    IntervalSet s;
    for (int i = 0; i < 64; ++i) {
      const double lo = rng.uniform() * 100.0;
      s.insert(lo, lo + 2.0);
    }
    benchmark::DoNotOptimize(s.measure());
  }
}

}  // namespace

BENCHMARK(BM_SimFrame)->Arg(8)->Arg(32);
BENCHMARK(BM_ObservabilityRun)->Arg(4)->Arg(15)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GraphTimingCompute);
BENCHMARK(BM_ExactElw)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IntervalUnion);

BENCHMARK_MAIN();
