// Ablation: convergence of the n-time-frame expansion (paper §II-B / §VI:
// "a 15 time-frame expansion is used ... to reach the steady operational
// state"). Mean node observability and the resulting SER converge
// monotonically from above as the horizon grows: an upset that reaches a
// register is only *provisionally* observable until later frames confirm
// it survives to a primary output.
#include <cstdio>

#include "gen/random_circuit.hpp"
#include "ser/ser_analyzer.hpp"
#include "support/table.hpp"

int main() {
  using namespace serelin;
  RandomCircuitSpec spec;
  spec.name = "ablation_frames";
  spec.gates = 2000;
  spec.dffs = 500;
  spec.inputs = 16;
  spec.outputs = 16;
  spec.mean_fanin = 2.0;
  spec.seed = 99;
  const Netlist nl = generate_random_circuit(spec);
  CellLibrary lib;

  TextTable t({"frames n", "mean obs", "mean reg obs", "SER(C_S,n)",
               "delta vs prev"});
  double prev = 0.0;
  for (int frames : {1, 2, 4, 8, 15, 20}) {
    SerOptions opt;
    opt.timing = {60.0, 0.0, 2.0};
    opt.sim.patterns = 1024;
    opt.sim.frames = frames;
    opt.sim.warmup = 2 * frames;
    const SerReport rep = analyze_ser(nl, lib, opt);
    double sum = 0.0, reg_sum = 0.0;
    std::size_t regs = 0;
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      sum += rep.obs[id];
      if (nl.node(id).type == CellType::kDff) {
        reg_sum += rep.obs[id];
        ++regs;
      }
    }
    const double mean = sum / static_cast<double>(nl.node_count());
    t.add_row({std::to_string(frames), fmt_fixed(mean, 4),
               fmt_fixed(reg_sum / static_cast<double>(regs), 4),
               fmt_sci(rep.total),
               prev > 0 ? fmt_percent(rep.total / prev - 1.0)
                        : std::string("-")});
    prev = rep.total;
  }
  std::printf("Time-frame expansion convergence (paper uses n = 15)\n\n%s\n",
              t.str().c_str());
  return 0;
}
