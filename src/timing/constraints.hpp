// Feasibility predicates P0 / P1' / P2' of the paper's Problem 1, plus the
// violation witnesses that seed active constraints in the MinObsWin solver.
//
//   P0 : every edge keeps a non-negative register count, w_r(u,v) >= 0.
//   P1': setup feasibility — every combinational path fits in Φ − Ts. We
//        check the paper's per-vertex form L(v) >= d(v), equivalently
//        d(v) + max_after(v) <= Φ − Ts, at every non-sink vertex (sources
//        have d = 0, which covers primary-input paths).
//   P2': ELW control — for every registered edge (u,v), the shortest
//        combinational path from the register output to the next boundary,
//        d(v) + min_after(v) (zero when the register feeds a primary output
//        directly), must be at least R_min.
//
// A violation is reported as the paper's active constraint (p, q, w):
// vertex q must decrease its retiming label by w to repair the violation,
// and any further decrease of p re-requires a decrease of q. When q is a
// boundary vertex (source or sink) the violation is unfixable — the solver
// must abandon (block) the tree containing p; this is exactly the paper's
// "no registers can be moved into the host" early exit on b18/b19.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "rgraph/retiming_graph.hpp"
#include "timing/graph_timing.hpp"
#include "timing/params.hpp"

namespace serelin {

enum class ConstraintKind : std::uint8_t { kP0, kP1, kP2 };

struct Violation {
  ConstraintKind kind = ConstraintKind::kP0;
  VertexId p = kNullVertex;  ///< dependency source ("if p drops again...")
  VertexId q = kNullVertex;  ///< vertex that must decrease (may be immovable)
  std::int32_t w = 0;        ///< required decrease of q
  // A P2' short-path violation on a registered edge e = (u, h) admits two
  // monotone fixes: push the boundary register forward (q = boundary head,
  // the default) or drain the launching register off e by decreasing h
  // itself. The alternate is recorded so a solver whose primary choice
  // dead-ended in an immovable chain can re-try the other resolution
  // (see MinObsWinSolver's re-seeded passes); kNullVertex when the
  // violation has a unique fix.
  VertexId alt_q = kNullVertex;  ///< drain-side fix target, if any
  std::int32_t alt_w = 0;        ///< required decrease of alt_q
};

class ConstraintChecker {
 public:
  /// Numeric slack used when comparing path delays.
  static constexpr double kEps = 1e-9;

  ConstraintChecker(const RetimingGraph& g, TimingParams params, double rmin);

  double rmin() const { return rmin_; }
  const TimingParams& params() const { return params_; }

  /// Scans for one violation under retiming `r`; `t` must hold labels
  /// computed for `r`. Returns nullopt when r is feasible. P0 is checked
  /// first (negative register counts make path labels meaningless), then
  /// P2', then P1'.
  ///
  /// `movers`, when non-empty (size |V|, nonzero = vertex moved in the
  /// current tentative step), filters the dependency source: the returned
  /// violation's p is a mover whenever any attribution of the violation to
  /// a mover exists. Under the solver's invariant (the pre-move retiming
  /// was feasible) every violation is attributable: a combinational path
  /// always terminates at a mover's out-edge (movers add registers to all
  /// their out-edges), a fresh register edge has a mover tail, and a
  /// shortened short path has a mover as its rt() witness.
  std::optional<Violation> find_violation(
      const Retiming& r, const GraphTiming& t,
      std::span<const char> movers = {}) const;

  /// Batch form: collects up to `max_count` violations with pairwise
  /// distinct q, so a solver can fold many active constraints into the
  /// forest per timing recomputation (one tentative move typically breaks
  /// many constraints at once; processing them one-per-recompute would
  /// cost a full O(|V|+|E|) pass each). When P0 is violated the batch
  /// contains only P0 entries — path labels are meaningless beside
  /// negative edge weights.
  std::vector<Violation> find_violations(const Retiming& r,
                                         const GraphTiming& t,
                                         std::span<const char> movers,
                                         std::size_t max_count) const;

  /// Dirty-set batch form: scans only the edges/vertices named by `delta`
  /// (a GraphTiming::update result) instead of the whole graph. Requires
  /// the solver invariant that the previously labeled retiming was
  /// violation-free: then every current violation involves a w_r-changed
  /// edge or a relabeled vertex, and because candidates are scanned in the
  /// same ascending order as the full scan, the returned batch (including
  /// the mover-attribution fallback) is identical to the full-scan batch.
  /// delta.full falls back to the full scan; delta.p0_dirty yields the
  /// P0-only batch without touching timing labels.
  std::vector<Violation> find_violations(const Retiming& r,
                                         const GraphTiming& t,
                                         const TimingDelta& delta,
                                         std::span<const char> movers,
                                         std::size_t max_count) const;

  /// Individual predicates (full scans; used by tests and the initializer).
  bool p0_holds(const Retiming& r) const;
  bool p1_holds(const GraphTiming& t) const;
  bool p2_holds(const Retiming& r, const GraphTiming& t) const;

  /// Convenience: recomputes `t` for `r` and checks all three.
  bool feasible(const Retiming& r, GraphTiming& t) const;

 private:
  std::optional<Violation> find_p2(const Retiming& r, const GraphTiming& t,
                                   std::span<const char> movers) const;
  std::optional<Violation> find_p0(const Retiming& r) const;
  std::optional<Violation> find_p1(const GraphTiming& t,
                                   std::span<const char> movers) const;

  const RetimingGraph* g_;
  TimingParams params_;
  double rmin_;
};

}  // namespace serelin
