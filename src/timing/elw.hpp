// Exact error-latching windows (ELWs) on a netlist, per the paper's Eq. (3).
//
// The ELW of a node is the set of in-cycle instants at which a transient
// glitch at the node's output, if it survives logic masking, arrives at some
// register (or primary output) inside the latching window [Φ−Ts, Φ+Th] and
// is therefore locked in. It is computed backward from the latching
// boundaries:
//
//   ELW(g) ⊇ [Φ−Ts, Φ+Th]                 if g drives a register D pin or a
//                                         primary output (g ∈ RO);
//   ELW(g) ⊇ ELW(f) − d(f)                for every combinational fanout f.
//
// Unlike the paper's two-case Eq. (3) we take the union of both
// contributions for nodes with mixed fanout (a gate that feeds both a
// register and further logic): a glitch there can be latched directly *or*
// propagate — the union is the physically conservative window.
//
// Flip-flop nodes are "wires" in the expanded-circuit view (paper §II-C),
// so their ELW follows the same recurrence: it describes when an upset of
// the stored bit, appearing at the flip-flop output, gets re-latched
// downstream.
//
// The paper's Theorem 1 (L(v) = leftmost, R(v) = rightmost ELW boundary)
// connects these interval sets to the graph labels of GraphTiming; the test
// suite checks that correspondence.
#pragma once

#include <vector>

#include "interval/interval_set.hpp"
#include "netlist/netlist.hpp"
#include "timing/params.hpp"

namespace serelin {

struct ElwResult {
  /// Per-node ELW, indexed by NodeId. Empty for nodes whose glitches can
  /// never be latched (e.g. dangling cones).
  std::vector<IntervalSet> elw;

  /// Sum of interval lengths |ELW(node)| (paper Eq. 4 numerator), capped at
  /// one clock period: a glitch occurs at one instant per cycle, so its
  /// latching probability |ELW|/Φ cannot exceed 1.
  double measure(NodeId node, double period) const;
};

/// Computes ELWs for every node of a finalized netlist.
ElwResult compute_elw(const Netlist& nl, const CellLibrary& lib,
                      const TimingParams& params);

}  // namespace serelin
