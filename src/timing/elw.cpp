#include "timing/elw.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/trace.hpp"

namespace serelin {

double ElwResult::measure(NodeId node, double period) const {
  return std::min(elw[node].measure(), period);
}

ElwResult compute_elw(const Netlist& nl, const CellLibrary& lib,
                      const TimingParams& params) {
  SERELIN_SPAN("elw/compute");
  SERELIN_REQUIRE(nl.finalized(), "compute_elw needs a finalized netlist");
  ElwResult out;
  out.elw.assign(nl.node_count(), IntervalSet{});
  const IntervalSet base(params.window_lo(), params.window_hi());

  auto accumulate = [&](NodeId v) {
    IntervalSet w;
    bool latched_here = nl.is_output(v);
    for (NodeId f : nl.node(v).fanouts) {
      const Node& fn = nl.node(f);
      if (fn.type == CellType::kDff) {
        latched_here = true;  // v drives a register D pin
      } else {
        SERELIN_ASSERT(is_gate(fn.type), "unexpected fanout type");
        w.unite(out.elw[f].shifted(-lib.delay(fn.type)));
      }
    }
    if (latched_here) w.unite(base);
    out.elw[v] = std::move(w);
  };

  // Gates in reverse topological order, then sources (inputs, constants,
  // flip-flops), whose fanouts are all gates or registers.
  const auto& order = nl.gate_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) accumulate(*it);
  for (NodeId v = 0; v < nl.node_count(); ++v)
    if (!is_gate(nl.node(v).type)) accumulate(v);
  return out;
}

}  // namespace serelin
