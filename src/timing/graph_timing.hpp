// Static timing labels on a retimed graph.
//
// For a retiming graph G and retiming r, the register-free (w_r = 0) edges
// form a DAG. This class computes, per vertex:
//
//   arrival(v)    longest-path delay from any cycle source (register output,
//                 primary input, constant) to the *output* of v — the FEAS
//                 arrival time used by min-period retiming;
//   max_after(v)  longest combinational delay from v's output forward to the
//                 nearest boundary (a register on an out-edge path, or a
//                 primary output);
//   min_after(v)  the same with shortest paths;
//   L(v) = Φ − Ts − max_after(v)     (paper Eq. 6, longest-path label)
//   R(v) = Φ + Th − min_after(v)     (paper Eq. 6, shortest-path label)
//
// Theorem 1 of the paper states that L(v) and R(v) are exactly the leftmost
// and rightmost boundaries of the (interval-union) error-latching window of
// v — verified against timing/elw.hpp in the test suite.
//
// Critical-path witnesses: lt(v) / rt(v) name the *last gate* of the
// critical longest / shortest path from v — the vertex whose out-edge is
// the boundary register. They are the paper's lt/rt labellings that seed
// active constraints in the MinObsWin solver; for the shortest path the
// boundary edge itself is retained (crit_min_edge) so the solver can move
// its registers.
//
// Incremental updates: update(r) diffs `r` against the retiming the labels
// were last computed for and relabels only the affected fanin/fanout cones
// (O(cone) instead of O(|V|+|E|) per solver move). The relabeled values are
// bit-identical to a from-scratch compute(r) — each cone vertex is
// recomputed with the exact compute() loop body, reading already-final
// neighbour labels — so solvers can switch between the two freely. The
// returned TimingDelta additionally names what changed, which lets the
// constraint checker scan only dirty edges/vertices (see constraints.hpp).
#pragma once

#include <span>
#include <vector>

#include "rgraph/retiming_graph.hpp"
#include "timing/params.hpp"

namespace serelin {

/// What a GraphTiming::update() call changed. Lifetime: valid until the
/// next compute()/update() on the same GraphTiming.
struct TimingDelta {
  /// A full recompute ran (labels were not exact before the call); the
  /// dirty sets below are not populated.
  bool full = false;
  /// `r` has a negative w_r edge (P0 violated). Labels were NOT updated —
  /// they still describe the previous retiming — because the w_r = 0
  /// subgraph of an invalid retiming is not a meaningful DAG. wr_changed
  /// still lists every edge whose w_r differs from the labeled state (a
  /// superset of the negative edges, since the labeled state is valid).
  bool p0_dirty = false;
  /// Edges whose w_r differs from the previously labeled retiming,
  /// ascending. Empty when `full`.
  std::vector<EdgeId> wr_changed;
  /// Vertices whose backward labels (max_after/min_after/lt/rt/
  /// crit_min_edge) changed, ascending. Arrival-only changes are not
  /// listed: the constraint predicates never read arrival. Empty when
  /// `full` or `p0_dirty`.
  std::vector<VertexId> relabeled;
};

class GraphTiming {
 public:
  GraphTiming(const RetimingGraph& g, TimingParams params);

  /// Recomputes every label for retiming `r` (O(|V|+|E|)).
  /// Requires g.valid(r).
  void compute(const Retiming& r);

  /// Incrementally relabels for `r`, touching only the cones reachable
  /// from edges whose w_r changed since the last compute()/update().
  /// Results are bit-identical to compute(r) whenever g.valid(r); when
  /// `r` is invalid (negative w_r) the labels are left at the previous
  /// state and the delta reports p0_dirty (callers must not read labels
  /// until a later update with a valid retiming rolls them forward).
  ///
  /// `moved_hint`, when non-empty, must be a superset of the vertices
  /// whose r differs from the last labeled state (duplicates fine); it
  /// skips the O(|V|) diff scan. Falls back to a full compute when no
  /// labels exist yet.
  const TimingDelta& update(const Retiming& r,
                            std::span<const VertexId> moved_hint = {});

  const TimingParams& params() const { return params_; }

  double arrival(VertexId v) const { return arrival_[v]; }
  double max_after(VertexId v) const { return max_after_[v]; }
  double min_after(VertexId v) const { return min_after_[v]; }

  /// Paper Eq. (6) labels at the output of v.
  double L(VertexId v) const { return params_.window_lo() - max_after_[v]; }
  double R(VertexId v) const { return params_.window_hi() - min_after_[v]; }

  /// Last gate of the critical longest path leaving v (the paper's lt(v)).
  VertexId lt(VertexId v) const { return crit_max_end_[v]; }
  /// Last gate of the critical shortest path leaving v (the paper's rt(v)).
  VertexId rt(VertexId v) const { return crit_min_end_[v]; }

  /// The boundary edge of the critical shortest path from v: an out-edge of
  /// rt(v) that carries registers (or reaches a primary-output sink).
  EdgeId crit_min_edge(VertexId v) const { return crit_min_edge_[v]; }

  /// Topological order of the w_r = 0 subgraph from the last full
  /// compute() (incremental update() does not maintain it).
  const std::vector<VertexId>& topo_order() const { return topo_; }

 private:
  void topo_sort(const Retiming& r);
  /// Recomputes arrival(v) from its (already final) w_r = 0 fanins.
  void relabel_forward(const Retiming& r, VertexId v);
  /// Recomputes the five backward labels of v from its (already final)
  /// w_r = 0 fanouts; returns true when any of them changed.
  bool relabel_backward(const Retiming& r, VertexId v);

  const RetimingGraph* g_;
  TimingParams params_;
  std::vector<double> arrival_;
  std::vector<double> max_after_;
  std::vector<double> min_after_;
  std::vector<VertexId> crit_max_end_;
  std::vector<VertexId> crit_min_end_;
  std::vector<EdgeId> crit_min_edge_;
  std::vector<VertexId> topo_;

  // Incremental-update state: the retiming the labels describe, and
  // epoch-stamped scratch so updates allocate nothing in steady state.
  Retiming label_r_;
  bool labels_exact_ = false;
  TimingDelta delta_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> vmark_;
  std::vector<std::uint64_t> emark_;
  std::vector<std::uint32_t> pending_;
  std::vector<VertexId> changed_;
  std::vector<VertexId> cone_;
  std::vector<VertexId> queue_;
};

}  // namespace serelin
