// Static timing labels on a retimed graph.
//
// For a retiming graph G and retiming r, the register-free (w_r = 0) edges
// form a DAG. This class computes, per vertex:
//
//   arrival(v)    longest-path delay from any cycle source (register output,
//                 primary input, constant) to the *output* of v — the FEAS
//                 arrival time used by min-period retiming;
//   max_after(v)  longest combinational delay from v's output forward to the
//                 nearest boundary (a register on an out-edge path, or a
//                 primary output);
//   min_after(v)  the same with shortest paths;
//   L(v) = Φ − Ts − max_after(v)     (paper Eq. 6, longest-path label)
//   R(v) = Φ + Th − min_after(v)     (paper Eq. 6, shortest-path label)
//
// Theorem 1 of the paper states that L(v) and R(v) are exactly the leftmost
// and rightmost boundaries of the (interval-union) error-latching window of
// v — verified against timing/elw.hpp in the test suite.
//
// Critical-path witnesses: lt(v) / rt(v) name the *last gate* of the
// critical longest / shortest path from v — the vertex whose out-edge is
// the boundary register. They are the paper's lt/rt labellings that seed
// active constraints in the MinObsWin solver; for the shortest path the
// boundary edge itself is retained (crit_min_edge) so the solver can move
// its registers.
#pragma once

#include <vector>

#include "rgraph/retiming_graph.hpp"
#include "timing/params.hpp"

namespace serelin {

class GraphTiming {
 public:
  GraphTiming(const RetimingGraph& g, TimingParams params);

  /// Recomputes every label for retiming `r` (O(|V|+|E|)).
  /// Requires g.valid(r).
  void compute(const Retiming& r);

  const TimingParams& params() const { return params_; }

  double arrival(VertexId v) const { return arrival_[v]; }
  double max_after(VertexId v) const { return max_after_[v]; }
  double min_after(VertexId v) const { return min_after_[v]; }

  /// Paper Eq. (6) labels at the output of v.
  double L(VertexId v) const { return params_.window_lo() - max_after_[v]; }
  double R(VertexId v) const { return params_.window_hi() - min_after_[v]; }

  /// Last gate of the critical longest path leaving v (the paper's lt(v)).
  VertexId lt(VertexId v) const { return crit_max_end_[v]; }
  /// Last gate of the critical shortest path leaving v (the paper's rt(v)).
  VertexId rt(VertexId v) const { return crit_min_end_[v]; }

  /// The boundary edge of the critical shortest path from v: an out-edge of
  /// rt(v) that carries registers (or reaches a primary-output sink).
  EdgeId crit_min_edge(VertexId v) const { return crit_min_edge_[v]; }

  /// Topological order of the w_r = 0 subgraph from the last compute().
  const std::vector<VertexId>& topo_order() const { return topo_; }

 private:
  void topo_sort(const Retiming& r);

  const RetimingGraph* g_;
  TimingParams params_;
  std::vector<double> arrival_;
  std::vector<double> max_after_;
  std::vector<double> min_after_;
  std::vector<VertexId> crit_max_end_;
  std::vector<VertexId> crit_min_end_;
  std::vector<EdgeId> crit_min_edge_;
  std::vector<VertexId> topo_;
};

}  // namespace serelin
