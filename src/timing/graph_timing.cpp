#include "timing/graph_timing.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace serelin {

GraphTiming::GraphTiming(const RetimingGraph& g, TimingParams params)
    : g_(&g), params_(params) {
  const std::size_t n = g.vertex_count();
  arrival_.assign(n, 0.0);
  max_after_.assign(n, 0.0);
  min_after_.assign(n, 0.0);
  crit_max_end_.assign(n, kNullVertex);
  crit_min_end_.assign(n, kNullVertex);
  crit_min_edge_.assign(n, kNullEdge);
  topo_.reserve(n);
}

void GraphTiming::topo_sort(const Retiming& r) {
  const std::size_t n = g_->vertex_count();
  topo_.clear();
  std::vector<std::uint32_t> pending(n, 0);
  for (EdgeId e = 0; e < g_->edge_count(); ++e)
    if (g_->wr(e, r) == 0) ++pending[g_->edge(e).to];
  std::vector<VertexId> ready;
  for (VertexId v = 0; v < n; ++v)
    if (pending[v] == 0) ready.push_back(v);
  while (!ready.empty()) {
    const VertexId v = ready.back();
    ready.pop_back();
    topo_.push_back(v);
    for (EdgeId eid : g_->out_edges(v)) {
      const REdge& e = g_->edge(eid);
      if (g_->wr(eid, r) == 0 && --pending[e.to] == 0) ready.push_back(e.to);
    }
  }
  SERELIN_ASSERT(topo_.size() == n,
                 "w_r = 0 subgraph has a cycle: retiming is invalid");
}

void GraphTiming::compute(const Retiming& r) {
  SERELIN_SPAN("timing/pass");
  SERELIN_COUNT(kTimingPasses, 1);
  topo_sort(r);

  // Forward pass: FEAS arrival times. A vertex's arrival is measured at its
  // output; register outputs / primary inputs contribute time zero.
  for (VertexId v : topo_) {
    double in_arrival = 0.0;
    for (EdgeId eid : g_->in_edges(v)) {
      if (g_->wr(eid, r) != 0) continue;
      in_arrival = std::max(in_arrival, arrival_[g_->edge(eid).from]);
    }
    arrival_[v] = g_->vertex(v).delay + in_arrival;
  }

  // Backward pass: longest/shortest delay from each vertex's output to the
  // nearest downstream boundary (a registered out-edge or a PO sink), plus
  // the critical-path witnesses lt/rt.
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const VertexId v = *it;
    double maxa = 0.0;
    double mina = 0.0;
    VertexId max_end = v;
    VertexId min_end = v;
    EdgeId min_edge = kNullEdge;
    bool first = true;
    for (EdgeId eid : g_->out_edges(v)) {
      const REdge& e = g_->edge(eid);
      const bool boundary =
          g_->wr(eid, r) > 0 || g_->vertex(e.to).kind == VertexKind::kSink;
      double cand;
      VertexId cand_max_end, cand_min_end;
      EdgeId cand_min_edge;
      if (boundary) {
        cand = 0.0;
        cand_max_end = cand_min_end = v;
        cand_min_edge = eid;
      } else {
        cand = g_->vertex(e.to).delay;  // 0-weight edge into a gate
        cand_max_end = crit_max_end_[e.to];
        cand_min_end = crit_min_end_[e.to];
        cand_min_edge = crit_min_edge_[e.to];
      }
      const double cand_max = boundary ? 0.0 : cand + max_after_[e.to];
      const double cand_min = boundary ? 0.0 : cand + min_after_[e.to];
      if (first || cand_max > maxa) {
        maxa = cand_max;
        max_end = cand_max_end;
      }
      if (first || cand_min < mina) {
        mina = cand_min;
        min_end = cand_min_end;
        min_edge = cand_min_edge;
      }
      first = false;
    }
    max_after_[v] = maxa;
    min_after_[v] = mina;
    crit_max_end_[v] = max_end;
    crit_min_end_[v] = min_end;
    crit_min_edge_[v] = min_edge;
  }
}

}  // namespace serelin
