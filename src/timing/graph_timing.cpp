#include "timing/graph_timing.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace serelin {

GraphTiming::GraphTiming(const RetimingGraph& g, TimingParams params)
    : g_(&g), params_(params) {
  const std::size_t n = g.vertex_count();
  arrival_.assign(n, 0.0);
  max_after_.assign(n, 0.0);
  min_after_.assign(n, 0.0);
  crit_max_end_.assign(n, kNullVertex);
  crit_min_end_.assign(n, kNullVertex);
  crit_min_edge_.assign(n, kNullEdge);
  topo_.reserve(n);
}

void GraphTiming::topo_sort(const Retiming& r) {
  const std::size_t n = g_->vertex_count();
  topo_.clear();
  std::vector<std::uint32_t> pending(n, 0);
  for (EdgeId e = 0; e < g_->edge_count(); ++e)
    if (g_->wr(e, r) == 0) ++pending[g_->edge(e).to];
  std::vector<VertexId> ready;
  for (VertexId v = 0; v < n; ++v)
    if (pending[v] == 0) ready.push_back(v);
  while (!ready.empty()) {
    const VertexId v = ready.back();
    ready.pop_back();
    topo_.push_back(v);
    for (EdgeId eid : g_->out_edges(v)) {
      const REdge& e = g_->edge(eid);
      if (g_->wr(eid, r) == 0 && --pending[e.to] == 0) ready.push_back(e.to);
    }
  }
  SERELIN_ASSERT(topo_.size() == n,
                 "w_r = 0 subgraph has a cycle: retiming is invalid");
}

void GraphTiming::relabel_forward(const Retiming& r, VertexId v) {
  // FEAS arrival time: measured at v's output; register outputs / primary
  // inputs contribute time zero.
  double in_arrival = 0.0;
  for (EdgeId eid : g_->in_edges(v)) {
    if (g_->wr(eid, r) != 0) continue;
    in_arrival = std::max(in_arrival, arrival_[g_->edge(eid).from]);
  }
  arrival_[v] = g_->vertex(v).delay + in_arrival;
}

bool GraphTiming::relabel_backward(const Retiming& r, VertexId v) {
  // Longest/shortest delay from v's output to the nearest downstream
  // boundary (a registered out-edge or a PO sink), plus the critical-path
  // witnesses lt/rt.
  double maxa = 0.0;
  double mina = 0.0;
  VertexId max_end = v;
  VertexId min_end = v;
  EdgeId min_edge = kNullEdge;
  bool first = true;
  for (EdgeId eid : g_->out_edges(v)) {
    const REdge& e = g_->edge(eid);
    const bool boundary =
        g_->wr(eid, r) > 0 || g_->vertex(e.to).kind == VertexKind::kSink;
    double cand;
    VertexId cand_max_end, cand_min_end;
    EdgeId cand_min_edge;
    if (boundary) {
      cand = 0.0;
      cand_max_end = cand_min_end = v;
      cand_min_edge = eid;
    } else {
      cand = g_->vertex(e.to).delay;  // 0-weight edge into a gate
      cand_max_end = crit_max_end_[e.to];
      cand_min_end = crit_min_end_[e.to];
      cand_min_edge = crit_min_edge_[e.to];
    }
    const double cand_max = boundary ? 0.0 : cand + max_after_[e.to];
    const double cand_min = boundary ? 0.0 : cand + min_after_[e.to];
    if (first || cand_max > maxa) {
      maxa = cand_max;
      max_end = cand_max_end;
    }
    if (first || cand_min < mina) {
      mina = cand_min;
      min_end = cand_min_end;
      min_edge = cand_min_edge;
    }
    first = false;
  }
  const bool changed =
      maxa != max_after_[v] || mina != min_after_[v] ||
      max_end != crit_max_end_[v] || min_end != crit_min_end_[v] ||
      min_edge != crit_min_edge_[v];
  max_after_[v] = maxa;
  min_after_[v] = mina;
  crit_max_end_[v] = max_end;
  crit_min_end_[v] = min_end;
  crit_min_edge_[v] = min_edge;
  return changed;
}

void GraphTiming::compute(const Retiming& r) {
  SERELIN_SPAN("timing/pass");
  SERELIN_COUNT(kTimingPasses, 1);
  topo_sort(r);

  for (VertexId v : topo_) relabel_forward(r, v);
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it)
    relabel_backward(r, *it);

  label_r_ = r;
  labels_exact_ = true;
}

const TimingDelta& GraphTiming::update(const Retiming& r,
                                       std::span<const VertexId> moved_hint) {
  delta_.full = false;
  delta_.p0_dirty = false;
  delta_.wr_changed.clear();
  delta_.relabeled.clear();
  if (!labels_exact_) {
    compute(r);
    delta_.full = true;
    return delta_;
  }

  const std::size_t n = g_->vertex_count();
  if (vmark_.size() != n) {
    vmark_.assign(n, 0);
    pending_.assign(n, 0);
    emark_.assign(g_->edge_count(), 0);
    epoch_ = 0;
  }

  // 1. Vertices whose retiming label differs from the labeled state.
  ++epoch_;
  changed_.clear();
  auto note_changed = [&](VertexId v) {
    if (vmark_[v] == epoch_ || r[v] == label_r_[v]) return;
    vmark_[v] = epoch_;
    changed_.push_back(v);
  };
  if (moved_hint.empty()) {
    for (VertexId v = 0; v < n; ++v) note_changed(v);
  } else {
    for (VertexId v : moved_hint) note_changed(v);
  }

  // 2. Edges whose w_r changed. The labeled state is valid (w_r >= 0
  // everywhere), so any negative edge of `r` is necessarily in this set —
  // the P0 probe rides along for free.
  bool negative = false;
  ++epoch_;
  for (VertexId v : changed_) {
    auto scan = [&](EdgeId eid) {
      if (emark_[eid] == epoch_) return;
      emark_[eid] = epoch_;
      const std::int32_t wr_new = g_->wr(eid, r);
      if (wr_new == g_->wr(eid, label_r_)) return;
      delta_.wr_changed.push_back(eid);
      if (wr_new < 0) negative = true;
    };
    for (EdgeId eid : g_->in_edges(v)) scan(eid);
    for (EdgeId eid : g_->out_edges(v)) scan(eid);
  }
  std::sort(delta_.wr_changed.begin(), delta_.wr_changed.end());

  if (negative) {
    // Invalid retiming: its w_r = 0 subgraph is not a meaningful DAG, so
    // the labels stay at label_r_ (still exact for that state). A later
    // update with a valid retiming rolls everything forward from here.
    delta_.p0_dirty = true;
    return delta_;
  }
  if (delta_.wr_changed.empty()) {
    // Identical w_r everywhere means identical labels (they depend on r
    // only through w_r); just adopt the new representative.
    for (VertexId v : changed_) label_r_[v] = r[v];
    return delta_;
  }

  // 3. Forward cone: arrival changes start at the heads of w_r-changed
  // edges and propagate through w_r = 0 out-edges. The cone is relabeled
  // in a local topological order (Kahn over cone-internal w_r = 0 edges);
  // fanins outside the cone hold their final values by construction.
  ++epoch_;
  cone_.clear();
  auto add_cone = [&](VertexId v) {
    if (vmark_[v] == epoch_) return;
    vmark_[v] = epoch_;
    cone_.push_back(v);
  };
  for (EdgeId eid : delta_.wr_changed) add_cone(g_->edge(eid).to);
  for (std::size_t i = 0; i < cone_.size(); ++i) {
    for (EdgeId eid : g_->out_edges(cone_[i]))
      if (g_->wr(eid, r) == 0) add_cone(g_->edge(eid).to);
  }
  for (VertexId v : cone_) {
    std::uint32_t cnt = 0;
    for (EdgeId eid : g_->in_edges(v))
      if (g_->wr(eid, r) == 0 && vmark_[g_->edge(eid).from] == epoch_) ++cnt;
    pending_[v] = cnt;
  }
  queue_.clear();
  for (VertexId v : cone_)
    if (pending_[v] == 0) queue_.push_back(v);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const VertexId v = queue_[i];
    relabel_forward(r, v);
    for (EdgeId eid : g_->out_edges(v)) {
      if (g_->wr(eid, r) != 0) continue;
      const VertexId h = g_->edge(eid).to;
      if (vmark_[h] == epoch_ && --pending_[h] == 0) queue_.push_back(h);
    }
  }
  SERELIN_ASSERT(queue_.size() == cone_.size(),
                 "w_r = 0 subgraph has a cycle: retiming is invalid");
  std::int64_t touched = static_cast<std::int64_t>(cone_.size());

  // 4. Backward cone: label changes start at the tails of w_r-changed
  // edges (their boundary status flipped) and propagate through w_r = 0
  // in-edges, relabeled in reverse topological order.
  ++epoch_;
  cone_.clear();
  for (EdgeId eid : delta_.wr_changed) add_cone(g_->edge(eid).from);
  for (std::size_t i = 0; i < cone_.size(); ++i) {
    for (EdgeId eid : g_->in_edges(cone_[i]))
      if (g_->wr(eid, r) == 0) add_cone(g_->edge(eid).from);
  }
  for (VertexId v : cone_) {
    std::uint32_t cnt = 0;
    for (EdgeId eid : g_->out_edges(v))
      if (g_->wr(eid, r) == 0 && vmark_[g_->edge(eid).to] == epoch_) ++cnt;
    pending_[v] = cnt;
  }
  queue_.clear();
  for (VertexId v : cone_)
    if (pending_[v] == 0) queue_.push_back(v);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const VertexId v = queue_[i];
    if (relabel_backward(r, v)) delta_.relabeled.push_back(v);
    for (EdgeId eid : g_->in_edges(v)) {
      if (g_->wr(eid, r) != 0) continue;
      const VertexId t = g_->edge(eid).from;
      if (vmark_[t] == epoch_ && --pending_[t] == 0) queue_.push_back(t);
    }
  }
  SERELIN_ASSERT(queue_.size() == cone_.size(),
                 "w_r = 0 subgraph has a cycle: retiming is invalid");
  touched += static_cast<std::int64_t>(cone_.size());
  SERELIN_COUNT(kIncrNodesTouched, touched);

  std::sort(delta_.relabeled.begin(), delta_.relabeled.end());
  for (VertexId v : changed_) label_r_[v] = r[v];
  return delta_;
}

}  // namespace serelin
