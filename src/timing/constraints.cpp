#include "timing/constraints.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace serelin {

namespace {
inline bool allowed(std::span<const char> movers, VertexId p) {
  return movers.empty() || movers[p];
}

// Records the drain-side resolution of a P2' violation on registered edge
// `launch` = (u, h): decreasing h by wr(launch) carries the launching
// register forward through h instead of pushing the boundary register.
inline void attach_drain_alt(const RetimingGraph& g, const Retiming& r,
                             EdgeId launch, Violation& v) {
  const VertexId h = g.edge(launch).to;
  if (h == v.q || !g.movable(h)) return;
  v.alt_q = h;
  v.alt_w = std::max(g.wr(launch, r), 1);
}
}  // namespace

ConstraintChecker::ConstraintChecker(const RetimingGraph& g,
                                     TimingParams params, double rmin)
    : g_(&g), params_(params), rmin_(rmin) {}

std::optional<Violation> ConstraintChecker::find_violation(
    const Retiming& r, const GraphTiming& t,
    std::span<const char> movers) const {
  // P0 first: with a negative edge weight the timing labels are
  // meaningless (the paper's order P2/P0/P1 presumes P0 holds during the
  // timing query).
  if (auto v = find_p0(r)) return v;
  if (auto v = find_p2(r, t, movers)) return v;
  if (auto v = find_p1(t, movers)) return v;
  return std::nullopt;
}

std::optional<Violation> ConstraintChecker::find_p2(
    const Retiming& r, const GraphTiming& t,
    std::span<const char> movers) const {
  if (rmin_ <= 0.0) return std::nullopt;
  std::optional<Violation> fallback;
  for (EdgeId eid = 0; eid < g_->edge_count(); ++eid) {
    if (g_->wr(eid, r) <= 0) continue;
    const REdge& e = g_->edge(eid);
    const RVertex& head = g_->vertex(e.to);
    if (head.kind == VertexKind::kSink) {
      // A register delivered directly to a primary output: the short path
      // is empty and nothing downstream can absorb it. Unfixable — the
      // driver's tree must be blocked (the paper's host early exit).
      if (rmin_ > kEps) {
        Violation v{ConstraintKind::kP2, e.from, e.to, 1};
        if (allowed(movers, v.p)) return v;
        if (!fallback) fallback = v;
      }
      continue;
    }
    const double short_path = head.delay + t.min_after(e.to);
    if (short_path + kEps >= rmin_) continue;
    // Critical short path e.to ~> z with boundary edge (z, y): move the
    // registers on (z, y) forward past y (paper Fig. 2(c)). The dependency
    // source is the tail whose move delivered this register edge, or the
    // rt() witness whose move planted the closer boundary.
    const EdgeId boundary = t.crit_min_edge(e.to);
    if (boundary == kNullEdge) continue;  // dangling cone: nothing latches
    const REdge& be = g_->edge(boundary);
    const std::int32_t need = std::max(g_->wr(boundary, r), 1);
    VertexId p = e.from;
    if (!allowed(movers, p) && allowed(movers, t.rt(e.to))) p = t.rt(e.to);
    Violation v{ConstraintKind::kP2, p, be.to, need};
    attach_drain_alt(*g_, r, eid, v);
    if (allowed(movers, v.p)) return v;
    if (!fallback) fallback = v;
  }
  return fallback;
}

std::optional<Violation> ConstraintChecker::find_p0(const Retiming& r) const {
  for (EdgeId eid = 0; eid < g_->edge_count(); ++eid) {
    const std::int32_t w = g_->wr(eid, r);
    if (w >= 0) continue;
    const REdge& e = g_->edge(eid);
    // Only the head's decrease can drain an edge, so e.to is the mover.
    return Violation{ConstraintKind::kP0, e.to, e.from, -w};
  }
  return std::nullopt;
}

std::optional<Violation> ConstraintChecker::find_p1(
    const GraphTiming& t, std::span<const char> movers) const {
  const double budget = params_.window_lo();
  std::optional<Violation> fallback;
  for (VertexId v = 0; v < g_->vertex_count(); ++v) {
    if (g_->vertex(v).kind == VertexKind::kSink) continue;
    const double longest = g_->vertex(v).delay + t.max_after(v);
    if (longest <= budget + kEps) continue;
    // A too-long path ends at lt(v), whose out-edge holds the register
    // that must be pulled back in front of v (paper Fig. 2(b)).
    Violation viol{ConstraintKind::kP1, t.lt(v), v, 1};
    if (allowed(movers, viol.p)) return viol;
    if (!fallback) fallback = viol;
  }
  return fallback;
}

std::vector<Violation> ConstraintChecker::find_violations(
    const Retiming& r, const GraphTiming& t, std::span<const char> movers,
    std::size_t max_count) const {
  std::vector<Violation> out;
  std::vector<char> taken(g_->vertex_count(), 0);
  auto push = [&](const Violation& v) {
    if (taken[v.q]) return;
    taken[v.q] = 1;
    out.push_back(v);
  };

  // P0 first; with negative edge weights the timing labels are junk.
  for (EdgeId eid = 0; eid < g_->edge_count() && out.size() < max_count;
       ++eid) {
    const std::int32_t w = g_->wr(eid, r);
    if (w >= 0) continue;
    const REdge& e = g_->edge(eid);
    push(Violation{ConstraintKind::kP0, e.to, e.from, -w});
  }
  if (!out.empty()) return out;

  std::optional<Violation> fallback;

  // P2'.
  if (rmin_ > 0.0) {
    for (EdgeId eid = 0; eid < g_->edge_count() && out.size() < max_count;
         ++eid) {
      if (g_->wr(eid, r) <= 0) continue;
      const REdge& e = g_->edge(eid);
      const RVertex& head = g_->vertex(e.to);
      if (head.kind == VertexKind::kSink) {
        if (rmin_ > kEps) {
          Violation v{ConstraintKind::kP2, e.from, e.to, 1};
          if (allowed(movers, v.p)) push(v);
          else if (!fallback) fallback = v;
        }
        continue;
      }
      const double short_path = head.delay + t.min_after(e.to);
      if (short_path + kEps >= rmin_) continue;
      const EdgeId boundary = t.crit_min_edge(e.to);
      if (boundary == kNullEdge) continue;
      const REdge& be = g_->edge(boundary);
      const std::int32_t need = std::max(g_->wr(boundary, r), 1);
      VertexId p = e.from;
      if (!allowed(movers, p) && allowed(movers, t.rt(e.to))) p = t.rt(e.to);
      Violation v{ConstraintKind::kP2, p, be.to, need};
      attach_drain_alt(*g_, r, eid, v);
      if (allowed(movers, v.p)) push(v);
      else if (!fallback) fallback = v;
    }
  }

  // P1'.
  const double budget = params_.window_lo();
  for (VertexId v = 0; v < g_->vertex_count() && out.size() < max_count;
       ++v) {
    if (g_->vertex(v).kind == VertexKind::kSink) continue;
    const double longest = g_->vertex(v).delay + t.max_after(v);
    if (longest <= budget + kEps) continue;
    Violation viol{ConstraintKind::kP1, t.lt(v), v, 1};
    if (allowed(movers, viol.p)) push(viol);
    else if (!fallback) fallback = viol;
  }

  if (out.empty() && fallback) out.push_back(*fallback);
  return out;
}

std::vector<Violation> ConstraintChecker::find_violations(
    const Retiming& r, const GraphTiming& t, const TimingDelta& delta,
    std::span<const char> movers, std::size_t max_count) const {
  if (delta.full) return find_violations(r, t, movers, max_count);

  std::vector<Violation> out;
  std::vector<char> taken(g_->vertex_count(), 0);
  auto push = [&](const Violation& v) {
    if (taken[v.q]) return;
    taken[v.q] = 1;
    out.push_back(v);
  };

  if (delta.p0_dirty) {
    // Timing labels were not updated (and are not read here). The labeled
    // state is valid, so every negative edge is in wr_changed; scanning it
    // ascending reproduces the full P0 scan exactly.
    for (EdgeId eid : delta.wr_changed) {
      if (out.size() >= max_count) break;
      const std::int32_t w = g_->wr(eid, r);
      if (w >= 0) continue;
      const REdge& e = g_->edge(eid);
      push(Violation{ConstraintKind::kP0, e.to, e.from, -w});
    }
    return out;
  }

  std::optional<Violation> fallback;

  // P2' candidates: a fresh violation needs a changed register count or a
  // changed head label (min_after / crit_min_edge / rt of e.to), so the
  // union of wr_changed and the in-edges of relabeled vertices covers
  // every violating edge. Sorted ascending to mirror the full scan.
  if (rmin_ > 0.0) {
    std::vector<EdgeId> edges = delta.wr_changed;
    for (VertexId v : delta.relabeled)
      edges.insert(edges.end(), g_->in_edges(v).begin(),
                   g_->in_edges(v).end());
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    for (EdgeId eid : edges) {
      if (out.size() >= max_count) break;
      if (g_->wr(eid, r) <= 0) continue;
      const REdge& e = g_->edge(eid);
      const RVertex& head = g_->vertex(e.to);
      if (head.kind == VertexKind::kSink) {
        if (rmin_ > kEps) {
          Violation v{ConstraintKind::kP2, e.from, e.to, 1};
          if (allowed(movers, v.p)) push(v);
          else if (!fallback) fallback = v;
        }
        continue;
      }
      const double short_path = head.delay + t.min_after(e.to);
      if (short_path + kEps >= rmin_) continue;
      const EdgeId boundary = t.crit_min_edge(e.to);
      if (boundary == kNullEdge) continue;
      const REdge& be = g_->edge(boundary);
      const std::int32_t need = std::max(g_->wr(boundary, r), 1);
      VertexId p = e.from;
      if (!allowed(movers, p) && allowed(movers, t.rt(e.to))) p = t.rt(e.to);
      Violation v{ConstraintKind::kP2, p, be.to, need};
      attach_drain_alt(*g_, r, eid, v);
      if (allowed(movers, v.p)) push(v);
      else if (!fallback) fallback = v;
    }
  }

  // P1' candidates: a fresh violation needs a changed max_after, so the
  // relabeled set (already ascending) covers every violating vertex.
  const double budget = params_.window_lo();
  for (VertexId v : delta.relabeled) {
    if (out.size() >= max_count) break;
    if (g_->vertex(v).kind == VertexKind::kSink) continue;
    const double longest = g_->vertex(v).delay + t.max_after(v);
    if (longest <= budget + kEps) continue;
    Violation viol{ConstraintKind::kP1, t.lt(v), v, 1};
    if (allowed(movers, viol.p)) push(viol);
    else if (!fallback) fallback = viol;
  }

  if (out.empty() && fallback) out.push_back(*fallback);
  return out;
}

bool ConstraintChecker::p0_holds(const Retiming& r) const {
  return !find_p0(r).has_value();
}

bool ConstraintChecker::p1_holds(const GraphTiming& t) const {
  return !find_p1(t, {}).has_value();
}

bool ConstraintChecker::p2_holds(const Retiming& r,
                                 const GraphTiming& t) const {
  return !find_p2(r, t, {}).has_value();
}

bool ConstraintChecker::feasible(const Retiming& r, GraphTiming& t) const {
  if (!g_->valid(r)) return false;  // includes P0 and pinned boundary labels
  t.compute(r);
  return !find_violation(r, t).has_value();
}

}  // namespace serelin
