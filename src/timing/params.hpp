// Clocking parameters shared by all timing computations.
//
// An edge-triggered D register latches data inside [Φ−Ts, Φ+Th] (paper
// §II-C). The paper's experiments use Ts = 0 and Th = 2 "as suggested by
// [23]"; those are the defaults here.
#pragma once

namespace serelin {

struct TimingParams {
  double period = 0.0;  ///< clock period Φ
  double setup = 0.0;   ///< register setup time Ts
  double hold = 2.0;    ///< register hold time Th

  /// Left edge Φ−Ts of the latching window.
  double window_lo() const { return period - setup; }
  /// Right edge Φ+Th of the latching window.
  double window_hi() const { return period + hold; }
};

}  // namespace serelin
