#include "gen/paper_examples.hpp"

#include "netlist/builder.hpp"
#include "support/check.hpp"

namespace serelin {

Netlist fig1_circuit(int ladder) {
  SERELIN_REQUIRE(ladder >= 1, "the ladder needs at least one rung");
  NetlistBuilder nb("fig1");
  nb.input("x");
  nb.input("m_j");
  nb.input("m_j2");
  std::string prev = "x";
  for (int i = 1; i <= ladder; ++i) {
    const std::string a = "a" + std::to_string(i);
    const std::string s = "s" + std::to_string(i);
    const std::string t = "t" + std::to_string(i);
    nb.gate(a, CellType::kBuf, {prev});
    nb.dff(s, a);                          // direct latch: short-path anchor
    nb.gate(t, CellType::kXor, {s, "x"});  // XOR tap keeps obs(s_i) = 1 and
    nb.output(t);                          // the rung short path at d(XOR)
    prev = a;
  }
  nb.gate("F", CellType::kBuf, {prev});
  nb.gate("H", CellType::kBuf, {"F"});  // fully observable side path
  nb.output("H");
  nb.dff("fd", "F");    // the register of interest, on edge (F, G)
  nb.dff("dm", "m_j");  // mask register, also consumed by G
  nb.gate("G", CellType::kAnd, {"fd", "dm"});
  nb.gate("J", CellType::kAnd, {"G", "m_j2"});
  nb.output("J");
  return nb.build();
}

}  // namespace serelin
