#include "gen/fault_inject.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "gen/random_circuit.hpp"

namespace serelin {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string random_garbage(Rng& rng) {
  static constexpr char kChars[] =
      "abcdefghijklmnopqrstuvwxyz0123456789()=,. \t_";
  const std::size_t len = rng.below(40) + 1;
  std::string s(len, ' ');
  for (char& c : s) c = kChars[rng.below(sizeof(kChars) - 1)];
  return s;
}

}  // namespace

std::string mutate_text(std::string text, Rng& rng,
                        const MutateOptions& opt) {
  const int rounds =
      1 + static_cast<int>(rng.below(
              static_cast<std::uint64_t>(std::max(1, opt.max_mutations))));
  for (int round = 0; round < rounds; ++round) {
    switch (rng.below(9)) {
      case 0: {  // flip one byte
        if (text.empty()) break;
        const std::size_t pos = rng.below(text.size());
        text[pos] = static_cast<char>(
            static_cast<unsigned char>(text[pos]) ^
            static_cast<unsigned char>(1 + rng.below(255)));
        break;
      }
      case 1: {  // truncate mid-stream
        if (text.empty()) break;
        text.resize(rng.below(text.size()));
        break;
      }
      case 2: {  // delete a line
        auto lines = split_lines(text);
        if (lines.empty()) break;
        lines.erase(lines.begin() +
                    static_cast<std::ptrdiff_t>(rng.below(lines.size())));
        text = join_lines(lines);
        break;
      }
      case 3: {  // duplicate a line (multiply-driven signals)
        auto lines = split_lines(text);
        if (lines.empty()) break;
        const std::size_t i = rng.below(lines.size());
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i),
                     lines[i]);
        text = join_lines(lines);
        break;
      }
      case 4: {  // swap two lines (definition-order damage)
        auto lines = split_lines(text);
        if (lines.size() < 2) break;
        const std::size_t i = rng.below(lines.size());
        const std::size_t j = rng.below(lines.size());
        std::swap(lines[i], lines[j]);
        text = join_lines(lines);
        break;
      }
      case 5: {  // insert a garbage line
        auto lines = split_lines(text);
        lines.insert(
            lines.begin() +
                static_cast<std::ptrdiff_t>(rng.below(lines.size() + 1)),
            random_garbage(rng));
        text = join_lines(lines);
        break;
      }
      case 6: {  // splice raw non-ASCII / control bytes
        std::string junk(1 + rng.below(8), '\0');
        for (char& c : junk)
          c = static_cast<char>(rng.chance(0.5) ? 0x80 + rng.below(0x80)
                                                : rng.below(0x20));
        text.insert(rng.below(text.size() + 1), junk);
        break;
      }
      case 7: {  // structural-character typo
        if (text.empty()) break;
        static constexpr char kStructural[] = "()=,.";
        text[rng.below(text.size())] =
            kStructural[rng.below(sizeof(kStructural) - 1)];
        break;
      }
      case 8: {  // rename one identifier occurrence (undefined references)
        if (text.empty()) break;
        const std::size_t pos = rng.below(text.size());
        const char c = text[pos];
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9'))
          text[pos] = static_cast<char>('a' + rng.below(26));
        break;
      }
    }
  }
  return text;
}

Netlist random_victim(Rng& rng) {
  RandomCircuitSpec spec;
  spec.name = "victim";
  spec.gates = 10 + static_cast<int>(rng.below(60));
  spec.dffs = 2 + static_cast<int>(rng.below(12));
  spec.inputs = 2 + static_cast<int>(rng.below(6));
  spec.outputs = 2 + static_cast<int>(rng.below(6));
  spec.mean_fanin = 1.5 + rng.uniform();
  spec.seed = rng.next();
  return generate_random_circuit(spec);
}

}  // namespace serelin
