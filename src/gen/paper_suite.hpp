// The 21-circuit benchmark suite of the paper's Table I.
//
// The paper evaluates on ISCAS89 and ITC99 netlists "obtained from the
// authors of [20]" (including their `_opt` preprocessed variants), which
// are not redistributable here. Each suite entry records the paper's
// published statistics — retiming-graph |V|, |E|, flip-flop count #FF, the
// clock constraint Φ, the original-circuit SER, and the SER improvements of
// both algorithms — and generate_suite_circuit() synthesizes a random
// circuit matching |V|, |E| and #FF (the only inputs the algorithms see,
// besides the logic functions used for simulation). The Table-I harness
// prints our measured columns next to these published ones.
#pragma once

#include <string>
#include <vector>

#include "gen/random_circuit.hpp"
#include "netlist/netlist.hpp"

namespace serelin {

struct SuiteCircuit {
  std::string name;
  int vertices = 0;  ///< paper's |V| (combinational gates)
  int edges = 0;     ///< paper's |E|
  int dffs = 0;      ///< paper's #FF
  // Published results, for side-by-side comparison in the harness output:
  double paper_phi = 0.0;       ///< Φ column
  double paper_ser = 0.0;       ///< original-circuit SER column
  double paper_dser_ref = 0.0;  ///< ΔSER of Efficient MinObs (fraction)
  double paper_dser_new = 0.0;  ///< ΔSER of MinObsWin (fraction)
};

/// All 21 rows of Table I, in the paper's order.
const std::vector<SuiteCircuit>& paper_suite();

/// Looks up a row by name; throws PreconditionError if absent.
const SuiteCircuit& suite_circuit(const std::string& name);

/// Synthesizes the stand-in netlist for a suite row. The generator spec is
/// derived from the row statistics; `seed` defaults to a name hash so each
/// circuit is distinct but reproducible.
Netlist generate_suite_circuit(const SuiteCircuit& row, std::uint64_t seed = 0);

}  // namespace serelin
