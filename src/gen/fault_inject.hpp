// Deterministic input-corruption engine for robustness testing.
//
// mutate_text() applies seeded random damage of the kinds real inputs
// arrive with — truncated downloads, binary garbage, encoding damage,
// editor accidents (duplicated/deleted/swapped lines), and plain typos —
// to a serialized netlist. The fault harness (tools/fault_harness.cpp) and
// the robustness tests feed the damaged text through parse → lint →
// retime and assert the taxonomy: every outcome is a clean diagnostic, a
// typed exception, or a Partial result; never a crash, hang, or silent
// wrong answer.
//
// All randomness flows through the caller's Rng, so a (seed, iteration)
// pair fully reproduces any failure.
#pragma once

#include <string>

#include "netlist/netlist.hpp"
#include "support/rng.hpp"

namespace serelin {

struct MutateOptions {
  /// Number of independent corruptions applied per call is drawn
  /// uniformly from [1, max_mutations].
  int max_mutations = 4;
};

/// Returns `text` with seeded random corruption applied: byte flips,
/// truncation, line deletion/duplication/swaps, garbage and non-ASCII
/// insertion, and structural-character typos ('(', ')', '=', ',').
std::string mutate_text(std::string text, Rng& rng,
                        const MutateOptions& opt = {});

/// Generates a small random victim circuit (bounded size, valid by
/// construction) whose serialization the harness corrupts. Deterministic
/// in the rng state.
Netlist random_victim(Rng& rng);

}  // namespace serelin
