// Seeded random sequential-circuit generation.
//
// The generator produces structurally legal netlists (every combinational
// cycle crosses a flip-flop, every flip-flop is driven and consumed, no
// dangling gates) with controllable size statistics: gate count, flip-flop
// count, mean gate fanin (which controls the retiming-graph edge count),
// and a locality bias that controls combinational depth. It substitutes
// for the ISCAS89/ITC99 netlists of the paper's Table I, whose |V|, |E|
// and #FF statistics the paper-suite specs in paper_suite.hpp match.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace serelin {

struct RandomCircuitSpec {
  std::string name = "rand";
  int gates = 100;    ///< combinational gate count (retiming-graph |V|)
  int dffs = 20;      ///< flip-flop count (#FF)
  int inputs = 8;
  int outputs = 8;
  /// Mean gate fanin; 1.0..3.0. Together with `gates` this sets the
  /// retiming-graph edge count |E| ≈ mean_fanin · gates.
  double mean_fanin = 2.0;
  /// Probability that a fanin is drawn from the most recent `window`
  /// gates instead of uniformly — higher values give deeper logic.
  double locality = 0.7;
  int window = 48;
  /// Probability that a flip-flop's D input is a lower-indexed flip-flop
  /// (builds shift-register chains; never creates register-only cycles).
  double dff_chain_prob = 0.1;
  /// Share of XOR/XNOR among multi-input gates. Parity gates never mask a
  /// flip, so this knob controls how fast observability attenuates with
  /// logic depth (real netlists keep most signals observable through
  /// reconvergence; a pure AND/OR mix would not).
  double xor_share = 0.25;
  /// Probability that a local (chain) fanin is taken through a pipeline
  /// flip-flop inserted inline (consuming one of the budgeted `dffs`).
  /// This is what keeps long logic chains register-crossed, like real
  /// pipelined datapaths — without it the minimum clock period degenerates
  /// to the full chain depth, since registers can never cut a path they
  /// do not lie on.
  double pipeline_prob = 0.35;
  std::uint64_t seed = 1;
};

/// Generates a finalized netlist satisfying the spec. Deterministic in the
/// spec (including the seed).
Netlist generate_random_circuit(const RandomCircuitSpec& spec);

}  // namespace serelin
