// Seeded random sequential-circuit generation.
//
// The generator produces structurally legal netlists (every combinational
// cycle crosses a flip-flop, every flip-flop is driven and consumed, no
// dangling gates) with controllable size statistics: gate count, flip-flop
// count, mean gate fanin (which controls the retiming-graph edge count),
// and a locality bias that controls combinational depth. It substitutes
// for the ISCAS89/ITC99 netlists of the paper's Table I, whose |V|, |E|
// and #FF statistics the paper-suite specs in paper_suite.hpp match.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "netlist/netlist.hpp"
#include "support/rng.hpp"

namespace serelin {

struct RandomCircuitSpec {
  std::string name = "rand";
  int gates = 100;    ///< combinational gate count (retiming-graph |V|)
  int dffs = 20;      ///< flip-flop count (#FF)
  int inputs = 8;
  int outputs = 8;
  /// Mean gate fanin; 1.0..3.0. Together with `gates` this sets the
  /// retiming-graph edge count |E| ≈ mean_fanin · gates.
  double mean_fanin = 2.0;
  /// Probability that a fanin is drawn from the most recent `window`
  /// gates instead of uniformly — higher values give deeper logic.
  double locality = 0.7;
  int window = 48;
  /// Probability that a flip-flop's D input is a lower-indexed flip-flop
  /// (builds shift-register chains; never creates register-only cycles).
  double dff_chain_prob = 0.1;
  /// Share of XOR/XNOR among multi-input gates. Parity gates never mask a
  /// flip, so this knob controls how fast observability attenuates with
  /// logic depth (real netlists keep most signals observable through
  /// reconvergence; a pure AND/OR mix would not).
  double xor_share = 0.25;
  /// Probability that a local (chain) fanin is taken through a pipeline
  /// flip-flop inserted inline (consuming one of the budgeted `dffs`).
  /// This is what keeps long logic chains register-crossed, like real
  /// pipelined datapaths — without it the minimum clock period degenerates
  /// to the full chain depth, since registers can never cut a path they
  /// do not lie on.
  double pipeline_prob = 0.35;
  std::uint64_t seed = 1;
};

/// Generates a finalized netlist satisfying the spec. Deterministic in the
/// spec (including the seed).
Netlist generate_random_circuit(const RandomCircuitSpec& spec);

/// Constrained generator modes for adversarial (differential-fuzzing)
/// circuit populations. Each mode biases the spec toward a structural
/// regime that stresses a different part of the solver stack.
enum class GeneratorMode : std::uint8_t {
  kUniform,        ///< all knobs drawn uniformly from their sane ranges
  kSkewedFanin,    ///< fanin near the 3.0 cap, tiny locality window —
                   ///< dense retiming-graph edge sets, wide W/D rows
  kRegisterDense,  ///< #FF ≈ gate count, heavy pipelining — large movable
                   ///< register populations and busy ELW interval sets
  kNearCritical,   ///< long unpipelined chains — the initial period sits
                   ///< near the critical path, so P1'/P2' bind tightly
};

/// Number of generator modes (for round-robin sweeps).
inline constexpr int kNumGeneratorModes = 4;

/// Stable name: "uniform" / "skewed-fanin" / "register-dense" /
/// "near-critical" (used by CLI flags and journals).
const char* generator_mode_name(GeneratorMode mode);

/// Parses a mode name; nullopt on an unknown one.
std::optional<GeneratorMode> parse_generator_mode(std::string_view name);

/// Size bounds for random_spec(). Gate counts are drawn from
/// [min_gates, max_gates]; the other populations scale from the draw.
struct SpecRanges {
  int min_gates = 8;
  int max_gates = 40;
};

/// Draws a RandomCircuitSpec for `mode` from `rng` (deterministic in the
/// rng state). The spec's own seed is drawn too, so a single stream value
/// reproduces the circuit exactly.
RandomCircuitSpec random_spec(GeneratorMode mode, Rng& rng,
                              const SpecRanges& ranges = {});

}  // namespace serelin
