#include "gen/paper_suite.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace serelin {

const std::vector<SuiteCircuit>& paper_suite() {
  static const std::vector<SuiteCircuit> kSuite = {
      {"s13207", 7952, 10896, 1508, 117, 7.72e-3, -0.2314, -0.4702},
      {"s15850.1", 9773, 13566, 1567, 111, 9.77e-3, -0.3171, -0.3171},
      {"s35932", 16066, 28588, 5814, 145, 2.42e-2, -0.3545, -0.6675},
      {"s38417", 22180, 31127, 2806, 81, 1.59e-2, 0.0292, -0.0862},
      {"s38584.1", 19254, 33060, 7371, 262, 2.48e-2, -0.3323, -0.4196},
      {"b14_1_opt", 4049, 9036, 2382, 112, 9.15e-3, -0.1289, -0.3289},
      {"b14_opt", 5348, 11849, 2041, 135, 9.75e-3, -0.2671, -0.0667},
      {"b15_1_opt", 7421, 16946, 2798, 158, 1.25e-2, -0.2458, -0.3712},
      {"b15_opt", 7023, 15856, 2415, 195, 1.35e-2, -0.2697, -0.4574},
      {"b17_1_opt", 23026, 52376, 8791, 192, 3.92e-2, -0.1264, -0.3634},
      {"b17_opt", 22758, 51622, 7787, 266, 3.42e-2, -0.2813, -0.4594},
      {"b18_1_opt", 68282, 151746, 21027, 251, 9.42e-2, -0.2851, 0.0},
      {"b18_opt", 69914, 155355, 20907, 255, 9.56e-2, -0.3292, 0.0},
      {"b19_1", 212729, 410577, 59580, 317, 2.45e-1, -0.3040, -0.3040},
      {"b19", 224625, 433583, 60801, 317, 2.50e-1, -0.3072, -0.3072},
      {"b20_1_opt", 10166, 22456, 3462, 191, 1.63e-2, -0.3451, -0.3451},
      {"b20_opt", 11958, 26479, 4761, 182, 2.15e-2, -0.3148, -0.3141},
      {"b21_1_opt", 9663, 21246, 2451, 171, 1.22e-2, -0.2528, -0.4887},
      {"b21_opt", 12135, 26686, 4186, 215, 1.90e-2, -0.3335, -0.4082},
      {"b22_1_opt", 14957, 32663, 4398, 194, 2.19e-2, -0.3139, -0.3334},
      {"b22_opt", 17330, 37941, 5556, 178, 2.67e-2, -0.2956, -0.3588},
  };
  return kSuite;
}

const SuiteCircuit& suite_circuit(const std::string& name) {
  const auto& suite = paper_suite();
  const auto it =
      std::find_if(suite.begin(), suite.end(),
                   [&](const SuiteCircuit& c) { return c.name == name; });
  SERELIN_REQUIRE(it != suite.end(), "unknown suite circuit: " + name);
  return *it;
}

Netlist generate_suite_circuit(const SuiteCircuit& row, std::uint64_t seed) {
  if (seed == 0) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : row.name) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    seed = h;
  }
  RandomCircuitSpec spec;
  spec.name = row.name;
  spec.gates = row.vertices;
  spec.dffs = row.dffs;
  // Interface width follows ISCAS/ITC conventions (s13207: 152 POs for
  // ~8k gates): roughly one port per 50-60 gates. The PO count matters to
  // the algorithms — short paths that end at primary outputs are exactly
  // the unfixable P2' violations behind the paper's b18/b19 early exits
  // and the MinObs/MinObsWin contrast.
  spec.inputs = std::max(16, row.vertices / 60);
  spec.outputs = std::max(16, row.vertices / 50);
  // Mean fanin targets the published |E| after subtracting the PO sink
  // edges (the generator's repair pass is pin-neutral).
  spec.mean_fanin = std::clamp(
      static_cast<double>(row.edges - spec.outputs) / row.vertices, 1.05,
      2.95);
  // No inline pipelining for the suite stand-ins: inserted pipeline
  // registers multiply the movable-register structure and blow the solver
  // cost up ~3x on the 220k-gate rows without materially changing the
  // percolation-dominated clock period (see DESIGN.md). Feedback-style
  // state registers match the original FEAS-initialized behaviour.
  spec.pipeline_prob = 0.0;
  spec.seed = seed;
  return generate_random_circuit(spec);
}

}  // namespace serelin
