// Hand-built circuits reproducing the paper's worked examples (Figs. 1-3),
// shared by the test suite and the figure benches.
#pragma once

#include "netlist/netlist.hpp"

namespace serelin {

/// The Fig. 1 structure, scaled so the effect is unambiguous: a branching
/// ladder a1..aN — each rung latched directly (s_i) and tapped through an
/// XOR (t_i) so the rungs stay fully observable — feeds F; F branches to
/// an observable path H and into register fd on edge (F, G); G also
/// consumes the registered mask dm, and G's output is masked by J before
/// the PO. Moving the registers forward across G lowers register
/// observability (obs(G) < obs(F) + obs(m_j)) yet enlarges every ladder
/// ELW — the paper's "lower observability, worse SER" example.
///
/// Key signals: "F", "G", "J", "H", rungs "a<i>"/"s<i>"/"t<i>".
Netlist fig1_circuit(int ladder = 10);

}  // namespace serelin
