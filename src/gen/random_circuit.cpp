#include "gen/random_circuit.hpp"

#include <algorithm>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace serelin {

namespace {

CellType pick_unary(Rng& rng) {
  return rng.chance(0.7) ? CellType::kNot : CellType::kBuf;
}

CellType pick_nary(Rng& rng, double xor_share) {
  if (rng.chance(xor_share))
    return rng.chance(0.5) ? CellType::kXor : CellType::kXnor;
  const double x = rng.uniform();
  if (x < 0.35) return CellType::kNand;
  if (x < 0.63) return CellType::kNor;
  if (x < 0.82) return CellType::kAnd;
  return CellType::kOr;
}

}  // namespace

Netlist generate_random_circuit(const RandomCircuitSpec& spec) {
  SERELIN_REQUIRE(spec.gates >= 1 && spec.inputs >= 1 && spec.outputs >= 1,
                  "spec needs at least one gate, input and output");
  SERELIN_REQUIRE(spec.dffs >= 0, "negative flip-flop count");
  SERELIN_REQUIRE(spec.mean_fanin >= 1.0 && spec.mean_fanin <= 3.0,
                  "mean_fanin must lie in [1,3]");
  Rng rng(spec.seed ^ 0x9e3779b97f4a7c15ULL);

  // Plan the structure in flat arrays first (repairs are easier before the
  // netlist is built). Planned ids: inputs [0, I), dffs [I, I+D), gates
  // [I+D, I+D+G).
  const int I = spec.inputs;
  const int D = spec.dffs;
  const int G = spec.gates;
  const int total = I + D + G;

  std::vector<CellType> type(static_cast<std::size_t>(total));
  std::vector<std::vector<int>> fanin(static_cast<std::size_t>(total));
  std::vector<int> uses(static_cast<std::size_t>(total), 0);

  for (int i = 0; i < I; ++i) type[i] = CellType::kInput;
  for (int d = 0; d < D; ++d) type[I + d] = CellType::kDff;

  // Gates: choose arity from the mean, wire fanins with locality bias.
  // Flip-flops get consumed two ways: *pipeline* registers are inserted
  // inline on local (chain) fanins — this is what keeps long logic chains
  // register-crossed, like real pipelined datapaths — and the remaining
  // *state* registers feed gates directly, with their D inputs assigned to
  // random gates afterwards (feedback). Both paths keep the post-hoc
  // repair pass (which would perturb the edge count) small.
  std::vector<int> dff_driver(static_cast<std::size_t>(D), -1);
  std::vector<int> state_dffs(static_cast<std::size_t>(D));
  for (int d = 0; d < D; ++d) state_dffs[d] = I + d;
  for (int d = D - 1; d > 0; --d)
    std::swap(state_dffs[d], state_dffs[rng.below(static_cast<std::uint64_t>(d) + 1)]);
  std::size_t next_dff = 0;
  const double expected_pins = spec.mean_fanin * G;
  const double dff_share =
      expected_pins > 0 ? std::min(0.5, 1.25 * D / expected_pins) : 0.0;

  for (int g = 0; g < G; ++g) {
    const int id = I + D + g;
    int arity;
    if (spec.mean_fanin <= 2.0) {
      arity = rng.chance(2.0 - spec.mean_fanin) ? 1 : 2;
    } else {
      arity = rng.chance(spec.mean_fanin - 2.0) ? 3 : 2;
    }
    type[id] = arity == 1 ? pick_unary(rng) : pick_nary(rng, spec.xor_share);
    auto& fi = fanin[id];
    for (int k = 0; k < arity; ++k) {
      int src;
      for (int attempt = 0;; ++attempt) {
        if (g > 0 && rng.chance(spec.locality)) {
          const int lo = std::max(0, g - spec.window);
          src = I + D + static_cast<int>(rng.range(lo, g - 1));
          if (next_dff < state_dffs.size() && rng.chance(spec.pipeline_prob)) {
            // Insert a pipeline register on this chain hop.
            const int pipe = state_dffs[next_dff];
            if (dff_driver[pipe - I] < 0) {
              dff_driver[pipe - I] = src;
              ++uses[src];
              ++next_dff;
              src = pipe;
            }
          }
        } else if (next_dff < state_dffs.size() && rng.chance(dff_share)) {
          src = state_dffs[next_dff++];  // consume a state register
        } else if (g > 0) {
          src = static_cast<int>(rng.below(static_cast<std::uint64_t>(I + D + g)));
        } else {
          src = static_cast<int>(rng.below(static_cast<std::uint64_t>(I)));
        }
        if (attempt >= 4 ||
            std::find(fi.begin(), fi.end(), src) == fi.end())
          break;
      }
      fi.push_back(src);
      ++uses[src];
    }
  }

  // Remaining flip-flop D inputs: mostly gates (feedback), occasionally a
  // chain to a lower-indexed flip-flop (never a cycle of registers).
  for (int d = 0; d < D; ++d) {
    if (dff_driver[d] >= 0) continue;  // pipeline register, already driven
    if (d > 0 && dff_driver[d - 1] >= 0 && rng.chance(spec.dff_chain_prob)) {
      dff_driver[d] = I + d - 1;
    } else {
      dff_driver[d] =
          I + D + static_cast<int>(rng.below(static_cast<std::uint64_t>(G)));
    }
    ++uses[dff_driver[d]];
  }

  // Primary outputs: a sample of distinct late gates (late = deep logic).
  std::vector<char> is_po(static_cast<std::size_t>(total), 0);
  {
    int marked = 0;
    const int lo = G > 4 * spec.outputs ? G - 4 * spec.outputs : 0;
    for (int attempt = 0; marked < spec.outputs && attempt < 64 * spec.outputs;
         ++attempt) {
      const int id = I + D + static_cast<int>(rng.range(lo, G - 1));
      if (is_po[id]) continue;
      is_po[id] = 1;
      ++uses[id];
      ++marked;
    }
  }

  // Repair pass: rewire a pin of a later gate to consume each unused
  // signal. Stealing a pin whose current source has other uses keeps the
  // total pin count (and so the edge statistics) exact; when no such pin
  // exists the signal becomes a primary output instead.
  auto steal_pin = [&](int id, int first_consumer) -> bool {
    for (int attempt = 0; attempt < 24; ++attempt) {
      if (first_consumer >= G) break;
      const int c =
          I + D + static_cast<int>(rng.range(first_consumer, G - 1));
      auto& pins = fanin[c];
      for (std::size_t k = 0; k < pins.size(); ++k) {
        const int old = pins[k];
        if (old == id || uses[old] < 2) continue;
        if (std::find(pins.begin(), pins.end(), id) != pins.end()) break;
        --uses[old];
        pins[k] = id;
        ++uses[id];
        return true;
      }
    }
    return false;
  };
  for (int g = G - 1; g >= 0; --g) {
    const int id = I + D + g;
    if (uses[id] > 0) continue;
    if (!steal_pin(id, g + 1)) {
      is_po[id] = 1;
      ++uses[id];
    }
  }
  for (int d = 0; d < D; ++d) {
    const int id = I + d;
    if (uses[id] > 0) continue;
    if (!steal_pin(id, 0)) is_po[id] = 1;  // register observed directly
  }

  // Materialize the netlist. Planned ids coincide with NodeIds because we
  // add nodes in planned order and DFF inputs are patched afterwards.
  Netlist nl(spec.name);
  for (int i = 0; i < I; ++i)
    nl.add_node("pi" + std::to_string(i), CellType::kInput, {});
  for (int d = 0; d < D; ++d)
    nl.add_node("ff" + std::to_string(d), CellType::kDff, {kNullNode});
  for (int g = 0; g < G; ++g) {
    const int id = I + D + g;
    std::vector<NodeId> fi(fanin[id].begin(), fanin[id].end());
    nl.add_node("g" + std::to_string(g), type[id], std::move(fi));
  }
  for (int d = 0; d < D; ++d)
    nl.set_dff_input(static_cast<NodeId>(I + d),
                     static_cast<NodeId>(dff_driver[d]));
  for (int id = 0; id < total; ++id)
    if (is_po[id]) nl.mark_output(static_cast<NodeId>(id));
  nl.finalize();
  return nl;
}

const char* generator_mode_name(GeneratorMode mode) {
  switch (mode) {
    case GeneratorMode::kUniform: return "uniform";
    case GeneratorMode::kSkewedFanin: return "skewed-fanin";
    case GeneratorMode::kRegisterDense: return "register-dense";
    case GeneratorMode::kNearCritical: return "near-critical";
  }
  return "unknown";
}

std::optional<GeneratorMode> parse_generator_mode(std::string_view name) {
  for (int m = 0; m < kNumGeneratorModes; ++m) {
    const auto mode = static_cast<GeneratorMode>(m);
    if (name == generator_mode_name(mode)) return mode;
  }
  return std::nullopt;
}

RandomCircuitSpec random_spec(GeneratorMode mode, Rng& rng,
                              const SpecRanges& ranges) {
  SERELIN_REQUIRE(ranges.min_gates >= 1 && ranges.max_gates >= ranges.min_gates,
                  "spec ranges need 1 <= min_gates <= max_gates");
  RandomCircuitSpec spec;
  const int gates =
      static_cast<int>(rng.range(ranges.min_gates, ranges.max_gates));
  spec.gates = gates;
  spec.name = std::string("fuzz-") + generator_mode_name(mode);
  spec.inputs = 2 + static_cast<int>(rng.range(0, 4));
  spec.outputs = 1 + static_cast<int>(rng.range(0, 3));
  spec.seed = rng.next();
  switch (mode) {
    case GeneratorMode::kUniform:
      spec.dffs = std::max(1, gates / static_cast<int>(rng.range(2, 6)));
      spec.mean_fanin = 1.2 + 1.6 * rng.uniform();
      spec.locality = 0.3 + 0.6 * rng.uniform();
      spec.window = 4 + static_cast<int>(rng.range(0, 24));
      spec.dff_chain_prob = 0.2 * rng.uniform();
      spec.xor_share = 0.5 * rng.uniform();
      spec.pipeline_prob = 0.2 + 0.4 * rng.uniform();
      break;
    case GeneratorMode::kSkewedFanin:
      // Fanin pinned near the cap with a tiny reuse window: a few hub
      // signals collect most of the fanout, so W/D rows are wide and the
      // forest sees many simultaneous dependency sources.
      spec.dffs = std::max(1, gates / 4);
      spec.mean_fanin = 2.7 + 0.3 * rng.uniform();
      spec.locality = 0.85 + 0.1 * rng.uniform();
      spec.window = 2 + static_cast<int>(rng.range(0, 3));
      spec.dff_chain_prob = 0.05;
      spec.xor_share = 0.3 * rng.uniform();
      spec.pipeline_prob = 0.25 + 0.25 * rng.uniform();
      break;
    case GeneratorMode::kRegisterDense:
      // As many registers as the pin budget supports: big movable register
      // populations, long shift chains, busy ELW interval sets.
      spec.dffs = std::max(2, gates - static_cast<int>(rng.range(0, 4)));
      spec.mean_fanin = 1.4 + 0.8 * rng.uniform();
      spec.locality = 0.5 + 0.3 * rng.uniform();
      spec.window = 6 + static_cast<int>(rng.range(0, 10));
      spec.dff_chain_prob = 0.3 + 0.3 * rng.uniform();
      spec.xor_share = 0.4 * rng.uniform();
      spec.pipeline_prob = 0.6 + 0.3 * rng.uniform();
      break;
    case GeneratorMode::kNearCritical:
      // Deep unpipelined chains: the unretimed critical path dominates,
      // Φ sits near it after the Section-V relaxation, and the period /
      // ELW constraints bind on most candidate moves.
      spec.dffs = std::max(1, gates / 8);
      spec.mean_fanin = 1.1 + 0.5 * rng.uniform();
      spec.locality = 0.92 + 0.07 * rng.uniform();
      spec.window = 2 + static_cast<int>(rng.range(0, 2));
      spec.dff_chain_prob = 0.05;
      spec.xor_share = 0.2 * rng.uniform();
      spec.pipeline_prob = 0.05 + 0.1 * rng.uniform();
      break;
  }
  return spec;
}

}  // namespace serelin
