#include "flow/experiment.hpp"

#include <cmath>

#include "rgraph/apply.hpp"
#include "sim/observability.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace serelin {

namespace {

AlgoOutcome run_one(const RetimingGraph& g, const ObsGains& gains,
                    const SolverOptions& options, const Retiming& initial,
                    const CellLibrary& lib, const FlowConfig& config,
                    std::int64_t original_ffs, double original_ser) {
  AlgoOutcome out;
  Stopwatch watch;
  MinObsWinSolver solver(g, gains, options);
  out.solver = solver.solve(initial);
  out.seconds = watch.seconds();

  if (config.verify) {
    OracleOptions oracle_options;
    oracle_options.timing = options.timing;
    oracle_options.rmin = options.rmin;
    oracle_options.check_elw =
        options.enforce_elw && options.rmin > 0 && !out.solver.exited_early;
    oracle_options.area_weight = config.area_weight;
    out.verdict =
        RetimingOracle(g, oracle_options).verify(out.solver, initial, gains);
    out.verified = true;
  }

  out.ffs = g.shared_register_count(out.solver.r);
  out.dff_change = original_ffs > 0
                       ? static_cast<double>(out.ffs - original_ffs) /
                             static_cast<double>(original_ffs)
                       : 0.0;
  if (config.reanalyze_ser) {
    const Netlist retimed =
        apply_retiming(g, out.solver.r, g.netlist().name() + "_rt");
    SerOptions ser;
    ser.timing = options.timing;
    ser.sim = config.sim;
    out.ser = analyze_ser(retimed, lib, ser).total;
    out.dser = original_ser > 0 ? (out.ser - original_ser) / original_ser
                                : 0.0;
  }
  return out;
}

}  // namespace

ExperimentRow run_experiment(const Netlist& nl, const CellLibrary& lib,
                             const FlowConfig& config) {
  SERELIN_REQUIRE(nl.finalized(), "run_experiment needs a finalized netlist");
  // An explicit trace request scopes a fresh recording session to this
  // experiment; metrics are bracketed with a snapshot either way.
  if (!config.trace_path.empty()) Tracer::start();
  const MetricsSnapshot metrics_before = metrics_snapshot();
  ExperimentRow row;
  // Inner scope: the root span must close *before* the exporters run, or
  // it would miss its own trace file.
  {
    SERELIN_SPAN("flow/experiment");
    row.name = nl.name();

    RetimingGraph g(nl, lib);
    row.vertices = g.gate_vertices().size();
    row.edges = g.edge_count();
    row.ffs = static_cast<std::int64_t>(nl.dff_count());

    const InitResult init = initialize_retiming(g, config.init);
    row.phi = init.timing.period;
    row.setup_hold_ok = init.setup_hold_ok;
    row.rmin = std::isnan(config.rmin_override) ? init.rmin
                                                : config.rmin_override;

    Stopwatch analysis_watch;
    ObservabilityAnalyzer obs_engine(nl, config.sim);
    const ObsResult obs = obs_engine.run();
    const ObsGains gains =
        compute_gains(g, obs.obs, config.sim.patterns, config.area_weight);
    if (config.reanalyze_ser) {
      SerOptions ser;
      ser.timing = init.timing;
      ser.sim = config.sim;
      row.ser_original = analyze_ser(nl, lib, ser).total;
    }
    row.analysis_seconds = analysis_watch.seconds();

    SolverOptions options;
    options.timing = init.timing;
    options.rmin = row.rmin;
    options.enforce_elw = true;
    row.minobswin = run_one(g, gains, options, init.r, lib, config, row.ffs,
                            row.ser_original);
    if (config.run_minobs) {
      options.enforce_elw = false;
      row.minobs = run_one(g, gains, options, init.r, lib, config, row.ffs,
                           row.ser_original);
    }
  }
  if (!config.trace_path.empty()) {
    Tracer::stop();
    Tracer::write_chrome_json(config.trace_path);
  }
  if (!config.metrics_path.empty())
    write_metrics_json(metrics_snapshot() - metrics_before,
                       config.metrics_path);
  return row;
}

}  // namespace serelin
