#include "flow/journal.hpp"

#include <cmath>
#include <cstdio>

#include "support/check.hpp"
#include "support/metrics.hpp"

namespace serelin {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonObject& JsonObject::raw(const std::string& key, const std::string& json) {
  SERELIN_ASSERT(!closed_, "JsonObject modified after str()");
  body_ += body_.empty() ? "{" : ",";
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\":";
  body_ += json;
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  return raw(key, '"' + json_escape(value) + '"');
}

JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set(key, std::string(value));
}

JsonObject& JsonObject::set(const std::string& key, double value) {
  if (!std::isfinite(value)) return raw(key, "null");
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return raw(key, buf);
}

JsonObject& JsonObject::set(const std::string& key, std::int64_t value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::set(const std::string& key, int value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  return raw(key, value ? "true" : "false");
}

JsonObject& JsonObject::set_json(const std::string& key,
                                 const std::string& json) {
  return raw(key, json);
}

const std::string& JsonObject::str() const {
  if (!closed_) {
    body_ += body_.empty() ? "{}" : "}";
    closed_ = true;
  }
  return body_;
}

RunJournal::RunJournal(const std::string& path)
    : path_(path), out_(path, std::ios::trunc), enabled_(true) {
  if (!out_) throw Error("cannot open run journal for writing: " + path);
}

void RunJournal::write(const JsonObject& obj) {
  if (!enabled_ || !healthy_) return;
  SERELIN_COUNT(kJournalWrites, 1);
  out_ << obj.str() << '\n';
  out_.flush();
  if (!out_) healthy_ = false;  // disk full etc.: degrade, never abort a run
}

}  // namespace serelin
