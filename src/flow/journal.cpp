#include "flow/journal.hpp"

#include <cmath>
#include <cstdio>

#include "support/check.hpp"
#include "support/metrics.hpp"

namespace serelin {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonObject& JsonObject::raw(const std::string& key, const std::string& json) {
  SERELIN_ASSERT(!closed_, "JsonObject modified after str()");
  body_ += body_.empty() ? "{" : ",";
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\":";
  body_ += json;
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  return raw(key, '"' + json_escape(value) + '"');
}

JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set(key, std::string(value));
}

JsonObject& JsonObject::set(const std::string& key, double value) {
  if (!std::isfinite(value)) return raw(key, "null");
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return raw(key, buf);
}

JsonObject& JsonObject::set(const std::string& key, std::int64_t value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::set(const std::string& key, int value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  return raw(key, value ? "true" : "false");
}

JsonObject& JsonObject::set_json(const std::string& key,
                                 const std::string& json) {
  return raw(key, json);
}

const std::string& JsonObject::str() const {
  if (!closed_) {
    body_ += body_.empty() ? "{}" : "}";
    closed_ = true;
  }
  return body_;
}

std::optional<std::string> json_string_field(const std::string& record,
                                             const std::string& key) {
  const std::string needle = '"' + json_escape(key) + "\":\"";
  const std::size_t at = record.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = at + needle.size(); i < record.size(); ++i) {
    const char c = record[i];
    if (c == '"') return out;
    if (c == '\\' && i + 1 < record.size()) {
      const char e = record[++i];
      switch (e) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          // \u00XX — JsonObject only emits control bytes this way.
          if (i + 4 < record.size()) {
            const auto hex = [](char h) {
              return h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10;
            };
            out += static_cast<char>(hex(record[i + 3]) * 16 +
                                     hex(record[i + 4]));
            i += 4;
          }
          break;
        default: out += e; break;
      }
    } else {
      out += c;
    }
  }
  return std::nullopt;  // unterminated string: not a field we wrote
}

std::optional<bool> json_bool_field(const std::string& record,
                                    const std::string& key) {
  const std::string needle = '"' + json_escape(key) + "\":";
  const std::size_t at = record.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t v = at + needle.size();
  if (record.compare(v, 4, "true") == 0) return true;
  if (record.compare(v, 5, "false") == 0) return false;
  return std::nullopt;
}

RunJournal::RunJournal(const std::string& path, JournalWriter::Mode mode)
    : writer_(path, mode) {}

void RunJournal::write(const JsonObject& obj) {
  if (observer_) observer_(obj.str());
  if (!writer_.enabled() || !writer_.healthy()) return;
  SERELIN_COUNT(kJournalWrites, 1);
  writer_.append(obj.str());
}

}  // namespace serelin
