// SolverPipeline: graceful degradation across an ordered fallback chain.
//
// A production flow must return *some* oracle-verified legal retiming even
// when the preferred algorithm runs out of budget or its result fails
// verification. The pipeline tries, in order,
//
//   1. minobswin  — Algorithm 1 (observability + ELW constraints),
//   2. minobs     — Efficient MinObs (observability only),
//   3. minperiod  — classical min-period retiming at the target Φ,
//   4. identity   — the unretimed circuit at its own critical path,
//
// each stage under its own slice of the overall deadline. A stage's result
// is accepted only when the independent RetimingOracle (src/check) signs
// off on it; a stage that errors out, times out, or is rejected triggers
// one relaxed-budget retry when the failure was budget-related, then the
// chain falls through to the next stage. The identity stage cannot fail:
// a zero retiming at the circuit's own critical path is always legal, so
// the pipeline's contract is "a verified result or a recorded reason per
// stage", never an exception for budget exhaustion.
//
// Every attempt — budget, wall clock, stop reason, verdict — is recorded
// in PipelineResult::attempts and, when a journal path is given, appended
// live to a JSONL run journal (see flow/journal.hpp and
// docs/ROBUSTNESS.md), so post-mortems can reconstruct exactly what was
// tried even if the process dies mid-run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "core/initializer.hpp"
#include "core/solver.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "sim/sim_config.hpp"
#include "support/deadline.hpp"
#include "timing/params.hpp"

namespace serelin {

enum class PipelineStage : std::uint8_t {
  kMinObsWin,  ///< Algorithm 1 (the paper's full method)
  kMinObs,     ///< Efficient MinObs baseline (no ELW constraints)
  kMinPeriod,  ///< plain min-period retiming at the target Φ
  kIdentity,   ///< the unretimed circuit (always succeeds)
};

/// "minobswin" / "minobs" / "minperiod" / "identity" (stable; journaled).
const char* pipeline_stage_name(PipelineStage s);

struct PipelineOptions {
  InitOptions init;  ///< Section-V initialization parameters
  SimConfig sim;     ///< observability simulation fidelity
  /// Target clock period Φ; 0 = use the Section-V initialization period.
  double period = 0.0;
  /// R_min override; negative = use the Section-V value.
  double rmin = -1.0;
  /// §VII area-augmentation knob, forwarded to the gains.
  double area_weight = 0.0;
  /// Overall budget; stages run under slices of it.
  Deadline deadline;
  /// Run the RetimingOracle on every stage result; a result that fails
  /// verification is treated like a failed stage. When false, results are
  /// accepted as the solvers report them (attempts are still journaled).
  bool verify = true;
  /// Budget multiplier for the single relaxed retry of a stage whose
  /// failure was budget-related.
  double retry_factor = 2.0;
  /// Testability override: fixed first-attempt budget per stage in
  /// seconds; 0 = automatic (remaining budget split over remaining
  /// stages). The relaxed retry always uses the automatic slice.
  double stage_budget_s = 0.0;
  /// JSONL journal path; empty = no journal. Opening failure throws.
  std::string journal_path;
  /// Live mirror of every journal record (flow/journal.hpp's
  /// JournalObserver): the job server streams pipeline events to clients
  /// through this. Works with or without `journal_path`; the callback runs
  /// on the solving thread and must not throw.
  std::function<void(const std::string& record)> journal_observer;
  /// First stage to try (earlier stages are skipped, e.g. kMinObs when
  /// the caller never wanted ELW constraints).
  PipelineStage start = PipelineStage::kMinObsWin;
  /// Durable checkpoint file (docs/ROBUSTNESS.md §11); empty = no
  /// checkpointing. The file always holds a complete snapshot: the stage /
  /// attempt in flight plus the underlying solver's progress section.
  std::string checkpoint_path;
  /// Persist every K-th solver snapshot offer (plus the first and every
  /// forced one). Deterministic, never wall-clock based.
  int checkpoint_every = 16;
  /// Existing checkpoint to resume from; empty = fresh run. The snapshot's
  /// fingerprint must match this circuit + these options (else throws),
  /// and the resumed run reaches the bit-identical accepted result the
  /// uninterrupted one would have. When `journal_path` names an existing
  /// journal, its (possibly torn) tail is recovered and appended to.
  std::string resume_path;
};

/// One stage attempt, as journaled.
struct StageAttempt {
  PipelineStage stage = PipelineStage::kIdentity;
  int attempt = 0;  ///< 0 = first try, 1 = relaxed-budget retry
  double budget_seconds = 0.0;  ///< slice given to this attempt (inf = none)
  double seconds = 0.0;         ///< wall clock actually spent
  StopReason stop_reason = StopReason::kNone;  ///< solver early-stop reason
  bool errored = false;  ///< attempt died (CancelledError, FEAS failure...)
  std::string error;     ///< what() of the failure when errored
  bool verified = false; ///< the oracle ran on this attempt's result
  Verdict verdict;       ///< oracle verdict (meaningful when verified)
  bool accepted = false; ///< this attempt produced the pipeline's result
};

struct PipelineResult {
  /// True when some stage produced an accepted (oracle-verified when
  /// verify was on) result.
  bool ok = false;
  PipelineStage stage = PipelineStage::kIdentity;  ///< accepted stage
  /// True when the accepted stage is not the requested start stage (the
  /// chain degraded) or the accepted result is itself partial.
  bool degraded = false;
  SolverResult solver;   ///< accepted result (identity/minperiod: gain 0)
  Verdict verdict;       ///< oracle verdict of the accepted result
  TimingParams timing;   ///< the Φ/Ts/Th the result is verified against
  double rmin = 0.0;     ///< the R_min in force for the accepted stage
  InitResult init;       ///< Section-V setup the run started from
  std::vector<StageAttempt> attempts;  ///< every attempt, in order
  std::string journal_path;  ///< empty when journaling was off
  bool journal_healthy = true;  ///< false: a journal write failed mid-run
};

/// Runs the fallback chain on a finalized netlist. Throws only on caller
/// errors (unopenable journal, unfinalized netlist, a resume checkpoint
/// that does not belong to this input) — budget exhaustion and rejected
/// results degrade through the chain instead.
PipelineResult run_pipeline(const Netlist& nl, const CellLibrary& lib,
                            const PipelineOptions& options);

/// Stable 64-bit digest of everything a pipeline checkpoint is valid for:
/// the exact circuit plus every option that can change the result. Stamped
/// into checkpoints and verified on resume, so a snapshot can never be
/// replayed against a different input.
std::uint64_t pipeline_fingerprint(const Netlist& nl,
                                   const PipelineOptions& options);

}  // namespace serelin
