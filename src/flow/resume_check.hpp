// Resumed-equals-fresh cross-check (docs/ROBUSTNESS.md §11).
//
// The crash-safety contract is bitwise: a pipeline killed at any instant
// and resumed from its checkpoint must reach the exact result the
// uninterrupted run reaches — same accepted stage, same retiming vector,
// same objective, same verdict. This comparator states that contract once,
// field by field, so the crash harness and the tests assert the same
// thing; `detail` pinpoints the first differing field on mismatch.
#pragma once

#include <string>

#include "flow/pipeline.hpp"

namespace serelin {

/// True when `resumed` is bit-identical to `fresh` in every field the
/// contract covers. Wall-clock artifacts (per-attempt seconds, budgets,
/// attempt counts — a resumed run legitimately re-attempts fewer stages)
/// are excluded. On mismatch, `detail` names the first differing field.
bool resume_matches_fresh(const PipelineResult& fresh,
                          const PipelineResult& resumed, std::string* detail);

}  // namespace serelin
