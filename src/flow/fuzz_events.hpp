// Journal events of a differential-fuzzing run (tools/fuzz_solvers).
//
// Same contract as the pipeline journal: one JSONL object per event,
// flushed as it happens, so a fuzzing run killed mid-campaign still leaves
// a complete record of every iteration, divergence and shrink it
// performed. Events carry the iteration index and the circuit seed — never
// wall-clock timestamps — so a journal line alone reproduces its
// iteration. The schema is documented in docs/ROBUSTNESS.md
// ("Differential fuzzing").
#pragma once

#include <cstdint>
#include <string>

#include "check/differential.hpp"
#include "flow/journal.hpp"

namespace serelin {

/// One fuzzing iteration: what was generated and what the harness said.
struct FuzzIterationEvent {
  std::int64_t iteration = 0;
  std::string mode;               ///< generator mode name
  std::uint64_t circuit_seed = 0; ///< RandomCircuitSpec::seed actually used
  int gates = 0;
  int dffs = 0;
  std::string verdict;  ///< DifferentialReport::summary()
  std::int64_t divergences = 0;
};

void journal_fuzz_iteration(RunJournal& journal,
                            const FuzzIterationEvent& ev);

/// One divergence, written after shrinking and corpus persistence.
/// `corpus_path` is empty when persistence failed or was disabled.
void journal_fuzz_divergence(RunJournal& journal, std::int64_t iteration,
                             const Divergence& divergence,
                             const std::string& corpus_path);

/// One shrink: node counts before/after, predicate checks spent, and
/// whether the fixpoint (1-minimality) was reached within budget.
void journal_fuzz_shrink(RunJournal& journal, std::int64_t iteration,
                         std::int64_t from_nodes, std::int64_t to_nodes,
                         std::int64_t checks, bool one_minimal);

}  // namespace serelin
