// The end-to-end experiment flow of the paper's Section VI, packaged for
// the Table-I harness, the ablation benches and the examples:
//
//   1. build the retiming graph;
//   2. Section-V initialization (Φ via setup/hold-aware min-period + ε
//      relaxation, R_min from the initial short paths);
//   3. n-time-frame signature observability -> gains b(v);
//   4. run Efficient MinObs (baseline of [17]) and MinObsWin (Algorithm 1);
//   5. materialize both retimed netlists and re-analyze their SER with the
//      full Eq. (4) model ("the real size of the ELW ... with (3)").
//
// Runtimes of the two solvers are measured separately (the paper's t_ref /
// t_new columns); analysis time is reported on the side.
#pragma once

#include <limits>
#include <string>

#include "check/oracle.hpp"
#include "core/initializer.hpp"
#include "core/objective.hpp"
#include "core/solver.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "rgraph/retiming_graph.hpp"
#include "ser/ser_analyzer.hpp"

namespace serelin {

struct FlowConfig {
  InitOptions init;       ///< Section-V parameters (Ts, Th, ε)
  SimConfig sim;          ///< observability simulation fidelity
  double area_weight = 0.0;  ///< §VII extension knob (0 = paper objective)
  /// Override for R_min; NaN = use the Section-V value.
  double rmin_override = std::numeric_limits<double>::quiet_NaN();
  bool run_minobs = true;      ///< run the baseline too
  bool reanalyze_ser = true;   ///< full Eq. (4) SER on the results
  /// Run the independent RetimingOracle (src/check) on every solver
  /// result; verdicts land in AlgoOutcome::verdict. A failed verdict does
  /// not abort the experiment — Table-I harnesses report it per row.
  bool verify = false;
  /// When non-empty, the experiment runs under a fresh tracing session and
  /// writes the Chrome trace_event JSON here (see docs/OBSERVABILITY.md).
  std::string trace_path;
  /// When non-empty, the flat counter-totals JSON of the run lands here.
  std::string metrics_path;
};

/// Results of one algorithm on one circuit (one half of a Table-I row).
struct AlgoOutcome {
  SolverResult solver;
  double seconds = 0.0;        ///< solver wall clock (t_ref / t_new)
  std::int64_t ffs = 0;        ///< flip-flops after materialization
  double dff_change = 0.0;     ///< (ffs - original) / original
  double ser = 0.0;            ///< re-analyzed SER(C_S, n)
  double dser = 0.0;           ///< (ser - original) / original
  bool verified = false;       ///< the oracle ran on this result
  Verdict verdict;             ///< its verdict (meaningful when verified)
};

/// One full Table-I row.
struct ExperimentRow {
  std::string name;
  std::size_t vertices = 0;  ///< |V| (gate count)
  std::size_t edges = 0;     ///< |E| (retiming-graph edges)
  std::int64_t ffs = 0;      ///< #FF of the original circuit
  double phi = 0.0;          ///< clock constraint Φ
  double rmin = 0.0;         ///< R_min used by MinObsWin
  bool setup_hold_ok = false;
  double ser_original = 0.0;  ///< SER of the original circuit
  AlgoOutcome minobs;     ///< "Efficient MinObs" columns
  AlgoOutcome minobswin;  ///< "MinObsWin" columns
  double analysis_seconds = 0.0;  ///< observability + SER engine time
};

/// Runs the full flow on a finalized netlist.
ExperimentRow run_experiment(const Netlist& nl, const CellLibrary& lib,
                             const FlowConfig& config);

}  // namespace serelin
