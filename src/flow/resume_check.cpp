#include "flow/resume_check.hpp"

#include <cstring>
#include <string>

namespace serelin {

namespace {

bool fail(std::string* detail, const std::string& what) {
  if (detail) *detail = what;
  return false;
}

}  // namespace

bool resume_matches_fresh(const PipelineResult& fresh,
                          const PipelineResult& resumed,
                          std::string* detail) {
  if (fresh.ok != resumed.ok)
    return fail(detail, "ok: fresh=" + std::to_string(fresh.ok) +
                            " resumed=" + std::to_string(resumed.ok));
  if (fresh.stage != resumed.stage)
    return fail(detail,
                std::string("stage: fresh=") + pipeline_stage_name(fresh.stage) +
                    " resumed=" + pipeline_stage_name(resumed.stage));
  if (fresh.solver.r != resumed.solver.r) {
    for (std::size_t v = 0; v < fresh.solver.r.size(); ++v) {
      if (v < resumed.solver.r.size() &&
          fresh.solver.r[v] == resumed.solver.r[v])
        continue;
      return fail(detail,
                  "retiming differs at vertex " + std::to_string(v) +
                      ": fresh=" +
                      (v < fresh.solver.r.size()
                           ? std::to_string(fresh.solver.r[v])
                           : "<absent>") +
                      " resumed=" +
                      (v < resumed.solver.r.size()
                           ? std::to_string(resumed.solver.r[v])
                           : "<absent>"));
    }
    return fail(detail, "retiming length: fresh=" +
                            std::to_string(fresh.solver.r.size()) +
                            " resumed=" +
                            std::to_string(resumed.solver.r.size()));
  }
  if (fresh.solver.objective_gain != resumed.solver.objective_gain)
    return fail(detail,
                "objective_gain: fresh=" +
                    std::to_string(fresh.solver.objective_gain) +
                    " resumed=" +
                    std::to_string(resumed.solver.objective_gain));
  if (fresh.solver.commits != resumed.solver.commits)
    return fail(detail,
                "commits: fresh=" + std::to_string(fresh.solver.commits) +
                    " resumed=" + std::to_string(resumed.solver.commits));
  if (fresh.solver.iterations != resumed.solver.iterations)
    return fail(detail,
                "iterations: fresh=" +
                    std::to_string(fresh.solver.iterations) + " resumed=" +
                    std::to_string(resumed.solver.iterations));
  if (fresh.solver.exited_early != resumed.solver.exited_early)
    return fail(detail, "exited_early differs");
  if (fresh.solver.stop_reason != resumed.solver.stop_reason)
    return fail(detail, "stop_reason differs");
  if (fresh.verdict.ok() != resumed.verdict.ok())
    return fail(detail, "verdict differs");
  // Bitwise on the IEEE representation, not an epsilon: the resumed run
  // must take the exact same numeric path.
  if (std::memcmp(&fresh.timing.period, &resumed.timing.period,
                  sizeof(double)) != 0)
    return fail(detail,
                "period: fresh=" + std::to_string(fresh.timing.period) +
                    " resumed=" + std::to_string(resumed.timing.period));
  if (std::memcmp(&fresh.rmin, &resumed.rmin, sizeof(double)) != 0)
    return fail(detail, "rmin differs");
  if (fresh.degraded != resumed.degraded)
    return fail(detail, "degraded differs");
  if (detail) detail->clear();
  return true;
}

}  // namespace serelin
