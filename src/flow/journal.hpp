// Run journal: append-only JSONL record of a solver-pipeline run.
//
// Every pipeline stage attempt — budget, outcome, oracle verdict — is
// written as one JSON object per line the moment it happens, so a run that
// is later killed (deadline, crash, operator Ctrl-C) still leaves a
// complete trace of everything it tried. The schema is documented in
// docs/ROBUSTNESS.md ("Run journal").
//
// Failure policy: failing to *open* the journal is a hard error (the user
// asked for a record we cannot produce); failing to *write* mid-run must
// never take the solve down with it — the journal goes unhealthy, keeps
// swallowing writes, and the caller reports the degradation at the end.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

namespace serelin {

/// Minimal ordered JSON-object builder for journal lines. Keys are emitted
/// in insertion order; values are escaped per RFC 8259. Non-finite doubles
/// become null (JSON has no inf/nan).
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::int64_t value);
  JsonObject& set(const std::string& key, int value);
  JsonObject& set(const std::string& key, bool value);

  /// Splices `json` in verbatim as the value — it must already be valid
  /// JSON (e.g. a nested object from metrics_json()). No escaping happens.
  JsonObject& set_json(const std::string& key, const std::string& json);

  /// "{...}" — the serialized object.
  const std::string& str() const;

 private:
  JsonObject& raw(const std::string& key, const std::string& json);

  mutable std::string body_;  // built incrementally; str() closes it
  mutable bool closed_ = false;
};

/// Escapes `s` for inclusion in a JSON string literal (without quotes).
std::string json_escape(const std::string& s);

class RunJournal {
 public:
  /// Disabled journal: write() is a no-op, healthy() stays true.
  RunJournal() = default;

  /// Opens (truncates) `path` for writing. Throws serelin::Error when the
  /// file cannot be opened.
  explicit RunJournal(const std::string& path);

  bool enabled() const { return enabled_; }

  /// False once any write has failed; subsequent writes are swallowed.
  bool healthy() const { return healthy_; }

  const std::string& path() const { return path_; }

  /// Appends one JSONL line and flushes it (so partial runs journal).
  void write(const JsonObject& obj);

 private:
  std::string path_;
  std::ofstream out_;
  bool enabled_ = false;
  bool healthy_ = true;
};

}  // namespace serelin
