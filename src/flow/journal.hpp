// Run journal: append-only JSONL record of a solver-pipeline run.
//
// Every pipeline stage attempt — budget, outcome, oracle verdict — is
// written as one JSON object per line the moment it happens, so a run that
// is later killed (deadline, crash, operator Ctrl-C) still leaves a
// complete trace of everything it tried. The schema is documented in
// docs/ROBUSTNESS.md ("Run journal").
//
// Since the crash-safety work (docs/ROBUSTNESS.md §11) every record rides
// inside a JournalWriter frame (length + CRC-32 + payload), fsynced as it
// is appended: a SIGKILL mid-append leaves at most one torn trailing
// frame, which recover_journal truncates away, so the surviving journal is
// exactly the prefix of committed events — the property pipeline resume
// replays to find the last completed stage.
//
// Failure policy: failing to *open* the journal is a hard error (the user
// asked for a record we cannot produce); failing to *write* mid-run must
// never take the solve down with it — the journal goes unhealthy, keeps
// swallowing writes, and the caller reports the degradation at the end.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "support/atomic_io.hpp"

namespace serelin {

/// Minimal ordered JSON-object builder for journal lines. Keys are emitted
/// in insertion order; values are escaped per RFC 8259. Non-finite doubles
/// become null (JSON has no inf/nan).
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::int64_t value);
  JsonObject& set(const std::string& key, int value);
  JsonObject& set(const std::string& key, bool value);

  /// Splices `json` in verbatim as the value — it must already be valid
  /// JSON (e.g. a nested object from metrics_json()). No escaping happens.
  JsonObject& set_json(const std::string& key, const std::string& json);

  /// "{...}" — the serialized object.
  const std::string& str() const;

 private:
  JsonObject& raw(const std::string& key, const std::string& json);

  mutable std::string body_;  // built incrementally; str() closes it
  mutable bool closed_ = false;
};

/// Escapes `s` for inclusion in a JSON string literal (without quotes).
std::string json_escape(const std::string& s);

/// Value of a top-level string field in a JsonObject-written record, or
/// nullopt when absent. Not a general JSON parser: it relies on the
/// journal's own writer emitting `"key":"value"` with JsonObject's
/// escaping, which is all resume replay ever reads back.
std::optional<std::string> json_string_field(const std::string& record,
                                             const std::string& key);

/// Same probe for a top-level true/false field.
std::optional<bool> json_bool_field(const std::string& record,
                                    const std::string& key);

/// Receives every journal record as it is written (before the durable
/// append), so a live consumer — the job server streaming events to a
/// client — sees the run unfold without tailing the framed file. The
/// callback runs on the writing thread and must not throw.
using JournalObserver = std::function<void(const std::string& record)>;

class RunJournal {
 public:
  /// Disabled journal: write() is a no-op, healthy() stays true.
  RunJournal() = default;

  /// Opens (truncates) `path` for writing. Throws serelin::Error when the
  /// file cannot be opened. `mode` kAppend continues a recovered journal
  /// after its last intact record (pipeline resume).
  explicit RunJournal(const std::string& path,
                      JournalWriter::Mode mode = JournalWriter::Mode::kTruncate);

  bool enabled() const { return writer_.enabled(); }

  /// False once any write has failed; subsequent writes are swallowed.
  bool healthy() const { return writer_.healthy(); }

  const std::string& path() const { return writer_.path(); }

  /// Appends one framed JSONL record and fsyncs it (so partial runs
  /// journal, and a crash tears at most the trailing frame). The observer
  /// (when set) sees the record even when no file is attached.
  void write(const JsonObject& obj);

  /// Mirrors every subsequent record to `observer`. Works on a disabled
  /// (fileless) journal too: an observer-only journal streams without
  /// touching disk.
  void set_observer(JournalObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  JournalWriter writer_;
  JournalObserver observer_;
};

}  // namespace serelin
