#include "flow/pipeline.hpp"

#include <bit>
#include <cmath>
#include <filesystem>
#include <optional>
#include <sstream>
#include <tuple>
#include <utility>

#include "core/min_period.hpp"
#include "core/objective.hpp"
#include "flow/journal.hpp"
#include "netlist/bench_io.hpp"
#include "rgraph/retiming_graph.hpp"
#include "sim/observability.hpp"
#include "support/atomic_io.hpp"
#include "support/check.hpp"
#include "support/checkpoint.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace serelin {

const char* pipeline_stage_name(PipelineStage s) {
  switch (s) {
    case PipelineStage::kMinObsWin:
      return "minobswin";
    case PipelineStage::kMinObs:
      return "minobs";
    case PipelineStage::kMinPeriod:
      return "minperiod";
    case PipelineStage::kIdentity:
      return "identity";
  }
  return "identity";
}

namespace {

/// Stage span labels must be literals with static storage (the tracer
/// keeps the pointer), hence this sibling of pipeline_stage_name.
[[maybe_unused]] const char* stage_span_name(PipelineStage s) {
  switch (s) {
    case PipelineStage::kMinObsWin:
      return "pipeline/minobswin";
    case PipelineStage::kMinObs:
      return "pipeline/minobs";
    case PipelineStage::kMinPeriod:
      return "pipeline/minperiod";
    case PipelineStage::kIdentity:
      return "pipeline/identity";
  }
  return "pipeline/identity";
}

/// What one stage hands to the oracle: a result plus the timing context it
/// claims to be valid under (the identity stage relaxes the period).
struct StageCandidate {
  SolverResult result;
  TimingParams timing;
  double rmin = 0.0;
  bool check_elw = false;  ///< oracle should enforce the R_min invariant
  bool has_gains = false;  ///< objective_gain is a real Eq. (5) claim
};

void journal_attempt(RunJournal& journal, const StageAttempt& a,
                     const MetricsSnapshot& metrics) {
  JsonObject o;
  o.set("event", "attempt")
      .set("stage", pipeline_stage_name(a.stage))
      .set("attempt", a.attempt)
      .set("budget_s", a.budget_seconds)
      .set("seconds", a.seconds)
      .set("stop", stop_reason_name(a.stop_reason))
      .set("errored", a.errored);
  if (a.errored) o.set("error", a.error);
  o.set("verified", a.verified);
  if (a.verified) {
    o.set("verdict_ok", a.verdict.ok());
    for (const InvariantResult& r : a.verdict.invariants)
      o.set(invariant_name(r.invariant), check_status_name(r.status));
  }
  o.set("accepted", a.accepted);
  if (metrics_compiled_in()) o.set_json("metrics", metrics_json(metrics));
  journal.write(o);
}

/// The checkpoint's "pipeline" context section: which stage/attempt the
/// snapshot was taken inside.
std::string encode_pipeline_section(int stage, int attempt) {
  BinWriter w;
  w.u32(static_cast<std::uint32_t>(stage));
  w.u32(static_cast<std::uint32_t>(attempt));
  return w.take();
}

std::pair<int, int> decode_pipeline_section(std::string_view bytes) {
  BinReader rd(bytes);
  const int stage = static_cast<int>(rd.u32());
  const int attempt = static_cast<int>(rd.u32());
  if (!rd.done())
    throw ParseError("pipeline section: trailing bytes past the snapshot");
  return {stage, attempt};
}

}  // namespace

std::uint64_t pipeline_fingerprint(const Netlist& nl,
                                   const PipelineOptions& options) {
  // The exact circuit, via its canonical BENCH text, plus every option
  // that can change the accepted result. Budgets (deadline, journal,
  // checkpoint cadence) are deliberately excluded: they change *when*
  // snapshots happen, never what a completed run computes.
  std::ostringstream bench;
  write_bench(bench, nl);
  BinWriter w;
  w.str(bench.str());
  const auto f64 = [&w](double d) { w.u64(std::bit_cast<std::uint64_t>(d)); };
  f64(options.init.setup);
  f64(options.init.hold);
  f64(options.init.epsilon);
  w.i32(options.init.feas_passes);
  w.u8(options.init.integer_period ? 1 : 0);
  w.i32(options.sim.patterns);
  w.i32(options.sim.frames);
  w.i32(options.sim.warmup);
  w.u64(options.sim.seed);
  f64(options.period);
  f64(options.rmin);
  f64(options.area_weight);
  w.u8(options.verify ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(options.start));
  // FNV-1a 64 over the packed bytes: stable across platforms and runs.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : w.bytes()) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

PipelineResult run_pipeline(const Netlist& nl, const CellLibrary& lib,
                            const PipelineOptions& options) {
  SERELIN_SPAN("pipeline/run");
  SERELIN_REQUIRE(nl.finalized(), "run_pipeline needs a finalized netlist");

  const bool wants_checkpoint =
      !options.checkpoint_path.empty() || !options.resume_path.empty();
  const std::uint64_t fingerprint =
      wants_checkpoint ? pipeline_fingerprint(nl, options) : 0;

  // Resume: load the snapshot (if one was ever written — a run killed
  // before its first snapshot legitimately left none) and reject anything
  // that does not belong to this exact circuit + these options.
  CheckpointImage snapshot;
  bool resuming = false;
  int resume_stage = static_cast<int>(options.start);
  int resume_attempt = 0;
  if (!options.resume_path.empty() &&
      load_checkpoint(options.resume_path, snapshot)) {
    SERELIN_REQUIRE(snapshot.kind == "pipeline",
                    "resume checkpoint has kind '" + snapshot.kind +
                        "', expected 'pipeline'");
    SERELIN_REQUIRE(snapshot.fingerprint == fingerprint,
                    "resume checkpoint fingerprint mismatch: the snapshot "
                    "belongs to a different circuit or pipeline options");
    const std::string* ctx = snapshot.find("pipeline");
    SERELIN_REQUIRE(ctx != nullptr,
                    "resume checkpoint lacks its pipeline section");
    std::tie(resume_stage, resume_attempt) = decode_pipeline_section(*ctx);
    SERELIN_REQUIRE(resume_stage >= static_cast<int>(options.start) &&
                        resume_stage <=
                            static_cast<int>(PipelineStage::kIdentity),
                    "resume checkpoint names an impossible stage");
    resuming = true;
  }

  // A journal interrupted by a crash may carry a torn final record; recover
  // (truncate to the last intact frame) before appending, and replay it so
  // the resume event can record how far the dead run had journaled.
  std::string journal_last_stage;
  if (!options.journal_path.empty() &&
      !options.resume_path.empty() &&
      std::filesystem::exists(options.journal_path)) {
    const JournalRecovery replay = recover_journal(options.journal_path);
    for (const std::string& record : replay.records) {
      const auto event = json_string_field(record, "event");
      if (event && (*event == "attempt" || *event == "result")) {
        if (const auto stage = json_string_field(record, "stage"))
          journal_last_stage = *stage;
      }
    }
  }
  RunJournal journal =
      options.journal_path.empty()
          ? RunJournal()
          : RunJournal(options.journal_path,
                       options.resume_path.empty()
                           ? JournalWriter::Mode::kTruncate
                           : JournalWriter::Mode::kAppend);
  if (options.journal_observer) journal.set_observer(options.journal_observer);
  PipelineResult out;
  out.journal_path = options.journal_path;

  {
    JsonObject o;
    o.set("event", "start")
        .set("circuit", nl.name())
        .set("start_stage", pipeline_stage_name(options.start))
        .set("phi_target", options.period)
        .set("verify", options.verify)
        .set("deadline_s", options.deadline.remaining_seconds());
    journal.write(o);
  }
  if (!options.resume_path.empty()) {
    JsonObject o;
    o.set("event", "resume")
        .set("had_snapshot", resuming)
        .set("stage",
             pipeline_stage_name(static_cast<PipelineStage>(resume_stage)))
        .set("attempt", resume_attempt);
    if (!journal_last_stage.empty())
      o.set("journal_stage", journal_last_stage);
    journal.write(o);
  }

  CheckpointSink sink;
  if (!options.checkpoint_path.empty())
    sink = CheckpointSink(options.checkpoint_path, "pipeline", fingerprint,
                          options.checkpoint_every);

  RetimingGraph g(nl, lib);
  InitOptions init_options = options.init;
  init_options.deadline = options.deadline;
  Stopwatch init_watch;
  out.init = initialize_retiming(g, init_options);
  TimingParams timing = out.init.timing;
  if (options.period > 0) timing.period = options.period;
  const double rmin = options.rmin >= 0 ? options.rmin : out.init.rmin;

  {
    JsonObject o;
    o.set("event", "setup")
        .set("phi", timing.period)
        .set("phi_init", out.init.timing.period)
        .set("rmin", rmin)
        .set("setup_hold_ok", out.init.setup_hold_ok)
        .set("seconds", init_watch.seconds());
    journal.write(o);
  }

  // Gains are computed once, lazily, under the slice of whichever stage
  // first needs them; a later stage reuses the cached value for free.
  std::optional<ObsGains> gains;
  auto ensure_gains = [&](const Deadline& slice) -> const ObsGains& {
    if (!gains) {
      SimConfig sim = options.sim;
      sim.deadline = slice;
      ObservabilityAnalyzer engine(nl, sim);
      const ObsResult obs = engine.run();
      gains = compute_gains(g, obs.obs, sim.patterns, options.area_weight);
    }
    return *gains;
  };

  auto run_stage = [&](PipelineStage stage, const Deadline& slice,
                       const CheckpointSink& stage_sink,
                       const std::string* solver_snapshot) -> StageCandidate {
    StageCandidate c;
    c.timing = timing;
    c.rmin = rmin;
    switch (stage) {
      case PipelineStage::kMinObsWin:
      case PipelineStage::kMinObs: {
        const ObsGains& stage_gains = ensure_gains(slice);
        SolverOptions so;
        so.timing = timing;
        so.rmin = rmin;
        so.enforce_elw = stage == PipelineStage::kMinObsWin;
        so.deadline = slice;
        so.checkpoint = stage_sink;
        MinObsWinSolver solver(g, stage_gains, so);
        c.result = solver_snapshot
                       ? solver.resume(SolverProgress::decode(*solver_snapshot))
                       : solver.solve(out.init.r);
        c.check_elw = so.enforce_elw && rmin > 0 && !c.result.exited_early;
        c.has_gains = true;
        break;
      }
      case PipelineStage::kMinPeriod: {
        if (options.period <= 0 ||
            timing.period >= out.init.timing.period) {
          // The Section-V initialization already meets this (or a looser)
          // period, and it is legal by construction.
          c.result.r = out.init.r;
          c.result.stop_detail = "min-period: Section-V initialization";
        } else {
          MinPeriodRetimer::Options mo;
          mo.setup = timing.setup;
          mo.deadline = slice;
          MinPeriodRetimer retimer(g, mo);
          const std::optional<Retiming> r =
              retimer.retime_for_period(timing.period, out.init.r);
          if (!r) {
            // An interrupted FEAS probe reports infeasible; distinguish
            // "ran out of budget" (retryable) from "truly infeasible".
            slice.check("pipeline/minperiod");
            throw Error("min-period stage: no retiming achieves phi = " +
                        std::to_string(timing.period));
          }
          c.result.r = *r;
          c.result.stop_detail = "min-period: FEAS at the target period";
        }
        break;
      }
      case PipelineStage::kIdentity: {
        // The unretimed circuit at its own critical path: legal by
        // definition, so this stage is the chain's safety net. The period
        // is relaxed to whatever the circuit actually needs.
        c.result.r = g.zero_retiming();
        c.timing.period =
            std::max(timing.period, critical_path(nl, lib) + timing.setup);
        c.result.stop_detail = "identity: unretimed circuit, phi relaxed";
        break;
      }
    }
    return c;
  };

  constexpr int kLast = static_cast<int>(PipelineStage::kIdentity);
  // On resume the chain re-enters at the snapshot's stage/attempt; the
  // first attempt of that stage continues from the solver's own progress
  // section when the snapshot carries one (a stage-boundary snapshot does
  // not, and the stage simply restarts — same result either way).
  bool consume_snapshot = resuming;
  for (int si = resuming ? resume_stage : static_cast<int>(options.start);
       si <= kLast; ++si) {
    const PipelineStage stage = static_cast<PipelineStage>(si);
    const int stages_left = kLast - si + 1;
    for (int attempt = consume_snapshot ? resume_attempt : 0; attempt < 2;
         ++attempt) {
      const double auto_budget =
          options.deadline.remaining_seconds() / stages_left;
      const double budget =
          attempt == 0
              ? (options.stage_budget_s > 0 ? options.stage_budget_s
                                            : auto_budget)
              : auto_budget * options.retry_factor;
      const Deadline slice = options.deadline.slice(budget);
      SERELIN_COUNT(kDeadlineSlices, 1);

      // Snapshots written inside this attempt carry its stage/attempt as
      // context; the attempt-entry force marks the stage boundary durably
      // even if the solver below never offers.
      CheckpointSink stage_sink;
      if (sink.enabled()) {
        stage_sink =
            sink.with_section("pipeline", encode_pipeline_section(si, attempt));
        stage_sink.force([](CheckpointImage&) {});
      }
      const std::string* solver_snapshot = nullptr;
      if (consume_snapshot) {
        consume_snapshot = false;
        solver_snapshot = snapshot.find("solver");
      }

      StageAttempt rec;
      rec.stage = stage;
      rec.attempt = attempt;
      rec.budget_seconds = budget;
      bool cancelled = false;
      std::optional<StageCandidate> candidate;
      const MetricsSnapshot metrics_before = metrics_snapshot();
      Stopwatch watch;
      try {
        SERELIN_SPAN(stage_span_name(stage));
        candidate = run_stage(stage, slice, stage_sink, solver_snapshot);
      } catch (const CancelledError& e) {
        rec.errored = true;
        rec.error = e.what();
        cancelled = true;
      } catch (const Error& e) {
        rec.errored = true;
        rec.error = e.what();
      }
      rec.seconds = watch.seconds();
      if (candidate) rec.stop_reason = candidate->result.stop_reason;

      if (candidate) {
        if (options.verify) {
          OracleOptions oracle_options;
          oracle_options.timing = candidate->timing;
          oracle_options.rmin = candidate->rmin;
          oracle_options.check_elw = candidate->check_elw;
          oracle_options.area_weight = options.area_weight;
          // Verification runs unbudgeted on purpose: degradation after an
          // expired overall deadline still ends in a *verified* result.
          const RetimingOracle oracle(g, oracle_options);
          rec.verdict = candidate->has_gains
                            ? oracle.verify(candidate->result, out.init.r,
                                            *gains)
                            : oracle.verify(candidate->result.r);
          rec.verified = true;
          rec.accepted = rec.verdict.ok();
        } else {
          rec.accepted = true;
        }
      }
      journal_attempt(journal, rec, metrics_snapshot() - metrics_before);
      out.attempts.push_back(rec);

      if (rec.accepted) {
        out.ok = true;
        out.stage = stage;
        out.solver = std::move(candidate->result);
        out.verdict = std::move(rec.verdict);
        out.timing = candidate->timing;
        out.rmin = candidate->rmin;
        out.degraded = stage != options.start || out.solver.partial();
        JsonObject o;
        o.set("event", "result")
            .set("ok", true)
            .set("stage", pipeline_stage_name(stage))
            .set("degraded", out.degraded)
            .set("phi", out.timing.period)
            .set("rmin", out.rmin)
            .set("objective_gain", out.solver.objective_gain)
            .set("attempts", static_cast<int>(out.attempts.size()));
        journal.write(o);
        out.journal_healthy = journal.healthy();
        return out;
      }

      // One relaxed-budget retry, and only when more budget could actually
      // change the outcome: the attempt was cancelled mid-flight or the
      // solver stopped early at a checkpoint.
      const bool budget_related =
          cancelled || rec.stop_reason != StopReason::kNone;
      if (attempt == 0 && budget_related && !options.deadline.expired())
        continue;
      break;  // degrade to the next stage
    }
  }

  // Unreachable in practice — the identity stage always verifies — but a
  // sound answer is still produced if it ever does not.
  JsonObject o;
  o.set("event", "result")
      .set("ok", false)
      .set("attempts", static_cast<int>(out.attempts.size()));
  journal.write(o);
  out.journal_healthy = journal.healthy();
  return out;
}

}  // namespace serelin
