#include "flow/fuzz_events.hpp"

namespace serelin {

void journal_fuzz_iteration(RunJournal& journal,
                            const FuzzIterationEvent& ev) {
  JsonObject obj;
  obj.set("event", "fuzz_iteration")
      .set("iteration", ev.iteration)
      .set("mode", ev.mode)
      .set("circuit_seed", std::to_string(ev.circuit_seed))
      .set("gates", ev.gates)
      .set("dffs", ev.dffs)
      .set("verdict", ev.verdict)
      .set("divergences", ev.divergences);
  journal.write(obj);
}

void journal_fuzz_divergence(RunJournal& journal, std::int64_t iteration,
                             const Divergence& divergence,
                             const std::string& corpus_path) {
  JsonObject obj;
  obj.set("event", "fuzz_divergence")
      .set("iteration", iteration)
      .set("kind", divergence.kind)
      .set("detail", divergence.detail)
      .set("corpus_path", corpus_path);
  journal.write(obj);
}

void journal_fuzz_shrink(RunJournal& journal, std::int64_t iteration,
                         std::int64_t from_nodes, std::int64_t to_nodes,
                         std::int64_t checks, bool one_minimal) {
  JsonObject obj;
  obj.set("event", "fuzz_shrink")
      .set("iteration", iteration)
      .set("from_nodes", from_nodes)
      .set("to_nodes", to_nodes)
      .set("checks", checks)
      .set("one_minimal", one_minimal);
  journal.write(obj);
}

}  // namespace serelin
