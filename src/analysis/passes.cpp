#include "analysis/passes.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>

namespace serelin::analysis {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Catalogue

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kRules = {
      {"no-unseeded-random",
       "std::rand/srand/std::random_device are banned outside "
       "src/support/rng.* — all randomness must be seeded through "
       "serelin::Rng (determinism contract, docs/PARALLELISM.md)"},
      {"no-wallclock",
       "system_clock/time(nullptr)/gettimeofday are banned outside "
       "src/support/stopwatch.hpp — wall-clock reads make runs "
       "irreproducible"},
      {"no-unordered-range-for",
       "range-for over std::unordered_map/set in src/{core,sim,ser,check} — "
       "iteration order is nondeterministic, which breaks bit-identical "
       "reductions"},
      {"wd-dense-gated",
       "direct WdMatrices use is confined to src/core/wd_matrices.*, "
       "src/core/wd_query.* and src/check/* — everything else must go "
       "through the make_wd_query interface, which picks the dense engine "
       "only below the size threshold (docs/SPARSE_WD.md)"},
      {"no-bare-artifact-write",
       "std::ofstream and fopen-for-write are banned outside "
       "src/support/atomic_io.* — artifacts must go through "
       "atomic_write_file or JournalWriter so a crash can never leave a "
       "torn or half-written file (docs/ROBUSTNESS.md §11)"},
      {"diag-code-name",
       "every DiagCode enumerator in src/support/diag.hpp must have a "
       "diag_code_name case in src/support/diag.cpp"},
      {"diag-code-documented",
       "every diag_code_name string must appear in docs/ROBUSTNESS.md "
       "(the code taxonomy is a documented contract)"},
      {"exit-code-registry",
       "exit codes used by tools/serelin_cli.cpp and the registry table in "
       "docs/ROBUSTNESS.md must match exactly"},
      {"trace-macro-pure",
       "SERELIN_SPAN/SERELIN_COUNT arguments must be side-effect free: the "
       "macros compile out under SERELIN_TRACE=OFF, so ++/--/assignments "
       "in arguments would change behavior between builds"},
      {"header-self-sufficient",
       "every src/**/*.hpp must compile on its own (include-what-you-use "
       "hygiene); checked with one -fsyntax-only compile per header"},
      {"lock-order-cycle",
       "the static mutex-acquisition graph (MutexLock nesting, "
       "SERELIN_REQUIRES preconditions, and calls made while holding a "
       "lock) must be acyclic — a cycle is a latent deadlock "
       "(docs/PARALLELISM.md)"},
      {"deadline-poll-coverage",
       "every unbounded loop in src/{core,timing,ser} and the serve "
       "dispatcher that performs indexed work must reach a "
       "Deadline/CancelToken poll, directly or through its callees — "
       "otherwise cancellation and deadline slicing cannot interrupt it"},
      {"checkpoint-section-pairing",
       "every checkpoint section name written (sections.emplace_back / "
       "with_section) must have a consumer (<image>.find) on some restore "
       "path, and every consumed section must have a writer — an unpaired "
       "name is dead weight or a restore that can never fire "
       "(docs/CRASH_SAFETY.md)"},
      {"counter-registry",
       "Counter enumerators, counter_name() strings, the "
       "docs/OBSERVABILITY.md counter registry table, and BENCH_*.json "
       "counter keys must agree — the counters are a documented, "
       "machine-checked contract"},
      {"protocol-schema",
       "every protocol field src/serve reads or writes must appear in the "
       "docs/SERVING.md field registry tables, and every documented field "
       "must be used — the wire schema is a documented contract"},
      {"unused-nolint",
       "a NOLINT(serelin-<rule>) marker that suppresses nothing is stale "
       "and must be removed — dead suppressions hide real regressions "
       "(this rule cannot itself be suppressed)"},
  };
  return kRules;
}

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : rule_catalogue())
    if (id == r.id) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Reporter

Reporter::Reporter(const std::vector<SourceFile>& files) : files_(&files) {
  for (const SourceFile& f : files) by_rel_.emplace(f.rel, &f);
}

void Reporter::report(const std::string& rel, int line,
                      const std::string& rule, std::string message) {
  const auto it = by_rel_.find(rel);
  if (it != by_rel_.end()) {
    const SourceFile& f = *it->second;
    if (line >= 1 && line <= static_cast<int>(f.raw.size()) &&
        nolint_suppressed(f.raw[static_cast<std::size_t>(line - 1)], rule)) {
      used_.emplace(rel, line);
      return;
    }
  }
  findings_.push_back({rel, line, rule, std::move(message)});
}

void Reporter::report_raw(std::string file, int line, std::string rule,
                          std::string message) {
  findings_.push_back(
      {std::move(file), line, std::move(rule), std::move(message)});
}

void Reporter::mark_used(const std::string& rel, int line) {
  used_.emplace(rel, line);
}

void Reporter::flag_unused_nolints(const std::set<std::string>& active_rules) {
  if (active_rules.count("unused-nolint") == 0) return;
  for (const SourceFile& f : *files_) {
    for (std::size_t li = 0; li < f.raw.size(); ++li) {
      const NolintMarker m = parse_nolint(f.raw[li]);
      if (!m.present || m.bare) continue;
      // Only markers that name at least one rule this run actually
      // exercised can be judged stale.
      bool judgeable = false;
      for (const std::string& r : m.rules)
        if (known_rule(r) && r != "unused-nolint" && active_rules.count(r))
          judgeable = true;
      if (!judgeable) continue;
      if (used_.count({f.rel, static_cast<int>(li + 1)})) continue;
      std::string listed;
      for (const std::string& r : m.rules) {
        if (!listed.empty()) listed += ", ";
        listed += "serelin-" + r;
      }
      report_raw(f.rel, static_cast<int>(li + 1), "unused-nolint",
                 "NOLINT(" + listed +
                     ") suppresses nothing on this line; remove the stale "
                     "marker");
    }
  }
}

// ---------------------------------------------------------------------------
// Per-file lexical rules (ported from the original serelin_lint scanner)

namespace {

bool random_exempt(const std::string& rel) {
  return rel == "src/support/rng.hpp" || rel == "src/support/rng.cpp";
}

bool wallclock_exempt(const std::string& rel) {
  return rel == "src/support/stopwatch.hpp" || random_exempt(rel);
}

}  // namespace

void rule_banned_tokens(const SourceFile& f, Reporter& rep) {
  static const struct {
    const char* token;
    bool call_only;  // require a '(' after the token
  } kRandom[] = {
      {"rand", true},          // std::rand() / ::rand()
      {"srand", false},        //
      {"random_device", false} // std::random_device
  };
  static const char* const kWallclock[] = {
      "system_clock", "high_resolution_clock", "gettimeofday", "mktime"};

  if (!random_exempt(f.rel)) {
    for (std::size_t li = 0; li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      for (const auto& t : kRandom) {
        std::size_t pos = find_token(line, t.token);
        if (pos == std::string::npos) continue;
        if (t.call_only) {
          const std::size_t after =
              skip_spaces(line, pos + std::string(t.token).size());
          if (after >= line.size() || line[after] != '(') continue;
        }
        rep.report(f.rel, static_cast<int>(li + 1), "no-unseeded-random",
                   std::string("'") + t.token +
                       "' bypasses serelin::Rng; draw from an explicit "
                       "stream_rng(seed, index) instead");
      }
    }
  }
  if (!wallclock_exempt(f.rel)) {
    for (std::size_t li = 0; li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      for (const char* token : kWallclock) {
        if (find_token(line, token) == std::string::npos) continue;
        rep.report(f.rel, static_cast<int>(li + 1), "no-wallclock",
                   std::string("'") + token +
                       "' reads the wall clock; use Stopwatch "
                       "(src/support/stopwatch.hpp) or a Deadline");
      }
      // time(nullptr) / time(NULL) / time(0): the classic seed source.
      std::size_t pos = find_token(line, "time");
      while (pos != std::string::npos) {
        std::size_t i = skip_spaces(line, pos + 4);
        if (i < line.size() && line[i] == '(') {
          i = skip_spaces(line, i + 1);
          if (line.compare(i, 7, "nullptr") == 0 ||
              line.compare(i, 4, "NULL") == 0 ||
              (i < line.size() && line[i] == '0')) {
            rep.report(f.rel, static_cast<int>(li + 1), "no-wallclock",
                       "'time(...)' reads the wall clock; seeds must be "
                       "explicit (determinism contract)");
          }
        }
        pos = find_token(line, "time", pos + 1);
      }
    }
  }
}

namespace {

/// The dense engine's own implementation, the query interface that wraps
/// it, and the oracle-side cross-checks (which exist to compare engines)
/// may name WdMatrices; nothing else in src/ or tools/ may.
bool wd_dense_exempt(const std::string& rel) {
  return rel == "src/core/wd_matrices.hpp" ||
         rel == "src/core/wd_matrices.cpp" ||
         rel == "src/core/wd_query.hpp" || rel == "src/core/wd_query.cpp" ||
         rel.rfind("src/check/", 0) == 0;
}

}  // namespace

void rule_wd_dense_gated(const SourceFile& f, Reporter& rep) {
  if (wd_dense_exempt(f.rel)) return;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    if (find_token(f.code[li], "WdMatrices") == std::string::npos) continue;
    rep.report(f.rel, static_cast<int>(li + 1), "wd-dense-gated",
               "'WdMatrices' is the Θ(|V|²) dense engine; construct W/D "
               "access through make_wd_query so large circuits take the "
               "lazy path (docs/SPARSE_WD.md)");
  }
}

namespace {

/// Only the durable-write substrate itself may open files for writing;
/// everything else goes through atomic_write_file / JournalWriter.
bool artifact_write_exempt(const std::string& rel) {
  return rel == "src/support/atomic_io.cpp" ||
         rel == "src/support/atomic_io.hpp";
}

}  // namespace

void rule_bare_artifact_write(const SourceFile& f, Reporter& rep) {
  if (artifact_write_exempt(f.rel)) return;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    bool hit = find_token(line, "ofstream") != std::string::npos;
    if (!hit && find_token(line, "fopen") != std::string::npos) {
      // Mode literals are blanked in the stripped text; consult the raw
      // lines. The mode argument may sit on a continuation line, so scan
      // a short window from the call; the stripped line tells us when the
      // call's parens actually close (a ')' in a trailing comment must
      // not end the window). Read-side fopen ("r", "rb") stays legal —
      // only a write or append mode can tear an artifact.
      for (std::size_t lj = li; lj < f.raw.size() && lj < li + 3; ++lj) {
        hit = f.raw[lj].find("\"w") != std::string::npos ||
              f.raw[lj].find("\"a") != std::string::npos;
        if (hit || f.code[lj].find(')') != std::string::npos) break;
      }
    }
    if (hit)
      rep.report(f.rel, static_cast<int>(li + 1), "no-bare-artifact-write",
                 "bare file write; route artifacts through atomic_write_file "
                 "or JournalWriter (support/atomic_io.hpp) so a crash cannot "
                 "leave a torn file (docs/ROBUSTNESS.md §11)");
  }
}

namespace {

bool in_reduction_dirs(const std::string& rel) {
  return rel.rfind("src/core/", 0) == 0 || rel.rfind("src/sim/", 0) == 0 ||
         rel.rfind("src/ser/", 0) == 0 || rel.rfind("src/check/", 0) == 0;
}

/// Collects identifiers declared in this file with an unordered_* type.
/// Heuristic and file-local by design (documented in STATIC_ANALYSIS.md):
/// cross-file aliasing is out of scope, but the guarded directories keep
/// their containers local, so this catches the real hazard.
std::set<std::string> unordered_names(const SourceFile& f) {
  std::set<std::string> names;
  for (const std::string& line : f.code) {
    std::size_t pos = line.find("unordered_");
    while (pos != std::string::npos) {
      std::size_t i = line.find('<', pos);
      if (i == std::string::npos) break;
      int depth = 0;
      for (; i < line.size(); ++i) {
        if (line[i] == '<') ++depth;
        if (line[i] == '>' && --depth == 0) break;
      }
      if (i >= line.size()) break;  // declaration continues on next line
      std::size_t j = skip_spaces(line, i + 1);
      while (j < line.size() && (line[j] == '&' || line[j] == '*')) ++j;
      j = skip_spaces(line, j);
      if (line.compare(j, 5, "const") == 0 && !ident_char(line[j + 5]))
        j = skip_spaces(line, j + 5);
      std::string name;
      while (j < line.size() && ident_char(line[j])) name += line[j++];
      if (!name.empty()) names.insert(name);
      pos = line.find("unordered_", i);
    }
  }
  return names;
}

}  // namespace

void rule_unordered_range_for(const SourceFile& f, Reporter& rep) {
  if (!in_reduction_dirs(f.rel)) return;
  const std::set<std::string> names = unordered_names(f);
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    const std::size_t fpos = find_token(line, "for");
    if (fpos == std::string::npos) continue;
    const std::size_t open = skip_spaces(line, fpos + 3);
    if (open >= line.size() || line[open] != '(') continue;
    // A range-for has a single ':' that is not part of '::'.
    std::size_t colon = std::string::npos;
    for (std::size_t i = open; i < line.size(); ++i) {
      if (line[i] != ':') continue;
      if (i + 1 < line.size() && line[i + 1] == ':') { ++i; continue; }
      if (i > 0 && line[i - 1] == ':') continue;
      colon = i;
      break;
    }
    if (colon == std::string::npos) continue;
    const std::size_t close = line.rfind(')');
    if (close == std::string::npos || close <= colon) continue;
    const std::string range = line.substr(colon + 1, close - colon - 1);
    bool hit = range.find("unordered_") != std::string::npos;
    for (const std::string& name : names)
      if (find_token(range, name) != std::string::npos) hit = true;
    if (hit)
      rep.report(f.rel, static_cast<int>(li + 1), "no-unordered-range-for",
                 "range-for over an unordered container: iteration order is "
                 "nondeterministic; iterate a sorted view or index order "
                 "instead (docs/PARALLELISM.md)");
  }
}

void rule_trace_macro_pure(const SourceFile& f, Reporter& rep) {
  if (f.rel == "src/support/trace.hpp" || f.rel == "src/support/metrics.hpp")
    return;  // the macro definitions themselves
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    for (const char* macro : {"SERELIN_SPAN", "SERELIN_COUNT"}) {
      const std::size_t pos = find_token(f.code[li], macro);
      if (pos == std::string::npos) continue;
      // Accumulate the argument text across lines until parens balance.
      std::string args;
      int depth = 0;
      bool started = false, done = false;
      for (std::size_t lj = li; lj < f.code.size() && lj < li + 6 && !done;
           ++lj) {
        const std::string& line = f.code[lj];
        for (std::size_t i = lj == li ? pos : 0; i < line.size(); ++i) {
          if (line[i] == '(') {
            ++depth;
            started = true;
            if (depth == 1) continue;
          }
          if (line[i] == ')' && started && --depth == 0) {
            done = true;
            break;
          }
          if (started && depth >= 1) args += line[i];
        }
        args += ' ';
      }
      bool impure = false;
      std::string why;
      for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        const char a = args[i], b = args[i + 1];
        if ((a == '+' && b == '+') || (a == '-' && b == '-')) {
          impure = true;
          why = "increment/decrement";
          break;
        }
        if (b == '=' && (a == '+' || a == '-' || a == '*' || a == '/' ||
                         a == '%' || a == '^' || a == '|' || a == '&')) {
          impure = true;
          why = "compound assignment";
          break;
        }
        if (a == '=' && b != '=' &&
            (i == 0 || (args[i - 1] != '=' && args[i - 1] != '!' &&
                        args[i - 1] != '<' && args[i - 1] != '>'))) {
          impure = true;
          why = "assignment";
          break;
        }
      }
      if (impure)
        rep.report(f.rel, static_cast<int>(li + 1), "trace-macro-pure",
                   std::string(macro) + " argument contains " + why +
                       "; instrumentation compiles out under "
                       "SERELIN_TRACE=OFF, so arguments must be pure");
    }
  }
}

// ---------------------------------------------------------------------------
// Tree-level registry passes

void pass_diag_codes(const TreeIndex& tree, const fs::path& root,
                     Reporter& rep) {
  const std::vector<RegistryEntry> enums =
      extract_enumerators(tree, "src/support/diag.hpp", "DiagCode");
  if (enums.empty()) return;  // fixture trees without a diag layer
  const auto names =
      extract_name_table(tree, "src/support/diag.cpp", "DiagCode");
  if (tree.find("src/support/diag.cpp") == nullptr) return;

  for (const RegistryEntry& e : enums) {
    if (names.count(e.name)) continue;
    rep.report("src/support/diag.hpp", e.line, "diag-code-name",
               "DiagCode::" + e.name +
                   " has no diag_code_name case in src/support/diag.cpp");
  }

  const fs::path doc_path = root / "docs" / "ROBUSTNESS.md";
  if (!fs::exists(doc_path)) return;
  const std::string doc = slurp(doc_path);
  for (const auto& [enumerator, entry] : names) {
    const auto& [name, line] = entry;
    // The taxonomy table backticks every code; a prose mention without
    // backticks does not count as documentation.
    if (doc.find("`" + name + "`") != std::string::npos) continue;
    rep.report("src/support/diag.cpp", line, "diag-code-documented",
               "diag code '" + name +
                   "' is not documented (backticked) in docs/ROBUSTNESS.md");
  }
}

void pass_exit_codes(const TreeIndex& tree, const fs::path& root,
                     Reporter& rep) {
  const fs::path doc_path = root / "docs" / "ROBUSTNESS.md";
  if (!fs::exists(doc_path)) return;

  // Exit codes any tool actually uses: literal `return NN;` / `exit(NN)`
  // with NN in the sysexits-style band the registry documents. Every
  // tools/*.cpp participates — the registry is one shared namespace, so a
  // new tool inventing an undocumented code (or reusing a documented one
  // for a different meaning) is exactly what this rule must catch.
  struct Use {
    std::string rel;
    int line;
  };
  std::map<int, Use> used;  // code -> first use
  bool any_tool = false;
  for (const SourceFile& f : *tree.files) {
    if (f.rel.rfind("tools/", 0) != 0 || !f.rel.ends_with(".cpp")) continue;
    any_tool = true;
    for (std::size_t li = 0; li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      for (const char* kw : {"return", "exit"}) {
        std::size_t pos = find_token(line, kw);
        while (pos != std::string::npos) {
          std::size_t i = skip_spaces(line, pos + std::string(kw).size());
          if (i < line.size() && line[i] == '(') i = skip_spaces(line, i + 1);
          std::string digits;
          while (i < line.size() &&
                 std::isdigit(static_cast<unsigned char>(line[i])))
            digits += line[i++];
          if (digits.size() == 2) {
            const int code = std::stoi(digits);
            if (code >= 64 && code <= 79)
              used.emplace(code, Use{f.rel, static_cast<int>(li + 1)});
          }
          pos = find_token(line, kw, pos + 1);
        }
      }
      // The interrupted exit travels as a named constant, not a literal
      // (SignalGuard::kExitInterrupted == 78): count it as a use so the
      // registry row for 78 is not flagged as dead.
      if (find_token(line, "kExitInterrupted") != std::string::npos &&
          find_token(line, "constexpr") == std::string::npos)
        used.emplace(78, Use{f.rel, static_cast<int>(li + 1)});
    }
  }
  if (!any_tool) return;

  // Documented codes: `| NN |` table rows in ROBUSTNESS.md.
  std::map<int, int> documented;  // code -> line
  const std::vector<std::string> doc = read_lines(doc_path);
  for (std::size_t li = 0; li < doc.size(); ++li) {
    const std::string& line = doc[li];
    std::size_t i = skip_spaces(line, 0);
    if (i >= line.size() || line[i] != '|') continue;
    i = skip_spaces(line, i + 1);
    std::string digits;
    while (i < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i])))
      digits += line[i++];
    i = skip_spaces(line, i);
    if (digits.size() == 2 && i < line.size() && line[i] == '|') {
      const int code = std::stoi(digits);
      if (code >= 64 && code <= 79)
        documented.emplace(code, static_cast<int>(li + 1));
    }
  }

  for (const auto& [code, use] : used) {
    if (documented.count(code)) continue;
    rep.report(use.rel, use.line, "exit-code-registry",
               "exit code " + std::to_string(code) +
                   " is not in the docs/ROBUSTNESS.md registry table");
  }
  for (const auto& [code, dline] : documented) {
    if (used.count(code)) continue;
    rep.report_raw("docs/ROBUSTNESS.md", dline, "exit-code-registry",
                   "documented exit code " + std::to_string(code) +
                       " is never produced by any tools/*.cpp");
  }
}

namespace {

/// kLpRelaxations -> lp-relaxations.
std::string kebab_of_enumerator(const std::string& e) {
  std::string out;
  for (std::size_t i = 1; i < e.size(); ++i) {
    const char c = e[i];
    if (std::isupper(static_cast<unsigned char>(c))) {
      if (i > 1) out += '-';
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      out += c;
    }
  }
  return out;
}

/// 1-based [first, last] line range of the section opened by the `## `
/// heading containing `title`, or {0, 0} when absent. The section ends
/// just before the next `## ` heading.
std::pair<int, int> doc_section(const std::vector<std::string>& lines,
                                const std::string& title) {
  int first = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].rfind("## ", 0) != 0) continue;
    if (first == 0) {
      if (lines[i].find(title) != std::string::npos)
        first = static_cast<int>(i + 1);
      continue;
    }
    return {first, static_cast<int>(i)};
  }
  return {first, first == 0 ? 0 : static_cast<int>(lines.size())};
}

}  // namespace

void pass_counter_registry(const TreeIndex& tree, const fs::path& root,
                           Reporter& rep) {
  std::vector<RegistryEntry> enums =
      extract_enumerators(tree, "src/support/metrics.hpp", "Counter");
  enums.erase(std::remove_if(enums.begin(), enums.end(),
                             [](const RegistryEntry& e) {
                               return e.name == "kCount";  // sentinel
                             }),
              enums.end());
  if (enums.empty()) return;  // fixture trees without a metrics layer
  const auto names =
      extract_name_table(tree, "src/support/metrics.cpp", "Counter");
  if (tree.find("src/support/metrics.cpp") == nullptr) return;

  std::set<std::string> name_set;
  for (const RegistryEntry& e : enums) {
    const auto it = names.find(e.name);
    if (it == names.end()) {
      rep.report("src/support/metrics.hpp", e.line, "counter-registry",
                 "Counter::" + e.name +
                     " has no counter_name case in src/support/metrics.cpp");
      continue;
    }
    const auto& [name, nline] = it->second;
    name_set.insert(name);
    const std::string expected = kebab_of_enumerator(e.name);
    if (name != expected)
      rep.report("src/support/metrics.cpp", nline, "counter-registry",
                 "counter name '" + name + "' does not match Counter::" +
                     e.name + " (expected '" + expected + "')");
  }

  const fs::path doc_path = root / "docs" / "OBSERVABILITY.md";
  if (fs::exists(doc_path)) {
    const std::vector<std::string> doc_lines = read_lines(doc_path);
    const auto [first, last] = doc_section(doc_lines, "Counter registry");
    if (first == 0) {
      rep.report_raw("docs/OBSERVABILITY.md", 1, "counter-registry",
                     "docs/OBSERVABILITY.md lacks a '## Counter registry' "
                     "section tabulating every counter");
    } else {
      std::set<std::string> documented;
      for (const RegistryEntry& row :
           extract_doc_table_idents(doc_path, "docs/OBSERVABILITY.md")) {
        if (row.line <= first || row.line > last) continue;
        documented.insert(row.name);
        if (!name_set.count(row.name))
          rep.report_raw("docs/OBSERVABILITY.md", row.line, "counter-registry",
                         "documented counter '" + row.name +
                             "' does not exist in src/support/metrics.hpp");
      }
      for (const RegistryEntry& e : enums) {
        const auto it = names.find(e.name);
        if (it == names.end()) continue;
        if (documented.count(it->second.first)) continue;
        rep.report("src/support/metrics.cpp", it->second.second,
                   "counter-registry",
                   "counter '" + it->second.first +
                       "' is missing from the docs/OBSERVABILITY.md counter "
                       "registry table");
      }
    }
  }

  // BENCH_*.json counters objects may only use registered counter names.
  std::vector<fs::path> benches;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string fn = entry.path().filename().string();
    if (fn.rfind("BENCH_", 0) == 0 && fn.ends_with(".json"))
      benches.push_back(entry.path());
  }
  std::sort(benches.begin(), benches.end());
  for (const fs::path& b : benches) {
    std::set<std::string> seen;
    for (const RegistryEntry& key :
         extract_bench_counter_keys(b, b.filename().string())) {
      if (name_set.count(key.name) || !seen.insert(key.name).second) continue;
      rep.report_raw(key.file, key.line, "counter-registry",
                     "BENCH counter key '" + key.name +
                         "' is not a registered counter name "
                         "(src/support/metrics.cpp)");
    }
  }
}

void pass_protocol_schema(const TreeIndex& tree, const fs::path& root,
                          Reporter& rep) {
  const std::vector<RegistryEntry> fields = extract_protocol_fields(tree);
  if (fields.empty()) return;  // no serve layer in this tree
  const fs::path doc_path = root / "docs" / "SERVING.md";
  if (!fs::exists(doc_path)) return;

  std::map<std::string, RegistryEntry> first_use;  // field -> first site
  for (const RegistryEntry& e : fields)
    first_use.emplace(e.name, e);  // files are scanned in sorted order

  const std::vector<std::string> doc_lines = read_lines(doc_path);
  const auto [first, last] = doc_section(doc_lines, "Field registry");
  if (first == 0) {
    rep.report_raw("docs/SERVING.md", 1, "protocol-schema",
                   "docs/SERVING.md lacks a '## Field registry' section "
                   "tabulating the wire schema");
    return;
  }
  std::set<std::string> documented;
  for (const RegistryEntry& row :
       extract_doc_table_idents(doc_path, "docs/SERVING.md")) {
    if (row.line <= first || row.line > last) continue;
    documented.insert(row.name);
    if (!first_use.count(row.name))
      rep.report_raw("docs/SERVING.md", row.line, "protocol-schema",
                     "documented protocol field '" + row.name +
                         "' is never used by src/serve");
  }
  for (const auto& [name, e] : first_use) {
    if (documented.count(name)) continue;
    rep.report(e.file, e.line, "protocol-schema",
               "protocol field '" + name +
                   "' is not documented in the docs/SERVING.md field "
                   "registry");
  }
}

void pass_checkpoint_pairing(const TreeIndex& tree, const fs::path& root,
                             Reporter& rep) {
  const SectionUses uses = extract_checkpoint_sections(tree);
  if (uses.emitted.empty() && uses.consumed.empty()) return;

  // Restore paths live in src/ and tools/, but tests also legitimately
  // complete a pair (a section written by production code and decoded by
  // its crash-safety test counts as consumed).
  std::set<std::string> consumed_names;
  for (const RegistryEntry& c : uses.consumed) consumed_names.insert(c.name);
  const fs::path tests_dir = root / "tests";
  if (fs::exists(tests_dir)) {
    std::vector<fs::path> test_files;
    for (const auto& entry : fs::recursive_directory_iterator(tests_dir))
      if (entry.is_regular_file() &&
          entry.path().extension().string() == ".cpp")
        test_files.push_back(entry.path());
    std::sort(test_files.begin(), test_files.end());
    for (const fs::path& t : test_files)
      for (const RegistryEntry& c : extract_section_finds(
               t, t.lexically_relative(root).generic_string()))
        consumed_names.insert(c.name);
  }

  std::map<std::string, RegistryEntry> emitted;  // name -> first emit site
  for (const RegistryEntry& e : uses.emitted) emitted.emplace(e.name, e);

  for (const auto& [name, e] : emitted) {
    if (consumed_names.count(name)) continue;
    rep.report(e.file, e.line, "checkpoint-section-pairing",
               "checkpoint section '" + name +
                   "' is written but no restore path ever consumes it");
  }
  std::set<std::string> reported;
  for (const RegistryEntry& c : uses.consumed) {
    if (emitted.count(c.name) || !reported.insert(c.name).second) continue;
    rep.report(c.file, c.line, "checkpoint-section-pairing",
               "checkpoint restore reads section '" + c.name +
                   "' but no writer ever emits it");
  }
}

// ---------------------------------------------------------------------------
// Flow-aware pass: lock-order-cycle

namespace {

/// STL-ish member names are never linked through the lexical call graph:
/// a unique tree-defined function that happens to share a name with a
/// standard container method (e.g. `insert`) would otherwise claim every
/// `map.insert(...)` call site in the tree.
bool common_method_name(const std::string& s) {
  static const std::set<std::string> kCommon = {
      "insert",     "erase",        "find",       "count",    "push_back",
      "pop_back",   "push_front",   "pop_front",  "emplace",  "emplace_back",
      "emplace_front", "clear",     "size",       "empty",    "begin",
      "end",        "at",           "front",      "back",     "reset",
      "get",        "release",      "swap",       "push",     "pop",
      "top",        "str",          "c_str",      "data",     "substr",
      "append",     "resize",       "reserve",    "lock",     "unlock",
      "try_lock",   "load",         "store",      "exchange", "fetch_add",
      "value",      "value_or",     "has_value",  "min",      "max",
      "abs",        "move",         "forward",    "to_string", "make_unique",
      "make_shared", "run",         "join",       "detach"};
  return kCommon.count(s) > 0;
}

/// Resolves a call site to the unique tree-defined function with that
/// name, or nullptr (ambiguous, library, or blacklisted names resolve to
/// nothing — under-approximation by design).
const FunctionRef* link_call(const TreeIndex& tree, const CallSite& c) {
  if (common_method_name(c.callee)) return nullptr;
  const auto it = tree.functions_by_name.find(c.callee);
  if (it == tree.functions_by_name.end() || it->second.size() != 1)
    return nullptr;
  return &it->second.front();
}

/// Resolves a MutexLock / SERELIN_REQUIRES expression to a mutex identity
/// key; "" when it cannot be resolved (then the site is dropped, never
/// guessed).
std::string resolve_mutex_expr(const TreeIndex& tree, int file_idx,
                               const std::string& expr, int fn_idx) {
  // Parse the expression as an optional deref prefix plus a '.'/'->'
  // joined identifier chain; anything else is unresolvable.
  std::vector<std::string> chain;
  std::size_t i = 0;
  const std::size_t n = expr.size();
  while (i < n && (expr[i] == '*' || expr[i] == '&' ||
                   std::isspace(static_cast<unsigned char>(expr[i]))))
    ++i;
  while (i < n) {
    if (!ident_char(expr[i])) return "";
    std::string id;
    while (i < n && ident_char(expr[i])) id += expr[i++];
    chain.push_back(id);
    while (i < n && std::isspace(static_cast<unsigned char>(expr[i]))) ++i;
    if (i >= n) break;
    if (expr[i] == '.') {
      ++i;
    } else if (expr[i] == '-' && i + 1 < n && expr[i + 1] == '>') {
      i += 2;
    } else {
      return "";
    }
    while (i < n && std::isspace(static_cast<unsigned char>(expr[i]))) ++i;
  }
  if (chain.empty()) return "";
  if (chain.front() == "this") chain.erase(chain.begin());
  if (chain.empty()) return "";
  const std::string& last = chain.back();
  const FileIndex& ix = tree.indexes[static_cast<std::size_t>(file_idx)];
  const std::string& rel = ix.file->rel;

  if (chain.size() == 1) {
    // Function-local declaration in the same function.
    for (const MutexDecl& m : ix.mutexes)
      if (m.local && m.name == last && fn_idx >= 0 && m.function == fn_idx)
        return m.key;
    // Member of the enclosing method's record.
    if (fn_idx >= 0) {
      const std::string& rec =
          ix.functions[static_cast<std::size_t>(fn_idx)].record;
      if (!rec.empty()) {
        const std::string key = rec + "::" + last;
        if (tree.mutex_by_key.count(key)) return key;
      }
    }
    // File-scope global in the same file.
    for (const MutexDecl& m : ix.mutexes)
      if (!m.local && m.record.empty() && m.name == last) return m.key;
    // Unique global across the tree (header-declared).
    const MutexDecl* found = nullptr;
    for (const FileIndex& other : tree.indexes)
      for (const MutexDecl& m : other.mutexes)
        if (!m.local && m.record.empty() && m.name == last) {
          if (found != nullptr) return "";
          found = &m;
        }
    return found != nullptr ? found->key : "";
  }

  // Receiver chain: resolve through record members named `last`. Prefer a
  // record defined in this file; otherwise require tree-wide uniqueness.
  const auto it = tree.members_by_name.find(last);
  if (it == tree.members_by_name.end()) return "";
  const MutexDecl* same_file = nullptr;
  bool same_file_unique = true;
  for (const MutexDecl* m : it->second)
    if (m->key.rfind(rel + "::", 0) == 0) {
      if (same_file != nullptr) same_file_unique = false;
      same_file = m;
    }
  if (same_file != nullptr && same_file_unique) return same_file->key;
  if (it->second.size() == 1) return it->second.front()->key;
  return "";
}

struct HoldRegion {
  std::string key;
  std::size_t begin = 0, end = 0;
  int file = -1;
  int line = 0;
};

struct LockEdge {
  std::string from, to;
  std::string file;  // witness site
  int line = 0;
  std::string via;   // callee name for call-graph edges, "" for lexical
};

}  // namespace

void pass_lock_order(const TreeIndex& tree, Reporter& rep) {
  const std::size_t nfiles = tree.indexes.size();

  // Resolve every acquisition site once.
  std::vector<std::vector<std::string>> lock_keys(nfiles);
  for (std::size_t fi = 0; fi < nfiles; ++fi) {
    const FileIndex& ix = tree.indexes[fi];
    lock_keys[fi].reserve(ix.locks.size());
    for (const LockSite& ls : ix.locks)
      lock_keys[fi].push_back(resolve_mutex_expr(
          tree, static_cast<int>(fi), ls.expr, ls.function));
  }

  // Direct acquisitions per function, then the transitive closure over the
  // lexical call graph (unique-name linking).
  std::map<std::pair<int, int>, std::set<std::string>> acquires;
  for (std::size_t fi = 0; fi < nfiles; ++fi) {
    const FileIndex& ix = tree.indexes[fi];
    for (std::size_t li = 0; li < ix.locks.size(); ++li)
      if (ix.locks[li].function >= 0 && !lock_keys[fi][li].empty())
        acquires[{static_cast<int>(fi), ix.locks[li].function}].insert(
            lock_keys[fi][li]);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t fi = 0; fi < nfiles; ++fi) {
      const FileIndex& ix = tree.indexes[fi];
      for (const CallSite& c : ix.calls) {
        if (c.function < 0) continue;
        const FunctionRef* g = link_call(tree, c);
        if (g == nullptr) continue;
        const auto git = acquires.find({g->file, g->fn});
        if (git == acquires.end()) continue;
        auto& mine = acquires[{static_cast<int>(fi), c.function}];
        for (const std::string& k : git->second)
          if (mine.insert(k).second) changed = true;
      }
    }
  }

  // Hold regions: every MutexLock's RAII extent, plus whole function
  // bodies for SERELIN_REQUIRES preconditions (the caller holds the lock
  // across the body).
  std::vector<HoldRegion> regions;
  for (std::size_t fi = 0; fi < nfiles; ++fi) {
    const FileIndex& ix = tree.indexes[fi];
    for (std::size_t li = 0; li < ix.locks.size(); ++li)
      if (!lock_keys[fi][li].empty())
        regions.push_back({lock_keys[fi][li], ix.locks[li].off,
                           ix.locks[li].scope_close, static_cast<int>(fi),
                           ix.locks[li].line});
    for (std::size_t gi = 0; gi < ix.functions.size(); ++gi) {
      const Function& fn = ix.functions[gi];
      for (const std::string& expr : fn.requires_exprs) {
        const std::string key = resolve_mutex_expr(
            tree, static_cast<int>(fi), expr, static_cast<int>(gi));
        if (!key.empty())
          regions.push_back({key, fn.body_open, fn.body_close,
                             static_cast<int>(fi), fn.line});
      }
    }
  }

  // Edges: a lock acquired, or a lock-acquiring function called, inside a
  // hold region.
  std::vector<LockEdge> edges;
  for (const HoldRegion& r : regions) {
    const std::size_t fi = static_cast<std::size_t>(r.file);
    const FileIndex& ix = tree.indexes[fi];
    for (std::size_t li = 0; li < ix.locks.size(); ++li) {
      const LockSite& b = ix.locks[li];
      if (b.off <= r.begin || b.off >= r.end || lock_keys[fi][li].empty())
        continue;
      edges.push_back(
          {r.key, lock_keys[fi][li], ix.file->rel, b.line, ""});
    }
    for (const CallSite& c : ix.calls) {
      if (c.off <= r.begin || c.off >= r.end) continue;
      const FunctionRef* g = link_call(tree, c);
      if (g == nullptr) continue;
      const auto git = acquires.find({g->file, g->fn});
      if (git == acquires.end()) continue;
      for (const std::string& k : git->second)
        edges.push_back({r.key, k, ix.file->rel, c.line, c.callee});
    }
  }

  // Cycle detection: Tarjan SCCs over the acquisition digraph; any SCC
  // with more than one node — or a self-loop — is a latent deadlock.
  std::map<std::string, std::set<std::string>> adj;
  for (const LockEdge& e : edges) adj[e.from].insert(e.to);
  std::map<std::string, int> index_of, low_of;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  std::vector<std::set<std::string>> sccs;
  int counter = 0;
  // Iterative Tarjan (explicit frames keep deep chains safe).
  struct Frame {
    std::string node;
    std::vector<std::string> succ;
    std::size_t next = 0;
  };
  std::vector<std::string> nodes;
  for (const auto& [from, tos] : adj) {
    nodes.push_back(from);
    for (const std::string& t : tos)
      if (!adj.count(t)) nodes.push_back(t);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (const std::string& start : nodes) {
    if (index_of.count(start)) continue;
    std::vector<Frame> frames;
    const auto open_node = [&](const std::string& v) {
      index_of[v] = low_of[v] = counter++;
      stack.push_back(v);
      on_stack.insert(v);
      Frame fr;
      fr.node = v;
      const auto it = adj.find(v);
      if (it != adj.end())
        fr.succ.assign(it->second.begin(), it->second.end());
      frames.push_back(std::move(fr));
    };
    open_node(start);
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.next < fr.succ.size()) {
        const std::string& w = fr.succ[fr.next++];
        if (!index_of.count(w)) {
          open_node(w);
        } else if (on_stack.count(w)) {
          low_of[fr.node] = std::min(low_of[fr.node], index_of[w]);
        }
        continue;
      }
      if (low_of[fr.node] == index_of[fr.node]) {
        std::set<std::string> scc;
        while (true) {
          const std::string w = stack.back();
          stack.pop_back();
          on_stack.erase(w);
          scc.insert(w);
          if (w == fr.node) break;
        }
        sccs.push_back(std::move(scc));
      }
      const std::string done = fr.node;
      frames.pop_back();
      if (!frames.empty())
        low_of[frames.back().node] =
            std::min(low_of[frames.back().node], low_of[done]);
    }
  }

  for (const std::set<std::string>& scc : sccs) {
    bool cyclic = scc.size() > 1;
    if (!cyclic) {
      const std::string& only = *scc.begin();
      const auto it = adj.find(only);
      cyclic = it != adj.end() && it->second.count(only) > 0;
    }
    if (!cyclic) continue;
    // Witnesses: edges inside the SCC, lexically ordered.
    std::vector<const LockEdge*> inside;
    for (const LockEdge& e : edges)
      if (scc.count(e.from) && scc.count(e.to) &&
          (scc.size() > 1 || e.from == e.to))
        inside.push_back(&e);
    std::sort(inside.begin(), inside.end(),
              [](const LockEdge* a, const LockEdge* b) {
                return std::tie(a->file, a->line, a->from, a->to) <
                       std::tie(b->file, b->line, b->from, b->to);
              });
    inside.erase(std::unique(inside.begin(), inside.end(),
                             [](const LockEdge* a, const LockEdge* b) {
                               return a->from == b->from && a->to == b->to;
                             }),
                 inside.end());
    if (inside.empty()) continue;
    std::string desc;
    for (const LockEdge* e : inside) {
      if (!desc.empty()) desc += ", ";
      desc += "'" + e->from + "' then '" + e->to + "' (" + e->file + ":" +
              std::to_string(e->line) +
              (e->via.empty() ? "" : " via " + e->via + "()") + ")";
    }
    const LockEdge* w = inside.front();
    rep.report(w->file, w->line, "lock-order-cycle",
               scc.size() == 1
                   ? "mutex '" + w->from +
                         "' is re-acquired while already held (MutexLock "
                         "is not recursive): " + desc
                   : "mutex acquisition order cycle: " + desc +
                         "; nested acquisitions must follow one global "
                         "order");
  }
}

// ---------------------------------------------------------------------------
// Flow-aware pass: deadline-poll-coverage

namespace {

bool deadline_target(const std::string& rel) {
  return rel.rfind("src/core/", 0) == 0 || rel.rfind("src/timing/", 0) == 0 ||
         rel.rfind("src/ser/", 0) == 0 || rel == "src/serve/server.cpp";
}

/// True when the text region contains direct poll evidence: an identifier
/// that names a cancellation carrier (deadline/cancel/token/stop/poller),
/// or a condition-variable wait (a cancellation point in this codebase).
bool polls_directly(const FileIndex& ix, std::size_t begin, std::size_t end) {
  const std::string& text = ix.text;
  std::size_t i = begin;
  while (i < end && i < text.size()) {
    if (!ident_char(text[i])) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < text.size() && ident_char(text[j])) ++j;
    const std::string id = text.substr(i, j - i);
    if (deadlineish(id) || id == "wait" || id == "wait_for") return true;
    i = j;
  }
  return false;
}

}  // namespace

void pass_deadline_poll(const TreeIndex& tree, Reporter& rep) {
  const std::size_t nfiles = tree.indexes.size();

  // Per-function facts, then transitive closure over unique-name calls:
  // polls[f] — f's body (or a callee's) reaches poll evidence;
  // works[f] — f's body (or a callee's) contains a loop.
  std::map<std::pair<int, int>, bool> polls, works;
  for (std::size_t fi = 0; fi < nfiles; ++fi) {
    const FileIndex& ix = tree.indexes[fi];
    for (std::size_t gi = 0; gi < ix.functions.size(); ++gi) {
      const Function& fn = ix.functions[gi];
      const std::pair<int, int> key{static_cast<int>(fi),
                                    static_cast<int>(gi)};
      polls[key] = polls_directly(ix, fn.body_open, fn.body_close);
      works[key] = false;
    }
    for (const Loop& lp : ix.loops)
      if (lp.function >= 0)
        works[{static_cast<int>(fi), lp.function}] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t fi = 0; fi < nfiles; ++fi) {
      const FileIndex& ix = tree.indexes[fi];
      for (const CallSite& c : ix.calls) {
        if (c.function < 0) continue;
        const FunctionRef* g = link_call(tree, c);
        if (g == nullptr) continue;
        const std::pair<int, int> me{static_cast<int>(fi), c.function};
        const std::pair<int, int> them{g->file, g->fn};
        if (polls[them] && !polls[me]) polls[me] = changed = true;
        if (works[them] && !works[me]) works[me] = changed = true;
      }
    }
  }

  for (std::size_t fi = 0; fi < nfiles; ++fi) {
    const FileIndex& ix = tree.indexes[fi];
    if (!deadline_target(ix.file->rel)) continue;
    for (const Loop& lp : ix.loops) {
      if (lp.kind == Loop::Kind::kCountingFor ||
          lp.kind == Loop::Kind::kRangeFor)
        continue;  // structurally bounded
      // Region: loop header (condition included) through body end.
      const std::size_t begin =
          ix.line_off[static_cast<std::size_t>(lp.line - 1)];
      const std::size_t end = lp.body_end;
      if (polls_directly(ix, begin, end)) continue;
      // Container-drain loops — `while (!stack.empty())` and friends —
      // are this codebase's bounded DFS/worklist/heap traversals: they
      // terminate when the container empties, so they are not the
      // open-ended solve loops this rule exists for.
      {
        const std::string header =
            ix.text.substr(begin, lp.body_begin > begin
                                      ? lp.body_begin - begin
                                      : 0);
        const std::size_t e = header.find(".empty(");
        if (e != std::string::npos &&
            header.rfind('!', e) != std::string::npos)
          continue;
      }
      bool does_work = false, reaches_poll = false;
      for (const CallSite& c : ix.calls) {
        if (c.off <= begin || c.off >= end) continue;
        const FunctionRef* g = link_call(tree, c);
        if (g == nullptr) continue;
        const std::pair<int, int> them{g->file, g->fn};
        if (works.at(them)) does_work = true;
        if (polls.at(them)) reaches_poll = true;
      }
      // A nested loop inside the body is indexed work even without a
      // linked call.
      for (const Loop& inner : ix.loops)
        if (inner.body_begin > lp.body_begin && inner.body_end < end)
          does_work = true;
      if (does_work && !reaches_poll) {
        const char* what = lp.kind == Loop::Kind::kWhile
                               ? "while"
                               : lp.kind == Loop::Kind::kDo ? "do" : "for(;;)";
        rep.report(ix.file->rel, lp.line, "deadline-poll-coverage",
                   std::string("unbounded ") + what +
                       " loop performs indexed work but never reaches a "
                       "Deadline/CancelToken poll; poll inside the loop or "
                       "forward a deadline into its callees");
      }
    }
  }
}

}  // namespace serelin::analysis
