#include "analysis/registry.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace serelin::analysis {

namespace fs = std::filesystem;

namespace {

bool name_char(char c) {
  return std::islower(static_cast<unsigned char>(c)) ||
         std::isdigit(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

/// Extracts the double-quoted token starting at `raw[q]` (the opening
/// quote). Returns "" when the contents are not a plain registry-style
/// name (lowercase/digits/underscore/dash only).
std::string quoted_name(const std::string& raw, std::size_t q) {
  std::size_t i = q + 1;
  std::string name;
  while (i < raw.size() && raw[i] != '"') {
    if (!name_char(raw[i])) return "";
    name += raw[i];
    ++i;
  }
  if (i >= raw.size() || name.empty()) return "";
  return name;
}

bool includes_header(const SourceFile& f, const std::string& suffix) {
  for (const std::string& inc : f.includes) {
    if (inc.size() < suffix.size()) continue;
    if (inc.compare(inc.size() - suffix.size(), suffix.size(), suffix) == 0)
      return true;
  }
  return false;
}

}  // namespace

const FileIndex* TreeIndex::find(const std::string& rel) const {
  for (const FileIndex& ix : indexes)
    if (ix.file->rel == rel) return &ix;
  return nullptr;
}

TreeIndex build_tree_index(const std::vector<SourceFile>& files) {
  TreeIndex tree;
  tree.files = &files;
  tree.indexes.reserve(files.size());
  for (const SourceFile& f : files) tree.indexes.push_back(build_index(f));
  for (std::size_t fi = 0; fi < tree.indexes.size(); ++fi) {
    const FileIndex& ix = tree.indexes[fi];
    for (std::size_t gi = 0; gi < ix.functions.size(); ++gi)
      tree.functions_by_name[ix.functions[gi].name].push_back(
          {static_cast<int>(fi), static_cast<int>(gi)});
    for (const MutexDecl& m : ix.mutexes) {
      tree.mutex_by_key.emplace(m.key, &m);
      if (!m.record.empty()) tree.members_by_name[m.name].push_back(&m);
    }
  }
  return tree;
}

std::vector<RegistryEntry> extract_enumerators(const TreeIndex& tree,
                                               const std::string& rel,
                                               const std::string& enum_name) {
  std::vector<RegistryEntry> out;
  const FileIndex* ix = tree.find(rel);
  if (ix == nullptr) return out;
  const SourceFile& f = *ix->file;
  const std::string opener = "enum class " + enum_name;
  bool in_enum = false;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    if (!in_enum) {
      if (line.find(opener) != std::string::npos) in_enum = true;
      continue;
    }
    if (line.find("};") != std::string::npos) break;
    // Enumerators are k-prefixed identifiers.
    for (std::size_t i = 0; i < line.size();) {
      if (!ident_char(line[i])) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < line.size() && ident_char(line[j])) ++j;
      const std::string word = line.substr(i, j - i);
      if (word.size() > 1 && word[0] == 'k' &&
          std::isupper(static_cast<unsigned char>(word[1])))
        out.push_back({word, rel, static_cast<int>(li + 1)});
      i = j;
    }
  }
  return out;
}

std::map<std::string, std::pair<std::string, int>> extract_name_table(
    const TreeIndex& tree, const std::string& rel,
    const std::string& enum_name) {
  std::map<std::string, std::pair<std::string, int>> out;
  const FileIndex* ix = tree.find(rel);
  if (ix == nullptr) return out;
  const SourceFile& f = *ix->file;
  const std::string prefix = "case " + enum_name + "::";
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::size_t cpos = f.code[li].find(prefix);
    if (cpos == std::string::npos) continue;
    std::size_t i = cpos + prefix.size();
    std::string enumerator;
    while (i < f.code[li].size() && ident_char(f.code[li][i]))
      enumerator += f.code[li][i++];
    if (enumerator.empty()) continue;
    // The stable name is on a `return "name";` within the next 3 raw lines.
    for (std::size_t lj = li; lj < f.raw.size() && lj < li + 3; ++lj) {
      const std::size_t rpos = f.raw[lj].find("return \"");
      if (rpos == std::string::npos) continue;
      const std::string name = quoted_name(f.raw[lj], rpos + 7);
      if (!name.empty())
        out[enumerator] = {name, static_cast<int>(lj + 1)};
      break;
    }
  }
  return out;
}

SectionUses extract_checkpoint_sections(const TreeIndex& tree) {
  SectionUses uses;
  for (const FileIndex& ix : tree.indexes) {
    const SourceFile& f = *ix.file;
    const bool consumer_tu = includes_header(f, "support/checkpoint.hpp");
    for (std::size_t li = 0; li < f.code.size(); ++li) {
      const std::string& code = f.code[li];
      const std::string& raw = f.raw[li];
      // Emitters: sections.emplace_back("x", ...) and with_section("x", ...).
      std::size_t p = std::string::npos;
      if (find_token(code, "sections") != std::string::npos &&
          (p = raw.find("emplace_back(\"")) != std::string::npos) {
        const std::string name = quoted_name(raw, p + 13);
        if (!name.empty())
          uses.emitted.push_back({name, f.rel, static_cast<int>(li + 1)});
      }
      if ((p = raw.find("with_section(\"")) != std::string::npos) {
        const std::string name = quoted_name(raw, p + 13);
        if (!name.empty())
          uses.emitted.push_back({name, f.rel, static_cast<int>(li + 1)});
      }
      // Consumers: <image>.find("x") in a TU that includes checkpoint.hpp.
      if (consumer_tu) {
        p = 0;
        while ((p = raw.find(".find(\"", p)) != std::string::npos) {
          const std::string name = quoted_name(raw, p + 6);
          if (!name.empty())
            uses.consumed.push_back({name, f.rel, static_cast<int>(li + 1)});
          p += 7;
        }
      }
    }
  }
  return uses;
}

std::vector<RegistryEntry> extract_section_finds(const fs::path& abs,
                                                 const std::string& rel) {
  std::vector<RegistryEntry> out;
  const std::vector<std::string> raw = read_lines(abs);
  for (std::size_t li = 0; li < raw.size(); ++li) {
    std::size_t p = 0;
    while ((p = raw[li].find(".find(\"", p)) != std::string::npos) {
      const std::string name = quoted_name(raw[li], p + 6);
      if (!name.empty()) out.push_back({name, rel, static_cast<int>(li + 1)});
      p += 7;
    }
  }
  return out;
}

std::vector<RegistryEntry> extract_protocol_fields(const TreeIndex& tree) {
  std::vector<RegistryEntry> out;
  static const char* const kAccessors[] = {
      "get_string(\"", "get_number(\"", "get_int(\"", "get_bool(\"",
      ".set(\"",       "fields.find(\""};
  for (const FileIndex& ix : tree.indexes) {
    const SourceFile& f = *ix.file;
    if (f.rel.compare(0, 10, "src/serve/") != 0) continue;
    for (std::size_t li = 0; li < f.raw.size(); ++li) {
      const std::string& raw = f.raw[li];
      for (const char* acc : kAccessors) {
        const std::string pat(acc);
        std::size_t p = 0;
        while ((p = raw.find(pat, p)) != std::string::npos) {
          const std::string name = quoted_name(raw, p + pat.size() - 1);
          if (!name.empty())
            out.push_back({name, f.rel, static_cast<int>(li + 1)});
          p += pat.size();
        }
      }
      // check_fields allowlists: an initializer list `{ "a", "b", ... }`
      // passed as an argument (the brace is preceded by '(' or ',').
      if (find_token(f.code[li], "check_fields") == std::string::npos)
        continue;
      std::string window;
      std::vector<std::size_t> window_line;  // line of each window char
      for (std::size_t lj = li; lj < f.raw.size() && lj < li + 8; ++lj) {
        for (char c : f.raw[lj]) {
          window += c;
          window_line.push_back(lj);
        }
        window += '\n';
        window_line.push_back(lj);
      }
      const std::size_t cf = window.find("check_fields");
      const std::size_t brace = window.find('{', cf);
      if (brace == std::string::npos) continue;
      std::size_t prev = brace;
      while (prev > 0 &&
             std::isspace(static_cast<unsigned char>(window[prev - 1])))
        --prev;
      if (prev == 0 || (window[prev - 1] != '(' && window[prev - 1] != ','))
        continue;
      for (std::size_t i = brace; i < window.size() && window[i] != '}'; ++i) {
        if (window[i] != '"') continue;
        const std::string name = quoted_name(window, i);
        if (!name.empty()) {
          out.push_back({name, f.rel,
                         static_cast<int>(window_line[i] + 1)});
          i += name.size() + 1;
        }
      }
    }
  }
  return out;
}

std::vector<RegistryEntry> extract_doc_table_idents(const fs::path& doc,
                                                    const std::string& rel) {
  std::vector<RegistryEntry> out;
  const std::vector<std::string> raw = read_lines(doc);
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    std::size_t i = skip_spaces(line, 0);
    if (i >= line.size() || line[i] != '|') continue;
    i = skip_spaces(line, i + 1);
    if (i >= line.size() || line[i] != '`') continue;
    std::size_t j = i + 1;
    std::string name;
    while (j < line.size() && line[j] != '`') name += line[j++];
    if (j >= line.size() || name.empty()) continue;
    // The cell must hold exactly the backticked name.
    std::size_t k = skip_spaces(line, j + 1);
    if (k >= line.size() || line[k] != '|') continue;
    bool ok = true;
    for (char c : name)
      if (!ident_char(c) && c != '-') ok = false;
    if (ok) out.push_back({name, rel, static_cast<int>(li + 1)});
  }
  return out;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<RegistryEntry> extract_bench_counter_keys(const fs::path& abs,
                                                      const std::string& rel) {
  std::vector<RegistryEntry> out;
  const std::vector<std::string> raw = read_lines(abs);
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    const std::size_t c = line.find("\"counters\"");
    if (c == std::string::npos) continue;
    const std::size_t brace = line.find('{', c);
    if (brace == std::string::npos) continue;
    for (std::size_t i = brace + 1; i < line.size() && line[i] != '}'; ++i) {
      if (line[i] != '"') continue;
      const std::string name = quoted_name(line, i);
      if (name.empty()) break;
      out.push_back({name, rel, static_cast<int>(li + 1)});
      i += name.size() + 1;
      // Skip the value to the next ',' or '}'.
      while (i + 1 < line.size() && line[i + 1] != ',' && line[i + 1] != '}')
        ++i;
    }
  }
  return out;
}

}  // namespace serelin::analysis
