// Per-TU structural index for the whole-program contract analyzer.
//
// Built on the stripped text of one SourceFile (analysis/source.hpp), the
// index recovers the lexical structure the flow-aware passes need: brace
// scopes classified as namespace/record/function/lambda/control bodies,
// function definitions with their extents, `Mutex` declarations with
// scope-qualified identities, `MutexLock` acquisition sites with their RAII
// extents, `SERELIN_REQUIRES` annotations, call sites with receiver chains,
// and loops classified by boundedness.
//
// This is a *lexical* index, not an AST: it is exact on the idioms this
// codebase actually uses (docs/STATIC_ANALYSIS.md documents the contract)
// and degrades by under-approximation — an expression it cannot resolve is
// dropped, never guessed — so passes built on it favor false negatives
// over false positives.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/source.hpp"

namespace serelin::analysis {

/// One classified brace scope [open, close] (offsets into `text`).
struct Scope {
  enum class Kind {
    kNamespace,
    kAnonNamespace,
    kRecord,
    kFunction,
    kLambda,
    kControl,
    kOther,
  };
  Kind kind = Kind::kOther;
  std::string name;       ///< record/namespace/function name when known
  std::size_t open = 0;   ///< offset of '{'
  std::size_t close = 0;  ///< offset of matching '}'
  int parent = -1;        ///< index of enclosing scope, -1 at top level
};

/// A function (or method) definition with a body in this TU.
struct Function {
  std::string name;        ///< unqualified name
  std::string record;      ///< enclosing/qualifying record key, "" for free
  int line = 0;            ///< line of the body's '{'
  std::size_t body_open = 0;
  std::size_t body_close = 0;
  std::vector<std::string> requires_exprs;  ///< SERELIN_REQUIRES arguments
};

/// A `Mutex m;` declaration. `key` is the tree-unique identity used by the
/// lock-order pass: Record::member for members (file-qualified when the
/// record lives in a .cpp), the bare name for globals (file-qualified in
/// anonymous namespaces), and file+function qualified for locals.
struct MutexDecl {
  std::string name;
  std::string key;
  std::string record;  ///< owning record key, "" for globals/locals
  int line = 0;
  bool local = false;  ///< declared inside a function body
  int function = -1;   ///< enclosing function for locals, -1 otherwise
};

/// A `MutexLock l(expr);` acquisition with its RAII extent.
struct LockSite {
  std::string expr;          ///< the constructor argument, verbatim tokens
  int line = 0;
  std::size_t off = 0;       ///< offset of the MutexLock token
  std::size_t scope_close = 0;  ///< end of the innermost enclosing scope
  int function = -1;         ///< index into FileIndex::functions, -1 if none
};

/// A call site `callee(...)` inside a function body.
struct CallSite {
  std::string callee;    ///< unqualified callee identifier
  std::string receiver;  ///< dotted receiver chain ("opt_.deadline"), "" if none
  int line = 0;
  std::size_t off = 0;        ///< offset of the callee token
  std::size_t args_open = 0;  ///< offset of '('
  std::size_t args_close = 0; ///< offset of matching ')'
  int function = -1;          ///< index into FileIndex::functions, -1 if none
};

/// A loop statement. Bounded kinds (counting/range for) terminate
/// structurally; unbounded kinds (while/do/for(;;)) are the ones the
/// deadline-poll-coverage pass must see a cancellation point in.
struct Loop {
  enum class Kind { kCountingFor, kRangeFor, kForever, kWhile, kDo };
  Kind kind = Kind::kCountingFor;
  int line = 0;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  int function = -1;  ///< index into FileIndex::functions, -1 if none
};

struct FileIndex {
  const SourceFile* file = nullptr;
  std::string text;                   ///< stripped lines joined with '\n',
                                      ///< preprocessor directives blanked
  std::vector<std::size_t> line_off;  ///< offset of each line start

  std::vector<Scope> scopes;
  std::vector<Function> functions;
  std::vector<MutexDecl> mutexes;
  std::vector<LockSite> locks;
  std::vector<CallSite> calls;
  std::vector<Loop> loops;

  /// 1-based line of an offset into `text`.
  int line_of(std::size_t off) const;
  /// Verbatim (raw) text for the line containing `off`.
  const std::string& raw_line_at(std::size_t off) const;
};

/// Builds the structural index for one file.
FileIndex build_index(const SourceFile& file);

/// True for identifiers that look like a cancellation/deadline carrier:
/// the name (case-insensitively) mentions deadline, cancel, token, stop,
/// or poller. Used by the deadline-poll-coverage pass to classify both
/// poll receivers (`deadline_.expired()`) and forwarding arguments
/// (`solve(rg, opt.deadline)`).
bool deadlineish(const std::string& ident);

}  // namespace serelin::analysis
