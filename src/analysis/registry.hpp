// Cross-TU symbol and registry database for the contract analyzer.
//
// `TreeIndex` aggregates the per-file structural indexes (analysis/index.hpp)
// into whole-program lookups: functions by unqualified name (for the
// lexical call graph the lock-order and deadline passes walk), mutex
// declarations by identity key and by member name. The extraction helpers
// below recover the project's *named registries* — counters, diagnostic
// codes, checkpoint section names, serve protocol fields, documented
// markdown tables — which the registry-pairing passes cross-check against
// each other (docs/STATIC_ANALYSIS.md).
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "analysis/index.hpp"
#include "analysis/source.hpp"

namespace serelin::analysis {

/// A (file, function) reference into TreeIndex::indexes.
struct FunctionRef {
  int file = -1;  ///< index into TreeIndex::indexes
  int fn = -1;    ///< index into FileIndex::functions
};

struct TreeIndex {
  const std::vector<SourceFile>* files = nullptr;
  std::vector<FileIndex> indexes;

  /// Unqualified function name -> every definition in the tree.
  std::map<std::string, std::vector<FunctionRef>> functions_by_name;
  /// Mutex identity key -> declaration (first wins; keys are unique by
  /// construction).
  std::map<std::string, const MutexDecl*> mutex_by_key;
  /// Member name -> every record-member Mutex declaration with that name.
  std::map<std::string, std::vector<const MutexDecl*>> members_by_name;

  const FileIndex* find(const std::string& rel) const;
};

TreeIndex build_tree_index(const std::vector<SourceFile>& files);

/// One named entry of a source-side registry, with its declaration site.
struct RegistryEntry {
  std::string name;
  std::string file;  ///< root-relative path
  int line = 0;
};

/// Enumerators of `enum class <enum_name>` in `rel` (k-prefixed, in
/// declaration order), e.g. DiagCode in diag.hpp or Counter in metrics.hpp.
std::vector<RegistryEntry> extract_enumerators(const TreeIndex& tree,
                                               const std::string& rel,
                                               const std::string& enum_name);

/// `case <enum_name>::kX: return "name";` pairs from `rel` — the
/// enumerator-to-stable-string tables (diag_code_name, counter_name).
/// Returns enumerator -> (name, line).
std::map<std::string, std::pair<std::string, int>> extract_name_table(
    const TreeIndex& tree, const std::string& rel,
    const std::string& enum_name);

/// Checkpoint section names written (`sections.emplace_back("x", ...)` or
/// `with_section("x", ...)`) and consumed (`<image>.find("x")` in a TU that
/// includes support/checkpoint.hpp).
struct SectionUses {
  std::vector<RegistryEntry> emitted;
  std::vector<RegistryEntry> consumed;
};
SectionUses extract_checkpoint_sections(const TreeIndex& tree);

/// Consumer sites (`.find("x")`) in one extra file outside the indexed
/// tree — used to credit test-side restore paths.
std::vector<RegistryEntry> extract_section_finds(
    const std::filesystem::path& abs, const std::string& rel);

/// Serve protocol field names used by src/serve: parser/dispatcher
/// accessors (get_string/get_number/get_int/get_bool), response builders
/// (.set("x", ...)), check_fields allowlists, and the "op" key itself.
std::vector<RegistryEntry> extract_protocol_fields(const TreeIndex& tree);

/// Markdown table rows whose first cell is a single backticked identifier:
/// `| \`x\` | ... |` -> (x, line). The documented side of the protocol
/// field and counter registries.
std::vector<RegistryEntry> extract_doc_table_idents(
    const std::filesystem::path& doc, const std::string& rel);

/// Whole file as a string; empty when unreadable.
std::string slurp(const std::filesystem::path& p);

/// Keys of every "counters" object in a BENCH_*.json file.
std::vector<RegistryEntry> extract_bench_counter_keys(
    const std::filesystem::path& abs, const std::string& rel);

}  // namespace serelin::analysis
