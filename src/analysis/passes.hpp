// Rule passes of the whole-program contract analyzer.
//
// Three tiers, all reporting through one `Reporter` (which owns NOLINT
// suppression *accounting* — every consumed suppression is recorded so the
// unused-nolint pass can flag stale markers):
//
//   * per-file lexical rules — ported from the original serelin_lint
//     scanner: banned tokens, dense-W/D gating, bare artifact writes,
//     unordered range-for, trace-macro purity;
//   * tree-level registry passes — diag codes, exit codes, counters,
//     serve protocol fields, checkpoint section pairing: each cross-checks
//     a source-side registry against its documented/consumed counterpart;
//   * flow-aware passes — lock-order cycle detection over the mutex
//     acquisition graph, and deadline-poll coverage of unbounded loops.
//
// The catalogue (ids, rationale, escape hatches) is docs/STATIC_ANALYSIS.md.
#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/registry.hpp"
#include "analysis/source.hpp"

namespace serelin::analysis {

struct Finding {
  std::string file;  ///< root-relative path
  int line = 0;      ///< 1-based
  std::string rule;  ///< bare id, without the "serelin-" prefix
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* description;
};

/// The full rule catalogue, in display order.
const std::vector<RuleInfo>& rule_catalogue();

bool known_rule(const std::string& id);

/// Collects findings and accounts for NOLINT suppressions. A suppressed
/// finding is dropped but its marker is recorded as *used*; after all
/// passes run, `flag_unused_nolints` reports named markers that suppressed
/// nothing (rule: unused-nolint, itself unsuppressable).
class Reporter {
 public:
  explicit Reporter(const std::vector<SourceFile>& files);

  /// Reports a finding at `rel:line`, honoring a NOLINT on that line.
  void report(const std::string& rel, int line, const std::string& rule,
              std::string message);
  /// Reports without a suppression check (doc-side findings, unused-nolint).
  void report_raw(std::string file, int line, std::string rule,
                  std::string message);
  /// Records that the marker at `rel:line` was consumed without a finding
  /// (e.g. a NOLINT that opts a whole header out of a compile check).
  void mark_used(const std::string& rel, int line);

  /// Flags named NOLINT markers that name at least one rule in
  /// `active_rules` yet suppressed nothing this run.
  void flag_unused_nolints(const std::set<std::string>& active_rules);

  std::vector<Finding>& findings() { return findings_; }

 private:
  const std::vector<SourceFile>* files_;
  std::map<std::string, const SourceFile*> by_rel_;
  std::vector<Finding> findings_;
  std::set<std::pair<std::string, int>> used_;
};

// --- per-file lexical rules ---
void rule_banned_tokens(const SourceFile& f, Reporter& rep);
void rule_wd_dense_gated(const SourceFile& f, Reporter& rep);
void rule_bare_artifact_write(const SourceFile& f, Reporter& rep);
void rule_unordered_range_for(const SourceFile& f, Reporter& rep);
void rule_trace_macro_pure(const SourceFile& f, Reporter& rep);

// --- tree-level registry passes ---
void pass_diag_codes(const TreeIndex& tree, const std::filesystem::path& root,
                     Reporter& rep);
void pass_exit_codes(const TreeIndex& tree, const std::filesystem::path& root,
                     Reporter& rep);
void pass_counter_registry(const TreeIndex& tree,
                           const std::filesystem::path& root, Reporter& rep);
void pass_protocol_schema(const TreeIndex& tree,
                          const std::filesystem::path& root, Reporter& rep);
void pass_checkpoint_pairing(const TreeIndex& tree,
                             const std::filesystem::path& root, Reporter& rep);

// --- flow-aware passes ---
void pass_lock_order(const TreeIndex& tree, Reporter& rep);
void pass_deadline_poll(const TreeIndex& tree, Reporter& rep);

}  // namespace serelin::analysis
