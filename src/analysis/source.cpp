#include "analysis/source.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>

namespace serelin::analysis {

namespace fs = std::filesystem;

std::vector<std::string> read_lines(const fs::path& p) {
  std::ifstream in(p);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

std::vector<std::string> strip_comments_and_strings(
    const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block_comment = false;
  for (const std::string& line : raw) {
    std::string res;
    res.reserve(line.size());
    std::size_t i = 0;
    const std::size_t n = line.size();
    while (i < n) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < n && line[i + 1] == '/') {
          in_block_comment = false;
          res += "  ";
          i += 2;
        } else {
          res += ' ';
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < n && line[i + 1] == '/') {
        res.append(n - i, ' ');
        break;
      }
      if (c == '/' && i + 1 < n && line[i + 1] == '*') {
        in_block_comment = true;
        res += "  ";
        i += 2;
        continue;
      }
      if (c == '"') {
        // Raw string? Look back for an R prefix glued to the quote.
        const bool raw_str = !res.empty() && res.back() == 'R';
        res += ' ';
        ++i;
        if (raw_str) {
          std::string delim;
          while (i < n && line[i] != '(') delim += line[i], res += ' ', ++i;
          const std::string closer = ")" + delim + "\"";
          // Raw strings may span lines; within this tree they do not, so
          // treat an unterminated one as ending at the line break.
          const std::size_t end = line.find(closer, i);
          const std::size_t stop =
              end == std::string::npos ? n : end + closer.size();
          res.append(stop - i, ' ');
          i = stop;
        } else {
          while (i < n) {
            if (line[i] == '\\' && i + 1 < n) {
              res += "  ";
              i += 2;
              continue;
            }
            const bool close = line[i] == '"';
            res += ' ';
            ++i;
            if (close) break;
          }
        }
        continue;
      }
      if (c == '\'') {
        // Character literal (digit separators like 1'000 have a digit or
        // identifier char immediately before the quote — skip those).
        const bool sep =
            !res.empty() &&
            (std::isalnum(static_cast<unsigned char>(res.back())) ||
             res.back() == '_');
        res += sep ? c : ' ';
        ++i;
        if (!sep) {
          while (i < n) {
            if (line[i] == '\\' && i + 1 < n) {
              res += "  ";
              i += 2;
              continue;
            }
            const bool close = line[i] == '\'';
            res += ' ';
            ++i;
            if (close) break;
          }
        }
        continue;
      }
      res += c;
      ++i;
    }
    out.push_back(std::move(res));
  }
  return out;
}

SourceFile load_source(const fs::path& abs, std::string rel) {
  SourceFile f;
  f.abs = abs;
  f.rel = std::move(rel);
  f.raw = read_lines(abs);
  f.code = strip_comments_and_strings(f.raw);
  f.directive.assign(f.code.size(), false);
  bool continued = false;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    const std::size_t i = skip_spaces(line, 0);
    const bool starts = !continued && i < line.size() && line[i] == '#';
    if (starts || continued) {
      f.directive[li] = true;
      continued = !line.empty() && line.back() == '\\';
      if (starts) {
        // Record #include targets ("name" contents are blanked in the
        // stripped view, so consult the raw line for the quoted form).
        std::size_t j = skip_spaces(line, i + 1);
        if (line.compare(j, 7, "include") == 0) {
          const std::string& rawline = f.raw[li];
          std::size_t open = rawline.find_first_of("\"<", j + 7);
          if (open != std::string::npos) {
            const char close = rawline[open] == '<' ? '>' : '"';
            const std::size_t end = rawline.find(close, open + 1);
            if (end != std::string::npos)
              f.includes.push_back(rawline.substr(open + 1, end - open - 1));
          }
        }
      }
    } else {
      continued = false;
    }
  }
  return f;
}

std::vector<SourceFile> collect_tree(const fs::path& root) {
  std::vector<fs::path> paths;
  for (const char* top : {"src", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h")
        paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths)
    files.push_back(load_source(p, p.lexically_relative(root).generic_string()));
  return files;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::size_t find_token(const std::string& text, const std::string& token,
                       std::size_t from) {
  std::size_t pos = text.find(token, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos = text.find(token, pos + 1);
  }
  return std::string::npos;
}

std::size_t skip_spaces(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

NolintMarker parse_nolint(const std::string& raw) {
  NolintMarker m;
  const std::size_t pos = raw.find("NOLINT");
  if (pos == std::string::npos) return m;
  m.present = true;
  std::size_t i = skip_spaces(raw, pos + 6);
  if (i >= raw.size() || raw[i] != '(') {
    m.bare = true;
    return m;
  }
  const std::size_t close = raw.find(')', i);
  const std::string list = raw.substr(
      i + 1, close == std::string::npos ? std::string::npos : close - i - 1);
  std::size_t from = 0;
  while ((from = list.find("serelin-", from)) != std::string::npos) {
    std::size_t end = from + 8;
    while (end < list.size() &&
           (ident_char(list[end]) || list[end] == '-'))
      ++end;
    m.rules.push_back(list.substr(from + 8, end - from - 8));
    from = end;
  }
  return m;
}

bool nolint_suppressed(const std::string& raw, const std::string& rule) {
  const NolintMarker m = parse_nolint(raw);
  if (!m.present) return false;
  if (m.bare) return true;
  return std::find(m.rules.begin(), m.rules.end(), rule) != m.rules.end();
}

}  // namespace serelin::analysis
