// Source loading and sanitizing for the whole-program contract analyzer.
//
// This is the bottom layer of the analysis substrate (docs/STATIC_ANALYSIS.md):
// it turns files on disk into `SourceFile` records carrying the verbatim
// lines plus a *stripped* view in which comment bodies and string/char
// literal contents are blanked with spaces — line lengths are preserved so
// columns still line up, and a banned identifier inside prose or a literal
// can never trip a token match. Preprocessor directives are recognized
// (including backslash continuations) so structural passes can skip them,
// and `#include` targets are recorded for include-sensitive rules.
//
// Everything here is standard-library only: the analyzer links into
// `serelin_lint`, which must build wherever the project builds, including
// sanitizer configurations (tools/CMakeLists.txt).
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

namespace serelin::analysis {

struct SourceFile {
  std::filesystem::path abs;
  std::string rel;                ///< root-relative, '/'-separated
  std::vector<std::string> raw;   ///< verbatim lines
  std::vector<std::string> code;  ///< comments and string contents blanked
  std::vector<bool> directive;    ///< line is (part of) a preprocessor directive
  std::vector<std::string> includes;  ///< #include targets, as written
};

/// Reads `p` line by line, dropping trailing '\r' (CRLF tolerance).
std::vector<std::string> read_lines(const std::filesystem::path& p);

/// Blanks comment bodies and string/char-literal contents (including raw
/// strings) with spaces, preserving line lengths so columns still line up.
std::vector<std::string> strip_comments_and_strings(
    const std::vector<std::string>& raw);

/// Loads and sanitizes one file; `rel` is the root-relative path.
SourceFile load_source(const std::filesystem::path& abs, std::string rel);

/// Collects every .hpp/.cpp/.h under <root>/src and <root>/tools, sorted by
/// path, loaded and sanitized.
std::vector<SourceFile> collect_tree(const std::filesystem::path& root);

// --- token-level helpers (no <regex>: hand-rolled scanning keeps the
// matching rules exact and the analyzer fast on the whole tree) ---

bool ident_char(char c);

/// Position of `token` in `text` as a whole identifier (not embedded in a
/// longer one), or npos.
std::size_t find_token(const std::string& text, const std::string& token,
                       std::size_t from = 0);

std::size_t skip_spaces(const std::string& s, std::size_t i);

/// A parsed `NOLINT` marker on one raw line.
struct NolintMarker {
  bool present = false;
  bool bare = false;                ///< `// NOLINT` with no rule list
  std::vector<std::string> rules;   ///< bare ids named as serelin-<id>
};

NolintMarker parse_nolint(const std::string& raw);

/// True when raw line carries a NOLINT suppressing `rule` (bare id):
/// either a bare NOLINT or NOLINT(...) naming serelin-<rule>.
bool nolint_suppressed(const std::string& raw, const std::string& rule);

}  // namespace serelin::analysis
