#include "analysis/index.hpp"

#include <algorithm>
#include <cctype>

namespace serelin::analysis {

namespace {

struct Tok {
  std::string s;
  std::size_t off = 0;
  bool ident = false;
};

bool keyword(const std::string& s) {
  static const char* const kKeywords[] = {
      "if",     "else",    "for",      "while",    "do",       "switch",
      "case",   "return",  "sizeof",   "new",      "delete",   "catch",
      "throw",  "alignof", "decltype", "static_assert",        "co_return",
      "co_await"};
  for (const char* k : kKeywords)
    if (s == k) return true;
  return false;
}

bool macro_like(const std::string& s) {
  for (char c : s)
    if (std::islower(static_cast<unsigned char>(c))) return false;
  return !s.empty();
}

std::vector<Tok> tokenize(const std::string& text) {
  std::vector<Tok> toks;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (ident_char(c)) {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      toks.push_back({text.substr(i, j - i), i, true});
      i = j;
      continue;
    }
    toks.push_back({std::string(1, c), i, false});
    ++i;
  }
  return toks;
}

/// Offset of the token matching the '(' / '{' / '<'-free scan start; walks
/// tokens, returns index of the closing token or toks.size().
std::size_t match_paren(const std::vector<Tok>& toks, std::size_t open_idx,
                        char open, char close) {
  int depth = 0;
  for (std::size_t i = open_idx; i < toks.size(); ++i) {
    if (!toks[i].ident) {
      if (toks[i].s[0] == open) ++depth;
      if (toks[i].s[0] == close && --depth == 0) return i;
    }
  }
  return toks.size();
}

struct StackEntry {
  int scope_idx;
};

}  // namespace

int FileIndex::line_of(std::size_t off) const {
  const auto it =
      std::upper_bound(line_off.begin(), line_off.end(), off);
  return static_cast<int>(it - line_off.begin());
}

const std::string& FileIndex::raw_line_at(std::size_t off) const {
  static const std::string empty;
  const int line = line_of(off);
  if (line < 1 || line > static_cast<int>(file->raw.size())) return empty;
  return file->raw[static_cast<std::size_t>(line - 1)];
}

bool deadlineish(const std::string& ident) {
  std::string low;
  low.reserve(ident.size());
  for (char c : ident)
    low += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (low.find("deadline") != std::string::npos) return true;
  if (low.find("cancel") != std::string::npos) return true;
  if (low.find("token") != std::string::npos) return true;
  if (low.find("poller") != std::string::npos) return true;
  return low.find("stop") != std::string::npos &&
         low.find("stopwatch") == std::string::npos;
}

FileIndex build_index(const SourceFile& file) {
  FileIndex ix;
  ix.file = &file;

  // Join the stripped lines, blanking preprocessor directives so `#if`
  // alternatives and include lines never unbalance the structural scan.
  std::size_t total = 0;
  for (const std::string& l : file.code) total += l.size() + 1;
  ix.text.reserve(total);
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    ix.line_off.push_back(ix.text.size());
    if (li < file.directive.size() && file.directive[li])
      ix.text.append(file.code[li].size(), ' ');
    else
      ix.text += file.code[li];
    ix.text += '\n';
  }

  const std::vector<Tok> toks = tokenize(ix.text);

  // --- Pass B: brace scopes, classified, plus function definitions. ---
  std::vector<StackEntry> stack;
  std::size_t stmt_start = 0;
  int paren_depth = 0;
  std::vector<int> paren_stack;  // saved paren depth per open scope

  const auto innermost = [&]() -> int {
    return stack.empty() ? -1 : stack.back().scope_idx;
  };
  const auto record_key = [&](const Scope& sc) -> std::string {
    const bool in_cpp = file.rel.size() >= 4 &&
                        file.rel.compare(file.rel.size() - 4, 4, ".cpp") == 0;
    return in_cpp ? file.rel + "::" + sc.name : sc.name;
  };

  for (std::size_t t = 0; t < toks.size(); ++t) {
    const Tok& tk = toks[t];
    if (tk.ident) continue;
    const char c = tk.s[0];
    if (c == '(') ++paren_depth;
    if (c == ')' && paren_depth > 0) --paren_depth;
    if (c == ';' && paren_depth == 0) {
      stmt_start = t + 1;
      continue;
    }
    if (c == '{') {
      Scope sc;
      sc.open = tk.off;
      sc.parent = innermost();
      // Classify from the statement tokens [stmt_start, t).
      const std::size_t b = stmt_start, e = t;
      bool has_eq = false, has_ns = false, has_enum = false,
           has_record = false;
      for (std::size_t i = b; i < e; ++i) {
        const Tok& s = toks[i];
        if (!s.ident && s.s[0] == '=' &&
            (i + 1 >= e || toks[i + 1].s[0] != '=') &&
            (i == b ||
             (toks[i - 1].s[0] != '=' && toks[i - 1].s[0] != '!' &&
              toks[i - 1].s[0] != '<' && toks[i - 1].s[0] != '>')))
          has_eq = true;
        if (s.ident && s.s == "namespace") has_ns = true;
        if (s.ident && s.s == "enum") has_enum = true;
        if (s.ident && (s.s == "class" || s.s == "struct" || s.s == "union"))
          has_record = true;
      }
      const int parent_idx = sc.parent;
      const bool in_record_or_ns =
          parent_idx == -1 ||
          ix.scopes[parent_idx].kind == Scope::Kind::kNamespace ||
          ix.scopes[parent_idx].kind == Scope::Kind::kAnonNamespace ||
          ix.scopes[parent_idx].kind == Scope::Kind::kRecord;
      if (has_ns && !has_eq) {
        sc.kind = e > b && toks[e - 1].ident && toks[e - 1].s != "namespace"
                      ? Scope::Kind::kNamespace
                      : Scope::Kind::kAnonNamespace;
        if (sc.kind == Scope::Kind::kNamespace) sc.name = toks[e - 1].s;
      } else if (has_enum || has_eq) {
        sc.kind = Scope::Kind::kOther;
      } else {
        // Find the first '(' at paren level 0 of the statement whose
        // preceding identifier is not an annotation macro.
        std::size_t paren = e;
        std::string fname;
        std::size_t scan = b;
        while (scan < e) {
          if (toks[scan].ident || toks[scan].s[0] != '(') {
            ++scan;
            continue;
          }
          const std::string before =
              scan > b && toks[scan - 1].ident ? toks[scan - 1].s : "";
          if (macro_like(before)) {
            scan = match_paren(toks, scan, '(', ')') + 1;
            continue;
          }
          paren = scan;
          fname = before;
          break;
        }
        if ((paren < e && paren > b && fname.empty() &&
             toks[paren - 1].s[0] == ']') ||
            (paren == e && e > b && !toks[e - 1].ident &&
             toks[e - 1].s[0] == ']')) {
          sc.kind = Scope::Kind::kLambda;
        } else if (paren < e &&
                   (fname == "if" || fname == "for" || fname == "while" ||
                    fname == "switch" || fname == "catch")) {
          sc.kind = Scope::Kind::kControl;
        } else if (paren < e && !fname.empty() && !keyword(fname) &&
                   !has_record && in_record_or_ns) {
          sc.kind = Scope::Kind::kFunction;
          sc.name = fname;
          Function fn;
          fn.name = fname;
          // Out-of-line method: the name is qualified as X::name.
          if (paren >= b + 4 && !toks[paren - 2].ident &&
              toks[paren - 2].s[0] == ':' && toks[paren - 3].s[0] == ':' &&
              toks[paren - 4].ident)
            fn.record = toks[paren - 4].s;
          // In-class method: take the enclosing record's key.
          if (fn.record.empty() && parent_idx >= 0 &&
              ix.scopes[static_cast<std::size_t>(parent_idx)].kind ==
                  Scope::Kind::kRecord)
            fn.record =
                record_key(ix.scopes[static_cast<std::size_t>(parent_idx)]);
          fn.line = ix.line_of(tk.off);
          fn.body_open = tk.off;
          for (std::size_t i = b; i + 1 < e; ++i)
            if (toks[i].ident && toks[i].s == "SERELIN_REQUIRES" &&
                !toks[i + 1].ident && toks[i + 1].s[0] == '(') {
              const std::size_t close = match_paren(toks, i + 1, '(', ')');
              if (close < e)
                fn.requires_exprs.push_back(ix.text.substr(
                    toks[i + 1].off + 1, toks[close].off - toks[i + 1].off - 1));
            }
          ix.functions.push_back(std::move(fn));
        } else if (has_record && in_record_or_ns) {
          sc.kind = Scope::Kind::kRecord;
          // Name: last identifier before the base clause (a single ':' at
          // paren level 0) or before '{', skipping "final".
          std::size_t stop = e;
          for (std::size_t i = b; i < e; ++i)
            if (!toks[i].ident && toks[i].s[0] == ':' &&
                (i + 1 >= e || toks[i + 1].s[0] != ':') &&
                (i == b || toks[i - 1].s[0] != ':')) {
              stop = i;
              break;
            }
          for (std::size_t i = stop; i > b; --i)
            if (toks[i - 1].ident && toks[i - 1].s != "final") {
              sc.name = toks[i - 1].s;
              break;
            }
        } else if (paren < e) {
          sc.kind = Scope::Kind::kControl;
        } else if (e > b && toks[e - 1].ident &&
                   (toks[e - 1].s == "else" || toks[e - 1].s == "try" ||
                    toks[e - 1].s == "do")) {
          sc.kind = Scope::Kind::kControl;
        } else {
          sc.kind = Scope::Kind::kOther;
        }
      }
      if (sc.kind == Scope::Kind::kFunction)
        ix.functions.back().body_open = sc.open;
      stack.push_back({static_cast<int>(ix.scopes.size())});
      ix.scopes.push_back(sc);
      paren_stack.push_back(paren_depth);
      paren_depth = 0;
      stmt_start = t + 1;
      continue;
    }
    if (c == '}') {
      if (!stack.empty()) {
        const int idx = stack.back().scope_idx;
        ix.scopes[static_cast<std::size_t>(idx)].close = tk.off;
        stack.pop_back();
        paren_depth = paren_stack.back();
        paren_stack.pop_back();
      }
      stmt_start = t + 1;
      continue;
    }
  }
  // Resolve function body extents from their scopes.
  for (Function& fn : ix.functions)
    for (const Scope& sc : ix.scopes)
      if (sc.open == fn.body_open && sc.kind == Scope::Kind::kFunction) {
        fn.body_close = sc.close;
        break;
      }
  // Helpers over the finished scope list.
  const auto innermost_at = [&](std::size_t off) -> int {
    int best = -1;
    for (std::size_t i = 0; i < ix.scopes.size(); ++i) {
      const Scope& sc = ix.scopes[i];
      if (sc.open < off && (sc.close == 0 || sc.close > off))
        if (best == -1 || sc.open > ix.scopes[static_cast<std::size_t>(best)].open)
          best = static_cast<int>(i);
    }
    return best;
  };
  const auto enclosing_function = [&](std::size_t off) -> int {
    int best = -1;
    for (std::size_t i = 0; i < ix.functions.size(); ++i)
      if (ix.functions[i].body_open < off && ix.functions[i].body_close > off)
        if (best == -1 ||
            ix.functions[i].body_open >
                ix.functions[static_cast<std::size_t>(best)].body_open)
          best = static_cast<int>(i);
    return best;
  };

  // --- Pass C: mutex declarations, lock sites, calls, loops. ---
  for (std::size_t t = 0; t < toks.size(); ++t) {
    const Tok& tk = toks[t];
    if (!tk.ident) continue;

    if (tk.s == "Mutex" && t + 2 < toks.size() && toks[t + 1].ident &&
        !toks[t + 2].ident && toks[t + 2].s[0] == ';') {
      MutexDecl m;
      m.name = toks[t + 1].s;
      m.line = ix.line_of(tk.off);
      const int si = innermost_at(tk.off);
      const Scope* sc = si >= 0 ? &ix.scopes[static_cast<std::size_t>(si)]
                                : nullptr;
      if (sc != nullptr && sc->kind == Scope::Kind::kRecord) {
        m.record = record_key(*sc);
        m.key = m.record + "::" + m.name;
      } else if (sc == nullptr || sc->kind == Scope::Kind::kNamespace ||
                 sc->kind == Scope::Kind::kAnonNamespace) {
        const bool in_cpp =
            file.rel.size() >= 4 &&
            file.rel.compare(file.rel.size() - 4, 4, ".cpp") == 0;
        m.key = in_cpp ? file.rel + "::" + m.name : m.name;
      } else {
        m.key = file.rel + ":" + std::to_string(m.line) + "::" + m.name;
        m.local = true;
        m.function = enclosing_function(tk.off);
      }
      ix.mutexes.push_back(std::move(m));
      continue;
    }

    if (tk.s == "MutexLock" && t + 2 < toks.size() && toks[t + 1].ident &&
        !toks[t + 2].ident && toks[t + 2].s[0] == '(') {
      const std::size_t close = match_paren(toks, t + 2, '(', ')');
      if (close >= toks.size()) continue;
      LockSite ls;
      ls.off = tk.off;
      ls.line = ix.line_of(tk.off);
      std::string expr = ix.text.substr(
          toks[t + 2].off + 1, toks[close].off - toks[t + 2].off - 1);
      // Trim whitespace.
      std::size_t a = 0, z = expr.size();
      while (a < z && std::isspace(static_cast<unsigned char>(expr[a]))) ++a;
      while (z > a && std::isspace(static_cast<unsigned char>(expr[z - 1])))
        --z;
      ls.expr = expr.substr(a, z - a);
      const int si = innermost_at(tk.off);
      ls.scope_close = si >= 0
                           ? ix.scopes[static_cast<std::size_t>(si)].close
                           : ix.text.size();
      if (ls.scope_close == 0) ls.scope_close = ix.text.size();
      ls.function = enclosing_function(tk.off);
      ix.locks.push_back(std::move(ls));
      continue;
    }

    // Loops.
    if (tk.s == "for" || tk.s == "while" || tk.s == "do") {
      const int fidx = enclosing_function(tk.off);
      if (tk.s == "do") {
        // Body must be the next '{'.
        if (t + 1 < toks.size() && !toks[t + 1].ident &&
            toks[t + 1].s[0] == '{') {
          const std::size_t close = match_paren(toks, t + 1, '{', '}');
          if (close < toks.size())
            ix.loops.push_back({Loop::Kind::kDo, ix.line_of(tk.off),
                                toks[t + 1].off, toks[close].off, fidx});
        }
        continue;
      }
      if (t + 1 >= toks.size() || toks[t + 1].ident ||
          toks[t + 1].s[0] != '(')
        continue;
      const std::size_t pclose = match_paren(toks, t + 1, '(', ')');
      if (pclose >= toks.size()) continue;
      // A `while` whose condition is immediately followed by ';' is a
      // do-while tail (the `do` already recorded the body) or an empty
      // spin loop with no body to inspect — skip either way.
      if (tk.s == "while" && pclose + 1 < toks.size() &&
          !toks[pclose + 1].ident && toks[pclose + 1].s[0] == ';')
        continue;
      Loop lp;
      lp.line = ix.line_of(tk.off);
      lp.function = fidx;
      if (tk.s == "while") {
        lp.kind = Loop::Kind::kWhile;
      } else {
        int semis = 0;
        bool nonsemi = false, colon = false;
        int depth = 0;
        for (std::size_t i = t + 2; i < pclose; ++i) {
          const Tok& s = toks[i];
          if (!s.ident && (s.s[0] == '(' || s.s[0] == '<')) ++depth;
          if (!s.ident && (s.s[0] == ')' || s.s[0] == '>')) --depth;
          if (depth != 0) continue;
          if (!s.ident && s.s[0] == ';')
            ++semis;
          else if (!s.ident && s.s[0] == ':' &&
                   (i + 1 >= pclose || toks[i + 1].s[0] != ':') &&
                   (toks[i - 1].s[0] != ':'))
            colon = true;
          else
            nonsemi = true;
        }
        if (colon)
          lp.kind = Loop::Kind::kRangeFor;
        else if (semis == 2 && !nonsemi)
          lp.kind = Loop::Kind::kForever;
        else
          lp.kind = Loop::Kind::kCountingFor;
      }
      // Body: '{' block or single statement to the ';' at depth 0.
      if (pclose + 1 < toks.size() && !toks[pclose + 1].ident &&
          toks[pclose + 1].s[0] == '{') {
        const std::size_t bclose = match_paren(toks, pclose + 1, '{', '}');
        if (bclose < toks.size()) {
          lp.body_begin = toks[pclose + 1].off;
          lp.body_end = toks[bclose].off;
          ix.loops.push_back(std::move(lp));
        }
      } else if (pclose + 1 < toks.size()) {
        int depth = 0;
        for (std::size_t i = pclose + 1; i < toks.size(); ++i) {
          const Tok& s = toks[i];
          if (!s.ident && (s.s[0] == '(' || s.s[0] == '{')) ++depth;
          if (!s.ident && (s.s[0] == ')' || s.s[0] == '}')) --depth;
          if (!s.ident && s.s[0] == ';' && depth == 0) {
            lp.body_begin = toks[pclose + 1].off;
            lp.body_end = s.off;
            ix.loops.push_back(std::move(lp));
            break;
          }
        }
      }
      continue;
    }

    // Call sites: identifier directly followed by '(' inside a function or
    // lambda body. Declarations at record/namespace scope have no body
    // around them, so requiring a function/lambda ancestor filters them.
    if (!keyword(tk.s) && t + 1 < toks.size() && !toks[t + 1].ident &&
        toks[t + 1].s[0] == '(') {
      const int fidx = enclosing_function(tk.off);
      bool in_lambda = false;
      if (fidx < 0) {
        for (const Scope& sc : ix.scopes)
          if (sc.kind == Scope::Kind::kLambda && sc.open < tk.off &&
              sc.close > tk.off)
            in_lambda = true;
        if (!in_lambda) continue;
      }
      const std::size_t close = match_paren(toks, t + 1, '(', ')');
      if (close >= toks.size()) continue;
      CallSite cs;
      cs.callee = tk.s;
      cs.off = tk.off;
      cs.line = ix.line_of(tk.off);
      cs.args_open = toks[t + 1].off;
      cs.args_close = toks[close].off;
      cs.function = fidx;
      // Receiver chain via '.' / '->'.
      std::size_t i = t;
      std::vector<std::string> chain;
      while (i >= 2) {
        const Tok& p1 = toks[i - 1];
        if (!p1.ident && p1.s[0] == '.' && toks[i - 2].ident) {
          chain.push_back(toks[i - 2].s);
          i -= 2;
          continue;
        }
        if (i >= 3 && !p1.ident && p1.s[0] == '>' &&
            toks[i - 2].s[0] == '-' && toks[i - 3].ident) {
          chain.push_back(toks[i - 3].s);
          i -= 3;
          continue;
        }
        break;
      }
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        if (!cs.receiver.empty()) cs.receiver += '.';
        cs.receiver += *it;
      }
      ix.calls.push_back(std::move(cs));
    }
  }

  return ix;
}

}  // namespace serelin::analysis
