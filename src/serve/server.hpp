// The serelin job server: a persistent daemon that accepts concurrent
// retiming jobs over a local unix socket and schedules them onto a bounded
// worker pool (docs/SERVING.md).
//
// Design points, each load-bearing:
//
//  * Jobs are the unit of parallelism. Each worker runs one job's full
//    oracle-gated fallback pipeline (flow/pipeline.hpp); the solver
//    kernels inside stay effectively single-threaded per job because the
//    shared thread pool serializes parallel regions across threads
//    (support/parallel.cpp holds the pool mutex for a whole region), so N
//    workers never oversubscribe the machine.
//  * The queue is bounded. A submission beyond `max_queue` is rejected
//    with a structured backpressure error carrying a retry-after hint —
//    the server never buffers unboundedly and never blocks the accepting
//    connection on a full queue.
//  * Results are cached by pipeline_fingerprint(circuit, options), the
//    same digest checkpoints are stamped with. Only clean (ok, not
//    degraded, not cancelled) results are admitted, so a cache hit is
//    bit-identical to what a fresh run would have produced.
//  * Drain is graceful: on cancellation of run()'s token (SIGTERM via
//    SignalGuard) the server stops accepting, cancels queued jobs,
//    cancels the tokens of running jobs — whose pipelines then finish
//    degraded or leave a checkpoint in the scratch directory — and joins
//    every thread before returning.
//
// The wire protocol (newline-delimited JSON, serve/protocol.hpp) is
// documented op-by-op in docs/SERVING.md.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/sockets.hpp"
#include "support/annotations.hpp"
#include "support/deadline.hpp"
#include "support/sync.hpp"

namespace serelin {

struct PipelineOptions;  // flow/pipeline.hpp (needed only in server.cpp)

struct ServerConfig {
  std::string socket_path;       ///< unix socket to bind (required)
  int workers = 2;               ///< job worker threads (min 1)
  int max_queue = 16;            ///< queued-job bound; beyond = backpressure
  std::size_t cache_capacity = 64;  ///< result-cache entries; 0 disables
  std::string scratch_dir;       ///< checkpoint dir for in-flight jobs;
                                 ///< empty = drain finishes without snapshots
  double max_deadline_s = 300.0; ///< per-job budget cap (and default)
  bool verify = true;            ///< oracle-gate every job (the default)
};

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,       ///< terminal: result available (possibly degraded)
  kFailed,     ///< terminal: pipeline threw; `error` says why
  kCancelled,  ///< terminal: cancelled before a result was accepted
};

/// "queued" / "running" / "done" / "failed" / "cancelled".
const char* job_state_name(JobState s);

/// Monotonic server-wide counters, snapshotted by the `stats` op.
struct ServerStats {
  std::int64_t connections = 0;
  std::int64_t submitted = 0;    ///< accepted submissions (incl. cache hits)
  std::int64_t completed = 0;    ///< jobs that reached kDone by running
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t cache_hits = 0;   ///< submissions answered from the cache
  std::int64_t rejected_backpressure = 0;
  std::int64_t rejected_bad_request = 0;  ///< bad JSON / bad fields / bad op
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and launches the workers. Throws BindError when the
  /// address is held by a live server (tools map that to exit 79). After
  /// start() returns the socket accepts connections — callers may connect
  /// before run() is entered; requests queue in the listen backlog.
  void start();

  /// Accept loop. Returns after a graceful drain, triggered by `stop`
  /// firing (SIGTERM) or a `shutdown` request. May be called exactly once.
  void run(CancelToken stop);

  const std::string& socket_path() const { return config_.socket_path; }

  ServerStats stats() const;

  /// Test/bench visibility into the job table after (or during) a run.
  struct JobSnapshot {
    std::string id;
    JobState state = JobState::kQueued;
    bool cached = false;    ///< answered from the result cache
    bool degraded = false;  ///< pipeline fell back / stopped early
    std::string error;
  };
  std::vector<JobSnapshot> jobs() const;

  std::int64_t cache_hits() const { return cache_.hits(); }
  std::int64_t cache_misses() const { return cache_.misses(); }

 private:
  /// One submitted job. All mutable fields are guarded by Server::mutex_
  /// (documented rather than annotated: thread-safety capabilities cannot
  /// name another object's mutex). `token` is itself thread-safe.
  struct Job {
    std::string id;
    std::uint64_t seq = 0;   ///< FIFO tiebreak within a priority level
    int priority = 0;        ///< higher runs first
    Netlist circuit;
    std::uint64_t fingerprint = 0;
    // Result-affecting knobs (forwarded into PipelineOptions).
    double period = 0.0;
    double rmin = -1.0;
    double area_weight = 0.0;
    int patterns = 128;
    int frames = 4;
    int warmup = 8;
    std::string start = "minobswin";
    double deadline_s = 0.0;
    bool use_cache = true;
    /// Test-only: hold the job for this long (interruptibly) before the
    /// pipeline runs, so cancel/backpressure/drain tests are deterministic.
    int test_delay_ms = 0;

    JobState state = JobState::kQueued;
    bool cancel_requested = false;  ///< a client asked; drain did not
    CancelToken token;
    std::vector<std::string> events;  ///< journal records, for `stream`

    // Terminal-state payload.
    std::string result_text;  ///< retimed circuit, canonical BENCH
    std::string stage;
    double result_period = 0.0;
    double result_rmin = 0.0;
    std::int64_t objective_gain = 0;
    bool degraded = false;
    bool verified = false;
    bool cached = false;
    std::string error;
    double wall_ms = 0.0;
  };
  using JobPtr = std::shared_ptr<Job>;

  void worker_loop();
  void connection_loop(UnixStream stream);
  void execute(const JobPtr& job);
  void drain();

  /// The result-affecting pipeline configuration of a job — the exact
  /// object fingerprinted at submit and executed in the worker, so the
  /// cache key and the run can never disagree.
  PipelineOptions pipeline_options_for(const Job& job) const;

  /// True for queued/running.
  static bool active(JobState s) {
    return s == JobState::kQueued || s == JobState::kRunning;
  }

  // Request dispatch (each returns the response line to send; `stream`
  // writes intermediate lines itself).
  std::string handle_request(const Request& req, UnixStream& stream);
  std::string op_submit(const Request& req);
  std::string op_status(const Request& req);
  std::string op_result(const Request& req);
  std::string op_cancel(const Request& req);
  std::string op_stream(const Request& req, UnixStream& stream);
  std::string op_stats();

  JobPtr find_job(const std::string& id) const;

  const ServerConfig config_;
  const CellLibrary library_;
  UnixListener listener_;
  ResultCache cache_;

  mutable Mutex mutex_;
  CondVar queue_cv_;  ///< signalled when work arrives or stop flips
  CondVar state_cv_;  ///< signalled on any job state/event change
  std::map<std::string, JobPtr> jobs_by_id_ SERELIN_GUARDED_BY(mutex_);
  std::vector<JobPtr> queue_ SERELIN_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ SERELIN_GUARDED_BY(mutex_) = 0;
  bool draining_ SERELIN_GUARDED_BY(mutex_) = false;
  bool shutdown_requested_ SERELIN_GUARDED_BY(mutex_) = false;
  ServerStats stats_ SERELIN_GUARDED_BY(mutex_);
  /// Confined to the lifecycle thread (start()/run()/drain()/dtor), never
  /// touched by the workers themselves — deliberately *not* guarded by
  /// mutex_: drain() joins these threads, and a join under the lock would
  /// deadlock against workers acquiring mutex_ to finish their jobs.
  std::vector<std::thread> workers_;
  std::vector<std::thread> connections_ SERELIN_GUARDED_BY(mutex_);
  bool started_ SERELIN_GUARDED_BY(mutex_) = false;
  bool ran_ SERELIN_GUARDED_BY(mutex_) = false;
};

}  // namespace serelin
