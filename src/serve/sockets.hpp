// Minimal RAII wrappers over AF_UNIX stream sockets for the job server
// (docs/SERVING.md). Local sockets only: the server is a same-host
// multi-tenant daemon, so there is no TLS/authn surface here — the socket
// file's permissions are the access control.
//
// Both ends speak newline-delimited JSON (one request or response object
// per line), so the only I/O primitives needed are a buffered line reader
// with a poll timeout and an all-or-nothing line writer. Reads are
// timeout-sliced rather than blocking forever: every caller loops on a
// stop condition (server drain, client deadline) between slices.
#pragma once

#include <cstddef>
#include <string>

#include "support/check.hpp"

namespace serelin {

/// bind() failed — most often the address is already in use by a live
/// server. Tools map this to the registered exit code 79
/// (docs/ROBUSTNESS.md §5).
class BindError : public Error {
 public:
  using Error::Error;
};

/// Owning file descriptor; -1 means "none".
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// One connected stream with a buffered line reader.
class UnixStream {
 public:
  UnixStream() = default;
  explicit UnixStream(Fd fd) : fd_(std::move(fd)) {}

  /// Connects to a listening unix socket. Throws serelin::Error when the
  /// path does not exist or nothing is accepting.
  static UnixStream connect(const std::string& path);

  bool valid() const { return fd_.valid(); }
  void close() { fd_.reset(); }

  enum class ReadStatus {
    kLine,     ///< `out` holds one complete line (newline stripped)
    kTimeout,  ///< no complete line arrived within the slice
    kEof,      ///< peer closed cleanly (no buffered partial line remains)
    kError,    ///< read failed; the stream is dead
  };

  /// Waits up to `timeout_ms` for one newline-terminated line. Lines
  /// longer than `max_line` bytes are an error (a malformed or hostile
  /// peer must not buffer the server into the ground).
  ReadStatus read_line(std::string& out, int timeout_ms,
                       std::size_t max_line = 16u << 20);

  /// Writes `line` plus a trailing newline, retrying partial writes.
  /// Returns false when the peer is gone (EPIPE and friends); never
  /// raises SIGPIPE.
  bool write_line(const std::string& line);

 private:
  Fd fd_;
  std::string buffer_;  ///< bytes read past the last returned line
  bool eof_ = false;
};

/// Listening unix socket bound to a filesystem path.
class UnixListener {
 public:
  UnixListener() = default;

  /// Binds and listens on `path`. A stale socket file left by a dead
  /// server (connect() refused) is removed and rebound; a live one (or
  /// any other bind failure) throws BindError. Throws serelin::Error on
  /// non-bind failures (socket(), listen()).
  void bind(const std::string& path, int backlog = 64);

  bool listening() const { return fd_.valid(); }

  /// Waits up to `timeout_ms` for one connection. Returns an invalid
  /// stream on timeout; throws serelin::Error on accept failure.
  UnixStream accept(int timeout_ms);

  /// Closes the socket and unlinks the path (idempotent).
  void close();

  const std::string& path() const { return path_; }

  ~UnixListener() { close(); }
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

 private:
  Fd fd_;
  std::string path_;
};

}  // namespace serelin
