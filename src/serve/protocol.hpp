// The serve wire protocol: newline-delimited JSON requests and responses
// (one object per line; full schema in docs/SERVING.md).
//
// Requests are flat JSON objects — {"op":"submit","circuit":"...",...} —
// so the parser here is a small, strict RFC-8259 reader that keeps
// top-level scalar fields and skips nested values structurally (a client
// sending an unexpected nested object gets "unknown field", not a
// misparse). Responses are built with flow/journal.hpp's JsonObject,
// which is already the project's JSON writer.
//
// Parsing a request never throws: a malformed line becomes a structured
// ParseOutcome error, the connection answers {"ok":false,"error":
// "bad-json",...} and stays open — one bad tenant must not take down a
// session that other requests share.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace serelin {

/// One decoded top-level field of a request object.
struct JsonValue {
  enum class Kind : std::uint8_t { kString, kNumber, kBool, kNull, kNested };
  Kind kind = Kind::kNull;
  std::string str;     ///< kString: unescaped contents; kNested: raw text
  double num = 0.0;    ///< kNumber
  bool boolean = false;  ///< kBool
};

/// A parsed request line: the op plus every other top-level field.
struct Request {
  std::string op;
  std::map<std::string, JsonValue> fields;

  /// Typed field access; nullopt when absent or of the wrong kind.
  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<double> get_number(const std::string& key) const;
  std::optional<std::int64_t> get_int(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;
};

/// Result of parsing one request line.
struct ParseOutcome {
  bool ok = false;
  Request request;    ///< valid when ok
  std::string error;  ///< parse diagnostic when !ok
};

/// Parses one line into a Request. Strict JSON; the object must carry a
/// string "op" field. Never throws.
ParseOutcome parse_request(const std::string& line);

/// Same parser without the "op" requirement — for the client side reading
/// response objects (`op` stays empty; every field lands in `fields`).
ParseOutcome parse_object(const std::string& line);

}  // namespace serelin
