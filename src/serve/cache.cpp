#include "serve/cache.hpp"

namespace serelin {

std::optional<CachedResult> ResultCache::lookup(std::uint64_t key) {
  if (capacity_ == 0) return std::nullopt;
  MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->result;
}

void ResultCache::insert(std::uint64_t key, CachedResult result) {
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

std::int64_t ResultCache::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

std::int64_t ResultCache::misses() const {
  MutexLock lock(mutex_);
  return misses_;
}

std::size_t ResultCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

}  // namespace serelin
