#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "flow/journal.hpp"
#include "flow/pipeline.hpp"
#include "netlist/bench_io.hpp"
#include "rgraph/apply.hpp"
#include "rgraph/retiming_graph.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"

namespace serelin {

namespace {

/// Read slice for every blocking socket wait: long enough to be cheap,
/// short enough that threads notice drain promptly.
constexpr int kPollSliceMs = 200;

std::string error_line(const char* code, const std::string& detail) {
  JsonObject o;
  o.set("ok", false).set("error", code).set("detail", detail);
  return o.str();
}

/// Fields every op accepts (ignored everywhere): none. Fields are checked
/// per-op against an allowlist so a typo'd knob fails loudly instead of
/// silently running with defaults.
bool check_fields(const Request& req, std::initializer_list<const char*> allowed,
                  std::string& bad) {
  for (const auto& [key, value] : req.fields) {
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    if (!ok) {
      bad = key;
      return false;
    }
  }
  return true;
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

Server::Server(ServerConfig config)
    : config_(std::move(config)), cache_(config_.cache_capacity) {
  SERELIN_REQUIRE(!config_.socket_path.empty(),
                  "server needs a socket path");
  SERELIN_REQUIRE(config_.workers >= 1, "server needs at least one worker");
  SERELIN_REQUIRE(config_.max_queue >= 1,
                  "server needs a positive queue bound");
  SERELIN_REQUIRE(config_.max_deadline_s > 0,
                  "server needs a positive deadline cap");
}

Server::~Server() {
  // A server that was started but never run still owns worker threads.
  bool need_drain = false;
  {
    MutexLock lock(mutex_);
    need_drain = started_ && !ran_;
  }
  if (need_drain) drain();
}

void Server::start() {
  {
    MutexLock lock(mutex_);
    SERELIN_REQUIRE(!started_, "start() may be called once");
  }
  listener_.bind(config_.socket_path);  // throws BindError -> exit 79
  {
    // Flipped only after a successful bind: a BindError leaves the server
    // never-started, so the destructor does not drain.
    MutexLock lock(mutex_);
    started_ = true;
  }
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i)
    workers_.emplace_back(&Server::worker_loop, this);
}

void Server::run(CancelToken stop) {
  {
    MutexLock lock(mutex_);
    SERELIN_REQUIRE(started_, "run() needs start() first");
    SERELIN_REQUIRE(!ran_, "run() may be called once");
    ran_ = true;
  }
  for (;;) {
    if (stop.cancelled()) break;
    {
      MutexLock lock(mutex_);
      if (shutdown_requested_) break;
    }
    UnixStream conn = listener_.accept(kPollSliceMs);
    if (!conn.valid()) continue;  // slice elapsed; re-check the stop flags
    MutexLock lock(mutex_);
    ++stats_.connections;
    connections_.emplace_back(&Server::connection_loop, this,
                              std::move(conn));
  }
  drain();
}

void Server::drain() {
  {
    MutexLock lock(mutex_);
    draining_ = true;
    // Queued jobs never started: cancel them outright. Running jobs get
    // their tokens cancelled — the pipeline finishes degraded (identity
    // cannot fail) or leaves a checkpoint in the scratch directory.
    for (const JobPtr& job : queue_) {
      job->state = JobState::kCancelled;
      job->error = "server draining";
      ++stats_.cancelled;
    }
    queue_.clear();
    for (const auto& [id, job] : jobs_by_id_)
      if (job->state == JobState::kRunning) job->token.cancel();
    queue_cv_.notify_all();
    state_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  std::vector<std::thread> conns;
  {
    MutexLock lock(mutex_);
    conns.swap(connections_);
  }
  for (std::thread& t : conns) t.join();
  listener_.close();
}

ServerStats Server::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::vector<Server::JobSnapshot> Server::jobs() const {
  MutexLock lock(mutex_);
  std::vector<JobSnapshot> out;
  out.reserve(jobs_by_id_.size());
  for (const auto& [id, job] : jobs_by_id_)
    out.push_back({id, job->state, job->cached, job->degraded, job->error});
  return out;
}

Server::JobPtr Server::find_job(const std::string& id) const {
  MutexLock lock(mutex_);
  const auto it = jobs_by_id_.find(id);
  return it == jobs_by_id_.end() ? nullptr : it->second;
}

// ---------------------------------------------------------------------------
// Connection handling

void Server::connection_loop(UnixStream stream) {
  for (;;) {
    std::string line;
    const UnixStream::ReadStatus st = stream.read_line(line, kPollSliceMs);
    if (st == UnixStream::ReadStatus::kTimeout) {
      MutexLock lock(mutex_);
      if (draining_) return;
      continue;
    }
    if (st != UnixStream::ReadStatus::kLine) return;  // EOF or dead stream
    if (line.empty()) continue;
    const ParseOutcome parsed = parse_request(line);
    std::string response;
    if (!parsed.ok) {
      {
        MutexLock lock(mutex_);
        ++stats_.rejected_bad_request;
      }
      // One malformed line answers with a structured error and the
      // connection lives on: a client bug must not sever a session.
      response = error_line("bad-json", parsed.error);
    } else {
      response = handle_request(parsed.request, stream);
    }
    if (!stream.write_line(response)) return;
  }
}

std::string Server::handle_request(const Request& req, UnixStream& stream) {
  if (req.op == "submit") return op_submit(req);
  if (req.op == "status") return op_status(req);
  if (req.op == "result") return op_result(req);
  if (req.op == "cancel") return op_cancel(req);
  if (req.op == "stream") return op_stream(req, stream);
  if (req.op == "stats") return op_stats();
  if (req.op == "ping") {
    JsonObject o;
    o.set("ok", true).set("event", "pong");
    return o.str();
  }
  if (req.op == "shutdown") {
    {
      MutexLock lock(mutex_);
      shutdown_requested_ = true;
      queue_cv_.notify_all();
    }
    JsonObject o;
    o.set("ok", true).set("event", "shutting-down");
    return o.str();
  }
  {
    MutexLock lock(mutex_);
    ++stats_.rejected_bad_request;
  }
  return error_line("bad-request", "unknown op '" + req.op + "'");
}

std::string Server::op_submit(const Request& req) {
  std::string bad;
  if (!check_fields(req,
                    {"circuit", "period", "rmin", "area_weight", "patterns",
                     "frames", "warmup", "deadline_s", "priority", "cache",
                     "start", "test_delay_ms"},
                    bad)) {
    MutexLock lock(mutex_);
    ++stats_.rejected_bad_request;
    return error_line("bad-request", "unknown field '" + bad + "'");
  }
  const auto circuit_text = req.get_string("circuit");
  if (!circuit_text) {
    MutexLock lock(mutex_);
    ++stats_.rejected_bad_request;
    return error_line("bad-request", "submit needs a string 'circuit'");
  }

  auto job = std::make_shared<Job>();
  job->period = req.get_number("period").value_or(0.0);
  job->rmin = req.get_number("rmin").value_or(-1.0);
  job->area_weight = req.get_number("area_weight").value_or(0.0);
  job->patterns =
      static_cast<int>(req.get_int("patterns").value_or(job->patterns));
  job->frames = static_cast<int>(req.get_int("frames").value_or(job->frames));
  job->warmup = static_cast<int>(req.get_int("warmup").value_or(job->warmup));
  job->deadline_s = req.get_number("deadline_s").value_or(0.0);
  job->priority = static_cast<int>(req.get_int("priority").value_or(0));
  job->use_cache = req.get_bool("cache").value_or(true);
  job->start = req.get_string("start").value_or("minobswin");
  job->test_delay_ms =
      static_cast<int>(req.get_int("test_delay_ms").value_or(0));

  std::string why;
  if (job->patterns <= 0 || job->patterns % 64 != 0)
    why = "'patterns' must be a positive multiple of 64";
  else if (job->frames <= 0)
    why = "'frames' must be positive";
  else if (job->warmup < 0)
    why = "'warmup' must be non-negative";
  else if (job->test_delay_ms < 0)
    why = "'test_delay_ms' must be non-negative";
  else if (job->start != "minobswin" && job->start != "minobs")
    why = "'start' must be minobswin or minobs";
  if (!why.empty()) {
    MutexLock lock(mutex_);
    ++stats_.rejected_bad_request;
    return error_line("bad-request", why);
  }
  // Per-job budget, capped by the server's configured maximum.
  if (job->deadline_s <= 0 || job->deadline_s > config_.max_deadline_s)
    job->deadline_s = config_.max_deadline_s;

  try {
    std::istringstream in(*circuit_text);
    job->circuit = read_bench(in);
  } catch (const Error& e) {
    MutexLock lock(mutex_);
    ++stats_.rejected_bad_request;
    return error_line("bad-circuit", e.what());
  }
  job->fingerprint =
      pipeline_fingerprint(job->circuit, pipeline_options_for(*job));

  // The cache is consulted before the queue bound: a hit costs no queue
  // slot, so duplicates of completed work always succeed even under
  // saturation.
  std::optional<CachedResult> hit;
  if (job->use_cache) hit = cache_.lookup(job->fingerprint);

  MutexLock lock(mutex_);
  if (draining_ || shutdown_requested_)
    return error_line("draining", "server is shutting down");
  if (hit) {
    SERELIN_COUNT(kServeCacheHits, 1);
    job->seq = next_seq_++;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "j-%06llu",
                  static_cast<unsigned long long>(job->seq + 1));
    job->id = buf;
    job->state = JobState::kDone;
    job->cached = true;
    job->result_text = hit->circuit_text;
    job->stage = hit->stage;
    job->result_period = hit->period;
    job->result_rmin = hit->rmin;
    job->objective_gain = hit->objective_gain;
    job->verified = hit->verified;
    jobs_by_id_[job->id] = job;
    ++stats_.submitted;
    ++stats_.cache_hits;
    state_cv_.notify_all();
    JsonObject o;
    o.set("ok", true).set("job", job->id).set("cached", true)
        .set("queue_depth", static_cast<std::int64_t>(queue_.size()));
    return o.str();
  }
  if (queue_.size() >= static_cast<std::size_t>(config_.max_queue)) {
    ++stats_.rejected_backpressure;
    // Retry hint: how long until a queue slot plausibly frees up if every
    // queued job burns its full budget across the workers. A hint, not a
    // promise — clients own their retry policy.
    const double retry =
        std::min(config_.max_deadline_s,
                 std::max(0.05, static_cast<double>(queue_.size()) *
                                    config_.max_deadline_s /
                                    (static_cast<double>(config_.workers) *
                                     static_cast<double>(config_.max_queue))));
    JsonObject o;
    o.set("ok", false).set("error", "backpressure")
        .set("detail", "job queue is full")
        .set("retry_after_s", retry)
        .set("queue_depth", static_cast<std::int64_t>(queue_.size()));
    return o.str();
  }
  SERELIN_COUNT(kServeCacheMisses, 1);
  job->seq = next_seq_++;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "j-%06llu",
                static_cast<unsigned long long>(job->seq + 1));
  job->id = buf;
  jobs_by_id_[job->id] = job;
  queue_.push_back(job);
  ++stats_.submitted;
  queue_cv_.notify_one();
  JsonObject o;
  o.set("ok", true).set("job", job->id).set("cached", false)
      .set("queue_depth", static_cast<std::int64_t>(queue_.size()));
  return o.str();
}

std::string Server::op_status(const Request& req) {
  const auto id = req.get_string("job");
  if (!id) return error_line("bad-request", "status needs a string 'job'");
  const JobPtr job = find_job(*id);
  if (!job) return error_line("unknown-job", "no job '" + *id + "'");
  MutexLock lock(mutex_);
  JsonObject o;
  o.set("ok", true).set("job", job->id)
      .set("state", job_state_name(job->state))
      .set("cached", job->cached)
      .set("degraded", job->degraded)
      .set("queue_depth", static_cast<std::int64_t>(queue_.size()));
  if (!job->error.empty()) o.set("detail", job->error);
  return o.str();
}

std::string Server::op_result(const Request& req) {
  const auto id = req.get_string("job");
  if (!id) return error_line("bad-request", "result needs a string 'job'");
  const JobPtr job = find_job(*id);
  if (!job) return error_line("unknown-job", "no job '" + *id + "'");
  const bool wait = req.get_bool("wait").value_or(false);
  const double timeout_s =
      req.get_number("timeout_s").value_or(2.0 * config_.max_deadline_s);
  const Deadline patience = Deadline::after(timeout_s);
  {
    MutexLock lock(mutex_);
    while (active(job->state)) {
      if (!wait)
        return error_line("not-ready",
                          "job is " + std::string(job_state_name(job->state)));
      if (patience.expired())
        return error_line("timeout", "job still running after wait");
      state_cv_.wait_for(mutex_, std::chrono::milliseconds(kPollSliceMs));
    }
    JsonObject o;
    o.set("ok", true).set("job", job->id)
        .set("state", job_state_name(job->state))
        .set("cached", job->cached)
        .set("degraded", job->degraded)
        .set("verified", job->verified)
        .set("wall_ms", job->wall_ms);
    if (job->state == JobState::kDone) {
      o.set("stage", job->stage)
          .set("period", job->result_period)
          .set("rmin", job->result_rmin)
          .set("objective_gain", job->objective_gain)
          .set("circuit", job->result_text);
    }
    if (!job->error.empty()) o.set("detail", job->error);
    return o.str();
  }
}

std::string Server::op_cancel(const Request& req) {
  const auto id = req.get_string("job");
  if (!id) return error_line("bad-request", "cancel needs a string 'job'");
  const JobPtr job = find_job(*id);
  if (!job) return error_line("unknown-job", "no job '" + *id + "'");
  MutexLock lock(mutex_);
  if (job->state == JobState::kQueued) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), job),
                 queue_.end());
    job->state = JobState::kCancelled;
    job->cancel_requested = true;
    job->error = "cancelled by client";
    ++stats_.cancelled;
    state_cv_.notify_all();
  } else if (job->state == JobState::kRunning) {
    job->cancel_requested = true;
    job->token.cancel();
    state_cv_.notify_all();
  }
  JsonObject o;
  o.set("ok", true).set("job", job->id)
      .set("state", job_state_name(job->state));
  return o.str();
}

std::string Server::op_stream(const Request& req, UnixStream& stream) {
  const auto id = req.get_string("job");
  if (!id) return error_line("bad-request", "stream needs a string 'job'");
  const JobPtr job = find_job(*id);
  if (!job) return error_line("unknown-job", "no job '" + *id + "'");
  std::size_t sent = 0;
  for (;;) {
    std::vector<std::string> batch;
    JobState state;
    {
      MutexLock lock(mutex_);
      // Drain needs no special case here: it drives every job to a
      // terminal state, which ends the follow naturally.
      while (sent == job->events.size() && active(job->state))
        state_cv_.wait_for(mutex_, std::chrono::milliseconds(kPollSliceMs));
      batch.assign(job->events.begin() + static_cast<std::ptrdiff_t>(sent),
                   job->events.end());
      state = job->state;
    }
    sent += batch.size();
    for (const std::string& record : batch)
      if (!stream.write_line(record)) return error_line("gone", "peer left");
    if (!active(state) && batch.empty()) {
      JsonObject o;
      o.set("ok", true).set("event", "end")
          .set("state", job_state_name(state));
      return o.str();
    }
  }
}

std::string Server::op_stats() {
  MutexLock lock(mutex_);
  JsonObject o;
  o.set("ok", true)
      .set("connections", stats_.connections)
      .set("submitted", stats_.submitted)
      .set("completed", stats_.completed)
      .set("failed", stats_.failed)
      .set("cancelled", stats_.cancelled)
      .set("cache_hits", stats_.cache_hits)
      .set("cache_misses", cache_.misses())
      .set("rejected_backpressure", stats_.rejected_backpressure)
      .set("rejected_bad_request", stats_.rejected_bad_request)
      .set("queue_depth", static_cast<std::int64_t>(queue_.size()))
      .set("workers", config_.workers)
      .set("max_queue", config_.max_queue);
  return o.str();
}

// ---------------------------------------------------------------------------
// Job execution

PipelineOptions Server::pipeline_options_for(const Job& job) const {
  PipelineOptions po;
  po.sim.patterns = job.patterns;
  po.sim.frames = job.frames;
  po.sim.warmup = job.warmup;
  po.period = job.period;
  po.rmin = job.rmin;
  po.area_weight = job.area_weight;
  po.verify = config_.verify;
  po.start = job.start == "minobs" ? PipelineStage::kMinObs
                                   : PipelineStage::kMinObsWin;
  return po;
}

void Server::worker_loop() {
  for (;;) {
    JobPtr job;
    {
      MutexLock lock(mutex_);
      while (queue_.empty() && !draining_) queue_cv_.wait(mutex_);
      if (queue_.empty()) return;  // draining with nothing left to run
      // Highest priority first; FIFO (submission order) within a level.
      auto best = queue_.begin();
      for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it)
        if ((*it)->priority > (*best)->priority ||
            ((*it)->priority == (*best)->priority &&
             (*it)->seq < (*best)->seq))
          best = it;
      job = *best;
      queue_.erase(best);
      job->state = JobState::kRunning;
      state_cv_.notify_all();
    }
    execute(job);
  }
}

void Server::execute(const JobPtr& job) {
  Stopwatch watch;
  SERELIN_COUNT(kServeJobs, 1);

  // Test-only hold: park the job (interruptibly) before solving so tests
  // can pin a worker deterministically.
  if (job->test_delay_ms > 0) {
    const Deadline hold = Deadline::after(job->test_delay_ms / 1000.0);
    MutexLock lock(mutex_);
    while (!hold.expired() && !job->token.cancelled())
      state_cv_.wait_for(mutex_, std::chrono::milliseconds(50));
  }
  {
    // A client cancel that lands before (or during) the hold skips the
    // pipeline entirely; a drain cancel falls through and produces the
    // degraded identity result instead.
    MutexLock lock(mutex_);
    if (job->cancel_requested) {
      job->state = JobState::kCancelled;
      job->error = "cancelled by client";
      job->wall_ms = watch.seconds() * 1000.0;
      ++stats_.cancelled;
      state_cv_.notify_all();
      return;
    }
  }

  PipelineOptions po = pipeline_options_for(*job);
  po.deadline = Deadline::after(job->deadline_s).attach(job->token);
  if (!config_.scratch_dir.empty())
    po.checkpoint_path = config_.scratch_dir + "/" + job->id + ".ckpt";
  po.journal_observer = [this, job](const std::string& record) {
    MutexLock lock(mutex_);
    job->events.push_back(record);
    state_cv_.notify_all();
  };

  bool admit = false;
  CachedResult entry;
  try {
    RetimingGraph g(job->circuit, library_);
    const PipelineResult res = run_pipeline(job->circuit, library_, po);
    std::string text;
    if (res.ok) {
      const Netlist out =
          apply_retiming(g, res.solver.r, job->circuit.name() + "_rt");
      std::ostringstream bench;
      write_bench(bench, out);
      text = bench.str();
    }
    MutexLock lock(mutex_);
    job->wall_ms = watch.seconds() * 1000.0;
    if (!res.ok) {
      job->state = JobState::kFailed;
      job->error = "no pipeline stage produced an accepted result";
      ++stats_.failed;
    } else {
      job->result_text = std::move(text);
      job->stage = pipeline_stage_name(res.stage);
      job->result_period = res.timing.period;
      job->result_rmin = res.rmin;
      job->objective_gain = res.solver.objective_gain;
      job->degraded = res.degraded;
      job->verified = config_.verify;  // pipeline gates acceptance on it
      if (job->cancel_requested) {
        job->state = JobState::kCancelled;
        job->error = "cancelled by client";
        ++stats_.cancelled;
      } else {
        job->state = JobState::kDone;
        ++stats_.completed;
        // Only clean results are cacheable: a degraded result encodes
        // where a budget ran out, which the next identical submission
        // must not inherit.
        if (job->use_cache && !job->degraded) {
          admit = true;
          entry = CachedResult{job->result_text, job->stage,
                               job->result_period, job->result_rmin,
                               job->objective_gain, job->verified};
        }
      }
    }
    state_cv_.notify_all();
  } catch (const std::exception& e) {
    MutexLock lock(mutex_);
    job->wall_ms = watch.seconds() * 1000.0;
    if (job->cancel_requested) {
      job->state = JobState::kCancelled;
      job->error = "cancelled by client";
      ++stats_.cancelled;
    } else {
      job->state = JobState::kFailed;
      job->error = e.what();
      ++stats_.failed;
    }
    state_cv_.notify_all();
  }
  if (admit) cache_.insert(job->fingerprint, std::move(entry));
}

}  // namespace serelin
