// Bounded LRU cache of completed retiming results, keyed by
// pipeline_fingerprint(circuit, options) — the same digest that guards
// checkpoint resume, so a key collision-free hit is by construction the
// result of the *identical* circuit under the *identical* result-affecting
// configuration (docs/SERVING.md).
//
// Only clean results are admitted: a run that degraded, stopped on a
// deadline, or was cancelled is timing-dependent, and caching it would
// break the contract that a hit is bit-identical to what a fresh run
// would produce. The eviction policy is plain LRU over a fixed entry
// budget; entries are small (a bench text plus scalars), so a few hundred
// of them is megabytes, not gigabytes.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "support/annotations.hpp"
#include "support/sync.hpp"

namespace serelin {

/// Everything a cache hit must reproduce bit-identically.
struct CachedResult {
  std::string circuit_text;  ///< retimed netlist, canonical BENCH text
  std::string stage;         ///< accepted pipeline stage name
  double period = 0.0;       ///< Φ the result is verified against
  double rmin = 0.0;         ///< R_min in force for the accepted stage
  std::int64_t objective_gain = 0;
  bool verified = false;     ///< the oracle signed the result off
};

class ResultCache {
 public:
  /// `capacity` = max retained entries; 0 disables the cache entirely.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Hit: returns the cached result and refreshes its LRU position.
  std::optional<CachedResult> lookup(std::uint64_t key);

  /// Admits (or refreshes) an entry, evicting the least-recently-used
  /// one beyond capacity.
  void insert(std::uint64_t key, CachedResult result);

  std::int64_t hits() const;
  std::int64_t misses() const;
  std::size_t size() const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    CachedResult result;
  };

  const std::size_t capacity_;
  mutable Mutex mutex_;
  /// Most-recently-used at the front.
  std::list<Entry> lru_ SERELIN_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_
      SERELIN_GUARDED_BY(mutex_);
  std::int64_t hits_ SERELIN_GUARDED_BY(mutex_) = 0;
  std::int64_t misses_ SERELIN_GUARDED_BY(mutex_) = 0;
};

}  // namespace serelin
