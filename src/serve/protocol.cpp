#include "serve/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace serelin {

namespace {

/// Strict single-pass JSON reader over one request line. Only top-level
/// scalars are materialized; nested objects/arrays are skipped with their
/// raw text retained (Kind::kNested) so the dispatcher can reject them by
/// name instead of silently dropping them.
class Reader {
 public:
  explicit Reader(const std::string& text, bool require_op)
      : s_(text), require_op_(require_op) {}

  bool parse(Request& out, std::string& error) {
    skip_ws();
    if (!eat('{')) return fail(error, "expected '{'");
    skip_ws();
    if (eat('}')) return finish(out, error);
    for (;;) {
      std::string key;
      if (!parse_string(key)) return fail(error, "expected string key");
      skip_ws();
      if (!eat(':')) return fail(error, "expected ':' after key");
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return fail(error, "bad value for '" + key + "'");
      if (!out.fields.emplace(key, std::move(value)).second)
        return fail(error, "duplicate key '" + key + "'");
      skip_ws();
      if (eat(',')) {
        skip_ws();
        continue;
      }
      if (eat('}')) return finish(out, error);
      return fail(error, "expected ',' or '}'");
    }
  }

 private:
  bool finish(Request& out, std::string& error) {
    skip_ws();
    if (pos_ != s_.size()) return fail(error, "trailing bytes after object");
    const auto op = out.fields.find("op");
    if (op != out.fields.end() &&
        op->second.kind == JsonValue::Kind::kString) {
      out.op = op->second.str;
      out.fields.erase(op);
    } else if (require_op_) {
      return fail(error, "missing string field 'op'");
    }
    return true;
  }

  bool fail(std::string& error, const std::string& what) {
    error = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') {
      const bool v = c == 't';
      const char* word = v ? "true" : "false";
      const std::size_t n = v ? 4 : 5;
      if (s_.compare(pos_, n, word) != 0) return false;
      pos_ += n;
      out.kind = JsonValue::Kind::kBool;
      out.boolean = v;
      return true;
    }
    if (c == 'n') {
      if (s_.compare(pos_, 4, "null") != 0) return false;
      pos_ += 4;
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    if (c == '{' || c == '[') {
      const std::size_t start = pos_;
      if (!skip_nested()) return false;
      out.kind = JsonValue::Kind::kNested;
      out.str = s_.substr(start, pos_ - start);
      return true;
    }
    return parse_number(out);
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
      return pos_ > before;
    };
    if (!digits()) return false;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) return false;
    }
    const std::string text = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !std::isfinite(v)) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.num = v;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The project's own writer only emits \u00XX for control bytes;
          // encode the general case as UTF-8 so round trips are lossless.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  /// Structurally skips a balanced object/array (strings respected).
  bool skip_nested() {
    int depth = 0;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        std::string scratch;
        if (!parse_string(scratch)) return false;
        continue;
      }
      ++pos_;
      if (c == '{' || c == '[') ++depth;
      else if (c == '}' || c == ']') {
        if (--depth == 0) return true;
        if (depth < 0) return false;
      }
    }
    return false;
  }

  const std::string& s_;
  bool require_op_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<std::string> Request::get_string(const std::string& key) const {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.kind != JsonValue::Kind::kString)
    return std::nullopt;
  return it->second.str;
}

std::optional<double> Request::get_number(const std::string& key) const {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.kind != JsonValue::Kind::kNumber)
    return std::nullopt;
  return it->second.num;
}

std::optional<std::int64_t> Request::get_int(const std::string& key) const {
  const auto v = get_number(key);
  if (!v || *v != std::floor(*v) || *v < -9.0e18 || *v > 9.0e18)
    return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<bool> Request::get_bool(const std::string& key) const {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.kind != JsonValue::Kind::kBool)
    return std::nullopt;
  return it->second.boolean;
}

ParseOutcome parse_request(const std::string& line) {
  ParseOutcome out;
  Reader reader(line, /*require_op=*/true);
  out.ok = reader.parse(out.request, out.error);
  return out;
}

ParseOutcome parse_object(const std::string& line) {
  ParseOutcome out;
  Reader reader(line, /*require_op=*/false);
  out.ok = reader.parse(out.request, out.error);
  return out;
}

}  // namespace serelin
