#include "serve/sockets.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace serelin {

namespace {

std::string errno_detail(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SERELIN_REQUIRE(path.size() < sizeof(addr.sun_path),
                  "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// poll() one fd for readability; returns false on timeout.
bool wait_readable(int fd, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;  // signals are handled at the loop level
    return true;  // let the subsequent read/accept surface the real error
  }
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

UnixStream UnixStream::connect(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw Error(errno_detail("socket"));
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    throw Error(errno_detail(("connect " + path).c_str()));
  return UnixStream(std::move(fd));
}

UnixStream::ReadStatus UnixStream::read_line(std::string& out, int timeout_ms,
                                             std::size_t max_line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return ReadStatus::kLine;
    }
    if (buffer_.size() > max_line) return ReadStatus::kError;
    if (eof_) return ReadStatus::kEof;
    if (!fd_.valid()) return ReadStatus::kError;
    if (!wait_readable(fd_.get(), timeout_ms)) return ReadStatus::kTimeout;
    char chunk[4096];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;  // deliver any final unterminated bytes as EOF, not a line
    }
    if (errno == EINTR) continue;
    return ReadStatus::kError;
  }
}

bool UnixStream::write_line(const std::string& line) {
  if (!fd_.valid()) return false;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, never as a
    // process-killing SIGPIPE.
    const ssize_t n = ::send(fd_.get(), framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void UnixListener::bind(const std::string& path, int backlog) {
  SERELIN_REQUIRE(!fd_.valid(), "listener is already bound");
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw Error(errno_detail("socket"));
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (errno != EADDRINUSE)
      throw BindError(errno_detail(("bind " + path).c_str()));
    // A socket file already exists. A *live* server accepts connections;
    // a stale file from a crashed one refuses them and is safe to reclaim.
    Fd probe(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (probe.valid() &&
        ::connect(probe.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      throw BindError("bind " + path + ": address already in use "
                      "(another server is listening)");
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0)
      throw BindError(errno_detail(("bind " + path).c_str()));
  }
  if (::listen(fd.get(), backlog) != 0) {
    ::unlink(path.c_str());
    throw Error(errno_detail(("listen " + path).c_str()));
  }
  fd_ = std::move(fd);
  path_ = path;
}

UnixStream UnixListener::accept(int timeout_ms) {
  SERELIN_REQUIRE(fd_.valid(), "accept on a closed listener");
  if (!wait_readable(fd_.get(), timeout_ms)) return UnixStream();
  Fd conn(::accept(fd_.get(), nullptr, nullptr));
  if (!conn.valid()) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED)
      return UnixStream();
    throw Error(errno_detail("accept"));
  }
  return UnixStream(std::move(conn));
}

void UnixListener::close() {
  if (fd_.valid()) {
    fd_.reset();
    ::unlink(path_.c_str());
  }
}

}  // namespace serelin
