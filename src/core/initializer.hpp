// Section V of the paper: choosing the clock period Φ, the short-path bound
// R_min, and a feasible initial retiming for the MinObs/MinObsWin solvers.
//
// The paper starts from a circuit retimed for minimum period under setup
// AND hold constraints (Lin–Zhou DAC'06 [23]); when no such retiming exists
// (reconvergent paths), it falls back to plain min-period retiming [24]. The
// resulting minimal period is relaxed by ε = 10%. R_min is then the minimal
// register-output-to-boundary short path of the initial circuit — or, in
// the fallback case, the minimal gate delay (the paper's choice for
// s15850.1, which makes P2' behave like a plain hold floor).
//
// Our setup/hold pass mirrors that structure: min-period retiming first,
// then a bounded greedy hold repair that applies the same forward
// register moves a P2' fix uses. If the repair converges we have a
// setup/hold-feasible start; otherwise we keep the setup-only retiming and
// take the fallback R_min.
#pragma once

#include "rgraph/retiming_graph.hpp"
#include "support/deadline.hpp"
#include "timing/params.hpp"

namespace serelin {

struct InitOptions {
  double setup = 0.0;   ///< Ts (paper experiments: 0)
  double hold = 2.0;    ///< Th (paper experiments: 2)
  double epsilon = 0.10;  ///< period relaxation ε
  int feas_passes = 0;    ///< FEAS budget forwarded to MinPeriodRetimer
  /// Round the relaxed period up to an integer (the paper's Table I lists
  /// integer Φ); disable for tests with fractional delays.
  bool integer_period = true;
  /// Forwarded to the inner MinPeriodRetimer: on expiry the period search
  /// stops at its best feasible point (the initialization stays legal,
  /// just possibly with a looser Φ than the true minimum).
  Deadline deadline;
};

struct InitResult {
  Retiming r;            ///< feasible initial retiming
  TimingParams timing;   ///< chosen Φ (relaxed), Ts, Th
  double rmin = 0.0;     ///< short-path bound for P2'
  double min_period = 0.0;  ///< Φ_min before relaxation
  bool setup_hold_ok = false;  ///< hold repair converged
};

/// Computes the Section-V initialization for graph `g`.
InitResult initialize_retiming(const RetimingGraph& g,
                               const InitOptions& options);

/// Minimal register-output-to-boundary short path under retiming `r`:
///   min over edges (u,v) with w_r > 0 of ( d(v) + min_after(v) ),
/// zero when some register directly feeds a primary output. Returns +inf
/// when the circuit has no registers at all.
double min_short_path(const RetimingGraph& g, const Retiming& r,
                      const TimingParams& params);

}  // namespace serelin
