#include "core/solver.hpp"

#include <string>
#include <vector>

#include "core/regular_forest.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "timing/constraints.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {

MinObsWinSolver::MinObsWinSolver(const RetimingGraph& g, const ObsGains& gains,
                                 SolverOptions options)
    : g_(&g), gains_(&gains), opt_(options) {
  SERELIN_REQUIRE(gains.gain.size() == g.vertex_count(),
                  "gains must be indexed by VertexId");
}

/// One run of the Algorithm-1 loop with a fresh forest. Returns the number
/// of commits made (r, gain and iteration counters accumulate in `out`).
int MinObsWinSolver::run_pass(const ConstraintChecker& checker,
                              GraphTiming& timing, SolverResult& out) const {
  std::vector<char> movable(g_->vertex_count());
  for (VertexId v = 0; v < g_->vertex_count(); ++v)
    movable[v] = g_->movable(v);
  RegularForest forest(gains_->gain, movable);

  const std::int64_t cap =
      opt_.max_iterations > 0
          ? opt_.max_iterations
          : 4096 + 64 * static_cast<std::int64_t>(g_->vertex_count());
  const std::size_t batch = std::max<std::size_t>(1, opt_.violation_batch);

  int commits = 0;
  std::vector<char> movers(g_->vertex_count(), 0);
  std::string trail;  // recent violations, reported on budget exhaustion
  for (;;) {
    // Deadline checkpoint: here out.r is feasible (the initial retiming,
    // or the state after the last commit/revert), so stopping now yields
    // a legal best-so-far result.
    if (const StopReason sr = opt_.deadline.status();
        sr != StopReason::kNone) {
      out.stop_reason = sr;
      out.stop_detail = std::string(stop_reason_name(sr)) +
                        " during MinObsWin after " +
                        std::to_string(out.commits) +
                        " commit(s); returning best feasible retiming";
      break;
    }
    const std::vector<VertexId> candidate = forest.positive_set();
    if (candidate.empty()) break;  // no improving closed set remains
    SERELIN_ASSERT(out.iterations < cap,
                   "MinObsWin iteration budget exhausted (livelock?); "
                   "recent constraints: " +
                       trail);
    ++out.iterations;
    SERELIN_COUNT(kSolverIterations, 1);

    // Tentative move: r(v) -= w(v) for the whole positive set.
    for (VertexId v : candidate) {
      out.r[v] -= forest.weight(v);
      movers[v] = 1;
    }
    // Incremental relabel: only the cones around the moved vertices are
    // touched, and the returned delta narrows the violation scan to the
    // dirty edges/vertices — bit-identical to a full recompute + full scan
    // (see TimingDelta), but O(cone) instead of O(|V|+|E|) per iteration.
    const TimingDelta& delta = timing.update(out.r, candidate);
    const auto viols =
        checker.find_violations(out.r, timing, delta, movers, batch);

    if (viols.empty()) {
      // Feasible: commit. The positive set has positive weighted gain by
      // construction, so the objective strictly improves.
      for (VertexId v : candidate) {
        out.objective_gain += forest.gain(v) * forest.weight(v);
        movers[v] = 0;
      }
      ++commits;
      ++out.commits;
      SERELIN_COUNT(kSolverCommits, 1);
      continue;
    }

    // Record which q's moved before reverting, then fold every active
    // constraint into the forest. Later entries may be staled by earlier
    // ones (their p cancelled); those are skipped.
    std::vector<char> q_moved(viols.size());
    for (std::size_t i = 0; i < viols.size(); ++i)
      q_moved[i] = movers[viols[i].q];
    for (VertexId v : candidate) {
      out.r[v] += forest.weight(v);
      movers[v] = 0;
    }
    // Roll the labels back to the (feasible) pre-move state, so the next
    // iteration's delta is measured against a violation-free baseline —
    // the invariant the dirty-set scan above relies on. After a p0_dirty
    // step the labels never moved and this is a cheap no-op diff.
    timing.update(out.r, candidate);
    for (std::size_t i = 0; i < viols.size(); ++i) {
      const Violation& viol = viols[i];
      if (i > 0 && !forest.in_positive_tree(viol.p)) continue;  // stale
      const std::int32_t needed =
          viol.w + (q_moved[i] ? forest.weight(viol.q) : 0);
      if (out.iterations + 64 >= cap && i == 0) {
        trail += " [" + std::to_string(static_cast<int>(viol.kind)) + ":p" +
                 std::to_string(viol.p) + ",q" + std::to_string(viol.q) +
                 ",w" + std::to_string(needed) + "]";
      }
      forest.add_constraint(viol.p, viol.q, needed);
    }
  }
  return commits;
}

SolverResult MinObsWinSolver::solve(const Retiming& initial) const {
  SERELIN_SPAN(opt_.enforce_elw ? "solver/minobswin" : "solver/minobs");
  SERELIN_REQUIRE(g_->valid(initial), "initial retiming must be valid");
  const double rmin = opt_.enforce_elw ? opt_.rmin : 0.0;
  ConstraintChecker checker(*g_, opt_.timing, rmin);
  GraphTiming timing(*g_, opt_.timing);

  SolverResult out;
  out.r = initial;

  // The incremental scheme requires a feasible start (Section V provides
  // one); when even the start violates P2' unfixably, the paper's
  // behaviour is to return it unchanged (the b18/b19 rows of Table I).
  timing.compute(out.r);
  if (checker.find_violation(out.r, timing)) {
    out.exited_early = true;
    return out;
  }

  // Algorithm 1 until its forest converges, then restart with a fresh
  // forest: accumulated constraints (in particular blocking links to
  // boundary vertices and cut-stale edges) are conservative, and a later
  // circuit state can unlock moves an earlier constraint froze. Passes
  // repeat while they commit; each commit strictly improves the bounded
  // objective, so the restart loop terminates.
  while (out.stop_reason == StopReason::kNone &&
         run_pass(checker, timing, out) > 0) {
  }
  return out;
}

}  // namespace serelin
