#include "core/solver.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/regular_forest.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "timing/constraints.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {

std::string SolverProgress::encode() const {
  BinWriter w;
  w.u32(static_cast<std::uint32_t>(r.size()));
  for (const std::int32_t rv : r) w.i32(rv);
  w.i32(commits);
  w.i64(iterations);
  w.i64(objective_gain);
  w.i32(pass_commits);
  for (const char a : avoid) w.u8(static_cast<std::uint8_t>(a));
  for (const VertexId p : forest.parent) w.u32(p);
  for (const auto& kids : forest.children) {
    w.u32(static_cast<std::uint32_t>(kids.size()));
    for (const VertexId c : kids) w.u32(c);
  }
  for (const char u : forest.u) w.u8(static_cast<std::uint8_t>(u));
  for (const std::int32_t fw : forest.w) w.i32(fw);
  return w.take();
}

SolverProgress SolverProgress::decode(std::string_view bytes) {
  BinReader rd(bytes);
  SolverProgress p;
  const std::uint32_t n = rd.u32();
  p.r.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) p.r[i] = rd.i32();
  p.commits = rd.i32();
  p.iterations = rd.i64();
  p.objective_gain = rd.i64();
  p.pass_commits = rd.i32();
  p.avoid.resize(n);
  for (std::uint32_t i = 0; i < n; ++i)
    p.avoid[i] = static_cast<char>(rd.u8());
  p.forest.parent.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) p.forest.parent[i] = rd.u32();
  p.forest.children.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t kids = rd.u32();
    if (kids > n)
      throw ParseError("solver progress: impossible child count " +
                       std::to_string(kids));
    p.forest.children[i].resize(kids);
    for (std::uint32_t k = 0; k < kids; ++k)
      p.forest.children[i][k] = rd.u32();
  }
  p.forest.u.resize(n);
  for (std::uint32_t i = 0; i < n; ++i)
    p.forest.u[i] = static_cast<char>(rd.u8());
  p.forest.w.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) p.forest.w[i] = rd.i32();
  if (!rd.done())
    throw ParseError("solver progress: trailing bytes past the snapshot");
  return p;
}

MinObsWinSolver::MinObsWinSolver(const RetimingGraph& g, const ObsGains& gains,
                                 SolverOptions options)
    : g_(&g), gains_(&gains), opt_(options) {
  SERELIN_REQUIRE(gains.gain.size() == g.vertex_count(),
                  "gains must be indexed by VertexId");
}

void MinObsWinSolver::offer_checkpoint(const SolverResult& out,
                                       const std::vector<char>& avoid,
                                       const RegularForest& forest,
                                       int pass_commits, bool force) const {
  if (!opt_.checkpoint.enabled()) return;
  const auto fill = [&](CheckpointImage& image) {
    SolverProgress p;
    p.r = out.r;
    p.commits = out.commits;
    p.iterations = out.iterations;
    p.objective_gain = out.objective_gain;
    p.pass_commits = pass_commits;
    p.avoid = avoid;
    p.forest = forest.state();
    image.sections.emplace_back("solver", p.encode());
  };
  if (force)
    opt_.checkpoint.force(fill);
  else
    opt_.checkpoint.offer(fill);
}

/// One run of the Algorithm-1 loop over `forest` (fresh from solve(), or a
/// restored mid-pass forest from resume()). `pass_commits` counts this
/// pass's commits; r, gain and iteration counters accumulate in `out`.
///
/// `avoid_q` (size |V|, may be empty) marks fix targets that a previous
/// pass proved to dead-end in a blocked tree; when a P2' violation's
/// primary q is marked and the violation carries a drain alternate that is
/// not, the alternate is folded instead. `frozen` is filled with the
/// vertices of blocked trees at convergence — the dead-end evidence the
/// next re-seeded pass learns from.
void MinObsWinSolver::run_pass(const ConstraintChecker& checker,
                               GraphTiming& timing, SolverResult& out,
                               const std::vector<char>& avoid_q,
                               std::vector<char>& frozen,
                               RegularForest& forest,
                               int& pass_commits) const {
  const std::int64_t cap =
      opt_.max_iterations > 0
          ? opt_.max_iterations
          : 4096 + 64 * static_cast<std::int64_t>(g_->vertex_count());
  const std::size_t batch = std::max<std::size_t>(1, opt_.violation_batch);

  std::vector<char> movers(g_->vertex_count(), 0);
  std::string trail;  // recent violations, reported on budget exhaustion
  for (;;) {
    // Deadline checkpoint: here out.r is feasible (the initial retiming,
    // or the state after the last commit/revert), so stopping now yields
    // a legal best-so-far result.
    if (const StopReason sr = opt_.deadline.status();
        sr != StopReason::kNone) {
      out.stop_reason = sr;
      out.stop_detail = std::string(stop_reason_name(sr)) +
                        " during MinObsWin after " +
                        std::to_string(out.commits) +
                        " commit(s); returning best feasible retiming";
      // Early stop: persist unconditionally, so the operator's Ctrl-C (or
      // the deadline) leaves a resumable snapshot of this exact state.
      offer_checkpoint(out, avoid_q, forest, pass_commits, /*force=*/true);
      break;
    }
    const std::vector<VertexId> candidate = forest.positive_set();
    if (candidate.empty()) break;  // no improving closed set remains
    SERELIN_ASSERT(out.iterations < cap,
                   "MinObsWin iteration budget exhausted (livelock?); "
                   "recent constraints: " +
                       trail);
    ++out.iterations;
    SERELIN_COUNT(kSolverIterations, 1);

    // Tentative move: r(v) -= w(v) for the whole positive set.
    for (VertexId v : candidate) {
      out.r[v] -= forest.weight(v);
      movers[v] = 1;
    }
    // Incremental relabel: only the cones around the moved vertices are
    // touched, and the returned delta narrows the violation scan to the
    // dirty edges/vertices — bit-identical to a full recompute + full scan
    // (see TimingDelta), but O(cone) instead of O(|V|+|E|) per iteration.
    const TimingDelta& delta = timing.update(out.r, candidate);
    const auto viols =
        checker.find_violations(out.r, timing, delta, movers, batch);

    if (viols.empty()) {
      // Feasible: commit. The positive set has positive weighted gain by
      // construction, so the objective strictly improves.
      for (VertexId v : candidate) {
        out.objective_gain += forest.gain(v) * forest.weight(v);
        movers[v] = 0;
      }
      ++pass_commits;
      ++out.commits;
      SERELIN_COUNT(kSolverCommits, 1);
      offer_checkpoint(out, avoid_q, forest, pass_commits, /*force=*/false);
      continue;
    }

    // Resolve each violation to the fix target a re-seeded pass should
    // use: the drain alternate when the primary q is a known dead end.
    std::vector<VertexId> fix_q(viols.size());
    std::vector<std::int32_t> fix_w(viols.size());
    for (std::size_t i = 0; i < viols.size(); ++i) {
      const Violation& viol = viols[i];
      const bool swap = !avoid_q.empty() && avoid_q[viol.q] &&
                        viol.alt_q != kNullVertex && !avoid_q[viol.alt_q];
      fix_q[i] = swap ? viol.alt_q : viol.q;
      fix_w[i] = swap ? viol.alt_w : viol.w;
    }
    // Record which q's moved before reverting, then fold every active
    // constraint into the forest. Later entries may be staled by earlier
    // ones (their p cancelled); those are skipped.
    std::vector<char> q_moved(viols.size());
    for (std::size_t i = 0; i < viols.size(); ++i)
      q_moved[i] = movers[fix_q[i]];
    for (VertexId v : candidate) {
      out.r[v] += forest.weight(v);
      movers[v] = 0;
    }
    // Roll the labels back to the (feasible) pre-move state, so the next
    // iteration's delta is measured against a violation-free baseline —
    // the invariant the dirty-set scan above relies on. After a p0_dirty
    // step the labels never moved and this is a cheap no-op diff.
    timing.update(out.r, candidate);
    for (std::size_t i = 0; i < viols.size(); ++i) {
      const Violation& viol = viols[i];
      if (i > 0 && !forest.in_positive_tree(viol.p)) continue;  // stale
      const std::int32_t needed =
          fix_w[i] + (q_moved[i] ? forest.weight(fix_q[i]) : 0);
      if (out.iterations + 64 >= cap && i == 0) {
        trail += " [" + std::to_string(static_cast<int>(viol.kind)) + ":p" +
                 std::to_string(viol.p) + ",q" + std::to_string(fix_q[i]) +
                 ",w" + std::to_string(needed) + "]";
      }
      forest.add_constraint(viol.p, fix_q[i], needed);
    }
  }
  // Dead-end evidence for the re-seeding loop. At convergence no positive
  // tree remains, so every non-singleton tree is a fix chain that killed
  // its own gain — whether it hit an immovable vertex (blocked) or merely
  // dragged in enough negative gain. Its members become avoid-hints.
  // Untouched singletons stay unmarked: they are exactly the still-open
  // alternates a re-seeded pass may try.
  frozen.assign(g_->vertex_count(), 0);
  for (VertexId v = 0; v < g_->vertex_count(); ++v) {
    const VertexId root = forest.root_of(v);
    if (forest.subtree_blocked(root) > 0 || !forest.is_singleton(root))
      frozen[v] = 1;
  }
}

/// The outer Algorithm-1-until-convergence loop shared by solve() and
/// resume(): repeat passes while they commit, then re-seed with grown
/// avoid-hints (see solve() for the full rationale). `mid_pass_forest`,
/// when non-null, is a restored checkpoint forest the first pass continues
/// instead of starting fresh.
SolverResult MinObsWinSolver::run_passes(const ConstraintChecker& checker,
                                         GraphTiming& timing, SolverResult out,
                                         std::vector<char> avoid,
                                         RegularForest* mid_pass_forest,
                                         int mid_pass_commits) const {
  std::vector<char> movable(g_->vertex_count());
  for (VertexId v = 0; v < g_->vertex_count(); ++v)
    movable[v] = g_->movable(v);

  std::vector<char> frozen;
  bool resume_pass = mid_pass_forest != nullptr;
  while (out.stop_reason == StopReason::kNone) {
    int pass_commits = resume_pass ? mid_pass_commits : 0;
    RegularForest fresh(gains_->gain, movable);
    RegularForest& forest = resume_pass ? *mid_pass_forest : fresh;
    resume_pass = false;
    run_pass(checker, timing, out, avoid, frozen, forest, pass_commits);
    if (pass_commits > 0) continue;
    bool grew = false;
    for (VertexId v = 0; v < g_->vertex_count(); ++v) {
      if (frozen[v] && !avoid[v]) {
        avoid[v] = 1;
        grew = true;
      }
    }
    if (!grew) break;
  }
  return out;
}

SolverResult MinObsWinSolver::solve(const Retiming& initial) const {
  SERELIN_SPAN(opt_.enforce_elw ? "solver/minobswin" : "solver/minobs");
  SERELIN_REQUIRE(g_->valid(initial), "initial retiming must be valid");
  const double rmin = opt_.enforce_elw ? opt_.rmin : 0.0;
  ConstraintChecker checker(*g_, opt_.timing, rmin);
  GraphTiming timing(*g_, opt_.timing);

  SolverResult out;
  out.r = initial;

  // The incremental scheme requires a feasible start (Section V provides
  // one); when even the start violates P2' unfixably, the paper's
  // behaviour is to return it unchanged (the b18/b19 rows of Table I).
  timing.compute(out.r);
  if (checker.find_violation(out.r, timing)) {
    out.exited_early = true;
    return out;
  }

  // Algorithm 1 until its forest converges, then restart with a fresh
  // forest: accumulated constraints (in particular blocking links to
  // boundary vertices and cut-stale edges) are conservative, and a later
  // circuit state can unlock moves an earlier constraint froze. Passes
  // repeat while they commit; each commit strictly improves the bounded
  // objective, so that part terminates. A 0-commit pass does not end the
  // solve outright: the vertices its forest froze in blocked trees become
  // avoid-hints, and one more pass is re-seeded in which P2' violations
  // whose primary fix target is a hint fold their drain alternate instead
  // — the resolution an implication chain into an immovable vertex ruled
  // out. Re-seeding repeats only while the hint set grows (at most |V|
  // times), so termination is preserved.
  std::vector<char> avoid(g_->vertex_count(), 0);
  return run_passes(checker, timing, std::move(out), std::move(avoid),
                    nullptr, 0);
}

SolverResult MinObsWinSolver::resume(const SolverProgress& progress) const {
  SERELIN_SPAN(opt_.enforce_elw ? "solver/minobswin" : "solver/minobs");
  SERELIN_REQUIRE(progress.r.size() == g_->vertex_count() &&
                      progress.avoid.size() == g_->vertex_count(),
                  "solver progress snapshot is for a different graph");
  SERELIN_REQUIRE(g_->valid(progress.r),
                  "solver progress carries an invalid retiming");
  const double rmin = opt_.enforce_elw ? opt_.rmin : 0.0;
  ConstraintChecker checker(*g_, opt_.timing, rmin);
  GraphTiming timing(*g_, opt_.timing);

  SolverResult out;
  out.r = progress.r;
  out.commits = progress.commits;
  out.iterations = progress.iterations;
  out.objective_gain = progress.objective_gain;

  // Snapshots are only taken at feasible states (commit points and early
  // stops), so a violation here means the snapshot does not belong to this
  // circuit/options after all.
  timing.compute(out.r);
  SERELIN_REQUIRE(!checker.find_violation(out.r, timing),
                  "solver progress snapshot is not feasible under these "
                  "options (wrong circuit or parameters?)");

  std::vector<char> movable(g_->vertex_count());
  for (VertexId v = 0; v < g_->vertex_count(); ++v)
    movable[v] = g_->movable(v);
  // The restoring constructor revalidates structure and invariants, so a
  // damaged snapshot throws here instead of resuming wrong.
  RegularForest forest(gains_->gain, movable, progress.forest);

  return run_passes(checker, timing, std::move(out), progress.avoid, &forest,
                    progress.pass_commits);
}

}  // namespace serelin
