#include "core/min_period.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {

MinPeriodRetimer::MinPeriodRetimer(const RetimingGraph& g, Options options)
    : g_(&g), opt_(options) {}

std::optional<Retiming> MinPeriodRetimer::retime_for_period(
    double phi, const Retiming& start) const {
  const double budget = phi - opt_.setup;
  Retiming r = start;
  GraphTiming timing(*g_, TimingParams{phi, opt_.setup, 0.0});
  const int passes =
      opt_.max_passes > 0 ? opt_.max_passes
                          : static_cast<int>(g_->vertex_count());
  std::vector<char> moves(g_->vertex_count(), 0);
  for (int pass = 0; pass < passes; ++pass) {
    SERELIN_COUNT(kFeasPasses, 1);
    // An interrupted probe reports "not feasible for phi" — conservative
    // and safe; minimize() notices the expiry itself and stops cleanly.
    if (opt_.deadline.expired()) return std::nullopt;
    // First pass computes from scratch; later passes relabel only the
    // cones around the vertices incremented last pass (r stays valid
    // throughout thanks to the demotion closure below).
    timing.update(r);
    bool violated = false;
    // Candidate moves: violated movable vertices.
    for (VertexId v = 0; v < g_->vertex_count(); ++v) {
      const bool over = timing.arrival(v) > budget + 1e-9;
      violated |= over;
      moves[v] = over && g_->movable(v);
    }
    if (!violated) return r;
    // Backward-retiming v removes a register from every out-edge, so a
    // register-free out-edge is only safe if its head moves too. Demote
    // candidates until that closure holds (upstream increments may still
    // relieve the demoted vertices on a later pass).
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < g_->vertex_count(); ++v) {
        if (!moves[v]) continue;
        for (EdgeId eid : g_->out_edges(v)) {
          if (g_->wr(eid, r) == 0 && !moves[g_->edge(eid).to]) {
            moves[v] = 0;
            changed = true;
            break;
          }
        }
      }
    }
    bool any = false;
    for (VertexId v = 0; v < g_->vertex_count(); ++v) {
      if (!moves[v]) continue;
      ++r[v];
      any = true;
    }
    if (!any) return std::nullopt;
  }
  return std::nullopt;
}

MinPeriodRetimer::Result MinPeriodRetimer::minimize() const {
  SERELIN_SPAN("solver/minperiod");
  // Upper bound: the unretimed critical path (r = 0 always achieves it).
  GraphTiming timing(*g_, TimingParams{0.0, opt_.setup, 0.0});
  const Retiming zero = g_->zero_retiming();
  timing.compute(zero);
  double hi = opt_.setup;
  double lo = 0.0;
  for (VertexId v = 0; v < g_->vertex_count(); ++v) {
    hi = std::max(hi, timing.arrival(v) + opt_.setup);
    lo = std::max(lo, g_->vertex(v).delay + opt_.setup);
  }
  Result best{hi, zero, StopReason::kNone, {}};
  if (auto r = retime_for_period(hi, zero)) best.r = std::move(*r);
  for (;;) {
    // Checked before the convergence test: an already-expired deadline
    // must surface as a Partial result even when the search interval is
    // degenerate (the upper-bound probe above was interrupted too).
    if (const StopReason sr = opt_.deadline.status();
        sr != StopReason::kNone) {
      best.stop_reason = sr;  // best-so-far: r achieves best.period
      best.stop_detail = std::string(stop_reason_name(sr)) +
                         " during min-period binary search; best feasible "
                         "period " +
                         std::to_string(best.period);
      return best;
    }
    if (hi - lo <= opt_.tolerance) return best;
    const double mid = 0.5 * (lo + hi);
    if (auto r = retime_for_period(mid, zero)) {
      hi = mid;
      best = Result{mid, std::move(*r), StopReason::kNone, {}};
    } else {
      lo = mid;
    }
  }
}

}  // namespace serelin
