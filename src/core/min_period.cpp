#include "core/min_period.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {

std::string PeriodProgress::encode() const {
  BinWriter w;
  // Doubles travel as their IEEE-754 bit patterns: the resumed search must
  // bisect the exact same interval the interrupted one would have.
  w.u64(std::bit_cast<std::uint64_t>(lo));
  w.u64(std::bit_cast<std::uint64_t>(hi));
  w.u64(std::bit_cast<std::uint64_t>(period));
  w.u32(static_cast<std::uint32_t>(r.size()));
  for (const std::int32_t rv : r) w.i32(rv);
  return w.take();
}

PeriodProgress PeriodProgress::decode(std::string_view bytes) {
  BinReader rd(bytes);
  PeriodProgress p;
  p.lo = std::bit_cast<double>(rd.u64());
  p.hi = std::bit_cast<double>(rd.u64());
  p.period = std::bit_cast<double>(rd.u64());
  const std::uint32_t n = rd.u32();
  p.r.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) p.r[i] = rd.i32();
  if (!rd.done())
    throw ParseError("period progress: trailing bytes past the snapshot");
  return p;
}

MinPeriodRetimer::MinPeriodRetimer(const RetimingGraph& g, Options options)
    : g_(&g), opt_(options) {}

std::optional<Retiming> MinPeriodRetimer::retime_for_period(
    double phi, const Retiming& start) const {
  const double budget = phi - opt_.setup;
  Retiming r = start;
  GraphTiming timing(*g_, TimingParams{phi, opt_.setup, 0.0});
  const int passes =
      opt_.max_passes > 0 ? opt_.max_passes
                          : static_cast<int>(g_->vertex_count());
  std::vector<char> moves(g_->vertex_count(), 0);
  for (int pass = 0; pass < passes; ++pass) {
    SERELIN_COUNT(kFeasPasses, 1);
    // An interrupted probe reports "not feasible for phi" — conservative
    // and safe; minimize() notices the expiry itself and stops cleanly.
    if (opt_.deadline.expired()) return std::nullopt;
    // First pass computes from scratch; later passes relabel only the
    // cones around the vertices incremented last pass (r stays valid
    // throughout thanks to the demotion closure below).
    timing.update(r);
    bool violated = false;
    // Candidate moves: violated movable vertices.
    for (VertexId v = 0; v < g_->vertex_count(); ++v) {
      const bool over = timing.arrival(v) > budget + 1e-9;
      violated |= over;
      moves[v] = over && g_->movable(v);
    }
    if (!violated) return r;
    // Backward-retiming v removes a register from every out-edge, so a
    // register-free out-edge is only safe if its head moves too. Demote
    // candidates until that closure holds (upstream increments may still
    // relieve the demoted vertices on a later pass).
    bool changed = true;
    while (changed) {
      // The closure is Θ(|V|·|E|) worst case per probe — long enough on
      // big circuits that cancellation must be able to land between
      // sweeps, not just between passes.
      if (opt_.deadline.expired()) return std::nullopt;
      changed = false;
      for (VertexId v = 0; v < g_->vertex_count(); ++v) {
        if (!moves[v]) continue;
        for (EdgeId eid : g_->out_edges(v)) {
          if (g_->wr(eid, r) == 0 && !moves[g_->edge(eid).to]) {
            moves[v] = 0;
            changed = true;
            break;
          }
        }
      }
    }
    bool any = false;
    for (VertexId v = 0; v < g_->vertex_count(); ++v) {
      if (!moves[v]) continue;
      ++r[v];
      any = true;
    }
    if (!any) return std::nullopt;
  }
  return std::nullopt;
}

MinPeriodRetimer::Result MinPeriodRetimer::minimize() const {
  SERELIN_SPAN("solver/minperiod");
  // Upper bound: the unretimed critical path (r = 0 always achieves it).
  GraphTiming timing(*g_, TimingParams{0.0, opt_.setup, 0.0});
  const Retiming zero = g_->zero_retiming();
  timing.compute(zero);
  double hi = opt_.setup;
  double lo = 0.0;
  for (VertexId v = 0; v < g_->vertex_count(); ++v) {
    hi = std::max(hi, timing.arrival(v) + opt_.setup);
    lo = std::max(lo, g_->vertex(v).delay + opt_.setup);
  }
  Result best{hi, zero, StopReason::kNone, {}};
  if (auto r = retime_for_period(hi, zero)) best.r = std::move(*r);
  return search(lo, hi, std::move(best));
}

MinPeriodRetimer::Result MinPeriodRetimer::resume(
    const PeriodProgress& progress) const {
  SERELIN_SPAN("solver/minperiod");
  SERELIN_REQUIRE(progress.r.size() == g_->vertex_count(),
                  "period progress snapshot is for a different graph");
  SERELIN_REQUIRE(g_->valid(progress.r),
                  "period progress carries an invalid retiming");
  return search(progress.lo, progress.hi,
                Result{progress.period, progress.r, StopReason::kNone, {}});
}

MinPeriodRetimer::Result MinPeriodRetimer::search(double lo, double hi,
                                                  Result best) const {
  const Retiming zero = g_->zero_retiming();
  const auto snapshot = [&](CheckpointImage& image) {
    PeriodProgress p;
    p.lo = lo;
    p.hi = hi;
    p.period = best.period;
    p.r = best.r;
    image.sections.emplace_back("minperiod", p.encode());
  };
  for (;;) {
    // Checked before the convergence test: an already-expired deadline
    // must surface as a Partial result even when the search interval is
    // degenerate (the upper-bound probe above was interrupted too).
    if (const StopReason sr = opt_.deadline.status();
        sr != StopReason::kNone) {
      best.stop_reason = sr;  // best-so-far: r achieves best.period
      best.stop_detail = std::string(stop_reason_name(sr)) +
                         " during min-period binary search; best feasible "
                         "period " +
                         std::to_string(best.period);
      if (opt_.checkpoint.enabled()) opt_.checkpoint.force(snapshot);
      return best;
    }
    if (hi - lo <= opt_.tolerance) return best;
    const double mid = 0.5 * (lo + hi);
    if (auto r = retime_for_period(mid, zero)) {
      hi = mid;
      best = Result{mid, std::move(*r), StopReason::kNone, {}};
    } else {
      lo = mid;
    }
    if (opt_.checkpoint.enabled()) opt_.checkpoint.offer(snapshot);
  }
}

}  // namespace serelin
