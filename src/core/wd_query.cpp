#include "core/wd_query.hpp"

#include <algorithm>
#include <queue>

#include "core/min_period.hpp"
#include "core/wd_matrices.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {

std::optional<Retiming> wd_solve_constraints(
    const RetimingGraph& g, const std::vector<WdConstraint>& extra) {
  const std::size_t n = g.vertex_count();

  // Difference constraints r(u) − r(v) ≤ c become edges v → u of weight c
  // in the shortest-path encoding. Bellman–Ford starts from all-zero
  // distances (an implicit super-source, which cannot lie on a cycle), so
  // no blanket root→v edges are needed — they would wrongly cap every
  // label at the root's, excluding the positive labels backward moves
  // need. A virtual root (index n) only *pins* the boundary labels
  // together; the final labels are normalized against it.
  std::vector<WdConstraint> edges;
  edges.reserve(g.edge_count() + 2 * n + extra.size());
  const VertexId root = static_cast<VertexId>(n);
  for (VertexId v = 0; v < n; ++v) {
    if (!g.movable(v)) {
      edges.push_back({root, v, 0});
      edges.push_back({v, root, 0});
    }
  }
  for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
    const REdge& e = g.edge(eid);
    edges.push_back({e.to, e.from, e.w});  // P0: r(u) − r(v) ≤ w(e)
  }
  edges.insert(edges.end(), extra.begin(), extra.end());

  // Bellman–Ford; a negative cycle means the period is infeasible. Each
  // successful relaxation is one pivot of the difference-constraint LP.
  std::vector<std::int64_t> dist(n + 1, 0);
  std::int64_t relaxations = 0;
  bool changed = true;
  for (std::size_t round = 0; round <= n + 1 && changed; ++round) {
    changed = false;
    for (const WdConstraint& e : edges) {
      if (dist[e.from] + e.cost < dist[e.to]) {
        dist[e.to] = dist[e.from] + e.cost;
        ++relaxations;
        changed = true;
      }
    }
  }
  SERELIN_COUNT(kLpRelaxations, relaxations);
  if (changed) return std::nullopt;  // still relaxing: negative cycle

  Retiming r(n, 0);
  for (VertexId v = 0; v < n; ++v)
    r[v] = static_cast<std::int32_t>(dist[v] - dist[root]);
  SERELIN_ASSERT(g.valid(r), "W/D feasibility produced an invalid retiming");
  return r;
}

namespace {

/// Numeric slack when comparing D sums against a period budget — the same
/// tolerance the dense candidate dedup and the legacy P1 filter use.
constexpr double kTol = 1e-9;

// ---------------------------------------------------------------------------
// Dense engine: the matrices behind the interface.

class DenseWdQuery final : public WdQuery {
 public:
  DenseWdQuery(const RetimingGraph& g, const Deadline& deadline)
      : wd_(g, deadline) {}

  const char* engine() const override { return "dense"; }
  std::size_t size() const override { return wd_.size(); }
  std::int32_t w(VertexId u, VertexId v) override { return wd_.w(u, v); }
  double d(VertexId u, VertexId v) override { return wd_.d(u, v); }
  std::vector<double> candidate_periods() override {
    return wd_.candidate_periods();
  }
  bool exact_candidates() const override { return true; }
  std::size_t memory_bytes() const override { return wd_.memory_bytes(); }

  void for_each_period_constraint(
      double budget, const std::function<void(VertexId, VertexId,
                                              std::int32_t)>& emit) override {
    const std::size_t n = wd_.size();
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = 0; v < n; ++v) {
        if (wd_.w(u, v) == WdMatrices::kUnreachable) continue;
        if (wd_.d(u, v) <= budget + kTol) continue;
        emit(u, v, wd_.w(u, v) - 1);
      }
    }
  }

  const WdMatrices& matrices() const { return wd_; }

 private:
  WdMatrices wd_;
};

// ---------------------------------------------------------------------------
// Lazy engine: per-source rows on demand, O(|V|) working set.

class LazyWdQuery final : public WdQuery {
 public:
  LazyWdQuery(const RetimingGraph& g, const WdQueryOptions& options)
      : g_(&g), opt_(options), n_(g.vertex_count()) {
    wrow_.assign(n_, kUnreachable);
    drow_.assign(n_, 0.0);
    tight_pending_.assign(n_, 0);
    slot_of_.assign(n_, -1);
    slots_.resize(std::max<std::size_t>(1, opt_.cache_rows));
  }

  const char* engine() const override { return "lazy"; }
  std::size_t size() const override { return n_; }

  std::int32_t w(VertexId u, VertexId v) override {
    SERELIN_COUNT(kWdLazyQueries, 1);
    return row(u).w[v];
  }

  double d(VertexId u, VertexId v) override {
    SERELIN_COUNT(kWdLazyQueries, 1);
    return row(u).d[v];
  }

  /// Sampled ladder: D values of evenly strided source rows, sorted and
  /// tolerance-deduped exactly like the dense candidate set (of which
  /// this is a subset). Deterministic in (graph, ladder_samples) only.
  std::vector<double> candidate_periods() override {
    SERELIN_SPAN("wd/lazy-ladder");
    const std::size_t samples =
        std::min<std::size_t>(std::max<std::size_t>(1, opt_.ladder_samples),
                              n_);
    const std::size_t stride = std::max<std::size_t>(1, n_ / samples);
    std::vector<double> out;
    for (std::size_t src = 0; src < n_; src += stride) {
      const Row& r = row(static_cast<VertexId>(src));
      for (VertexId v = 0; v < n_; ++v)
        if (r.w[v] != kUnreachable) out.push_back(r.d[v]);
    }
    std::sort(out.begin(), out.end());
    std::size_t kept = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (kept == 0 || out[i] > out[kept - 1] + kTol) out[kept++] = out[i];
    }
    out.resize(kept);
    return out;
  }

  bool exact_candidates() const override { return false; }

  std::size_t memory_bytes() const override {
    std::size_t bytes = wrow_.capacity() * sizeof(std::int32_t) +
                        drow_.capacity() * sizeof(double) +
                        tight_pending_.capacity() * sizeof(std::uint32_t) +
                        slot_of_.capacity() * sizeof(std::int32_t);
    for (const Row& s : slots_)
      bytes += s.w.capacity() * sizeof(std::int32_t) +
               s.d.capacity() * sizeof(double);
    return bytes;
  }

  /// Period-pruned sweep: one bounded traversal per source, emitting only
  /// at cut-frontier vertices. Every omitted pair constraint is implied by
  /// an emitted one plus P0 telescoping along the register-minimal suffix
  /// (dominance invariant, docs/SPARSE_WD.md), so the constraint system
  /// solves to the same retiming as the dense sweep.
  void for_each_period_constraint(
      double budget, const std::function<void(VertexId, VertexId,
                                              std::int32_t)>& emit) override {
    SERELIN_SPAN("wd/lazy-constraints");
    for (VertexId s = 0; s < n_; ++s) {
      opt_.deadline.check("wd-query constraint sweep");
      traverse(s, budget, &emit);
      reset_scratch();
    }
  }

 private:
  struct Row {
    VertexId src = kNullVertex;
    std::uint64_t stamp = 0;
    std::vector<std::int32_t> w;
    std::vector<double> d;
  };

  /// Cached row for source u, computing (and possibly evicting the
  /// least-recently-used slot) on a miss. Eviction is deterministic: the
  /// stamp counter advances only with queries, never with wall time.
  const Row& row(VertexId u) {
    if (slot_of_[u] >= 0) {
      Row& hit = slots_[static_cast<std::size_t>(slot_of_[u])];
      hit.stamp = ++stamp_;
      return hit;
    }
    std::size_t victim = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].src == kNullVertex) {
        victim = i;
        break;
      }
      if (slots_[i].stamp < slots_[victim].stamp) victim = i;
    }
    Row& slot = slots_[victim];
    if (slot.src != kNullVertex) slot_of_[slot.src] = -1;

    opt_.deadline.check("wd-query row");
    traverse(u, kNoBudget, nullptr);
    slot.src = u;
    slot.stamp = ++stamp_;
    slot.w.assign(n_, kUnreachable);
    slot.d.assign(n_, 0.0);
    for (VertexId v : touched_) {
      slot.w[v] = wrow_[v];
      slot.d[v] = drow_[v];
    }
    reset_scratch();
    slot_of_[u] = static_cast<std::int32_t>(victim);
    return slot;
  }

  static constexpr double kNoBudget = std::numeric_limits<double>::infinity();

  /// One single-source W Dijkstra + tight-DAG delay DP — the same
  /// computation as a WdMatrices row, except that with a finite `budget`
  /// the DP never relaxes past a vertex whose running D already exceeds
  /// it: the vertex is emitted as the cut frontier instead, and the
  /// dominated cone behind it is skipped entirely.
  void traverse(VertexId s, double budget,
                const std::function<void(VertexId, VertexId, std::int32_t)>*
                    emit) {
    SERELIN_COUNT(kWdSources, 1);
    touched_.clear();
    order_.clear();

    wrow_[s] = 0;
    touched_.push_back(s);
    heap_.emplace(0, s);
    while (!heap_.empty()) {
      const auto [wu, u] = heap_.top();
      heap_.pop();
      SERELIN_COUNT(kWdHeapPops, 1);
      if (wu != wrow_[u]) continue;
      for (EdgeId eid : g_->out_edges(u)) {
        const REdge& e = g_->edge(eid);
        const std::int32_t cand = wu + e.w;
        if (cand < wrow_[e.to]) {
          if (wrow_[e.to] == kUnreachable) touched_.push_back(e.to);
          wrow_[e.to] = cand;
          heap_.emplace(cand, e.to);
        }
      }
    }

    // Tight-edge DAG pending counts over the reachable cone only (a tight
    // edge's endpoints are both reachable by definition).
    auto tight = [&](const REdge& e) {
      return wrow_[e.from] != kUnreachable &&
             wrow_[e.to] == wrow_[e.from] + e.w;
    };
    for (VertexId u : touched_) {
      drow_[u] = 0.0;
      for (EdgeId eid : g_->out_edges(u))
        if (tight(g_->edge(eid))) ++tight_pending_[g_->edge(eid).to];
    }

    // Every reachable vertex except s has a tight in-edge (the last edge
    // of a register-minimal path), so the DP starts from s alone.
    drow_[s] = g_->vertex(s).delay;
    order_.push_back(s);
    bool any_cut = false;
    for (std::size_t head = 0; head < order_.size(); ++head) {
      const VertexId u = order_[head];
      if (emit != nullptr && drow_[u] > budget + kTol) {
        // Cut frontier: emit r(s) − r(u) ≤ W(s,u) − 1 and stop — deeper
        // constraints are dominated (see header comment).
        (*emit)(s, u, wrow_[u] - 1);
        any_cut = true;
        continue;
      }
      for (EdgeId eid : g_->out_edges(u)) {
        const REdge& e = g_->edge(eid);
        if (!tight(e)) continue;
        drow_[e.to] = std::max(drow_[e.to], drow_[u] + g_->vertex(e.to).delay);
        if (--tight_pending_[e.to] == 0) order_.push_back(e.to);
      }
    }
    if (any_cut) SERELIN_COUNT(kWdRowsPruned, 1);
  }

  /// Restores the scratch arrays to their pristine state by undoing only
  /// the touched entries — keeps per-source cost proportional to the
  /// reachable cone, not |V|.
  void reset_scratch() {
    for (VertexId v : touched_) {
      wrow_[v] = kUnreachable;
      drow_[v] = 0.0;
      tight_pending_[v] = 0;
    }
    touched_.clear();
    order_.clear();
  }

  const RetimingGraph* g_;
  WdQueryOptions opt_;
  std::size_t n_ = 0;

  // Traversal scratch, reused across sources (touched-entry reset).
  std::vector<std::int32_t> wrow_;
  std::vector<double> drow_;
  std::vector<std::uint32_t> tight_pending_;
  std::vector<VertexId> order_;
  std::vector<VertexId> touched_;
  using HeapItem = std::pair<std::int32_t, VertexId>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;

  // LRU row cache.
  std::vector<Row> slots_;
  std::vector<std::int32_t> slot_of_;
  std::uint64_t stamp_ = 0;
};

}  // namespace

std::unique_ptr<WdQuery> make_wd_query(const RetimingGraph& g,
                                       WdQueryOptions options) {
  if (g.vertex_count() <= options.dense_threshold)
    return std::make_unique<DenseWdQuery>(g, options.deadline);
  return std::make_unique<LazyWdQuery>(g, options);
}

std::optional<Retiming> wd_query_retime_for_period(const RetimingGraph& g,
                                                   WdQuery& wd, double phi,
                                                   double setup) {
  SERELIN_REQUIRE(wd.size() == g.vertex_count(),
                  "W/D query does not match the graph");
  const double budget = phi - setup;
  std::vector<WdConstraint> extra;
  wd.for_each_period_constraint(
      budget, [&](VertexId u, VertexId v, std::int32_t cost) {
        extra.push_back({v, u, cost});  // r(u) − r(v) ≤ cost
      });
  return wd_solve_constraints(g, extra);
}

WdQueryMinPeriodResult wd_query_min_period(const RetimingGraph& g,
                                           WdQuery& wd, double setup,
                                           Deadline deadline) {
  SERELIN_SPAN("wd/query-min-period");
  WdQueryMinPeriodResult out;

  if (wd.exact_candidates()) {
    // Dense engine: the classical exact binary search over every distinct
    // D value, expressed through the interface.
    const std::vector<double> budgets = wd.candidate_periods();
    SERELIN_REQUIRE(!budgets.empty(), "graph without paths");
    std::size_t lo = 0, hi = budgets.size() - 1;
    auto first = wd_query_retime_for_period(g, wd, budgets[hi] + setup, setup);
    SERELIN_REQUIRE(first.has_value(),
                    "even the critical path period is infeasible");
    out.period = budgets[hi] + setup;
    out.r = std::move(*first);
    out.exact = true;
    while (lo < hi) {
      if (const StopReason sr = deadline.status(); sr != StopReason::kNone) {
        out.stop_reason = sr;
        out.stop_detail = std::string(stop_reason_name(sr)) +
                          " during dense candidate binary search; best "
                          "feasible period " +
                          std::to_string(out.period);
        return out;
      }
      const std::size_t mid = (lo + hi) / 2;
      if (auto r = wd_query_retime_for_period(g, wd, budgets[mid] + setup,
                                              setup)) {
        hi = mid;
        out.period = budgets[mid] + setup;
        out.r = std::move(*r);
      } else {
        lo = mid + 1;
      }
    }
    return out;
  }

  // Lazy engine: the sampled ladder brackets the optimum and FEAS probes
  // (O(|V|+|E|) each) decide feasibility — no pair constraints, no
  // matrices. The result is an upper bound on the exact minimum: FEAS
  // certifies every reported period with a legal retiming.
  MinPeriodRetimer::Options mp;
  mp.setup = setup;
  mp.deadline = deadline;
  const MinPeriodRetimer feas(g, mp);
  const Retiming zero = g.zero_retiming();

  // r = 0 achieves the unretimed critical path, so it is the fallback
  // upper bound even when every ladder sample probes infeasible.
  GraphTiming timing(g, TimingParams{0.0, setup, 0.0});
  timing.compute(zero);
  double hi = setup;
  double lo = 0.0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    hi = std::max(hi, timing.arrival(v) + setup);
    lo = std::max(lo, g.vertex(v).delay + setup);
  }
  out.period = hi;
  out.r = zero;
  out.exact = false;

  const std::vector<double> ladder = wd.candidate_periods();
  std::size_t llo = 0, lhi = ladder.size();
  while (llo < lhi) {
    if (const StopReason sr = deadline.status(); sr != StopReason::kNone) {
      out.stop_reason = sr;
      out.stop_detail = std::string(stop_reason_name(sr)) +
                        " during lazy ladder search; best feasible period " +
                        std::to_string(out.period);
      return out;
    }
    const std::size_t mid = (llo + lhi) / 2;
    const double phi = ladder[mid] + setup;
    if (phi >= out.period) {  // not an improvement; tighten from below
      lhi = mid;
      continue;
    }
    if (auto r = feas.retime_for_period(phi, zero)) {
      lhi = mid;
      out.period = phi;
      out.r = std::move(*r);
    } else {
      llo = mid + 1;
      lo = std::max(lo, phi);
    }
  }

  // The sampled ladder can miss D values between its bracketing entries;
  // a short real-valued refinement recovers them to FEAS tolerance.
  while (out.period - lo > mp.tolerance) {
    if (const StopReason sr = deadline.status(); sr != StopReason::kNone) {
      out.stop_reason = sr;
      out.stop_detail = std::string(stop_reason_name(sr)) +
                        " during lazy period refinement; best feasible "
                        "period " +
                        std::to_string(out.period);
      return out;
    }
    const double mid = 0.5 * (lo + out.period);
    if (auto r = feas.retime_for_period(mid, zero)) {
      out.period = mid;
      out.r = std::move(*r);
    } else {
      lo = mid;
    }
  }
  return out;
}

}  // namespace serelin
