// Min-area retiming — the problem of Wang–Zhou's iMinArea [20], which the
// paper's algorithm structurally extends ("If we ignore the constraints in
// P2' ... we actually obtain a problem equivalent to ... min-area retiming
// [18], [20], [22] in terms of the problem structure").
//
// Realized here as a thin instantiation of the MinObsWin machinery: with
// every signal assigned unit observability, Eq. (5) degenerates to the
// register-position count Σ w_r(u, v) and b(v) = indeg(v) − outdeg(v), so
// the forest solver performs register minimization under the clock-period
// constraint. This both provides the classical tool and demonstrates the
// paper's claim that the two problems share one algorithm.
#pragma once

#include "core/objective.hpp"
#include "core/solver.hpp"
#include "rgraph/retiming_graph.hpp"
#include "timing/params.hpp"

namespace serelin {

/// Uniform-observability gains: Eq. (5) becomes the register-position
/// count (per-vertex gain indeg − outdeg).
ObsGains area_gains(const RetimingGraph& g);

struct MinAreaResult {
  SolverResult solver;
  std::int64_t positions_before = 0;  ///< Σ w_r before (edge registers)
  std::int64_t positions_after = 0;
  std::int64_t ffs_before = 0;  ///< shared flip-flop count before
  std::int64_t ffs_after = 0;
};

/// Minimizes register positions from `initial` under the period constraint
/// (setup only; pass rmin > 0 to keep hold/ELW control too).
MinAreaResult min_area_retime(const RetimingGraph& g,
                              const TimingParams& timing,
                              const Retiming& initial, double rmin = 0.0);

}  // namespace serelin
