// Minimum-period retiming via the classical FEAS iteration (Leiserson–Saxe;
// the paper's initialization uses the efficient equivalents [23,24]).
//
// For a target period φ, FEAS repeatedly computes arrival times over the
// current w_r = 0 DAG and increments r(v) on every movable vertex whose
// arrival exceeds φ − Ts (pulling a register in front of it). If the
// violations vanish within the pass budget the retiming is feasible for φ;
// a persistent violation on a boundary vertex (a primary-input-to-register
// or register-to-primary-output path that cannot legally be cut) or budget
// exhaustion reports infeasibility. minimize() binary-searches φ between
// the largest gate delay and the unretimed critical path.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "rgraph/retiming_graph.hpp"
#include "support/checkpoint.hpp"
#include "support/deadline.hpp"
#include "timing/params.hpp"

namespace serelin {

/// Mid-search state of MinPeriodRetimer::minimize(), serialized into the
/// "minperiod" section of a checkpoint: the binary-search interval plus the
/// best feasible retiming found so far. The search is deterministic from
/// this state, so a resume reaches the bit-identical final result.
struct PeriodProgress {
  double lo = 0.0;
  double hi = 0.0;
  double period = 0.0;  ///< best feasible period (achieved by `r`)
  Retiming r;

  std::string encode() const;
  /// Throws serelin::ParseError on truncated/garbled bytes.
  static PeriodProgress decode(std::string_view bytes);
};

class MinPeriodRetimer {
 public:
  struct Options {
    double setup = 0.0;
    /// FEAS pass budget; 0 means |V| (the exact bound, which can be slow on
    /// very large graphs — the experiment harness uses a smaller budget).
    int max_passes = 0;
    /// Binary-search resolution on the period.
    double tolerance = 1e-3;
    /// Wall-clock / cancellation budget. On expiry minimize() stops the
    /// binary search and returns the best feasible result found so far
    /// (stop_reason set); a FEAS probe interrupted mid-run counts as
    /// infeasible for its probe period, never as an illegal retiming.
    Deadline deadline;
    /// Durable snapshots of the binary-search state, offered after every
    /// bisection step and forced on an early stop (docs/ROBUSTNESS.md §11).
    CheckpointSink checkpoint;
  };

  MinPeriodRetimer(const RetimingGraph& g, Options options);

  /// Retiming achieving period φ from `start`, or nullopt if FEAS fails.
  std::optional<Retiming> retime_for_period(double phi,
                                            const Retiming& start) const;

  struct Result {
    double period = 0.0;  ///< smallest feasible period found
    Retiming r;           ///< a retiming achieving it
    /// kNone: converged to tolerance. Otherwise the search stopped early;
    /// `r` still legally achieves `period` (it may just not be minimal).
    StopReason stop_reason = StopReason::kNone;
    /// Human-readable account of an early stop; non-empty whenever
    /// stop_reason != kNone, so callers (in particular the differential
    /// harness) can tell a timeout from a genuine solver divergence.
    std::string stop_detail;

    bool partial() const { return stop_reason != StopReason::kNone; }
  };

  /// Minimal-period retiming (within tolerance).
  Result minimize() const;

  /// Continues an interrupted minimize() from a PeriodProgress snapshot;
  /// the result is bit-identical to the uninterrupted run's.
  Result resume(const PeriodProgress& progress) const;

 private:
  Result search(double lo, double hi, Result best) const;


  const RetimingGraph* g_;
  Options opt_;
};

}  // namespace serelin
