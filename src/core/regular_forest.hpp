// The weighted regular forest (paper §IV-B/C, extending Wang–Zhou DAC'08).
//
// The forest manages the set A of *active constraints* discovered during
// incremental retiming. An active constraint (p, q) records "a further
// decrease of r(p) forces a decrease of r(q)". Constraints are the edges of
// a forest over the vertices; each vertex v carries
//
//   b(v)  — its (fixed) K-scaled objective gain per unit decrease,
//   w(v)  — its current move weight: how much r(v) drops when v's tree is
//           committed (the paper's weighted extension: a P2' fix can demand
//           several registers at once),
//   U(v)  — the direction flag: for non-root v with parent p_v, U(v)=true
//           means the constraint is (v, p_v), otherwise (p_v, v),
//   B(v)  — the weighted gain Σ_{u ∈ subtree(v)} b(u)·w(u).
//
// Boundary (immovable) vertices may enter the forest as constraint targets;
// a tree containing one can never be moved, which the forest tracks with a
// per-subtree blocked count — a blocked tree is classified negative
// regardless of its finite gain (the algebraic reading of b = −∞).
//
// A tree is *regular* when every non-root v satisfies, by tree class
// (positive / zero / negative by effective root gain):
//   positive:  (U(v) ∧ B(v) > 0)  ∨ (¬U(v) ∧ B(v) ≤ 0)
//   zero:      (U(v) ∧ B(v) > 0)  ∨ (¬U(v) ∧ B(v) < 0)
//   negative:  (U(v) ∧ B(v) ≥ 0)  ∨ (¬U(v) ∧ B(v) < 0)
// (with B(v) read as −∞ when v's subtree is blocked). Irregular edges are
// cut — an edge only stays while it actually binds the grouping decision,
// which is what bounds |A| by |V|−1 and drives termination.
//
// The solver's candidate set is V_P(F): the vertices of positive trees; the
// paper shows (after [20]) that it is the closed set of maximum gain.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rgraph/retiming_graph.hpp"

namespace serelin {

/// Complete structural snapshot of a RegularForest — everything the
/// derived fields (B, blocked) are recomputed from. Children order is part
/// of the state: positive_set and the regularity scan iterate child lists
/// in stored order, so a resumed forest must preserve it to stay
/// bit-identical with the uninterrupted run (docs/ROBUSTNESS.md §11).
struct ForestState {
  std::vector<VertexId> parent;               ///< kNullVertex for roots
  std::vector<std::vector<VertexId>> children;
  std::vector<char> u;                        ///< direction flags U(v)
  std::vector<std::int32_t> w;                ///< per-vertex move weights
};

class RegularForest {
 public:
  /// `gain[v]` = b(v); `movable[v]` = false for boundary vertices.
  RegularForest(std::span<const std::int64_t> gain,
                std::span<const char> movable);

  /// Restores a snapshot: adopts the structure, recomputes the derived
  /// fields, and validates the result with check_invariants (a damaged or
  /// mismatched snapshot throws instead of resuming wrong).
  RegularForest(std::span<const std::int64_t> gain,
                std::span<const char> movable, const ForestState& state);

  /// Snapshot for checkpointing; round-trips exactly through the
  /// restoring constructor.
  ForestState state() const;

  std::size_t size() const { return parent_.size(); }

  std::int64_t gain(VertexId v) const { return b_[v]; }
  std::int32_t weight(VertexId v) const { return w_[v]; }
  VertexId parent(VertexId v) const { return parent_[v]; }
  bool is_root(VertexId v) const { return parent_[v] == kNullVertex; }
  bool is_singleton(VertexId v) const {
    return is_root(v) && children_[v].empty();
  }
  VertexId root_of(VertexId v) const;
  bool same_tree(VertexId a, VertexId b) const {
    return root_of(a) == root_of(b);
  }

  /// Weighted subtree gain B(v).
  std::int64_t subtree_gain(VertexId v) const { return big_b_[v]; }
  /// Number of immovable vertices in v's subtree.
  std::int32_t subtree_blocked(VertexId v) const { return blocked_[v]; }

  /// True iff v's tree is positive (B(root) > 0 and unblocked).
  bool in_positive_tree(VertexId v) const;

  /// All vertices of positive trees — the candidate set I = V_P(F).
  /// Ordered by tree, deterministic.
  std::vector<VertexId> positive_set() const;

  /// Adds the active constraint (p, q) demanding that q move with weight
  /// `needed` whenever p moves. Handles the paper's cases: weight update
  /// with BreakTree when w(q) must change, re-rooting of q's tree,
  /// positive-positive links, immovable q (blocking), and p == q
  /// (pure weight update). Restores regularity afterwards.
  /// Requires p movable.
  void add_constraint(VertexId p, VertexId q, std::int32_t needed);

  /// The paper's BreakTree(v): re-roots v's tree at v, then detaches all of
  /// v's children, leaving v a singleton and each former neighbour subtree
  /// a tree of its own.
  void break_tree(VertexId v);

  /// Structural self-check (subtree sums, regularity); throws on violation.
  /// O(|V|) — used by tests.
  void check_invariants() const;

 private:
  enum class TreeClass : std::uint8_t { kPositive, kZero, kNegative };

  void set_weight(VertexId v, std::int32_t w);
  void reroot(VertexId v);
  void link(VertexId p, VertexId q);
  void cut(VertexId v);
  void remove_child(VertexId parent, VertexId child);
  void restore_regularity(VertexId any_vertex);
  TreeClass tree_class(VertexId root) const;
  bool edge_regular(VertexId child, TreeClass cls) const;

  std::vector<std::int64_t> b_;
  std::vector<std::int32_t> w_;
  std::vector<std::int64_t> big_b_;
  std::vector<std::int32_t> blocked_;
  std::vector<VertexId> parent_;
  std::vector<std::vector<VertexId>> children_;
  std::vector<bool> u_;
  std::vector<char> movable_;
};

}  // namespace serelin
