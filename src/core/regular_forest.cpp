#include "core/regular_forest.hpp"
#ifdef SERELIN_FOREST_TRACE
#include <cstdio>
#endif

#include <algorithm>

#include "support/check.hpp"
#include "support/metrics.hpp"

namespace serelin {

RegularForest::RegularForest(std::span<const std::int64_t> gain,
                             std::span<const char> movable)
    : b_(gain.begin(), gain.end()),
      movable_(movable.begin(), movable.end()) {
  SERELIN_REQUIRE(gain.size() == movable.size(), "gain/movable size mismatch");
  const std::size_t n = gain.size();
  w_.assign(n, 1);
  big_b_.assign(n, 0);
  blocked_.assign(n, 0);
  parent_.assign(n, kNullVertex);
  children_.assign(n, {});
  u_.assign(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    big_b_[v] = b_[v];  // w = 1
    blocked_[v] = movable_[v] ? 0 : 1;
  }
}

RegularForest::RegularForest(std::span<const std::int64_t> gain,
                             std::span<const char> movable,
                             const ForestState& state)
    : b_(gain.begin(), gain.end()),
      movable_(movable.begin(), movable.end()) {
  SERELIN_REQUIRE(gain.size() == movable.size(), "gain/movable size mismatch");
  const std::size_t n = gain.size();
  SERELIN_REQUIRE(state.parent.size() == n && state.children.size() == n &&
                      state.u.size() == n && state.w.size() == n,
                  "forest snapshot size mismatch");
  parent_ = state.parent;
  children_ = state.children;
  w_ = state.w;
  u_.assign(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    SERELIN_REQUIRE(w_[v] >= 1, "forest snapshot has non-positive weight");
    u_[v] = state.u[v] != 0;
  }
  // Recompute the derived subtree sums bottom-up from each root. The
  // traversal doubles as a structural check: every vertex must be reached
  // exactly once from exactly one root (no cycles, no orphans).
  big_b_.assign(n, 0);
  blocked_.assign(n, 0);
  std::size_t reached = 0;
  for (VertexId root = 0; root < n; ++root) {
    if (parent_[root] != kNullVertex) continue;
    std::vector<std::pair<VertexId, std::size_t>> stack{{root, 0}};
    while (!stack.empty()) {
      auto& [x, idx] = stack.back();
      if (idx == 0) {
        SERELIN_REQUIRE(++reached <= n, "forest snapshot has a cycle");
        big_b_[x] = b_[x] * w_[x];
        blocked_[x] = movable_[x] ? 0 : 1;
      }
      if (idx < children_[x].size()) {
        const VertexId c = children_[x][idx++];
        SERELIN_REQUIRE(c < n && parent_[c] == x,
                        "forest snapshot parent/child lists disagree");
        stack.emplace_back(c, 0);
      } else {
        const VertexId done = x;
        stack.pop_back();
        if (!stack.empty()) {
          big_b_[stack.back().first] += big_b_[done];
          blocked_[stack.back().first] += blocked_[done];
        }
      }
    }
  }
  SERELIN_REQUIRE(reached == n, "forest snapshot has unreachable vertices");
  check_invariants();
}

ForestState RegularForest::state() const {
  ForestState s;
  s.parent = parent_;
  s.children = children_;
  s.u.assign(u_.size(), 0);
  for (std::size_t v = 0; v < u_.size(); ++v) s.u[v] = u_[v] ? 1 : 0;
  s.w = w_;
  return s;
}

VertexId RegularForest::root_of(VertexId v) const {
  while (parent_[v] != kNullVertex) v = parent_[v];
  return v;
}

RegularForest::TreeClass RegularForest::tree_class(VertexId root) const {
  if (blocked_[root] > 0) return TreeClass::kNegative;
  if (big_b_[root] > 0) return TreeClass::kPositive;
  if (big_b_[root] == 0) return TreeClass::kZero;
  return TreeClass::kNegative;
}

bool RegularForest::in_positive_tree(VertexId v) const {
  return tree_class(root_of(v)) == TreeClass::kPositive;
}

std::vector<VertexId> RegularForest::positive_set() const {
  std::vector<VertexId> out;
  std::vector<VertexId> stack;
  for (VertexId v = 0; v < parent_.size(); ++v) {
    if (!is_root(v) || tree_class(v) != TreeClass::kPositive) continue;
    stack.push_back(v);
    while (!stack.empty()) {
      const VertexId x = stack.back();
      stack.pop_back();
      out.push_back(x);
      for (VertexId c : children_[x]) stack.push_back(c);
    }
  }
  return out;
}

void RegularForest::set_weight(VertexId v, std::int32_t w) {
  SERELIN_ASSERT(is_singleton(v),
                 "weights may change only on singleton trees");
  SERELIN_ASSERT(w >= 1, "move weights are positive");
  w_[v] = w;
  big_b_[v] = b_[v] * w;
}

void RegularForest::remove_child(VertexId parent, VertexId child) {
  auto& kids = children_[parent];
  auto it = std::find(kids.begin(), kids.end(), child);
  SERELIN_ASSERT(it != kids.end(), "child list out of sync");
  kids.erase(it);
}

void RegularForest::reroot(VertexId v) {
  if (is_root(v)) return;
  // Collect the path v = a0, a1, ..., ak = root.
  std::vector<VertexId> path{v};
  while (parent_[path.back()] != kNullVertex) path.push_back(parent_[path.back()]);
  // New subtree sums along the path. After rerooting, a_i's new subtree is
  // the whole tree minus the old subtree of a_{i-1} (its new parent side):
  // the reversed chain hangs *below* each former ancestor.
  std::vector<std::int64_t> new_b(path.size());
  std::vector<std::int32_t> new_blocked(path.size());
  new_b[0] = big_b_[path.back()];
  new_blocked[0] = blocked_[path.back()];
  for (std::size_t i = 1; i < path.size(); ++i) {
    new_b[i] = big_b_[path.back()] - big_b_[path[i - 1]];
    new_blocked[i] = blocked_[path.back()] - blocked_[path[i - 1]];
  }
  // Reverse parent/child links along the path; the stored direction flag
  // moves from the old child to the new child, inverted. Snapshot the old
  // flags first — the loop overwrites them in path order.
  std::vector<char> old_u(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) old_u[i] = u_[path[i]];
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const VertexId lo = path[i];
    const VertexId hi = path[i + 1];
    remove_child(hi, lo);
    children_[lo].push_back(hi);
    parent_[hi] = lo;
    u_[hi] = !old_u[i];
  }
  parent_[v] = kNullVertex;
  for (std::size_t i = 0; i < path.size(); ++i) {
    big_b_[path[i]] = new_b[i];
    blocked_[path[i]] = new_blocked[i];
  }
}

void RegularForest::cut(VertexId v) {
  SERELIN_ASSERT(!is_root(v), "cannot cut a root");
  SERELIN_COUNT(kForestCuts, 1);
  const std::int64_t db = big_b_[v];
  const std::int32_t dbl = blocked_[v];
  VertexId a = parent_[v];
  remove_child(a, v);
  parent_[v] = kNullVertex;
  for (; a != kNullVertex; a = parent_[a]) {
    big_b_[a] -= db;
    blocked_[a] -= dbl;
  }
}

void RegularForest::link(VertexId p, VertexId q) {
  SERELIN_ASSERT(is_root(q), "link target q must be a root");
  SERELIN_ASSERT(root_of(p) != q, "linking would create a cycle");
  parent_[q] = p;
  children_[p].push_back(q);
  u_[q] = false;  // constraint (p, q): parent forces child
  for (VertexId a = p; a != kNullVertex; a = parent_[a]) {
    big_b_[a] += big_b_[q];
    blocked_[a] += blocked_[q];
  }
}

void RegularForest::break_tree(VertexId v) {
  SERELIN_COUNT(kForestBreaks, 1);
  reroot(v);
  // Detach every child of v; each becomes its own tree with its subtree
  // sums already correct. Their tree class changed, so each released
  // fragment must be re-regularized.
  std::vector<VertexId> released;
  while (!children_[v].empty()) {
    const VertexId c = children_[v].back();
    children_[v].pop_back();
    parent_[c] = kNullVertex;
    big_b_[v] -= big_b_[c];
    blocked_[v] -= blocked_[c];
    released.push_back(c);
  }
  SERELIN_ASSERT(big_b_[v] == b_[v] * w_[v] && blocked_[v] == (movable_[v] ? 0 : 1),
                 "BreakTree left inconsistent sums");
  for (VertexId c : released) restore_regularity(c);
}

bool RegularForest::edge_regular(VertexId child, TreeClass cls) const {
  const bool blocked = blocked_[child] > 0;
  const std::int64_t bb = big_b_[child];
  const bool up = u_[child];
  switch (cls) {
    case TreeClass::kPositive:
      return up ? (!blocked && bb > 0) : (blocked || bb <= 0);
    case TreeClass::kZero:
      return up ? (!blocked && bb > 0) : (blocked || bb < 0);
    case TreeClass::kNegative:
      return up ? (!blocked && bb >= 0) : (blocked || bb < 0);
  }
  SERELIN_ASSERT(false, "unreachable tree class");
}

void RegularForest::restore_regularity(VertexId any_vertex) {
  // Re-establish regularity on the tree containing `any_vertex`; cuts can
  // release subtrees whose own regularity must then be checked too.
  std::vector<VertexId> worklist{root_of(any_vertex)};
  while (!worklist.empty()) {
    const VertexId root = worklist.back();
    worklist.pop_back();
    if (!is_root(root)) continue;  // merged away meanwhile (defensive)
    const TreeClass cls = tree_class(root);
    // Scan the tree; cut the first irregular edge and restart on both
    // halves. Edge count strictly decreases, so this terminates.
    bool cut_something = false;
    std::vector<VertexId> stack{root};
    while (!stack.empty()) {
      const VertexId x = stack.back();
      stack.pop_back();
      for (VertexId c : children_[x]) {
        if (!edge_regular(c, cls)) {
#ifdef SERELIN_FOREST_TRACE
          std::fprintf(stderr, "CUT child=%u parent=%u U=%d B=%lld blk=%d cls=%d\n",
                       c, x, (int)u_[c], (long long)big_b_[c], blocked_[c], (int)cls);
#endif
          cut(c);
          worklist.push_back(c);
          worklist.push_back(root);
          cut_something = true;
          break;
        }
        stack.push_back(c);
      }
      if (cut_something) break;
    }
  }
}

void RegularForest::add_constraint(VertexId p, VertexId q,
                                   std::int32_t needed) {
  SERELIN_COUNT(kForestConstraints, 1);
  SERELIN_REQUIRE(p < parent_.size() && q < parent_.size(),
                  "constraint endpoints out of range");
  SERELIN_REQUIRE(movable_[p], "constraint source must be movable");
  SERELIN_REQUIRE(needed >= 1, "constraint weight must be positive");

  if (!movable_[q]) {
    // Blocking constraint: q can never move; fold q into p's tree so the
    // whole tree drops out of V_P (the paper's host-edge early exit).
    if (same_tree(p, q)) return;  // already blocked by q
    reroot(q);
    link(p, q);
    restore_regularity(p);
    return;
  }

  if (p == q) {
    // Pure weight update (e.g. a P2' fix that cycles back to its cause).
    if (!is_singleton(q)) break_tree(q);
    set_weight(q, needed);
    restore_regularity(q);
    return;
  }

  if (w_[q] < needed) {
    // The paper's "w(q) requires update" path: BreakTree, then relink with
    // the new weight. Only *raise* weights: a constraint demands q move at
    // least `needed` alongside p, so a larger current weight already
    // satisfies it. Lowering on mismatch livelocks when two sources fold
    // incomparable demands for the same q — each relink undoes the other
    // (found by fuzz_solvers; see tests/corpus/found).
    if (!is_singleton(q)) break_tree(q);
    set_weight(q, needed);
  } else if (same_tree(p, q)) {
    // Constraint already implied by the current grouping.
    return;
  } else {
    reroot(q);
  }
  if (same_tree(p, q)) return;  // defensive: q's break left p alone with it
  link(p, q);
  restore_regularity(p);
}

void RegularForest::check_invariants() const {
  const std::size_t n = parent_.size();
  for (VertexId v = 0; v < n; ++v) {
    // Recompute subtree sums bottom-up via DFS from roots.
    if (!is_root(v)) {
      const auto& kids = children_[parent_[v]];
      SERELIN_ASSERT(std::find(kids.begin(), kids.end(), v) != kids.end(),
                     "parent/child lists disagree");
    }
  }
  std::vector<std::int64_t> sum_b(n);
  std::vector<std::int32_t> sum_blocked(n);
  // Iterative post-order accumulation.
  for (VertexId root = 0; root < n; ++root) {
    if (!is_root(root)) continue;
    std::vector<std::pair<VertexId, std::size_t>> stack{{root, 0}};
    while (!stack.empty()) {
      auto& [x, idx] = stack.back();
      if (idx == 0) {
        sum_b[x] = b_[x] * w_[x];
        sum_blocked[x] = movable_[x] ? 0 : 1;
      }
      if (idx < children_[x].size()) {
        const VertexId c = children_[x][idx++];
        stack.emplace_back(c, 0);
      } else {
        const VertexId done = x;
        stack.pop_back();
        if (!stack.empty()) {
          sum_b[stack.back().first] += sum_b[done];
          sum_blocked[stack.back().first] += sum_blocked[done];
        }
      }
    }
    const TreeClass cls = tree_class(root);
    std::vector<VertexId> scan{root};
    while (!scan.empty()) {
      const VertexId x = scan.back();
      scan.pop_back();
      SERELIN_ASSERT(sum_b[x] == big_b_[x], "subtree gain sum out of date");
      SERELIN_ASSERT(sum_blocked[x] == blocked_[x],
                     "subtree blocked count out of date");
      if (x != root)
        SERELIN_ASSERT(edge_regular(x, cls), "tree is not regular");
      for (VertexId c : children_[x]) scan.push_back(c);
    }
  }
}

}  // namespace serelin
