// MinObsWin — the paper's Algorithm 1: minimum register-observability
// retiming under error-latching-window constraints, driven by the weighted
// regular forest.
//
// The solver iterates:
//   1. I = V_P(F), the positive set of the forest. Empty I means no
//      improving feasible move exists: the current retiming is returned.
//   2. Tentatively decrease r(v) by w(v) for every v in I.
//   3. Search for a violation of P0 / P1' / P2' whose dependency source p
//      lies in I (the mover that caused it). If one exists, revert the
//      tentative move and fold the paper's active constraint (p, q, w)
//      into the forest: q must move with p, with weight w on top of
//      whatever q already moved (BreakTree + weight update when q's
//      previously assumed weight was wrong, blocking when q is a boundary
//      vertex). Loop to 1.
//   4. No violation: commit the move (one paper-iteration "#J") and loop.
//
// A P2' violation admits two monotone resolutions (push the boundary
// register past its head, or drain the launching register through the
// short path's head); the checker's primary choice is an implication only
// until it chains into an immovable vertex. Converged 0-commit passes
// therefore re-seed with the blocked-tree vertices as avoid-hints, letting
// the next pass fold the drain alternate where the primary dead-ended
// (restores agreement with the exhaustive reference on the corpus freeze).
//
// Every committed retiming is feasible and strictly improves the K-scaled
// objective Σ b(v)·Δ(v); the objective is bounded, so commits are finite;
// between commits the forest monotonically consumes constraint events, with
// a safety budget that throws AssertionError on livelock (never observed in
// the test suite; the property tests compare results against the
// independent ClosureSolver and the exhaustive reference).
//
// With `enforce_elw = false` the P2' machinery is disabled — exactly the
// paper's "Efficient MinObs" baseline (Algorithm 1 with lines 9-12 and
// 19-21 commented out), which solves the problem of [17] with the
// efficiency of [20].
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/objective.hpp"
#include "core/regular_forest.hpp"
#include "rgraph/retiming_graph.hpp"
#include "support/checkpoint.hpp"
#include "support/deadline.hpp"
#include "timing/params.hpp"

namespace serelin {

struct SolverOptions {
  TimingParams timing;
  double rmin = 0.0;       ///< R_min for P2' (ignored if !enforce_elw)
  bool enforce_elw = true;  ///< false => Efficient MinObs baseline
  /// Inner-iteration safety budget; 0 = auto (quadratic in |V|).
  std::int64_t max_iterations = 0;
  /// Active constraints folded into the forest per timing pass. Batching
  /// amortizes the O(|V|+|E|) label recomputation; 1 reproduces the
  /// strictly sequential Algorithm-1 schedule.
  std::size_t violation_batch = 256;
  /// Wall-clock / cancellation budget. Solvers poll it between feasible
  /// checkpoints; on expiry they return the best feasible retiming found
  /// so far with stop_reason set (a Partial result), never an illegal one.
  Deadline deadline;
  /// Durable progress snapshots (docs/ROBUSTNESS.md §11), threaded exactly
  /// like the deadline: default-disabled, offered at every commit (a
  /// feasible state), forced on an early stop. A SIGKILLed solve resumes
  /// from the last snapshot and reaches the bit-identical final result.
  CheckpointSink checkpoint;
};

struct SolverResult {
  Retiming r;                    ///< final (feasible) retiming
  int commits = 0;               ///< the paper's iteration count #J
  std::int64_t iterations = 0;   ///< inner loop iterations
  std::int64_t objective_gain = 0;  ///< K-scaled drop of Eq. (5)
  bool exited_early = false;  ///< initial retiming already infeasible; it
                              ///< was returned unchanged (paper's b18/b19)
  /// kNone: the solver converged. kDeadline/kCancelled: it stopped early
  /// at a feasible checkpoint; `r` is the best retiming committed so far.
  StopReason stop_reason = StopReason::kNone;
  std::string stop_detail;  ///< human-readable account of an early stop

  /// True when this is a best-so-far (deadline/cancel) result rather than
  /// a converged one.
  bool partial() const { return stop_reason != StopReason::kNone; }
};

/// Complete mid-solve state of MinObsWinSolver, as serialized into the
/// "solver" section of a checkpoint (support/checkpoint.hpp): the committed
/// retiming plus everything the remaining computation depends on. Timing
/// labels are recomputed from `r` on resume; at a commit point no
/// tentative move is in flight, so nothing else exists to save.
struct SolverProgress {
  Retiming r;                       ///< last committed (feasible) retiming
  int commits = 0;                  ///< SolverResult counters so far
  std::int64_t iterations = 0;
  std::int64_t objective_gain = 0;
  int pass_commits = 0;             ///< commits within the current pass
  std::vector<char> avoid;          ///< re-seed hints (solve()'s avoid set)
  ForestState forest;               ///< the current pass's forest

  std::string encode() const;
  /// Throws serelin::ParseError on truncated/garbled bytes.
  static SolverProgress decode(std::string_view bytes);
};

class MinObsWinSolver {
 public:
  MinObsWinSolver(const RetimingGraph& g, const ObsGains& gains,
                  SolverOptions options);

  /// Runs Algorithm 1 from the (feasible) initial retiming.
  SolverResult solve(const Retiming& initial) const;

  /// Continues an interrupted solve from a SolverProgress snapshot,
  /// reaching the bit-identical result the uninterrupted run would have
  /// (the crash-harness contract). The caller is responsible for matching
  /// the snapshot to this graph/options (the checkpoint fingerprint);
  /// structurally impossible snapshots throw.
  SolverResult resume(const SolverProgress& progress) const;

 private:
  void run_pass(const class ConstraintChecker& checker,
                class GraphTiming& timing, SolverResult& out,
                const std::vector<char>& avoid_q, std::vector<char>& frozen,
                class RegularForest& forest, int& pass_commits) const;
  SolverResult run_passes(const class ConstraintChecker& checker,
                          class GraphTiming& timing, SolverResult out,
                          std::vector<char> avoid,
                          class RegularForest* mid_pass_forest,
                          int mid_pass_commits) const;
  void offer_checkpoint(const SolverResult& out,
                        const std::vector<char>& avoid,
                        const class RegularForest& forest, int pass_commits,
                        bool force) const;

  const RetimingGraph* g_;
  const ObsGains* gains_;
  SolverOptions opt_;
};

}  // namespace serelin
