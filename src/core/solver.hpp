// MinObsWin — the paper's Algorithm 1: minimum register-observability
// retiming under error-latching-window constraints, driven by the weighted
// regular forest.
//
// The solver iterates:
//   1. I = V_P(F), the positive set of the forest. Empty I means no
//      improving feasible move exists: the current retiming is returned.
//   2. Tentatively decrease r(v) by w(v) for every v in I.
//   3. Search for a violation of P0 / P1' / P2' whose dependency source p
//      lies in I (the mover that caused it). If one exists, revert the
//      tentative move and fold the paper's active constraint (p, q, w)
//      into the forest: q must move with p, with weight w on top of
//      whatever q already moved (BreakTree + weight update when q's
//      previously assumed weight was wrong, blocking when q is a boundary
//      vertex). Loop to 1.
//   4. No violation: commit the move (one paper-iteration "#J") and loop.
//
// Every committed retiming is feasible and strictly improves the K-scaled
// objective Σ b(v)·Δ(v); the objective is bounded, so commits are finite;
// between commits the forest monotonically consumes constraint events, with
// a safety budget that throws AssertionError on livelock (never observed in
// the test suite; the property tests compare results against the
// independent ClosureSolver and the exhaustive reference).
//
// With `enforce_elw = false` the P2' machinery is disabled — exactly the
// paper's "Efficient MinObs" baseline (Algorithm 1 with lines 9-12 and
// 19-21 commented out), which solves the problem of [17] with the
// efficiency of [20].
#pragma once

#include <cstdint>
#include <string>

#include "core/objective.hpp"
#include "rgraph/retiming_graph.hpp"
#include "support/deadline.hpp"
#include "timing/params.hpp"

namespace serelin {

struct SolverOptions {
  TimingParams timing;
  double rmin = 0.0;       ///< R_min for P2' (ignored if !enforce_elw)
  bool enforce_elw = true;  ///< false => Efficient MinObs baseline
  /// Inner-iteration safety budget; 0 = auto (quadratic in |V|).
  std::int64_t max_iterations = 0;
  /// Active constraints folded into the forest per timing pass. Batching
  /// amortizes the O(|V|+|E|) label recomputation; 1 reproduces the
  /// strictly sequential Algorithm-1 schedule.
  std::size_t violation_batch = 256;
  /// Wall-clock / cancellation budget. Solvers poll it between feasible
  /// checkpoints; on expiry they return the best feasible retiming found
  /// so far with stop_reason set (a Partial result), never an illegal one.
  Deadline deadline;
};

struct SolverResult {
  Retiming r;                    ///< final (feasible) retiming
  int commits = 0;               ///< the paper's iteration count #J
  std::int64_t iterations = 0;   ///< inner loop iterations
  std::int64_t objective_gain = 0;  ///< K-scaled drop of Eq. (5)
  bool exited_early = false;  ///< initial retiming already infeasible; it
                              ///< was returned unchanged (paper's b18/b19)
  /// kNone: the solver converged. kDeadline/kCancelled: it stopped early
  /// at a feasible checkpoint; `r` is the best retiming committed so far.
  StopReason stop_reason = StopReason::kNone;
  std::string stop_detail;  ///< human-readable account of an early stop

  /// True when this is a best-so-far (deadline/cancel) result rather than
  /// a converged one.
  bool partial() const { return stop_reason != StopReason::kNone; }
};

class MinObsWinSolver {
 public:
  MinObsWinSolver(const RetimingGraph& g, const ObsGains& gains,
                  SolverOptions options);

  /// Runs Algorithm 1 from the (feasible) initial retiming.
  SolverResult solve(const Retiming& initial) const;

 private:
  int run_pass(const class ConstraintChecker& checker,
               class GraphTiming& timing, SolverResult& out) const;

  const RetimingGraph* g_;
  const ObsGains* gains_;
  SolverOptions opt_;
};

}  // namespace serelin
