#include "core/exhaustive.hpp"

#include <vector>

#include "support/check.hpp"
#include "timing/constraints.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {

ExhaustiveResult exhaustive_best(const RetimingGraph& g, const ObsGains& gains,
                                 const SolverOptions& options,
                                 const Retiming& initial, int bound) {
  SERELIN_REQUIRE(g.valid(initial), "initial retiming must be valid");
  SERELIN_REQUIRE(bound >= 0, "bound must be non-negative");
  const auto& movable_list = g.gate_vertices();
  SERELIN_REQUIRE(movable_list.size() <= 16,
                  "exhaustive_best is for tiny circuits only");

  const double rmin = options.enforce_elw ? options.rmin : 0.0;
  ConstraintChecker checker(g, options.timing, rmin);
  GraphTiming timing(g, options.timing);

  ExhaustiveResult best;
  best.r = initial;

  std::vector<int> delta(movable_list.size(), 0);
  Retiming cand = initial;
  // The space is (bound+1)^|gates| points: even "tiny" circuits can take a
  // while, so the enumeration is cancellable. On expiry the result carries
  // the best point seen plus the stop reason (it is no longer an oracle).
  DeadlinePoller poller(options.deadline);
  for (;;) {
    if (poller.expired()) {
      best.stop_reason = options.deadline.status();
      break;
    }
    // Evaluate the current Δ.
    bool valid = g.valid(cand);
    if (valid) {
      timing.compute(cand);
      valid = !checker.find_violation(cand, timing).has_value();
    }
    if (valid) {
      ++best.feasible_points;
      std::int64_t gain = 0;
      for (std::size_t i = 0; i < movable_list.size(); ++i)
        gain += gains.gain[movable_list[i]] * delta[i];
      if (gain > best.objective_gain) {
        best.objective_gain = gain;
        best.r = cand;
      }
    }
    // Odometer increment.
    std::size_t i = 0;
    for (; i < delta.size(); ++i) {
      if (delta[i] < bound) {
        ++delta[i];
        --cand[movable_list[i]];
        break;
      }
      cand[movable_list[i]] += delta[i];
      delta[i] = 0;
    }
    if (i == delta.size()) break;
  }
  return best;
}

}  // namespace serelin
