#include "core/wd_matrices.hpp"

#include <algorithm>
#include <queue>

#include "core/wd_query.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace serelin {

namespace {

/// Per-worker scratch for the per-source Dijkstra + tight-DAG DP. The
/// result rows are written straight into the matrices (each source owns a
/// disjoint slice), so only the traversal state lives here.
struct WdScratch {
  std::vector<std::uint32_t> tight_pending;
  std::vector<VertexId> order;
  using Item = std::pair<std::int32_t, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;

  void prepare(std::size_t n) {
    if (tight_pending.size() != n) {
      tight_pending.assign(n, 0);
      order.reserve(n);
    }
  }
};

}  // namespace

WdMatrices::WdMatrices(const RetimingGraph& g, Deadline deadline)
    : n_(g.vertex_count()) {
  SERELIN_SPAN("wd/construct");
  w_.assign(n_ * n_, kUnreachable);
  d_.assign(n_ * n_, 0.0);

  // One independent single-source computation per vertex; source s writes
  // only its own row slices w_[s·n .. (s+1)·n) and d_[..], so results are
  // bit-identical for any thread count. The deadline-aware overload checks
  // once per source (each source is a full Dijkstra + DP, plenty coarse)
  // and rethrows CancelledError on the caller.
  std::vector<WdScratch> scratch(
      static_cast<std::size_t>(parallel_workers()));
  const std::size_t grain =
      std::max<std::size_t>(1, n_ / (static_cast<std::size_t>(
                                         parallel_workers()) *
                                     8));
  parallel_for(0, n_, grain, deadline, "WdMatrices", [&](std::size_t src,
                                                         int lane) {
    const VertexId s = static_cast<VertexId>(src);
    SERELIN_COUNT(kWdSources, 1);
    WdScratch& sc = scratch[static_cast<std::size_t>(lane)];
    sc.prepare(n_);
    std::int32_t* wrow = w_.data() + src * n_;
    double* drow = d_.data() + src * n_;

    // Dijkstra on register counts from s (wrow is pre-filled with
    // kUnreachable by the assign above).
    wrow[s] = 0;
    auto& heap = sc.heap;
    heap.emplace(0, s);
    while (!heap.empty()) {
      const auto [wu, u] = heap.top();
      heap.pop();
      SERELIN_COUNT(kWdHeapPops, 1);
      if (wu != wrow[u]) continue;
      for (EdgeId eid : g.out_edges(u)) {
        const REdge& e = g.edge(eid);
        const std::int32_t cand = wu + e.w;
        if (cand < wrow[e.to]) {
          wrow[e.to] = cand;
          heap.emplace(cand, e.to);
        }
      }
    }

    // Longest total delay over register-minimal paths: DP in topological
    // order of the tight-edge DAG (tight = the edge lies on some
    // register-minimal path; a tight cycle would be a register-free cycle,
    // which legal graphs exclude).
    auto tight = [&](const REdge& e) {
      return wrow[e.from] != kUnreachable && wrow[e.to] == wrow[e.from] + e.w;
    };
    std::fill(sc.tight_pending.begin(), sc.tight_pending.end(), 0);
    for (EdgeId eid = 0; eid < g.edge_count(); ++eid)
      if (tight(g.edge(eid))) ++sc.tight_pending[g.edge(eid).to];
    sc.order.clear();
    for (VertexId v = 0; v < n_; ++v)
      if (wrow[v] != kUnreachable && sc.tight_pending[v] == 0)
        sc.order.push_back(v);
    drow[s] = g.vertex(s).delay;
    for (std::size_t head = 0; head < sc.order.size(); ++head) {
      const VertexId u = sc.order[head];
      for (EdgeId eid : g.out_edges(u)) {
        const REdge& e = g.edge(eid);
        if (!tight(e)) continue;
        drow[e.to] =
            std::max(drow[e.to], drow[u] + g.vertex(e.to).delay);
        if (--sc.tight_pending[e.to] == 0) sc.order.push_back(e.to);
      }
    }
  });
}

std::vector<double> WdMatrices::candidate_periods() const {
  // Every reachable pair contributes a D value (n² of them on dense
  // graphs), so count first and reserve exactly instead of guessing.
  std::size_t reachable = 0;
  for (std::size_t i = 0; i < w_.size(); ++i)
    if (w_[i] != kUnreachable) ++reachable;
  std::vector<double> out;
  out.reserve(reachable);
  for (std::size_t i = 0; i < w_.size(); ++i)
    if (w_[i] != kUnreachable) out.push_back(d_[i]);
  std::sort(out.begin(), out.end());
  // Tolerance-aware dedup: delays are sums of doubles, so equal-period
  // candidates can differ in the last ulps depending on summation path;
  // exact std::unique would keep both and bloat the binary search.
  constexpr double kTol = 1e-9;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (kept == 0 || out[i] > out[kept - 1] + kTol) out[kept++] = out[i];
  }
  out.resize(kept);
  return out;
}

std::optional<Retiming> wd_retime_for_period(const RetimingGraph& g,
                                             const WdMatrices& wd,
                                             double phi, double setup) {
  const std::size_t n = g.vertex_count();
  SERELIN_REQUIRE(wd.size() == n, "W/D matrices do not match the graph");
  const double budget = phi - setup;

  // P1 pair constraints r(u) − r(v) ≤ W(u,v) − 1 for every reachable pair
  // whose register-minimal delay exceeds the budget; P0 and root pinning
  // are derived from the graph inside the shared solver.
  std::vector<WdConstraint> extra;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (wd.w(u, v) == WdMatrices::kUnreachable) continue;
      if (wd.d(u, v) <= budget + 1e-9) continue;
      extra.push_back({v, u, wd.w(u, v) - 1});
    }
  }
  return wd_solve_constraints(g, extra);
}

WdMinPeriodResult wd_min_period(const RetimingGraph& g, const WdMatrices& wd,
                                double setup, Deadline deadline) {
  SERELIN_SPAN("wd/min-period");
  const std::vector<double> budgets = wd.candidate_periods();
  SERELIN_REQUIRE(!budgets.empty(), "graph without paths");
  // Binary search the smallest feasible candidate (feasibility is monotone
  // in the period). The best feasible probe is kept as it is found, so an
  // expired deadline can stop the search at any point with a legal
  // (if not yet minimal) result in hand.
  std::size_t lo = 0, hi = budgets.size() - 1;
  auto first = wd_retime_for_period(g, wd, budgets[hi] + setup, setup);
  SERELIN_REQUIRE(first.has_value(),
                  "even the critical path period is infeasible");
  WdMinPeriodResult out;
  out.period = budgets[hi] + setup;
  out.r = std::move(*first);
  while (lo < hi) {
    if (const StopReason sr = deadline.status(); sr != StopReason::kNone) {
      out.stop_reason = sr;
      return out;
    }
    const std::size_t mid = (lo + hi) / 2;
    if (auto r = wd_retime_for_period(g, wd, budgets[mid] + setup, setup)) {
      hi = mid;
      out.period = budgets[mid] + setup;
      out.r = std::move(*r);
    } else {
      lo = mid + 1;
    }
  }
  return out;
}

}  // namespace serelin
