#include "core/wd_matrices.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace serelin {

WdMatrices::WdMatrices(const RetimingGraph& g) : n_(g.vertex_count()) {
  w_.assign(n_ * n_, kUnreachable);
  d_.assign(n_ * n_, 0.0);

  // Reusable per-source scratch.
  std::vector<std::int32_t> wrow(n_);
  std::vector<double> drow(n_);
  std::vector<std::uint32_t> tight_pending(n_);
  std::vector<VertexId> order;
  order.reserve(n_);
  using Item = std::pair<std::int32_t, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;

  for (VertexId s = 0; s < n_; ++s) {
    // Dijkstra on register counts from s.
    std::fill(wrow.begin(), wrow.end(), kUnreachable);
    wrow[s] = 0;
    heap.emplace(0, s);
    while (!heap.empty()) {
      const auto [wu, u] = heap.top();
      heap.pop();
      if (wu != wrow[u]) continue;
      for (EdgeId eid : g.out_edges(u)) {
        const REdge& e = g.edge(eid);
        const std::int32_t cand = wu + e.w;
        if (cand < wrow[e.to]) {
          wrow[e.to] = cand;
          heap.emplace(cand, e.to);
        }
      }
    }

    // Longest total delay over register-minimal paths: DP in topological
    // order of the tight-edge DAG (tight = the edge lies on some
    // register-minimal path; a tight cycle would be a register-free cycle,
    // which legal graphs exclude).
    auto tight = [&](const REdge& e) {
      return wrow[e.from] != kUnreachable && wrow[e.to] == wrow[e.from] + e.w;
    };
    std::fill(tight_pending.begin(), tight_pending.end(), 0);
    for (EdgeId eid = 0; eid < g.edge_count(); ++eid)
      if (tight(g.edge(eid))) ++tight_pending[g.edge(eid).to];
    order.clear();
    for (VertexId v = 0; v < n_; ++v)
      if (wrow[v] != kUnreachable && tight_pending[v] == 0) order.push_back(v);
    std::fill(drow.begin(), drow.end(), 0.0);
    drow[s] = g.vertex(s).delay;
    for (std::size_t head = 0; head < order.size(); ++head) {
      const VertexId u = order[head];
      for (EdgeId eid : g.out_edges(u)) {
        const REdge& e = g.edge(eid);
        if (!tight(e)) continue;
        drow[e.to] =
            std::max(drow[e.to], drow[u] + g.vertex(e.to).delay);
        if (--tight_pending[e.to] == 0) order.push_back(e.to);
      }
    }

    std::copy(wrow.begin(), wrow.end(), w_.begin() + static_cast<std::ptrdiff_t>(s * n_));
    std::copy(drow.begin(), drow.end(), d_.begin() + static_cast<std::ptrdiff_t>(s * n_));
  }
}

std::vector<double> WdMatrices::candidate_periods() const {
  std::vector<double> out;
  out.reserve(n_ * 4);
  for (std::size_t i = 0; i < w_.size(); ++i)
    if (w_[i] != kUnreachable) out.push_back(d_[i]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

struct ConstraintEdge {
  VertexId from;  // constraint r(to) − r(from) ≤ cost maps to from → to
  VertexId to;
  std::int64_t cost;
};

}  // namespace

std::optional<Retiming> wd_retime_for_period(const RetimingGraph& g,
                                             const WdMatrices& wd,
                                             double phi, double setup) {
  const std::size_t n = g.vertex_count();
  SERELIN_REQUIRE(wd.size() == n, "W/D matrices do not match the graph");
  const double budget = phi - setup;

  // Difference constraints r(u) − r(v) ≤ c become edges v → u of weight c
  // in the shortest-path encoding. Bellman–Ford starts from all-zero
  // distances (an implicit super-source, which cannot lie on a cycle), so
  // no blanket root→v edges are needed — they would wrongly cap every
  // label at the root's, excluding the positive labels backward moves
  // need. A virtual root (index n) only *pins* the boundary labels
  // together; the final labels are normalized against it.
  std::vector<ConstraintEdge> edges;
  edges.reserve(g.edge_count() + 4 * n);
  const VertexId root = static_cast<VertexId>(n);
  for (VertexId v = 0; v < n; ++v) {
    if (!g.movable(v)) {
      edges.push_back({root, v, 0});
      edges.push_back({v, root, 0});
    }
  }
  for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
    const REdge& e = g.edge(eid);
    edges.push_back({e.to, e.from, e.w});  // P0: r(u) − r(v) ≤ w(e)
  }
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (wd.w(u, v) == WdMatrices::kUnreachable) continue;
      if (wd.d(u, v) <= budget + 1e-9) continue;
      edges.push_back({v, u, wd.w(u, v) - 1});  // P1 pair constraint
    }
  }

  // Bellman–Ford; a negative cycle means the period is infeasible.
  std::vector<std::int64_t> dist(n + 1, 0);
  bool changed = true;
  for (std::size_t round = 0; round <= n + 1 && changed; ++round) {
    changed = false;
    for (const ConstraintEdge& e : edges) {
      if (dist[e.from] + e.cost < dist[e.to]) {
        dist[e.to] = dist[e.from] + e.cost;
        changed = true;
      }
    }
  }
  if (changed) return std::nullopt;  // still relaxing: negative cycle

  Retiming r(n, 0);
  for (VertexId v = 0; v < n; ++v)
    r[v] = static_cast<std::int32_t>(dist[v] - dist[root]);
  SERELIN_ASSERT(g.valid(r), "W/D feasibility produced an invalid retiming");
  return r;
}

WdMinPeriodResult wd_min_period(const RetimingGraph& g, const WdMatrices& wd,
                                double setup) {
  const std::vector<double> budgets = wd.candidate_periods();
  SERELIN_REQUIRE(!budgets.empty(), "graph without paths");
  // Binary search the smallest feasible candidate (feasibility is monotone
  // in the period).
  std::size_t lo = 0, hi = budgets.size() - 1;
  SERELIN_REQUIRE(
      wd_retime_for_period(g, wd, budgets[hi] + setup, setup).has_value(),
      "even the critical path period is infeasible");
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (wd_retime_for_period(g, wd, budgets[mid] + setup, setup))
      hi = mid;
    else
      lo = mid + 1;
  }
  WdMinPeriodResult out;
  out.period = budgets[lo] + setup;
  out.r = *wd_retime_for_period(g, wd, out.period, setup);
  return out;
}

}  // namespace serelin
