#include "core/closure_solver.hpp"

#include <algorithm>
#include <vector>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "timing/constraints.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {

namespace {

/// One bundle-growing attempt from a fixed seed set. Returns true and
/// commits into `r` when a feasible, improving bundle was found. On an
/// unfixable dependency the sponsoring seed is recorded in `excluded`.
class BundleGrower {
 public:
  BundleGrower(const RetimingGraph& g, const ObsGains& gains,
               const ConstraintChecker& checker, GraphTiming& timing,
               const Deadline& deadline)
      : g_(g), gains_(gains), checker_(checker), timing_(timing),
        deadline_(deadline) {}

  enum class Status {
    kCommitted,    ///< feasible improving bundle applied to r
    kExcluded,     ///< a seed was excluded (unfixable or worst cluster)
    kDead,         ///< nothing improving here and nothing to exclude
    kStopped,      ///< deadline/cancel hit mid-growth; r untouched
  };

  Status grow_and_commit(const std::vector<VertexId>& seeds, Retiming& r,
                         std::vector<char>& excluded, SolverResult& stats) {
    const std::size_t n = g_.vertex_count();
    delta_.assign(n, 0);
    movers_.assign(n, 0);
    sponsor_.assign(n, kNullVertex);
    members_.clear();
    for (VertexId s : seeds) {
      delta_[s] = 1;
      movers_[s] = 1;
      sponsor_[s] = s;
      members_.push_back(s);
    }
    const std::int64_t cap = 4096 + 64 * static_cast<std::int64_t>(n);
    for (std::int64_t step = 0; step < cap; ++step) {
      SERELIN_COUNT(kBundleGrowSteps, 1);
      // Abandoning a half-grown bundle is safe: `r` is only replaced on
      // commit, so the caller keeps its last feasible retiming.
      if (deadline_.expired()) return Status::kStopped;
      Retiming cand = r;
      for (VertexId v : members_) cand[v] -= delta_[v];
      // Incremental relabel against whatever state the labels last
      // described (bit-identical to compute(cand) on valid candidates; on
      // a P0-invalid candidate the labels stay put and find_violation
      // reports the P0 violation from its full edge scan, which never
      // reads path labels).
      timing_.update(cand);
      const auto viol = checker_.find_violation(cand, timing_, movers_);
      if (!viol) {
        std::int64_t gain = 0;
        for (VertexId v : members_) gain += gains_.gain[v] * delta_[v];
        if (gain > 0) {
          r = std::move(cand);
          stats.objective_gain += gain;
          ++stats.commits;
          SERELIN_COUNT(kSolverCommits, 1);
          return Status::kCommitted;
        }
        // Feasible but not improving: shed the seed whose dependency
        // cluster drags the most (mirrors a tree leaving V_P) and retry.
        std::int64_t worst_gain = 0;
        VertexId worst = kNullVertex;
        for (VertexId s : seeds) {
          std::int64_t cluster = 0;
          for (VertexId v : members_)
            if (sponsor_[v] == s) cluster += gains_.gain[v] * delta_[v];
          if (worst == kNullVertex || cluster < worst_gain) {
            worst = s;
            worst_gain = cluster;
          }
        }
        if (worst == kNullVertex) return Status::kDead;
        excluded[worst] = 1;
        return Status::kExcluded;
      }
      ++stats.iterations;
      SERELIN_COUNT(kSolverIterations, 1);
      const VertexId p = viol->p;
      const VertexId q = viol->q;
      if (!g_.movable(q)) {
        if (p < n && movers_[p] && sponsor_[p] != kNullVertex)
          excluded[sponsor_[p]] = 1;
        else
          for (VertexId s : seeds) excluded[s] = 1;  // cannot attribute
        return Status::kExcluded;
      }
      if (!movers_[q]) {
        members_.push_back(q);
        movers_[q] = 1;
        sponsor_[q] = (p < n && movers_[p]) ? sponsor_[p] : q;
        delta_[q] = viol->w;
      } else {
        delta_[q] += viol->w;
      }
    }
    return Status::kDead;  // growth budget exhausted
  }

 private:
  const RetimingGraph& g_;
  const ObsGains& gains_;
  const ConstraintChecker& checker_;
  GraphTiming& timing_;
  const Deadline& deadline_;
  std::vector<std::int32_t> delta_;
  std::vector<char> movers_;
  std::vector<VertexId> sponsor_;
  std::vector<VertexId> members_;
};

}  // namespace

ClosureSolver::ClosureSolver(const RetimingGraph& g, const ObsGains& gains,
                             SolverOptions options)
    : g_(&g), gains_(&gains), opt_(options) {
  SERELIN_REQUIRE(gains.gain.size() == g.vertex_count(),
                  "gains must be indexed by VertexId");
}

std::string ClosureProgress::encode() const {
  BinWriter w;
  w.u32(static_cast<std::uint32_t>(r.size()));
  for (const std::int32_t rv : r) w.i32(rv);
  w.i32(commits);
  w.i64(iterations);
  w.i64(objective_gain);
  return w.take();
}

ClosureProgress ClosureProgress::decode(std::string_view bytes) {
  BinReader rd(bytes);
  ClosureProgress p;
  const std::uint32_t n = rd.u32();
  p.r.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) p.r[i] = rd.i32();
  p.commits = rd.i32();
  p.iterations = rd.i64();
  p.objective_gain = rd.i64();
  if (!rd.done())
    throw ParseError("closure progress: trailing bytes past the snapshot");
  return p;
}

SolverResult ClosureSolver::solve(const Retiming& initial) const {
  SERELIN_SPAN("solver/closure");
  SERELIN_REQUIRE(g_->valid(initial), "initial retiming must be valid");
  const double rmin = opt_.enforce_elw ? opt_.rmin : 0.0;
  ConstraintChecker checker(*g_, opt_.timing, rmin);
  GraphTiming timing(*g_, opt_.timing);

  SolverResult out;
  out.r = initial;
  timing.compute(out.r);
  if (checker.find_violation(out.r, timing)) {
    out.exited_early = true;
    return out;
  }
  return run_from(std::move(out));
}

SolverResult ClosureSolver::resume(const ClosureProgress& progress) const {
  SERELIN_SPAN("solver/closure");
  SERELIN_REQUIRE(progress.r.size() == g_->vertex_count(),
                  "closure progress snapshot is for a different graph");
  SERELIN_REQUIRE(g_->valid(progress.r),
                  "closure progress carries an invalid retiming");
  SolverResult out;
  out.r = progress.r;
  out.commits = progress.commits;
  out.iterations = progress.iterations;
  out.objective_gain = progress.objective_gain;
  return run_from(std::move(out));
}

SolverResult ClosureSolver::run_from(SolverResult out) const {
  const double rmin = opt_.enforce_elw ? opt_.rmin : 0.0;
  ConstraintChecker checker(*g_, opt_.timing, rmin);
  GraphTiming timing(*g_, opt_.timing);
  timing.compute(out.r);
  // Snapshots are only taken at feasible states; see resume() callers.
  SERELIN_REQUIRE(!checker.find_violation(out.r, timing),
                  "closure snapshot is not feasible under these options "
                  "(wrong circuit or parameters?)");

  const std::size_t n = g_->vertex_count();
  BundleGrower grower(*g_, *gains_, checker, timing, opt_.deadline);
  std::vector<char> excluded(n, 0);

  const auto snapshot = [&](CheckpointImage& image) {
    ClosureProgress p;
    p.r = out.r;
    p.commits = out.commits;
    p.iterations = out.iterations;
    p.objective_gain = out.objective_gain;
    image.sections.emplace_back("closure", p.encode());
  };
  const auto stop = [&](const char* where) {
    out.stop_reason = opt_.deadline.status();
    if (out.stop_reason == StopReason::kNone)
      out.stop_reason = StopReason::kDeadline;
    out.stop_detail = std::string(stop_reason_name(out.stop_reason)) +
                      " during ClosureSolver (" + where + ") after " +
                      std::to_string(out.commits) +
                      " commit(s); returning best feasible retiming";
    // An early stop leaves a resumable snapshot of this exact state
    // (out.r was last replaced at a commit, so it is feasible).
    if (opt_.checkpoint.enabled()) opt_.checkpoint.force(snapshot);
  };

  using Status = BundleGrower::Status;
  for (;;) {
    if (const StopReason sr = opt_.deadline.status();
        sr != StopReason::kNone) {
      stop("outer loop");
      break;
    }
    // Joint bundle with iterative seed pruning: excluded seeds drop out
    // until the bundle commits or dies (mirrors trees leaving V_P).
    bool committed = false;
    bool stopped = false;
    for (;;) {
      std::vector<VertexId> seeds;
      for (VertexId v = 0; v < n; ++v)
        if (!excluded[v] && g_->movable(v) && gains_->gain[v] > 0)
          seeds.push_back(v);
      if (seeds.empty()) break;
      const Status st = grower.grow_and_commit(seeds, out.r, excluded, out);
      if (st == Status::kCommitted) {
        committed = true;
        break;
      }
      if (st == Status::kStopped) {
        stopped = true;
        break;
      }
      if (st == Status::kDead) break;
      // kExcluded: retry with the reduced seed set.
    }
    if (!committed && !stopped) {
      // Fallback: each surviving seed alone.
      for (VertexId s = 0; s < n; ++s) {
        if (excluded[s] || !g_->movable(s) || gains_->gain[s] <= 0) continue;
        const Status st = grower.grow_and_commit({s}, out.r, excluded, out);
        if (st == Status::kCommitted) {
          committed = true;
          break;
        }
        if (st == Status::kStopped) {
          stopped = true;
          break;
        }
      }
    }
    if (stopped) {
      stop("bundle growth");
      break;
    }
    if (!committed) break;
    // A commit changes the landscape: re-admit every seed. With the
    // exclusions reset, {r, counters} is the complete state — the safe
    // point a snapshot captures.
    std::fill(excluded.begin(), excluded.end(), 0);
    if (opt_.checkpoint.enabled()) opt_.checkpoint.offer(snapshot);
  }
  return out;
}

}  // namespace serelin
