#include "core/initializer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/min_period.hpp"
#include "support/check.hpp"
#include "timing/constraints.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {

double min_short_path(const RetimingGraph& g, const Retiming& r,
                      const TimingParams& params) {
  GraphTiming timing(g, params);
  timing.compute(r);
  double shortest = std::numeric_limits<double>::infinity();
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.wr(e, r) <= 0) continue;
    const RVertex& head = g.vertex(g.edge(e).to);
    const double path = head.kind == VertexKind::kSink
                            ? 0.0
                            : head.delay + timing.min_after(g.edge(e).to);
    shortest = std::min(shortest, path);
  }
  return shortest;
}

namespace {

/// Greedy hold repair: while some registered edge's short path is below
/// `hold`, apply the P2'-style fix (move the boundary registers of the
/// critical short path forward), following up the induced P0/P1 fixes.
/// Returns true if a feasible retiming was reached; `r` is updated in
/// place only on success.
bool repair_hold(const RetimingGraph& g, Retiming& r,
                 const TimingParams& params) {
  ConstraintChecker checker(g, params, params.hold);
  GraphTiming timing(g, params);
  Retiming cand = r;
  const std::int64_t budget =
      8 * static_cast<std::int64_t>(g.vertex_count()) + 256;
  for (std::int64_t step = 0; step < budget; ++step) {
    if (!g.valid(cand)) return false;
    timing.update(cand);  // single-vertex moves: O(cone) relabel per step
    const auto v = checker.find_violation(cand, timing);
    if (!v) {
      r = cand;
      return true;
    }
    if (!g.movable(v->q)) return false;  // would push into the boundary
    cand[v->q] -= v->w;
  }
  return false;
}

}  // namespace

InitResult initialize_retiming(const RetimingGraph& g,
                               const InitOptions& options) {
  MinPeriodRetimer::Options mp;
  mp.setup = options.setup;
  mp.max_passes = options.feas_passes;
  mp.deadline = options.deadline;
  MinPeriodRetimer retimer(g, mp);
  const auto min_result = retimer.minimize();

  InitResult out;
  out.min_period = min_result.period;
  double phi = min_result.period * (1.0 + options.epsilon);
  if (options.integer_period) phi = std::ceil(phi - 1e-9);
  out.timing = TimingParams{phi, options.setup, options.hold};

  // Re-retime for the relaxed period (more slack for the optimizer).
  Retiming r = g.zero_retiming();
  if (auto relaxed = retimer.retime_for_period(phi, r))
    r = std::move(*relaxed);
  else
    r = min_result.r;

  // Try to reach a setup/hold-feasible start (the paper's [23] step).
  out.setup_hold_ok = repair_hold(g, r, out.timing);
  out.r = std::move(r);

  if (out.setup_hold_ok) {
    // Section V: R_min = the minimal short path of the initial circuit.
    out.rmin = min_short_path(g, out.r, out.timing);
    if (!std::isfinite(out.rmin)) out.rmin = 0.0;  // no registers at all
  } else {
    // Paper fallback (s15850.1): R_min = the minimal gate delay, but never
    // above what the initial circuit already violates — P2' must hold at
    // the start, otherwise the solver exits immediately (b18/b19 rows).
    double min_gate_delay = std::numeric_limits<double>::infinity();
    for (VertexId v : g.gate_vertices())
      min_gate_delay = std::min(min_gate_delay, g.vertex(v).delay);
    out.rmin = std::isfinite(min_gate_delay) ? min_gate_delay : 0.0;
  }
  return out;
}

}  // namespace serelin
