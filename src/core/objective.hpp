// The register-observability objective of the paper (Eq. 5) and the
// per-vertex gains b(v) that drive the MinObs / MinObsWin solvers.
//
// A register sitting on edge (u,v) stores the signal of its driver u, so
// its observability is obs(u), and the circuit's total register
// observability under retiming r is
//     Obs(r) = Σ_{(u,v) ∈ E} obs(u) · w_r(u,v).                    (Eq. 5)
// Substituting w_r = w + r(v) − r(u) and differentiating with respect to a
// unit *decrease* of r(v) (a forward move of registers across v):
//     b(v) = K · ( Σ_{(u,v) ∈ E} obs(u)  −  outdeg(v) · obs(v) ),
// i.e. the in-register observabilities disappear and outdeg(v) registers of
// observability obs(v) appear. (The paper prints obs(x) of the fanout head
// in the second term; a register on (v,x) is driven by v, so the
// derivative-consistent coefficient is obs(v) — unit-tested against the
// finite difference of Eq. 5.) The K scaling (number of simulation
// patterns) makes every gain an exact integer.
#pragma once

#include <cstdint>
#include <vector>

#include "rgraph/retiming_graph.hpp"

namespace serelin {

struct ObsGains {
  /// Observability of each vertex's output signal, K-scaled to an integer
  /// count of observed patterns (0..K). Sinks carry 0 (no register ever
  /// "sits at" a sink's output).
  std::vector<std::int64_t> vertex_obs;

  /// b(v): K-scaled gain of one forward move across v. Boundary vertices
  /// carry 0 (they never move).
  std::vector<std::int64_t> gain;

  /// K — the pattern count used for scaling.
  int patterns = 0;
};

/// Builds gains from per-node observabilities (NodeId-indexed, as produced
/// by ObservabilityAnalyzer on the graph's netlist).
///
/// `area_weight` enables the paper's §VII extension: the objective is
/// augmented with an area term, rewarding moves that reduce the number of
/// register positions. A unit forward move across v removes indeg(v) and
/// creates outdeg(v) edge registers, so the per-move area gain is
/// K·area_weight·(indeg(v) − outdeg(v)); area_weight is the relative value
/// of one register position on the observability scale (0 disables, the
/// algorithm itself is unchanged — exactly the paper's remark).
ObsGains compute_gains(const RetimingGraph& g,
                       const std::vector<double>& node_obs, int patterns,
                       double area_weight = 0.0);

/// K-scaled total register observability Σ obs(u)·w_r(u,v) (Eq. 5).
std::int64_t register_observability(const RetimingGraph& g, const Retiming& r,
                                    const ObsGains& gains);

}  // namespace serelin
