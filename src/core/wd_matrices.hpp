// The classical W/D-matrix machinery of Leiserson–Saxe retiming — the
// Θ(|V|²) formulation whose memory/CPU cost motivates both Wang–Zhou's
// incremental algorithm [20] and this paper's §IV-A argument ("the
// bottleneck of this class of algorithms lies in the Θ(|V|²) memory space
// to construct W and D and the resulting dense flow graph").
//
// For every ordered vertex pair (u, v) connected by a path:
//   W(u, v) = minimum register count over all u→v paths,
//   D(u, v) = maximum total vertex delay (including both endpoints) over
//             the register-minimal u→v paths.
// A clock period c is feasible iff the difference-constraint system
//   r(u) − r(v) ≤ w(e)           for every edge e = (u, v)        (P0)
//   r(u) − r(v) ≤ W(u, v) − 1    whenever D(u, v) > c − Ts        (P1)
//   r(x) = 0                     for boundary vertices
// is satisfiable (Leiserson–Saxe Theorem 7), decided by Bellman–Ford.
//
// serelin's solvers never use these matrices — they exist as an
// independent correctness reference for min-period retiming and as the
// measured baseline in bench/wd_comparison (quadratic memory vs the
// forest's O(|E|)).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "rgraph/retiming_graph.hpp"
#include "support/deadline.hpp"

namespace serelin {

class WdMatrices {
 public:
  static constexpr std::int32_t kUnreachable =
      std::numeric_limits<std::int32_t>::max();

  /// Computes both matrices: per-source Dijkstra on register counts, then
  /// a longest-delay DP over each source's tight-edge DAG.
  /// O(|V|·|E|·log|V|) time, Θ(|V|²) memory — intentionally.
  /// The matrices are all-or-nothing (a half-filled W/D pair is useless),
  /// so an expired deadline throws CancelledError instead of returning a
  /// partial object.
  explicit WdMatrices(const RetimingGraph& g, Deadline deadline = Deadline());

  std::size_t size() const { return n_; }

  /// Minimum registers on any u→v path; kUnreachable if none.
  std::int32_t w(VertexId u, VertexId v) const { return w_[idx(u, v)]; }

  /// Maximum delay of the register-minimal u→v paths (endpoints included).
  double d(VertexId u, VertexId v) const { return d_[idx(u, v)]; }

  /// Bytes held by the two matrices (the quantity the paper's memory
  /// argument is about).
  std::size_t memory_bytes() const {
    return w_.capacity() * sizeof(std::int32_t) +
           d_.capacity() * sizeof(double);
  }

  /// All distinct D values in increasing order — the classical candidate
  /// clock periods.
  std::vector<double> candidate_periods() const;

 private:
  std::size_t idx(VertexId u, VertexId v) const {
    return static_cast<std::size_t>(u) * n_ + v;
  }

  std::size_t n_ = 0;
  std::vector<std::int32_t> w_;
  std::vector<double> d_;
};

/// Feasibility of period `phi` (with setup time `setup`) by Bellman–Ford
/// over the constraint system above; returns a legal retiming on success.
std::optional<Retiming> wd_retime_for_period(const RetimingGraph& g,
                                             const WdMatrices& wd,
                                             double phi, double setup = 0.0);

/// Exact minimal feasible period: binary search over candidate_periods().
/// With a deadline, the search stops at expiry and returns the smallest
/// period proven feasible so far (`r` legally achieves `period`; it may
/// not be minimal) with stop_reason set.
struct WdMinPeriodResult {
  double period = 0.0;
  Retiming r;
  StopReason stop_reason = StopReason::kNone;

  bool partial() const { return stop_reason != StopReason::kNone; }
};
WdMinPeriodResult wd_min_period(const RetimingGraph& g, const WdMatrices& wd,
                                double setup = 0.0,
                                Deadline deadline = Deadline());

}  // namespace serelin
