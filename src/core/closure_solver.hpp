// ClosureSolver: an independent, deliberately simple solver for Problem 1,
// used as a cross-check for the regular-forest implementation.
//
// It grows one explicit move bundle Δ (vertex -> decrease amount) at a
// time: seed every positive-gain vertex with Δ = 1, then repeatedly query
// the constraint checker under r − Δ and absorb each reported dependency
// (Δ(q) += w). A dependency on a boundary vertex is unfixable: the seed
// that sponsored the offending chain is excluded and the bundle restarts.
// A feasible bundle with positive total gain commits; a feasible bundle
// with non-positive gain sheds its weakest seed and retries. The process
// ends when no seed set yields an improving feasible bundle.
//
// The forest solver and this one share only the constraint checker; their
// grouping logic is disjoint, so agreement on the final objective is
// meaningful evidence of correctness (the test suite also compares both
// against exhaustive search on small circuits).
#pragma once

#include "core/solver.hpp"

namespace serelin {

/// Mid-solve state of ClosureSolver, serialized into the "closure" section
/// of a checkpoint. Snapshots are taken right after a committed bundle,
/// where the excluded-seed set has just been reset — the committed retiming
/// plus counters is therefore the complete state.
struct ClosureProgress {
  Retiming r;
  int commits = 0;
  std::int64_t iterations = 0;
  std::int64_t objective_gain = 0;

  std::string encode() const;
  /// Throws serelin::ParseError on truncated/garbled bytes.
  static ClosureProgress decode(std::string_view bytes);
};

class ClosureSolver {
 public:
  ClosureSolver(const RetimingGraph& g, const ObsGains& gains,
                SolverOptions options);

  SolverResult solve(const Retiming& initial) const;

  /// Continues an interrupted solve from a ClosureProgress snapshot; the
  /// result is bit-identical to the uninterrupted run's.
  SolverResult resume(const ClosureProgress& progress) const;

 private:
  SolverResult run_from(SolverResult out) const;


  const RetimingGraph* g_;
  const ObsGains* gains_;
  SolverOptions opt_;
};

}  // namespace serelin
