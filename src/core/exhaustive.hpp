// Exhaustive reference solver for tiny circuits.
//
// Enumerates every decrease vector Δ with 0 <= Δ(v) <= bound on movable
// vertices, checks P0/P1'/P2' feasibility of r = initial − Δ with the same
// ConstraintChecker the real solvers use, and returns the feasible point of
// maximum K-scaled gain Σ b(v)·Δ(v). This is the global optimum over the
// forward (decrease-only) search space that the paper's monotone algorithm
// explores; the property-test suite compares MinObsWinSolver and
// ClosureSolver against it on hundreds of random small circuits.
//
// Cost is (bound+1)^|gates| × O(|E|): keep |gates| below ~10.
#pragma once

#include "core/solver.hpp"

namespace serelin {

struct ExhaustiveResult {
  Retiming r;                       ///< best feasible retiming found
  std::int64_t objective_gain = 0;  ///< its K-scaled gain over `initial`
  std::int64_t feasible_points = 0; ///< number of feasible Δ enumerated
  /// kNone: the full space was enumerated and `r` is the global optimum.
  /// kDeadline/kCancelled: enumeration stopped early; `r` is only the best
  /// point seen, so it must not be used as an optimality oracle.
  StopReason stop_reason = StopReason::kNone;
};

/// Requires a feasible `initial`. `bound` caps each vertex's decrease.
ExhaustiveResult exhaustive_best(const RetimingGraph& g, const ObsGains& gains,
                                 const SolverOptions& options,
                                 const Retiming& initial, int bound);

}  // namespace serelin
