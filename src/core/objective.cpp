#include "core/objective.hpp"

#include <cmath>

#include "support/check.hpp"

namespace serelin {

ObsGains compute_gains(const RetimingGraph& g,
                       const std::vector<double>& node_obs, int patterns,
                       double area_weight) {
  SERELIN_REQUIRE(node_obs.size() == g.netlist().node_count(),
                  "node_obs must be indexed by NodeId");
  SERELIN_REQUIRE(patterns > 0, "pattern count must be positive");
  ObsGains out;
  out.patterns = patterns;
  out.vertex_obs.assign(g.vertex_count(), 0);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const RVertex& vx = g.vertex(v);
    if (vx.kind == VertexKind::kSink) continue;
    const double o = node_obs[vx.node];
    SERELIN_REQUIRE(o >= -1e-9 && o <= 1.0 + 1e-9,
                    "observability must lie in [0,1]");
    out.vertex_obs[v] = std::llround(o * patterns);
  }
  out.gain.assign(g.vertex_count(), 0);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (!g.movable(v)) continue;
    std::int64_t b = 0;
    for (EdgeId e : g.in_edges(v)) b += out.vertex_obs[g.edge(e).from];
    b -= static_cast<std::int64_t>(g.out_edges(v).size()) * out.vertex_obs[v];
    if (area_weight != 0.0) {
      const auto indeg = static_cast<std::int64_t>(g.in_edges(v).size());
      const auto outdeg = static_cast<std::int64_t>(g.out_edges(v).size());
      b += std::llround(area_weight * patterns) * (indeg - outdeg);
    }
    out.gain[v] = b;
  }
  return out;
}

std::int64_t register_observability(const RetimingGraph& g, const Retiming& r,
                                    const ObsGains& gains) {
  std::int64_t total = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    total += gains.vertex_obs[g.edge(e).from] *
             static_cast<std::int64_t>(g.wr(e, r));
  return total;
}

}  // namespace serelin
