#include "core/min_area.hpp"

namespace serelin {

ObsGains area_gains(const RetimingGraph& g) {
  ObsGains gains;
  gains.patterns = 1;
  gains.vertex_obs.assign(g.vertex_count(), 0);
  gains.gain.assign(g.vertex_count(), 0);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (g.vertex(v).kind != VertexKind::kSink) gains.vertex_obs[v] = 1;
    if (!g.movable(v)) continue;
    gains.gain[v] = static_cast<std::int64_t>(g.in_edges(v).size()) -
                    static_cast<std::int64_t>(g.out_edges(v).size());
  }
  return gains;
}

MinAreaResult min_area_retime(const RetimingGraph& g,
                              const TimingParams& timing,
                              const Retiming& initial, double rmin) {
  const ObsGains gains = area_gains(g);
  SolverOptions options;
  options.timing = timing;
  options.rmin = rmin;
  options.enforce_elw = rmin > 0.0;
  MinObsWinSolver solver(g, gains, options);

  MinAreaResult out;
  out.positions_before = g.total_edge_registers(initial);
  out.ffs_before = g.shared_register_count(initial);
  out.solver = solver.solve(initial);
  out.positions_after = g.total_edge_registers(out.solver.r);
  out.ffs_after = g.shared_register_count(out.solver.r);
  return out;
}

}  // namespace serelin
