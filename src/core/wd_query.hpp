// On-demand W/D queries — the sparse replacement for the Θ(|V|²) matrices.
//
// Leiserson–Saxe feasibility needs, for a candidate period φ, the pair
// constraints r(u) − r(v) ≤ W(u,v) − 1 for every reachable (u, v) with
// D(u,v) > φ − Ts. The classical formulation materializes W and D densely
// (src/core/wd_matrices.*), which the paper's §IV-A names as the
// bottleneck of this algorithm class. This header provides the scalable
// alternative: a `WdQuery` interface that answers point queries and emits
// period constraints *per source row*, so the peak memory is O(|V|) per
// worker instead of Θ(|V|²).
//
// Two engines sit behind the interface (docs/SPARSE_WD.md):
//
//  * DenseWdQuery — wraps WdMatrices. Exact candidate periods, O(1) point
//    queries. Chosen by make_wd_query() for circuits at or below
//    WdQueryOptions::dense_threshold vertices, and used by tests and the
//    oracle cross-checks as the ground truth.
//  * LazyWdQuery — computes single-source rows on demand (the same
//    Dijkstra + tight-DAG DP as the dense engine) into an LRU row cache,
//    and emits period constraints with *budget pruning*: the delay DP is
//    cut at the first vertex whose running D exceeds φ − Ts, because every
//    deeper constraint is implied by the cut vertex's constraint plus P0
//    telescoping along the register-minimal suffix (the dominance
//    invariant, proved in docs/SPARSE_WD.md). Candidate periods are a
//    sampled ladder of D values rather than the exact set.
//
// Both engines feed one shared difference-constraint Bellman–Ford, so
// wd_query_retime_for_period() is bit-identical between them (the pruned
// constraint system has the same shortest-distance solution — dominated
// inequalities correspond to existing ≤-cost paths in the constraint
// graph). The lazy min-period path replaces the dense binary search with
// ladder + FEAS probes and never touches a matrix.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rgraph/retiming_graph.hpp"
#include "support/deadline.hpp"

namespace serelin {

struct WdQueryOptions {
  /// Vertex count at or below which make_wd_query() picks the dense
  /// engine (Θ(n²) memory: 2048² ≈ 50 MB — the knee where the matrices
  /// stop fitting comfortably in cache-adjacent memory).
  std::size_t dense_threshold = 2048;
  /// Row slots of the lazy engine's LRU cache (memory = slots · O(|V|)).
  std::size_t cache_rows = 64;
  /// Source rows sampled (evenly strided) for the lazy candidate ladder.
  std::size_t ladder_samples = 64;
  /// Budget for row computations and constraint sweeps; expiry throws
  /// CancelledError (a half-swept constraint system is useless).
  Deadline deadline;
};

/// Query interface over W(u,v) / D(u,v). Point queries are non-const:
/// the lazy engine computes and caches rows on demand.
class WdQuery {
 public:
  static constexpr std::int32_t kUnreachable =
      std::numeric_limits<std::int32_t>::max();

  virtual ~WdQuery() = default;

  /// "dense" or "lazy" — for journals and reports.
  virtual const char* engine() const = 0;

  virtual std::size_t size() const = 0;

  /// Minimum registers on any u→v path; kUnreachable if none.
  virtual std::int32_t w(VertexId u, VertexId v) = 0;

  /// Maximum delay of the register-minimal u→v paths (endpoints included).
  virtual double d(VertexId u, VertexId v) = 0;

  /// Candidate clock periods in increasing order. Exact (every distinct D
  /// value) for the dense engine; a sampled subset for the lazy one —
  /// check exact_candidates() before binary-searching for a minimum.
  virtual std::vector<double> candidate_periods() = 0;
  virtual bool exact_candidates() const = 0;

  /// Emits every P1 pair constraint r(u) − r(v) ≤ cost needed for delay
  /// budget `budget` = φ − Ts (the lazy engine prunes dominated ones; the
  /// emitted system has the same Bellman–Ford solution either way).
  virtual void for_each_period_constraint(
      double budget,
      const std::function<void(VertexId u, VertexId v, std::int32_t cost)>&
          emit) = 0;

  /// Bytes held by matrices / row cache right now.
  virtual std::size_t memory_bytes() const = 0;
};

/// Engine selection by size: dense at or below options.dense_threshold
/// vertices, lazy above.
std::unique_ptr<WdQuery> make_wd_query(const RetimingGraph& g,
                                       WdQueryOptions options = {});

/// One difference constraint r(u) − r(v) ≤ cost (edge v → u of weight
/// cost in the shortest-path encoding).
struct WdConstraint {
  VertexId from;  ///< v of "r(u) − r(v) ≤ cost"
  VertexId to;    ///< u
  std::int64_t cost;
};

/// Shared Bellman–Ford core: solves P0 + P1 + boundary-pinning difference
/// constraints, nullopt on a negative cycle (period infeasible). `extra`
/// carries the P1 pair constraints; P0 and root pinning are derived from
/// the graph. Used by both wd_matrices and wd_query paths.
std::optional<Retiming> wd_solve_constraints(
    const RetimingGraph& g, const std::vector<WdConstraint>& extra);

/// Feasibility of period `phi` through the query interface. Bit-identical
/// to the dense wd_retime_for_period for any engine (dominance invariant).
std::optional<Retiming> wd_query_retime_for_period(const RetimingGraph& g,
                                                   WdQuery& wd, double phi,
                                                   double setup = 0.0);

struct WdQueryMinPeriodResult {
  double period = 0.0;
  Retiming r;
  /// True when the period is the exact minimum (dense engine); false when
  /// it is the ladder + FEAS upper bound of the lazy engine.
  bool exact = false;
  StopReason stop_reason = StopReason::kNone;
  /// Human-readable account of an early stop; non-empty whenever
  /// stop_reason != kNone (timeout must stay distinguishable from a wrong
  /// answer in differential comparisons).
  std::string stop_detail;

  bool partial() const { return stop_reason != StopReason::kNone; }
};

/// Minimum feasible period through the query interface. Dense engine:
/// exact binary search over all candidates (the classical algorithm).
/// Lazy engine: binary search over the sampled ladder with FEAS probes,
/// then real-valued refinement between the bracketing ladder values —
/// an upper bound on the optimum, with O(|V|+|E|) memory end to end.
WdQueryMinPeriodResult wd_query_min_period(const RetimingGraph& g,
                                           WdQuery& wd, double setup = 0.0,
                                           Deadline deadline = Deadline());

}  // namespace serelin
