// Cell (gate) types of the sequential gate-level netlist.
//
// The type set matches the ISCAS89 / ITC99 `.bench` vocabulary: primary
// inputs, D flip-flops, and the standard combinational gates. Word-parallel
// evaluation semantics live here too so the simulator, the netlist checker
// and the .bench round-trip all agree on one definition.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace serelin {

enum class CellType : std::uint8_t {
  kInput,   ///< primary input (no fanins)
  kDff,     ///< D flip-flop (one fanin: D; node value is Q)
  kBuf,     ///< buffer (1 fanin)
  kNot,     ///< inverter (1 fanin)
  kAnd,     ///< AND (>=1 fanins)
  kNand,    ///< NAND (>=1 fanins)
  kOr,      ///< OR (>=1 fanins)
  kNor,     ///< NOR (>=1 fanins)
  kXor,     ///< XOR / odd parity (>=1 fanins)
  kXnor,    ///< XNOR / even parity (>=1 fanins)
  kConst0,  ///< constant 0 (no fanins)
  kConst1,  ///< constant 1 (no fanins)
};

/// Number of distinct cell types (for table sizing).
inline constexpr int kNumCellTypes = 12;

/// Canonical .bench keyword for the type ("INPUT", "DFF", "NAND", ...).
std::string_view cell_type_name(CellType type);

/// Parses a .bench keyword (case-insensitive; accepts BUF and BUFF).
/// Throws ParseError on an unknown keyword.
CellType parse_cell_type(std::string_view keyword);

/// Non-throwing variant for the recovering parser: nullopt on an unknown
/// keyword.
std::optional<CellType> try_parse_cell_type(std::string_view keyword);

/// True for nodes that source a value into the combinational network of a
/// single clock cycle: primary inputs, flip-flop outputs and constants.
bool is_combinational_source(CellType type);

/// True for combinational logic gates (kBuf through kXnor). Inputs,
/// flip-flops and constants are not gates.
bool is_gate(CellType type);

/// Minimum/maximum legal fanin count for the type.
int min_fanins(CellType type);
int max_fanins(CellType type);

/// Word-parallel evaluation: computes 64 simulation patterns at once from
/// the fanin words. kDff evaluates as a wire (value = D); its sequential
/// behaviour is handled by the simulator's frame loop, which normally sets
/// flip-flop values directly from stored state instead of calling this.
std::uint64_t eval_cell(CellType type, std::span<const std::uint64_t> fanins);

}  // namespace serelin
