// Reader/writer for the ISCAS89 / ITC99 `.bench` netlist format.
//
// Grammar accepted (a superset of the classic format):
//   # comment
//   INPUT(sig)
//   OUTPUT(sig)
//   sig = GATE(a, b, ...)        GATE in {DFF, BUFF/BUF, NOT, AND, NAND,
//                                          OR, NOR, XOR, XNOR, CONST0/1}
// Keywords are case-insensitive; whitespace is free-form; signals may be
// referenced before definition (feedback). The writer emits canonical form
// that the reader round-trips exactly.
//
// Two parsing modes share one implementation:
//  * strict  — the 2-argument overloads. The whole input is consumed and
//    every defect collected; a single DiagnosticError (a ParseError) is
//    raised at the end carrying the full diagnostic list.
//  * recovering — the DiagnosticSink overloads. Bad lines are skipped,
//    structural damage is repaired (see NetlistBuilder::build(sink)), the
//    returned netlist is always finalized, and nothing is thrown for
//    malformed input. Callers inspect the sink.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "support/diag.hpp"

namespace serelin {

/// Parses .bench text (strict). `circuit_name` names the resulting
/// netlist. Throws DiagnosticError with every collected diagnostic when
/// the input is malformed.
Netlist read_bench(std::istream& in, std::string circuit_name = "circuit");

/// Parses .bench text (recovering): defects become diagnostics in `sink`,
/// damaged constructs are skipped or repaired, and a finalized netlist is
/// always returned. Never throws on malformed input.
Netlist read_bench(std::istream& in, std::string circuit_name,
                   DiagnosticSink& sink);

/// Parses a .bench file from disk, strict (name defaults to the file stem).
Netlist read_bench_file(const std::string& path);

/// Parses a .bench file from disk, recovering. Open failures and mid-read
/// stream errors are diagnostics too (io-not-found / io-unreadable /
/// io-stream-error); an unopenable file yields an empty netlist.
Netlist read_bench_file(const std::string& path, DiagnosticSink& sink);

/// Writes canonical .bench text.
void write_bench(std::ostream& out, const Netlist& nl);

/// Writes a .bench file to disk.
void write_bench_file(const std::string& path, const Netlist& nl);

}  // namespace serelin
