// Reader/writer for the ISCAS89 / ITC99 `.bench` netlist format.
//
// Grammar accepted (a superset of the classic format):
//   # comment
//   INPUT(sig)
//   OUTPUT(sig)
//   sig = GATE(a, b, ...)        GATE in {DFF, BUFF/BUF, NOT, AND, NAND,
//                                          OR, NOR, XOR, XNOR, CONST0/1}
// Keywords are case-insensitive; whitespace is free-form; signals may be
// referenced before definition (feedback). The writer emits canonical form
// that the reader round-trips exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace serelin {

/// Parses .bench text. `circuit_name` names the resulting netlist.
/// Throws ParseError on malformed input.
Netlist read_bench(std::istream& in, std::string circuit_name = "circuit");

/// Parses a .bench file from disk (name defaults to the file stem).
Netlist read_bench_file(const std::string& path);

/// Writes canonical .bench text.
void write_bench(std::ostream& out, const Netlist& nl);

/// Writes a .bench file to disk.
void write_bench_file(const std::string& path, const Netlist& nl);

}  // namespace serelin
